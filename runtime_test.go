package nbr_test

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"nbr"
	"nbr/internal/dstest"
)

// TestRuntimeMultiStructureChurn is the multi-structure lease-churn suite:
// one runtime, three structures, every scheme — workers churn all three
// sets under one lease each while a sampler holds the aggregated garbage
// bound, then the runtime drains to Retired == Freed (see dstest.RuntimeChurn
// for the contract details).
func TestRuntimeMultiStructureChurn(t *testing.T) {
	for _, scheme := range nbr.Schemes() {
		t.Run(scheme, func(t *testing.T) { dstest.RuntimeChurn(t, scheme) })
	}
}

// TestRuntimeAcquireCtxCancellation pins admission control under a full
// registry: AcquireCtx honors the context deadline while every slot is
// held, and admits promptly once a slot frees.
func TestRuntimeAcquireCtxCancellation(t *testing.T) {
	rt, err := nbr.NewRuntime(nbr.RuntimeOptions{MaxThreads: 2, BagSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.NewSet("lazylist"); err != nil {
		t.Fatal(err)
	}

	a, err := rt.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	b, err := rt.Acquire()
	if err != nil {
		t.Fatal(err)
	}

	// Full registry + deadline: the waiter must come back with the
	// context's error, not ErrNoLease, and must leave the queue.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := rt.AcquireCtx(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("AcquireCtx under a full registry: got %v, want DeadlineExceeded", err)
	}
	if w := rt.Waiters(); w != 0 {
		t.Fatalf("cancelled waiter still queued: %d", w)
	}

	// A pre-cancelled context never waits.
	dead, cancelDead := context.WithCancel(context.Background())
	cancelDead()
	if _, err := rt.AcquireCtx(dead); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled AcquireCtx: got %v", err)
	}

	// A release admits a blocked waiter.
	got := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		l, err := rt.AcquireCtx(ctx)
		if err == nil {
			l.Release()
		}
		got <- err
	}()
	for i := 0; rt.Waiters() == 0 && i < 1000; i++ {
		time.Sleep(time.Millisecond)
	}
	a.Release()
	if err := <-got; err != nil {
		t.Fatalf("waiter not admitted after release: %v", err)
	}
	b.Release()
}

// TestRuntimeAcquireCtxFIFO pins waiter-queue fairness: blocked AcquireCtx
// callers are admitted in arrival order as slots free up.
func TestRuntimeAcquireCtxFIFO(t *testing.T) {
	rt, err := nbr.NewRuntime(nbr.RuntimeOptions{MaxThreads: 2, BagSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	held := make([]*nbr.Lease, 2)
	for i := range held {
		if held[i], err = rt.Acquire(); err != nil {
			t.Fatal(err)
		}
	}

	var mu sync.Mutex
	var order []int
	admitted := make(chan struct{}, 2)
	releaseMe := make(chan struct{})
	var wg sync.WaitGroup
	waiter := func(id int) {
		defer wg.Done()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		l, err := rt.AcquireCtx(ctx)
		if err != nil {
			t.Errorf("waiter %d: %v", id, err)
			admitted <- struct{}{}
			return
		}
		mu.Lock()
		order = append(order, id)
		mu.Unlock()
		admitted <- struct{}{}
		<-releaseMe // hold the lease so this admission cannot admit the next
		l.Release()
	}

	// Enqueue waiter 1 first, then waiter 2 (each provably queued before
	// the next step).
	wg.Add(2)
	go waiter(1)
	for i := 0; rt.Waiters() < 1 && i < 1000; i++ {
		time.Sleep(time.Millisecond)
	}
	go waiter(2)
	for i := 0; rt.Waiters() < 2 && i < 1000; i++ {
		time.Sleep(time.Millisecond)
	}
	if rt.Waiters() != 2 {
		t.Fatalf("waiters = %d, want 2", rt.Waiters())
	}

	// One release, one admission — the head of the queue.
	held[0].Release()
	<-admitted
	mu.Lock()
	first := append([]int(nil), order...)
	mu.Unlock()
	if len(first) != 1 || first[0] != 1 {
		t.Fatalf("first admission order = %v, want [1]", first)
	}
	held[1].Release() // second slot admits waiter 2
	<-admitted
	mu.Lock()
	final := append([]int(nil), order...)
	mu.Unlock()
	if len(final) != 2 || final[1] != 2 {
		t.Fatalf("admission order = %v, want [1 2]", final)
	}
	close(releaseMe)
	wg.Wait()
}

// TestRuntimeSharedLeaseAcrossSets pins the tentpole contract: one lease
// operates on every attached structure, records retired into the shared
// bags route back to their owning pools, and the runtime drains clean.
func TestRuntimeSharedLeaseAcrossSets(t *testing.T) {
	rt, err := nbr.NewRuntime(nbr.RuntimeOptions{MaxThreads: 4, BagSize: 128, ScanFreq: 4})
	if err != nil {
		t.Fatal(err)
	}
	names := []string{"lazylist", "harris", "dgt"}
	sets := make([]*nbr.Set, len(names))
	for i, n := range names {
		if sets[i], err = rt.NewSet(n); err != nil {
			t.Fatal(err)
		}
	}
	got := rt.Structures()
	if len(got) != 3 || got[0] != "lazylist" || got[2] != "dgt" {
		t.Fatalf("Structures() = %v", got)
	}

	l, err := rt.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		key := uint64(i%63) + 1
		s := sets[i%len(sets)]
		s.Insert(l, key)
		if i%2 == 0 {
			s.Delete(l, key)
		}
	}
	l.Release()

	if err := rt.Drain(); err != nil {
		t.Fatal(err)
	}
	st := rt.Stats()
	if st.Retired != st.Freed {
		t.Fatalf("shared bags leaked: retired %d != freed %d", st.Retired, st.Freed)
	}
	if b := rt.GarbageBound(); b != nbr.Unbounded && st.Garbage() > uint64(b) {
		t.Fatalf("garbage %d exceeds aggregated bound %d", st.Garbage(), b)
	}
	var liveSum int64
	for _, s := range sets {
		if err := s.Validate(); err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		liveSum += s.MemStats().Live
	}
	if agg := rt.MemStats(); agg.Live != liveSum {
		t.Fatalf("aggregated MemStats.Live = %d, per-set sum = %d", agg.Live, liveSum)
	}
}

// TestRuntimeWidthNarrowing pins the width-registry fast path: a runtime's
// scheme is built lazily at the widths its attached structures declare, not
// at the conservative global defaults, so scans under Runtime visit exactly
// as many announcement rows as under a single-structure Domain.
func TestRuntimeWidthNarrowing(t *testing.T) {
	rt, err := nbr.NewRuntime(nbr.RuntimeOptions{MaxThreads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.NewSet("lazylist"); err != nil {
		t.Fatal(err)
	}
	if s, r := rt.Widths(); s != 2 || r != 2 {
		t.Fatalf("lazylist-only runtime widths = %d/%d, want 2/2", s, r)
	}
	// A wider attachment grows the not-yet-built scheme monotonically.
	if _, err := rt.NewSet("dgt"); err != nil {
		t.Fatal(err)
	}
	if s, r := rt.Widths(); s != 3 || r != 3 {
		t.Fatalf("lazylist+dgt runtime widths = %d/%d, want 3/3", s, r)
	}

	// The widths must match a Domain hosting the widest structure exactly.
	d, err := nbr.New(nbr.Options{Structure: "dgt", MaxThreads: 2})
	if err != nil {
		t.Fatal(err)
	}
	ds, dr := d.Runtime().Widths()
	if s, r := rt.Widths(); s != ds || r != dr {
		t.Fatalf("Runtime widths %d/%d != Domain widths %d/%d", s, r, ds, dr)
	}

	l, err := rt.Acquire() // freezes the widths
	if err != nil {
		t.Fatal(err)
	}
	defer l.Release()
	if s, r := rt.Widths(); s != 3 || r != 3 {
		t.Fatalf("widths changed across materialization: %d/%d", s, r)
	}
}

// TestRuntimePostLeaseWidening pins the freeze: once a lease has been
// handed out the scheme's announcement widths cannot grow, so an attachment
// declaring wider needs is rejected — while one that fits still attaches.
func TestRuntimePostLeaseWidening(t *testing.T) {
	rt, err := nbr.NewRuntime(nbr.RuntimeOptions{MaxThreads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.NewSet("lazylist"); err != nil {
		t.Fatal(err)
	}
	l, err := rt.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.NewSet("harris"); err == nil {
		t.Fatal("harris (3 protect slots) must not widen a materialized 2-slot scheme")
	}
	// hmlist declares the same widths as lazylist: it must attach late and
	// be fully usable under the live lease.
	s, err := rt.NewSet("hmlist")
	if err != nil {
		t.Fatalf("width-compatible late attach rejected: %v", err)
	}
	s.Insert(l, 9)
	if !s.Contains(l, 9) {
		t.Fatal("late-attached set unusable under a live lease")
	}
	s.Delete(l, 9)
	l.Release()
	if err := rt.Drain(); err != nil {
		t.Fatal(err)
	}
}

// TestRuntimeStructuresOption pins pre-declaration: naming a structure kind
// in RuntimeOptions.Structures reserves its widths from the registry, so it
// can attach after leases exist even though nothing else declared its
// widths; unknown names fail construction.
func TestRuntimeStructuresOption(t *testing.T) {
	rt, err := nbr.NewRuntime(nbr.RuntimeOptions{MaxThreads: 2, Structures: []string{"dgt"}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.NewSet("lazylist"); err != nil {
		t.Fatal(err)
	}
	l, err := rt.Acquire() // freezes at dgt's pre-declared 3/3, not lazylist's 2/2
	if err != nil {
		t.Fatal(err)
	}
	defer l.Release()
	dgt, err := rt.NewSet("dgt")
	if err != nil {
		t.Fatalf("pre-declared structure rejected after lease: %v", err)
	}
	dgt.Insert(l, 3)
	if !dgt.Contains(l, 3) {
		t.Fatal("pre-declared late attachment unusable")
	}

	if _, err := nbr.NewRuntime(nbr.RuntimeOptions{Structures: []string{"bogus"}}); err == nil {
		t.Fatal("unknown structure kind in Structures must fail construction")
	}
}

// TestRuntimeStagedFreesDrain pins the staging lifecycle through the public
// API: interleaved retires across structures may sit in the hub's staging
// buffers mid-lease, but a release flushes them — StagedFrees reads zero
// with every lease released, and the books balance after Drain.
func TestRuntimeStagedFreesDrain(t *testing.T) {
	rt, err := nbr.NewRuntime(nbr.RuntimeOptions{MaxThreads: 2, BagSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	names := []string{"lazylist", "harris", "dgt"}
	sets := make([]*nbr.Set, len(names))
	for i, n := range names {
		if sets[i], err = rt.NewSet(n); err != nil {
			t.Fatal(err)
		}
	}
	l, err := rt.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	// Round-robin insert/delete pairs: the adversarially interleaved retire
	// stream the staging buffers exist for.
	for i := 0; i < 4000; i++ {
		s := sets[i%len(sets)]
		key := uint64(i%97) + 1
		s.Insert(l, key)
		s.Delete(l, key)
	}
	l.Release()
	if staged := rt.StagedFrees(); staged != 0 {
		t.Fatalf("StagedFrees = %d after every lease released, want 0", staged)
	}
	if err := rt.Drain(); err != nil {
		t.Fatal(err)
	}
	if st := rt.Stats(); st.Retired != st.Freed {
		t.Fatalf("retired %d != freed %d", st.Retired, st.Freed)
	}
	if staged := rt.StagedFrees(); staged != 0 {
		t.Fatalf("StagedFrees = %d after drain, want 0", staged)
	}
}

// TestRuntimeCrossRuntimePanics pins the misuse guard: a lease from one
// runtime must not drive a set attached to another.
func TestRuntimeCrossRuntimePanics(t *testing.T) {
	rtA, _ := nbr.NewRuntime(nbr.RuntimeOptions{MaxThreads: 2})
	rtB, _ := nbr.NewRuntime(nbr.RuntimeOptions{MaxThreads: 2})
	setB, err := rtB.NewSet("lazylist")
	if err != nil {
		t.Fatal(err)
	}
	l, err := rtA.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	defer l.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("cross-runtime lease use must panic")
		}
	}()
	setB.Insert(l, 1)
}

// TestRuntimeRejectsBadAttachments pins NewSet's gatekeeping: Table 1
// violations and unknown structures are refused.
func TestRuntimeRejectsBadAttachments(t *testing.T) {
	rt, err := nbr.NewRuntime(nbr.RuntimeOptions{Scheme: "nbr+"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.NewSet("hmlist-norestart"); err == nil {
		t.Fatal("hmlist-norestart under NBR+ must be rejected (Requirement 12)")
	}
	if _, err := rt.NewSet("bogus"); err == nil {
		t.Fatal("unknown structure must be rejected")
	}
	rtHP, err := nbr.NewRuntime(nbr.RuntimeOptions{Scheme: "hp"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rtHP.NewSet("abtree"); err == nil {
		t.Fatal("abtree under HP must be rejected (no reachability validation)")
	}
}

// TestRuntimeLeaseWithoutDomainPanics pins the Lease sugar contract: a
// Runtime-issued lease has no home set, so the Domain-style convenience
// methods must refuse loudly instead of guessing a structure.
func TestRuntimeLeaseWithoutDomainPanics(t *testing.T) {
	rt, _ := nbr.NewRuntime(nbr.RuntimeOptions{MaxThreads: 2})
	if _, err := rt.NewSet("lazylist"); err != nil {
		t.Fatal(err)
	}
	l, err := rt.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	defer l.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("Lease.Insert on a Runtime lease must panic")
		}
	}()
	l.Insert(1)
}

// TestDomainRuntimeAttachment pins the thin-attachment refactor: a Domain
// exposes its runtime, further sets share the domain's slots and bound, and
// the domain lease drives both the sugar methods and explicit sets.
func TestDomainRuntimeAttachment(t *testing.T) {
	d, err := nbr.New(nbr.Options{Structure: "lazylist", Scheme: "nbr+", MaxThreads: 4, BagSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	rt := d.Runtime()
	// A domain's scheme is sized to its own structure's announcement widths,
	// so attachments must fit under them: hmlist (2 protect slots, 2
	// reservations) fits a lazylist domain; harris (3 slots) must be
	// refused rather than overrun the reservation rows.
	if _, err := rt.NewSet("harris"); err == nil {
		t.Fatal("harris must not fit a lazylist-width domain runtime")
	}
	extra, err := rt.NewSet("hmlist")
	if err != nil {
		t.Fatal(err)
	}
	l, err := d.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	l.Insert(7)        // the domain's own set, via the sugar
	extra.Insert(l, 7) // the attached set, via the same lease
	if !l.Contains(7) || !extra.Contains(l, 7) {
		t.Fatal("one lease must drive both the domain set and the attachment")
	}
	l.Delete(7)
	extra.Delete(l, 7)
	l.Release()
	if err := rt.Drain(); err != nil {
		t.Fatal(err)
	}
	if st := rt.Stats(); st.Retired != st.Freed {
		t.Fatalf("retired %d != freed %d", st.Retired, st.Freed)
	}
}
