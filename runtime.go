package nbr

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"nbr/internal/bench"
	"nbr/internal/ds"
	"nbr/internal/mem"
	"nbr/internal/smr"
)

// This file is the shared reclamation runtime. The paper's machinery —
// signals, reservations, bounded garbage — is per-*thread*, not
// per-*structure*, so a service hosting several concurrent sets should not
// pay one lease, one registry and one signal group per structure. A Runtime
// owns exactly one smr.Registry, one scheme instance and one shared arena (a
// mem.Hub routing to each structure's pool by the arena tag carried in every
// handle), and hands out a single Lease valid across every Set attached to
// it. One lease per request covers all of a handler's structures; the
// garbage bound is declared once per runtime and covers every structure's
// retired records, because they all live in the same per-thread bags.
//
// Single-structure users keep the unchanged nbr.New Domain API, which is now
// a thin wrapper over a one-set Runtime.

// RuntimeOptions configures a Runtime. The zero value selects NBR+ sized
// for a moderately parallel host, exactly like Options.
type RuntimeOptions struct {
	// Scheme names the reclamation scheme (see Schemes). Default "nbr+".
	Scheme string
	// MaxThreads is the lease-registry capacity shared by every attached
	// structure: the most goroutines that can hold a lease at once. Default
	// 2·GOMAXPROCS, at least 8.
	MaxThreads int
	// MaxStructures caps how many Sets can attach (the arena-tag space of a
	// handle). Default — and maximum — mem.MaxTags.
	MaxStructures int

	// The scheme knobs, as in Options (zero selects each scheme's default).
	BagSize    int     // NBR limbo-bag HiWatermark
	LoFraction float64 // NBR+ LoWatermark position
	ScanFreq   int     // NBR+ announceTS scan cadence
	Threshold  int     // retire-buffer depth for hp/he/ibr/qsbr/rcu
	EraFreq    int     // era-advance period for he/ibr
	SendSpin   int     // simulated signal-send cost
	HandleSpin int     // simulated signal-delivery cost
}

func (o RuntimeOptions) withDefaults() RuntimeOptions {
	if o.Scheme == "" {
		o.Scheme = "nbr+"
	}
	if o.MaxThreads <= 0 {
		o.MaxThreads = 2 * runtime.GOMAXPROCS(0)
		if o.MaxThreads < 8 {
			o.MaxThreads = 8
		}
	}
	if o.MaxStructures <= 0 || o.MaxStructures > mem.MaxTags {
		o.MaxStructures = mem.MaxTags
	}
	return o
}

// Runtime is one shared reclamation substrate: one thread-lease registry,
// one reclamation scheme, one arena hub, any number of attached structures.
// All methods are safe for concurrent use except where noted on Set.
type Runtime struct {
	opts   RuntimeOptions
	req    ds.Requirements // announcement widths the scheme was built with
	hub    *mem.Hub
	scheme smr.Scheme
	reg    *smr.Registry

	mu   sync.Mutex // guards sets (attachment vs. aggregation)
	sets []*Set

	// Admission control: AcquireCtx callers blocked on a full registry wait
	// here in FIFO order; every lease release hands the head a baton.
	admitMu sync.Mutex
	waiters []chan struct{}
}

// NewRuntime creates a Runtime with no structures attached. The scheme is
// constructed at the conservative announcement widths every structure in the
// harness fits under (ds.DefaultRequirements), since structures attach
// later; NewSet rejects a structure that would not fit.
func NewRuntime(opts RuntimeOptions) (*Runtime, error) {
	req := ds.DefaultRequirements
	req.Threshold = ds.DefaultThreshold
	return newRuntimeOver(mem.NewHub(), opts, req)
}

// newRuntimeOver builds the registry/scheme/arena triple over an existing
// hub at explicit announcement widths — the shared core of NewRuntime and
// the single-structure New, which knows its structure's exact widths before
// the scheme exists.
func newRuntimeOver(hub *mem.Hub, opts RuntimeOptions, req ds.Requirements) (*Runtime, error) {
	opts = opts.withDefaults()
	cfg := bench.SchemeConfig{
		BagSize:    opts.BagSize,
		LoFraction: opts.LoFraction,
		ScanFreq:   opts.ScanFreq,
		Threshold:  opts.Threshold,
		EraFreq:    opts.EraFreq,
		SendSpin:   opts.SendSpin,
		HandleSpin: opts.HandleSpin,
	}
	scheme, err := bench.NewSchemeFor(opts.Scheme, hub, opts.MaxThreads, cfg, req)
	if err != nil {
		return nil, err
	}
	rt := &Runtime{
		opts:   opts,
		req:    req,
		hub:    hub,
		scheme: scheme,
		reg:    smr.NewRegistry(opts.MaxThreads),
	}
	// Hook order matters: Bind registers the scheme's quiesce hook first, so
	// a departing thread's frees reach its allocator caches before the drain
	// flushes them, and the admission baton is handed only after the slot is
	// fully quiesced.
	rt.reg.Bind(scheme)
	if burst := scheme.ReclaimBurst(); burst > 0 {
		rt.reg.OnAcquire(func(tid int) { hub.SizeCache(tid, burst) })
	}
	rt.reg.OnRelease(func(tid int) { hub.DrainCache(tid) })
	// The admission baton is handed only after the slot has fully entered
	// quarantine (AfterRelease, not OnRelease): the woken waiter's Acquire
	// must be servable by the slot that was just freed.
	rt.reg.AfterRelease(rt.admitNext)
	return rt, nil
}

// NewSet attaches a structure to the runtime: the structure's pool is
// created under the next arena tag and registered with the hub, so records
// it retires are routed home from the runtime's shared bags. The returned
// Set shares the runtime's thread slots, stats and garbage bound with every
// other attachment.
func (rt *Runtime) NewSet(structure string) (*Set, error) {
	if !bench.Runnable(structure, rt.opts.Scheme) {
		return nil, fmt.Errorf("nbr: %s is not runnable under %s (the paper's Table 1)",
			structure, rt.opts.Scheme)
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	tag := rt.hub.NextTag()
	if tag >= rt.opts.MaxStructures {
		return nil, fmt.Errorf("nbr: runtime full (%d structures attached)", tag)
	}
	inst, err := bench.NewDSArena(structure, mem.Config{MaxThreads: rt.opts.MaxThreads, Tag: tag})
	if err != nil {
		return nil, err
	}
	if inst.Req.Slots > rt.req.Slots || inst.Req.Reservations > rt.req.Reservations {
		return nil, fmt.Errorf("nbr: %s needs %d protect slots and %d reservations; the runtime's scheme was built with %d/%d",
			structure, inst.Req.Slots, inst.Req.Reservations, rt.req.Slots, rt.req.Reservations)
	}
	rt.hub.Attach(tag, inst.Arena)
	s := &Set{rt: rt, inst: inst, name: structure}
	rt.sets = append(rt.sets, s)
	return s, nil
}

// Acquire leases a thread slot valid across every Set attached to this
// runtime. It fails fast with ErrNoLease when the registry is full; use
// AcquireCtx to wait instead.
func (rt *Runtime) Acquire() (*Lease, error) {
	l, err := rt.reg.Acquire()
	if err != nil {
		return nil, err
	}
	return &Lease{rt: rt, l: l, g: rt.scheme.Guard(l.Tid())}, nil
}

// AcquireCtx leases a thread slot, blocking while the registry is full
// until a slot frees up or ctx is done. Blocked callers are admitted in
// FIFO order — each lease release hands the longest waiter a baton — so an
// oversubscribed server degrades to an orderly queue with deadlines instead
// of a spin-retry storm. (A concurrent non-blocking Acquire can still take
// a freed slot before the woken waiter retries; the waiter then rejoins at
// the tail. Fairness is among waiters, not against barging.)
func (rt *Runtime) AcquireCtx(ctx context.Context) (*Lease, error) {
	if l, err := rt.Acquire(); err == nil || !errors.Is(err, ErrNoLease) {
		return l, err
	}
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		ch := make(chan struct{}, 1)
		rt.admitMu.Lock()
		rt.waiters = append(rt.waiters, ch)
		rt.admitMu.Unlock()
		// A release that landed between the failed Acquire and the enqueue
		// had no waiter to wake; re-try once now that we are visible.
		if l, err := rt.Acquire(); err == nil || !errors.Is(err, ErrNoLease) {
			rt.abandon(ch)
			return l, err
		}
		select {
		case <-ctx.Done():
			rt.abandon(ch)
			return nil, ctx.Err()
		case <-ch:
			if l, err := rt.Acquire(); err == nil || !errors.Is(err, ErrNoLease) {
				return l, err
			}
			// A barger took the slot; rejoin the queue at the tail.
		}
	}
}

// admitNext hands the release baton to the longest-waiting AcquireCtx
// caller. The send happens under admitMu, which is what lets abandon
// distinguish "still queued" from "baton already handed" without a race.
func (rt *Runtime) admitNext() {
	rt.admitMu.Lock()
	defer rt.admitMu.Unlock()
	if len(rt.waiters) > 0 {
		ch := rt.waiters[0]
		rt.waiters = rt.waiters[1:]
		ch <- struct{}{} // buffered, waiter enqueued once: never blocks
	}
}

// abandon removes a waiter from the queue (context cancelled, or admitted
// through a side door). If the waiter had already been handed the baton,
// the baton is forwarded so the wakeup is not lost.
func (rt *Runtime) abandon(ch chan struct{}) {
	rt.admitMu.Lock()
	for i := range rt.waiters {
		if rt.waiters[i] == ch {
			rt.waiters = append(rt.waiters[:i], rt.waiters[i+1:]...)
			rt.admitMu.Unlock()
			return
		}
	}
	// Not queued: admitNext dequeued us, and its send completed under
	// admitMu, so the baton is in the buffer. Pass it on.
	var forward bool
	select {
	case <-ch:
		forward = true
	default:
	}
	rt.admitMu.Unlock()
	if forward {
		rt.admitNext()
	}
}

// ForceRound drives one completed reclamation scan round through the
// scheme — a bracketed collection over the active announcement state — so
// slot-quarantine aging, which rides the scan-round clock, advances on
// demand instead of waiting for organic reclamation cadence. The registry
// calls this internally when an Acquire finds an un-aged quarantined slot;
// it is exported for operators that want to age the quarantine ahead of a
// known admission burst. Returns false if the scheme cannot force rounds.
func (rt *Runtime) ForceRound() bool {
	if f, ok := rt.scheme.(smr.RoundForcer); ok {
		return f.ForceRound()
	}
	return false
}

// ForcedRounds returns how many scan rounds lease admission forced to age
// quarantined slots (operational diagnostic).
func (rt *Runtime) ForcedRounds() uint64 { return rt.reg.ForcedRounds() }

// FallbackReuses returns how many times a quarantined slot was reused on
// the no-scanner proof instead of the two-round aging guarantee. With every
// scheme in the harness this stays zero: the runtime forces the missing
// rounds instead.
func (rt *Runtime) FallbackReuses() uint64 { return rt.reg.FallbackReuses() }

// MaxThreads returns the registry capacity shared by all attached sets.
func (rt *Runtime) MaxThreads() int { return rt.opts.MaxThreads }

// ActiveThreads returns the number of currently held leases (approximate
// under churn).
func (rt *Runtime) ActiveThreads() int { return rt.reg.Active().Count() }

// Waiters returns the number of AcquireCtx callers currently queued.
func (rt *Runtime) Waiters() int {
	rt.admitMu.Lock()
	defer rt.admitMu.Unlock()
	return len(rt.waiters)
}

// Scheme returns the reclamation scheme's name.
func (rt *Runtime) Scheme() string { return rt.scheme.Name() }

// Structures returns the names of the attached sets, in attachment order.
func (rt *Runtime) Structures() []string {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	names := make([]string, len(rt.sets))
	for i, s := range rt.sets {
		names[i] = s.name
	}
	return names
}

// Stats returns the aggregate reclamation counters across every attached
// structure — one scheme, one set of bags, one tally.
func (rt *Runtime) Stats() Stats { return rt.scheme.Stats() }

// MemStats returns the allocator counters summed across every attached
// structure's pool. SlotSize is reported only while exactly one structure
// is attached (pools of different record types have different slot sizes).
func (rt *Runtime) MemStats() MemStats {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	var agg MemStats
	for _, s := range rt.sets {
		st := s.inst.MemStats()
		agg.Allocs += st.Allocs
		agg.Frees += st.Frees
		agg.Live += st.Live
		agg.LiveBytes += st.LiveBytes
		agg.SlabBytes += st.SlabBytes
		agg.GlobalOps += st.GlobalOps
	}
	if len(rt.sets) == 1 {
		agg.SlotSize = rt.sets[0].inst.MemStats().SlotSize
	}
	return agg
}

// GarbageBound returns the runtime's declared worst-case retired-but-unfreed
// record count (or Unbounded). It is declared once per runtime and covers
// every attached structure: all structures retire into the same per-thread
// bags, so the per-structure garbage aggregates inside the single scheme
// bound instead of summing one bound per structure.
func (rt *Runtime) GarbageBound() int { return rt.scheme.GarbageBound() }

// Drain adopts any orphaned records and reclaims everything reclaimable
// across all attached structures, using a temporary lease. At quiescence it
// runs until every retired record is freed; under concurrent traffic it is
// a best-effort pass. Use it before reading final Stats or shutting down.
func (rt *Runtime) Drain() error {
	dr, ok := rt.scheme.(smr.Drainer)
	if !ok {
		return nil
	}
	l, err := rt.reg.Acquire()
	if err != nil {
		return err
	}
	defer l.Release()
	for i := 0; i < 64; i++ {
		st := rt.scheme.Stats()
		if st.Retired == st.Freed {
			break
		}
		dr.Drain(l.Tid())
	}
	return nil
}

// Set is one structure attached to a Runtime. Operations take the lease
// explicitly (set.Insert(lease, key)) because one lease covers many sets.
// Len and Validate are quiescent: no concurrent mutators.
type Set struct {
	rt   *Runtime
	inst bench.Instance
	name string
}

// Name returns the structure's name (see Structures).
func (s *Set) Name() string { return s.name }

// guardOf returns the per-thread guard behind l, refusing a lease from a
// different runtime — its tid indexes another registry's slots, so honoring
// it would alias two threads' announcement rows.
func (s *Set) guardOf(l *Lease) smr.Guard {
	if l.rt != s.rt {
		panic("nbr: lease used with a Set attached to a different Runtime")
	}
	return l.g
}

// Contains reports whether key is in the set.
func (s *Set) Contains(l *Lease, key uint64) bool { return s.inst.Set.Contains(s.guardOf(l), key) }

// Insert adds key, reporting false if it was already present.
func (s *Set) Insert(l *Lease, key uint64) bool { return s.inst.Set.Insert(s.guardOf(l), key) }

// Delete removes key, reporting false if it was absent.
func (s *Set) Delete(l *Lease, key uint64) bool { return s.inst.Set.Delete(s.guardOf(l), key) }

// Len counts the keys in the set. Quiescent: no concurrent mutators.
func (s *Set) Len() int { return s.inst.Set.Len() }

// Validate checks the structure's invariants. Quiescent.
func (s *Set) Validate() error { return s.inst.Set.Validate() }

// MemStats returns this structure's own allocator counters (the runtime's
// MemStats sums them across structures).
func (s *Set) MemStats() MemStats { return s.inst.MemStats() }
