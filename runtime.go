package nbr

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"time"

	"nbr/internal/bench"
	"nbr/internal/ds"
	"nbr/internal/mem"
	"nbr/internal/obs"
	"nbr/internal/sigsim"
	"nbr/internal/smr"
)

// This file is the shared reclamation runtime. The paper's machinery —
// signals, reservations, bounded garbage — is per-*thread*, not
// per-*structure*, so a service hosting several concurrent sets should not
// pay one lease, one registry and one signal group per structure. A Runtime
// owns exactly one smr.Registry, one scheme instance and one shared arena (a
// mem.Hub routing to each structure's pool by the arena tag carried in every
// handle), and hands out a single Lease valid across every Set attached to
// it. One lease per request covers all of a handler's structures; the
// garbage bound is declared once per runtime and covers every structure's
// retired records, because they all live in the same per-thread bags.
//
// Single-structure users keep the unchanged nbr.New Domain API, which is now
// a thin wrapper over a one-set Runtime.

// RuntimeOptions configures a Runtime. The zero value selects NBR+ sized
// for a moderately parallel host, exactly like Options.
type RuntimeOptions struct {
	// Scheme names the reclamation scheme (see Schemes). Default "nbr+".
	Scheme string
	// MaxThreads is the lease-registry capacity shared by every attached
	// structure: the most goroutines that can hold a lease at once. Default
	// 2·GOMAXPROCS, at least 8.
	MaxThreads int
	// MaxStructures caps how many Sets can attach (the arena-tag space of a
	// handle). Default — and maximum — mem.MaxTags.
	MaxStructures int
	// Structures pre-declares the structure kinds this runtime will host
	// (see Structures() for the names). The scheme's announcement widths are
	// sized to cover every declared kind from the width registry, so a
	// structure named here can be attached with NewSet at any time — even
	// after leases are held — without widening the scheme. Leaving it empty
	// sizes the scheme to exactly the structures attached before the first
	// lease (see NewRuntime).
	Structures []string

	// LeaseTimeout, when positive, arms the lease watchdog: every lease gets
	// a reap deadline of Acquire time + LeaseTimeout (override per lease with
	// SetDeadline). A holder still outstanding past its deadline is presumed
	// wedged and reaped — its lease value is revoked (a late Release becomes
	// a counted no-op), a sticky neutralization signal kills a zombie still
	// running on a signal-capable scheme, the shared recovery path quiesces
	// the slot from the watchdog's goroutine, and the slot is handed to the
	// next AcquireCtx waiter. Zero disables reaping (the pre-watchdog
	// behavior: a lost lease strands its slot).
	LeaseTimeout time.Duration

	// The scheme knobs, as in Options (zero selects each scheme's default).
	BagSize    int     // NBR limbo-bag HiWatermark
	LoFraction float64 // NBR+ LoWatermark position
	ScanFreq   int     // NBR+ announceTS scan cadence
	Threshold  int     // retire-buffer depth for hp/he/ibr/qsbr/rcu
	EraFreq    int     // era-advance period for he/ibr
	SendSpin   int     // simulated signal-send cost
	HandleSpin int     // simulated signal-delivery cost
}

func (o RuntimeOptions) withDefaults() RuntimeOptions {
	if o.Scheme == "" {
		o.Scheme = "nbr+"
	}
	if o.MaxThreads <= 0 {
		o.MaxThreads = 2 * runtime.GOMAXPROCS(0)
		if o.MaxThreads < 8 {
			o.MaxThreads = 8
		}
	}
	if o.MaxStructures <= 0 || o.MaxStructures > mem.MaxTags {
		o.MaxStructures = mem.MaxTags
	}
	return o
}

// Runtime is one shared reclamation substrate: one thread-lease registry,
// one reclamation scheme, one arena hub, any number of attached structures.
// All methods are safe for concurrent use except where noted on Set.
//
// The scheme is constructed lazily, at the first Acquire (or Drain): until
// then NewSet grows the announcement widths monotonically to the maximum the
// attached structures declare, so the scheme's reservation and hazard scans
// run at the paper-exact narrow per-DS widths (≤3 reservations for every
// structure in the harness) instead of a conservative global worst case —
// the same widths a single-structure Domain gets. Once the scheme exists the
// widths are frozen: a later NewSet whose structure fits still attaches (and
// is cache-sized for every live slot), but one declaring wider needs is
// rejected — pre-declare such structures via RuntimeOptions.Structures.
type Runtime struct {
	opts RuntimeOptions
	hub  *mem.Hub
	reg  *smr.Registry

	mu   sync.Mutex      // guards sets, req and scheme materialization
	req  ds.Requirements // announcement widths (grown until materialized)
	sets []*Set

	// sch is the materialized scheme: nil until the first Acquire/Drain,
	// immutable after. The atomic pointer keeps the lease path lock-free
	// once materialized; materialization itself serializes under mu.
	sch atomic.Pointer[schemeBox]

	// Admission control: AcquireCtx callers blocked on a full registry wait
	// here in FIFO order; every lease release hands the head a baton.
	admitMu sync.Mutex
	waiters []chan struct{}

	// Lease watchdog: outstanding deadlines keyed by the smr lease (unique
	// per acquire). The reaper goroutine runs only while deadlines exist.
	watchMu sync.Mutex
	watched map[*smr.Lease]time.Time
	watchOn bool

	// rec is the flight recorder shared by the whole pipeline (registry,
	// scheme, signal group, hub, admission). Created disabled — every
	// instrumented hot path costs one predictable branch — and switched on
	// with Observe; Debug()/expvar expose its timeline and histograms.
	rec *obs.Recorder
}

// schemeBox wraps the scheme interface so it fits an atomic.Pointer.
type schemeBox struct {
	s smr.Scheme
}

// NewRuntime creates a Runtime with no structures attached. Structure kinds
// named in opts.Structures are resolved through the width registry and
// widen the (not-yet-built) scheme up front; unknown names are rejected.
func NewRuntime(opts RuntimeOptions) (*Runtime, error) {
	opts = opts.withDefaults()
	req, err := bench.MaxRequirements(opts.Structures)
	if err != nil {
		return nil, fmt.Errorf("nbr: RuntimeOptions.Structures: %w", err)
	}
	rt := &Runtime{
		opts: opts,
		req:  req,
		hub:  mem.NewHub(opts.MaxThreads),
		reg:  smr.NewRegistry(opts.MaxThreads),
		rec:  obs.NewRecorder(opts.MaxThreads),
	}
	// Recorder wiring precedes Bind (materialize), so the scheme adopts the
	// same timeline when it is built.
	rt.reg.SetRecorder(rt.rec)
	rt.hub.SetRecorder(rt.rec)
	// The admission baton is handed only after the slot has fully entered
	// quarantine (AfterRelease, not OnRelease): the woken waiter's Acquire
	// must be servable by the slot that was just freed.
	rt.reg.AfterRelease(rt.admitNext)
	return rt, nil
}

// materialize builds the scheme at the widths grown so far and wires it into
// the registry; idempotent, and a no-op once built. Every path that hands
// out a guard (Acquire) or drives the scheme (Drain, ForceRound) goes
// through it, so "materialized" and "a lease may exist" coincide — which is
// why NewSet can treat a materialized scheme as width-frozen.
func (rt *Runtime) materialize() (smr.Scheme, error) {
	if b := rt.sch.Load(); b != nil {
		return b.s, nil
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if b := rt.sch.Load(); b != nil {
		return b.s, nil
	}
	req := rt.req
	if req.Threshold <= 0 {
		req.Threshold = ds.DefaultThreshold
	}
	cfg := bench.SchemeConfig{
		BagSize:    rt.opts.BagSize,
		LoFraction: rt.opts.LoFraction,
		ScanFreq:   rt.opts.ScanFreq,
		Threshold:  rt.opts.Threshold,
		EraFreq:    rt.opts.EraFreq,
		SendSpin:   rt.opts.SendSpin,
		HandleSpin: rt.opts.HandleSpin,
	}
	scheme, err := bench.NewSchemeFor(rt.opts.Scheme, rt.hub, rt.opts.MaxThreads, cfg, req)
	if err != nil {
		return nil, err
	}
	// Hook order matters: Bind registers the scheme's quiesce hook first, so
	// a departing thread's frees reach the hub's staging buffers and its
	// allocator caches before the drain hook flushes them.
	rt.reg.Bind(scheme)
	if burst := scheme.ReclaimBurst(); burst > 0 {
		rt.reg.OnAcquire(func(tid int) { rt.hub.SizeCache(tid, burst) })
	}
	rt.reg.OnRelease(func(tid int) { rt.hub.DrainCache(tid) })
	rt.req = req
	rt.sch.Store(&schemeBox{s: scheme})
	return scheme, nil
}

// NewSet attaches a structure to the runtime: the structure's pool is
// created under the next arena tag and registered with the hub, so records
// it retires are routed home from the runtime's shared bags. The returned
// Set shares the runtime's thread slots, stats and garbage bound with every
// other attachment.
//
// Before the first lease, an attachment may widen the scheme's announcement
// widths (they grow to the maximum any attached structure declares). After
// the first lease the widths are frozen: a structure that fits them still
// attaches — its pool is sized for every live slot exactly as if it had
// been attached up front — but a wider one is rejected; pre-declare it in
// RuntimeOptions.Structures to reserve its widths.
func (rt *Runtime) NewSet(structure string) (*Set, error) {
	if !bench.Runnable(structure, rt.opts.Scheme) {
		return nil, fmt.Errorf("nbr: %s is not runnable under %s (the paper's Table 1)",
			structure, rt.opts.Scheme)
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	tag := rt.hub.NextTag()
	if tag >= rt.opts.MaxStructures {
		return nil, fmt.Errorf("nbr: runtime full (%d structures attached)", tag)
	}
	inst, err := bench.NewDSArena(structure, mem.Config{MaxThreads: rt.opts.MaxThreads, Tag: tag})
	if err != nil {
		return nil, err
	}
	if rt.sch.Load() != nil {
		// Width-frozen: the scheme exists, so its reservation rows and
		// hazard arrays cannot grow under live guards.
		if inst.Req.Slots > rt.req.Slots || inst.Req.Reservations > rt.req.Reservations {
			return nil, fmt.Errorf("nbr: %s needs %d protect slots and %d reservations, but the runtime's scheme is already built at %d/%d; attach it before the first lease or pre-declare it in RuntimeOptions.Structures",
				structure, inst.Req.Slots, inst.Req.Reservations, rt.req.Slots, rt.req.Reservations)
		}
	} else {
		if inst.Req.Slots > rt.req.Slots {
			rt.req.Slots = inst.Req.Slots
		}
		if inst.Req.Reservations > rt.req.Reservations {
			rt.req.Reservations = inst.Req.Reservations
		}
		if inst.Req.Threshold > rt.req.Threshold {
			rt.req.Threshold = inst.Req.Threshold
		}
	}
	rt.hub.Attach(tag, inst.Arena)
	s := &Set{rt: rt, inst: inst, name: structure}
	rt.sets = append(rt.sets, s)
	return s, nil
}

// Widths returns the announcement widths the runtime's scans run at: the
// number of Protect slots and Reserve slots per thread. Before the first
// lease they track the widest attached structure (every scan is N·width
// entries, so narrow widths are the Domain-parity fast path); after it they
// are frozen.
func (rt *Runtime) Widths() (protectSlots, reservations int) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	req := rt.req
	if rt.sch.Load() == nil {
		// Report what materialize would build right now.
		if req.Slots <= 0 {
			req.Slots = ds.DefaultRequirements.Slots
		}
		if req.Reservations <= 0 {
			req.Reservations = ds.DefaultRequirements.Reservations
		}
	}
	return req.Slots, req.Reservations
}

// StagedFrees returns the number of records currently sitting in the shared
// arena's per-thread free-staging buffers: counted as freed by the scheme,
// not yet released to their owning pools. Every lease release flushes its
// slot's buffers, so this reads zero once all leases are released.
func (rt *Runtime) StagedFrees() int { return int(rt.hub.Staged()) }

// Acquire leases a thread slot valid across every Set attached to this
// runtime. It fails fast with ErrNoLease when the registry is full; use
// AcquireCtx to wait instead. The first Acquire freezes the scheme's
// announcement widths (see NewSet).
func (rt *Runtime) Acquire() (*Lease, error) {
	scheme, err := rt.materialize()
	if err != nil {
		return nil, err
	}
	l, err := rt.reg.Acquire()
	if err != nil {
		return nil, err
	}
	if d := rt.opts.LeaseTimeout; d > 0 {
		rt.watchLease(l, time.Now().Add(d))
	}
	return &Lease{rt: rt, l: l, g: scheme.Guard(l.Tid())}, nil
}

// With runs fn under a freshly acquired lease and guarantees the lease is
// returned through the shared recovery path whatever happens inside: on a
// clean return, on an error, and on a panic — which is recovered, the lease
// released, and then rethrown. A panic caused by the watchdog reaping this
// very lease (the holder overran its deadline and got neutralized) is not
// rethrown: the release is already a counted no-op and fn's work is void, so
// With reports ErrLeaseReaped instead. This is the recommended way to write
// request handlers: a handler that panics or overruns can never strand a
// slot.
func (rt *Runtime) With(ctx context.Context, fn func(*Lease) error) error {
	return rt.with(ctx, nil, fn)
}

func (rt *Runtime) with(ctx context.Context, home *Set, fn func(*Lease) error) (err error) {
	l, err := rt.AcquireCtx(ctx)
	if err != nil {
		return err
	}
	l.set = home
	defer func() {
		p := recover()
		l.Release()
		if p == nil {
			if err == nil && l.Revoked() {
				err = ErrLeaseReaped
			}
			return
		}
		if _, ok := p.(sigsim.Revoked); ok {
			err = ErrLeaseReaped
			return
		}
		panic(p)
	}()
	// The lease session runs under pprof labels so CPU profiles attribute
	// samples — including the reclamation work fn's retires trigger — to the
	// scheme and structure doing it.
	structure := "runtime"
	if home != nil {
		structure = home.name
	}
	pprof.Do(ctx, pprof.Labels("scheme", rt.Scheme(), "structure", structure), func(context.Context) {
		err = fn(l)
	})
	return err
}

// watchLease registers (or moves) a lease's reap deadline and makes sure the
// watchdog goroutine is running.
func (rt *Runtime) watchLease(l *smr.Lease, at time.Time) {
	rt.watchMu.Lock()
	if rt.watched == nil {
		rt.watched = make(map[*smr.Lease]time.Time)
	}
	rt.watched[l] = at
	if !rt.watchOn {
		rt.watchOn = true
		go func() {
			// Label the reaper so profiles attribute recovery work (which
			// runs on this goroutine, not the wedged holder's) to it.
			pprof.Do(context.Background(),
				pprof.Labels("scheme", rt.opts.Scheme, "structure", "watchdog"),
				func(context.Context) { rt.watchdog() })
		}()
	}
	rt.watchMu.Unlock()
}

// unwatchLease drops a lease from the watchdog (voluntary release, or a
// deadline cleared with SetDeadline's zero time).
func (rt *Runtime) unwatchLease(l *smr.Lease) {
	rt.watchMu.Lock()
	delete(rt.watched, l)
	rt.watchMu.Unlock()
}

// watchdog is the reaper loop: it sleeps until the earliest outstanding
// deadline, revokes every over-deadline lease through the registry's shared
// recovery path (Registry.Revoke — recovery runs HERE, on the reaper's
// goroutine, including the allocator-cache drain), and exits when no
// deadline remains (the next watchLease restarts it). A revoked slot's
// after-release hook hands the admission baton to the longest AcquireCtx
// waiter exactly like a voluntary release.
func (rt *Runtime) watchdog() {
	for {
		rt.watchMu.Lock()
		if len(rt.watched) == 0 {
			rt.watchOn = false
			rt.watchMu.Unlock()
			return
		}
		now := time.Now()
		type overdue struct {
			l  *smr.Lease
			at time.Time
		}
		var expired []overdue
		next := now.Add(time.Minute)
		for l, at := range rt.watched {
			if !at.After(now) {
				expired = append(expired, overdue{l, at})
				delete(rt.watched, l)
			} else if at.Before(next) {
				next = at
			}
		}
		rt.watchMu.Unlock()
		if len(expired) > 0 {
			for _, e := range expired {
				if rt.reg.Revoke(e.l) {
					// Reap latency: deadline → revocation delivered.
					rt.rec.Observe(obs.HistReapLatency, time.Since(e.at).Nanoseconds())
					rt.rec.Sys(obs.EvReap, uint64(e.l.Tid()))
				}
			}
			continue // deadlines may have moved while we reaped
		}
		d := time.Until(next)
		if d < time.Millisecond {
			d = time.Millisecond
		}
		time.Sleep(d)
	}
}

// ReapedLeases returns how many leases the watchdog has revoked from
// over-deadline holders.
func (rt *Runtime) ReapedLeases() uint64 { return rt.reg.ReapedLeases() }

// RevokedReleases returns how many Release calls arrived on an
// already-reaped lease — each one a zombie holder waking up late, made
// harmless by the distinct-lease-value guard.
func (rt *Runtime) RevokedReleases() uint64 { return rt.reg.RevokedReleases() }

// OrphansAdopted returns how many orphaned records reclaimers have adopted
// from the runtime's shared orphan list.
func (rt *Runtime) OrphansAdopted() uint64 { return rt.reg.OrphansAdopted() }

// AcquireCtx leases a thread slot, blocking while the registry is full
// until a slot frees up or ctx is done. Blocked callers are admitted in
// FIFO order — each lease release hands the longest waiter a baton — so an
// oversubscribed server degrades to an orderly queue with deadlines instead
// of a spin-retry storm. (A concurrent non-blocking Acquire can still take
// a freed slot before the woken waiter retries; the waiter then rejoins at
// the tail. Fairness is among waiters, not against barging.)
func (rt *Runtime) AcquireCtx(ctx context.Context) (*Lease, error) {
	if l, err := rt.Acquire(); err == nil || !errors.Is(err, ErrNoLease) {
		return l, err
	}
	// Admission wait runs first enqueue → admitted, spanning any barge-forced
	// re-queues; 0 means the recorder was off when the wait began.
	t0 := rt.rec.Clock()
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		ch := make(chan struct{}, 1)
		rt.admitMu.Lock()
		rt.waiters = append(rt.waiters, ch)
		depth := len(rt.waiters)
		rt.admitMu.Unlock()
		rt.rec.Adm(obs.EvAdmitEnqueue, uint64(depth))
		// A release that landed between the failed Acquire and the enqueue
		// had no waiter to wake; re-try once now that we are visible.
		if l, err := rt.Acquire(); err == nil || !errors.Is(err, ErrNoLease) {
			rt.abandon(ch)
			if err == nil {
				rt.rec.ObserveSince(obs.HistAdmissionWait, t0)
			}
			return l, err
		}
		select {
		case <-ctx.Done():
			rt.abandon(ch)
			rt.rec.Adm(obs.EvAdmitCancel, 0)
			return nil, ctx.Err()
		case <-ch:
			if l, err := rt.Acquire(); err == nil || !errors.Is(err, ErrNoLease) {
				if err == nil {
					rt.rec.ObserveSince(obs.HistAdmissionWait, t0)
					rt.rec.Adm(obs.EvAdmitBaton, 0)
				}
				return l, err
			}
			// A barger took the slot; rejoin the queue at the tail.
		}
	}
}

// admitNext hands the release baton to the longest-waiting AcquireCtx
// caller. The send happens under admitMu, which is what lets abandon
// distinguish "still queued" from "baton already handed" without a race.
func (rt *Runtime) admitNext() {
	rt.admitMu.Lock()
	defer rt.admitMu.Unlock()
	if len(rt.waiters) > 0 {
		ch := rt.waiters[0]
		rt.waiters = rt.waiters[1:]
		ch <- struct{}{} // buffered, waiter enqueued once: never blocks
	}
}

// abandon removes a waiter from the queue (context cancelled, or admitted
// through a side door). If the waiter had already been handed the baton,
// the baton is forwarded so the wakeup is not lost.
func (rt *Runtime) abandon(ch chan struct{}) {
	rt.admitMu.Lock()
	for i := range rt.waiters {
		if rt.waiters[i] == ch {
			rt.waiters = append(rt.waiters[:i], rt.waiters[i+1:]...)
			rt.admitMu.Unlock()
			return
		}
	}
	// Not queued: admitNext dequeued us, and its send completed under
	// admitMu, so the baton is in the buffer. Pass it on.
	var forward bool
	select {
	case <-ch:
		forward = true
	default:
	}
	rt.admitMu.Unlock()
	if forward {
		rt.admitNext()
	}
}

// ForceRound drives one completed reclamation scan round through the
// scheme — a bracketed collection over the active announcement state — so
// slot-quarantine aging, which rides the scan-round clock, advances on
// demand instead of waiting for organic reclamation cadence. The registry
// calls this internally when an Acquire finds an un-aged quarantined slot;
// it is exported for operators that want to age the quarantine ahead of a
// known admission burst. Returns false if the scheme cannot force rounds.
func (rt *Runtime) ForceRound() bool {
	scheme, err := rt.materialize()
	if err != nil {
		return false
	}
	if f, ok := scheme.(smr.RoundForcer); ok {
		return f.ForceRound()
	}
	return false
}

// ForcedRounds returns how many scan rounds lease admission forced to age
// quarantined slots (operational diagnostic).
func (rt *Runtime) ForcedRounds() uint64 { return rt.reg.ForcedRounds() }

// FallbackReuses returns how many times a quarantined slot was reused on
// the no-scanner proof instead of the two-round aging guarantee. With every
// scheme in the harness this stays zero: the runtime forces the missing
// rounds instead.
func (rt *Runtime) FallbackReuses() uint64 { return rt.reg.FallbackReuses() }

// MaxThreads returns the registry capacity shared by all attached sets.
func (rt *Runtime) MaxThreads() int { return rt.opts.MaxThreads }

// ActiveThreads returns the number of currently held leases (approximate
// under churn).
func (rt *Runtime) ActiveThreads() int { return rt.reg.Active().Count() }

// Waiters returns the number of AcquireCtx callers currently queued.
func (rt *Runtime) Waiters() int {
	rt.admitMu.Lock()
	defer rt.admitMu.Unlock()
	return len(rt.waiters)
}

// Scheme returns the reclamation scheme's name. Before the first lease this
// is the configured name (the scheme is built lazily); note the leaky scheme
// reports itself as "none" once built, matching its config alias.
func (rt *Runtime) Scheme() string {
	if b := rt.sch.Load(); b != nil {
		return b.s.Name()
	}
	if rt.opts.Scheme == "leaky" {
		return "none"
	}
	return rt.opts.Scheme
}

// Structures returns the names of the attached sets, in attachment order.
func (rt *Runtime) Structures() []string {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	names := make([]string, len(rt.sets))
	for i, s := range rt.sets {
		names[i] = s.name
	}
	return names
}

// Stats returns the aggregate reclamation counters across every attached
// structure — one scheme, one set of bags, one tally. Before the first lease
// every counter is zero (nothing can retire without a lease), so the zero
// value is returned without building the scheme.
func (rt *Runtime) Stats() Stats {
	if b := rt.sch.Load(); b != nil {
		return b.s.Stats()
	}
	return Stats{}
}

// MemStats returns the allocator counters summed across every attached
// structure's pool. SlotSize is reported only while exactly one structure
// is attached (pools of different record types have different slot sizes).
func (rt *Runtime) MemStats() MemStats {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	var agg MemStats
	for _, s := range rt.sets {
		st := s.inst.MemStats()
		agg.Allocs += st.Allocs
		agg.Frees += st.Frees
		agg.Live += st.Live
		agg.LiveBytes += st.LiveBytes
		agg.SlabBytes += st.SlabBytes
		agg.GlobalOps += st.GlobalOps
	}
	if len(rt.sets) == 1 {
		agg.SlotSize = rt.sets[0].inst.MemStats().SlotSize
	}
	return agg
}

// GarbageBound returns the runtime's declared worst-case retired-but-unfreed
// record count (or Unbounded). It is declared once per runtime and covers
// every attached structure: all structures retire into the same per-thread
// bags, so the per-structure garbage aggregates inside the single scheme
// bound instead of summing one bound per structure. Before the first lease
// the bound is 0 — no lease, no retire, no garbage — and it rises to the
// scheme's declared bound when the first Acquire builds the scheme.
func (rt *Runtime) GarbageBound() int {
	if b := rt.sch.Load(); b != nil {
		return b.s.GarbageBound()
	}
	return 0
}

// Drain adopts any orphaned records and reclaims everything reclaimable
// across all attached structures, using a temporary lease. At quiescence it
// runs until every retired record is freed; under concurrent traffic it is
// a best-effort pass. Use it before reading final Stats or shutting down.
func (rt *Runtime) Drain() error {
	scheme, err := rt.materialize()
	if err != nil {
		return err
	}
	dr, ok := scheme.(smr.Drainer)
	if !ok {
		return nil
	}
	l, err := rt.reg.Acquire()
	if err != nil {
		return err
	}
	defer l.Release()
	for i := 0; i < 64; i++ {
		st := scheme.Stats()
		if st.Retired == st.Freed {
			break
		}
		dr.Drain(l.Tid())
	}
	return nil
}

// Set is one structure attached to a Runtime. Operations take the lease
// explicitly (set.Insert(lease, key)) because one lease covers many sets.
// Len and Validate are quiescent: no concurrent mutators.
type Set struct {
	rt   *Runtime
	inst bench.Instance
	name string
}

// Name returns the structure's name (see Structures).
func (s *Set) Name() string { return s.name }

// guardOf returns the per-thread guard behind l, refusing a lease from a
// different runtime — its tid indexes another registry's slots, so honoring
// it would alias two threads' announcement rows — and killing a zombie: a
// lease the watchdog reaped panics sigsim.Revoked on its next operation, so
// holders of schemes without mid-operation signal delivery are still caught
// before they can race the slot's successor. With converts the unwind into
// ErrLeaseReaped.
func (s *Set) guardOf(l *Lease) smr.Guard {
	if l.rt != s.rt {
		panic("nbr: lease used with a Set attached to a different Runtime")
	}
	if l.l.Revoked() {
		panic(sigsim.Revoked{})
	}
	return l.g
}

// Contains reports whether key is in the set.
func (s *Set) Contains(l *Lease, key uint64) bool { return s.inst.Set.Contains(s.guardOf(l), key) }

// Insert adds key, reporting false if it was already present.
func (s *Set) Insert(l *Lease, key uint64) bool { return s.inst.Set.Insert(s.guardOf(l), key) }

// Delete removes key, reporting false if it was absent.
func (s *Set) Delete(l *Lease, key uint64) bool { return s.inst.Set.Delete(s.guardOf(l), key) }

// Len counts the keys in the set. Quiescent: no concurrent mutators.
func (s *Set) Len() int { return s.inst.Set.Len() }

// Validate checks the structure's invariants. Quiescent.
func (s *Set) Validate() error { return s.inst.Set.Validate() }

// MemStats returns this structure's own allocator counters (the runtime's
// MemStats sums them across structures).
func (s *Set) MemStats() MemStats { return s.inst.MemStats() }
