package nbr

import (
	"context"
	"errors"
	"time"

	"nbr/internal/bench"
	"nbr/internal/mem"
	"nbr/internal/smr"
)

// This file is the library's single-structure face: a Domain bundles one
// concurrent ordered set with its own private Runtime (registry + scheme +
// arena), so the common case — one structure, one service — needs no
// explicit runtime management. Since the runtime layer landed, Domain is a
// thin attachment: construction builds a one-set Runtime sized to the
// structure's exact announcement widths, and every method delegates.
// Services hosting several structures over one shared registry/arena (one
// lease covering all of them) use NewRuntime/Runtime.NewSet directly; see
// runtime.go and examples/server.

// Stats re-exports the reclamation counters (see smr.Stats).
type Stats = smr.Stats

// MemStats re-exports the allocator counters (see mem.Stats).
type MemStats = mem.Stats

// Unbounded is the GarbageBound sentinel for schemes whose garbage can grow
// without limit.
const Unbounded = smr.Unbounded

// ErrNoLease is returned by Acquire when every thread slot is held.
// Callers back off and retry, use AcquireCtx to wait with a deadline, or
// treat it as admission control.
var ErrNoLease = smr.ErrRegistryFull

// ErrLeaseReaped is returned by With when the lease it was running under
// overran its deadline and was revoked by the watchdog: the handler's slot
// has already been recovered and handed on, so its work must be considered
// void (retry under a fresh lease if it is idempotent).
var ErrLeaseReaped = errors.New("nbr: lease deadline overrun; slot reaped by the watchdog")

// MinKey and MaxKey bound the usable key space; both are sentinels — Insert,
// Delete and Contains accept keys strictly between them.
const (
	MinKey uint64 = 0
	MaxKey uint64 = ^uint64(0)
)

// Schemes lists the reclamation schemes a Domain can run, in the order the
// paper's figures present them.
func Schemes() []string { return append([]string(nil), bench.SchemeNames...) }

// Structures lists the concurrent ordered sets a Domain can host.
func Structures() []string { return append([]string(nil), bench.DSNames...) }

// Options configures a Domain. The zero value selects the paper's defaults:
// an NBR+-protected lazy list sized for a moderately parallel host.
type Options struct {
	// Structure names the concurrent ordered set (see Structures).
	// Default "lazylist".
	Structure string
	// Scheme names the reclamation scheme (see Schemes). Default "nbr+".
	Scheme string
	// MaxThreads is the lease-registry capacity: the most goroutines that
	// can hold a lease at once. Size it for peak concurrency, not for the
	// total goroutine population — scans and signal broadcasts cost
	// proportional to *live* leases, so over-provisioning is cheap.
	// Default 2·GOMAXPROCS, at least 8.
	MaxThreads int
	// LeaseTimeout arms the lease watchdog (see RuntimeOptions.LeaseTimeout):
	// a holder outstanding past Acquire + LeaseTimeout is reaped and its slot
	// recovered. Zero disables reaping.
	LeaseTimeout time.Duration

	// The scheme knobs, as in the experiments (zero selects each scheme's
	// default; see DESIGN.md §6 for the rationale behind the defaults).
	BagSize    int     // NBR limbo-bag HiWatermark
	LoFraction float64 // NBR+ LoWatermark position
	ScanFreq   int     // NBR+ announceTS scan cadence
	Threshold  int     // retire-buffer depth for hp/he/ibr/qsbr/rcu
	EraFreq    int     // era-advance period for he/ibr
	SendSpin   int     // simulated signal-send cost
	HandleSpin int     // simulated signal-delivery cost
}

func (o Options) withDefaults() Options {
	if o.Structure == "" {
		o.Structure = "lazylist"
	}
	ro := o.runtime().withDefaults()
	o.Scheme = ro.Scheme
	o.MaxThreads = ro.MaxThreads
	return o
}

// runtime maps the Domain options onto the shared-runtime options.
func (o Options) runtime() RuntimeOptions {
	return RuntimeOptions{
		Scheme:       o.Scheme,
		MaxThreads:   o.MaxThreads,
		LeaseTimeout: o.LeaseTimeout,
		BagSize:      o.BagSize,
		LoFraction:   o.LoFraction,
		ScanFreq:     o.ScanFreq,
		Threshold:    o.Threshold,
		EraFreq:      o.EraFreq,
		SendSpin:     o.SendSpin,
		HandleSpin:   o.HandleSpin,
	}
}

// Domain is one reclamation-protected concurrent set with dynamic thread
// membership. Goroutines call Acquire for a Lease, operate through it, and
// Release it when done; leases recycle across any number of short-lived
// goroutines. All methods except Len and Validate are safe for concurrent
// use.
type Domain struct {
	rt  *Runtime
	set *Set
}

// New creates a Domain: a private one-structure Runtime whose scheme is
// sized to exactly the announcement widths the structure declares. Unlike a
// bare Runtime — which defers scheme construction so later attachments can
// widen it — a Domain materializes its scheme eagerly: the structure is
// known, its widths are final, and the domain is ready to serve its first
// Acquire without a construction step on the lease path.
func New(opts Options) (*Domain, error) {
	opts = opts.withDefaults()
	rt, err := NewRuntime(opts.runtime())
	if err != nil {
		return nil, err
	}
	set, err := rt.NewSet(opts.Structure)
	if err != nil {
		return nil, err
	}
	if _, err := rt.materialize(); err != nil {
		return nil, err
	}
	return &Domain{rt: rt, set: set}, nil
}

// Runtime returns the domain's underlying shared-reclamation runtime. More
// structures can be attached to it with NewSet; they share the domain's
// thread slots, stats and garbage bound. Note that a domain's scheme is
// sized to its own structure's exact announcement widths, so NewSet refuses
// attachments declaring wider needs — services planning several structures
// should start from NewRuntime, whose scheme is sized for all of them.
func (d *Domain) Runtime() *Runtime { return d.rt }

// Acquire leases a thread slot for the calling goroutine. Release the lease
// when the goroutine's burst of work is done; holding it across long idle
// periods is harmless (an idle lease blocks nothing under NBR), but the
// registry can only serve MaxThreads concurrent holders.
func (d *Domain) Acquire() (*Lease, error) {
	l, err := d.rt.Acquire()
	if err != nil {
		return nil, err
	}
	l.set = d.set
	return l, nil
}

// AcquireCtx leases a thread slot, blocking FIFO-fairly while the registry
// is full until a slot frees or ctx is done (see Runtime.AcquireCtx).
func (d *Domain) AcquireCtx(ctx context.Context) (*Lease, error) {
	l, err := d.rt.AcquireCtx(ctx)
	if err != nil {
		return nil, err
	}
	l.set = d.set
	return l, nil
}

// With runs fn under a freshly acquired lease with the panic-safe release
// guarantee of Runtime.With; the lease operates on the domain's set directly
// (lease.Insert(key) etc.).
func (d *Domain) With(ctx context.Context, fn func(*Lease) error) error {
	return d.rt.with(ctx, d.set, fn)
}

// MaxThreads returns the registry capacity.
func (d *Domain) MaxThreads() int { return d.rt.MaxThreads() }

// ActiveThreads returns the number of currently held leases (approximate
// under churn).
func (d *Domain) ActiveThreads() int { return d.rt.ActiveThreads() }

// Scheme returns the reclamation scheme's name.
func (d *Domain) Scheme() string { return d.rt.Scheme() }

// Structure returns the data structure's name.
func (d *Domain) Structure() string { return d.set.Name() }

// Stats returns the aggregate reclamation counters.
func (d *Domain) Stats() Stats { return d.rt.Stats() }

// MemStats returns the allocator counters (live records ≈ resident memory).
func (d *Domain) MemStats() MemStats { return d.set.MemStats() }

// GarbageBound returns the scheme's declared worst-case retired-but-unfreed
// record count across all threads (or Unbounded). The bound is declared
// against MaxThreads and holds across lease churn, orphaned records
// included.
func (d *Domain) GarbageBound() int { return d.rt.GarbageBound() }

// Len counts the keys in the set. Quiescent: no concurrent mutators.
func (d *Domain) Len() int { return d.set.Len() }

// Validate checks the structure's invariants. Quiescent.
func (d *Domain) Validate() error { return d.set.Validate() }

// Drain adopts any orphaned records and reclaims everything reclaimable,
// using a temporary lease. At quiescence it runs until every retired record
// is freed; under concurrent traffic it is a best-effort pass. Use it before
// reading final Stats or shutting down.
func (d *Domain) Drain() error { return d.rt.Drain() }

// Lease is one goroutine's membership in a Runtime (and so in every Set
// attached to it): a dense thread slot plus the per-thread guard every
// operation runs under. A Lease must be used by one goroutine at a time and
// released when done; after Release it must not be used.
type Lease struct {
	rt  *Runtime
	set *Set // the home set of a Domain-issued lease; nil for Runtime leases
	l   *smr.Lease
	g   smr.Guard
}

// Tid returns the dense thread slot this lease occupies (diagnostic; slots
// recycle across leases).
func (l *Lease) Tid() int { return l.l.Tid() }

// Release returns the slot to the registry through the shared recovery
// path. The departing thread's unreclaimed records are reclaimed or handed
// to the runtime's orphan list — nothing leaks, whatever state the protocol
// was in. Releasing a lease the watchdog already reaped is a counted no-op
// (see Runtime.RevokedReleases).
func (l *Lease) Release() {
	l.rt.unwatchLease(l.l)
	l.l.Release()
}

// SetDeadline overrides this lease's reap deadline: the watchdog revokes the
// lease if it is still outstanding at t. A zero t clears the deadline,
// opting this lease out of reaping (e.g. a long-running maintenance task on
// a runtime whose LeaseTimeout is tuned for request handlers).
func (l *Lease) SetDeadline(t time.Time) {
	if t.IsZero() {
		l.rt.unwatchLease(l.l)
		return
	}
	l.rt.watchLease(l.l, t)
}

// Revoked reports whether the watchdog reaped this lease. A revoked lease
// must not be used: operations on it panic sigsim.Revoked (converted to
// ErrLeaseReaped by With), and its Release is a counted no-op.
func (l *Lease) Revoked() bool { return l.l.Revoked() }

// home returns the Domain set behind a Domain-issued lease. Runtime leases
// have no home set: one lease covers many sets, so operations go through a
// Set (set.Insert(lease, key)).
func (l *Lease) home() *Set {
	if l.set == nil {
		panic("nbr: lease was issued by a Runtime, not a Domain; operate through a Set (set.Insert(lease, key))")
	}
	return l.set
}

// Contains reports whether key is in the domain's set.
func (l *Lease) Contains(key uint64) bool { return l.home().Contains(l, key) }

// Insert adds key, reporting false if it was already present.
func (l *Lease) Insert(key uint64) bool { return l.home().Insert(l, key) }

// Delete removes key, reporting false if it was absent.
func (l *Lease) Delete(key uint64) bool { return l.home().Delete(l, key) }
