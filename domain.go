package nbr

import (
	"fmt"
	"runtime"

	"nbr/internal/bench"
	"nbr/internal/mem"
	"nbr/internal/smr"
)

// This file is the library's public face: a Domain bundles one concurrent
// ordered set, its reclamation scheme, and a thread-lease registry, so a
// goroutine-pool service can use the paper's machinery without importing
// anything under internal/ or hand-managing dense thread ids. The quickstart
// and server examples are written exclusively against this API.

// Stats re-exports the reclamation counters (see smr.Stats).
type Stats = smr.Stats

// MemStats re-exports the allocator counters (see mem.Stats).
type MemStats = mem.Stats

// Unbounded is the GarbageBound sentinel for schemes whose garbage can grow
// without limit.
const Unbounded = smr.Unbounded

// ErrNoLease is returned by Domain.Acquire when every thread slot is held.
// Callers back off and retry, or treat it as admission control.
var ErrNoLease = smr.ErrRegistryFull

// MinKey and MaxKey bound the usable key space; both are sentinels — Insert,
// Delete and Contains accept keys strictly between them.
const (
	MinKey uint64 = 0
	MaxKey uint64 = ^uint64(0)
)

// Schemes lists the reclamation schemes a Domain can run, in the order the
// paper's figures present them.
func Schemes() []string { return append([]string(nil), bench.SchemeNames...) }

// Structures lists the concurrent ordered sets a Domain can host.
func Structures() []string { return append([]string(nil), bench.DSNames...) }

// Options configures a Domain. The zero value selects the paper's defaults:
// an NBR+-protected lazy list sized for a moderately parallel host.
type Options struct {
	// Structure names the concurrent ordered set (see Structures).
	// Default "lazylist".
	Structure string
	// Scheme names the reclamation scheme (see Schemes). Default "nbr+".
	Scheme string
	// MaxThreads is the lease-registry capacity: the most goroutines that
	// can hold a lease at once. Size it for peak concurrency, not for the
	// total goroutine population — scans and signal broadcasts cost
	// proportional to *live* leases, so over-provisioning is cheap.
	// Default 2·GOMAXPROCS, at least 8.
	MaxThreads int

	// The scheme knobs, as in the experiments (zero selects each scheme's
	// default; see DESIGN.md §6 for the rationale behind the defaults).
	BagSize    int     // NBR limbo-bag HiWatermark
	LoFraction float64 // NBR+ LoWatermark position
	ScanFreq   int     // NBR+ announceTS scan cadence
	Threshold  int     // retire-buffer depth for hp/he/ibr/qsbr/rcu
	EraFreq    int     // era-advance period for he/ibr
	SendSpin   int     // simulated signal-send cost
	HandleSpin int     // simulated signal-delivery cost
}

func (o Options) withDefaults() Options {
	if o.Structure == "" {
		o.Structure = "lazylist"
	}
	if o.Scheme == "" {
		o.Scheme = "nbr+"
	}
	if o.MaxThreads <= 0 {
		o.MaxThreads = 2 * runtime.GOMAXPROCS(0)
		if o.MaxThreads < 8 {
			o.MaxThreads = 8
		}
	}
	return o
}

// Domain is one reclamation-protected concurrent set with dynamic thread
// membership. Goroutines call Acquire for a Lease, operate through it, and
// Release it when done; leases recycle across any number of short-lived
// goroutines. All methods except Len and Validate are safe for concurrent
// use.
type Domain struct {
	opts   Options
	inst   bench.Instance
	scheme smr.Scheme
	reg    *smr.Registry
}

// New creates a Domain.
func New(opts Options) (*Domain, error) {
	opts = opts.withDefaults()
	if !bench.Runnable(opts.Structure, opts.Scheme) {
		return nil, fmt.Errorf("nbr: %s is not runnable under %s (the paper's Table 1)",
			opts.Structure, opts.Scheme)
	}
	inst, err := bench.NewDS(opts.Structure, opts.MaxThreads)
	if err != nil {
		return nil, err
	}
	cfg := bench.SchemeConfig{
		BagSize:    opts.BagSize,
		LoFraction: opts.LoFraction,
		ScanFreq:   opts.ScanFreq,
		Threshold:  opts.Threshold,
		EraFreq:    opts.EraFreq,
		SendSpin:   opts.SendSpin,
		HandleSpin: opts.HandleSpin,
	}
	scheme, err := bench.NewSchemeFor(opts.Scheme, inst.Arena, opts.MaxThreads, cfg, inst.Req)
	if err != nil {
		return nil, err
	}
	d := &Domain{opts: opts, inst: inst, scheme: scheme, reg: smr.NewRegistry(opts.MaxThreads)}
	d.reg.Bind(scheme)
	if burst := scheme.ReclaimBurst(); burst > 0 {
		arena := inst.Arena
		d.reg.OnAcquire(func(tid int) { arena.SizeCache(tid, burst) })
	}
	arena := inst.Arena
	d.reg.OnRelease(func(tid int) { arena.DrainCache(tid) })
	return d, nil
}

// Acquire leases a thread slot for the calling goroutine. Release the lease
// when the goroutine's burst of work is done; holding it across long idle
// periods is harmless (an idle lease blocks nothing under NBR), but the
// registry can only serve MaxThreads concurrent holders.
func (d *Domain) Acquire() (*Lease, error) {
	l, err := d.reg.Acquire()
	if err != nil {
		return nil, err
	}
	return &Lease{d: d, l: l, g: d.scheme.Guard(l.Tid())}, nil
}

// MaxThreads returns the registry capacity.
func (d *Domain) MaxThreads() int { return d.opts.MaxThreads }

// ActiveThreads returns the number of currently held leases (approximate
// under churn).
func (d *Domain) ActiveThreads() int { return d.reg.Active().Count() }

// Scheme returns the reclamation scheme's name.
func (d *Domain) Scheme() string { return d.scheme.Name() }

// Structure returns the data structure's name.
func (d *Domain) Structure() string { return d.opts.Structure }

// Stats returns the aggregate reclamation counters.
func (d *Domain) Stats() Stats { return d.scheme.Stats() }

// MemStats returns the allocator counters (live records ≈ resident memory).
func (d *Domain) MemStats() MemStats { return d.inst.MemStats() }

// GarbageBound returns the scheme's declared worst-case retired-but-unfreed
// record count across all threads (or Unbounded). The bound is declared
// against MaxThreads and holds across lease churn, orphaned records
// included.
func (d *Domain) GarbageBound() int { return d.scheme.GarbageBound() }

// Len counts the keys in the set. Quiescent: no concurrent mutators.
func (d *Domain) Len() int { return d.inst.Set.Len() }

// Validate checks the structure's invariants. Quiescent.
func (d *Domain) Validate() error { return d.inst.Set.Validate() }

// Drain adopts any orphaned records and reclaims everything reclaimable,
// using a temporary lease. At quiescence it runs until every retired record
// is freed; under concurrent traffic it is a best-effort pass. Use it before
// reading final Stats or shutting down.
func (d *Domain) Drain() error {
	dr, ok := d.scheme.(smr.Drainer)
	if !ok {
		return nil
	}
	l, err := d.reg.Acquire()
	if err != nil {
		return err
	}
	defer l.Release()
	for i := 0; i < 64; i++ {
		st := d.scheme.Stats()
		if st.Retired == st.Freed {
			break
		}
		dr.Drain(l.Tid())
	}
	return nil
}

// Lease is one goroutine's membership in a Domain: a dense thread slot plus
// the per-thread guard every operation runs under. A Lease must be used by
// one goroutine at a time and released when done; after Release it must not
// be used.
type Lease struct {
	d *Domain
	l *smr.Lease
	g smr.Guard
}

// Tid returns the dense thread slot this lease occupies (diagnostic; slots
// recycle across leases).
func (l *Lease) Tid() int { return l.l.Tid() }

// Release returns the slot to the registry. The departing thread's
// unreclaimed records are reclaimed or handed to the domain's orphan list —
// nothing leaks, whatever state the protocol was in.
func (l *Lease) Release() { l.l.Release() }

// Contains reports whether key is in the set.
func (l *Lease) Contains(key uint64) bool { return l.d.inst.Set.Contains(l.g, key) }

// Insert adds key, reporting false if it was already present.
func (l *Lease) Insert(key uint64) bool { return l.d.inst.Set.Insert(l.g, key) }

// Delete removes key, reporting false if it was absent.
func (l *Lease) Delete(key uint64) bool { return l.d.inst.Set.Delete(l.g, key) }
