// Package nbr's top-level benchmarks regenerate every table and figure of
// the paper at testing.B scale: each BenchmarkFigX mirrors one exhibit
// (DESIGN.md §5 maps them), running the same workload cells as cmd/nbrbench
// but with host-scaled key ranges and short trials so `go test -bench=.`
// finishes in minutes. Throughput is reported as the custom metric Mops/s
// (higher is better) and memory experiments additionally report peak-MB.
//
// For paper-shaped sweeps (full key ranges, thread sweeps, 5s trials) use:
//
//	go run ./cmd/nbrbench -experiment fig3a -full -duration 5s -trials 3
package nbr

import (
	"testing"
	"time"

	"nbr/internal/bench"
)

const (
	benchThreads  = 4
	benchDuration = 200 * time.Millisecond
	treeRange     = 50_000 // host-scaled stand-in for the paper's 2M
	bigTreeRange  = 100_000
)

// benchSchemes is the reduced comparison set used in the testing.B harness
// (the full set runs via cmd/nbrbench).
var benchSchemes = []string{"none", "debra", "hp", "nbr", "nbr+"}

// abSchemes excludes pointer-based schemes, which Table 1 rules out for the
// ABTree.
var abSchemes = []string{"none", "debra", "nbr", "nbr+"}

var benchMixes = []struct {
	name     string
	ins, del int
}{
	{"u50", 50, 50}, // update-intensive
	{"u25", 25, 25}, // balanced
	{"u5", 5, 5},    // search-intensive
}

func runCell(b *testing.B, w bench.Workload) {
	b.Helper()
	if w.Cfg == (bench.SchemeConfig{}) {
		w.Cfg = bench.DefaultSchemeConfig()
	}
	w.Duration = benchDuration
	w.Prefill = -1
	var mops, peak float64
	for i := 0; i < b.N; i++ {
		r, err := bench.Run(w)
		if err != nil {
			b.Fatal(err)
		}
		mops += r.Mops
		if mb := float64(r.PeakBytes) / (1 << 20); mb > peak {
			peak = mb
		}
	}
	b.ReportMetric(mops/float64(b.N), "Mops/s")
	b.ReportMetric(peak, "peak-MB")
}

// BenchmarkFig3a is E1 on the DGT tree (paper key range 2M, host-scaled).
func BenchmarkFig3a(b *testing.B) {
	for _, m := range benchMixes {
		for _, s := range benchSchemes {
			b.Run(m.name+"/"+s, func(b *testing.B) {
				runCell(b, bench.Workload{DS: "dgt", Scheme: s, Threads: benchThreads,
					KeyRange: treeRange, InsPct: m.ins, DelPct: m.del})
			})
		}
	}
}

// BenchmarkFig3b is E1 on the lazy list (key range 20K).
func BenchmarkFig3b(b *testing.B) {
	for _, m := range benchMixes {
		for _, s := range benchSchemes {
			b.Run(m.name+"/"+s, func(b *testing.B) {
				runCell(b, bench.Workload{DS: "lazylist", Scheme: s, Threads: benchThreads,
					KeyRange: 20_000, InsPct: m.ins, DelPct: m.del})
			})
		}
	}
}

// BenchmarkFig4a is E3 on the ABTree at low contention (2M, scaled) and
// high contention (200).
func BenchmarkFig4a(b *testing.B) {
	for _, kr := range []struct {
		name string
		r    uint64
	}{{"large", treeRange}, {"small", 200}} {
		for _, s := range abSchemes {
			b.Run(kr.name+"/"+s, func(b *testing.B) {
				runCell(b, bench.Workload{DS: "abtree", Scheme: s, Threads: benchThreads,
					KeyRange: kr.r, InsPct: 50, DelPct: 50})
			})
		}
	}
}

// BenchmarkFig4b is E4: the Harris-Michael restart study.
func BenchmarkFig4b(b *testing.B) {
	series := []struct{ name, ds, scheme string }{
		{"nbr+", "hmlist", "nbr+"},
		{"debra-restarts", "hmlist", "debra"},
		{"debra-norestarts", "hmlist-norestart", "debra"},
		{"none", "hmlist", "none"},
	}
	for _, kr := range []struct {
		name string
		r    uint64
	}{{"20K", 20_000}, {"200", 200}} {
		for _, s := range series {
			b.Run(kr.name+"/"+s.name, func(b *testing.B) {
				runCell(b, bench.Workload{DS: s.ds, Scheme: s.scheme, Threads: benchThreads,
					KeyRange: kr.r, InsPct: 50, DelPct: 50})
			})
		}
	}
}

// BenchmarkFig4c is E2 with a stalled thread: peak-MB is the paper's metric.
func BenchmarkFig4c(b *testing.B) {
	for _, s := range benchSchemes {
		b.Run(s, func(b *testing.B) {
			runCell(b, bench.Workload{DS: "dgt", Scheme: s, Threads: benchThreads,
				KeyRange: treeRange, InsPct: 50, DelPct: 50, Stall: true})
		})
	}
}

// BenchmarkFig4d is E2 without the stalled thread.
func BenchmarkFig4d(b *testing.B) {
	for _, s := range benchSchemes {
		b.Run(s, func(b *testing.B) {
			runCell(b, bench.Workload{DS: "dgt", Scheme: s, Threads: benchThreads,
				KeyRange: treeRange, InsPct: 50, DelPct: 50})
		})
	}
}

// BenchmarkFig5 covers the appendix DGT size sweep (20M scaled / 20K).
func BenchmarkFig5(b *testing.B) {
	for _, kr := range []struct {
		name string
		r    uint64
	}{{"large", bigTreeRange}, {"20K", 20_000}} {
		for _, s := range benchSchemes {
			b.Run(kr.name+"/"+s, func(b *testing.B) {
				runCell(b, bench.Workload{DS: "dgt", Scheme: s, Threads: benchThreads,
					KeyRange: kr.r, InsPct: 50, DelPct: 50})
			})
		}
	}
}

// BenchmarkFig6 covers the appendix lazy-list size sweep (2K / 200).
func BenchmarkFig6(b *testing.B) {
	for _, kr := range []struct {
		name string
		r    uint64
	}{{"2K", 2_000}, {"200", 200}} {
		for _, s := range benchSchemes {
			b.Run(kr.name+"/"+s, func(b *testing.B) {
				runCell(b, bench.Workload{DS: "lazylist", Scheme: s, Threads: benchThreads,
					KeyRange: kr.r, InsPct: 50, DelPct: 50})
			})
		}
	}
}

// BenchmarkFig7 covers the appendix Harris-list size sweep (200/2K/20K).
func BenchmarkFig7(b *testing.B) {
	for _, kr := range []struct {
		name string
		r    uint64
	}{{"200", 200}, {"2K", 2_000}, {"20K", 20_000}} {
		for _, s := range benchSchemes {
			b.Run(kr.name+"/"+s, func(b *testing.B) {
				runCell(b, bench.Workload{DS: "harris", Scheme: s, Threads: benchThreads,
					KeyRange: kr.r, InsPct: 50, DelPct: 50})
			})
		}
	}
}

// BenchmarkFig8 covers the appendix ABTree size sweep (20M scaled / 2M
// scaled).
func BenchmarkFig8(b *testing.B) {
	for _, kr := range []struct {
		name string
		r    uint64
	}{{"larger", bigTreeRange}, {"large", treeRange}} {
		for _, s := range abSchemes {
			b.Run(kr.name+"/"+s, func(b *testing.B) {
				runCell(b, bench.Workload{DS: "abtree", Scheme: s, Threads: benchThreads,
					KeyRange: kr.r, InsPct: 50, DelPct: 50})
			})
		}
	}
}

// BenchmarkAblateSignals quantifies §5's O(n²)→O(n) signal reduction.
func BenchmarkAblateSignals(b *testing.B) {
	for _, s := range []string{"nbr", "nbr+"} {
		b.Run(s, func(b *testing.B) {
			w := bench.Workload{DS: "dgt", Scheme: s, Threads: benchThreads,
				KeyRange: treeRange, InsPct: 50, DelPct: 50,
				Duration: benchDuration, Prefill: -1, Cfg: bench.DefaultSchemeConfig()}
			var signalsPerKop float64
			for i := 0; i < b.N; i++ {
				r, err := bench.Run(w)
				if err != nil {
					b.Fatal(err)
				}
				signalsPerKop += float64(r.Stats.Signals) / float64(r.Ops) * 1000
			}
			b.ReportMetric(signalsPerKop/float64(b.N), "signals/kop")
		})
	}
}
