package nbr

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// TestRuntimeDebugHandler: /debug/nbr serves a parseable JSON snapshot whose
// counters, quantiles and event tail reflect real traffic.
func TestRuntimeDebugHandler(t *testing.T) {
	rt, err := NewRuntime(RuntimeOptions{Scheme: "nbr+", MaxThreads: 4, BagSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	rt.Observe(true)
	set, err := rt.NewSet("harris")
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := rt.With(ctx, func(l *Lease) error {
		for k := uint64(0); k < 400; k++ {
			set.Insert(l, k)
		}
		for k := uint64(0); k < 400; k++ {
			set.Delete(l, k)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	rec := httptest.NewRecorder()
	rt.Debug().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/nbr", nil))
	if rec.Code != 200 {
		t.Fatalf("debug handler status %d", rec.Code)
	}
	var snap struct {
		Scheme   string `json:"scheme"`
		Recorder struct {
			Enabled bool `json:"enabled"`
			Hists   []struct {
				Name  string `json:"name"`
				Count uint64 `json:"count"`
				P50ns int64  `json:"p50_ns"`
			} `json:"hists"`
			Events []struct {
				Ring string `json:"ring"`
				Code string `json:"code"`
			} `json:"events"`
		} `json:"recorder"`
		Stats struct {
			Retired uint64
			Freed   uint64
		} `json:"stats"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("debug snapshot not parseable: %v\n%s", err, rec.Body.String())
	}
	if snap.Scheme != "nbr+" || !snap.Recorder.Enabled {
		t.Fatalf("snapshot scheme=%q enabled=%v", snap.Scheme, snap.Recorder.Enabled)
	}
	if snap.Stats.Retired == 0 {
		t.Fatal("no retires recorded; the workload did not exercise reclamation")
	}
	var leaseHold, readPhase uint64
	for _, h := range snap.Recorder.Hists {
		switch h.Name {
		case "lease_hold":
			leaseHold = h.Count
		case "read_phase":
			readPhase = h.Count
		}
	}
	if leaseHold == 0 || readPhase == 0 {
		t.Fatalf("histograms empty: lease_hold=%d read_phase=%d", leaseHold, readPhase)
	}
	if len(snap.Recorder.Events) == 0 {
		t.Fatal("event tail empty")
	}

	// The dump surface renders the same timeline as text.
	var sb strings.Builder
	rt.DumpRecorder(&sb, 32)
	if !strings.Contains(sb.String(), "read-begin") {
		t.Fatalf("DumpRecorder tail missing read-phase events:\n%s", sb.String())
	}
}

// TestRuntimeDebugConcurrent is the -race test for the Debug surface: 8
// lease-holding writers under live traffic while readers hammer the handler.
func TestRuntimeDebugConcurrent(t *testing.T) {
	rt, err := NewRuntime(RuntimeOptions{Scheme: "nbr+", MaxThreads: 8, BagSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	rt.Observe(true)
	set, err := rt.NewSet("harris")
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				_ = rt.With(ctx, func(l *Lease) error {
					base := uint64(w * 1000)
					for k := base; k < base+50; k++ {
						set.Insert(l, k)
					}
					for k := base; k < base+50; k++ {
						set.Delete(l, k)
					}
					return nil
				})
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		h := rt.Debug()
		for i := 0; i < 100; i++ {
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/nbr", nil))
			if rec.Code != 200 || !json.Valid(rec.Body.Bytes()) {
				t.Errorf("concurrent debug read failed: status %d", rec.Code)
				return
			}
		}
	}()
	wg.Wait()
	<-done
	if err := rt.Drain(); err != nil {
		t.Fatal(err)
	}
}
