// Command nbrtable1 prints the paper's Table 1 (applicability of SMR
// algorithms) as encoded — and enforced at construction time — by the
// harness, and with -loc reports the reclamation-related lines of code per
// data structure (the paper's Fig. 2 / §5.3 ease-of-use comparison: NBR
// needed ~10 extra lines where hazard pointers needed ~30).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"nbr/internal/bench"
)

func main() {
	loc := flag.Bool("loc", false, "count SMR-integration call sites per data structure (Fig. 2 / §5.3)")
	flag.Parse()

	bench.PrintTable1(os.Stdout)
	if !*loc {
		return
	}

	fmt.Println("\nSMR integration call sites per data structure (ease-of-use, §5.3):")
	fmt.Println("  calls counted: BeginRead/EndRead/Reserve (NBR-specific) and Protect/NeedsValidation (HP-family-specific)")
	dirs := map[string]string{
		"lazylist": "internal/ds/lazylist",
		"harris":   "internal/ds/harrislist",
		"hmlist":   "internal/ds/hmlist",
		"dgt":      "internal/ds/dgtbst",
		"abtree":   "internal/ds/abtree",
	}
	for name, dir := range dirs {
		nbrCalls, hpCalls, err := countCalls(dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "nbrtable1:", err)
			os.Exit(1)
		}
		fmt.Printf("  %-10s NBR-specific call sites: %2d   HP-family-specific: %2d\n", name, nbrCalls, hpCalls)
	}
}

// countCalls scans non-test Go sources for guard call sites.
func countCalls(dir string) (nbrCalls, hpCalls int, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, 0, err
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		f, err := os.Open(filepath.Join(dir, e.Name()))
		if err != nil {
			return 0, 0, err
		}
		sc := bufio.NewScanner(f)
		for sc.Scan() {
			line := sc.Text()
			if i := strings.Index(line, "//"); i >= 0 {
				line = line[:i]
			}
			for _, pat := range []string{".BeginRead(", ".EndRead(", ".Reserve("} {
				nbrCalls += strings.Count(line, pat)
			}
			for _, pat := range []string{".Protect(", ".NeedsValidation("} {
				hpCalls += strings.Count(line, pat)
			}
		}
		f.Close()
		if err := sc.Err(); err != nil {
			return 0, 0, err
		}
	}
	return nbrCalls, hpCalls, nil
}
