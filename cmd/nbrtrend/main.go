// Command nbrtrend charts the perf-snapshot trajectory: it diffs
// consecutive BENCH_<n>.json files (written by `nbrbench -snapshot`) and
// flags regressions — throughput drops in the end-to-end workload cells and
// cost growth in the reservation-scan and free-burst microbenchmarks.
//
// With no arguments it picks up every BENCH_*.json in the current
// directory, ordered by snapshot number; explicit paths compare in the
// given order. The exit status is always 0 unless -strict is set, so CI can
// run it as a non-blocking report step.
//
// Examples:
//
//	nbrtrend
//	nbrtrend BENCH_1.json BENCH_2.json
//	nbrtrend -threshold 5 -strict BENCH_*.json
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"

	"nbr/internal/bench"
)

func main() {
	var (
		threshold = flag.Float64("threshold", 10, "worsening percentage that flags a regression")
		strict    = flag.Bool("strict", false, "exit 1 when any regression is flagged")
	)
	flag.Parse()

	paths := flag.Args()
	if len(paths) == 0 {
		var err error
		paths, err = defaultPaths()
		if err != nil {
			fmt.Fprintln(os.Stderr, "nbrtrend:", err)
			os.Exit(1)
		}
	}
	if len(paths) < 2 {
		fmt.Printf("nbrtrend: need at least two snapshots to diff (found %d); run `nbrbench -snapshot BENCH_<n>.json` to record one\n", len(paths))
		return
	}

	snaps := make([]bench.Snapshot, len(paths))
	for i, p := range paths {
		s, err := bench.ReadSnapshot(p)
		if err != nil {
			fmt.Fprintln(os.Stderr, "nbrtrend:", err)
			os.Exit(1)
		}
		snaps[i] = s
	}

	regressed := false
	for i := 1; i < len(snaps); i++ {
		fmt.Printf("# %s → %s (%s → %s, threshold %.0f%%)\n",
			paths[i-1], paths[i], snaps[i-1].Schema, snaps[i].Schema, *threshold)
		if mismatch := bench.HostShapeMismatch(snaps[i-1], snaps[i]); mismatch != "" {
			fmt.Printf("  WARNING: host shape differs (%s); deltas below are untrusted and not flagged\n", mismatch)
		}
		deltas := bench.CompareSnapshots(snaps[i-1], snaps[i], *threshold)
		if len(deltas) == 0 {
			fmt.Println("  (no comparable cells)")
			continue
		}
		for _, d := range deltas {
			fmt.Println(" ", d)
		}
		if regs := bench.Regressions(deltas); len(regs) > 0 {
			regressed = true
			fmt.Printf("  => %d regression(s) flagged\n", len(regs))
		} else {
			fmt.Println("  => no regressions")
		}
	}
	if *strict && regressed {
		os.Exit(1)
	}
}

var benchFile = regexp.MustCompile(`^BENCH_(\d+)\.json$`)

// defaultPaths globs BENCH_<n>.json in the working directory, ordered by n.
func defaultPaths() ([]string, error) {
	matches, err := filepath.Glob("BENCH_*.json")
	if err != nil {
		return nil, err
	}
	type numbered struct {
		n    int
		path string
	}
	var files []numbered
	for _, m := range matches {
		sub := benchFile.FindStringSubmatch(filepath.Base(m))
		if sub == nil {
			continue
		}
		n, _ := strconv.Atoi(sub[1])
		files = append(files, numbered{n, m})
	}
	sort.Slice(files, func(i, j int) bool { return files[i].n < files[j].n })
	out := make([]string, len(files))
	for i, f := range files {
		out[i] = f.path
	}
	return out, nil
}
