// Command nbrtrend charts the perf-snapshot trajectory: it diffs
// consecutive BENCH_<n>.json files (written by `nbrbench -snapshot`) and
// flags regressions — throughput drops in the end-to-end workload and
// shared-runtime cells and cost growth in the reservation-scan and
// free-burst microbenchmarks. Two schema-v5 invariants are flagged
// host-independently, because they are counter ratios rather than timings:
// the hub's dispatch-per-burst amortization blowing up on the interleaved
// runtime cells, and a Domain-vs-Runtime width gap reopening (the runtime
// scanning wider announcement rows than a Domain would for the same
// structure).
//
// Only same-host snapshot pairs (matching gomaxprocs and goarch) are
// compared by default: numbers from different host shapes say nothing about
// the reclaim path, so mismatched pairs are skipped with a note unless
// -all-hosts is given (which prints them, still never flagged). The
// committed BENCH_<n>.json trajectory is likewise opt-in via -committed —
// the BENCH_2→BENCH_3 episode showed a container drifting 20–40% between
// sessions with an identical host shape, so the trustworthy default diff is
// two snapshots you measured yourself (e.g. CI artifacts from the same
// runner class), not the committed history.
//
// The exit status is always 0 unless -strict is set, so CI can run it as a
// non-blocking report step.
//
// Examples:
//
//	nbrtrend BENCH_prev.json BENCH_next.json
//	nbrtrend -committed
//	nbrtrend -committed -all-hosts -threshold 5 -strict
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"

	"nbr/internal/bench"
)

func main() {
	var (
		threshold = flag.Float64("threshold", 10, "worsening percentage that flags a regression")
		strict    = flag.Bool("strict", false, "exit 1 when any regression is flagged")
		committed = flag.Bool("committed", false, "with no explicit paths, diff the committed BENCH_<n>.json trajectory (opt-in: committed snapshots drift with the hosts that recorded them)")
		allHosts  = flag.Bool("all-hosts", false, "also print pairs whose host shape (gomaxprocs/goarch) differs; their deltas are untrusted and never flagged")
	)
	flag.Parse()

	paths := flag.Args()
	if len(paths) == 0 {
		if !*committed {
			fmt.Println("nbrtrend: no snapshots given; pass two BENCH_*.json paths, or -committed to diff the committed trajectory (opt-in since the committed files were recorded on drifting hosts)")
			return
		}
		var err error
		paths, err = defaultPaths()
		if err != nil {
			fmt.Fprintln(os.Stderr, "nbrtrend:", err)
			os.Exit(1)
		}
	}
	if len(paths) < 2 {
		fmt.Printf("nbrtrend: need at least two snapshots to diff (found %d); run `nbrbench -snapshot BENCH_<n>.json` to record one\n", len(paths))
		return
	}

	snaps := make([]bench.Snapshot, len(paths))
	for i, p := range paths {
		s, err := bench.ReadSnapshot(p)
		if err != nil {
			fmt.Fprintln(os.Stderr, "nbrtrend:", err)
			os.Exit(1)
		}
		snaps[i] = s
	}

	regressed := false
	skipped := 0
	for i := 1; i < len(snaps); i++ {
		mismatch := bench.HostShapeMismatch(snaps[i-1], snaps[i])
		if mismatch != "" && !*allHosts {
			skipped++
			fmt.Printf("# %s → %s: SKIPPED, host shape differs (%s); pass -all-hosts to print anyway\n",
				paths[i-1], paths[i], mismatch)
			continue
		}
		fmt.Printf("# %s → %s (%s → %s, threshold %.0f%%)\n",
			paths[i-1], paths[i], snaps[i-1].Schema, snaps[i].Schema, *threshold)
		if mismatch != "" {
			fmt.Printf("  WARNING: host shape differs (%s); deltas below are untrusted and not flagged\n", mismatch)
		}
		deltas := bench.CompareSnapshots(snaps[i-1], snaps[i], *threshold)
		if len(deltas) == 0 {
			fmt.Println("  (no comparable cells)")
			continue
		}
		for _, d := range deltas {
			fmt.Println(" ", d)
		}
		if regs := bench.Regressions(deltas); len(regs) > 0 {
			regressed = true
			fmt.Printf("  => %d regression(s) flagged\n", len(regs))
		} else {
			fmt.Println("  => no regressions")
		}
	}
	if skipped > 0 {
		fmt.Printf("# %d pair(s) skipped for host-shape mismatch\n", skipped)
	}
	if *strict && regressed {
		os.Exit(1)
	}
}

var benchFile = regexp.MustCompile(`^BENCH_(\d+)\.json$`)

// defaultPaths globs BENCH_<n>.json in the working directory, ordered by n.
func defaultPaths() ([]string, error) {
	matches, err := filepath.Glob("BENCH_*.json")
	if err != nil {
		return nil, err
	}
	type numbered struct {
		n    int
		path string
	}
	var files []numbered
	for _, m := range matches {
		sub := benchFile.FindStringSubmatch(filepath.Base(m))
		if sub == nil {
			continue
		}
		n, _ := strconv.Atoi(sub[1])
		files = append(files, numbered{n, m})
	}
	sort.Slice(files, func(i, j int) bool { return files[i].n < files[j].n })
	out := make([]string, len(files))
	for i, f := range files {
		out[i] = f.path
	}
	return out, nil
}
