// Command nbrvet statically enforces the NBR usage protocol over a Go
// package tree: restartable read phases (readphase), guard-bracket ordering
// (bracket), lease goroutine-affinity (leaseescape), and protected record
// access (guardderef). See DESIGN.md §13 for the enforced rules and the
// //nbr:restartable and //nbr:allow annotation grammar.
//
// Usage:
//
//	nbrvet [packages]
//
// with the usual go-tool package patterns (default ./...). Exits nonzero if
// any diagnostic survives suppression, so it can gate CI.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"nbr/internal/analysis/bracket"
	"nbr/internal/analysis/framework"
	"nbr/internal/analysis/guardderef"
	"nbr/internal/analysis/leaseescape"
	"nbr/internal/analysis/protocol"
	"nbr/internal/analysis/readphase"
)

var analyzers = []*framework.Analyzer{
	readphase.Analyzer,
	bracket.Analyzer,
	leaseescape.Analyzer,
	guardderef.Analyzer,
}

func main() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: nbrvet [packages]\n\nAnalyzers:\n")
		for _, a := range analyzers {
			fmt.Fprintf(os.Stderr, "\n%s:\n%s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "nbrvet:", err)
		os.Exit(2)
	}
	session := framework.NewSession(root)
	session.SetFactPass(protocol.ComputeFacts)
	pkgs, err := session.Load(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nbrvet:", err)
		os.Exit(2)
	}
	findings, err := session.Analyze(analyzers, pkgs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nbrvet:", err)
		os.Exit(2)
	}
	framework.Print(os.Stderr, findings)
	if len(findings) > 0 {
		os.Exit(1)
	}
}

// moduleRoot walks up from the working directory to the go.mod, so package
// patterns resolve the same way the go tool would.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
