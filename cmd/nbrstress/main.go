// Command nbrstress runs the full data-structure × scheme matrix under
// continuous churn with aggressive reclamation settings. The allocator's
// generation tags turn any unsafe reclamation into a panic, so a clean exit
// is a machine-checked safety run of every combination the applicability
// matrix admits. It exits non-zero on the first violation.
//
// Usage: nbrstress [-seconds 2] [-threads 8] [-keys 64]
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"nbr/internal/bench"
)

func main() {
	var (
		seconds = flag.Float64("seconds", 1.0, "churn time per combination")
		threads = flag.Int("threads", 8, "goroutines per combination")
		keys    = flag.Uint64("keys", 64, "key range (small = maximal recycling pressure)")
	)
	flag.Parse()

	cfg := bench.DefaultSchemeConfig()
	cfg.BagSize = 128 // reclaim constantly
	cfg.Threshold = 48
	cfg.EraFreq = 16
	cfg.ScanFreq = 4

	failures := 0
	for _, dsName := range bench.DSNames {
		for _, scheme := range bench.SchemeNames {
			if !bench.Runnable(dsName, scheme) {
				continue
			}
			if err := stress(dsName, scheme, *threads, *keys, *seconds, cfg); err != nil {
				fmt.Printf("FAIL  %-18s %-6s %v\n", dsName, scheme, err)
				failures++
			} else {
				fmt.Printf("ok    %-18s %-6s\n", dsName, scheme)
			}
		}
	}
	if failures > 0 {
		fmt.Printf("%d combination(s) failed\n", failures)
		os.Exit(1)
	}
	fmt.Println("all combinations safe")
}

func stress(dsName, scheme string, threads int, keys uint64, seconds float64, cfg bench.SchemeConfig) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v", r)
		}
	}()
	inst, err := bench.NewDS(dsName, threads)
	if err != nil {
		return err
	}
	// Build the scheme at the structure's declared widths, exactly like the
	// benchmarks do — the stress matrix must cover the narrow configuration
	// the measurements actually run.
	sch, err := bench.NewSchemeFor(scheme, inst.Arena, threads, cfg, inst.Req)
	if err != nil {
		return err
	}
	var stop atomic.Bool
	var wg sync.WaitGroup
	panics := make(chan any, threads)
	for tid := 0; tid < threads; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panics <- r
					stop.Store(true)
				}
			}()
			g := sch.Guard(tid)
			rng := uint64(tid)*0x9e3779b97f4a7c15 + 1
			for !stop.Load() {
				rng = rng*6364136223846793005 + 1442695040888963407
				key := rng%keys + 1
				switch (rng >> 33) % 3 {
				case 0:
					inst.Set.Insert(g, key)
				case 1:
					inst.Set.Delete(g, key)
				default:
					inst.Set.Contains(g, key)
				}
			}
		}(tid)
	}
	time.Sleep(time.Duration(seconds * float64(time.Second)))
	stop.Store(true)
	wg.Wait()
	select {
	case r := <-panics:
		return fmt.Errorf("worker panic: %v", r)
	default:
	}
	if err := inst.Set.Validate(); err != nil {
		return err
	}
	st := sch.Stats()
	if st.Freed > st.Retired {
		return fmt.Errorf("freed %d > retired %d", st.Freed, st.Retired)
	}
	return nil
}
