// Command nbrbench regenerates the tables and figures of "NBR:
// Neutralization Based Reclamation" (PPoPP '21). Each -experiment preset
// reproduces one paper exhibit (see DESIGN.md §5 for the full index);
// -custom runs a single workload cell with explicit parameters.
//
// Examples:
//
//	nbrbench -experiment fig3a
//	nbrbench -experiment fig4c -duration 2s
//	nbrbench -list
//	nbrbench -custom -ds lazylist -scheme nbr+ -threadcount 8 -keyrange 20000 -ins 50 -del 50
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"nbr/internal/bench"
)

func main() {
	var (
		experiment = flag.String("experiment", "", "preset to run (see -list)")
		list       = flag.Bool("list", false, "list experiment presets and exit")
		threads    = flag.String("threads", "", "comma-separated thread sweep (default scales to GOMAXPROCS)")
		duration   = flag.Duration("duration", time.Second, "measurement time per trial (paper: 5s)")
		trials     = flag.Int("trials", 1, "trials per cell, averaged (paper: 3)")
		full       = flag.Bool("full", false, "use the paper's full key ranges (2M/20M)")

		bag     = flag.Int("bag", 1024, "NBR limbo-bag HiWatermark (paper: 32k at 192 threads)")
		lowm    = flag.Float64("lowm", 0.5, "NBR+ LoWatermark fraction")
		sigspin = flag.Int("sigspin", 600, "simulated pthread_kill cost, spin iterations per signal")

		snapshot = flag.String("snapshot", "", "write a machine-readable perf snapshot JSON to this path (e.g. BENCH_1.json) and exit")

		assertBound = flag.Bool("assert-bound", false, "fail (exit 1) if any run's sampled garbage peak exceeds the scheme's declared GarbageBound; applies to -custom and -snapshot (a violating runtime cell embeds its flight-recorder event tail in the report, naming the thread that held the garbage)")

		custom      = flag.Bool("custom", false, "run a single custom cell instead of a preset")
		dsName      = flag.String("ds", "lazylist", "custom: data structure")
		scheme      = flag.String("scheme", "nbr+", "custom: reclamation scheme")
		threadCount = flag.Int("threadcount", runtime.GOMAXPROCS(0), "custom: worker threads")
		keyRange    = flag.Uint64("keyrange", 20_000, "custom: key range")
		ins         = flag.Int("ins", 50, "custom: insert percentage")
		del         = flag.Int("del", 50, "custom: delete percentage")
		stall       = flag.Bool("stall", false, "custom: add one stalled thread (E2)")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.Experiments {
			fmt.Printf("  %-16s %s\n", e.Name, e.Desc)
		}
		fmt.Printf("  %-16s %s\n", "table1", "print the applicability matrix (Table 1)")
		return
	}

	cfg := bench.DefaultSchemeConfig()
	cfg.BagSize = *bag
	cfg.LoFraction = *lowm
	cfg.SendSpin = *sigspin
	cfg.HandleSpin = *sigspin / 2

	if *snapshot != "" {
		// The snapshot suite is fixed (8 threads: the end-to-end workload
		// cells, the shared-runtime cells — including the adversarial
		// interleaved-retire variants — the Domain-vs-Runtime width cells,
		// and the scan/burst microbenchmarks) so BENCH_<n>.json files are
		// comparable across PRs; workload flags other than -duration and the
		// scheme knobs do not apply to it.
		if *experiment != "" || *custom || *threads != "" {
			fmt.Fprintln(os.Stderr, "nbrbench: -snapshot runs a fixed suite; it cannot be combined with -experiment, -custom, or -threads")
			os.Exit(1)
		}
		fmt.Printf("# writing perf snapshot to %s (duration %v per cell, fixed 8-thread suite)\n", *snapshot, *duration)
		if err := bench.WriteSnapshot(*snapshot, *duration, cfg, *assertBound); err != nil {
			fmt.Fprintln(os.Stderr, "nbrbench:", err)
			os.Exit(1)
		}
		return
	}

	if *custom {
		w := bench.Workload{
			DS: *dsName, Scheme: *scheme, Threads: *threadCount,
			KeyRange: *keyRange, InsPct: *ins, DelPct: *del,
			Duration: *duration, Prefill: -1, Stall: *stall, Cfg: cfg,
		}
		r, err := bench.Run(w)
		if err != nil {
			fmt.Fprintln(os.Stderr, "nbrbench:", err)
			os.Exit(1)
		}
		bound := "unbounded"
		if r.Bound >= 0 {
			bound = fmt.Sprint(r.Bound)
		}
		fmt.Printf("%s/%s threads=%d range=%d %di-%dd: %.3f Mops/s, peak %.2f MB, %d signals, %d neutralized, garbage %d (peak %d, bound %s)\n",
			r.DS, r.Scheme, r.Threads, r.KeyRange, r.InsPct, r.DelPct,
			r.Mops, float64(r.PeakBytes)/(1<<20), r.Stats.Signals,
			r.Stats.Neutralized, r.Stats.Garbage(), r.GarbagePeak, bound)
		if *assertBound && r.BoundExceeded() {
			fmt.Fprintf(os.Stderr, "nbrbench: garbage-bound contract violated: peak %d > declared bound %d\n",
				r.GarbagePeak, r.Bound)
			os.Exit(1)
		}
		return
	}

	if *experiment == "table1" {
		bench.PrintTable1(os.Stdout)
		return
	}
	e, ok := bench.Lookup(*experiment)
	if !ok {
		fmt.Fprintf(os.Stderr, "nbrbench: unknown experiment %q; use -list\n", *experiment)
		os.Exit(1)
	}

	o := bench.Options{
		Threads:  parseThreads(*threads),
		Duration: *duration,
		Trials:   *trials,
		Full:     *full,
		Cfg:      cfg,
		Out:      os.Stdout,
	}
	fmt.Printf("# %s — %s\n# threads=%v duration=%v trials=%d full=%v (GOMAXPROCS=%d)\n",
		e.Name, e.Desc, o.Threads, o.Duration, o.Trials, o.Full, runtime.GOMAXPROCS(0))
	if err := e.Run(o); err != nil {
		fmt.Fprintln(os.Stderr, "nbrbench:", err)
		os.Exit(1)
	}
}

// parseThreads parses "-threads 1,2,4" or derives a host-scaled sweep that
// keeps the paper's oversubscribed regime.
func parseThreads(s string) []int {
	if s != "" {
		var out []int
		for _, f := range strings.Split(s, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || n < 1 {
				fmt.Fprintf(os.Stderr, "nbrbench: bad -threads entry %q\n", f)
				os.Exit(1)
			}
			out = append(out, n)
		}
		return out
	}
	p := runtime.GOMAXPROCS(0)
	sweep := []int{1}
	for n := 2; n <= 4*p || len(sweep) < 4; n *= 2 {
		sweep = append(sweep, n)
		if n >= 16 && n >= 4*p {
			break
		}
	}
	return sweep
}
