package nbr

import (
	"encoding/json"
	"expvar"
	"io"
	"net/http"

	"nbr/internal/obs"
)

// This file is the Runtime's observability surface: the flight recorder
// toggle, the /debug/nbr JSON snapshot, expvar publication, and the
// dump-on-violation hook test harnesses print when a bound or drain
// assertion fails. The recorder itself (rings, histograms, the one-branch
// disabled path) lives in internal/obs; see DESIGN.md §15.

// Observe switches the runtime's flight recorder on or off. The runtime is
// created with the recorder wired but disabled, so every instrumented hot
// path costs exactly one predictable branch until Observe(true); enabling is
// safe at any time, including under live traffic.
func (rt *Runtime) Observe(on bool) {
	if on {
		rt.rec.Enable()
	} else {
		rt.rec.Disable()
	}
}

// Observing reports whether the flight recorder is currently enabled.
func (rt *Runtime) Observing() bool { return rt.rec.Enabled() }

// debugSnapshot is the /debug/nbr JSON document: the runtime's counter set,
// bounds and admission state, plus the recorder's histogram quantiles and
// last-K merged events.
type debugSnapshot struct {
	Scheme          string       `json:"scheme"`
	Structures      []string     `json:"structures"`
	MaxThreads      int          `json:"max_threads"`
	ActiveThreads   int          `json:"active_threads"`
	Waiters         int          `json:"waiters"`
	GarbageBound    int          `json:"garbage_bound"`
	Garbage         int64        `json:"garbage"`
	StagedFrees     int          `json:"staged_frees"`
	ForcedRounds    uint64       `json:"forced_rounds"`
	FallbackReuses  uint64       `json:"fallback_reuses"`
	ReapedLeases    uint64       `json:"reaped_leases"`
	RevokedReleases uint64       `json:"revoked_releases"`
	OrphansAdopted  uint64       `json:"orphans_adopted"`
	Stats           Stats        `json:"stats"`
	Mem             MemStats     `json:"mem"`
	Recorder        obs.Snapshot `json:"recorder"`
}

// debugEvents is how much merged timeline /debug/nbr and DumpRecorder show
// by default: enough to span a reclamation burst on every thread.
const debugEvents = 128

func (rt *Runtime) debugSnapshot(maxEvents int) debugSnapshot {
	st := rt.Stats()
	return debugSnapshot{
		Scheme:          rt.Scheme(),
		Structures:      rt.Structures(),
		MaxThreads:      rt.MaxThreads(),
		ActiveThreads:   rt.ActiveThreads(),
		Waiters:         rt.Waiters(),
		GarbageBound:    rt.GarbageBound(),
		Garbage:         int64(st.Retired) - int64(st.Freed),
		StagedFrees:     rt.StagedFrees(),
		ForcedRounds:    rt.ForcedRounds(),
		FallbackReuses:  rt.FallbackReuses(),
		ReapedLeases:    rt.ReapedLeases(),
		RevokedReleases: rt.RevokedReleases(),
		OrphansAdopted:  rt.OrphansAdopted(),
		Stats:           st,
		Mem:             rt.MemStats(),
		Recorder:        rt.rec.Snapshot(maxEvents),
	}
}

// Debug returns an http.Handler serving the runtime's observability snapshot
// as JSON: stats, bounds, admission state, histogram quantiles and the
// last-K merged flight-recorder events. Mount it wherever the service keeps
// its debug endpoints (examples/server mounts it at /debug/nbr behind
// -debug). The handler is safe under live traffic; with the recorder
// disabled it serves the counter set and an empty timeline.
func (rt *Runtime) Debug() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rt.debugSnapshot(debugEvents)); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}

// PublishExpvar publishes the runtime's counter set (the same document
// Debug serves) under name in the process-wide expvar registry, so services
// already scraping /debug/vars pick the reclamation pipeline up with no new
// endpoint. Like expvar.Publish it panics if name is already published, so
// call it once per process per runtime.
func (rt *Runtime) PublishExpvar(name string) {
	expvar.Publish(name, expvar.Func(func() any {
		return rt.debugSnapshot(0) // counters and quantiles; no event tail
	}))
}

// DumpRecorder writes the merged flight-recorder event tail (at most max
// events; max <= 0 uses the same window as Debug) to w, followed by the
// open-read-phase summary. This is the dump-on-violation hook: when a bound
// or drain assertion fails, the harness prints a timeline that names the
// stalled thread instead of a bare counter mismatch.
func (rt *Runtime) DumpRecorder(w io.Writer, max int) {
	if max <= 0 {
		max = debugEvents
	}
	rt.rec.WriteTail(w, max)
}
