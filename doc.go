// Package nbr is a from-scratch Go reproduction of "NBR: Neutralization
// Based Reclamation" (Singh, Brown, Mashtizadeh; PPoPP 2021).
//
// The paper's algorithms live in internal/core; the substrates that make
// them expressible under a garbage-collected runtime live in internal/mem
// (manual-memory pool with use-after-free detection) and internal/sigsim
// (simulated POSIX neutralization signals). internal/smr defines the
// scheme/data-structure interface, internal/smr/* the baseline reclamation
// algorithms, internal/ds/* the five evaluated data structures, and
// internal/bench the harness that regenerates every figure of the paper's
// evaluation (driven by cmd/nbrbench or the top-level testing.B benchmarks
// in bench_test.go).
//
// See README.md for a tour, DESIGN.md for the architecture and the
// substitution arguments, and EXPERIMENTS.md for measured-vs-paper results.
package nbr
