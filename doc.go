// Package nbr is a from-scratch Go reproduction of "NBR: Neutralization
// Based Reclamation" (Singh, Brown, Mashtizadeh; PPoPP 2021), and a usable
// library around it.
//
// The public API has two entry points. The Domain (nbr.New) is one
// reclamation-protected concurrent ordered set with dynamic thread
// membership: handler goroutines Acquire a Lease, operate through it, and
// Release it on the way out — thread slots recycle across any number of
// short-lived goroutines, departing threads leak nothing (their in-flight
// reclamation state is adopted by later reclaimers), and the scheme's
// declared garbage bound holds across the churn. See examples/quickstart.
//
// The Runtime (nbr.NewRuntime) is the shared reclamation substrate behind
// it, exposed for services hosting several structures: one lease registry,
// one scheme instance and one arena serve every Set attached via NewSet, so
// a single Lease per request covers all of a handler's structures, the
// garbage bound is declared once and aggregates across them, and
// AcquireCtx provides FIFO blocking admission with context cancellation
// instead of spin-retry. A Domain is a thin attachment over a private
// one-set Runtime. See examples/server for the runtime under real
// net/http traffic and DESIGN.md §10 for the layer's design.
//
// The paper's algorithms live in internal/core; the substrates that make
// them expressible under a garbage-collected runtime live in internal/mem
// (manual-memory pool with use-after-free detection) and internal/sigsim
// (simulated POSIX neutralization signals). internal/smr defines the
// scheme/data-structure interface, internal/smr/* the baseline reclamation
// algorithms, internal/ds/* the evaluated data structures (the paper's five
// plus a resizable split-ordered hash map whose doubling retires each old
// bucket array as one segment — K records behind a single scheme-side stamp;
// DESIGN.md §14), and internal/bench the harness that regenerates every
// figure of the paper's evaluation (driven by cmd/nbrbench or the top-level
// testing.B benchmarks in bench_test.go).
//
// The runtime is observable in time, not just in count: every Runtime
// carries a per-thread flight recorder (internal/obs) — fixed rings of
// packed events plus power-of-two latency histograms for admission wait,
// lease hold, read-phase duration, signal→neutralization latency, garbage
// residence age and reap latency — disabled by default at a cost of one
// predictable branch per instrumented path, switched on with
// Runtime.Observe(true). Runtime.Debug returns an http.Handler serving the
// JSON snapshot (stats, bounds, waiters, quantiles, the last-K merged
// events; examples/server mounts it at /debug/nbr behind -debug, alongside
// /debug/pprof with scheme/structure-labelled samples), PublishExpvar
// republishes the same document through expvar's /debug/vars, and on any
// bound or drain violation the test harnesses dump the merged event
// timeline, which names the stalled thread and its open read phase. See
// DESIGN.md §15.
//
// The usage rules this API implies — leases never leave their acquiring
// goroutine, read phases contain only restartable operations, arena handles
// are dereferenced only under a guard bracket or reservation — are enforced
// statically by cmd/nbrvet, which runs as a blocking CI check; see
// DESIGN.md §13 for the rules and the annotation grammar.
//
// See README.md for a tour, DESIGN.md for the architecture and the
// substitution arguments, and EXPERIMENTS.md for measured-vs-paper results.
package nbr
