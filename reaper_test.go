package nbr_test

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"nbr"
)

// waitUntil polls cond for up to ~2s; the watchdog's cadence is wall-clock,
// so these tests observe it rather than assume exact timing.
func waitUntil(cond func() bool) bool {
	for i := 0; i < 2000; i++ {
		if cond() {
			return true
		}
		time.Sleep(time.Millisecond)
	}
	return cond()
}

// TestRuntimeWatchdogReap pins the reaper's core contract: a holder that
// overruns LeaseTimeout is revoked, its late Release is a counted no-op, and
// its slot recycles to a new holder.
func TestRuntimeWatchdogReap(t *testing.T) {
	rt, err := nbr.NewRuntime(nbr.RuntimeOptions{
		MaxThreads: 2, BagSize: 128, LeaseTimeout: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.NewSet("lazylist"); err != nil {
		t.Fatal(err)
	}

	l, err := rt.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	// The holder wedges: never releases. The watchdog must reap it.
	if !waitUntil(func() bool { return rt.ReapedLeases() == 1 }) {
		t.Fatalf("holder not reaped: ReapedLeases = %d", rt.ReapedLeases())
	}
	if !l.Revoked() {
		t.Fatal("reaped lease does not report Revoked")
	}
	if got := rt.ActiveThreads(); got != 0 {
		t.Fatalf("reaped holder still active: ActiveThreads = %d", got)
	}

	// The zombie wakes up and releases late: a counted no-op.
	l.Release()
	if got := rt.RevokedReleases(); got != 1 {
		t.Fatalf("RevokedReleases = %d, want 1", got)
	}

	// The slot must recycle: both slots acquirable again (AcquireCtx waits
	// out quarantine aging).
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	held := make([]*nbr.Lease, 2)
	for i := range held {
		if held[i], err = rt.AcquireCtx(ctx); err != nil {
			t.Fatalf("slot %d not reacquirable after reap: %v", i, err)
		}
	}
	for _, h := range held {
		h.Release()
	}
	// No further reaps: the new holders released before their deadlines...
	// unless the scheduler stalled this test past 10ms, which Revoke then
	// handles identically — so only the zombie accounting is asserted.
	if got, want := rt.RevokedReleases(), uint64(1); got != want {
		t.Fatalf("voluntary releases counted as revoked: %d, want %d", got, want)
	}
}

// TestRuntimeWithReaped pins With's reap reporting: a handler that overruns
// and returns cleanly gets ErrLeaseReaped (its work is void), and a handler
// killed mid-operation by the revocation unwinds into the same error.
func TestRuntimeWithReaped(t *testing.T) {
	rt, err := nbr.NewRuntime(nbr.RuntimeOptions{
		MaxThreads: 2, BagSize: 128, LeaseTimeout: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	set, err := rt.NewSet("lazylist")
	if err != nil {
		t.Fatal(err)
	}

	// Overrun, then return cleanly: With must report the reap.
	err = rt.With(context.Background(), func(l *nbr.Lease) error {
		if !waitUntil(l.Revoked) {
			t.Fatal("holder not reaped while wedged inside With")
		}
		return nil
	})
	if !errors.Is(err, nbr.ErrLeaseReaped) {
		t.Fatalf("With after a reap returned %v, want ErrLeaseReaped", err)
	}

	// Overrun, then touch the structure: the zombie is killed at the
	// operation boundary and With converts the unwind.
	err = rt.With(context.Background(), func(l *nbr.Lease) error {
		if !waitUntil(l.Revoked) {
			t.Fatal("holder not reaped while wedged inside With")
		}
		set.Insert(l, 42) // must panic sigsim.Revoked, not reach the set
		t.Fatal("revoked lease operated on the set")
		return nil
	})
	if !errors.Is(err, nbr.ErrLeaseReaped) {
		t.Fatalf("With after a killed operation returned %v, want ErrLeaseReaped", err)
	}

	// A handler error outranks nothing — it passes through untouched when no
	// reap happened.
	rtFast, err := nbr.NewRuntime(nbr.RuntimeOptions{MaxThreads: 2, BagSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rtFast.NewSet("lazylist"); err != nil {
		t.Fatal(err)
	}
	sentinel := errors.New("handler failed")
	if err := rtFast.With(context.Background(), func(*nbr.Lease) error { return sentinel }); !errors.Is(err, sentinel) {
		t.Fatalf("With swallowed the handler error: %v", err)
	}
}

// TestRuntimeWithPanicReleases pins the panic-unwind half of With: a user
// panic is rethrown after the lease went back through the shared recovery
// path, so a crashing handler can never strand a slot.
func TestRuntimeWithPanicReleases(t *testing.T) {
	rt, err := nbr.NewRuntime(nbr.RuntimeOptions{MaxThreads: 1, BagSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	set, err := rt.NewSet("lazylist")
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("handler crashed")
	func() {
		defer func() {
			if r := recover(); r != boom {
				t.Fatalf("With rethrew %v, want the original panic", r)
			}
		}()
		_ = rt.With(context.Background(), func(l *nbr.Lease) error {
			set.Insert(l, 7)
			panic(boom)
		})
		t.Fatal("With returned through a panic")
	}()
	// The single slot must be free again immediately (voluntary-release
	// path: no quarantine wait needed beyond AcquireCtx's patience).
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := rt.With(ctx, func(l *nbr.Lease) error {
		if !set.Contains(l, 7) {
			t.Error("pre-panic insert lost")
		}
		set.Delete(l, 7)
		return nil
	}); err != nil {
		t.Fatalf("slot stranded after a handler panic: %v", err)
	}
}

// TestDomainWith pins the Domain-flavored With: the lease carries the home
// set, so handlers use the sugar methods directly.
func TestDomainWith(t *testing.T) {
	d, err := nbr.New(nbr.Options{MaxThreads: 2, BagSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.With(context.Background(), func(l *nbr.Lease) error {
		if !l.Insert(11) {
			t.Error("fresh key reported present")
		}
		if !l.Contains(11) {
			t.Error("inserted key missing")
		}
		l.Delete(11)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := d.Drain(); err != nil {
		t.Fatal(err)
	}
}

// TestLeaseSetDeadline pins the per-lease override: a zero SetDeadline opts a
// lease out of a runtime-wide LeaseTimeout, and an explicit deadline arms the
// watchdog on a runtime that has none.
func TestLeaseSetDeadline(t *testing.T) {
	rt, err := nbr.NewRuntime(nbr.RuntimeOptions{
		MaxThreads: 2, BagSize: 128, LeaseTimeout: 15 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.NewSet("lazylist"); err != nil {
		t.Fatal(err)
	}
	l, err := rt.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	l.SetDeadline(time.Time{}) // opt out: a long-running maintenance task
	time.Sleep(60 * time.Millisecond)
	if l.Revoked() || rt.ReapedLeases() != 0 {
		t.Fatalf("deadline-cleared lease was reaped (reaps = %d)", rt.ReapedLeases())
	}
	l.Release()

	// Explicit deadline on a watchdog-less runtime.
	rtBare, err := nbr.NewRuntime(nbr.RuntimeOptions{MaxThreads: 2, BagSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rtBare.NewSet("lazylist"); err != nil {
		t.Fatal(err)
	}
	l2, err := rtBare.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	l2.SetDeadline(time.Now().Add(5 * time.Millisecond))
	if !waitUntil(func() bool { return rtBare.ReapedLeases() == 1 }) {
		t.Fatal("explicit SetDeadline did not arm the watchdog")
	}
	l2.Release()
	if got := rtBare.RevokedReleases(); got != 1 {
		t.Fatalf("RevokedReleases = %d, want 1", got)
	}
}

// TestRuntimeCancelVsReapRace is the regression stress for the AcquireCtx
// admission queue under concurrent cancellation and reaping: a waiter whose
// context fires while a baton (from a voluntary release OR a reap on the
// watchdog's goroutine) is already in its buffer must re-forward it, or the
// admission chain breaks and a later waiter starves. The storm drives all
// three events — cancel, release, reap — through the queue at once; the
// verdict is that a patient waiter is always admitted afterwards.
func TestRuntimeCancelVsReapRace(t *testing.T) {
	rt, err := nbr.NewRuntime(nbr.RuntimeOptions{
		MaxThreads: 2, BagSize: 128, ScanFreq: 4,
		LeaseTimeout: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	set, err := rt.NewSet("lazylist")
	if err != nil {
		t.Fatal(err)
	}

	const workers = 8
	rounds := 150
	if testing.Short() {
		rounds = 30
	}
	var admitted, cancelled, wedged atomic.Uint64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)*2862933555777941757 + 3037000493))
			for i := 0; i < rounds; i++ {
				// Tiny, jittered timeouts: many fire exactly while a baton
				// is being handed over — the race under test.
				ctx, cancel := context.WithTimeout(context.Background(),
					time.Duration(rng.Intn(1500))*time.Microsecond)
				l, err := rt.AcquireCtx(ctx)
				cancel()
				if err != nil {
					cancelled.Add(1)
					continue
				}
				admitted.Add(1)
				switch i % 3 {
				case 0: // clean, brief hold
					set.Insert(l, uint64(rng.Intn(31))+1)
					l.Release()
				case 1: // wedge: the watchdog must reap it to free the slot
					wedged.Add(1)
					// Lease deliberately leaked to the reaper.
				default: // hold across the reap window, then release late
					time.Sleep(time.Duration(rng.Intn(3)) * time.Millisecond)
					l.Release()
				}
			}
		}(w)
	}
	wg.Wait()

	// Every wedged holder must eventually be reaped (reaps can exceed the
	// wedge count: slow case-2 holders crossing their deadline are reaped
	// too, and their late Release is the counted no-op — by design).
	if !waitUntil(func() bool { return rt.ReapedLeases() >= wedged.Load() }) {
		t.Fatalf("reaps stalled: %d reaped of %d wedged", rt.ReapedLeases(), wedged.Load())
	}

	// The verdict: after the storm, patient waiters get every slot. A lost
	// baton would leave AcquireCtx hanging here until the timeout.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	held := make([]*nbr.Lease, rt.MaxThreads())
	for i := range held {
		if held[i], err = rt.AcquireCtx(ctx); err != nil {
			t.Fatalf("admission chain broken after cancel/reap storm: slot %d: %v", i, err)
		}
		held[i].SetDeadline(time.Time{}) // don't reap the verdict holders
	}
	if w := rt.Waiters(); w != 0 {
		t.Fatalf("waiter queue not empty after storm: %d", w)
	}
	for _, l := range held {
		l.Release()
	}
	if err := rt.Drain(); err != nil {
		t.Fatal(err)
	}
	if st := rt.Stats(); st.Retired != st.Freed {
		t.Fatalf("storm leaked records: retired %d != freed %d", st.Retired, st.Freed)
	}
	if fb := rt.FallbackReuses(); fb != 0 {
		t.Fatalf("FallbackReuses = %d, want 0", fb)
	}
	t.Logf("storm: %d admitted, %d cancelled, %d wedged, %d reaped, %d zombie releases",
		admitted.Load(), cancelled.Load(), wedged.Load(), rt.ReapedLeases(), rt.RevokedReleases())
}
