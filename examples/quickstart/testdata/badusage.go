// Bad-usage companion to examples/quickstart: the same patterns with the
// protocol mistakes put back in. This file lives under testdata/ so the go
// tool never builds it; each marked line is what `go run ./cmd/nbrvet ./...`
// reports when the mistake appears in built code. See DESIGN.md §13.
package main

import (
	"sync"

	"nbr"
)

// stashed parks a lease for "later" — but later runs on whatever goroutine
// gets there first, with no claim to the lease's guard slot.
var stashed *nbr.Lease

func badMain() {
	domain, err := nbr.New(nbr.Options{Structure: "lazylist", Scheme: "nbr+"})
	if err != nil {
		panic(err)
	}

	lease, err := domain.Acquire()
	if err != nil {
		panic(err)
	}

	// nbrvet: "lease stored to a package-level variable escapes its
	// acquiring goroutine" (leaseescape)
	stashed = lease

	var wg sync.WaitGroup
	wg.Add(1)
	// nbrvet: "lease captured by a new goroutine: a lease is
	// goroutine-affine; acquire inside the goroutine instead" (leaseescape)
	go func() {
		defer wg.Done()
		lease.Insert(2)
	}()
	wg.Wait()

	lease.Release()
	// nbrvet: "use of lease lease after Release: its guard slot may already
	// belong to another goroutine" (guardderef)
	lease.Insert(4)
}
