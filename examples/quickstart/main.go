// Quickstart: protect a concurrent ordered set with NBR+ in three steps,
// using only the public nbr package.
//
//  1. create a Domain (a data structure + reclamation scheme + thread-lease
//     registry in one);
//  2. each worker goroutine acquires a Lease — no hand-managed thread ids;
//  3. run operations through the lease and release it — retired records are
//     reclaimed behind the scenes, with bounded garbage even if a thread
//     stalls, and a departing thread leaks nothing.
//
// Single-structure services need nothing beyond this: nbr.New is unchanged
// since the shared-runtime layer landed (a Domain is now a one-structure
// nbr.Runtime under the hood). A service hosting several structures over
// one lease registry — one Lease covering all of them per request — starts
// from nbr.NewRuntime and attaches structures with NewSet instead; see
// examples/server for that regime over real HTTP.
//
// What nbrvet would catch here: the protocol mistakes this example is
// careful not to make are all static findings — stashing the lease in a
// package variable or handing it to another goroutine (leaseescape; a lease
// is goroutine-affine), or touching it after Release (guardderef). See
// testdata/badusage.go for the flagged versions of this file's patterns,
// and DESIGN.md §13 for the full rule set.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"sync"

	"nbr"
)

func main() {
	const workers = 4

	// 1. The domain: an NBR+-protected lazy list.
	domain, err := nbr.New(nbr.Options{
		Structure: "lazylist",
		Scheme:    "nbr+",
		BagSize:   512,
	})
	if err != nil {
		panic(err)
	}

	// 2+3. Each worker leases a thread slot and churns its own key stripe.
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lease, err := domain.Acquire()
			if err != nil {
				panic(err)
			}
			defer lease.Release()
			for i := 0; i < 20_000; i++ {
				key := uint64(i*workers+w) % 1000 * 2 // even keys only
				if key == 0 {
					key = 2
				}
				lease.Insert(key)
				if i%3 == 0 {
					lease.Delete(key)
				}
			}
		}(w)
	}
	wg.Wait()

	probe, err := domain.Acquire()
	if err != nil {
		panic(err)
	}
	fmt.Printf("set size after churn: %d\n", domain.Len())
	fmt.Printf("contains(2)=%v contains(3)=%v\n", probe.Contains(2), probe.Contains(3))
	probe.Release()

	if err := domain.Drain(); err != nil {
		panic(err)
	}
	st := domain.Stats()
	ms := domain.MemStats()
	fmt.Printf("retired=%d freed=%d garbage=%d (declared bound: %d)\n",
		st.Retired, st.Freed, st.Garbage(), domain.GarbageBound())
	fmt.Printf("signals sent=%d, read-phase restarts=%d\n", st.Signals, st.Neutralized)
	fmt.Printf("live records=%d (%.1f KiB)\n", ms.Live, float64(ms.LiveBytes)/1024)

	if err := domain.Validate(); err != nil {
		panic(err)
	}
	fmt.Println("structure validated: ok")
}
