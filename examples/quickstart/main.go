// Quickstart: protect a concurrent ordered set with NBR+ in four steps.
//
//  1. create a data structure (it owns a pool-backed arena);
//  2. create the reclamation scheme over that arena;
//  3. give every worker goroutine its own guard (thread id);
//  4. run operations — retired records are reclaimed behind the scenes,
//     with bounded garbage even if a thread stalls.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"sync"

	"nbr/internal/core"
	"nbr/internal/ds/lazylist"
)

func main() {
	const threads = 4

	// 1. The data structure.
	list := lazylist.New(threads)

	// 2. NBR+ bound to the list's arena.
	scheme := core.New(list.Arena(), threads, core.Config{Plus: true, BagSize: 512})

	// 3+4. Each worker inserts and deletes its own key stripe.
	var wg sync.WaitGroup
	for tid := 0; tid < threads; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			g := scheme.Guard(tid)
			for i := 0; i < 20_000; i++ {
				key := uint64(i*threads+tid) % 1000 * 2 // even keys only
				if key == 0 {
					key = 2
				}
				list.Insert(g, key)
				if i%3 == 0 {
					list.Delete(g, key)
				}
			}
		}(tid)
	}
	wg.Wait()

	g := scheme.Guard(0)
	fmt.Printf("set size after churn: %d\n", list.Len())
	fmt.Printf("contains(2)=%v contains(3)=%v\n", list.Contains(g, 2), list.Contains(g, 3))

	st := scheme.Stats()
	ms := list.MemStats()
	fmt.Printf("retired=%d freed=%d garbage=%d (bound: %d per thread, %d total)\n",
		st.Retired, st.Freed, st.Garbage(), scheme.ThreadBound(), scheme.GarbageBound())
	fmt.Printf("signals sent=%d, read-phase restarts=%d\n", st.Signals, st.Neutralized)
	fmt.Printf("live records=%d (%.1f KiB)\n", ms.Live, float64(ms.LiveBytes)/1024)

	if err := list.Validate(); err != nil {
		panic(err)
	}
	fmt.Println("structure validated: ok")
}
