// Kvstore builds a realistic service on the public API: an ordered index
// (the (a,b)-tree) ingesting a stream of session records while concurrent
// readers run point lookups — the "data structures as database indexes"
// workload the paper's introduction motivates. Ingest deletes expired
// sessions continuously, so reclamation runs the whole time; the example
// reports service-level metrics plus the reclamation counters that would
// let an operator confirm memory stays bounded.
//
// Run with: go run ./examples/kvstore
package main

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"nbr/internal/core"
	"nbr/internal/ds/abtree"
)

const (
	ingestWorkers = 2
	queryWorkers  = 2
	sessionSpace  = 50_000 // live session ids cycle through this range
	runFor        = 800 * time.Millisecond
)

func main() {
	threads := ingestWorkers + queryWorkers
	index := abtree.New(threads)
	scheme := core.New(index.Arena(), threads, core.Config{Plus: true, BagSize: 1024})

	var (
		stop            atomic.Bool
		ingested, hits  atomic.Uint64
		expired, misses atomic.Uint64
		wg              sync.WaitGroup
	)

	// Ingest workers: create a session, expire an old one (a sliding
	// window), keeping the index near steady state under heavy retirement.
	for w := 0; w < ingestWorkers; w++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			g := scheme.Guard(tid)
			var seq uint64
			for !stop.Load() {
				seq++
				id := (seq*uint64(ingestWorkers)+uint64(tid))%sessionSpace + 1
				if index.Insert(g, id) {
					ingested.Add(1)
				}
				old := (id + sessionSpace/2) % sessionSpace
				if old == 0 {
					old = 1
				}
				if index.Delete(g, old) {
					expired.Add(1)
				}
			}
		}(w)
	}

	// Query workers: point lookups across the id space.
	for w := 0; w < queryWorkers; w++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			g := scheme.Guard(tid)
			rng := uint64(tid + 1)
			for !stop.Load() {
				rng += 0x9e3779b97f4a7c15
				z := rng
				z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
				id := z%sessionSpace + 1
				if index.Contains(g, id) {
					hits.Add(1)
				} else {
					misses.Add(1)
				}
			}
		}(ingestWorkers + w)
	}

	time.Sleep(runFor)
	stop.Store(true)
	wg.Wait()

	st := scheme.Stats()
	ms := index.MemStats()
	fmt.Println("kvstore: ordered session index on abtree + NBR+")
	fmt.Printf("  live sessions      %d\n", index.Len())
	fmt.Printf("  ingested/expired   %d / %d\n", ingested.Load(), expired.Load())
	fmt.Printf("  lookups hit/miss   %d / %d\n", hits.Load(), misses.Load())
	fmt.Printf("  records retired    %d, freed %d, resident garbage %d\n",
		st.Retired, st.Freed, st.Garbage())
	fmt.Printf("  neutralizations    %d (signals sent %d)\n", st.Neutralized, st.Signals)
	fmt.Printf("  index memory       %.1f KiB live, %.1f KiB reserved slabs\n",
		float64(ms.LiveBytes)/1024, float64(ms.SlabBytes)/1024)
	if err := index.Validate(); err != nil {
		panic(err)
	}
	fmt.Println("  index validated    ok")
}
