// Kvstore builds a realistic service on the public API: a session cache on
// the resizable hash map, growing from a handful of buckets to thousands
// while concurrent readers run point lookups — the "data structures as
// database indexes" workload the paper's introduction motivates. The cache
// starts cold and fills under load, so the map's doubling cascade runs the
// whole time; every superseded bucket array is retired as ONE segment
// handle, and the reclamation counters printed at the end show the
// amortization (thousands of cells retired behind a few dozen scheme-side
// stamps).
//
// Every worker runs inside Runtime.With, the lease session that guarantees
// the thread slot is returned through the shared recovery path even if the
// handler panics or overruns its deadline.
//
// Run with: go run ./examples/kvstore
package main

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"nbr"
)

const (
	ingestWorkers = 2
	queryWorkers  = 2
	sessionSpace  = 60_000 // live session ids cycle through this range
	runFor        = 800 * time.Millisecond
)

func main() {
	rt, err := nbr.NewRuntime(nbr.RuntimeOptions{
		Scheme:       "nbr+",
		MaxThreads:   ingestWorkers + queryWorkers,
		LeaseTimeout: 5 * time.Second, // reap a wedged worker instead of stranding its slot
	})
	if err != nil {
		panic(err)
	}
	sessions, err := rt.NewSet("hashmap")
	if err != nil {
		panic(err)
	}

	var (
		stop            atomic.Bool
		created, hits   atomic.Uint64
		expired, misses atomic.Uint64
		wg              sync.WaitGroup
	)
	ctx := context.Background()

	// Ingest workers: create a session, expire an old one (a sliding
	// window). The net growth toward sessionSpace live keys drives the hash
	// map's doubling cascade; each doubling retires the old bucket array as
	// a single segment.
	for w := 0; w < ingestWorkers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			err := rt.With(ctx, func(l *nbr.Lease) error {
				var seq uint64
				for !stop.Load() {
					seq++
					id := (seq*uint64(ingestWorkers)+uint64(worker))%sessionSpace + 1
					if sessions.Insert(l, id) {
						created.Add(1)
					}
					old := (id + sessionSpace/2) % sessionSpace
					if old == 0 {
						old = 1
					}
					if sessions.Delete(l, old) {
						expired.Add(1)
					}
				}
				return nil
			})
			if err != nil {
				panic(err)
			}
		}(w)
	}

	// Query workers: point lookups across the id space.
	for w := 0; w < queryWorkers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			err := rt.With(ctx, func(l *nbr.Lease) error {
				rng := uint64(worker + 1)
				for !stop.Load() {
					rng += 0x9e3779b97f4a7c15
					z := rng
					z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
					id := z%sessionSpace + 1
					if sessions.Contains(l, id) {
						hits.Add(1)
					} else {
						misses.Add(1)
					}
				}
				return nil
			})
			if err != nil {
				panic(err)
			}
		}(w)
	}

	time.Sleep(runFor)
	stop.Store(true)
	wg.Wait()
	if err := rt.Drain(); err != nil {
		panic(err)
	}

	st := rt.Stats()
	ms := rt.MemStats()
	fmt.Println("kvstore: session cache on resizable hashmap + NBR+")
	fmt.Printf("  live sessions      %d\n", sessions.Len())
	fmt.Printf("  created/expired    %d / %d\n", created.Load(), expired.Load())
	fmt.Printf("  lookups hit/miss   %d / %d\n", hits.Load(), misses.Load())
	fmt.Printf("  records retired    %d, freed %d, resident garbage %d\n",
		st.Retired, st.Freed, st.Garbage())
	fmt.Printf("  bucket arrays      %d retired as segments covering %d cells (%d scheme-side stamps)\n",
		st.Segments, st.SegRecords, st.Stamps())
	fmt.Printf("  neutralizations    %d (signals sent %d)\n", st.Neutralized, st.Signals)
	fmt.Printf("  declared bound     %d records\n", rt.GarbageBound())
	fmt.Printf("  cache memory       %.1f KiB live, %.1f KiB reserved slabs\n",
		float64(ms.LiveBytes)/1024, float64(ms.SlabBytes)/1024)
	if err := sessions.Validate(); err != nil {
		panic(err)
	}
	fmt.Println("  cache validated    ok")
}
