// Boundedmemory demonstrates the paper's E2 result at example scale: when a
// thread stalls in the middle of an operation, epoch-based schemes (DEBRA)
// accumulate garbage without bound, while NBR+ neutralizes the stalled
// thread and keeps unreclaimed memory bounded by its watermarks.
//
// Run with: go run ./examples/boundedmemory
package main

import (
	"fmt"
	"sync"
	"sync/atomic"

	"nbr/internal/bench"
	"nbr/internal/sigsim"
)

func main() {
	for _, scheme := range []string{"debra", "nbr+"} {
		garbage, retired := runWithStalledThread(scheme)
		fmt.Printf("%-6s retired=%-8d unreclaimed=%-8d (%.0f%% of retired still resident)\n",
			scheme, retired, garbage, 100*float64(garbage)/float64(retired))
	}
	fmt.Println("\nDEBRA cannot advance its epoch past the sleeping thread; NBR+ signals")
	fmt.Println("it, reclaims everything unreserved, and neutralizes it when it wakes.")
}

// runWithStalledThread churns inserts/deletes around one thread that parks
// inside an open read phase, then wakes it to show the neutralization.
//
//nbr:allow readphase — the open read phase held across worker churn is the demo's whole point; the main goroutine coordinating it never runs under a guard that could be neutralized
func runWithStalledThread(scheme string) (garbage, retired uint64) {
	const workers = 3
	threads := workers + 1
	inst, err := bench.NewDS("dgt", threads)
	if err != nil {
		panic(err)
	}
	cfg := bench.DefaultSchemeConfig()
	cfg.BagSize = 512
	sch, err := bench.NewScheme(scheme, inst.Arena, threads, cfg)
	if err != nil {
		panic(err)
	}

	// The villain: begins an operation, then goes to sleep forever.
	stalled := sch.Guard(workers)
	stalled.BeginOp()
	stalled.BeginRead()

	// The workers: churn inserts and deletes, retiring constantly.
	var stop atomic.Bool
	var wg sync.WaitGroup
	for tid := 0; tid < workers; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			g := sch.Guard(tid)
			rng := uint64(tid + 1)
			for i := 0; i < 60_000 && !stop.Load(); i++ {
				// splitmix64: low bits of a bare LCG correlate with the key.
				rng += 0x9e3779b97f4a7c15
				z := rng
				z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
				z = (z ^ (z >> 27)) * 0x94d049bb133111eb
				z ^= z >> 31
				key := z%5_000 + 1
				if (z>>40)&1 == 0 {
					inst.Set.Insert(g, key)
				} else {
					inst.Set.Delete(g, key)
				}
			}
		}(tid)
	}
	wg.Wait()
	stop.Store(true)

	// Wake the sleeper; under NBR+ it gets neutralized (and would restart
	// its operation), under DEBRA it resumes as if nothing happened.
	func() {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(sigsim.Neutralized); !ok {
					panic(r)
				}
				fmt.Printf("%-6s stalled thread was neutralized on wake-up\n", scheme)
			}
		}()
		stalled.EndRead()
	}()
	stalled.EndOp()

	st := sch.Stats()
	return st.Garbage(), st.Retired
}
