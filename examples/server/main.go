// Server: a real net/http service on one shared reclamation runtime.
//
// A production Go service hosts several concurrent structures — here a
// "sessions" list and a "catalog" tree — and serves each request on a
// short-lived handler goroutine. This example measures exactly the regime
// the runtime layer exists for: one nbr.Runtime owns one lease registry,
// one reclamation scheme and one shared arena; every HTTP request runs
// inside Runtime.With — ONE lease acquired with the request's deadline
// (blocking admission, not spin-retry), both structures driven under it,
// and the release guaranteed even if the handler panics.
//
// Two lease-management modes compare the cost of membership churn:
//
//   - lease (default): acquire/release per request — thousands of slot
//     recycles, departing handlers orphan mid-protocol state, the round
//     guarantee holds via forced scan rounds;
//   - pool: a sync.Pool of long-lived leases, the classic Go baseline —
//     requests reuse leases without touching the registry, isolating the
//     per-request acquire/release overhead the lease mode pays.
//
// The load generator drives the server over real HTTP (loopback TCP), then
// the runtime drains: Retired == Freed across both structures, the
// aggregated garbage bound respected throughout (checked live), both
// structures valid. Any violation exits non-zero, which is how CI runs this
// as a smoke test.
//
// What nbrvet would catch here: handing a request's lease to a background
// goroutine, parking it in a struct that outlives the request, or using it
// after Release are all static findings (leaseescape, guardderef). The one
// deliberate exception in this file — the pool mode's leaseBox, which caches
// leases across requests by design — carries a justified //nbr:allow
// annotation at the store; testdata/badusage.go shows the unjustified
// versions, and DESIGN.md §13 the full rule set.
//
// Run with: go run ./examples/server            (or -mode pool, -requests 50000)
//
// Profiling the admission knee: -debug mounts the runtime's observability
// surface on the serving mux — /debug/nbr (JSON: stats, bounds, waiters,
// latency-histogram quantiles, last-K flight-recorder events), /debug/pprof
// and /debug/vars — and every request's CPU samples carry pprof labels
// (scheme, structure), so a profile splits reclamation cost per structure.
// Two commands find where admission starts to queue:
//
//	go run ./examples/server -debug -addr 127.0.0.1:8080 -requests 1000000 &
//	go tool pprof 'http://127.0.0.1:8080/debug/pprof/profile?seconds=10'
//
// and while that profile collects, `curl -s 127.0.0.1:8080/debug/nbr | jq
// '.recorder.hists'` reads the admission-wait p99 climbing in real time —
// the knee is where admit_wait p99 leaves the microsecond buckets while
// req/s stops rising.
package main

import (
	"context"
	"encoding/json"
	"expvar"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	httppprof "net/http/pprof"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"nbr"
)

// service is the shared state every handler touches: one runtime, two
// structures, and the lease-management strategy under test.
type service struct {
	rt       *nbr.Runtime
	sessions *nbr.Set // lazylist: short-lived per-user session keys
	catalog  *nbr.Set // dgt BST: the larger lookup structure
	mode     string

	// pool mode: long-lived leases recycled across requests without
	// registry traffic. Each pooled lease rides in a leaseBox carrying a
	// finalizer, because sync.Pool may drop entries at any GC — a dropped
	// lease would otherwise strand its registry slot (held but
	// unreachable) and monotonically shrink capacity mid-run. The
	// finalizer releases the slot back instead; Release is idempotent, so
	// the shutdown sweep over all remaining leases stays safe.
	pool sync.Pool
	mu   sync.Mutex
	all  []*nbr.Lease

	served  atomic.Uint64
	rejects atomic.Uint64
}

// leaseBox wraps a pooled lease so GC eviction from the sync.Pool frees
// the registry slot rather than stranding it.
type leaseBox struct {
	l *nbr.Lease
}

// with runs the request body under a lease. Lease mode is Runtime.With —
// the panic-safe acquire/run/release envelope, so a handler that crashes or
// overruns can never strand a slot. Pool mode keeps the manual lifecycle on
// purpose: it is the sync.Pool baseline the envelope is compared against.
func (s *service) with(ctx context.Context, fn func(*nbr.Lease) error) error {
	if s.mode == "pool" {
		b, ok := s.pool.Get().(*leaseBox)
		if !ok || b == nil {
			l, err := s.rt.AcquireCtx(ctx)
			if err != nil {
				return err
			}
			s.mu.Lock()
			s.all = append(s.all, l)
			s.mu.Unlock()
			//nbr:allow leaseescape — the session pool caches leases across requests by design; the box is checked out by one handler at a time and a finalizer releases stragglers
			b = &leaseBox{l: l}
			// The box is only unreachable once neither the pool nor a handler
			// holds it, so the release can never race an in-flight request.
			runtime.SetFinalizer(b, func(b *leaseBox) { b.l.Release() })
		}
		defer s.pool.Put(b)
		return fn(b.l)
	}
	return s.rt.With(ctx, fn)
}

// handle is the one HTTP endpoint: /op?key=N&kind=M mixes inserts, deletes
// and lookups across both structures under a single lease — the
// one-lease-covers-all-structures contract in the request path.
func (s *service) handle(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := context.WithTimeout(r.Context(), 2*time.Second)
	defer cancel()

	var key, kind uint64
	fmt.Sscanf(r.URL.Query().Get("key"), "%d", &key)
	fmt.Sscanf(r.URL.Query().Get("kind"), "%d", &kind)
	if key == 0 {
		key = 1
	}

	// A request session: touch the session list and the catalog tree under
	// the same lease, delete-heavy so retire traffic flows constantly.
	err := s.with(ctx, func(l *nbr.Lease) error {
		var hits int
		for i := uint64(0); i < 8; i++ {
			k := key + i*131
			switch (kind + i) % 4 {
			case 0:
				s.sessions.Insert(l, k)
				s.catalog.Insert(l, k*2+1)
			case 1:
				s.sessions.Delete(l, k)
			case 2:
				s.catalog.Delete(l, k*2+1)
			default:
				if s.sessions.Contains(l, k) {
					hits++
				}
				if s.catalog.Contains(l, k*2+1) {
					hits++
				}
			}
		}
		s.served.Add(1)
		fmt.Fprintf(w, "ok hits=%d tid=%d\n", hits, l.Tid())
		return nil
	})
	if err != nil {
		s.rejects.Add(1)
		http.Error(w, "admission: "+err.Error(), http.StatusServiceUnavailable)
	}
}

func main() {
	var (
		requests   = flag.Int("requests", 20_000, "HTTP requests to drive")
		clients    = flag.Int("clients", 24, "concurrent HTTP clients (more than lease slots: admission queues)")
		keyRange   = flag.Uint64("keys", 4096, "key range")
		maxThreads = flag.Int("max-threads", 12, "lease-registry capacity shared by both structures")
		mode       = flag.String("mode", "lease", "lease management: 'lease' (acquire per request) or 'pool' (sync.Pool baseline)")
		debug      = flag.Bool("debug", false, "enable the flight recorder and mount /debug/nbr, /debug/pprof and /debug/vars on the serving mux")
		addr       = flag.String("addr", "127.0.0.1:0", "listen address (an explicit port makes -debug endpoints curl-able from outside)")
	)
	flag.Parse()
	if *mode != "lease" && *mode != "pool" {
		fmt.Fprintln(os.Stderr, "server: -mode must be 'lease' or 'pool'")
		os.Exit(2)
	}

	rt, err := nbr.NewRuntime(nbr.RuntimeOptions{
		Scheme:     "nbr+",
		MaxThreads: *maxThreads,
		BagSize:    512,
	})
	check(err)
	svc := &service{rt: rt, mode: *mode}
	svc.sessions, err = rt.NewSet("lazylist")
	check(err)
	svc.catalog, err = rt.NewSet("dgt")
	check(err)
	bound := rt.GarbageBound()
	fmt.Printf("runtime: %v under %s, %d lease slots shared, aggregated garbage bound %d records, mode=%s\n",
		rt.Structures(), rt.Scheme(), rt.MaxThreads(), bound, *mode)

	// A real HTTP server on loopback TCP — requests cross the network stack,
	// handlers run on per-connection goroutines.
	ln, err := net.Listen("tcp", *addr)
	check(err)
	mux := http.NewServeMux()
	mux.HandleFunc("/op", svc.handle)
	if *debug {
		// The observability surface rides the serving mux, not a side
		// listener: what you profile is exactly what serves traffic. The
		// flight recorder goes on for the whole run (one predictable branch
		// per instrumented hot path), /debug/nbr serves the JSON snapshot,
		// expvar republishes the same document for /debug/vars scrapers, and
		// the pprof handlers are mounted explicitly because this mux is not
		// the DefaultServeMux the net/http/pprof import registers on.
		rt.Observe(true)
		rt.PublishExpvar("nbr")
		mux.Handle("/debug/nbr", rt.Debug())
		mux.Handle("/debug/vars", expvar.Handler())
		mux.HandleFunc("/debug/pprof/", httppprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", httppprof.Trace)
	}
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	base := "http://" + ln.Addr().String()
	if *debug {
		fmt.Printf("debug: %s/debug/nbr %s/debug/pprof/ %s/debug/vars\n", base, base, base)
	}

	// The live contract monitor: the aggregated bound must hold while
	// handlers come and go.
	var stopMon atomic.Bool
	var peak atomic.Uint64
	monDone := make(chan struct{})
	go func() {
		defer close(monDone)
		for !stopMon.Load() {
			g := rt.Stats().Garbage()
			if g > peak.Load() {
				peak.Store(g)
			}
			if b := rt.GarbageBound(); b != nbr.Unbounded && g > uint64(b) {
				fmt.Fprintf(os.Stderr, "garbage bound violated mid-run: %d > %d\n", g, b)
				os.Exit(1)
			}
			time.Sleep(time.Millisecond)
		}
	}()

	// Drive the load: *clients concurrent HTTP clients, per-request latency
	// sampled end to end (admission included).
	var (
		wg     sync.WaitGroup
		next   atomic.Int64
		latMu  sync.Mutex
		lats   []time.Duration
		failed atomic.Uint64
	)
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: *clients}}
	begin := time.Now()
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			var local []time.Duration
			for {
				r := next.Add(1)
				if r > int64(*requests) {
					break
				}
				key := (uint64(r)*0x9e3779b97f4a7c15)%*keyRange + 1
				t0 := time.Now()
				resp, err := client.Get(fmt.Sprintf("%s/op?key=%d&kind=%d", base, key, r%4))
				if err != nil {
					failed.Add(1)
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					failed.Add(1)
					continue
				}
				if r%16 == 0 {
					local = append(local, time.Since(t0))
				}
			}
			latMu.Lock()
			lats = append(lats, local...)
			latMu.Unlock()
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(begin)

	// With -debug, self-check the observability endpoint over real HTTP
	// before shutdown: the snapshot must come back 200 and parseable, with
	// the recorder reporting itself enabled — the same check CI's smoke step
	// makes externally with curl.
	if *debug {
		resp, err := client.Get(base + "/debug/nbr")
		check(err)
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		check(err)
		var snap struct {
			Recorder struct {
				Enabled bool `json:"enabled"`
			} `json:"recorder"`
		}
		if resp.StatusCode != http.StatusOK || !json.Valid(body) {
			fail("/debug/nbr self-check: status %d, %d bytes", resp.StatusCode, len(body))
		}
		if json.Unmarshal(body, &snap); !snap.Recorder.Enabled {
			fail("/debug/nbr self-check: recorder not reported enabled")
		}
		fmt.Printf("debug: /debug/nbr self-check ok (%d bytes)\n", len(body))
	}
	srv.Shutdown(context.Background())
	stopMon.Store(true)
	<-monDone

	// Pool mode: give every long-lived lease back before draining.
	svc.mu.Lock()
	for _, l := range svc.all {
		l.Release()
	}
	svc.mu.Unlock()

	check(rt.Drain())
	st := rt.Stats()
	ms := rt.MemStats()
	rps := float64(svc.served.Load()) / elapsed.Seconds()
	fmt.Printf("served %d requests in %v (%.0f req/s, %d admission rejects, %d transport failures)\n",
		svc.served.Load(), elapsed.Round(time.Millisecond), rps, svc.rejects.Load(), failed.Load())
	if len(lats) > 0 {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		fmt.Printf("request latency p50=%v p99=%v (end-to-end, admission included)\n",
			lats[len(lats)/2].Round(time.Microsecond), lats[len(lats)*99/100].Round(time.Microsecond))
	}
	fmt.Printf("retired=%d freed=%d garbage=%d (peak sampled %d, bound %d)\n",
		st.Retired, st.Freed, st.Garbage(), peak.Load(), rt.GarbageBound())
	fmt.Printf("forced scan rounds=%d, unaged-slot fallbacks=%d\n",
		rt.ForcedRounds(), rt.FallbackReuses())
	fmt.Printf("sessions size=%d, catalog size=%d, live records=%d (%.1f KiB)\n",
		svc.sessions.Len(), svc.catalog.Len(), ms.Live, float64(ms.LiveBytes)/1024)

	if st.Retired != st.Freed {
		fail("leaked records across membership churn: retired %d != freed %d", st.Retired, st.Freed)
	}
	if b := rt.GarbageBound(); b != nbr.Unbounded && peak.Load() > uint64(b) {
		fail("sampled garbage peak %d exceeded the aggregated bound %d", peak.Load(), b)
	}
	if rt.FallbackReuses() != 0 {
		fail("lease admission used the unaged-slot fallback %d times; forced rounds must cover HTTP churn", rt.FallbackReuses())
	}
	check(svc.sessions.Validate())
	check(svc.catalog.Validate())
	fmt.Println("drained clean: every record retired by a departed handler was reclaimed")
}

func check(err error) {
	if err != nil {
		fail("%v", err)
	}
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "server: "+format+"\n", args...)
	os.Exit(1)
}
