// Server: a goroutine-pool service under sustained membership churn.
//
// A production Go service does not run a fixed set of worker threads: handler
// goroutines are born per request, live for one burst of work, and exit. This
// example simulates exactly that against a single shared nbr.Domain — every
// simulated request spawns a fresh goroutine that acquires a thread lease,
// performs a handful of set operations, and releases the lease on the way
// out. Slots recycle thousands of times; departing handlers leave mid-protocol
// reclamation state behind (adopted by later reclaimers via the orphan list);
// and the domain's garbage bound holds throughout, which the main loop checks
// live.
//
// Run with: go run ./examples/server        (or -requests 50000 for a longer run)
package main

import (
	"flag"
	"fmt"
	"math/rand/v2"
	"runtime"
	"sync"
	"sync/atomic"

	"nbr"
)

func main() {
	var (
		requests   = flag.Int("requests", 20_000, "simulated requests to serve")
		inflight   = flag.Int("inflight", 16, "maximum concurrent handler goroutines")
		opsPerReq  = flag.Int("ops", 24, "set operations per request")
		keyRange   = flag.Uint64("keys", 4096, "key range")
		maxThreads = flag.Int("max-threads", 12, "lease-registry capacity")
	)
	flag.Parse()

	domain, err := nbr.New(nbr.Options{
		Structure:  "harris",
		Scheme:     "nbr+",
		MaxThreads: *maxThreads,
		BagSize:    512,
	})
	if err != nil {
		panic(err)
	}
	bound := domain.GarbageBound()
	fmt.Printf("domain: %s under %s, %d lease slots, garbage bound %d records\n",
		domain.Structure(), domain.Scheme(), domain.MaxThreads(), bound)

	var (
		served    atomic.Uint64
		retried   atomic.Uint64
		peak      atomic.Uint64
		wg        sync.WaitGroup
		admission = make(chan struct{}, *inflight)
	)

	for r := 0; r < *requests; r++ {
		admission <- struct{}{}
		wg.Add(1)
		// One goroutine per request: the membership-churn regime a fixed
		// thread set cannot express.
		go func(r int) {
			defer wg.Done()
			defer func() { <-admission }()
			lease, err := domain.Acquire()
			for err != nil {
				// The pool admits more goroutines than lease slots on
				// purpose; briefly losing the race is part of the demo.
				retried.Add(1)
				runtime.Gosched()
				lease, err = domain.Acquire()
			}
			defer lease.Release()

			rng := rand.New(rand.NewPCG(uint64(r), 0x9e3779b97f4a7c15))
			for i := 0; i < *opsPerReq; i++ {
				key := rng.Uint64N(*keyRange) + 1
				switch rng.IntN(3) {
				case 0:
					lease.Insert(key)
				case 1:
					lease.Delete(key)
				default:
					lease.Contains(key)
				}
			}
			served.Add(1)
		}(r)

		// The "operator console": check the live garbage-bound contract as
		// handlers come and go.
		if r%1024 == 0 {
			if g := domain.Stats().Garbage(); g > peak.Load() {
				peak.Store(g)
			}
			if b := domain.GarbageBound(); b != nbr.Unbounded && domain.Stats().Garbage() > uint64(b) {
				panic(fmt.Sprintf("garbage bound violated mid-run: %d > %d", domain.Stats().Garbage(), b))
			}
		}
	}
	wg.Wait()

	if err := domain.Drain(); err != nil {
		panic(err)
	}
	st := domain.Stats()
	ms := domain.MemStats()
	fmt.Printf("served %d requests (%d lease retries) across %d slots\n",
		served.Load(), retried.Load(), domain.MaxThreads())
	fmt.Printf("retired=%d freed=%d garbage=%d (peak sampled %d, bound %d)\n",
		st.Retired, st.Freed, st.Garbage(), peak.Load(), domain.GarbageBound())
	fmt.Printf("set size=%d, live records=%d (%.1f KiB)\n",
		domain.Len(), ms.Live, float64(ms.LiveBytes)/1024)
	if st.Retired != st.Freed {
		panic(fmt.Sprintf("leaked records across membership churn: retired %d != freed %d",
			st.Retired, st.Freed))
	}
	if err := domain.Validate(); err != nil {
		panic(err)
	}
	fmt.Println("drained clean: every record retired by a departed handler was reclaimed")
}
