// Bad-usage companion to examples/server: the lease-handling mistakes a
// request-scoped service is most tempted by, with the nbrvet finding each
// one draws. This file lives under testdata/ so the go tool never builds
// it. The one pattern the real example does keep — a pool of long-lived
// leases in pool mode — is only legal because the box is checked out by one
// handler at a time; that store carries a justified //nbr:allow in main.go.
// See DESIGN.md §13.
package main

import (
	"context"
	"net/http"
	"time"

	"nbr"
)

type badService struct {
	rt *nbr.Runtime
	// A per-connection cache of leases looks like an optimization and is a
	// cross-goroutine guard-slot race: net/http moves connections between
	// goroutines freely.
	byConn map[string]*nbr.Lease
}

func (s *badService) handle(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := context.WithTimeout(r.Context(), 50*time.Millisecond)
	defer cancel()

	l, err := s.rt.AcquireCtx(ctx)
	if err != nil {
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}

	// nbrvet: "lease stored to a map element escapes its acquiring
	// goroutine" (leaseescape) — the next request for this connection may
	// run on a different goroutine.
	s.byConn[r.RemoteAddr] = l

	// nbrvet: "lease passed to a new goroutine: a lease is goroutine-affine;
	// acquire inside the goroutine instead" (leaseescape) — audit logging
	// that outlives the request must not borrow its guard slot.
	go auditLog(l)

	l.Release()
	// nbrvet: "use of lease l after Release: its guard slot may already
	// belong to another goroutine" (guardderef)
	auditLog(l)
}

func auditLog(l *nbr.Lease) { _ = l }
