// Oversubscribe demonstrates the paper's P4 (consistency) property: when
// the system runs many more threads than cores, schemes that depend on
// every thread making progress (epoch-based) suffer from delayed threads,
// while NBR+ keeps reclaiming by neutralizing laggards. The example drives
// the benchmark harness directly at 8× oversubscription and prints the
// throughput and garbage of each scheme side by side.
//
// It then takes neutralization one step further: oversubscription is where
// holders wedge — a goroutine starved of its core, stuck on a dead
// downstream call — and a wedged holder owns a lease slot forever. The
// second half arms the lease watchdog, wedges a holder on purpose, and
// proves the slot comes back: the watchdog revokes the lease by the same
// signal machinery that neutralizes laggards, the shared recovery path
// quiesces the slot, and a fresh holder takes it over. The example exits
// non-zero if the wedged holder is not reaped within 2× its deadline.
//
// Run with: go run ./examples/oversubscribe
package main

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"time"

	"nbr"
	"nbr/internal/bench"
)

func main() {
	threads := 8 * runtime.GOMAXPROCS(0)
	fmt.Printf("DGT tree, 50%%i-50%%d, key range 100k, %d goroutines on %d core(s)\n\n",
		threads, runtime.GOMAXPROCS(0))
	fmt.Printf("%-8s %10s %12s %12s %12s\n", "scheme", "Mops/s", "garbage", "signals", "p99 lat")

	for _, scheme := range []string{"none", "debra", "hp", "nbr+"} {
		r, err := bench.Run(bench.Workload{
			DS:       "dgt",
			Scheme:   scheme,
			Threads:  threads,
			KeyRange: 100_000,
			InsPct:   50,
			DelPct:   50,
			Duration: 600 * time.Millisecond,
			Prefill:  -1,
			Cfg:      bench.DefaultSchemeConfig(),
		})
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-8s %10.3f %12d %12d %12v\n",
			scheme, r.Mops, r.Stats.Garbage(), r.Stats.Signals, r.LatP99)
	}
	fmt.Println("\ngarbage = retired records not yet returned to the allocator at exit;")
	fmt.Println("the leaky baseline never frees, the epoch schemes depend on laggards,")
	fmt.Println("NBR+ stays bounded because stalled readers are neutralized.")

	wedgedHolder()
}

// wedgedHolder is the crash-safety half: a holder that will never release,
// reaped by the lease watchdog. Exits non-zero if the reap does not land
// within 2× the deadline — the contract CI enforces.
func wedgedHolder() {
	const deadline = 50 * time.Millisecond
	fmt.Printf("\nwedged holder: LeaseTimeout %v, reap must land within %v\n", deadline, 2*deadline)

	rt, err := nbr.NewRuntime(nbr.RuntimeOptions{
		Scheme: "nbr+", MaxThreads: 4, BagSize: 512, LeaseTimeout: deadline,
	})
	check(err)
	set, err := rt.NewSet("lazylist")
	check(err)

	// The wedge: acquire, do a little work, then stop forever — a handler
	// stuck on a dead downstream call. Its lease is deliberately leaked.
	l, err := rt.Acquire()
	check(err)
	for k := uint64(1); k <= 64; k++ {
		set.Insert(l, k)
	}
	wedgedAt := time.Now()

	for rt.ReapedLeases() == 0 {
		if time.Since(wedgedAt) > 2*deadline {
			fmt.Fprintf(os.Stderr, "oversubscribe: wedged holder NOT reaped within %v (reaps=0): the watchdog is broken\n", 2*deadline)
			os.Exit(1)
		}
		time.Sleep(time.Millisecond)
	}
	fmt.Printf("reaped after %v: lease revoked, slot quiesced on the watchdog's goroutine\n",
		time.Since(wedgedAt).Round(time.Millisecond))

	// The zombie wakes up late: its Release is a counted no-op, and the slot
	// is already on its way to a new holder.
	l.Release()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	err = rt.With(ctx, func(fresh *nbr.Lease) error {
		fresh.SetDeadline(time.Time{}) // this holder is healthy; opt out
		if !set.Contains(fresh, 1) {
			return fmt.Errorf("recovered slot lost the wedged holder's writes")
		}
		return nil
	})
	check(err)
	check(rt.Drain())
	fmt.Printf("recovered: %d reap, %d zombie release (counted no-op), slot reusable, drained clean\n",
		rt.ReapedLeases(), rt.RevokedReleases())
}

func check(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "oversubscribe: %v\n", err)
		os.Exit(1)
	}
}
