// Oversubscribe demonstrates the paper's P4 (consistency) property: when
// the system runs many more threads than cores, schemes that depend on
// every thread making progress (epoch-based) suffer from delayed threads,
// while NBR+ keeps reclaiming by neutralizing laggards. The example drives
// the benchmark harness directly at 8× oversubscription and prints the
// throughput and garbage of each scheme side by side.
//
// Run with: go run ./examples/oversubscribe
package main

import (
	"fmt"
	"runtime"
	"time"

	"nbr/internal/bench"
)

func main() {
	threads := 8 * runtime.GOMAXPROCS(0)
	fmt.Printf("DGT tree, 50%%i-50%%d, key range 100k, %d goroutines on %d core(s)\n\n",
		threads, runtime.GOMAXPROCS(0))
	fmt.Printf("%-8s %10s %12s %12s %12s\n", "scheme", "Mops/s", "garbage", "signals", "p99 lat")

	for _, scheme := range []string{"none", "debra", "hp", "nbr+"} {
		r, err := bench.Run(bench.Workload{
			DS:       "dgt",
			Scheme:   scheme,
			Threads:  threads,
			KeyRange: 100_000,
			InsPct:   50,
			DelPct:   50,
			Duration: 600 * time.Millisecond,
			Prefill:  -1,
			Cfg:      bench.DefaultSchemeConfig(),
		})
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-8s %10.3f %12d %12d %12v\n",
			scheme, r.Mops, r.Stats.Garbage(), r.Stats.Signals, r.LatP99)
	}
	fmt.Println("\ngarbage = retired records not yet returned to the allocator at exit;")
	fmt.Println("the leaky baseline never frees, the epoch schemes depend on laggards,")
	fmt.Println("NBR+ stays bounded because stalled readers are neutralized.")
}
