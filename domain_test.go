package nbr_test

import (
	"errors"
	"runtime"
	"sync"
	"testing"

	"nbr"
)

// TestDomainLifecycle exercises the public API end to end for every
// structure × scheme cell the applicability matrix admits: lease churn with
// more goroutines than slots, operations through leases, drain to
// Retired == Freed, and validation.
func TestDomainLifecycle(t *testing.T) {
	for _, structure := range []string{"lazylist", "harris", "dgt"} {
		for _, scheme := range []string{"nbr+", "nbr", "hp", "debra"} {
			t.Run(structure+"/"+scheme, func(t *testing.T) {
				d, err := nbr.New(nbr.Options{
					Structure:  structure,
					Scheme:     scheme,
					MaxThreads: 6,
					BagSize:    128,
					Threshold:  48,
				})
				if err != nil {
					if scheme == "hp" { // Table 1 rejects some HP cells
						t.Skip(err)
					}
					t.Fatal(err)
				}
				var wg sync.WaitGroup
				for w := 0; w < 10; w++ {
					wg.Add(1)
					go func(w int) {
						defer wg.Done()
						for s := 0; s < 6; s++ {
							l, err := d.Acquire()
							if errors.Is(err, nbr.ErrNoLease) {
								runtime.Gosched()
								s--
								continue
							}
							if err != nil {
								t.Error(err)
								return
							}
							for i := 0; i < 50; i++ {
								key := uint64(w*50+i)%96 + 1
								l.Insert(key)
								if i%2 == 0 {
									l.Delete(key)
								}
							}
							l.Release()
						}
					}(w)
				}
				wg.Wait()
				if err := d.Drain(); err != nil {
					t.Fatal(err)
				}
				st := d.Stats()
				if scheme != "none" && st.Retired != st.Freed {
					t.Fatalf("leaked records: retired %d != freed %d", st.Retired, st.Freed)
				}
				if b := d.GarbageBound(); b != nbr.Unbounded && st.Garbage() > uint64(b) {
					t.Fatalf("garbage %d exceeds declared bound %d", st.Garbage(), b)
				}
				if err := d.Validate(); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestDomainRejectsTable1Violations pins the public constructor to the
// paper's applicability matrix.
func TestDomainRejectsTable1Violations(t *testing.T) {
	if _, err := nbr.New(nbr.Options{Structure: "hmlist-norestart", Scheme: "nbr+"}); err == nil {
		t.Fatal("hmlist-norestart under NBR must be rejected (Requirement 12)")
	}
	if _, err := nbr.New(nbr.Options{Structure: "abtree", Scheme: "hp"}); err == nil {
		t.Fatal("abtree under HP must be rejected (no reachability validation)")
	}
}

// TestDomainLeaseExhaustion pins the full-registry behaviour: MaxThreads
// concurrent holders, the next Acquire fails with ErrNoLease, and a release
// makes a slot available again.
func TestDomainLeaseExhaustion(t *testing.T) {
	d, err := nbr.New(nbr.Options{MaxThreads: 8})
	if err != nil {
		t.Fatal(err)
	}
	leases := make([]*nbr.Lease, 0, 8)
	for i := 0; i < 8; i++ {
		l, err := d.Acquire()
		if err != nil {
			t.Fatal(err)
		}
		leases = append(leases, l)
	}
	if _, err := d.Acquire(); !errors.Is(err, nbr.ErrNoLease) {
		t.Fatalf("9th acquire: got %v, want ErrNoLease", err)
	}
	leases[3].Release()
	l, err := d.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	l.Release()
	for _, l := range leases[:3] {
		l.Release()
	}
	for _, l := range leases[4:] {
		l.Release()
	}
}
