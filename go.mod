module nbr

go 1.24
