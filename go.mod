// Dependency-free by construction: the build environment has no module
// proxy, so cmd/nbrvet's analysis stack (internal/analysis/framework,
// .../atest) is a stdlib-only mirror of golang.org/x/tools/go/analysis,
// go/packages, and analysistest instead of a pinned x/tools requirement.
// The mirror keeps the x/tools surface (Analyzer/Pass/Diagnostic, facts,
// want-comment corpora) so a future change with network access can add
//
//	require golang.org/x/tools vX.Y.Z
//
// swap the import paths, and delete the mirror mechanically. DESIGN.md §13.
module nbr

go 1.24
