package he_test

import (
	"testing"

	"nbr/internal/mem"
	"nbr/internal/smr/he"
)

type rec struct{ v uint64 }

func setup(threads int, cfg he.Config) (*mem.Pool[rec], *he.Scheme) {
	pool := mem.NewPool[rec](mem.Config{MaxThreads: threads})
	return pool, he.New(pool, threads, cfg)
}

func alloc(pool *mem.Pool[rec], s *he.Scheme, tid int) mem.Ptr {
	h, _ := pool.Alloc(tid)
	s.Guard(tid).OnAlloc(h)
	return h
}

func TestAnnouncedEraBlocksLifetime(t *testing.T) {
	pool, s := setup(2, he.Config{Threshold: 8, EraFreq: 1})
	g0, g1 := s.Guard(0), s.Guard(1)

	target := alloc(pool, s, 0)
	g1.BeginOp()
	g1.Protect(0, target) // announces the current era, inside target's lifetime
	g0.Retire(target)
	for i := 0; i < 32; i++ {
		g0.Retire(alloc(pool, s, 0))
	}
	if !pool.Valid(target) {
		t.Fatal("record whose lifetime contains an announced era was freed")
	}
	g1.EndOp() // clears the era slots
	for i := 0; i < 32; i++ {
		g0.Retire(alloc(pool, s, 0))
	}
	if pool.Valid(target) {
		t.Fatal("record not freed after the era announcement cleared")
	}
}

func TestEraOutsideLifetimeDoesNotBlock(t *testing.T) {
	pool, s := setup(2, he.Config{Threshold: 8, EraFreq: 1})
	g0, g1 := s.Guard(0), s.Guard(1)

	g1.BeginOp()
	old := alloc(pool, s, 0)
	g1.Protect(0, old) // era announced now

	// Let eras advance, then create and retire a young record whose whole
	// lifetime is after the announcement.
	for i := 0; i < 16; i++ {
		pool.Free(0, alloc(pool, s, 0))
	}
	young := alloc(pool, s, 0)
	g0.Retire(young)
	for i := 0; i < 32; i++ {
		g0.Retire(alloc(pool, s, 0))
	}
	if pool.Valid(young) {
		t.Fatal("young record blocked by an older era announcement")
	}
	g1.EndOp()
	_ = old
}

func TestProtectFastPathSkipsStore(t *testing.T) {
	// Re-protecting under an unchanged era must not panic and must keep
	// the announcement (behavioural check of the HE fast path).
	pool, s := setup(2, he.Config{Threshold: 1 << 20, EraFreq: 1 << 20})
	g1 := s.Guard(1)
	h := alloc(pool, s, 0)
	g1.Protect(0, h)
	g1.Protect(0, h)
	g1.Protect(0, h)
	s.Guard(0).Retire(h)
	if !pool.Valid(h) {
		t.Fatal("retire below threshold must not free")
	}
}

func TestSlotOutOfRangePanics(t *testing.T) {
	pool, s := setup(1, he.Config{Slots: 1})
	h, _ := pool.Alloc(0)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range slot must panic")
		}
	}()
	s.Guard(0).Protect(1, h)
}

func TestNameAndValidation(t *testing.T) {
	_, s := setup(1, he.Config{})
	if s.Name() != "he" {
		t.Fatalf("name = %q", s.Name())
	}
	if !s.Guard(0).NeedsValidation() {
		t.Fatal("hazard eras require link validation")
	}
}
