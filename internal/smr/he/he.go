// Package he implements hazard eras (Ramalhete & Correia, SPAA'17), included
// as an extension beyond the paper's benchmark set. It keeps hazard
// pointers' per-slot announcements but announces the current *era* instead
// of a record address, combining HP-style bounded garbage with cheaper
// protection upgrades: re-protecting a record whose era has not moved is
// free. Records carry birth/retire eras in the allocator header; a retired
// record is freed once no announced era falls inside its lifetime.
package he

import (
	"sync"

	"nbr/internal/mem"
	"nbr/internal/smr"
)

// Config tunes the scheme.
type Config struct {
	// Slots is the number of era slots per thread. Default 8.
	Slots int
	// EraFreq advances the era every EraFreq allocations+retirements per
	// thread. Default 128.
	EraFreq int
	// Threshold is the per-thread bag size that triggers a sweep. Default
	// max(64, 2·N·Slots).
	Threshold int
}

func (c Config) withDefaults(threads int) Config {
	if c.Slots <= 0 {
		c.Slots = 8
	}
	if c.EraFreq <= 0 {
		c.EraFreq = 128
	}
	if c.Threshold <= 0 {
		c.Threshold = 2 * threads * c.Slots
		if c.Threshold < 64 {
			c.Threshold = 64
		}
	}
	return c
}

// Scheme is a hazard-eras instance.
type Scheme struct {
	arena mem.Arena
	cfg   Config
	era   smr.Pad64
	slots []smr.Pad64 // N*K era announcements; 0 = none
	// orphanPeak is the high-water mark of the registry orphan list while
	// this scheme fed it: orphaned records are era-pinned survivors, so they
	// belong to the pinned-set term of GarbageBound.
	orphanPeak smr.Watermark
	gs         []*guard
	smr.Membership

	// seg is the segment-retirement state: the arena's segment interface and
	// the largest retired segment weight, which scales the declared bound.
	seg smr.SegState

	// forceEras is the ForceRound collection scratch, serialized by forceMu.
	forceMu   sync.Mutex
	forceEras []uint64
}

// New creates a hazard-eras scheme for the given arena and thread count.
func New(arena mem.Arena, threads int, cfg Config) *Scheme {
	s := &Scheme{arena: arena, cfg: cfg.withDefaults(threads)}
	s.seg.Init(arena)
	s.InitFixed(threads)
	s.era.Store(1)
	s.slots = make([]smr.Pad64, threads*s.cfg.Slots)
	s.gs = make([]*guard, threads)
	for i := range s.gs {
		s.gs[i] = &guard{s: s, tid: i, hiSlot: -1}
	}
	return s
}

// Name implements smr.Scheme.
func (s *Scheme) Name() string { return "he" }

// Guard implements smr.Scheme.
func (s *Scheme) Guard(tid int) smr.Guard { return s.gs[tid] }

// Stats implements smr.Scheme.
func (s *Scheme) Stats() smr.Stats {
	var st smr.Stats
	for _, g := range s.gs {
		st.Retired += g.retired.Load()
		g.batches.AddTo(&st.BatchHist)
		st.Freed += g.freed.Load()
		st.Scans += g.scans.Load()
		st.Advances += g.advances.Load()
		st.Segments += g.segments.Load()
		st.SegRecords += g.segRecords.Load()
	}
	return st
}

// GarbageBound implements smr.Scheme as the exact pinned-set bound. Garbage
// splits into two parts:
//
//   - buffered records: each thread's bag sweeps at the threshold, and a
//     sweep pass can transiently hold one adopted-orphan batch on top —
//     ≤ 2·Threshold+2 per thread, a static term;
//   - pinned records: sweep survivors are exactly the records whose
//     lifetime contains an announced era. That set is measured, not
//     guessed: every sweep records its survivor count, and the bound
//     carries the high-water mark (plus the orphaned-survivor peak under
//     membership churn).
//
// The old N·EraFreq-per-thread heuristic overcharged quiet runs (nothing
// pinned) and was never honest under a stalled announcement (whose pinned
// set is bounded by records alive at the stalled era, not by EraFreq); the
// measured pinned-set term is tight in the first case and adapts exactly in
// the second. Monotone by construction (watermarks only rise), as
// smr.Scheme requires.
func (s *Scheme) GarbageBound() int {
	n := len(s.gs)
	// The threshold term is measured in record weight (a segment handle
	// counts its member run), so it needs no scaling; the transient
	// adopted-orphan batch is counted in entries, each worth up to segW
	// records. segW is 1 until the first RetireSegment lands and monotone
	// afterwards, so the formula collapses to the pre-segment bound exactly
	// and keeps the monotonicity contract (pinned and orphan terms are
	// weighted watermarks).
	segW := s.seg.MaxWeight()
	if segW < 1 {
		segW = 1
	}
	bound := n * (s.cfg.Threshold + (s.cfg.Threshold+2)*segW)
	for _, g := range s.gs {
		bound += int(g.pinnedPeak.Load())
	}
	return bound + int(s.orphanPeak.Load())
}

// ReclaimBurst implements smr.Scheme: a sweep frees at most one full bag.
func (s *Scheme) ReclaimBurst() int { return s.cfg.Threshold }

// AttachRegistry implements smr.Member: adopt the registry's active mask for
// era scans and register the lease hooks. Must run before guards are used.
func (s *Scheme) AttachRegistry(r *smr.Registry) {
	s.Join(r, len(s.gs), "he", s.attachThread)
}

// attachThread clears slot tid's era announcements for a new leaseholder.
func (s *Scheme) attachThread(tid int) {
	for i := 0; i < s.cfg.Slots; i++ {
		s.slot(tid, i).Store(0)
	}
	s.gs[tid].hiSlot = -1
}

// ReclaimAll implements smr.Quiescer: adopt previously orphaned records and
// sweep everything once. Part of the shared recovery path; runs after the
// slot left the active mask.
func (s *Scheme) ReclaimAll(tid int) {
	g := s.gs[tid]
	g.adopt(0)
	if len(g.bag) > 0 {
		g.sweep()
	}
}

// OrphanSurvivors implements smr.Quiescer: orphan the era-pinned survivors,
// raising the measured-bound watermark the orphan list contributes to.
func (s *Scheme) OrphanSurvivors(tid int) {
	g := s.gs[tid]
	if len(g.bag) > 0 {
		s.Reg.AddOrphans(g.bag)
		// Each orphan entry can be a segment handle worth up to segW member
		// records; the peak is raised at every add, so between adds the list
		// only shrinks (adoption) and the watermark stays a sound weight
		// ceiling.
		w := s.Reg.OrphanCount()
		if segW := s.seg.MaxWeight(); segW > 1 {
			w *= segW
		}
		s.orphanPeak.Raise(uint64(w))
		g.bag = g.bag[:0]
		g.bagW = 0
	}
}

// ResetSlot implements smr.Quiescer: clear tid's era announcements.
func (s *Scheme) ResetSlot(tid int) { s.attachThread(tid) }

// ForceRound implements smr.RoundForcer: one bracketed era collection over
// the active mask — sweep's announcement snapshot without the lifetime
// checks — advancing the registry's quarantine clock on demand.
func (s *Scheme) ForceRound() bool {
	s.forceMu.Lock()
	defer s.forceMu.Unlock()
	return s.Membership.ForceRound(func() {
		s.forceEras = s.forceEras[:0]
		s.ActiveMask.Range(func(tid int) {
			for i := 0; i < s.cfg.Slots; i++ {
				if v := s.slot(tid, i).Load(); v != 0 {
					s.forceEras = append(s.forceEras, v)
				}
			}
		})
	})
}

// Drain implements smr.Drainer: adopt all orphans and sweep on behalf of tid.
func (s *Scheme) Drain(tid int) {
	g := s.gs[tid]
	g.adopt(0)
	if len(g.bag) > 0 {
		g.sweep()
	}
}

func (s *Scheme) slot(tid, i int) *smr.Pad64 { return &s.slots[tid*s.cfg.Slots+i] }

type guard struct {
	s      *Scheme
	tid    int
	hiSlot int
	bag    []mem.Ptr
	events int
	eras   []uint64 // sweep scratch

	// bagW is the bag's record weight: len(bag) until a segment handle
	// lands, after which each handle counts its member run. The sweep
	// threshold compares against bagW so the bound counts every member.
	bagW int

	// pinnedPeak is the largest survivor weight any sweep of this guard
	// kept: the measured pinned-set term of GarbageBound.
	pinnedPeak smr.Watermark

	retired    smr.Counter
	batches    smr.BatchHist
	freed      smr.Counter
	scans      smr.Counter
	advances   smr.Counter
	segments   smr.Counter // segment handles bagged (RetireSegment pieces)
	segRecords smr.Counter // member records those handles stood for
}

func (g *guard) Tid() int { return g.tid }

func (g *guard) BeginOp() {}

// EndOp clears every era announcement the operation made.
func (g *guard) EndOp() {
	for i := 0; i <= g.hiSlot; i++ {
		g.s.slot(g.tid, i).Store(0)
	}
	g.hiSlot = -1
}

func (g *guard) BeginRead()           {}
func (g *guard) Reserve(int, mem.Ptr) {}
func (g *guard) EndRead()             {}

// Protect announces the current era in the slot (only when it moved — the
// hazard-eras fast path) and requires link validation like HP.
func (g *guard) Protect(slot int, _ mem.Ptr) {
	if slot >= g.s.cfg.Slots {
		panic("he: slot out of range")
	}
	if slot > g.hiSlot {
		g.hiSlot = slot
	}
	e := g.s.era.Load()
	sl := g.s.slot(g.tid, slot)
	if sl.Load() != e {
		sl.Store(e)
	}
}

func (g *guard) NeedsValidation() bool { return true }

// OnAlloc stamps the record's birth era.
func (g *guard) OnAlloc(p mem.Ptr) {
	g.s.arena.Hdr(p).SetBirth(g.s.era.Load())
	g.tick()
}

func (g *guard) OnStale(p mem.Ptr) {
	panic("he: use-after-free detected (validation raced a free): " + p.String())
}

// Retire stamps the record's retire era and sweeps when the bag is full.
func (g *guard) Retire(p mem.Ptr) {
	p = p.Unmarked()
	g.s.arena.Hdr(p).SetRetire(g.s.era.Load())
	g.bag = append(g.bag, p)
	g.bagW++
	g.retired.Inc()
	g.batches.Record(1)
	g.tick()
	if g.bagW >= g.s.cfg.Threshold {
		g.sweep()
	}
}

// RetireBatch implements smr.Guard: the batch lands in the bag in chunks
// that fill it exactly to the sweep threshold — one era load stamps each
// chunk (read after every record in the batch was unlinked, so no stamp is
// older than a single-record Retire would have written), the event clock
// ticks once per chunk, and the sweep triggers at exactly the bag lengths a
// per-record Retire loop would hit, so one oversized splice can never
// stretch the bag beyond the threshold plus its era-pinned survivors.
func (g *guard) RetireBatch(ps []mem.Ptr) {
	if len(ps) == 0 {
		return
	}
	g.batches.Record(len(ps))
	for len(ps) > 0 {
		take := smr.RetireChunk(g.s.cfg.Threshold, g.bagW, len(ps))
		e := g.s.era.Load()
		for _, p := range ps[:take] {
			p = p.Unmarked()
			g.s.arena.Hdr(p).SetRetire(e)
			g.bag = append(g.bag, p)
		}
		g.bagW += take
		g.retired.Add(uint64(take))
		g.tickN(take)
		ps = ps[take:]
		if g.bagW >= g.s.cfg.Threshold {
			g.sweep()
		}
	}
}

// RetireSegment implements smr.Guard: the handle lands in the bag as a
// single entry standing for its whole member run, and — the era schemes'
// whole win — exactly one birth/retire stamp covers all K members, instead
// of the per-record header writes RetireBatch pays. The lifetime interval of
// the handle is the run's: readers protecting any member hold an era inside
// it, so the sweep's intersection check pins the whole segment or frees the
// whole segment. The sweep threshold runs against the bag's record weight;
// an oversized segment is split at the threshold via CarveSegment, each
// carved piece inheriting the original birth era (the piece stands for
// members allocated then). A handle that is not a live segment degrades to
// Retire.
func (g *guard) RetireSegment(p mem.Ptr) {
	sa := g.s.seg.Arena()
	if mem.SegWeight(sa, p) <= 1 {
		g.Retire(p)
		return
	}
	p = p.Unmarked()
	g.batches.Record(sa.SegmentWeight(p))
	birth := g.s.arena.Hdr(p).Birth()
	for p != mem.Null {
		w := sa.SegmentWeight(p)
		take := smr.SegChunk(g.s.cfg.Threshold, w)
		q := p
		if take < w {
			q, p = sa.CarveSegment(g.tid, p, take)
			if p == mem.Null { // carve covered the whole run after all
				take = w
			}
		} else {
			take, p = w, mem.Null
		}
		hdr := g.s.arena.Hdr(q)
		hdr.SetBirth(birth)
		hdr.SetRetire(g.s.era.Load())
		// Note before bagging: a concurrent GarbageBound reader must never
		// see segment garbage under a pre-segment (or lighter) bound.
		g.s.seg.Note(take)
		g.bag = append(g.bag, q)
		g.bagW += take
		g.retired.Add(uint64(take))
		g.segments.Inc()
		g.segRecords.Add(uint64(take))
		g.tickN(take)
		if g.bagW >= g.s.cfg.Threshold {
			g.sweep()
		}
	}
}

func (g *guard) tick() { g.tickN(1) }

// tickN advances the event clock by n, advancing the era exactly as n
// single-event ticks would.
func (g *guard) tickN(n int) {
	g.events += n
	for g.events >= g.s.cfg.EraFreq {
		g.events -= g.s.cfg.EraFreq
		g.s.era.Add(1)
		g.advances.Inc()
	}
}

// sweep frees every record whose lifetime contains no announced era,
// walking only active threads' era announcements. Orphaned records are
// adopted first so departed threads' garbage rides the same sweep; the
// survivor count feeds the pinned-set term of GarbageBound.
func (g *guard) sweep() {
	g.adopt(g.s.cfg.Threshold)
	g.scans.Inc()
	if r := g.s.Reg; r != nil {
		r.BeginScan()
		defer r.EndScan()
	}
	g.eras = g.eras[:0]
	width := g.s.cfg.Slots
	g.s.ActiveMask.Range(func(tid int) {
		for i := 0; i < width; i++ {
			if v := g.s.slot(tid, i).Load(); v != 0 {
				g.eras = append(g.eras, v)
			}
		}
	})
	kept, keptW := g.bag[:0], 0
	for _, p := range g.bag {
		hdr := g.s.arena.Hdr(p)
		birth, retire := hdr.Birth(), hdr.Retire()
		conflict := false
		for _, e := range g.eras {
			if e >= birth && e <= retire {
				conflict = true
				break
			}
		}
		// Weigh before a potential Free: freeing a segment handle removes it
		// from the arena's directory.
		w := g.s.seg.Weigh(p)
		if conflict {
			kept = append(kept, p)
			keptW += w
		} else {
			g.s.arena.Free(g.tid, p)
			g.freed.Add(uint64(w))
		}
	}
	g.bag = kept
	g.bagW = keptW
	// Recorded after the frees so a concurrent sampler can never read the
	// lowered garbage before the raised bound (GarbageBound is monotone, so
	// the reverse interleaving is harmless).
	g.pinnedPeak.Raise(uint64(keptW))
}

// adopt pulls up to max (all when max <= 0) orphaned records into the bag.
// Their birth/retire stamps were written when they were first retired, so
// the usual lifetime check applies unchanged.
func (g *guard) adopt(max int) {
	n := len(g.bag)
	g.bag = g.s.Adopt(g.bag, max)
	g.bagW += g.s.seg.WeighAll(g.bag[n:])
}
