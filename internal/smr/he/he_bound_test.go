package he_test

import (
	"testing"

	"nbr/internal/smr/he"
)

// TestBoundTightWithoutPinning pins the exact pinned-set declaration: with
// no announcements pinning anything, the bound is the static buffered term
// alone — no N·EraFreq era slack inflating it (the PR-3 heuristic this
// replaced charged n·n·EraFreq on top). The churn matters: because the
// measured term grows with actual sweep survivors, this test is also the
// guard against a self-certifying bound — a sweep that wrongly keeps
// freeable records would raise pinnedPeak, push the bound above the static
// term, and fail here instead of silently blessing the leak.
func TestBoundTightWithoutPinning(t *testing.T) {
	const threads, threshold = 4, 32
	pool, s := setup(threads, he.Config{Threshold: threshold, EraFreq: 1})
	want := threads * (2*threshold + 2)
	if got := s.GarbageBound(); got != want {
		t.Fatalf("unpinned bound = %d, want static buffered term %d", got, want)
	}
	g := s.Guard(0)
	for i := 0; i < 10*threshold; i++ {
		g.Retire(alloc(pool, s, 0))
	}
	if got := s.GarbageBound(); got != want {
		t.Fatalf("bound moved to %d under unpinned churn (a sweep kept freeable records), want %d", got, want)
	}
	if garbage := s.Stats().Garbage(); garbage >= uint64(threshold) {
		t.Fatalf("unpinned churn left %d unreclaimed records", garbage)
	}
}

// TestBoundTracksPinnedSet pins the dynamic half: a stalled announcement
// makes sweeps keep records, and the declared bound must grow with the
// measured survivor set — and never be outrun by it (the contract the
// harness samples).
func TestBoundTracksPinnedSet(t *testing.T) {
	const threads, threshold = 2, 16
	pool, s := setup(threads, he.Config{Threshold: threshold, EraFreq: 1})
	g0, g1 := s.Guard(0), s.Guard(1)

	static := s.GarbageBound()

	// g1 stalls with an announced era: records whose lifetime contains it
	// (those born at or before the announcement) survive every sweep, so
	// the measured pinned set becomes non-empty and the bound must grow to
	// carry it.
	anchor := alloc(pool, s, 1)
	g1.BeginOp()
	g1.Protect(0, anchor)

	const churn = 10 * threshold
	for i := 0; i < churn; i++ {
		g0.Retire(alloc(pool, s, 0))
		st := s.Stats()
		if bound := s.GarbageBound(); uint64(bound) < st.Garbage() {
			t.Fatalf("retire %d: garbage %d outran the pinned-set bound %d", i, st.Garbage(), bound)
		}
	}
	grown := s.GarbageBound()
	if grown <= static {
		t.Fatalf("bound did not grow with the pinned set: %d → %d", static, grown)
	}

	// Bound monotonicity across unpinning: the announcement clears, sweeps
	// free the backlog, and the bound must not decrease (the watermark
	// contract that lets samplers read garbage before bound).
	g1.EndOp()
	for i := 0; i < 2*threshold; i++ {
		g0.Retire(alloc(pool, s, 0))
	}
	if after := s.GarbageBound(); after < grown {
		t.Fatalf("bound decreased %d → %d; GarbageBound must be monotone", grown, after)
	}
	st := s.Stats()
	if st.Garbage() > uint64(threshold)+1 {
		t.Fatalf("backlog not reclaimed after unpinning: garbage %d", st.Garbage())
	}
}
