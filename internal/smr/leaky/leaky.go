// Package leaky implements the paper's "none" baseline: retire is a no-op
// and records are never freed. It has the lowest per-operation overhead of
// any scheme and unbounded memory growth, providing the throughput ceiling
// and the memory-usage worst case in every experiment.
package leaky

import (
	"nbr/internal/mem"
	"nbr/internal/smr"
)

// Scheme is the leaky (no reclamation) scheme.
type Scheme struct {
	gs []*guard

	// seg resolves segment handles so RetireSegment can account the member
	// records a leaked segment stands for; the records still leak.
	seg smr.SegState
}

// New creates a leaky scheme for the given number of threads. The arena is
// only consulted to weigh retired segment handles; nothing is ever freed.
func New(arena mem.Arena, threads int) *Scheme {
	s := &Scheme{gs: make([]*guard, threads)}
	s.seg.Init(arena)
	for i := range s.gs {
		s.gs[i] = &guard{s: s, tid: i}
	}
	return s
}

// Name implements smr.Scheme.
func (s *Scheme) Name() string { return "none" }

// Guard implements smr.Scheme.
func (s *Scheme) Guard(tid int) smr.Guard { return s.gs[tid] }

// Stats implements smr.Scheme.
func (s *Scheme) Stats() smr.Stats {
	var st smr.Stats
	for _, g := range s.gs {
		st.Retired += g.retired.Load()
		g.batches.AddTo(&st.BatchHist)
		st.Segments += g.segments.Load()
		st.SegRecords += g.segRecords.Load()
	}
	return st
}

// GarbageBound implements smr.Scheme: leaky never frees, so garbage is
// unbounded by construction (the memory-usage worst case in every figure).
func (s *Scheme) GarbageBound() int { return smr.Unbounded }

// ReclaimBurst implements smr.Scheme: leaky never frees, so there is no
// burst to size caches for.
func (s *Scheme) ReclaimBurst() int { return 0 }

// AttachRegistry implements smr.Member: leaky holds no per-thread
// reclamation state, so membership churn needs no hooks — retired records
// are dropped on the floor whether or not the retiring thread stays.
func (s *Scheme) AttachRegistry(*smr.Registry) {}

// Drain implements smr.Drainer as a no-op: there is nothing to reclaim.
func (s *Scheme) Drain(int) {}

type guard struct {
	s          *Scheme
	tid        int
	retired    smr.Counter
	batches    smr.BatchHist
	segments   smr.Counter // segment handles dropped (RetireSegment calls)
	segRecords smr.Counter // member records those handles stood for
}

func (g *guard) Tid() int              { return g.tid }
func (g *guard) BeginOp()              {}
func (g *guard) EndOp()                {}
func (g *guard) BeginRead()            {}
func (g *guard) Reserve(int, mem.Ptr)  {}
func (g *guard) EndRead()              {}
func (g *guard) Protect(int, mem.Ptr)  {}
func (g *guard) NeedsValidation() bool { return false }
func (g *guard) OnAlloc(mem.Ptr)       {}
func (g *guard) Retire(mem.Ptr)        { g.retired.Inc(); g.batches.Record(1) }
func (g *guard) RetireBatch(ps []mem.Ptr) {
	if len(ps) == 0 {
		return
	}
	g.retired.Add(uint64(len(ps)))
	g.batches.Record(len(ps))
}
// RetireSegment implements smr.Guard: count the member records the handle
// stands for, then drop it on the floor like every other retire.
func (g *guard) RetireSegment(p mem.Ptr) {
	w := mem.SegWeight(g.s.seg.Arena(), p)
	if w <= 1 {
		g.Retire(p)
		return
	}
	g.s.seg.Note(w)
	g.retired.Add(uint64(w))
	g.batches.Record(w)
	g.segments.Inc()
	g.segRecords.Add(uint64(w))
}

func (g *guard) OnStale(p mem.Ptr) {
	panic("leaky: use-after-free detected (impossible: leaky never frees): " + p.String())
}
