// Package leaky implements the paper's "none" baseline: retire is a no-op
// and records are never freed. It has the lowest per-operation overhead of
// any scheme and unbounded memory growth, providing the throughput ceiling
// and the memory-usage worst case in every experiment.
package leaky

import (
	"nbr/internal/mem"
	"nbr/internal/smr"
)

// Scheme is the leaky (no reclamation) scheme.
type Scheme struct {
	gs []*guard
}

// New creates a leaky scheme for the given number of threads. The arena is
// accepted for interface uniformity and never used.
func New(_ mem.Arena, threads int) *Scheme {
	s := &Scheme{gs: make([]*guard, threads)}
	for i := range s.gs {
		s.gs[i] = &guard{tid: i}
	}
	return s
}

// Name implements smr.Scheme.
func (s *Scheme) Name() string { return "none" }

// Guard implements smr.Scheme.
func (s *Scheme) Guard(tid int) smr.Guard { return s.gs[tid] }

// Stats implements smr.Scheme.
func (s *Scheme) Stats() smr.Stats {
	var st smr.Stats
	for _, g := range s.gs {
		st.Retired += g.retired.Load()
		g.batches.AddTo(&st.BatchHist)
	}
	return st
}

// GarbageBound implements smr.Scheme: leaky never frees, so garbage is
// unbounded by construction (the memory-usage worst case in every figure).
func (s *Scheme) GarbageBound() int { return smr.Unbounded }

// ReclaimBurst implements smr.Scheme: leaky never frees, so there is no
// burst to size caches for.
func (s *Scheme) ReclaimBurst() int { return 0 }

// AttachRegistry implements smr.Member: leaky holds no per-thread
// reclamation state, so membership churn needs no hooks — retired records
// are dropped on the floor whether or not the retiring thread stays.
func (s *Scheme) AttachRegistry(*smr.Registry) {}

// Drain implements smr.Drainer as a no-op: there is nothing to reclaim.
func (s *Scheme) Drain(int) {}

type guard struct {
	tid     int
	retired smr.Counter
	batches smr.BatchHist
}

func (g *guard) Tid() int              { return g.tid }
func (g *guard) BeginOp()              {}
func (g *guard) EndOp()                {}
func (g *guard) BeginRead()            {}
func (g *guard) Reserve(int, mem.Ptr)  {}
func (g *guard) EndRead()              {}
func (g *guard) Protect(int, mem.Ptr)  {}
func (g *guard) NeedsValidation() bool { return false }
func (g *guard) OnAlloc(mem.Ptr)       {}
func (g *guard) Retire(mem.Ptr)        { g.retired.Inc(); g.batches.Record(1) }
func (g *guard) RetireBatch(ps []mem.Ptr) {
	if len(ps) == 0 {
		return
	}
	g.retired.Add(uint64(len(ps)))
	g.batches.Record(len(ps))
}
func (g *guard) OnStale(p mem.Ptr) {
	panic("leaky: use-after-free detected (impossible: leaky never frees): " + p.String())
}
