package leaky_test

import (
	"testing"

	"nbr/internal/mem"
	"nbr/internal/smr/leaky"
)

type rec struct{ v uint64 }

func TestRetireNeverFrees(t *testing.T) {
	pool := mem.NewPool[rec](mem.Config{MaxThreads: 1})
	s := leaky.New(pool, 1)
	g := s.Guard(0)
	var hs []mem.Ptr
	for i := 0; i < 1000; i++ {
		h, _ := pool.Alloc(0)
		g.Retire(h)
		hs = append(hs, h)
	}
	for _, h := range hs {
		if !pool.Valid(h) {
			t.Fatal("leaky freed a record")
		}
	}
	st := s.Stats()
	if st.Retired != 1000 || st.Freed != 0 || st.Garbage() != 1000 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestGuardIsPerThread(t *testing.T) {
	pool := mem.NewPool[rec](mem.Config{MaxThreads: 3})
	s := leaky.New(pool, 3)
	for tid := 0; tid < 3; tid++ {
		if got := s.Guard(tid).Tid(); got != tid {
			t.Fatalf("guard %d reports tid %d", tid, got)
		}
	}
	if s.Guard(1) != s.Guard(1) {
		t.Fatal("Guard must be idempotent per tid")
	}
}

func TestNoValidationNeeded(t *testing.T) {
	pool := mem.NewPool[rec](mem.Config{MaxThreads: 1})
	s := leaky.New(pool, 1)
	g := s.Guard(0)
	if g.NeedsValidation() {
		t.Fatal("leaky must not require validation")
	}
	// Phase calls are no-ops but must be callable.
	g.BeginOp()
	g.BeginRead()
	g.Reserve(0, mem.Null)
	g.EndRead()
	g.Protect(0, mem.Null)
	g.OnAlloc(mem.Null)
	g.EndOp()
}

func TestOnStalePanics(t *testing.T) {
	pool := mem.NewPool[rec](mem.Config{MaxThreads: 1})
	s := leaky.New(pool, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("OnStale must panic under leaky")
		}
	}()
	s.Guard(0).OnStale(mem.Null)
}

func TestName(t *testing.T) {
	s := leaky.New(nil, 1)
	if s.Name() != "none" {
		t.Fatalf("name = %q", s.Name())
	}
}
