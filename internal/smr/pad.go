package smr

import "sync/atomic"

// Pad64 is an atomic uint64 padded to a cache line, used for per-thread
// announcement slots (epochs, eras, hazard pointers, reservations) so that
// single-writer announcements never false-share.
type Pad64 struct {
	atomic.Uint64
	_ [56]byte
}

// Counter is a per-guard statistics counter: written by the owning thread,
// read concurrently by Stats aggregation.
type Counter struct {
	v atomic.Uint64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Store(c.v.Load() + 1) } // owner-only writer

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Store(c.v.Load() + n) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }
