package smr

import (
	"math/bits"
	"sync/atomic"
)

// Pad64 is an atomic uint64 padded to a cache line, used for per-thread
// announcement slots (epochs, eras, hazard pointers, reservations) so that
// single-writer announcements never false-share.
type Pad64 struct {
	atomic.Uint64
	_ [56]byte
}

// Counter is a per-guard statistics counter: written by the owning thread,
// read concurrently by Stats aggregation.
type Counter struct {
	v atomic.Uint64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Store(c.v.Load() + 1) } // owner-only writer

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Store(c.v.Load() + n) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Watermark is a monotone atomic maximum: concurrent Raise calls keep the
// largest value ever offered. Era schemes use it for their pinned-set
// accounting — GarbageBound must be monotone non-decreasing (see Scheme), so
// the pinned term is a high-water mark, not the instantaneous pinned count.
type Watermark struct {
	v atomic.Uint64
}

// Raise lifts the watermark to v if v is higher.
func (w *Watermark) Raise(v uint64) {
	for {
		old := w.v.Load()
		if v <= old || w.v.CompareAndSwap(old, v) {
			return
		}
	}
}

// Load returns the current watermark.
func (w *Watermark) Load() uint64 { return w.v.Load() }

// BatchBuckets is the number of power-of-two buckets in the retire
// handoff-size histogram (Stats.BatchHist); the top bucket absorbs any
// batch of 2^(BatchBuckets-1) records or more.
const BatchBuckets = 17

// BatchHist counts a guard's retire handoffs by size: Retire records size 1,
// RetireBatch its batch length. Written only by the owning thread, read
// concurrently by Stats aggregation — the same discipline as Counter. The
// cost sits on the retire path only (one increment per handoff), never on
// the read path.
type BatchHist struct {
	b [BatchBuckets]Counter
}

// Record counts one handoff of n records.
func (h *BatchHist) Record(n int) {
	i := bits.Len(uint(n))
	if i >= BatchBuckets {
		i = BatchBuckets - 1
	}
	h.b[i].Inc()
}

// AddTo folds the histogram into a Stats bucket array.
func (h *BatchHist) AddTo(agg *[BatchBuckets]uint64) {
	for i := range h.b {
		agg[i] += h.b[i].Load()
	}
}
