package qsbr_test

import (
	"testing"

	"nbr/internal/mem"
	"nbr/internal/smr/qsbr"
)

type rec struct{ v uint64 }

func setup(threads, threshold int) (*mem.Pool[rec], *qsbr.Scheme) {
	pool := mem.NewPool[rec](mem.Config{MaxThreads: threads})
	return pool, qsbr.New(pool, threads, qsbr.Config{Threshold: threshold})
}

// churn retires n fresh records through tid.
func churn(pool *mem.Pool[rec], s *qsbr.Scheme, tid, n int) []mem.Ptr {
	g := s.Guard(tid)
	var hs []mem.Ptr
	for i := 0; i < n; i++ {
		g.BeginOp()
		h, _ := pool.Alloc(tid)
		g.Retire(h)
		hs = append(hs, h)
		g.EndOp()
	}
	return hs
}

func TestReclaimsAfterGracePeriods(t *testing.T) {
	pool, s := setup(2, 8)
	// Both threads keep announcing quiescent states, so epochs advance and
	// old retirements get freed.
	for round := 0; round < 40; round++ {
		churn(pool, s, 0, 4)
		churn(pool, s, 1, 4)
	}
	st := s.Stats()
	if st.Freed == 0 {
		t.Fatalf("no reclamation despite quiescence: %+v", st)
	}
	if st.Advances == 0 {
		t.Fatal("epoch never advanced")
	}
}

func TestStalledThreadBlocksReclamation(t *testing.T) {
	pool, s := setup(2, 8)
	// Thread 1 never announces (begins an op and stalls): QSBR must stop
	// freeing — the unbounded-garbage behaviour E2 demonstrates.
	s.Guard(1).BeginOp() // no EndOp: announcement stays stale
	churn(pool, s, 0, 64)
	before := s.Stats()
	churn(pool, s, 0, 256)
	after := s.Stats()
	if after.Freed != before.Freed {
		t.Fatalf("freed grew from %d to %d despite a stalled peer", before.Freed, after.Freed)
	}
	if after.Garbage() < 256 {
		t.Fatalf("garbage should accumulate, got %d", after.Garbage())
	}
}

func TestRecoveryAfterStall(t *testing.T) {
	pool, s := setup(2, 8)
	s.Guard(1).BeginOp()
	churn(pool, s, 0, 128)
	s.Guard(1).EndOp() // quiesce
	stalled := s.Stats()
	// Both threads must quiesce repeatedly for two grace periods.
	for round := 0; round < 20; round++ {
		churn(pool, s, 0, 4)
		churn(pool, s, 1, 4)
	}
	if after := s.Stats(); after.Freed <= stalled.Freed {
		t.Fatal("no reclamation progress after the stall cleared")
	}
}

func TestFreedRecordsAreActuallyFreed(t *testing.T) {
	pool, s := setup(1, 4)
	hs := churn(pool, s, 0, 64)
	freed := 0
	for _, h := range hs {
		if !pool.Valid(h) {
			freed++
		}
	}
	if uint64(freed) != s.Stats().Freed {
		t.Fatalf("pool says %d freed, stats say %d", freed, s.Stats().Freed)
	}
	if freed == 0 {
		t.Fatal("single-thread QSBR must reclaim")
	}
}

func TestName(t *testing.T) {
	_, s := setup(1, 4)
	if s.Name() != "qsbr" {
		t.Fatalf("name = %q", s.Name())
	}
}
