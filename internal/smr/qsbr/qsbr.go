// Package qsbr implements quiescent-state-based reclamation as adapted from
// the IBR benchmark for the paper's E1 comparison. Threads announce passage
// through a quiescent state at the end of each operation; a record retired
// under epoch e may be freed once every thread has announced an epoch ≥ e+2
// (two full grace periods). Per-operation overhead is a single announcement
// store; garbage is unbounded if any thread stalls inside an operation
// (property P2 is not met — this is what E2 demonstrates).
package qsbr

import (
	"nbr/internal/mem"
	"nbr/internal/smr"
)

// Config tunes the scheme.
type Config struct {
	// Threshold is the per-thread bag size that triggers an epoch-advance
	// attempt and sweep. Default 256.
	Threshold int
}

func (c Config) withDefaults() Config {
	if c.Threshold <= 0 {
		c.Threshold = 256
	}
	return c
}

// Scheme is a QSBR instance.
type Scheme struct {
	arena    mem.Arena
	cfg      Config
	epoch    smr.Pad64
	announce []smr.Pad64
	gs       []*guard
	smr.Membership

	// seg is the segment-retirement state: the arena's segment interface and
	// the largest retired segment weight (weighted accounting only — the
	// scheme's garbage stays unbounded either way).
	seg smr.SegState
}

// New creates a QSBR scheme for the given arena and thread count.
func New(arena mem.Arena, threads int, cfg Config) *Scheme {
	s := &Scheme{arena: arena, cfg: cfg.withDefaults(), announce: make([]smr.Pad64, threads)}
	s.seg.Init(arena)
	s.InitFixed(threads)
	s.epoch.Store(2) // headroom so tag+2 arithmetic never wraps below zero
	s.gs = make([]*guard, threads)
	for i := range s.gs {
		s.gs[i] = &guard{s: s, tid: i}
	}
	return s
}

// Name implements smr.Scheme.
func (s *Scheme) Name() string { return "qsbr" }

// Guard implements smr.Scheme.
func (s *Scheme) Guard(tid int) smr.Guard { return s.gs[tid] }

// Stats implements smr.Scheme.
func (s *Scheme) Stats() smr.Stats {
	var st smr.Stats
	for _, g := range s.gs {
		st.Retired += g.retired.Load()
		g.batches.AddTo(&st.BatchHist)
		st.Freed += g.freed.Load()
		st.Scans += g.scans.Load()
		st.Advances += g.advances.Load()
		st.Segments += g.segments.Load()
		st.SegRecords += g.segRecords.Load()
	}
	return st
}

// GarbageBound implements smr.Scheme: QSBR does not bound garbage — a
// thread stalled inside an operation blocks the grace period and every bag
// grows until it recovers (property P2 is not met).
func (s *Scheme) GarbageBound() int { return smr.Unbounded }

// ReclaimBurst implements smr.Scheme: a sweep frees at most one full bag.
func (s *Scheme) ReclaimBurst() int { return s.cfg.Threshold }

// AttachRegistry implements smr.Member: epoch advance and sweeps consult
// only active threads' announcements — a departed thread must never block a
// grace period — and the lease hooks keep announcements coherent across
// slot reuse. Must run before guards are used.
func (s *Scheme) AttachRegistry(r *smr.Registry) {
	s.Join(r, len(s.gs), "qsbr", s.attachThread)
}

// attachThread announces the current epoch for a new leaseholder, so a
// predecessor's ancient announcement can never stall the epoch the moment
// the slot re-activates.
func (s *Scheme) attachThread(tid int) {
	s.announce[tid].Store(s.epoch.Load())
}

// ReclaimAll implements smr.Quiescer: adopt any orphaned records and make
// one advance-and-sweep attempt. Part of the shared recovery path; runs
// after the slot left the active mask.
func (s *Scheme) ReclaimAll(tid int) {
	g := s.gs[tid]
	g.adopt()
	if len(g.bag) > 0 {
		g.tryAdvance()
		g.sweep()
	}
}

// OrphanSurvivors implements smr.Quiescer: orphan the rest of the bag for
// the next reclaimer (re-tagged at adoption with the adopter's current
// epoch — later than the original tag, so strictly conservative).
func (s *Scheme) OrphanSurvivors(tid int) {
	g := s.gs[tid]
	if len(g.bag) > 0 {
		orphans := make([]mem.Ptr, 0, len(g.bag))
		for _, e := range g.bag {
			orphans = append(orphans, e.p)
		}
		s.Reg.AddOrphans(orphans)
		g.bag = g.bag[:0]
		g.bagW = 0
	}
}

// ResetSlot implements smr.Quiescer: nothing to clear — an inactive slot's
// epoch announcement is ignored by advance/sweep, and attachThread
// re-announces for the next occupant.
func (s *Scheme) ResetSlot(tid int) {}

// ForceRound implements smr.RoundForcer: one bracketed pass over the active
// threads' epoch announcements — sweep's grace-period snapshot without the
// bag walk — advancing the registry's quarantine clock on demand. No scratch
// is kept (the collection reduces to a min), so no serialization is needed.
func (s *Scheme) ForceRound() bool {
	return s.Membership.ForceRound(func() {
		min := ^uint64(0)
		s.ActiveMask.Range(func(i int) {
			if a := s.announce[i].Load(); a < min {
				min = a
			}
		})
		_ = min
	})
}

// Drain implements smr.Drainer: adopt all orphans, then attempt one epoch
// advance and sweep on behalf of tid. At quiescence three consecutive calls
// walk the two grace periods forward and empty the bag.
func (s *Scheme) Drain(tid int) {
	g := s.gs[tid]
	g.adopt()
	s.announce[tid].Store(s.epoch.Load())
	g.tryAdvance()
	g.sweep()
}

type entry struct {
	p   mem.Ptr
	tag uint64
}

type guard struct {
	s          *Scheme
	tid        int
	bag []entry
	// bagW is the bag's record weight: len(bag) until a segment handle
	// lands, after which each handle counts its member run. The sweep
	// threshold compares against bagW so reclamation pressure tracks real
	// garbage.
	bagW       int
	scratch    []mem.Ptr // orphan-adoption buffer, reused
	sinceSweep int

	retired    smr.Counter
	batches    smr.BatchHist
	freed      smr.Counter
	scans      smr.Counter
	advances   smr.Counter
	segments   smr.Counter // segment handles bagged (RetireSegment calls)
	segRecords smr.Counter // member records those handles stood for
}

func (g *guard) Tid() int { return g.tid }

func (g *guard) BeginOp() {}

// EndOp announces a quiescent state: the thread holds no record pointers.
func (g *guard) EndOp() {
	g.s.announce[g.tid].Store(g.s.epoch.Load())
}

func (g *guard) BeginRead()            {}
func (g *guard) Reserve(int, mem.Ptr)  {}
func (g *guard) EndRead()              {}
func (g *guard) Protect(int, mem.Ptr)  {}
func (g *guard) NeedsValidation() bool { return false }
func (g *guard) OnAlloc(mem.Ptr)       {}

func (g *guard) OnStale(p mem.Ptr) {
	panic("qsbr: use-after-free detected: " + p.String())
}

func (g *guard) Retire(p mem.Ptr) {
	g.bag = append(g.bag, entry{p.Unmarked(), g.s.epoch.Load()})
	g.bagW++
	g.retired.Inc()
	g.batches.Record(1)
	g.sinceSweep++
	// Amortize: when the epoch is stuck (a delayed thread), re-scanning on
	// every retire would turn the bag into an O(n) cost per operation; real
	// QSBR implementations retry a grace-period check only periodically.
	if g.bagW >= g.s.cfg.Threshold && g.sinceSweep >= g.s.cfg.Threshold/4 {
		g.sinceSweep = 0
		g.adopt()
		g.tryAdvance()
		g.sweep()
	}
}

// RetireBatch implements smr.Guard: one epoch load tags the whole batch
// (read after every record was unlinked, so no tag is older than a
// per-record loop would have written) and the amortized sweep check runs
// once for the batch.
func (g *guard) RetireBatch(ps []mem.Ptr) {
	if len(ps) == 0 {
		return
	}
	tag := g.s.epoch.Load()
	for _, p := range ps {
		g.bag = append(g.bag, entry{p.Unmarked(), tag})
	}
	g.bagW += len(ps)
	g.retired.Add(uint64(len(ps)))
	g.batches.Record(len(ps))
	g.sinceSweep += len(ps)
	if g.bagW >= g.s.cfg.Threshold && g.sinceSweep >= g.s.cfg.Threshold/4 {
		g.sinceSweep = 0
		g.adopt()
		g.tryAdvance()
		g.sweep()
	}
}

// RetireSegment implements smr.Guard: the handle lands in the bag as a
// single entry standing for its whole member run — one epoch tag covers all
// K members instead of K per-record bag entries. The scheme's garbage is
// unbounded regardless (like RetireBatch, no splitting is needed); the
// weighted bag population keeps the sweep cadence tracking real garbage. A
// handle that is not a live segment degrades to Retire.
func (g *guard) RetireSegment(p mem.Ptr) {
	sa := g.s.seg.Arena()
	w := mem.SegWeight(sa, p)
	if w <= 1 {
		g.Retire(p)
		return
	}
	// Note before bagging so weighted sweeps see the handle's run.
	g.s.seg.Note(w)
	g.bag = append(g.bag, entry{p.Unmarked(), g.s.epoch.Load()})
	g.bagW += w
	g.retired.Add(uint64(w))
	g.batches.Record(w)
	g.segments.Inc()
	g.segRecords.Add(uint64(w))
	g.sinceSweep += w
	if g.bagW >= g.s.cfg.Threshold && g.sinceSweep >= g.s.cfg.Threshold/4 {
		g.sinceSweep = 0
		g.adopt()
		g.tryAdvance()
		g.sweep()
	}
}

// tryAdvance bumps the global epoch if every *active* thread has announced
// the current one. A departed thread's stale announcement must never stall
// grace periods — that is the membership half of dynamic QSBR.
func (g *guard) tryAdvance() {
	e := g.s.epoch.Load()
	behind := false
	g.s.ActiveMask.Range(func(i int) {
		if !behind && g.s.announce[i].Load() < e {
			behind = true
		}
	})
	if behind {
		return
	}
	if g.s.epoch.CompareAndSwap(e, e+1) {
		g.advances.Inc()
	}
}

// sweep frees every bag entry that two grace periods separate from all
// active readers (a thread that activates later starts at the current
// epoch, so it can never resurrect an older tag).
func (g *guard) sweep() {
	g.scans.Inc()
	if r := g.s.Reg; r != nil {
		r.BeginScan()
		defer r.EndScan()
	}
	min := ^uint64(0)
	g.s.ActiveMask.Range(func(i int) {
		if a := g.s.announce[i].Load(); a < min {
			min = a
		}
	})
	kept, keptW := g.bag[:0], 0
	for _, e := range g.bag {
		// Weigh before a potential Free: freeing a segment handle removes
		// it from the arena's directory.
		w := g.s.seg.Weigh(e.p)
		if e.tag+2 <= min {
			g.s.arena.Free(g.tid, e.p)
			g.freed.Add(uint64(w))
		} else {
			kept = append(kept, e)
			keptW += w
		}
	}
	g.bag = kept
	g.bagW = keptW
}

// adopt pulls every orphaned record into the bag, tagged with the current
// epoch — at least as late as the tag its original thread would have used,
// so the two-grace-period rule stays conservative. Adopted records were
// already counted as retired.
func (g *guard) adopt() {
	if !g.s.HasOrphans() {
		return
	}
	if g.scratch == nil {
		g.scratch = make([]mem.Ptr, 0, 64)
	}
	g.scratch = g.s.Adopt(g.scratch[:0], 0)
	tag := g.s.epoch.Load()
	for _, p := range g.scratch {
		g.bag = append(g.bag, entry{p, tag})
	}
	g.bagW += g.s.seg.WeighAll(g.scratch)
	g.scratch = g.scratch[:0]
}
