package smr_test

import (
	"errors"
	"testing"

	"nbr/internal/core"
	"nbr/internal/mem"
	"nbr/internal/sigsim"
	"nbr/internal/smr"
)

type rec struct{ v uint64 }

func newGuard(t *testing.T) smr.Guard {
	t.Helper()
	pool := mem.NewPool[rec](mem.Config{MaxThreads: 2})
	return core.New(pool, 2, core.Config{}).Guard(0)
}

func TestExecuteReturnsBodyValue(t *testing.T) {
	g := newGuard(t)
	got := smr.Execute(g, func() string { return "done" })
	if got != "done" {
		t.Fatalf("got %q", got)
	}
}

func TestExecuteRetriesOnNeutralized(t *testing.T) {
	g := newGuard(t)
	n := 0
	got := smr.Execute(g, func() int {
		n++
		if n < 3 {
			panic(sigsim.Neutralized{})
		}
		return n
	})
	if got != 3 || n != 3 {
		t.Fatalf("got %d after %d attempts", got, n)
	}
}

func TestExecutePropagatesOtherPanics(t *testing.T) {
	g := newGuard(t)
	boom := errors.New("boom")
	defer func() {
		if r := recover(); r != boom {
			t.Fatalf("recovered %v, want boom", r)
		}
	}()
	smr.Execute(g, func() int { panic(boom) })
}

func TestStatsGarbage(t *testing.T) {
	s := smr.Stats{Retired: 10, Freed: 4}
	if s.Garbage() != 6 {
		t.Fatalf("garbage = %d", s.Garbage())
	}
	s = smr.Stats{Retired: 4, Freed: 10} // racy snapshot: clamp, don't wrap
	if s.Garbage() != 0 {
		t.Fatalf("garbage = %d", s.Garbage())
	}
}

func TestCounterOwnerIncrement(t *testing.T) {
	var c smr.Counter
	for i := 0; i < 100; i++ {
		c.Inc()
	}
	c.Add(11)
	if c.Load() != 111 {
		t.Fatalf("counter = %d", c.Load())
	}
}
