package smr

import (
	"errors"
	"sync"
	"sync/atomic"

	"nbr/internal/mem"
	"nbr/internal/obs"
	"nbr/internal/sigsim"
)

// ActiveSet is the membership mask shared by the registry, the signal group
// and every scheme's scans (defined next to the signal machinery because
// signalability is its strictest consumer).
type ActiveSet = sigsim.ActiveSet

// ErrRegistryFull is returned by Acquire when every slot is leased or still
// quarantined and no slot can be handed out.
var ErrRegistryFull = errors.New("smr: registry full (every slot leased or quarantined)")

// Member is implemented by schemes that participate in dynamic thread
// membership. AttachRegistry must be called exactly once, after construction
// and before any guard is used: the scheme adopts the registry's active mask
// for its scans and signals, registers its acquire/release hooks, and starts
// adopting the registry's orphan list during reclamation.
type Member interface {
	Scheme
	AttachRegistry(r *Registry)
}

// Drainer is implemented by schemes that can make reclamation progress on
// demand: adopt any orphaned records and run a full scan/sweep on behalf of
// thread tid (which the caller must own, via a lease or fixed-N convention).
// One call makes one pass; epoch-based schemes need a few consecutive calls
// at quiescence to walk their grace periods forward.
type Drainer interface {
	Drain(tid int)
}

// Registry hands out dense thread slots as revocable leases, so
// goroutine-pool services can run reclamation-protected operations without a
// fixed thread set. It owns three pieces of shared state:
//
//   - the active mask: the published set of live slots every scan and signal
//     broadcast iterates (cost tracks live threads, not MaxThreads);
//   - the orphan list: records a departing thread could not reclaim on its
//     way out (they were reserved/pinned by peers mid-release), adopted into
//     the next reclaimer's bag DEBRA-style so nothing leaks across
//     membership churn;
//   - the quarantine: released slots age one full scan round before reuse,
//     so a recycled tid is never confused with its predecessor by an
//     in-flight scan or bookmark snapshot taken while the predecessor was
//     live.
//
// A Registry serves one Scheme (Bind) plus any number of side hooks (the
// mem thread-cache drain). Acquire/Release are goroutine-safe; each Lease is
// owned by one goroutine at a time.
type Registry struct {
	max    int
	active *ActiveSet
	rounds atomic.Uint64 // completed reclamation scan rounds (EndScan/NoteRound)
	scans  atomic.Int64  // reclamation scans currently in flight (BeginScan)

	// force is the bound scheme's on-demand round driver (RoundForcer, wired
	// by Bind): when the oldest quarantined slot has not aged, Acquire forces
	// the missing rounds itself instead of leaning on the no-scanner
	// fallback, so the two-round reuse guarantee holds whatever the organic
	// reclamation cadence. forced and fallbacks count the two paths.
	force     func() bool
	forced    atomic.Uint64
	fallbacks atomic.Uint64

	// quiescer is the bound scheme's recovery residue and revoker its
	// sticky-revocation channel (both wired by Bind, both optional); see
	// recovery.go for the shared release/revocation path built on them.
	quiescer Quiescer
	revoker  SlotRevoker
	// Crash-safety counters: reaped counts successful Revokes,
	// revokedReleases counts a zombie's late Release arriving after its
	// lease was revoked (the counted no-op).
	reaped          atomic.Uint64
	revokedReleases atomic.Uint64

	// rec is the flight recorder (nil or disabled: one branch per event
	// site). Schemes bound to this registry pull it via Recorder() so the
	// whole pipeline shares one timeline.
	rec *obs.Recorder

	mu         sync.Mutex
	fresh      []int // never-yet-quarantined slots (LIFO)
	quarantine []quarSlot

	onAcquire []func(tid int)
	onRelease []func(tid int)
	// afterRelease runs once the released slot has fully entered quarantine
	// — i.e. once a subsequent Acquire can actually be served by it. This is
	// the notification admission queues need; an OnRelease hook runs too
	// early (the slot is not yet reusable when it fires).
	afterRelease []func()

	orphans struct {
		mu      sync.Mutex
		ps      []mem.Ptr
		count   atomic.Int64  // mirrors len(ps) so adoption gates stay lock-free
		adopted atomic.Uint64 // lifetime records handed to adopters
	}
}

// quarSlot is a released slot waiting out its scan round.
type quarSlot struct {
	tid   int
	round uint64 // rounds counter at release time
}

// quarantineRounds is how far the round counter must advance past a slot's
// release before the slot is aged: +2 covers one scan that may have been in
// flight (started before the release, bumping the counter after it) plus one
// full round that demonstrably began after the release completed.
const quarantineRounds = 2

// NewRegistry creates a lease registry for max dense slots. The active mask
// starts empty: nothing is a member until Acquire.
func NewRegistry(max int) *Registry {
	r := &Registry{max: max, active: sigsim.NewActiveSet(max)}
	r.fresh = make([]int, 0, max)
	for tid := max - 1; tid >= 0; tid-- {
		r.fresh = append(r.fresh, tid) // LIFO pops slot 0 first
	}
	return r
}

// MaxThreads returns the number of slots the registry manages.
func (r *Registry) MaxThreads() int { return r.max }

// Active returns the registry's published membership mask. Schemes adopt it
// at AttachRegistry time; it must not be mutated except through leases.
func (r *Registry) Active() *ActiveSet { return r.active }

// Bind wires a scheme into the registry: the scheme adopts the active mask
// and registers its membership hooks; the registry captures the scheme's
// recovery residue (Quiescer) for the shared release/revocation path, its
// sticky-revocation channel (SlotRevoker) when it has one, and — when the
// scheme can force scan rounds (RoundForcer) — its forced-round driver for
// quarantine aging. It must run after the scheme is constructed and before
// any guard is used. Bind panics if the scheme does not participate in
// dynamic membership.
func (r *Registry) Bind(s Scheme) {
	m, ok := s.(Member)
	if !ok {
		panic("smr: scheme does not implement smr.Member; cannot Bind")
	}
	m.AttachRegistry(r)
	if q, ok := s.(Quiescer); ok {
		r.quiescer = q
	}
	if rv, ok := s.(SlotRevoker); ok {
		r.revoker = rv
	}
	if f, ok := s.(RoundForcer); ok {
		r.force = f.ForceRound
	}
}

// Recordable is implemented by schemes (and other pipeline components) that
// can attach a flight recorder. core.Scheme implements it; harnesses that
// run schemes without a registry (dstest's fixed-N suites) wire the recorder
// through this instead of Bind.
type Recordable interface {
	SetRecorder(*obs.Recorder)
}

// SetRecorder attaches a flight recorder to the registry. It must be wired
// before the registry is used concurrently and before Bind, so the bound
// scheme adopts the same recorder (see Recorder).
func (r *Registry) SetRecorder(rec *obs.Recorder) { r.rec = rec }

// Recorder returns the attached flight recorder (nil when none). Schemes
// read it during AttachRegistry.
func (r *Registry) Recorder() *obs.Recorder { return r.rec }

// SetForceRound installs the forced-round driver directly (test hook; Bind
// wires it from the scheme). Pass nil to disable forced aging.
func (r *Registry) SetForceRound(f func() bool) { r.force = f }

// ForcedRounds returns how many scan rounds Acquire forced to age a
// quarantined slot.
func (r *Registry) ForcedRounds() uint64 { return r.forced.Load() }

// FallbackReuses returns how many times Acquire served a quarantined slot
// on the no-scanner proof instead of the two-round aging guarantee. With a
// RoundForcer bound this stays zero under any churn: the missing rounds are
// forced instead.
func (r *Registry) FallbackReuses() uint64 { return r.fallbacks.Load() }

// OnAcquire registers a hook run on the acquiring goroutine each time a slot
// is handed out, after the slot is assigned and before it is marked active.
// Hooks must be registered before the registry is used concurrently.
func (r *Registry) OnAcquire(f func(tid int)) { r.onAcquire = append(r.onAcquire, f) }

// OnRelease registers a hook run on the releasing goroutine during
// Lease.Release, after the slot is removed from the active mask. Hooks run
// in registration order: a scheme's quiesce hook (registered by Bind) runs
// before a later-registered allocator-cache drain, so records the quiesce
// frees reach the thread cache before it is flushed.
func (r *Registry) OnRelease(f func(tid int)) { r.onRelease = append(r.onRelease, f) }

// AfterRelease registers a hook run on the releasing goroutine after the
// slot has entered quarantine, so an Acquire attempted from the hook (or a
// goroutine it wakes) can be served by the freed slot. Hooks must be
// registered before the registry is used concurrently.
func (r *Registry) AfterRelease(f func()) { r.afterRelease = append(r.afterRelease, f) }

// BeginScan marks a reclamation scan (a reservation/hazard/era collection
// and its sweep) as in flight. Schemes bound to the registry bracket every
// scan with BeginScan/EndScan; the in-flight count is what lets Acquire
// prove that no scan can still hold a snapshot of a quarantined slot's
// previous occupant.
func (r *Registry) BeginScan() {
	n := r.scans.Add(1)
	if r.rec.Enabled() {
		r.rec.Sys(obs.EvScanBegin, uint64(n))
	}
}

// EndScan marks the scan complete, counting one finished round toward
// quarantine aging.
func (r *Registry) EndScan() {
	r.scans.Add(-1)
	rounds := r.rounds.Add(1)
	if r.rec.Enabled() {
		r.rec.Sys(obs.EvScanEnd, rounds)
	}
}

// NoteRound records one completed scan round without an in-flight bracket
// (test hook; schemes use BeginScan/EndScan).
func (r *Registry) NoteRound() { r.rounds.Add(1) }

// Rounds returns the completed-scan-round counter (test hook).
func (r *Registry) Rounds() uint64 { return r.rounds.Load() }

// Acquire leases a dense slot: the slot's scheme and allocator state is
// readied by the registered hooks, the slot is published in the active mask,
// and the returned lease's Tid may be used with Scheme.Guard until Release.
// Slot preference: never-yet-quarantined (fresh) slots first, then the
// oldest quarantined slot — served only once it is safe from tid-reuse
// aliasing. Safety holds on one of three proofs, tried in order:
//
//   - aged: at least quarantineRounds scan rounds completed since the
//     release, so any scan that could have captured the predecessor has
//     long finished;
//   - forced: when the head has not aged organically and the bound scheme
//     is a RoundForcer, Acquire drives the missing rounds itself — a real
//     bracketed collection per round — so lease churn outrunning the
//     reclamation cadence no longer voids the round guarantee;
//   - no scanner (fallback): the in-flight scan count is zero right now, so
//     no snapshot of the predecessor can exist at all (scans that begin
//     after this check see the slot's current mask state, which is the
//     normal protocol). Reached only when no RoundForcer is bound or it
//     cannot complete a round, and counted in FallbackReuses.
//
// When none holds — a scan is mid-flight with no working forcer, or forced
// rounds completed but a racing acquirer took the aged head — Acquire
// refuses with ErrRegistryFull; the window is one scan's (or one race's)
// duration, so a retrying caller succeeds promptly.
func (r *Registry) Acquire() (*Lease, error) {
	r.mu.Lock()
	tid, ok, waiting := r.takeSlotLocked()
	r.mu.Unlock()
	forcedOK := false
	if !ok && waiting && r.force != nil {
		// Age the quarantine head with forced rounds, outside the lock: a
		// round is a scheme-side collection that never touches the
		// registry's mutex, but Release and other Acquires must not block
		// behind it.
		for i := 0; i < quarantineRounds && !ok; i++ {
			if !r.force() {
				break
			}
			forcedOK = true
			r.forced.Add(1)
			r.rec.Sys(obs.EvForcedRound, r.rounds.Load())
			r.mu.Lock()
			tid, ok, waiting = r.takeSlotLocked()
			r.mu.Unlock()
		}
	}
	if !ok && waiting && !forcedOK {
		// Fallback: the no-scanner proof (see above), reached only when no
		// forcer is bound or it could not complete a round. When forced
		// rounds DID complete but the slot still was not served — a racing
		// acquirer took the aged head and a fresh release replaced it — the
		// refusal below stands instead: the caller retries, and the round
		// guarantee is never traded away while a working forcer exists.
		// The re-check and the pop happen under one lock hold; a scan
		// beginning right after the load is the same benign race the
		// original protocol documented.
		r.mu.Lock()
		if len(r.quarantine) > 0 && r.scans.Load() == 0 {
			tid = r.quarantine[0].tid
			r.quarantine = r.quarantine[1:]
			ok = true
			r.fallbacks.Add(1)
			r.rec.Rec(tid, obs.EvFallback, uint64(tid))
		}
		r.mu.Unlock()
	}
	if !ok {
		return nil, ErrRegistryFull
	}
	for _, f := range r.onAcquire {
		f(tid)
	}
	l := &Lease{reg: r, tid: tid}
	if r.rec.Enabled() {
		l.start = r.rec.Clock()
		r.rec.Rec(tid, obs.EvAcquire, uint64(tid))
	}
	r.active.Set(tid)
	return l, nil
}

// takeSlotLocked pops a fresh slot, else the quarantine head when aged.
// waiting reports that a quarantined slot exists but has not aged — the
// caller may force rounds or fall back to the no-scanner proof.
func (r *Registry) takeSlotLocked() (tid int, ok, waiting bool) {
	if n := len(r.fresh); n > 0 {
		tid := r.fresh[n-1]
		r.fresh = r.fresh[:n-1]
		return tid, true, false
	}
	if len(r.quarantine) == 0 {
		return 0, false, false
	}
	// Rounds are monotone, so the FIFO head is always the most-aged entry:
	// if it cannot be served, nothing behind it can.
	head := r.quarantine[0]
	rounds := r.rounds.Load()
	if head.round+quarantineRounds > rounds {
		return 0, false, true
	}
	r.quarantine = r.quarantine[1:]
	r.rec.Rec(head.tid, obs.EvQuarRecycle, rounds-head.round)
	return head.tid, true, false
}

// Release returns the lease's slot: the slot leaves the active mask, the
// shared recovery path quiesces its scheme and allocator state (reclaiming
// what it can, orphaning the rest — see recovery.go), and the slot enters
// quarantine (see Acquire for when it becomes reusable). Release is
// idempotent per lease and must be called by the goroutine that owns it;
// each Acquire returns a distinct Lease, so a duplicate Release of an old
// lease can never revoke the slot's next occupant. A Release arriving after
// the lease was involuntarily revoked (the zombie waking up) is the same
// harmless no-op, counted in RevokedReleases.
func (l *Lease) Release() {
	if l.released.Swap(true) {
		if l.revoked.Load() {
			l.reg.revokedReleases.Add(1)
		}
		return
	}
	r := l.reg
	r.active.Clear(l.tid)
	if r.rec.Enabled() {
		r.rec.ObserveSince(obs.HistLeaseHold, l.start)
		r.rec.Rec(l.tid, obs.EvRelease, uint64(l.tid))
	}
	r.runRecovery(l.tid)
	r.finishRelease(l.tid)
}

// Lease is one leased slot. Tid is stable for the lease's lifetime; after
// Release the lease must not be used.
type Lease struct {
	reg      *Registry
	tid      int
	released atomic.Bool
	revoked  atomic.Bool
	start    int64 // recorder clock at Acquire (0 when not measured)
}

// Tid returns the dense slot this lease owns.
func (l *Lease) Tid() int { return l.tid }

// Revoked reports whether the lease was involuntarily revoked by the
// watchdog/reaper. The public operation layer checks it on entry so a
// zombie of a scheme without signal delivery points is still caught at its
// next operation.
func (l *Lease) Revoked() bool { return l.revoked.Load() }

// Membership is the scheme-side half of dynamic membership, embedded by
// every scheme so the registry wiring exists in exactly one place: the
// bound registry (nil in fixed-N mode), the active mask every scan
// iterates, and the orphan-adoption gate. Schemes keep only their genuinely
// distinct parts — the attach protocol registered through Join and the
// release-side residue exposed as a Quiescer (captured by Bind).
type Membership struct {
	// Reg is the bound registry, nil in fixed-N mode.
	Reg *Registry
	// ActiveMask is the membership mask scans and signals iterate: full in
	// fixed-N mode, the registry's mask after Join.
	ActiveMask *ActiveSet
}

// InitFixed selects fixed-N mode: all threads permanently active.
func (m *Membership) InitFixed(threads int) {
	m.ActiveMask = sigsim.FullActiveSet(threads)
}

// Join wires the scheme into r: capacity check, mask adoption, and the
// acquire-hook registration. The release side no longer registers here — it
// is the shared recovery path, which calls back into the scheme through the
// Quiescer methods Bind captured. Must run after construction and before any
// guard is used.
func (m *Membership) Join(r *Registry, threads int, scheme string, onAcquire func(tid int)) {
	if r.MaxThreads() != threads {
		panic(scheme + ": registry capacity does not match scheme thread count")
	}
	m.Reg = r
	m.ActiveMask = r.Active()
	r.OnAcquire(onAcquire)
}

// ForceRound runs collect as one completed scan round: bracketed by the
// registry's BeginScan/EndScan so it counts toward quarantine aging, and a
// no-op (false) in fixed-N mode where there is no quarantine to age. collect
// must be a genuine collection pass over the scheme's announcement state —
// the round counter certifies "a collection that began after a release has
// completed", nothing about sweeping — and the caller is responsible for
// serializing access to whatever scratch it collects into.
func (m *Membership) ForceRound(collect func()) bool {
	if m.Reg == nil {
		return false
	}
	m.Reg.BeginScan()
	collect()
	m.Reg.EndScan()
	return true
}

// HasOrphans reports whether adoption would pull anything (one atomic load;
// the gate reclaim paths poll).
func (m *Membership) HasOrphans() bool {
	return m.Reg != nil && m.Reg.OrphanCount() > 0
}

// Adopt pulls up to max (all when max <= 0) orphaned records into dst. The
// records were counted as retired by their original thread; the adopter
// must free them under its own protocol without re-counting.
func (m *Membership) Adopt(dst []mem.Ptr, max int) []mem.Ptr {
	if !m.HasOrphans() {
		return dst
	}
	return m.Reg.AdoptOrphans(dst, max)
}

// AddOrphans appends a departing thread's unreclaimable records to the
// shared orphan list. The slice is not retained.
func (r *Registry) AddOrphans(ps []mem.Ptr) {
	if len(ps) == 0 {
		return
	}
	r.orphans.mu.Lock()
	r.orphans.ps = append(r.orphans.ps, ps...)
	r.orphans.count.Store(int64(len(r.orphans.ps)))
	r.orphans.mu.Unlock()
}

// OrphanCount returns the number of orphaned records awaiting adoption. It
// is the lock-free gate reclaimers poll before paying for AdoptOrphans.
func (r *Registry) OrphanCount() int { return int(r.orphans.count.Load()) }

// AdoptOrphans moves up to max orphaned records (all of them when max <= 0)
// into dst and returns the grown dst. The adopter must treat the records as
// freshly retired under its own protocol — they entered the orphan list
// already counted in Stats.Retired, so adoption must not re-count them.
func (r *Registry) AdoptOrphans(dst []mem.Ptr, max int) []mem.Ptr {
	if r.orphans.count.Load() == 0 {
		return dst
	}
	r.orphans.mu.Lock()
	n := len(r.orphans.ps)
	take := n
	if max > 0 && take > max {
		take = max
	}
	dst = append(dst, r.orphans.ps[n-take:]...)
	r.orphans.ps = r.orphans.ps[:n-take]
	r.orphans.count.Store(int64(n - take))
	r.orphans.adopted.Add(uint64(take))
	r.orphans.mu.Unlock()
	r.rec.Sys(obs.EvOrphanAdopt, uint64(take))
	return dst
}
