package smr

import (
	"sync/atomic"

	"nbr/internal/mem"
)

// SegState is the scheme-level segment bookkeeping shared by every Guard
// implementation: the arena's segment interface (resolved once at
// construction) and the largest segment weight any guard has retired,
// raised monotonically. The weight gates everything — until the first
// RetireSegment lands, Active() returns nil and the sweeps, watermark
// checks and GarbageBound formulas of a scheme collapse to their exact
// pre-segment forms at zero extra cost.
type SegState struct {
	sa   mem.SegmentArena
	maxW atomic.Int64
}

// Init resolves the arena's segment interface. A nil result is permanent:
// no segment handle can ever reach a scheme bound to that arena.
func (s *SegState) Init(a mem.Arena) { s.sa = mem.AsSegmentArena(a) }

// Arena returns the segment interface, nil when unsupported.
func (s *SegState) Arena() mem.SegmentArena { return s.sa }

// Active returns the segment interface once any segment was retired, else
// nil — the value sweeps pass to SweepBagSeg so bags that cannot contain a
// segment skip the per-entry directory probes entirely. A retired segment
// may be adopted by any guard of the scheme (orphan rehoming), so the gate
// is scheme-level, set by Note before the handle enters a bag.
func (s *SegState) Active() mem.SegmentArena {
	if s.maxW.Load() == 0 {
		return nil
	}
	return s.sa
}

// Note records a retired segment's weight, monotonically raising the
// maximum. Callers invoke it before bagging the handle so a concurrent
// GarbageBound reader can never see segment garbage under a pre-segment
// bound.
func (s *SegState) Note(w int) {
	for {
		cur := s.maxW.Load()
		if int64(w) <= cur || s.maxW.CompareAndSwap(cur, int64(w)) {
			return
		}
	}
}

// MaxWeight returns the largest segment weight retired so far (0 when no
// segment was ever retired). Monotone non-decreasing, so GarbageBound
// formulas scaled by it keep the bound's monotonicity contract.
func (s *SegState) MaxWeight() int { return int(s.maxW.Load()) }

// Weigh returns the garbage weight of a bag entry: SegWeight gated on the
// scheme ever having seen a segment.
func (s *SegState) Weigh(p mem.Ptr) int {
	if s.maxW.Load() == 0 {
		return 1
	}
	return mem.SegWeight(s.sa, p)
}

// WeighAll sums Weigh over ps (1 each on the ungated fast path).
func (s *SegState) WeighAll(ps []mem.Ptr) int {
	if s.maxW.Load() == 0 {
		return len(ps)
	}
	w := 0
	for _, p := range ps {
		w += mem.SegWeight(s.sa, p)
	}
	return w
}
