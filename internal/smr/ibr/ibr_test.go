package ibr_test

import (
	"testing"

	"nbr/internal/mem"
	"nbr/internal/smr/ibr"
)

type rec struct{ v uint64 }

func setup(threads int, cfg ibr.Config) (*mem.Pool[rec], *ibr.Scheme) {
	pool := mem.NewPool[rec](mem.Config{MaxThreads: threads})
	return pool, ibr.New(pool, threads, cfg)
}

// alloc allocates and stamps a record's birth era through the guard.
func alloc(pool *mem.Pool[rec], s *ibr.Scheme, tid int) mem.Ptr {
	h, _ := pool.Alloc(tid)
	s.Guard(tid).OnAlloc(h)
	return h
}

func TestReservedIntervalBlocksOverlappingLifetimes(t *testing.T) {
	pool, s := setup(2, ibr.Config{Threshold: 8, EraFreq: 1})
	g0, g1 := s.Guard(0), s.Guard(1)

	g1.BeginOp() // reserves [era, era] now — old records conflict
	target := alloc(pool, s, 0)
	g0.Retire(target) // lifetime [now, now] overlaps g1's reservation
	for i := 0; i < 32; i++ {
		g0.Retire(alloc(pool, s, 0))
	}
	// Everything retired after g1.BeginOp has birth ≥ g1.lo, so all of it
	// conflicts while g1 stays in its operation.
	if !pool.Valid(target) {
		t.Fatal("record overlapping an active reservation was freed")
	}
	g1.EndOp()
	for i := 0; i < 32; i++ {
		g0.Retire(alloc(pool, s, 0))
	}
	if pool.Valid(target) {
		t.Fatal("record not freed after the reservation emptied")
	}
}

func TestOldReservationDoesNotBlockYoungRecords(t *testing.T) {
	// The IBR selling point vs EBR: a stalled reader only pins records
	// whose lifetimes overlap its interval, not everything retired later…
	// unless the reader keeps raising its upper bound via Protect.
	pool, s := setup(2, ibr.Config{Threshold: 8, EraFreq: 1})
	g0, g1 := s.Guard(0), s.Guard(1)

	g1.BeginOp() // interval pinned at the current era; g1 now stalls
	// Let many eras pass, then retire young records: born after g1.hi.
	for i := 0; i < 64; i++ {
		g0.Retire(alloc(pool, s, 0))
	}
	young := alloc(pool, s, 0)
	g0.Retire(young)
	for i := 0; i < 32; i++ {
		g0.Retire(alloc(pool, s, 0))
	}
	if pool.Valid(young) {
		t.Fatal("young record (born after the stalled interval) was not freed")
	}
	g1.EndOp()
}

func TestProtectRaisesUpperBound(t *testing.T) {
	pool, s := setup(2, ibr.Config{Threshold: 8, EraFreq: 1})
	g0, g1 := s.Guard(0), s.Guard(1)

	g1.BeginOp()
	// g1 touches records as eras advance, raising hi each time.
	for i := 0; i < 16; i++ {
		h := alloc(pool, s, 0)
		g1.Protect(0, h)
		pool.Free(0, h)
	}
	target := alloc(pool, s, 0)
	g1.Protect(0, target) // hi now covers target's birth
	g0.Retire(target)
	for i := 0; i < 32; i++ {
		g0.Retire(alloc(pool, s, 0))
	}
	if !pool.Valid(target) {
		t.Fatal("record inside the raised interval was freed")
	}
	g1.EndOp()
}

func TestEraAdvancesOnAllocAndRetire(t *testing.T) {
	pool, s := setup(1, ibr.Config{Threshold: 1024, EraFreq: 4})
	for i := 0; i < 64; i++ {
		s.Guard(0).Retire(alloc(pool, s, 0))
	}
	if st := s.Stats(); st.Advances < 16 {
		t.Fatalf("era advanced only %d times", st.Advances)
	}
}

func TestBirthAndRetireStamped(t *testing.T) {
	pool, s := setup(1, ibr.Config{EraFreq: 1, Threshold: 1 << 20})
	h := alloc(pool, s, 0)
	s.Guard(0).Retire(h)
	hdr := pool.Hdr(h)
	if hdr.Birth() == 0 || hdr.Retire() < hdr.Birth() {
		t.Fatalf("bad era stamps: birth=%d retire=%d", hdr.Birth(), hdr.Retire())
	}
}

func TestNeedsValidationAndName(t *testing.T) {
	_, s := setup(1, ibr.Config{})
	if !s.Guard(0).NeedsValidation() {
		t.Fatal("IBR requires link validation")
	}
	if s.Name() != "ibr" {
		t.Fatalf("name = %q", s.Name())
	}
}
