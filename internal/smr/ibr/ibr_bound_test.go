package ibr_test

import (
	"testing"

	"nbr/internal/smr/ibr"
)

// TestBoundTightWithoutPinning pins the exact pinned-set declaration: with
// no reserved intervals, the bound is the static buffered term alone — the
// N·EraFreq era-slack heuristic is gone. The churn also guards against a
// self-certifying bound: a sweep that wrongly keeps freeable records would
// raise pinnedPeak above the static term and fail here (see the he variant).
func TestBoundTightWithoutPinning(t *testing.T) {
	const threads, threshold = 4, 32
	pool, s := setup(threads, ibr.Config{Threshold: threshold, EraFreq: 1})
	want := threads * (2*threshold + 2)
	if got := s.GarbageBound(); got != want {
		t.Fatalf("unpinned bound = %d, want static buffered term %d", got, want)
	}
	g := s.Guard(0)
	for i := 0; i < 10*threshold; i++ {
		g.Retire(alloc(pool, s, 0))
	}
	if got := s.GarbageBound(); got != want {
		t.Fatalf("bound moved to %d under unpinned churn (a sweep kept freeable records), want %d", got, want)
	}
	if garbage := s.Stats().Garbage(); garbage >= uint64(threshold) {
		t.Fatalf("unpinned churn left %d unreclaimed records", garbage)
	}
}

// TestBoundTracksPinnedSet pins the dynamic half: a stalled reservation
// interval pins overlapping lifetimes, and the declared bound must grow
// with the measured survivor set while never being outrun by the garbage
// it covers.
func TestBoundTracksPinnedSet(t *testing.T) {
	const threads, threshold = 2, 16
	pool, s := setup(threads, ibr.Config{Threshold: threshold, EraFreq: 1})
	g0, g1 := s.Guard(0), s.Guard(1)

	static := s.GarbageBound()

	g1.BeginOp() // interval pinned at the current era; g1 stalls
	// Retire records born inside g1's interval: all pinned. Later eras move
	// past the frozen interval, so records born afterwards are sweepable —
	// the bound must cover the pinned prefix exactly, not an era-slack
	// guess.
	const pinnedChurn = 4 * threshold
	for i := 0; i < pinnedChurn; i++ {
		g0.Retire(alloc(pool, s, 0))
		st := s.Stats()
		if bound := s.GarbageBound(); uint64(bound) < st.Garbage() {
			t.Fatalf("retire %d: garbage %d outran the pinned-set bound %d", i, st.Garbage(), bound)
		}
	}
	grown := s.GarbageBound()
	if grown <= static {
		t.Fatalf("bound did not grow with the pinned set: %d → %d", static, grown)
	}

	g1.EndOp()
	for i := 0; i < 2*threshold; i++ {
		g0.Retire(alloc(pool, s, 0))
	}
	if after := s.GarbageBound(); after < grown {
		t.Fatalf("bound decreased %d → %d; GarbageBound must be monotone", grown, after)
	}
	st := s.Stats()
	if st.Garbage() > uint64(threshold)+1 {
		t.Fatalf("backlog not reclaimed after the interval emptied: garbage %d", st.Garbage())
	}
}
