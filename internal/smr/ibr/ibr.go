// Package ibr implements 2GE interval-based reclamation (the "2geibr"
// variant the paper benchmarks, from Wen et al., PPoPP'18). A global era
// clock advances every few allocations/retirements; every record carries its
// birth and retire eras in the allocator header (the per-record metadata the
// paper notes these schemes require). Each thread announces a reservation
// interval [lo, hi]: lo is fixed at operation start, hi is raised to the
// current era at every record access (the 2GE upgrade, validated by a link
// re-read like hazard pointers). A retired record is freed once its lifetime
// interval [birth, retire] intersects no thread's reservation, which bounds
// garbage even under stalled threads.
package ibr

import (
	"sync"

	"nbr/internal/mem"
	"nbr/internal/smr"
)

const idleLo = ^uint64(0)

// Config tunes the scheme.
type Config struct {
	// EraFreq advances the era every EraFreq allocations+retirements per
	// thread. Default 128.
	EraFreq int
	// Threshold is the per-thread bag size that triggers a sweep. Default
	// max(64, 2·N·8).
	Threshold int
}

func (c Config) withDefaults(threads int) Config {
	if c.EraFreq <= 0 {
		c.EraFreq = 128
	}
	if c.Threshold <= 0 {
		c.Threshold = 2 * threads * 8
		if c.Threshold < 64 {
			c.Threshold = 64
		}
	}
	return c
}

// Scheme is a 2GE-IBR instance.
type Scheme struct {
	arena mem.Arena
	cfg   Config
	era   smr.Pad64
	lo    []smr.Pad64
	hi    []smr.Pad64
	// orphanPeak is the high-water mark of the registry orphan list while
	// this scheme fed it: orphaned records are interval-pinned survivors,
	// so they belong to the pinned-set term of GarbageBound.
	orphanPeak smr.Watermark
	gs         []*guard
	smr.Membership

	// seg is the segment-retirement state: the arena's segment interface and
	// the largest retired segment weight, which scales the declared bound.
	seg smr.SegState

	// forceLos/forceHis are the ForceRound collection scratch, serialized by
	// forceMu.
	forceMu  sync.Mutex
	forceLos []uint64
	forceHis []uint64
}

// New creates a 2GE-IBR scheme for the given arena and thread count.
func New(arena mem.Arena, threads int, cfg Config) *Scheme {
	s := &Scheme{arena: arena, cfg: cfg.withDefaults(threads),
		lo: make([]smr.Pad64, threads), hi: make([]smr.Pad64, threads)}
	s.seg.Init(arena)
	s.InitFixed(threads)
	s.era.Store(1)
	for i := 0; i < threads; i++ {
		s.lo[i].Store(idleLo)
	}
	s.gs = make([]*guard, threads)
	for i := range s.gs {
		s.gs[i] = &guard{s: s, tid: i}
	}
	return s
}

// Name implements smr.Scheme.
func (s *Scheme) Name() string { return "ibr" }

// Guard implements smr.Scheme.
func (s *Scheme) Guard(tid int) smr.Guard { return s.gs[tid] }

// Stats implements smr.Scheme.
func (s *Scheme) Stats() smr.Stats {
	var st smr.Stats
	for _, g := range s.gs {
		st.Retired += g.retired.Load()
		g.batches.AddTo(&st.BatchHist)
		st.Freed += g.freed.Load()
		st.Scans += g.scans.Load()
		st.Advances += g.advances.Load()
		st.Segments += g.segments.Load()
		st.SegRecords += g.segRecords.Load()
	}
	return st
}

// GarbageBound implements smr.Scheme as the exact pinned-set bound: a
// static buffered term (each bag sweeps at the threshold, plus one
// adopted-orphan batch in flight — ≤ 2·Threshold+2 per thread) plus the
// measured pinned set — sweep survivors are exactly the records whose
// lifetime intersects a reserved interval, recorded as a high-water mark
// per guard (and an orphaned-survivor peak under membership churn). See the
// he package for the full rationale; the old N·EraFreq heuristic is gone
// for the same reasons. Monotone by construction, as smr.Scheme requires.
func (s *Scheme) GarbageBound() int {
	n := len(s.gs)
	// The threshold term is measured in record weight (a segment handle
	// counts its member run), so it needs no scaling; the transient
	// adopted-orphan batch is counted in entries, each worth up to segW
	// records. segW is 1 until the first RetireSegment lands and monotone
	// afterwards, so the formula collapses to the pre-segment bound exactly
	// and keeps the monotonicity contract (pinned and orphan terms are
	// weighted watermarks).
	segW := s.seg.MaxWeight()
	if segW < 1 {
		segW = 1
	}
	bound := n * (s.cfg.Threshold + (s.cfg.Threshold+2)*segW)
	for _, g := range s.gs {
		bound += int(g.pinnedPeak.Load())
	}
	return bound + int(s.orphanPeak.Load())
}

// ReclaimBurst implements smr.Scheme: a sweep frees at most one full bag.
func (s *Scheme) ReclaimBurst() int { return s.cfg.Threshold }

// AttachRegistry implements smr.Member: adopt the registry's active mask
// for interval scans and register the lease hooks. Must run before guards
// are used.
func (s *Scheme) AttachRegistry(r *smr.Registry) {
	s.Join(r, len(s.gs), "ibr", s.attachThread)
}

// attachThread empties slot tid's reservation interval for a new
// leaseholder.
func (s *Scheme) attachThread(tid int) {
	s.lo[tid].Store(idleLo)
	s.hi[tid].Store(0)
}

// ReclaimAll implements smr.Quiescer: adopt previously orphaned records and
// sweep everything once. Part of the shared recovery path; runs after the
// slot left the active mask.
func (s *Scheme) ReclaimAll(tid int) {
	g := s.gs[tid]
	g.adopt(0)
	if len(g.bag) > 0 {
		g.sweep()
	}
}

// OrphanSurvivors implements smr.Quiescer: orphan the interval-pinned
// survivors, raising the measured-bound watermark the orphan list
// contributes to.
func (s *Scheme) OrphanSurvivors(tid int) {
	g := s.gs[tid]
	if len(g.bag) > 0 {
		s.Reg.AddOrphans(g.bag)
		// Each orphan entry can be a segment handle worth up to segW member
		// records; the peak is raised at every add, so between adds the list
		// only shrinks (adoption) and the watermark stays a sound weight
		// ceiling.
		w := s.Reg.OrphanCount()
		if segW := s.seg.MaxWeight(); segW > 1 {
			w *= segW
		}
		s.orphanPeak.Raise(uint64(w))
		g.bag = g.bag[:0]
		g.bagW = 0
	}
}

// ResetSlot implements smr.Quiescer: empty tid's reservation interval.
func (s *Scheme) ResetSlot(tid int) { s.attachThread(tid) }

// ForceRound implements smr.RoundForcer: one bracketed reservation-interval
// collection over the active mask — sweep's snapshot without the lifetime
// checks — advancing the registry's quarantine clock on demand.
func (s *Scheme) ForceRound() bool {
	s.forceMu.Lock()
	defer s.forceMu.Unlock()
	return s.Membership.ForceRound(func() {
		s.forceLos, s.forceHis = s.forceLos[:0], s.forceHis[:0]
		s.ActiveMask.Range(func(tid int) {
			if lo := s.lo[tid].Load(); lo != idleLo {
				s.forceLos = append(s.forceLos, lo)
				s.forceHis = append(s.forceHis, s.hi[tid].Load())
			}
		})
	})
}

// Drain implements smr.Drainer: adopt all orphans and sweep on behalf of
// tid.
func (s *Scheme) Drain(tid int) {
	g := s.gs[tid]
	g.adopt(0)
	if len(g.bag) > 0 {
		g.sweep()
	}
}

type guard struct {
	s      *Scheme
	tid    int
	bag    []mem.Ptr
	events int // allocations + retirements since the last era advance
	los    []uint64
	his    []uint64 // sweep scratch, reused

	// bagW is the bag's record weight: len(bag) until a segment handle
	// lands, after which each handle counts its member run. The sweep
	// threshold compares against bagW so the bound counts every member.
	bagW int

	// pinnedPeak is the largest survivor weight any sweep of this guard
	// kept: the measured pinned-set term of GarbageBound.
	pinnedPeak smr.Watermark

	retired    smr.Counter
	batches    smr.BatchHist
	freed      smr.Counter
	scans      smr.Counter
	advances   smr.Counter
	segments   smr.Counter // segment handles bagged (RetireSegment pieces)
	segRecords smr.Counter // member records those handles stood for
}

func (g *guard) Tid() int { return g.tid }

// BeginOp pins the reservation interval's lower end at the current era.
func (g *guard) BeginOp() {
	e := g.s.era.Load()
	g.s.lo[g.tid].Store(e)
	g.s.hi[g.tid].Store(e)
}

// EndOp empties the reservation interval.
func (g *guard) EndOp() {
	g.s.lo[g.tid].Store(idleLo)
	g.s.hi[g.tid].Store(0)
}

func (g *guard) BeginRead()           {}
func (g *guard) Reserve(int, mem.Ptr) {}
func (g *guard) EndRead()             {}

// Protect raises the interval's upper end to the current era; the caller
// then re-reads the link (NeedsValidation) so that any record it goes on to
// access has a lifetime intersecting [lo, hi].
func (g *guard) Protect(_ int, _ mem.Ptr) {
	e := g.s.era.Load()
	if g.s.hi[g.tid].Load() < e {
		g.s.hi[g.tid].Store(e)
	}
}

func (g *guard) NeedsValidation() bool { return true }

// OnAlloc stamps the record's birth era and ticks the era clock.
func (g *guard) OnAlloc(p mem.Ptr) {
	g.s.arena.Hdr(p).SetBirth(g.s.era.Load())
	g.tick()
}

func (g *guard) OnStale(p mem.Ptr) {
	panic("ibr: use-after-free detected (validation raced a free): " + p.String())
}

// Retire stamps the record's retire era and sweeps when the bag is full.
func (g *guard) Retire(p mem.Ptr) {
	p = p.Unmarked()
	g.s.arena.Hdr(p).SetRetire(g.s.era.Load())
	g.bag = append(g.bag, p)
	g.bagW++
	g.retired.Inc()
	g.batches.Record(1)
	g.tick()
	if g.bagW >= g.s.cfg.Threshold {
		g.sweep()
	}
}

// RetireBatch implements smr.Guard: the batch lands in the bag in chunks
// that fill it exactly to the sweep threshold — one era load stamps each
// chunk (read after every record in the batch was unlinked, so no stamp is
// older than a single-record Retire would have written), the event clock
// ticks once per chunk, and the sweep triggers at exactly the bag lengths a
// per-record Retire loop would hit, so one oversized splice can never
// stretch the bag beyond the threshold plus its interval-pinned survivors.
func (g *guard) RetireBatch(ps []mem.Ptr) {
	if len(ps) == 0 {
		return
	}
	g.batches.Record(len(ps))
	for len(ps) > 0 {
		take := smr.RetireChunk(g.s.cfg.Threshold, g.bagW, len(ps))
		e := g.s.era.Load()
		for _, p := range ps[:take] {
			p = p.Unmarked()
			g.s.arena.Hdr(p).SetRetire(e)
			g.bag = append(g.bag, p)
		}
		g.bagW += take
		g.retired.Add(uint64(take))
		g.tickN(take)
		ps = ps[take:]
		if g.bagW >= g.s.cfg.Threshold {
			g.sweep()
		}
	}
}

// RetireSegment implements smr.Guard: the handle lands in the bag as a
// single entry standing for its whole member run, and — the era schemes'
// whole win — exactly one birth/retire stamp covers all K members, instead
// of the per-record header writes RetireBatch pays. The lifetime interval of
// the handle is the run's: readers protecting any member hold an era inside
// it, so the sweep's intersection check pins the whole segment or frees the
// whole segment. The sweep threshold runs against the bag's record weight;
// an oversized segment is split at the threshold via CarveSegment, each
// carved piece inheriting the original birth era (the piece stands for
// members allocated then). A handle that is not a live segment degrades to
// Retire.
func (g *guard) RetireSegment(p mem.Ptr) {
	sa := g.s.seg.Arena()
	if mem.SegWeight(sa, p) <= 1 {
		g.Retire(p)
		return
	}
	p = p.Unmarked()
	g.batches.Record(sa.SegmentWeight(p))
	birth := g.s.arena.Hdr(p).Birth()
	for p != mem.Null {
		w := sa.SegmentWeight(p)
		take := smr.SegChunk(g.s.cfg.Threshold, w)
		q := p
		if take < w {
			q, p = sa.CarveSegment(g.tid, p, take)
			if p == mem.Null { // carve covered the whole run after all
				take = w
			}
		} else {
			take, p = w, mem.Null
		}
		hdr := g.s.arena.Hdr(q)
		hdr.SetBirth(birth)
		hdr.SetRetire(g.s.era.Load())
		// Note before bagging: a concurrent GarbageBound reader must never
		// see segment garbage under a pre-segment (or lighter) bound.
		g.s.seg.Note(take)
		g.bag = append(g.bag, q)
		g.bagW += take
		g.retired.Add(uint64(take))
		g.segments.Inc()
		g.segRecords.Add(uint64(take))
		g.tickN(take)
		if g.bagW >= g.s.cfg.Threshold {
			g.sweep()
		}
	}
}

func (g *guard) tick() { g.tickN(1) }

// tickN advances the event clock by n, advancing the era exactly as n
// single-event ticks would.
func (g *guard) tickN(n int) {
	g.events += n
	for g.events >= g.s.cfg.EraFreq {
		g.events -= g.s.cfg.EraFreq
		g.s.era.Add(1)
		g.advances.Inc()
	}
}

// sweep frees every record whose [birth, retire] interval no active thread
// reserves. Orphaned records are adopted first so departed threads' garbage
// rides the same sweep; the survivor count feeds the pinned-set term of
// GarbageBound.
func (g *guard) sweep() {
	g.adopt(g.s.cfg.Threshold)
	g.scans.Inc()
	if r := g.s.Reg; r != nil {
		r.BeginScan()
		defer r.EndScan()
	}
	if g.los == nil {
		g.los = make([]uint64, 0, len(g.s.lo))
		g.his = make([]uint64, 0, len(g.s.hi))
	}
	los, his := g.los[:0], g.his[:0]
	g.s.ActiveMask.Range(func(tid int) {
		if lo := g.s.lo[tid].Load(); lo != idleLo {
			los = append(los, lo)
			his = append(his, g.s.hi[tid].Load())
		}
	})
	g.los, g.his = los, his
	kept, keptW := g.bag[:0], 0
	for _, p := range g.bag {
		hdr := g.s.arena.Hdr(p)
		birth, retire := hdr.Birth(), hdr.Retire()
		conflict := false
		for i := range los {
			if retire >= los[i] && birth <= his[i] {
				conflict = true
				break
			}
		}
		// Weigh before a potential Free: freeing a segment handle removes it
		// from the arena's directory.
		w := g.s.seg.Weigh(p)
		if conflict {
			kept = append(kept, p)
			keptW += w
		} else {
			g.s.arena.Free(g.tid, p)
			g.freed.Add(uint64(w))
		}
	}
	g.bag = kept
	g.bagW = keptW
	// Recorded after the frees so a concurrent sampler can never read the
	// lowered garbage before the raised bound.
	g.pinnedPeak.Raise(uint64(keptW))
}

// adopt pulls up to max (all when max <= 0) orphaned records into the bag.
// Their birth/retire stamps were written when they were first retired, so
// the usual interval check applies unchanged.
func (g *guard) adopt(max int) {
	n := len(g.bag)
	g.bag = g.s.Adopt(g.bag, max)
	g.bagW += g.s.seg.WeighAll(g.bag[n:])
}
