package smr

import (
	"testing"

	"nbr/internal/mem"
)

// countingArena stubs mem.Arena to observe the reclaim sweep's arena
// traffic; only FreeBatch is expected to be called.
type countingArena struct {
	freeBatches int
	freed       int
}

func (a *countingArena) Free(int, mem.Ptr) { panic("scanset must batch frees") }
func (a *countingArena) FreeBatch(_ int, ps []mem.Ptr) {
	a.freeBatches++
	a.freed += len(ps)
}
func (a *countingArena) Hdr(mem.Ptr) *mem.Hdr { return nil }
func (a *countingArena) Valid(mem.Ptr) bool   { return true }
func (a *countingArena) SizeCache(int, int)   {}
func (a *countingArena) DrainCache(int)       {}

// TestSweepBagFruitlessScanSkipsArena pins the empty-batch fix: a sweep in
// which every bag record is reserved must not touch the arena at all — the
// free path is the allocator's contended side, and reclamation under
// pressure scans fruitlessly often.
func TestSweepBagFruitlessScanSkipsArena(t *testing.T) {
	slots := make([]Pad64, 4)
	bag := make([]mem.Ptr, 0, 4)
	for i := 0; i < 4; i++ {
		p := mem.Ptr(uint64(i)*2 + 2)
		slots[i].Store(uint64(p))
		bag = append(bag, p)
	}
	var set ScanSet
	set.Collect(slots)

	arena := &countingArena{}
	var scratch []mem.Ptr
	var freed int
	bag, scratch, freed = set.SweepBag(arena, 0, bag, len(bag), scratch)
	if freed != 0 || arena.freed != 0 {
		t.Fatalf("fully reserved bag freed %d records (arena saw %d)", freed, arena.freed)
	}
	if arena.freeBatches != 0 {
		t.Fatalf("fruitless sweep still called FreeBatch %d time(s)", arena.freeBatches)
	}
	if len(bag) != 4 {
		t.Fatalf("survivors = %d, want 4", len(bag))
	}

	// Clearing one reservation makes the next sweep free exactly that
	// record through exactly one batch.
	slots[2].Store(0)
	set.Collect(slots)
	bag, _, freed = set.SweepBag(arena, 0, bag, len(bag), scratch)
	if freed != 1 || arena.freeBatches != 1 || arena.freed != 1 {
		t.Fatalf("after unreserving one record: freed=%d batches=%d arenaFreed=%d",
			freed, arena.freeBatches, arena.freed)
	}
	if len(bag) != 3 {
		t.Fatalf("survivors = %d, want 3", len(bag))
	}
}
