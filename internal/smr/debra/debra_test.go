package debra_test

import (
	"testing"

	"nbr/internal/mem"
	"nbr/internal/smr/debra"
)

type rec struct{ v uint64 }

func setup(threads int) (*mem.Pool[rec], *debra.Scheme) {
	pool := mem.NewPool[rec](mem.Config{MaxThreads: threads})
	return pool, debra.New(pool, threads)
}

func churn(pool *mem.Pool[rec], s *debra.Scheme, tid, n int) {
	g := s.Guard(tid)
	for i := 0; i < n; i++ {
		g.BeginOp()
		h, _ := pool.Alloc(tid)
		g.Retire(h)
		g.EndOp()
	}
}

func TestRotationReclaims(t *testing.T) {
	pool, s := setup(1)
	churn(pool, s, 0, 100)
	st := s.Stats()
	if st.Freed == 0 || st.Advances == 0 {
		t.Fatalf("rotation never freed: %+v", st)
	}
	if st.Garbage() > 90 {
		t.Fatalf("too much garbage for a single quiescing thread: %+v", st)
	}
}

func TestQuiescentPeerDoesNotBlock(t *testing.T) {
	// A thread that ran once and stopped (announced quiescent via EndOp)
	// must not pin the epoch — DEBRA's advantage over naive EBR.
	pool, s := setup(3)
	churn(pool, s, 1, 1)
	churn(pool, s, 2, 1)
	churn(pool, s, 0, 300)
	if st := s.Stats(); st.Freed == 0 {
		t.Fatalf("quiescent peers pinned the epoch: %+v", st)
	}
}

func TestActivePeerPinsEpoch(t *testing.T) {
	// The delayed-thread vulnerability: an active peer that never finishes
	// its operation stops the epoch, and every thread's bags grow.
	pool, s := setup(2)
	stalled := s.Guard(1)
	stalled.BeginOp() // active, never ends
	churn(pool, s, 0, 64)
	before := s.Stats().Freed
	churn(pool, s, 0, 512)
	after := s.Stats()
	if after.Freed != before {
		t.Fatalf("freed advanced under a pinned epoch (%d -> %d)", before, after.Freed)
	}
	if after.Garbage() < 500 {
		t.Fatalf("bags should grow unboundedly, garbage = %d", after.Garbage())
	}
}

func TestBurstReclamationAfterRecovery(t *testing.T) {
	// When the stalled thread finally quiesces, the accumulated bags free
	// in a burst (the effect the paper blames for DEBRA's fall-off).
	pool, s := setup(2)
	stalled := s.Guard(1)
	stalled.BeginOp()
	churn(pool, s, 0, 600)
	pinned := s.Stats()
	stalled.EndOp()
	churn(pool, s, 1, 1) // let the recovered thread participate
	churn(pool, s, 0, 200)
	after := s.Stats()
	if after.Freed < pinned.Garbage()/2 {
		t.Fatalf("expected a reclamation burst, freed only %d of %d garbage",
			after.Freed, pinned.Garbage())
	}
}

func TestFreedMatchesPool(t *testing.T) {
	pool, s := setup(1)
	churn(pool, s, 0, 200)
	st := s.Stats()
	ps := pool.Stats()
	if uint64(ps.Frees) != st.Freed {
		t.Fatalf("pool frees %d != stats freed %d", ps.Frees, st.Freed)
	}
}

func TestName(t *testing.T) {
	_, s := setup(1)
	if s.Name() != "debra" {
		t.Fatalf("name = %q", s.Name())
	}
}
