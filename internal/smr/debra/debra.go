// Package debra implements Brown's DEBRA (distributed epoch-based
// reclamation), the fastest EBR variant in the paper's comparison and its
// main baseline. The distinguishing features over plain EBR:
//
//   - three per-thread limbo bags rotated on epoch change, so freeing needs
//     no per-record epoch tags;
//   - an amortized epoch advance: each operation start checks exactly one
//     peer, so the scan cost of a grace period is spread over ~n operations;
//   - a quiescent bit in the announcement word so idle threads never block
//     the epoch.
//
// DEBRA does not bound garbage: a stalled thread pins the epoch and every
// thread's bags grow until it recovers, at which point all threads free huge
// bags at once — the "reclamation burst" that contends on the allocator's
// shared free list (the effect the paper blames for DEBRA's fall-off at high
// thread counts).
package debra

import (
	"nbr/internal/mem"
	"nbr/internal/smr"
)

// Scheme is a DEBRA instance.
type Scheme struct {
	arena    mem.Arena
	epoch    smr.Pad64
	announce []smr.Pad64 // epoch<<1 | active bit
	gs       []*guard
	smr.Membership

	// seg is the segment-retirement state: the arena's segment interface and
	// the largest retired segment weight (weighted accounting only — DEBRA's
	// garbage stays unbounded either way).
	seg smr.SegState
}

// New creates a DEBRA scheme for the given arena and thread count.
func New(arena mem.Arena, threads int) *Scheme {
	s := &Scheme{arena: arena, announce: make([]smr.Pad64, threads)}
	s.seg.Init(arena)
	s.InitFixed(threads)
	s.epoch.Store(2)
	for i := range s.announce {
		s.announce[i].Store(2 << 1) // epoch 2, quiescent
	}
	s.gs = make([]*guard, threads)
	for i := range s.gs {
		s.gs[i] = &guard{s: s, tid: i, localE: 2}
	}
	return s
}

// Name implements smr.Scheme.
func (s *Scheme) Name() string { return "debra" }

// Guard implements smr.Scheme.
func (s *Scheme) Guard(tid int) smr.Guard { return s.gs[tid] }

// Stats implements smr.Scheme.
func (s *Scheme) Stats() smr.Stats {
	var st smr.Stats
	for _, g := range s.gs {
		st.Retired += g.retired.Load()
		g.batches.AddTo(&st.BatchHist)
		st.Freed += g.freed.Load()
		st.Advances += g.advances.Load()
		st.Segments += g.segments.Load()
		st.SegRecords += g.segRecords.Load()
	}
	return st
}

// GarbageBound implements smr.Scheme: DEBRA does not bound garbage — a
// stalled thread pins the epoch and every bag grows until it recovers (the
// property-P2 failure E2 demonstrates).
func (s *Scheme) GarbageBound() int { return smr.Unbounded }

// ReclaimBurst implements smr.Scheme: DEBRA's rotation bursts have no
// declared size (bags grow with the grace period), so the allocator keeps
// its default cache sizing.
func (s *Scheme) ReclaimBurst() int { return 0 }

// AttachRegistry implements smr.Member: the amortized epoch scan treats
// inactive slots as quiescent — a departed thread must never pin the epoch
// — and the lease hooks keep announcements and limbo bags coherent across
// slot reuse. Must run before guards are used.
func (s *Scheme) AttachRegistry(r *smr.Registry) {
	s.Join(r, len(s.gs), "debra", s.attachThread)
}

// attachThread readies slot tid for a new leaseholder: adopt the current
// epoch quiescently so the predecessor's announcement cannot pin the epoch
// or trip the next BeginOp's rotation logic.
func (s *Scheme) attachThread(tid int) {
	g := s.gs[tid]
	e := s.epoch.Load()
	g.localE = e
	g.scanAt = 0
	s.announce[tid].Store(e << 1) // current epoch, quiescent
}

// ReclaimAll implements smr.Quiescer: rotate once if the epoch moved,
// freeing any bags past their grace periods. Part of the shared recovery
// path; runs after the slot left the active mask.
func (s *Scheme) ReclaimAll(tid int) {
	g := s.gs[tid]
	if e := s.epoch.Load(); e != g.localE {
		g.rotate(e)
	}
}

// OrphanSurvivors implements smr.Quiescer: orphan everything still in limbo
// — the adopter files the records under its own current epoch, which is at
// least as late as DEBRA would have used, so the two-epoch safety margin is
// preserved.
func (s *Scheme) OrphanSurvivors(tid int) {
	g := s.gs[tid]
	for i := range g.bags {
		if len(g.bags[i]) > 0 {
			s.Reg.AddOrphans(g.bags[i])
			g.bags[i] = g.bags[i][:0]
		}
	}
}

// ResetSlot implements smr.Quiescer: announce tid quiescent at its last
// local epoch so a vacant slot cannot pin the epoch.
func (s *Scheme) ResetSlot(tid int) {
	s.announce[tid].Store(s.gs[tid].localE << 1)
}

// ForceRound implements smr.RoundForcer: one bracketed pass over the active
// threads' epoch announcements. DEBRA's organic reclamation (rotation) is
// not a bracketed scan at all — its grace-period check is amortized one peer
// per operation — so under DEBRA the registry's round clock advances only
// through forced rounds; the collection is the full epoch check a rotation's
// worth of BeginOps performs.
func (s *Scheme) ForceRound() bool {
	return s.Membership.ForceRound(func() {
		e := s.epoch.Load()
		s.ActiveMask.Range(func(i int) {
			v := s.announce[i].Load()
			_ = v
			_ = e
		})
	})
}

// Drain implements smr.Drainer: adopt all orphans into the current bag,
// then attempt one epoch advance and rotation on behalf of tid. At
// quiescence three consecutive calls walk the grace periods forward and
// empty every bag.
func (s *Scheme) Drain(tid int) {
	g := s.gs[tid]
	g.adopt()
	e := s.epoch.Load()
	stuck := false
	s.ActiveMask.Range(func(peer int) {
		if stuck || peer == tid {
			return
		}
		v := s.announce[peer].Load()
		if v&1 != 0 && v>>1 < e {
			stuck = true
		}
	})
	if !stuck && s.epoch.CompareAndSwap(e, e+1) {
		g.advances.Inc()
		e++
	}
	if e != g.localE {
		g.rotate(e)
		s.announce[tid].Store(e << 1)
	}
}

type guard struct {
	s      *Scheme
	tid    int
	localE uint64
	bags   [3][]mem.Ptr
	scanAt int // next peer to check in the amortized scan

	retired    smr.Counter
	batches    smr.BatchHist
	freed      smr.Counter
	advances   smr.Counter
	segments   smr.Counter // segment handles filed (RetireSegment calls)
	segRecords smr.Counter // member records those handles stood for
}

func (g *guard) Tid() int { return g.tid }

// BeginOp is DEBRA's leaveQstate: adopt the current epoch (rotating and
// freeing limbo bags if it moved), announce it with the active bit, and
// advance the amortized one-peer-per-operation epoch scan.
func (g *guard) BeginOp() {
	e := g.s.epoch.Load()
	if e != g.localE {
		g.rotate(e)
	}
	g.s.announce[g.tid].Store(e<<1 | 1)

	peer := g.scanAt
	v := g.s.announce[peer].Load()
	// A peer passes the check when quiescent, caught up to the current
	// epoch, or simply not a member — a departed thread must never pin the
	// epoch (the membership half of dynamic DEBRA).
	if v&1 == 0 || v>>1 >= e || !g.s.ActiveMask.Active(peer) {
		g.scanAt++
		if g.scanAt == len(g.s.announce) {
			g.scanAt = 0
			if g.s.epoch.CompareAndSwap(e, e+1) {
				g.advances.Inc()
			}
		}
	}
}

// EndOp is enterQstate: clear the active bit, keeping the epoch bits.
func (g *guard) EndOp() {
	g.s.announce[g.tid].Store(g.localE << 1)
}

func (g *guard) BeginRead()            {}
func (g *guard) Reserve(int, mem.Ptr)  {}
func (g *guard) EndRead()              {}
func (g *guard) Protect(int, mem.Ptr)  {}
func (g *guard) NeedsValidation() bool { return false }
func (g *guard) OnAlloc(mem.Ptr)       {}

func (g *guard) OnStale(p mem.Ptr) {
	panic("debra: use-after-free detected: " + p.String())
}

// Retire appends to the bag of the epoch current *now* (not at operation
// start): the global epoch may have advanced once mid-operation, and a
// record unlinked under the newer epoch can be held by readers that adopted
// it, so filing it under the stale epoch would shrink the two-epoch safety
// margin to one. Rotation here must not touch the thread's announcement —
// raising it mid-operation would unpin records this operation still holds.
// Freeing happens wholesale at rotation, which is what makes DEBRA fast and
// its reclamation bursty.
func (g *guard) Retire(p mem.Ptr) {
	if e := g.s.epoch.Load(); e != g.localE {
		g.rotate(e)
	}
	g.adopt()
	g.bags[g.localE%3] = append(g.bags[g.localE%3], p.Unmarked())
	g.retired.Inc()
	g.batches.Record(1)
}

// RetireBatch implements smr.Guard: one epoch check (and at most one
// rotation) files the whole batch into the current bag. The epoch is read
// after every record in the batch was unlinked, so no record is filed under
// an epoch older than a per-record Retire loop would have used.
func (g *guard) RetireBatch(ps []mem.Ptr) {
	if len(ps) == 0 {
		return
	}
	if e := g.s.epoch.Load(); e != g.localE {
		g.rotate(e)
	}
	g.adopt()
	bag := &g.bags[g.localE%3]
	for _, p := range ps {
		*bag = append(*bag, p.Unmarked())
	}
	g.retired.Add(uint64(len(ps)))
	g.batches.Record(len(ps))
}

// RetireSegment implements smr.Guard: the handle is filed in the current
// epoch's bag as a single entry standing for its whole member run — one
// epoch check covers all K members instead of K bag entries. DEBRA's
// garbage is unbounded regardless (like RetireBatch, no splitting is
// needed); the rotation burst frees the members through the arena's
// segment fan-out. A handle that is not a live segment degrades to Retire.
func (g *guard) RetireSegment(p mem.Ptr) {
	w := mem.SegWeight(g.s.seg.Arena(), p)
	if w <= 1 {
		g.Retire(p)
		return
	}
	if e := g.s.epoch.Load(); e != g.localE {
		g.rotate(e)
	}
	g.adopt()
	// Note before filing so the rotation burst weighs the handle's run.
	g.s.seg.Note(w)
	g.bags[g.localE%3] = append(g.bags[g.localE%3], p.Unmarked())
	g.retired.Add(uint64(w))
	g.batches.Record(w)
	g.segments.Inc()
	g.segRecords.Add(uint64(w))
}

// rotate adopts epoch e. Records in the bag for epoch e-2 (and older, if the
// epoch jumped by ≥2) are past two grace periods and freed in one burst.
func (g *guard) rotate(e uint64) {
	if e >= g.localE+2 {
		for i := range g.bags {
			g.freeBag(i)
		}
	} else {
		g.freeBag(int((e + 1) % 3)) // == (e-2)%3
	}
	g.localE = e
	g.scanAt = 0 // scan progress was for the previous epoch
}

func (g *guard) freeBag(i int) {
	for _, p := range g.bags[i] {
		// Weigh before Free: freeing a segment handle removes it from the
		// arena's directory.
		w := g.s.seg.Weigh(p)
		g.s.arena.Free(g.tid, p)
		g.freed.Add(uint64(w))
	}
	g.bags[i] = g.bags[i][:0]
}

// adopt pulls every orphaned record into the *current* epoch's bag. The
// epoch is re-read (rotating if it moved) immediately before filing: an
// orphan was retired no later than now, so filing under the freshly read
// epoch e guarantees it is not freed before rotate(e+2) — two full grace
// periods after its retirement. Filing under a stale localE would shrink
// that margin (a drain guard can lag the epoch by ≥2, which would free
// adopted records with no grace period at all). Adopted records were
// already counted as retired.
func (g *guard) adopt() {
	if g.s.HasOrphans() {
		if e := g.s.epoch.Load(); e != g.localE {
			g.rotate(e)
		}
		bag := &g.bags[g.localE%3]
		*bag = g.s.Adopt(*bag, 0)
	}
}

// Garbage reports this guard's current limbo population (test hook).
func (g *guard) Garbage() int {
	return len(g.bags[0]) + len(g.bags[1]) + len(g.bags[2])
}
