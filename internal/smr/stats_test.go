package smr

import "testing"

func TestBatchQuantileNearestRank(t *testing.T) {
	var s Stats
	s.BatchHist[1] = 1  // one handoff of size 1
	s.BatchHist[10] = 1 // one handoff of size ~1000
	if got := s.BatchQuantile(0.50); got != 1 {
		t.Fatalf("p50 of {1, ~1000} = %d, want 1 (nearest rank)", got)
	}
	if got := s.BatchQuantile(0.99); got != bucketUpper(10) {
		t.Fatalf("p99 of {1, ~1000} = %d, want %d", got, bucketUpper(10))
	}
	if got := s.BatchQuantile(0); got != 1 {
		t.Fatalf("p0 = %d, want 1", got)
	}
	if got := s.BatchQuantile(1); got != bucketUpper(10) {
		t.Fatalf("p100 = %d, want %d", got, bucketUpper(10))
	}
	if got := (Stats{}).BatchQuantile(0.5); got != 0 {
		t.Fatalf("empty histogram quantile = %d, want 0", got)
	}
	if got, want := s.RetireCalls(), uint64(2); got != want {
		t.Fatalf("RetireCalls = %d, want %d", got, want)
	}
	if got := s.BatchMax(); got != bucketUpper(10) {
		t.Fatalf("BatchMax = %d, want %d", got, bucketUpper(10))
	}
}

func TestBatchHistRecordBuckets(t *testing.T) {
	var h BatchHist
	h.Record(1)
	h.Record(2)
	h.Record(3)
	h.Record(1 << 20) // saturates into the open-ended top bucket
	var agg [BatchBuckets]uint64
	h.AddTo(&agg)
	if agg[1] != 1 || agg[2] != 2 || agg[BatchBuckets-1] != 1 {
		t.Fatalf("buckets = %v", agg)
	}
}
