package smr

import "nbr/internal/obs"

// This file is the shared quiesce/recovery path. Before it existed, every
// scheme re-implemented the same release choreography in a private detach
// hook: adopt the orphan list, run one full reclamation attempt, orphan the
// survivors, clear the slot's announcements — and the allocator-cache drain
// rode behind it on a second hook. Voluntary Release, panic-unwind release
// and involuntary revocation (the lease watchdog reaping a wedged holder)
// all need exactly that sequence, so it lives here once, owned by the
// Registry, and schemes keep only the scheme-specific residue behind the
// Quiescer interface.

// Quiescer is the scheme-side residue of the recovery path: the three steps
// whose *content* differs per scheme while their order and surroundings are
// protocol. Bind captures it from the bound scheme; a scheme without one
// (leaky) recovers trivially. All three are called with the slot already out
// of the active mask, by whichever goroutine runs the recovery — the owner
// on a voluntary Release, the reaper on a revocation.
type Quiescer interface {
	// ReclaimAll adopts any orphaned records into tid's bags and runs one
	// full reclamation attempt on them (signal+scan, hazard scan, epoch
	// advance+sweep — whatever the scheme's full-strength pass is).
	ReclaimAll(tid int)
	// OrphanSurvivors hands whatever ReclaimAll could not free to the
	// registry's orphan list and empties tid's bags: the records were
	// reserved or pinned by peers mid-release and will be adopted by the
	// next reclaimer DEBRA-style.
	OrphanSurvivors(tid int)
	// ResetSlot clears tid's announcement and guard-local state for the next
	// occupant (the scheme-specific half; signal-state absorption happens in
	// the scheme's acquire hook).
	ResetSlot(tid int)
}

// SlotRevoker is implemented by schemes with a signal channel to a running
// occupant (the NBR family): RevokeSlot posts a sticky revocation so a
// zombie still executing on the slot is killed at its next delivery point
// (sigsim.Revoked) instead of racing its successor. Schemes without delivery
// points rely on the lease-value guard at the public operation layer.
type SlotRevoker interface {
	RevokeSlot(tid int)
}

// runRecovery is the one quiesce path every release flavor converges on:
// the Quiescer residue in protocol order, then the registered side hooks
// (the allocator thread-cache drain), on the calling goroutine. The caller
// has already removed tid from the active mask and owns the slot's
// guard-local state — as the lease holder, or as the reaper of a holder
// that is presumed wedged (see Registry.Revoke for why that is sound).
func (r *Registry) runRecovery(tid int) {
	if q := r.quiescer; q != nil {
		q.ReclaimAll(tid)
		q.OrphanSurvivors(tid)
		q.ResetSlot(tid)
	}
	for _, f := range r.onRelease {
		f(tid)
	}
}

// finishRelease quarantines the slot and fires the after-release hooks (the
// admission baton). Shared tail of Release and Revoke.
func (r *Registry) finishRelease(tid int) {
	r.mu.Lock()
	r.quarantine = append(r.quarantine, quarSlot{tid: tid, round: r.rounds.Load()})
	r.mu.Unlock()
	for _, f := range r.afterRelease {
		f()
	}
}

// Revoke forcibly releases a lease the holder will never return — the
// watchdog's reap path. It returns false (and does nothing) if the lease was
// already released or revoked. On success the slot leaves the active mask, a
// sticky revocation is posted through the scheme's signal machinery when it
// has one (SlotRevoker), the shared recovery path runs on the CALLER's
// goroutine, and the slot enters quarantine, handing the admission baton to
// the next waiter.
//
// Safety of reaping a holder that may still be running: (1) the lease value
// is revoked first, so the zombie's own late Release is a counted no-op and
// can never evict a successor; (2) for signal-capable schemes the zombie is
// killed at its next delivery point; for the rest, the public layer checks
// the lease's revoked flag on every operation entry; (3) the slot then ages
// through the same quarantine as any release, so in-flight scans that
// snapshotted the zombie expire before reuse. What revocation cannot do is
// interrupt a zombie blocked *inside* a shared-record access — the real
// paper uses an OS signal there; the simulation's contract is that a
// reaped holder is genuinely wedged (or killed at a delivery point), which
// the watchdog's deadline expresses.
func (r *Registry) Revoke(l *Lease) bool {
	if l.reg != r {
		panic("smr: Revoke with a lease from a different registry")
	}
	if l.released.Swap(true) {
		// Lost to a voluntary Release (or a duplicate Revoke): that path
		// owns the slot's recovery; nothing to do.
		return false
	}
	l.revoked.Store(true)
	r.active.Clear(l.tid)
	if r.rec.Enabled() {
		r.rec.ObserveSince(obs.HistLeaseHold, l.start)
		r.rec.Sys(obs.EvRevoke, uint64(l.tid))
	}
	if rv := r.revoker; rv != nil {
		rv.RevokeSlot(l.tid)
	}
	r.runRecovery(l.tid)
	r.reaped.Add(1)
	r.finishRelease(l.tid)
	return true
}

// ReapedLeases returns how many leases were involuntarily revoked (Revoke
// succeeded).
func (r *Registry) ReapedLeases() uint64 { return r.reaped.Load() }

// RevokedReleases returns how many Release calls arrived on an
// already-revoked lease — the zombie's late release, counted to prove the
// distinct-lease-value guard made it a harmless no-op.
func (r *Registry) RevokedReleases() uint64 { return r.revokedReleases.Load() }

// OrphansAdopted returns how many orphaned records reclaimers have adopted
// from the registry's list over its lifetime.
func (r *Registry) OrphansAdopted() uint64 { return r.orphans.adopted.Load() }
