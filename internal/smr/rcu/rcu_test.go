package rcu_test

import (
	"testing"

	"nbr/internal/mem"
	"nbr/internal/smr/rcu"
)

type rec struct{ v uint64 }

func setup(threads, threshold int) (*mem.Pool[rec], *rcu.Scheme) {
	pool := mem.NewPool[rec](mem.Config{MaxThreads: threads})
	return pool, rcu.New(pool, threads, rcu.Config{Threshold: threshold})
}

func churn(pool *mem.Pool[rec], s *rcu.Scheme, tid, n int) {
	g := s.Guard(tid)
	for i := 0; i < n; i++ {
		g.BeginOp()
		h, _ := pool.Alloc(tid)
		g.Retire(h)
		g.EndOp()
	}
}

func TestIdlePeersDoNotBlock(t *testing.T) {
	// Unlike QSBR, a registered thread that never runs an operation is
	// announced idle and must not stall reclamation.
	pool, s := setup(4, 8)
	churn(pool, s, 0, 200)
	if st := s.Stats(); st.Freed == 0 {
		t.Fatalf("idle peers blocked reclamation: %+v", st)
	}
}

func TestActiveReaderBlocksReclamation(t *testing.T) {
	pool, s := setup(2, 8)
	reader := s.Guard(1)
	reader.BeginOp() // in a critical section, never leaves
	churn(pool, s, 0, 64)
	before := s.Stats().Freed
	churn(pool, s, 0, 256)
	if after := s.Stats().Freed; after != before {
		t.Fatalf("freed records while a reader was in a critical section (%d -> %d)", before, after)
	}
	reader.EndOp()
	churn(pool, s, 0, 256)
	if after := s.Stats().Freed; after == before {
		t.Fatal("no reclamation after the reader left")
	}
}

func TestRecordsRetiredDuringReaderStayLive(t *testing.T) {
	pool, s := setup(2, 4)
	reader := s.Guard(1)
	reader.BeginOp()
	g := s.Guard(0)
	var hs []mem.Ptr
	for i := 0; i < 32; i++ {
		g.BeginOp()
		h, _ := pool.Alloc(0)
		g.Retire(h)
		hs = append(hs, h)
		g.EndOp()
	}
	for _, h := range hs {
		if !pool.Valid(h) {
			t.Fatal("record freed while a concurrent reader could still hold it")
		}
	}
	reader.EndOp()
}

func TestEpochAdvances(t *testing.T) {
	pool, s := setup(1, 4)
	churn(pool, s, 0, 100)
	if st := s.Stats(); st.Advances == 0 {
		t.Fatalf("epoch never advanced: %+v", st)
	}
}

func TestName(t *testing.T) {
	_, s := setup(1, 4)
	if s.Name() != "rcu" {
		t.Fatalf("name = %q", s.Name())
	}
}
