package hp_test

import (
	"testing"

	"nbr/internal/mem"
	"nbr/internal/smr/hp"
)

type rec struct{ v uint64 }

func setup(threads int, cfg hp.Config) (*mem.Pool[rec], *hp.Scheme) {
	pool := mem.NewPool[rec](mem.Config{MaxThreads: threads})
	return pool, hp.New(pool, threads, cfg)
}

func TestProtectBlocksFree(t *testing.T) {
	pool, s := setup(2, hp.Config{Threshold: 16})
	g0, g1 := s.Guard(0), s.Guard(1)

	target, _ := pool.Alloc(1)
	g1.BeginOp()
	g1.Protect(0, target)

	g0.Retire(target)
	for i := 0; i < 64; i++ { // force several scans
		h, _ := pool.Alloc(0)
		g0.Retire(h)
	}
	if !pool.Valid(target) {
		t.Fatal("announced record was freed")
	}
	g1.EndOp() // releases the hazard pointer
	for i := 0; i < 64; i++ {
		h, _ := pool.Alloc(0)
		g0.Retire(h)
	}
	if pool.Valid(target) {
		t.Fatal("record not freed after the hazard pointer was released")
	}
}

func TestMarkedHandlesMatch(t *testing.T) {
	// Announcements and retirements strip the mark bit, so a Harris-style
	// marked retire cannot bypass an unmarked announcement.
	pool, s := setup(2, hp.Config{Threshold: 16})
	g0, g1 := s.Guard(0), s.Guard(1)
	target, _ := pool.Alloc(1)
	g1.Protect(0, target)
	g0.Retire(target.WithMark())
	for i := 0; i < 64; i++ {
		h, _ := pool.Alloc(0)
		g0.Retire(h)
	}
	if !pool.Valid(target) {
		t.Fatal("marked retire bypassed the announcement")
	}
}

func TestScanThreshold(t *testing.T) {
	pool, s := setup(1, hp.Config{Threshold: 32})
	g := s.Guard(0)
	for i := 0; i < 31; i++ {
		h, _ := pool.Alloc(0)
		g.Retire(h)
	}
	if st := s.Stats(); st.Scans != 0 || st.Freed != 0 {
		t.Fatalf("scan before threshold: %+v", st)
	}
	h, _ := pool.Alloc(0)
	g.Retire(h)
	if st := s.Stats(); st.Scans != 1 || st.Freed != 32 {
		t.Fatalf("threshold scan wrong: %+v", st)
	}
}

func TestSlotReuseUnprotectsPrevious(t *testing.T) {
	pool, s := setup(2, hp.Config{Threshold: 8})
	g0, g1 := s.Guard(0), s.Guard(1)
	a, _ := pool.Alloc(1)
	b, _ := pool.Alloc(1)
	g1.Protect(0, a)
	g1.Protect(0, b) // overwrites the announcement for a
	g0.Retire(a)
	for i := 0; i < 16; i++ {
		h, _ := pool.Alloc(0)
		g0.Retire(h)
	}
	if pool.Valid(a) {
		t.Fatal("record stayed live after its slot was reused")
	}
	if !pool.Valid(b) {
		t.Fatal("currently announced record was freed")
	}
}

func TestSlotOutOfRangePanics(t *testing.T) {
	pool, s := setup(1, hp.Config{Slots: 2})
	h, _ := pool.Alloc(0)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range slot must panic")
		}
	}()
	s.Guard(0).Protect(2, h)
}

func TestNeedsValidation(t *testing.T) {
	_, s := setup(1, hp.Config{})
	if !s.Guard(0).NeedsValidation() {
		t.Fatal("hazard pointers require link validation")
	}
	if s.Name() != "hp" {
		t.Fatalf("name = %q", s.Name())
	}
}

func TestGarbageBounded(t *testing.T) {
	// With K slots per thread, at most N·K records can be protected, so
	// garbage never exceeds threshold + N·K per thread.
	pool, s := setup(4, hp.Config{Slots: 4, Threshold: 64})
	g := s.Guard(0)
	for tid := 1; tid < 4; tid++ {
		peer := s.Guard(tid)
		for slot := 0; slot < 4; slot++ {
			h, _ := pool.Alloc(tid)
			peer.Protect(slot, h)
			g.Retire(h)
		}
	}
	for i := 0; i < 4096; i++ {
		h, _ := pool.Alloc(0)
		g.Retire(h)
	}
	if garbage := s.Stats().Garbage(); garbage > 64+16 {
		t.Fatalf("garbage %d exceeds the HP bound", garbage)
	}
}
