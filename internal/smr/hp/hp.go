// Package hp implements Michael's hazard pointers. Before dereferencing a
// record, a thread announces its handle in one of K single-writer slots with
// a sequentially consistent store (the mfence/xchg the paper charges HP for)
// and then re-reads the link it came from to validate the record is still
// reachable (NeedsValidation). Retired records are buffered and freed by
// scanning all announcements once the buffer exceeds a threshold
// proportional to N·K, which bounds garbage at Θ(N²K) system-wide — property
// P2 at the price of per-record fencing (opposing P1, as the paper's list
// experiments show).
package hp

import (
	"sync"

	"nbr/internal/mem"
	"nbr/internal/smr"
)

// Config tunes the scheme.
type Config struct {
	// Slots is the number of hazard-pointer slots per thread. Default 8.
	Slots int
	// Threshold is the per-thread retire-buffer size that triggers a scan;
	// it must exceed the number of records all threads can protect. Default
	// max(64, 2·N·Slots).
	Threshold int
}

func (c Config) withDefaults(threads int) Config {
	if c.Slots <= 0 {
		c.Slots = 8
	}
	if c.Threshold <= 0 {
		c.Threshold = 2 * threads * c.Slots
		if c.Threshold < 64 {
			c.Threshold = 64
		}
	}
	return c
}

// Scheme is a hazard-pointer instance.
type Scheme struct {
	arena mem.Arena
	cfg   Config
	slots []smr.Pad64 // N*K announcement slots
	gs    []*guard
	smr.Membership

	// forceScan is the ForceRound collection scratch, serialized by forceMu.
	forceMu   sync.Mutex
	forceScan smr.ScanSet

	// seg is the segment-retirement state: the arena's segment interface and
	// the largest retired segment weight, which scales the declared bound.
	seg smr.SegState
}

// New creates a hazard-pointer scheme for the given arena and thread count.
func New(arena mem.Arena, threads int, cfg Config) *Scheme {
	s := &Scheme{arena: arena, cfg: cfg.withDefaults(threads)}
	s.seg.Init(arena)
	s.InitFixed(threads)
	s.slots = make([]smr.Pad64, threads*s.cfg.Slots)
	s.forceScan = smr.NewScanSet(threads * s.cfg.Slots)
	s.gs = make([]*guard, threads)
	for i := range s.gs {
		s.gs[i] = &guard{
			s: s, tid: i, hiSlot: -1,
			scan:      smr.NewScanSet(threads * s.cfg.Slots),
			freeables: make([]mem.Ptr, 0, s.cfg.Threshold),
		}
	}
	return s
}

// Name implements smr.Scheme.
func (s *Scheme) Name() string { return "hp" }

// Guard implements smr.Scheme.
func (s *Scheme) Guard(tid int) smr.Guard { return s.gs[tid] }

// Stats implements smr.Scheme.
func (s *Scheme) Stats() smr.Stats {
	var st smr.Stats
	for _, g := range s.gs {
		st.Retired += g.retired.Load()
		g.batches.AddTo(&st.BatchHist)
		st.Freed += g.freed.Load()
		st.Scans += g.scans.Load()
		st.Segments += g.segments.Load()
		st.SegRecords += g.segRecords.Load()
	}
	return st
}

// GarbageBound implements smr.Scheme: each thread's retire buffer scans at
// the threshold (measured in record weight — a segment handle counts its
// whole member run) and a scan leaves at most N·K protected survivors, so
// the system-wide garbage never exceeds N·(Threshold + (N·K+1)·segW) — the
// Θ(N²K) bound property P2 charges hazard pointers for. The +1 is the one
// in-flight RetireSegment append per thread: identity-based hazards forbid
// carving an announced handle (see RetireSegment), so a whole segment of up
// to segW records can land in one append before the post-append scan fires.
// Added on top is the orphan allowance: up to N concurrently departing
// threads can each strand one protected survivor set (≤ N·K entries, each
// worth up to segW records) on the orphan list before the next scan adopts
// it. segW is 1 until the first RetireSegment lands and monotone afterwards,
// preserving the contract.
func (s *Scheme) GarbageBound() int {
	n := len(s.gs)
	segW := s.seg.MaxWeight()
	if segW < 1 {
		segW = 1
	}
	return n*(s.cfg.Threshold+(n*s.cfg.Slots+1)*segW) + n*n*s.cfg.Slots*segW
}

// ReclaimBurst implements smr.Scheme: a scan frees at most one full retire
// buffer at once.
func (s *Scheme) ReclaimBurst() int { return s.cfg.Threshold }

// AttachRegistry implements smr.Member: adopt the registry's active mask for
// hazard scans and register the lease hooks. Must run before guards are used.
func (s *Scheme) AttachRegistry(r *smr.Registry) {
	s.Join(r, len(s.gs), "hp", s.attachThread)
}

// attachThread clears slot tid's hazard announcements for a new leaseholder.
func (s *Scheme) attachThread(tid int) {
	for i := 0; i < s.cfg.Slots; i++ {
		s.slot(tid, i).Store(0)
	}
	s.gs[tid].hiSlot = -1
}

// ReclaimAll implements smr.Quiescer: adopt previously orphaned records and
// scan once over everything. Part of the shared recovery path; runs after
// the slot left the active mask.
func (s *Scheme) ReclaimAll(tid int) {
	g := s.gs[tid]
	g.adopt(0)
	if len(g.bag) > 0 {
		g.doScan()
	}
}

// OrphanSurvivors implements smr.Quiescer: orphan the protected survivors
// (≤ N·K) for the next reclaimer to adopt.
func (s *Scheme) OrphanSurvivors(tid int) {
	g := s.gs[tid]
	if len(g.bag) > 0 {
		s.Reg.AddOrphans(g.bag)
		g.bag = g.bag[:0]
		g.bagW = 0
	}
}

// ResetSlot implements smr.Quiescer: clear tid's hazard announcements.
func (s *Scheme) ResetSlot(tid int) { s.attachThread(tid) }

// ForceRound implements smr.RoundForcer: one bracketed hazard collection
// over the active mask — doScan's snapshot without the sweep — advancing
// the registry's quarantine clock on demand.
func (s *Scheme) ForceRound() bool {
	s.forceMu.Lock()
	defer s.forceMu.Unlock()
	return s.Membership.ForceRound(func() {
		s.forceScan.CollectRows(s.slots, s.cfg.Slots, s.ActiveMask)
	})
}

// Drain implements smr.Drainer: adopt all orphans and scan on behalf of tid.
func (s *Scheme) Drain(tid int) {
	g := s.gs[tid]
	g.adopt(0)
	if len(g.bag) > 0 {
		g.doScan()
	}
}

func (s *Scheme) slot(tid, i int) *smr.Pad64 { return &s.slots[tid*s.cfg.Slots+i] }

type guard struct {
	s         *Scheme
	tid       int
	hiSlot int
	bag    []mem.Ptr
	// bagW is the buffer's record weight: len(bag) until a segment handle
	// lands, after which each handle counts its member run. The scan
	// threshold compares against bagW so the bound counts every member.
	bagW      int
	scan      smr.ScanSet // scan scratch, reused
	freeables []mem.Ptr   // scan scratch: the batch handed to FreeBatch

	retired    smr.Counter
	batches    smr.BatchHist
	freed      smr.Counter
	scans      smr.Counter
	segments   smr.Counter // segment handles bagged (RetireSegment pieces)
	segRecords smr.Counter // member records those handles stood for
}

func (g *guard) Tid() int { return g.tid }

func (g *guard) BeginOp() {}

// EndOp releases every hazard pointer the operation announced (Fig. 2c's
// unprotect-on-return).
func (g *guard) EndOp() {
	for i := 0; i <= g.hiSlot; i++ {
		g.s.slot(g.tid, i).Store(0)
	}
	g.hiSlot = -1
}

func (g *guard) BeginRead()           {}
func (g *guard) Reserve(int, mem.Ptr) {}
func (g *guard) EndRead()             {}

// Protect announces p in the slot. The store is sequentially consistent
// (Go's atomic store; an XCHG on x86-64), so a reclaimer scanning after
// retiring p either sees the announcement or the announcing thread's
// subsequent link validation sees the unlink — the standard HP argument.
func (g *guard) Protect(slot int, p mem.Ptr) {
	if slot >= g.s.cfg.Slots {
		panic("hp: slot out of range")
	}
	if slot > g.hiSlot {
		g.hiSlot = slot
	}
	g.s.slot(g.tid, slot).Store(uint64(p.Unmarked()))
}

func (g *guard) NeedsValidation() bool { return true }
func (g *guard) OnAlloc(mem.Ptr)       {}

func (g *guard) OnStale(p mem.Ptr) {
	panic("hp: use-after-free detected (validation raced a free): " + p.String())
}

func (g *guard) Retire(p mem.Ptr) {
	g.bag = append(g.bag, p.Unmarked())
	g.bagW++
	g.retired.Inc()
	g.batches.Record(1)
	if g.bagW >= g.s.cfg.Threshold {
		g.doScan()
	}
}

// RetireBatch implements smr.Guard: the batch lands in the buffer in chunks
// that fill it exactly to the scan threshold, so the whole unlink pays one
// threshold check per threshold's worth of records (not one per record) and
// a single splice can never stretch the buffer — and the garbage bound —
// beyond Threshold plus the protected survivors. The scan trigger points
// are exactly the ones a per-record Retire loop would hit, so splitting is
// observationally equivalent to the loop.
func (g *guard) RetireBatch(ps []mem.Ptr) {
	if len(ps) == 0 {
		return
	}
	g.batches.Record(len(ps))
	for len(ps) > 0 {
		take := smr.RetireChunk(g.s.cfg.Threshold, g.bagW, len(ps))
		for _, p := range ps[:take] {
			g.bag = append(g.bag, p.Unmarked())
		}
		g.bagW += take
		g.retired.Add(uint64(take))
		ps = ps[take:]
		if g.bagW >= g.s.cfg.Threshold {
			g.doScan()
		}
	}
}

// RetireSegment implements smr.Guard: the handle lands in the buffer as a
// single entry standing for its whole member run — one bag append and one
// hazard-scan participation for K unlinked records — while the threshold
// check runs against the buffer's record weight. The handle is never carved:
// hazard protection is by handle identity (readers announce *this* handle,
// and doScan matches bag entries against announcements by that identity), so
// a carved prefix's fresh head handle would appear in no announcement and
// its member cells would be freed under a reader the original handle's
// hazard still covers. An oversized segment therefore lands whole — a
// one-append overshoot the bound's segment-weight term absorbs (see
// GarbageBound) — and the post-append scan drains it. A handle that is not a
// live segment degrades to Retire.
func (g *guard) RetireSegment(p mem.Ptr) {
	w := mem.SegWeight(g.s.seg.Arena(), p)
	if w <= 1 {
		g.Retire(p)
		return
	}
	// Note before bagging: a concurrent GarbageBound reader must never
	// see segment garbage under a pre-segment (or lighter) bound.
	g.s.seg.Note(w)
	g.bag = append(g.bag, p.Unmarked())
	g.bagW += w
	g.retired.Add(uint64(w))
	g.batches.Record(w)
	g.segments.Inc()
	g.segRecords.Add(uint64(w))
	if g.bagW >= g.s.cfg.Threshold {
		g.doScan()
	}
}

// doScan collects every active thread's announcements into the flat sorted
// scratch and frees the unprotected remainder of the bag in one FreeBatch
// call — zero heap allocations and one free-list interaction per scan. Any
// orphaned records are adopted first, so departed threads' garbage rides the
// same sweep.
func (g *guard) doScan() {
	g.adopt(g.s.cfg.Threshold)
	g.scans.Inc()
	if r := g.s.Reg; r != nil {
		r.BeginScan()
		defer r.EndScan()
	}
	g.scan.CollectRows(g.s.slots, g.s.cfg.Slots, g.s.ActiveMask)
	var freedW int
	g.bag, g.freeables, freedW, g.bagW = g.scan.SweepBagSeg(
		g.s.arena, g.s.seg.Active(), g.tid, g.bag, len(g.bag), g.freeables)
	g.freed.Add(uint64(freedW))
}

// adopt pulls up to max (all when max <= 0) orphaned records into the bag.
func (g *guard) adopt(max int) {
	n := len(g.bag)
	g.bag = g.s.Adopt(g.bag, max)
	g.bagW += g.s.seg.WeighAll(g.bag[n:])
}
