package smr

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"nbr/internal/mem"
)

func TestRegistryAcquireRelease(t *testing.T) {
	r := NewRegistry(4)
	if r.MaxThreads() != 4 {
		t.Fatalf("MaxThreads = %d", r.MaxThreads())
	}
	l, err := r.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	if l.Tid() != 0 {
		t.Fatalf("first lease tid = %d, want 0 (fresh slots hand out in order)", l.Tid())
	}
	if !r.Active().Active(0) {
		t.Fatal("leased slot must be active")
	}
	l.Release()
	if r.Active().Active(0) {
		t.Fatal("released slot must leave the active mask")
	}
	l.Release() // idempotent
	if got := r.Active().Count(); got != 0 {
		t.Fatalf("active count = %d after double release", got)
	}
}

func TestRegistryExhaustionAndQuarantineAging(t *testing.T) {
	r := NewRegistry(2)
	a, _ := r.Acquire()
	b, _ := r.Acquire()
	if _, err := r.Acquire(); !errors.Is(err, ErrRegistryFull) {
		t.Fatalf("want ErrRegistryFull, got %v", err)
	}
	a.Release()

	// With no scan in flight there can be no snapshot of the slot's
	// previous occupant, so the quarantined slot is served immediately.
	c, err := r.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	if c.Tid() != a.Tid() {
		t.Fatalf("acquire reused tid %d, want quarantined %d", c.Tid(), a.Tid())
	}
	c.Release()

	// A mid-flight scan blocks reuse of an un-aged slot: the scan could
	// still hold the predecessor's state.
	r.BeginScan()
	if _, err := r.Acquire(); !errors.Is(err, ErrRegistryFull) {
		t.Fatalf("un-aged slot served under a live scanner: %v", err)
	}
	// Once enough rounds complete the slot is aged and reusable even with
	// a scanner still running.
	for i := 0; i < quarantineRounds; i++ {
		r.NoteRound()
	}
	d, err := r.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	if d.Tid() != c.Tid() {
		t.Fatalf("aged acquire handed tid %d, want oldest quarantined %d", d.Tid(), c.Tid())
	}
	r.EndScan()
	d.Release()
	b.Release()
}

// TestRegistryDuplicateReleaseCannotRevokeSuccessor pins the per-acquire
// lease identity: a stale duplicate Release from a previous holder must not
// deactivate the slot's next occupant.
func TestRegistryDuplicateReleaseCannotRevokeSuccessor(t *testing.T) {
	r := NewRegistry(1)
	old, _ := r.Acquire()
	old.Release()
	cur, err := r.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	old.Release() // stale duplicate from the previous holder
	if !r.Active().Active(cur.Tid()) {
		t.Fatal("stale Release revoked the successor's live lease")
	}
	cur.Release()
	if r.Active().Active(cur.Tid()) {
		t.Fatal("owner's Release did not deactivate the slot")
	}
}

func TestRegistryHookOrderAndThreading(t *testing.T) {
	r := NewRegistry(1)
	var order []string
	r.OnAcquire(func(tid int) { order = append(order, "acquire") })
	r.OnRelease(func(tid int) { order = append(order, "release-a") })
	r.OnRelease(func(tid int) { order = append(order, "release-b") })
	l, _ := r.Acquire()
	l.Release()
	want := []string{"acquire", "release-a", "release-b"}
	if len(order) != len(want) {
		t.Fatalf("hooks ran %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("hooks ran %v, want %v (registration order)", order, want)
		}
	}
}

func TestRegistryOrphans(t *testing.T) {
	r := NewRegistry(2)
	ps := []mem.Ptr{2, 4, 6, 8, 10}
	r.AddOrphans(ps)
	if r.OrphanCount() != 5 {
		t.Fatalf("orphan count = %d", r.OrphanCount())
	}
	got := r.AdoptOrphans(nil, 2)
	if len(got) != 2 || r.OrphanCount() != 3 {
		t.Fatalf("capped adoption took %d, %d left", len(got), r.OrphanCount())
	}
	got = r.AdoptOrphans(got[:0], 0)
	if len(got) != 3 || r.OrphanCount() != 0 {
		t.Fatalf("full adoption took %d, %d left", len(got), r.OrphanCount())
	}
	r.AddOrphans(nil) // no-op
	if r.OrphanCount() != 0 {
		t.Fatal("empty AddOrphans must not disturb the count")
	}
}

// TestRegistryNoAliasingUnderChurn hammers concurrent acquire/release and
// asserts no tid is ever held by two goroutines at once.
func TestRegistryNoAliasingUnderChurn(t *testing.T) {
	const slots, workers, rounds = 4, 16, 300
	r := NewRegistry(slots)
	var owners [slots]atomic.Int32
	var aliased atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				l, err := r.Acquire()
				if err != nil {
					r.NoteRound() // stand in for reclaim traffic aging slots
					continue
				}
				if owners[l.Tid()].Add(1) != 1 {
					aliased.Store(true)
				}
				owners[l.Tid()].Add(-1)
				l.Release()
			}
		}()
	}
	wg.Wait()
	if aliased.Load() {
		t.Fatal("a tid was leased to two goroutines at once")
	}
	if got := r.Active().Count(); got != 0 {
		t.Fatalf("active count = %d at quiescence", got)
	}
}
