package smr

import (
	"slices"

	"nbr/internal/mem"
	"nbr/internal/sigsim"
)

// ScanSet is the reclaim-path membership set shared by every scheme that
// scans announcement slots (NBR reservations, hazard pointers). The obvious
// implementation — rebuild a map[Ptr]struct{} per scan — allocates buckets
// and hashes every entry on the hottest path in the repo. A scan only ever
// holds N·R small integers, so a flat slice collected in one pass and sorted
// once beats the map on every axis: zero allocations after warm-up, no
// hashing, and binary-search membership over a cache-resident array.
//
// A ScanSet is single-threaded scratch owned by one guard and reused across
// scans; Collect snapshots the slots with the same atomic loads the map
// version performed.
type ScanSet struct {
	vals []uint64
}

// NewScanSet returns a set pre-sized for capacity entries, so that steady
// state scans never grow the backing array.
func NewScanSet(capacity int) ScanSet {
	return ScanSet{vals: make([]uint64, 0, capacity)}
}

// Collect snapshots every non-zero slot value and sorts the result. It
// replaces the set's previous contents.
func (s *ScanSet) Collect(slots []Pad64) {
	s.vals = s.vals[:0]
	for i := range slots {
		if v := slots[i].Load(); v != 0 {
			s.vals = append(s.vals, v)
		}
	}
	slices.Sort(s.vals)
}

// CollectRows snapshots the announcement rows of every *active* thread —
// slots is the flat N·width array, row tid at [tid·width, (tid+1)·width) —
// and sorts the result, replacing the set's previous contents. It is the
// dynamic-membership form of Collect: scan cost is proportional to live
// threads, and with a full mask it loads exactly the slots Collect would.
// Skipping an inactive row is safe because a thread is only inactive while
// outside operations (no live announcements), and a thread that activates
// after this snapshot cannot reach records that were unlinked before it
// activated.
func (s *ScanSet) CollectRows(slots []Pad64, width int, active *sigsim.ActiveSet) {
	s.vals = s.vals[:0]
	active.Range(func(tid int) {
		row := slots[tid*width : (tid+1)*width]
		for i := range row {
			if v := row[i].Load(); v != 0 {
				s.vals = append(s.vals, v)
			}
		}
	})
	slices.Sort(s.vals)
}

// Contains reports whether v was present when Collect snapshotted the slots.
func (s *ScanSet) Contains(v uint64) bool {
	_, ok := slices.BinarySearch(s.vals, v)
	return ok
}

// Len returns the number of collected entries.
func (s *ScanSet) Len() int { return len(s.vals) }

// SweepBag is the shared reclaim sweep: it partitions bag[:upto] into
// survivors (records present in the set) and a batch freed through one
// arena.FreeBatch call, compacting the bag in place. scratch is the caller's
// reusable batch buffer. It returns the compacted bag, the emptied scratch
// (possibly regrown), and the number of records freed.
func (s *ScanSet) SweepBag(arena mem.Arena, tid int, bag []mem.Ptr, upto int, scratch []mem.Ptr) ([]mem.Ptr, []mem.Ptr, int) {
	kept := bag[:0]
	batch := scratch[:0]
	for _, p := range bag[:upto] {
		if s.Contains(uint64(p)) {
			kept = append(kept, p)
		} else {
			batch = append(batch, p)
		}
	}
	kept = append(kept, bag[upto:]...)
	// A fruitless scan (every record reserved) must not touch the arena at
	// all — the free path is the allocator's contended side, and an empty
	// hand-off would still pay the interface call and its batch bookkeeping
	// on every scan that found nothing.
	if len(batch) > 0 {
		arena.FreeBatch(tid, batch)
	}
	return kept, batch[:0], len(batch)
}

// SweepBagSeg is SweepBag with segment-weighted accounting: each bag entry
// counts its mem.SegWeight records (a segment handle stands for its whole
// member run), and the sweep reports the freed and surviving weights so
// weighted watermark checks stay exact. A nil segs means no segment can be
// in the bag; every entry then weighs 1 and no directory probe is paid —
// callers gate on their scheme-level "has segments" flag and pass nil on the
// common path.
func (s *ScanSet) SweepBagSeg(arena mem.Arena, segs mem.SegmentArena, tid int, bag []mem.Ptr, upto int, scratch []mem.Ptr) (keptBag, scr []mem.Ptr, freedW, keptW int) {
	if segs == nil {
		kept, scr, freed := s.SweepBag(arena, tid, bag, upto, scratch)
		return kept, scr, freed, len(kept)
	}
	kept := bag[:0]
	batch := scratch[:0]
	for _, p := range bag[:upto] {
		if s.Contains(uint64(p)) {
			kept = append(kept, p)
			keptW += mem.SegWeight(segs, p)
		} else {
			batch = append(batch, p)
			freedW += mem.SegWeight(segs, p)
		}
	}
	for _, p := range bag[upto:] {
		kept = append(kept, p)
		keptW += mem.SegWeight(segs, p)
	}
	// The weights must be read before FreeBatch: freeing a segment handle
	// removes it from the arena's directory.
	if len(batch) > 0 {
		arena.FreeBatch(tid, batch)
	}
	return kept, batch[:0], freedW, keptW
}
