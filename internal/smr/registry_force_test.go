package smr

import (
	"errors"
	"sync"
	"testing"
)

// fakeForcer stands in for a scheme's RoundForcer: each forced round is a
// bracketed no-op collection, exactly what Membership.ForceRound produces.
type fakeForcer struct {
	r     *Registry
	mu    sync.Mutex
	calls int
}

func (f *fakeForcer) force() bool {
	f.mu.Lock()
	f.calls++
	f.mu.Unlock()
	f.r.BeginScan()
	f.r.EndScan()
	return true
}

// TestRegistryFallbackWithoutForcer pins the pre-forced-round behaviour the
// regression fixes: with no RoundForcer bound and churn outrunning scan
// rounds, the registry reuses the oldest quarantined slot on the no-scanner
// proof — safe, but the two-round guarantee lapses, which FallbackReuses
// now makes observable.
func TestRegistryFallbackWithoutForcer(t *testing.T) {
	r := NewRegistry(1)
	l, _ := r.Acquire()
	l.Release()
	// No rounds have completed: the quarantine head has not aged, no scan is
	// in flight, no forcer is bound → the fallback path must serve it.
	l2, err := r.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	if got := r.FallbackReuses(); got != 1 {
		t.Fatalf("FallbackReuses = %d, want 1 (the un-aged head was served on the no-scanner proof)", got)
	}
	if r.ForcedRounds() != 0 {
		t.Fatalf("ForcedRounds = %d with no forcer bound", r.ForcedRounds())
	}
	l2.Release()
}

// TestRegistryForcedRoundsAgeQuarantine is the regression test for the
// quarantine fallback: with a RoundForcer bound, an Acquire that finds the
// quarantine head un-aged forces the missing rounds itself and never
// reaches the fallback — the round guarantee holds unconditionally, even
// with another scan mid-flight (the case that used to return
// ErrRegistryFull until the scan finished).
func TestRegistryForcedRoundsAgeQuarantine(t *testing.T) {
	r := NewRegistry(1)
	f := &fakeForcer{r: r}
	r.SetForceRound(f.force)

	l, _ := r.Acquire()
	l.Release()

	// Case 1: churn outran scans (no rounds since release, no scan in
	// flight). Previously the fallback served this; now forced rounds age
	// the head first.
	l2, err := r.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	if r.FallbackReuses() != 0 {
		t.Fatalf("FallbackReuses = %d, want 0 (forced rounds must preempt the fallback)", r.FallbackReuses())
	}
	if got := r.ForcedRounds(); got != quarantineRounds {
		t.Fatalf("ForcedRounds = %d, want %d", got, quarantineRounds)
	}
	l2.Release()

	// Case 2: a scan is mid-flight and the head is freshly quarantined —
	// the configuration that used to refuse with ErrRegistryFull outright.
	// Forced rounds complete independently of the stalled scan, so the
	// head ages and the acquire succeeds without the fallback.
	r.BeginScan()
	l3, err := r.Acquire()
	if err != nil {
		t.Fatalf("acquire under a live scanner with a forcer bound: %v", err)
	}
	if r.FallbackReuses() != 0 {
		t.Fatalf("FallbackReuses = %d, want 0", r.FallbackReuses())
	}
	r.EndScan()
	l3.Release()
}

// TestRegistryForcerFailureFallsBack pins the "only fall back if ForceRound
// cannot complete" ordering: a forcer that reports failure (e.g. fixed-N
// mode) must not mask the no-scanner fallback, and the scan-in-flight
// refusal must survive it.
func TestRegistryForcerFailureFallsBack(t *testing.T) {
	r := NewRegistry(1)
	r.SetForceRound(func() bool { return false })

	l, _ := r.Acquire()
	l.Release()
	// Forcer fails, but no scan is in flight: the fallback serves the head.
	l2, err := r.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	if r.FallbackReuses() != 1 {
		t.Fatalf("FallbackReuses = %d, want 1", r.FallbackReuses())
	}
	l2.Release()

	// Forcer fails and a scan is in flight: nothing can prove the head safe.
	r.BeginScan()
	if _, err := r.Acquire(); !errors.Is(err, ErrRegistryFull) {
		t.Fatalf("want ErrRegistryFull, got %v", err)
	}
	r.EndScan()
}
