// Package smr defines the interface between concurrent data structures and
// safe-memory-reclamation schemes, mirroring the role of setbench's
// record_manager in the paper's evaluation.
//
// A data-structure operation runs inside Execute, which brackets it with
// BeginOp/EndOp and re-runs the body whenever the NBR schemes neutralize the
// thread (the siglongjmp analogue). Within the body the data structure:
//
//   - calls BeginRead at the start of each read phase (NBR's sigsetjmp /
//     beginΦread; a no-op for every other scheme);
//   - calls Protect(slot, p) before the first access to each newly obtained
//     record — this is the universal access barrier: hazard-pointer and era
//     schemes announce p in the slot, NBR polls for pending neutralization
//     signals, epoch schemes do nothing. If NeedsValidation reports true the
//     caller must re-read the link it obtained p from and restart the
//     operation on mismatch (the HP/IBR reachability validation);
//   - reads record fields by copying them and then re-validating the handle
//     generation, reporting a stale handle via OnStale (which neutralizes
//     under NBR and panics — a detected use-after-free — everywhere else);
//   - calls Reserve then EndRead before its write phase (endΦread with the
//     reservation set; no-ops outside NBR);
//   - calls Retire for every unlinked record, or RetireBatch when one
//     operation unlinks a whole subtree or chain.
//
// Allocation is only permitted in write phases (never between BeginRead and
// EndRead), matching the paper's Φread rules and guaranteeing neutralization
// cannot leak a private record.
//
// These rules are machine-checked: cmd/nbrvet (blocking in CI) verifies
// bracket ordering, read-phase restartability, lease affinity, and guarded
// arena access across the repo — see DESIGN.md §13.
package smr

import (
	"math"

	"nbr/internal/mem"
	"nbr/internal/sigsim"
)

// Guard is a per-thread handle onto an SMR scheme. A Guard must only be used
// by the thread (goroutine) it was issued to. The bracket discipline below
// (BeginRead/Reserve/EndRead ordering, restartable read phases, write-phase
// retires) is enforced statically by cmd/nbrvet (DESIGN.md §13).
type Guard interface {
	// Tid returns the dense thread id this guard was issued for.
	Tid() int

	// BeginOp and EndOp bracket one data-structure operation.
	BeginOp()
	EndOp()

	// BeginRead marks the start of a read phase (NBR: checkpoint + become
	// restartable + clear reservations).
	BeginRead()
	// Reserve announces that the upcoming write phase will access p
	// (NBR: reservation array slot i). Must precede EndRead.
	Reserve(i int, p mem.Ptr)
	// EndRead ends the read phase (NBR: publish reservations and become
	// non-restartable; may neutralize instead if a signal raced the
	// transition).
	EndRead()

	// Protect is the access barrier invoked before the first use of each
	// newly obtained record handle. Slot identity matters only to
	// hazard-pointer-style schemes.
	Protect(slot int, p mem.Ptr)
	// NeedsValidation reports whether the scheme requires link re-read
	// validation after Protect (true for HP, IBR, HE).
	NeedsValidation() bool

	// Retire hands an unlinked record to the scheme for eventual freeing.
	Retire(p mem.Ptr)
	// RetireBatch hands a whole unlinked subtree or chain to the scheme at
	// once. It is observationally equivalent to calling Retire on each
	// element in order, but the scheme performs its per-retire bookkeeping —
	// watermark/threshold check, era stamp, reclamation scan — once per
	// batch instead of once per record, so a subtree unlink costs O(1)
	// amortized shared interactions regardless of its size. The slice is not
	// retained.
	RetireBatch(ps []mem.Ptr)
	// RetireSegment hands one segment handle (mem.SegmentArena) standing for
	// a whole contiguous run of K records to the scheme. The scheme stamps,
	// bags and scans the handle once — its garbage accounting counts all K
	// member records — but the per-record fan-out happens inside the arena
	// at free time, so the scheme-side cost of a bulk retirement is O(1)
	// however large the run. Era-interval schemes (he, ibr) split an
	// oversized segment at their watermark (mem.SegmentArena.CarveSegment,
	// pieces inheriting the run's birth era), the same contract RetireBatch
	// honours; identity-based schemes (hp, nbr) must NOT carve — readers
	// protect the run by announcing/reserving the original handle, which a
	// carved piece's fresh head handle never appears as — so they bag the
	// handle whole at full weight, an overshoot their declared bounds
	// account for. Calling it with a non-segment handle degrades to Retire.
	RetireSegment(p mem.Ptr)
	// OnAlloc is invoked right after allocating a record (era schemes stamp
	// the birth era).
	OnAlloc(p mem.Ptr)
	// OnStale is invoked when a copy-validate read found a freed slot. NBR
	// re-polls and neutralizes (the free proves a signal is pending); other
	// schemes treat it as a proven use-after-free and panic.
	OnStale(p mem.Ptr)
}

// Unbounded is the GarbageBound sentinel returned by schemes whose garbage
// can grow without limit (epoch-based schemes under a stalled thread, and the
// leaky baseline by construction).
const Unbounded = -1

// Scheme is a reclamation algorithm instance bound to one data structure's
// arena.
type Scheme interface {
	// Name returns the scheme's short name as used in the paper's figures.
	Name() string
	// Guard returns the (cached) guard for thread tid.
	Guard(tid int) Guard
	// Stats returns aggregate reclamation counters.
	Stats() Stats
	// GarbageBound returns the scheme's declared worst-case number of
	// retired-but-unfreed records across all threads, or Unbounded. The
	// bound is a live contract, not documentation: the dstest and bench
	// harnesses sample Stats().Garbage() against it during every stress
	// run, so a scheme that cannot keep its promise fails loudly. The
	// value is monotone non-decreasing over a scheme's lifetime (schemes
	// with dynamic pinned-set accounting only ever raise it), so a sampler
	// may compare a garbage reading against a bound read later.
	GarbageBound() int
	// ReclaimBurst returns the scheme's declared reclamation burst: the
	// largest number of records one thread hands the allocator in a single
	// free batch (the limbo-bag HiWatermark for the NBR family, the scan
	// threshold for the threshold-triggered schemes, 0 when the scheme
	// never frees or has no characteristic burst). The allocator sizes
	// per-thread caches from it so a burst amortizes to one shared-shard
	// interaction (DESIGN.md §6).
	ReclaimBurst() int
}

// RoundForcer is implemented by schemes that can complete a scan round on
// demand, without owning a thread slot: one bracketed
// (Registry.BeginScan/EndScan) collection pass over the scheme's
// announcement state under the active mask, freeing nothing. A forced round
// advances the registry's quarantine-aging clock exactly as an organic
// reclamation round from a peer thread would — the round counter's proof
// ("a collection that began after the release has completed") does not care
// whether the collecting scan went on to sweep a bag — so slot-quarantine
// aging no longer depends on reclamation cadence. ForceRound reports false
// when no registry is attached (fixed-N mode has no quarantine to age).
// Implementations must be safe for concurrent use: any acquirer may force a
// round.
type RoundForcer interface {
	ForceRound() bool
}

// Stats aggregates reclamation activity across all threads of a scheme.
type Stats struct {
	Retired     uint64 // records handed to Retire/RetireBatch
	Freed       uint64 // records returned to the allocator
	Signals     uint64 // neutralization signals sent (NBR family)
	Neutralized uint64 // read-phase restarts caused by signals
	Ignored     uint64 // signals delivered to non-restartable threads
	Scans       uint64 // reservation/hazard/era scans performed
	Advances    uint64 // epoch or era advances
	Segments    uint64 // segment handles retired (RetireSegment pieces)
	SegRecords  uint64 // member records those segments stood for
	// BatchHist is the retire handoff-size distribution: bucket i counts
	// handoffs of size s with bitlen(s) == i, i.e. s in [2^(i-1), 2^i).
	// A Retire call is one handoff of size 1; a RetireBatch call is one
	// handoff of its batch length. Retired divided by the handoff count is
	// the average amortization the RetireBatch seam achieves.
	BatchHist [BatchBuckets]uint64
}

// RetireCalls returns the number of retire handoffs (Retire calls plus
// non-empty RetireBatch calls).
func (s Stats) RetireCalls() uint64 {
	var n uint64
	for _, c := range s.BatchHist {
		n += c
	}
	return n
}

// BatchQuantile returns an upper bound for the q-quantile handoff size: the
// upper edge of the power-of-two bucket containing it. Returns 0 when no
// handoffs were recorded.
func (s Stats) BatchQuantile(q float64) int64 {
	total := s.RetireCalls()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// Nearest-rank: the smallest value with at least ceil(q·total) recorded
	// handoffs at or below it, i.e. 0-indexed rank ceil(q·total)−1.
	r := math.Ceil(q * float64(total))
	if r < 1 {
		r = 1
	}
	rank := uint64(r) - 1
	if rank >= total {
		rank = total - 1
	}
	var seen uint64
	for i, c := range s.BatchHist {
		seen += c
		if rank < seen {
			return bucketUpper(i)
		}
	}
	return bucketUpper(BatchBuckets - 1)
}

// BatchMax returns an upper bound for the largest handoff recorded (the
// upper edge of the top non-empty bucket), or 0 if none.
func (s Stats) BatchMax() int64 {
	for i := BatchBuckets - 1; i >= 0; i-- {
		if s.BatchHist[i] != 0 {
			return bucketUpper(i)
		}
	}
	return 0
}

// bucketUpper is the largest size bucket i can hold: bitlen(s) == i means
// s ≤ 2^i - 1. The top bucket is open-ended (Record saturates batches of
// 2^(BatchBuckets-1) or more into it), so for it the returned value is a
// saturation cap, not a true upper bound — BatchQuantile/BatchMax report at
// most 2^(BatchBuckets-1) - 1 however large the actual handoff was.
func bucketUpper(i int) int64 {
	if i <= 0 {
		return 0
	}
	return int64(1)<<i - 1
}

// Stamps returns the number of scheme-side per-retirement bookkeeping events
// (era stamps, bag appends, watermark checks): one per individually retired
// record plus one per segment handle, however many records the segment stood
// for. Stamps/Retired is the amortization the segment seam buys — 1.0 for a
// pure per-record retire stream, collapsing toward Segments/SegRecords when
// bulk retirements ride segments.
func (s Stats) Stamps() uint64 {
	return s.Retired - s.SegRecords + s.Segments
}

// StampsPerRecord returns Stamps normalized by retired records (0 when
// nothing was retired). Host-independent: a pure counter ratio.
func (s Stats) StampsPerRecord() float64 {
	if s.Retired == 0 {
		return 0
	}
	return float64(s.Stamps()) / float64(s.Retired)
}

// ScansPerRecord returns reclamation scans per retired record (0 when
// nothing was retired).
func (s Stats) ScansPerRecord() float64 {
	if s.Retired == 0 {
		return 0
	}
	return float64(s.Scans) / float64(s.Retired)
}

// Garbage returns the number of retired-but-unfreed records. A snapshot
// taken while threads are mid-retire can transiently read Freed ahead of
// Retired (per-guard counters are summed without a barrier, and a record's
// free can land between the two loads), so concurrent samplers get a clamped
// 0 rather than a wrapped uint64. At quiescence the inversion cannot happen
// honestly: callers there must treat Invalid as a double-free accounting bug
// instead of reading Garbage's masking zero — dstest does.
func (s Stats) Garbage() uint64 {
	if s.Freed > s.Retired {
		return 0
	}
	return s.Retired - s.Freed
}

// Invalid reports the Freed > Retired underflow that Garbage clamps away.
// True at a quiescent point (no thread inside Retire/RetireBatch or a scan)
// means the scheme freed a record it never accounted as retired — a
// double-free-grade bug, never a benign state.
func (s Stats) Invalid() bool {
	return s.Freed > s.Retired
}

// RetireChunk sizes the next chunk of a split RetireBatch for a
// threshold-triggered scheme (hp/he/ibr): the records that fill the bag
// exactly to the scan threshold — so the post-append scan check fires at
// the same bag lengths a per-record Retire loop would hit — degrading to
// single records when the bag is already at or past the threshold (the
// last scan freed nothing), exactly as the loop would. Centralizing the
// policy keeps the three schemes' split semantics from diverging.
func RetireChunk(threshold, bagLen, avail int) int {
	take := threshold - bagLen
	if take < 1 {
		take = 1
	}
	if take > avail {
		take = avail
	}
	return take
}

// SegChunk sizes the next carve of an oversized segment for the carving
// (era-interval) schemes: whole threshold-weight pieces, independent of the
// current bag fill. RetireChunk's fill-to-threshold policy is wrong here —
// when a sweep leaves the bag pinned at the threshold (era survivors, which
// unlike NBR's reclamation can exceed any fixed residue), it degrades to
// single-record carves, which is per-record retirement paying an extra
// directory split per record. Whole pieces keep the carve count at
// ceil(weight/threshold) — the amortization the segment seam exists for —
// and cap every piece's weight at the threshold, so the segment-weight term
// of GarbageBound never grows past it; the post-append sweep still fires at
// bag weight ≥ threshold, and the one in-flight piece per thread is covered
// by the bound's per-entry segment-weight slack. Only he and ibr may carve:
// their pieces inherit the run's birth era, so interval protection covers
// them. Identity-based schemes (hp, nbr) bag handles whole — see
// Guard.RetireSegment.
func SegChunk(threshold, avail int) int {
	if threshold < 1 {
		threshold = 1
	}
	if threshold > avail {
		return avail
	}
	return threshold
}

// Execute runs one data-structure operation body under g, restarting it when
// the thread is neutralized. Restarting the whole body is equivalent to the
// paper's siglongjmp to the last sigsetjmp because every read phase (re)starts
// from a root; completed auxiliary write phases are simply re-observed, as in
// the paper's Harris-list integration (§5.2).
func Execute[R any](g Guard, body func() R) R {
	g.BeginOp()
	defer g.EndOp()
	for {
		if r, ok := attempt(body); ok {
			return r
		}
	}
}

func attempt[R any](body func() R) (r R, ok bool) {
	defer func() {
		if e := recover(); e != nil {
			if _, is := e.(sigsim.Neutralized); is {
				ok = false
				return
			}
			panic(e)
		}
	}()
	return body(), true
}
