// Package sigsim simulates the POSIX signal machinery NBR relies on
// (pthread_kill, sigsetjmp/siglongjmp) on top of the Go runtime, which owns
// real signals and offers no asynchronous goroutine interruption.
//
// Each participating thread owns a 64-bit state word:
//
//	bits 63..2  count of neutralization signals posted to the thread
//	bit  1      revoked flag (sticky: the slot's lease was reaped)
//	bit  0      restartable flag (the paper's per-thread `restartable` var)
//
// SignalAll posts a signal by atomically incrementing every peer's count.
// Delivery is enforced at the points the paper's Assumption 4 needs it:
//
//   - Poll, invoked by the record-access barrier before every shared-record
//     access, observes any post that happened before the access and runs the
//     handler: restartable threads longjmp (here: panic with Neutralized,
//     recovered by the operation wrapper), non-restartable threads ignore.
//   - ClearRestartable, the restartable→non-restartable transition performed
//     by NBR's endΦread, is a CAS on the same word. A post that lands before
//     the transition makes the CAS re-check fail and neutralizes the thread,
//     which is exactly the store-buffer race the paper closes with its CAS on
//     `restartable` (§4.3): a thread can only become non-restartable if no
//     signal arrived during its read phase, and then its reservations are
//     already visible (sequentially consistent atomics) to the reclaimer's
//     subsequent scan.
//
// Because real signal sends cost a syscall (~µs) and handlers cost a kernel
// round trip, the group charges configurable spin cycles per send and per
// delivery, so the NBR-vs-NBR+ signal-economy trade-off remains measurable.
package sigsim

import (
	"sync/atomic"

	"nbr/internal/obs"
)

// Neutralized is the panic payload used to emulate siglongjmp back to the
// sigsetjmp point at the start of the current read phase. smr.Execute
// recovers it and re-runs the operation body.
type Neutralized struct{}

// Revoked is the panic payload delivered to a thread whose slot lease was
// involuntarily revoked (the watchdog reaped an over-deadline holder). Unlike
// Neutralized it is terminal: smr.Execute does NOT recover it, so the zombie
// unwinds out of its operation instead of restarting on a slot that may
// already belong to a successor. The runtime's With wrapper converts the
// unwind into an error for the caller.
type Revoked struct{}

const (
	restartableBit = uint64(1)
	revokedBit     = uint64(2)
	postUnit       = uint64(4) // one signal in the count field
)

// state is one thread's signal state, padded to its own cache line.
type state struct {
	word atomic.Uint64
	// Owner-only fields (no atomics needed).
	delivered   uint64 // signals already handled or absorbed
	sink        uint64 // spin-cost accumulator, defeats dead-code elimination
	restartFrom int64  // post timestamp carried from a neutralizing delivery
	// lastPost is the recorder timestamp of the most recent SignalAll post
	// aimed at this slot (written by senders, read by the owner at delivery);
	// it closes the post→restart latency measurement.
	lastPost atomic.Int64
	// Statistics.
	sent        atomic.Uint64 // signals this thread sent (as reclaimer)
	neutralized atomic.Uint64 // deliveries that restarted this thread
	ignored     atomic.Uint64 // deliveries ignored (non-restartable)
	revoked     atomic.Uint64 // deliveries that killed a revoked occupant
	_           [32]byte
}

// Config sets the simulated costs, in spin iterations (~1ns each).
type Config struct {
	// SendSpin is charged to the sender per signalled peer, standing in for
	// the pthread_kill syscall (the overhead NBR+ exists to amortize).
	SendSpin int
	// HandleSpin is charged to the receiver per delivered signal, standing
	// in for the kernel-mode switch of running a signal handler.
	HandleSpin int
}

// Group is a set of threads that signal each other. Thread ids are dense in
// [0, N).
type Group struct {
	states []state
	cfg    Config
	active *ActiveSet
	rec    *obs.Recorder
}

// NewGroup creates a signal group for n threads, all signalable (the fixed-N
// mode). Lease-managed callers replace the mask with SetActive.
func NewGroup(n int, cfg Config) *Group {
	return &Group{states: make([]state, n), cfg: cfg, active: FullActiveSet(n)}
}

// SetActive replaces the group's signalable-slot mask. It must be called
// before the group is used concurrently (scheme construction time): the mask
// pointer itself is not synchronized, only its contents are.
func (g *Group) SetActive(a *ActiveSet) { g.active = a }

// SetRecorder attaches a flight recorder. Like SetActive it must be wired at
// construction time, before the group is used concurrently; a nil recorder
// (the default) keeps every instrumented path on its one-branch fast path.
func (g *Group) SetRecorder(r *obs.Recorder) { g.rec = r }

// Attach readies slot tid for a new occupant: any signals posted to the
// previous occupant (or to the vacant slot) are absorbed without running a
// handler, a pending revocation is acknowledged (the sticky revoked bit is
// cleared — only the next occupant may clear it, which is the ack the reaper
// protocol relies on), and the slot starts non-restartable. It must be called
// by the acquiring goroutine before the slot's first read phase, so a
// recycled tid can never be neutralized — or killed — by a post aimed at its
// predecessor.
func (g *Group) Attach(tid int) {
	s := &g.states[tid]
	for {
		old := s.word.Load()
		if s.word.CompareAndSwap(old, old&^(restartableBit|revokedBit)) {
			s.delivered = old / postUnit
			s.restartFrom = 0 // a stale predecessor latency must not be measured
			return
		}
	}
}

// N returns the number of threads in the group.
func (g *Group) N() int { return len(g.states) }

// SignalAll posts one neutralization signal to every *active* thread except
// self, charging the configured send cost per peer. It corresponds to the
// paper's signalAll: delivery is guaranteed (by the barriers above) to happen
// before the receiver's next shared-record access. Skipping inactive slots is
// safe because a slot is only inactive while no goroutine is inside an
// operation on it, and a goroutine that activates after this broadcast cannot
// hold pointers obtained before the records it would need were unlinked; it
// is also the point of dynamic membership — signal cost tracks live threads,
// not capacity.
func (g *Group) SignalAll(self int) {
	sent := uint64(0)
	now := g.rec.Clock() // 0 when the recorder is off
	g.active.Range(func(i int) {
		if i == self {
			return
		}
		g.states[i].word.Add(postUnit)
		if now != 0 {
			g.states[i].lastPost.Store(now)
		}
		g.states[self].sink = spin(g.cfg.SendSpin, g.states[self].sink)
		sent++
	})
	g.states[self].sent.Add(sent)
	if now != 0 && sent > 0 {
		g.rec.Rec(self, obs.EvSigPost, sent)
	}
}

// SetRestartable is the sigsetjmp point at the start of a read phase: it
// makes the thread restartable and absorbs any signals that arrived while it
// was quiescent or writing (their handlers would have been no-ops) or that
// caused the jump here (the restart consumed them). A revoked occupant is
// killed instead: a zombie must not start a new read phase on a slot that may
// already have a successor.
func (g *Group) SetRestartable(tid int) {
	s := &g.states[tid]
	for {
		old := s.word.Load()
		if old&revokedBit != 0 {
			g.deliver(tid, s, old)
		}
		if s.word.CompareAndSwap(old, old|restartableBit) {
			s.delivered = old / postUnit
			if from := s.restartFrom; from != 0 {
				// This setjmp is the restart of a neutralized read phase:
				// close the post→restart latency opened at the delivery.
				s.restartFrom = 0
				g.rec.ObserveSince(obs.HistSignalLatency, from)
				g.rec.Rec(tid, obs.EvSigRestart, 0)
			}
			return
		}
	}
}

// ClearRestartable is the read→write transition (endΦread's CAS on
// `restartable`). If a signal arrived since the thread became restartable,
// the transition fails and the thread is neutralized instead — it must not
// enter its write phase, because the reclaimer that signalled it will not
// see its reservations. On success the thread is non-restartable and every
// store it made before the call (its reservations) is visible to any
// reclaimer that signals it afterwards.
func (g *Group) ClearRestartable(tid int) {
	s := &g.states[tid]
	for {
		old := s.word.Load()
		if old&revokedBit != 0 || old/postUnit > s.delivered {
			g.deliver(tid, s, old)
			// deliver panics (restartable is still set); not reached.
		}
		if s.word.CompareAndSwap(old, old&^restartableBit) {
			return
		}
	}
}

// Poll is the delivery barrier: it must be invoked before every access to a
// shared record. If signals are pending it runs the handler — restarting the
// thread when restartable, ignoring otherwise.
func (g *Group) Poll(tid int) {
	s := &g.states[tid]
	old := s.word.Load()
	if old&revokedBit != 0 || old/postUnit > s.delivered {
		g.deliver(tid, s, old)
	}
}

// deliver runs the signal handler for all outstanding posts in old. A sticky
// revocation outranks neutralization: it panics Revoked at EVERY delivery
// point until the next occupant's Attach acknowledges it, whatever the
// restartable flag says — the zombie must unwind, not restart.
func (g *Group) deliver(tid int, s *state, old uint64) {
	s.delivered = old / postUnit
	s.sink = spin(g.cfg.HandleSpin, s.sink)
	pending := old / postUnit
	if old&revokedBit != 0 {
		s.revoked.Add(1)
		g.rec.Rec(tid, obs.EvSigKill, pending)
		panic(Revoked{})
	}
	if old&restartableBit != 0 {
		s.neutralized.Add(1)
		if g.rec.Enabled() {
			// Carry the post timestamp across the longjmp: the latency is
			// closed when the victim re-enters SetRestartable.
			s.restartFrom = s.lastPost.Load()
			g.rec.Rec(tid, obs.EvSigDeliver, pending)
		}
		panic(Neutralized{})
	}
	s.ignored.Add(1)
	g.rec.Rec(tid, obs.EvSigIgnore, pending)
}

// Revoke posts a sticky revocation to slot tid: every subsequent delivery
// point the occupant passes (Poll, a read-phase transition) panics Revoked
// until a successor's Attach clears the bit. It also counts as one posted
// signal, so the pending-post fast paths notice it. Unlike SignalAll this
// targets one slot and ignores the active mask: the reaper revokes a slot it
// has already unpublished.
func (g *Group) Revoke(tid int) {
	s := &g.states[tid]
	for {
		old := s.word.Load()
		if s.word.CompareAndSwap(old, (old|revokedBit)+postUnit) {
			return
		}
	}
}

// IsRevoked reports whether slot tid carries an unacknowledged revocation.
func (g *Group) IsRevoked(tid int) bool {
	return g.states[tid].word.Load()&revokedBit != 0
}

// Restartable reports the thread's restartable flag (for tests and asserts).
func (g *Group) Restartable(tid int) bool {
	return g.states[tid].word.Load()&restartableBit != 0
}

// Posted returns how many signals have been posted to tid so far.
func (g *Group) Posted(tid int) uint64 {
	return g.states[tid].word.Load() / postUnit
}

// Delivered returns how many of tid's signals have been handled or absorbed.
// Only tid itself may call this (the counter is owner-local).
func (g *Group) Delivered(tid int) uint64 {
	return g.states[tid].delivered
}

// Stats aggregates signal-traffic counters across the group.
type Stats struct {
	Sent        uint64 // signals sent by reclaimers
	Neutralized uint64 // deliveries that restarted a read phase
	Ignored     uint64 // deliveries ignored (thread not restartable)
	Revoked     uint64 // deliveries that killed a revoked occupant
}

// Stats returns a snapshot of the group's counters.
func (g *Group) Stats() Stats {
	var st Stats
	for i := range g.states {
		st.Sent += g.states[i].sent.Load()
		st.Neutralized += g.states[i].neutralized.Load()
		st.Ignored += g.states[i].ignored.Load()
		st.Revoked += g.states[i].revoked.Load()
	}
	return st
}

// spin burns roughly n cycles; the evolving accumulator is stored by callers
// to keep the loop observable.
func spin(n int, acc uint64) uint64 {
	for i := 0; i < n; i++ {
		acc = acc*2654435761 + uint64(i)
	}
	return acc
}
