package sigsim

import "testing"

// BenchmarkPollQuiet measures the per-record-access barrier when no signal
// is pending — NBR's entire read-side overhead (one atomic load).
func BenchmarkPollQuiet(b *testing.B) {
	g := NewGroup(8, Config{})
	g.SetRestartable(0)
	for i := 0; i < b.N; i++ {
		g.Poll(0)
	}
}

// BenchmarkPhaseCycle measures beginΦread + endΦread (two CAS transitions),
// the per-operation fixed cost of NBR.
func BenchmarkPhaseCycle(b *testing.B) {
	g := NewGroup(8, Config{})
	for i := 0; i < b.N; i++ {
		g.SetRestartable(0)
		g.ClearRestartable(0)
	}
}

// BenchmarkSignalAll measures a full broadcast without the cost model — the
// raw cross-thread posting work of one reclamation event.
func BenchmarkSignalAll(b *testing.B) {
	g := NewGroup(16, Config{})
	for i := 0; i < b.N; i++ {
		g.SignalAll(0)
	}
}

// BenchmarkSignalAllWithCost includes the simulated pthread_kill spin, the
// configuration benchmarks actually run with.
func BenchmarkSignalAllWithCost(b *testing.B) {
	g := NewGroup(16, Config{SendSpin: 600})
	for i := 0; i < b.N; i++ {
		g.SignalAll(0)
	}
}

// BenchmarkDeliveryIgnore measures handling a pending signal while
// non-restartable (the writer-side handler path).
func BenchmarkDeliveryIgnore(b *testing.B) {
	g := NewGroup(2, Config{})
	g.SetRestartable(0)
	g.ClearRestartable(0)
	for i := 0; i < b.N; i++ {
		g.SignalAll(1)
		g.Poll(0)
	}
}
