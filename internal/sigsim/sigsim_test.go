package sigsim

import (
	"sync"
	"testing"
	"testing/quick"
)

func neutralizes(f func()) (hit bool) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(Neutralized); !ok {
				panic(r)
			}
			hit = true
		}
	}()
	f()
	return false
}

func TestPollNoSignalNoop(t *testing.T) {
	g := NewGroup(2, Config{})
	g.SetRestartable(0)
	if neutralizes(func() { g.Poll(0) }) {
		t.Fatal("poll with no pending signal must not neutralize")
	}
}

func TestPollRestartableNeutralizes(t *testing.T) {
	g := NewGroup(2, Config{})
	g.SetRestartable(0)
	g.SignalAll(1)
	if !neutralizes(func() { g.Poll(0) }) {
		t.Fatal("restartable thread must be neutralized by a pending signal")
	}
	if g.Delivered(0) != 1 {
		t.Fatalf("delivered = %d, want 1", g.Delivered(0))
	}
}

func TestPollNonRestartableIgnores(t *testing.T) {
	g := NewGroup(2, Config{})
	g.SetRestartable(0)
	g.ClearRestartable(0)
	g.SignalAll(1)
	if neutralizes(func() { g.Poll(0) }) {
		t.Fatal("non-restartable thread must ignore the signal")
	}
	if st := g.Stats(); st.Ignored != 1 {
		t.Fatalf("ignored = %d, want 1", st.Ignored)
	}
}

func TestClearRestartableWithPendingNeutralizes(t *testing.T) {
	// The paper's §4.3 race: a signal arrives during Φread but the thread
	// reaches endΦread before polling. The transition itself must deliver.
	g := NewGroup(2, Config{})
	g.SetRestartable(0)
	g.SignalAll(1)
	if !neutralizes(func() { g.ClearRestartable(0) }) {
		t.Fatal("endΦread with an undelivered signal must neutralize")
	}
	if g.Restartable(0) != true {
		t.Fatal("neutralization must abort the transition")
	}
}

func TestClearRestartableCleanTransition(t *testing.T) {
	g := NewGroup(2, Config{})
	g.SetRestartable(0)
	g.ClearRestartable(0)
	if g.Restartable(0) {
		t.Fatal("flag must be clear after ClearRestartable")
	}
}

func TestSetRestartableAbsorbsPending(t *testing.T) {
	// Signals received while quiescent or in Φwrite are ignored; arriving at
	// the next sigsetjmp point must not re-trigger them.
	g := NewGroup(2, Config{})
	g.SignalAll(1)
	g.SignalAll(1)
	g.SetRestartable(0)
	if neutralizes(func() { g.Poll(0) }) {
		t.Fatal("absorbed signals must not neutralize after BeginRead")
	}
}

func TestSignalAllSkipsSelf(t *testing.T) {
	g := NewGroup(3, Config{})
	g.SignalAll(1)
	if g.Posted(1) != 0 {
		t.Fatal("sender must not signal itself")
	}
	if g.Posted(0) != 1 || g.Posted(2) != 1 {
		t.Fatal("all peers must be signalled")
	}
	if st := g.Stats(); st.Sent != 2 {
		t.Fatalf("sent = %d, want 2", st.Sent)
	}
}

func TestSignalsCoalesce(t *testing.T) {
	// POSIX does not queue standard signals; several posts may be handled by
	// one delivery, which is sufficient for restart-or-ignore semantics.
	g := NewGroup(2, Config{})
	g.SetRestartable(0)
	g.SignalAll(1)
	g.SignalAll(1)
	g.SignalAll(1)
	if !neutralizes(func() { g.Poll(0) }) {
		t.Fatal("must neutralize")
	}
	if g.Delivered(0) != 3 {
		t.Fatalf("delivery must consume all posts, delivered=%d", g.Delivered(0))
	}
	if neutralizes(func() { g.Poll(0) }) {
		t.Fatal("coalesced signals must not deliver twice")
	}
}

func TestStatsNeutralizedCount(t *testing.T) {
	g := NewGroup(2, Config{})
	for i := 0; i < 5; i++ {
		g.SetRestartable(0)
		g.SignalAll(1)
		if !neutralizes(func() { g.Poll(0) }) {
			t.Fatal("must neutralize")
		}
	}
	if st := g.Stats(); st.Neutralized != 5 || st.Sent != 5 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSpinCostCharged(t *testing.T) {
	// Just exercises the cost path; correctness is unchanged by spinning.
	g := NewGroup(2, Config{SendSpin: 100, HandleSpin: 100})
	g.SetRestartable(0)
	g.SignalAll(1)
	if !neutralizes(func() { g.Poll(0) }) {
		t.Fatal("must neutralize with costs enabled")
	}
}

// TestTransitionRace hammers the §4.3 interleaving: one goroutine signals
// while the owner cycles through read/write phases. The invariant under
// test: every successful ClearRestartable implies no signal was pending at
// transition time, so a reclaimer that posted before the transition always
// either neutralizes the thread or observes it non-restartable after its
// reservations are published. Also serves as a deadlock/livelock check.
func TestTransitionRace(t *testing.T) {
	g := NewGroup(2, Config{})
	const posts = 5000
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < posts; i++ {
			g.SignalAll(1)
		}
	}()
	cycles, restarts := 0, 0
	for g.Delivered(0) < posts {
		g.SetRestartable(0)
		hit := neutralizes(func() {
			g.Poll(0)
			g.ClearRestartable(0)
		})
		if hit {
			restarts++
		} else {
			cycles++
		}
		if !hit && g.Restartable(0) {
			t.Fatal("clean cycle left thread restartable")
		}
		g.SetRestartable(0) // absorb leftovers so Delivered advances
	}
	wg.Wait()
	if g.Delivered(0) != posts {
		t.Fatalf("delivered %d of %d", g.Delivered(0), posts)
	}
	if cycles == 0 {
		t.Fatal("expected at least some clean transitions")
	}
}

func TestQuickDeliveredNeverExceedsPosted(t *testing.T) {
	g := NewGroup(2, Config{})
	f := func(ops []bool) bool {
		for _, post := range ops {
			if post {
				g.SignalAll(1)
			} else {
				g.SetRestartable(0)
				neutralizes(func() {
					g.Poll(0)
					g.ClearRestartable(0)
				})
			}
			if g.Delivered(0) > g.Posted(0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func revokes(f func()) (hit bool) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(Revoked); !ok {
				panic(r)
			}
			hit = true
		}
	}()
	f()
	return false
}

func TestRevokeKillsAtEveryDeliveryPoint(t *testing.T) {
	resume := map[string]func(g *Group){
		"Poll":             func(g *Group) { g.Poll(0) },
		"SetRestartable":   func(g *Group) { g.SetRestartable(0) },
		"ClearRestartable": func(g *Group) { g.ClearRestartable(0) },
	}
	for name, f := range resume {
		t.Run(name, func(t *testing.T) {
			g := NewGroup(2, Config{})
			g.SetRestartable(0) // frozen mid-read-phase
			g.Revoke(0)
			if !g.IsRevoked(0) {
				t.Fatal("Revoke did not set the revoked bit")
			}
			if !revokes(func() { f(g) }) {
				t.Fatalf("%s on a revoked slot must panic Revoked", name)
			}
			// Sticky: the zombie is killed again at its next delivery point,
			// not just once — only a successor's Attach acknowledges.
			if !revokes(func() { f(g) }) {
				t.Fatalf("second %s did not kill: revocation must be sticky", name)
			}
			if !g.IsRevoked(0) {
				t.Fatal("delivery cleared the revoked bit; only Attach may")
			}
		})
	}
}

func TestRevokeOutranksNeutralization(t *testing.T) {
	g := NewGroup(2, Config{})
	g.SetRestartable(0)
	g.SignalAll(1) // a pending neutralization post...
	g.Revoke(0)    // ...and a revocation: the kill must win
	hit := false
	func() {
		defer func() {
			switch recover().(type) {
			case Revoked:
				hit = true
			case Neutralized:
				t.Fatal("revoked restartable thread was restarted, not killed")
			}
		}()
		g.Poll(0)
	}()
	if !hit {
		t.Fatal("revoked thread passed a delivery point alive")
	}
}

func TestAttachAcknowledgesRevocation(t *testing.T) {
	g := NewGroup(2, Config{})
	g.Revoke(0)
	g.Attach(0) // the successor's ack
	if g.IsRevoked(0) {
		t.Fatal("Attach did not clear the revoked bit")
	}
	if revokes(func() { g.Poll(0) }) {
		t.Fatal("successor killed by its predecessor's revocation")
	}
	if g.Delivered(0) != g.Posted(0) {
		t.Fatalf("Attach absorbed %d of %d posts", g.Delivered(0), g.Posted(0))
	}
	g.SetRestartable(0)
	if neutralizes(func() { g.Poll(0) }) {
		t.Fatal("successor neutralized by an absorbed post")
	}
}

func TestStatsRevokedCount(t *testing.T) {
	g := NewGroup(2, Config{})
	g.Revoke(0)
	revokes(func() { g.Poll(0) })
	revokes(func() { g.ClearRestartable(0) })
	if st := g.Stats(); st.Revoked != 2 {
		t.Fatalf("Stats.Revoked = %d, want 2", st.Revoked)
	}
	if st := g.Stats(); st.Neutralized != 0 {
		t.Fatalf("kills miscounted as neutralizations: %d", st.Neutralized)
	}
}
