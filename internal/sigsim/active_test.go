package sigsim

import "testing"

func TestActiveSetBasics(t *testing.T) {
	a := NewActiveSet(130) // spans three words
	if a.N() != 130 || a.Count() != 0 {
		t.Fatalf("fresh set: n=%d count=%d", a.N(), a.Count())
	}
	for _, i := range []int{0, 63, 64, 129} {
		a.Set(i)
		if !a.Active(i) {
			t.Fatalf("bit %d not set", i)
		}
		a.Set(i) // idempotent
	}
	if a.Count() != 4 {
		t.Fatalf("count = %d, want 4", a.Count())
	}
	var got []int
	a.Range(func(tid int) { got = append(got, tid) })
	want := []int{0, 63, 64, 129}
	if len(got) != len(want) {
		t.Fatalf("Range visited %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Range visited %v, want %v (ascending)", got, want)
		}
	}
	a.Clear(64)
	a.Clear(64) // idempotent
	if a.Active(64) || a.Count() != 3 {
		t.Fatalf("clear failed: count=%d", a.Count())
	}
	full := FullActiveSet(130)
	if full.Count() != 130 {
		t.Fatalf("full set count = %d", full.Count())
	}
}

// TestSignalAllSkipsInactive pins the membership half of SignalAll: posts
// land only on active slots, and the sent counter reflects actual peers.
func TestSignalAllSkipsInactive(t *testing.T) {
	g := NewGroup(4, Config{})
	a := NewActiveSet(4)
	g.SetActive(a)
	a.Set(0)
	a.Set(2)
	g.SignalAll(0)
	if got := g.Posted(1); got != 0 {
		t.Fatalf("inactive slot 1 received %d posts", got)
	}
	if got := g.Posted(2); got != 1 {
		t.Fatalf("active slot 2 received %d posts, want 1", got)
	}
	if got := g.Posted(0); got != 0 {
		t.Fatal("self must not be signalled")
	}
	if st := g.Stats(); st.Sent != 1 {
		t.Fatalf("sent = %d, want 1 (one active peer)", st.Sent)
	}
}

// TestAttachAbsorbsStalePosts pins slot recycling: signals posted to a
// vacant slot (or its previous occupant) must not neutralize the next
// occupant.
func TestAttachAbsorbsStalePosts(t *testing.T) {
	g := NewGroup(2, Config{})
	g.SignalAll(1) // posts a signal to slot 0 while "vacant"
	if g.Posted(0) != 1 {
		t.Fatal("setup: no post landed")
	}
	g.Attach(0)
	if g.Restartable(0) {
		t.Fatal("attached slot must start non-restartable")
	}
	// The new occupant polls: the stale post was absorbed by Attach, so no
	// handler (and no panic) may run.
	g.Poll(0)
	if st := g.Stats(); st.Neutralized != 0 || st.Ignored != 0 {
		t.Fatalf("stale post ran a handler: %+v", st)
	}
	// A post after Attach is delivered normally.
	g.SignalAll(1)
	defer func() {
		if recover() == nil {
			t.Fatal("restartable occupant must be neutralized by a fresh post")
		}
	}()
	g.SetRestartable(0)
	g.SignalAll(1)
	g.Poll(0)
}
