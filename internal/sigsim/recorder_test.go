package sigsim

import (
	"testing"
	"time"

	"nbr/internal/obs"
)

// TestNeutralizationRoundTripEvents is the deterministic pre-wired-event
// test: one post, one delivery, one restart, driven sequentially. The
// recorder must show post → deliver → restart in timestamp order, and the
// signal-latency histogram must hold one nonzero post→restart measurement.
func TestNeutralizationRoundTripEvents(t *testing.T) {
	rec := obs.NewRecorder(2)
	rec.Enable()
	g := NewGroup(2, Config{})
	g.SetRecorder(rec)

	g.Attach(0)
	g.Attach(1)
	g.SetRestartable(0) // victim enters its read phase
	g.SignalAll(1)      // reclaimer posts
	time.Sleep(time.Millisecond)

	neutralized := false
	func() {
		defer func() {
			if _, ok := recover().(Neutralized); ok {
				neutralized = true
			}
		}()
		g.Poll(0) // delivery barrier fires the handler
	}()
	if !neutralized {
		t.Fatal("victim was not neutralized")
	}
	g.SetRestartable(0) // the longjmp target: read phase restarts

	var order []obs.Code
	for _, e := range rec.Events(0) {
		switch e.Code {
		case obs.EvSigPost, obs.EvSigDeliver, obs.EvSigRestart:
			order = append(order, e.Code)
		}
	}
	want := []obs.Code{obs.EvSigPost, obs.EvSigDeliver, obs.EvSigRestart}
	if len(order) != len(want) {
		t.Fatalf("signal events = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("signal events out of order: %v, want %v", order, want)
		}
	}

	h := rec.Hist(obs.HistSignalLatency)
	if h.Count() != 1 {
		t.Fatalf("signal-latency observations = %d, want 1", h.Count())
	}
	if lat := h.Max(); lat < time.Millisecond.Nanoseconds() {
		t.Fatalf("post→restart latency %dns, want >= the 1ms the victim slept", lat)
	}
}

// TestAttachClearsCarriedLatency: a successor on a recycled slot must not
// inherit its predecessor's half-open latency measurement.
func TestAttachClearsCarriedLatency(t *testing.T) {
	rec := obs.NewRecorder(2)
	rec.Enable()
	g := NewGroup(2, Config{})
	g.SetRecorder(rec)

	g.Attach(0)
	g.SetRestartable(0)
	g.SignalAll(1)
	func() {
		defer func() { recover() }()
		g.Poll(0) // neutralizes; restartFrom now carries the post timestamp
	}()
	g.Attach(0)         // successor takes the slot before any restart
	g.SetRestartable(0) // must NOT record a latency for the predecessor
	if c := rec.Hist(obs.HistSignalLatency).Count(); c != 0 {
		t.Fatalf("successor inherited predecessor latency: count=%d", c)
	}
}
