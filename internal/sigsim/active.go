package sigsim

import (
	"math/bits"
	"sync/atomic"
)

// ActiveSet is the published membership mask of a dynamic thread group: one
// bit per dense slot, set while the slot is leased to a live goroutine. It is
// the single source of truth every membership-aware iteration in the system
// consults — sigsim.SignalAll posts only to signalable (active) slots, and
// every reclamation scan walks only active announcement rows, so scan and
// signal cost is proportional to live threads, not the registry's capacity.
//
// Reads and writes are independent atomic word operations; an iteration sees
// each word at its own snapshot instant. That is exactly the consistency the
// reclamation protocols need: a thread activating concurrently with a scan
// cannot hold pointers to records retired before it activated (retired
// records are unreachable from the roots), and a thread deactivates only
// outside operations, with no announcements in flight.
type ActiveSet struct {
	n     int
	words []atomic.Uint64
}

// NewActiveSet returns a mask for n slots with every bit clear (the
// lease-managed starting state: nothing is a member until acquired).
func NewActiveSet(n int) *ActiveSet {
	return &ActiveSet{n: n, words: make([]atomic.Uint64, (n+63)/64)}
}

// FullActiveSet returns a mask for n slots with every bit set — the fixed-N
// compatibility mode used when no lease registry manages membership.
func FullActiveSet(n int) *ActiveSet {
	a := NewActiveSet(n)
	for i := 0; i < n; i++ {
		a.Set(i)
	}
	return a
}

// N returns the number of slots the mask covers.
func (a *ActiveSet) N() int { return a.n }

// Set marks slot i active (signalable, scannable).
func (a *ActiveSet) Set(i int) {
	w := &a.words[i>>6]
	bit := uint64(1) << (uint(i) & 63)
	for {
		old := w.Load()
		if old&bit != 0 || w.CompareAndSwap(old, old|bit) {
			return
		}
	}
}

// Clear marks slot i inactive.
func (a *ActiveSet) Clear(i int) {
	w := &a.words[i>>6]
	bit := uint64(1) << (uint(i) & 63)
	for {
		old := w.Load()
		if old&bit == 0 || w.CompareAndSwap(old, old&^bit) {
			return
		}
	}
}

// Active reports whether slot i is currently active.
func (a *ActiveSet) Active(i int) bool {
	return a.words[i>>6].Load()&(uint64(1)<<(uint(i)&63)) != 0
}

// Count returns the number of active slots (approximate under concurrent
// churn; each word is read once).
func (a *ActiveSet) Count() int {
	n := 0
	for i := range a.words {
		w := a.words[i].Load()
		for w != 0 {
			w &= w - 1
			n++
		}
	}
	return n
}

// Range calls f for every active slot in ascending order. Each word is
// snapshotted once, so the cost is one atomic load per 64 slots plus one call
// per set bit — when the mask is full this walks exactly the same slots a
// plain 0..n loop would, which is what keeps the saturated fixed-N case
// untaxed.
func (a *ActiveSet) Range(f func(tid int)) {
	for i := range a.words {
		w := a.words[i].Load()
		base := i << 6
		for w != 0 {
			f(base + bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
}
