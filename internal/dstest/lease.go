package dstest

import (
	"errors"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"nbr/internal/bench"
	"nbr/internal/smr"
)

// Lease is the dynamic-membership stress: more worker goroutines than
// registry slots acquire a lease, run a burst of operations, release, and
// loop — so slots are constantly recycled mid-traffic, departing threads
// orphan mid-protocol bags, and reclaimers adopt them, all under the live
// GarbageBound contract. At the end a drain pass must reach
// Retired == Freed: a departing thread that leaked records fails here, and
// two concurrently held leases sharing a tid (recycled-slot aliasing) fails
// immediately.
func Lease(t *testing.T, f Factory, scheme string) {
	const (
		maxThreads = 8
		workers    = 12 // > maxThreads: acquires contend and recycle slots
		sessionOps = 60
	)
	sessions := 40
	if testing.Short() {
		sessions = 8
	}

	inst := f.New(maxThreads)
	sch, err := bench.NewSchemeFor(scheme, inst.Arena, maxThreads, config(), inst.Set.Requirements())
	if err != nil {
		t.Fatal(err)
	}
	reg := smr.NewRegistry(maxThreads)
	reg.Bind(sch)
	// The allocator-side lease hooks: size the slot's cache to the scheme's
	// burst on acquire, flush it on release so unleased slots strand no
	// recyclable records.
	if burst := sch.ReclaimBurst(); burst > 0 {
		reg.OnAcquire(func(tid int) { inst.Arena.SizeCache(tid, burst) })
	}
	reg.OnRelease(func(tid int) { inst.Arena.DrainCache(tid) })

	// owners tracks concurrent lease holders per tid: two at once is the
	// recycled-tid aliasing the quarantine exists to prevent.
	var owners [maxThreads]atomic.Int32

	var stop atomic.Bool
	var violation atomic.Bool
	var peak, peakBound atomic.Uint64
	samplerDone := make(chan struct{})
	go func() {
		defer close(samplerDone)
		for !stop.Load() {
			g := sch.Stats().Garbage()
			// GarbageBound is monotone, so a bound read after the garbage
			// sample can only be ≥ the bound at sampling time: g > bound is
			// a true violation, never a race artifact.
			if bound := sch.GarbageBound(); bound != smr.Unbounded && g > uint64(bound) {
				violation.Store(true)
				peak.Store(g)
				peakBound.Store(uint64(bound))
			}
			runtime.Gosched()
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)*2654435761 + 17))
			for s := 0; s < sessions; s++ {
				l, err := reg.Acquire()
				if errors.Is(err, smr.ErrRegistryFull) {
					runtime.Gosched()
					s-- // a failed acquire is not a session
					continue
				}
				if err != nil {
					t.Error(err)
					return
				}
				tid := l.Tid()
				if owners[tid].Add(1) != 1 {
					t.Errorf("tid %d leased to two goroutines at once (recycled-slot aliasing)", tid)
					owners[tid].Add(-1)
					l.Release()
					return
				}
				g := sch.Guard(tid)
				for i := 0; i < sessionOps; i++ {
					key := uint64(rng.Intn(48)) + 1
					switch rng.Intn(3) {
					case 0:
						inst.Set.Insert(g, key)
					default:
						inst.Set.Delete(g, key) // delete-heavy: retire traffic
					}
				}
				owners[tid].Add(-1)
				l.Release()
			}
		}(w)
	}
	wg.Wait()
	stop.Store(true)
	<-samplerDone
	if violation.Load() {
		t.Fatalf("garbage-bound contract violated under lease churn: sampled %d > declared bound %d",
			peak.Load(), peakBound.Load())
	}

	// Drain: every record a departed thread retired must be reclaimable at
	// quiescence — zero orphaned records leaked. The leaky scheme never
	// frees, so only the accounting checks apply to it.
	st := sch.Stats()
	if st.Invalid() {
		t.Fatalf("stats invalid at quiescence (double-free accounting): freed %d > retired %d",
			st.Freed, st.Retired)
	}
	if d, ok := sch.(smr.Drainer); ok && scheme != "none" {
		l, err := reg.Acquire()
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 64; i++ {
			st = sch.Stats()
			if st.Retired == st.Freed {
				break
			}
			d.Drain(l.Tid())
		}
		l.Release()
		st = sch.Stats()
		if st.Retired != st.Freed {
			t.Fatalf("drain left orphaned records: retired %d, freed %d (%d leaked)",
				st.Retired, st.Freed, st.Retired-st.Freed)
		}
		if reg.OrphanCount() != 0 {
			t.Fatalf("orphan list non-empty after drain: %d records", reg.OrphanCount())
		}
	}
	if err := inst.Set.Validate(); err != nil {
		t.Fatal(err)
	}
}
