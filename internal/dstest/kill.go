package dstest

import (
	"errors"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"nbr/internal/bench"
	"nbr/internal/sigsim"
	"nbr/internal/smr"
)

// Kill is the holder-death suite: lease holders that never release. Workers
// churn sessions as in Lease, but a third of the sessions end badly — the
// holder either panics mid-burst (the panic-unwind release path must still
// quiesce the slot) or wedges with the lease held (the reaper revokes it
// through Registry.Revoke, running the shared recovery path from a foreign
// goroutine). A final deterministic scenario freezes a holder mid-read-phase
// and revokes it, asserting that on a signal-capable scheme the zombie is
// killed (sigsim.Revoked) the moment it resumes. The suite then demands full
// recovery: every killed holder's slot reaped and reusable, drain to
// Retired == Freed with an empty orphan list, zero fallback reuses, the
// declared GarbageBound held throughout, and every zombie's late Release a
// counted no-op.
//
//nbr:allow readphase — this harness manufactures protocol violations on purpose: holders freeze inside read phases so the watchdog/revocation machinery has something to kill; the orchestrating goroutine is never neutralized itself
//nbr:allow leaseescape — wedged holders hand their lease to the reaper over a channel precisely to exercise cross-goroutine revocation recovery
func Kill(t *testing.T, f Factory, scheme string) {
	const (
		maxThreads = 6
		workers    = 10 // > maxThreads: reaped slots must recycle to finish
		sessionOps = 40
	)
	sessions := 24
	if testing.Short() {
		sessions = 6
	}

	inst := f.New(maxThreads)
	sch, err := bench.NewSchemeFor(scheme, inst.Arena, maxThreads, config(), inst.Set.Requirements())
	if err != nil {
		t.Fatal(err)
	}
	reg := smr.NewRegistry(maxThreads)
	reg.Bind(sch)
	if burst := sch.ReclaimBurst(); burst > 0 {
		reg.OnAcquire(func(tid int) { inst.Arena.SizeCache(tid, burst) })
	}
	reg.OnRelease(func(tid int) { inst.Arena.DrainCache(tid) })

	// owners is the recycled-tid aliasing detector, as in Lease. A wedged
	// holder gives up its count before handing the lease to the reaper: its
	// ownership truly ends at Revoke, and the slot cannot be re-served
	// before that.
	var owners [maxThreads]atomic.Int32

	var stop atomic.Bool
	var violation atomic.Bool
	var peak, peakBound atomic.Uint64
	samplerDone := make(chan struct{})
	go func() {
		defer close(samplerDone)
		for !stop.Load() {
			g := sch.Stats().Garbage()
			if bound := sch.GarbageBound(); bound != smr.Unbounded && g > uint64(bound) {
				violation.Store(true)
				peak.Store(g)
				peakBound.Store(uint64(bound))
			}
			runtime.Gosched()
		}
	}()

	// The reaper: wedged holders' leases arrive here; each is revoked — the
	// shared recovery path runs on THIS goroutine, not the holder's — and
	// then given the zombie's late Release, which must be a counted no-op.
	reap := make(chan *smr.Lease, workers)
	reaperDone := make(chan struct{})
	var reaped, lateReleases atomic.Uint64
	go func() {
		defer close(reaperDone)
		for l := range reap {
			if !reg.Revoke(l) {
				t.Error("Revoke of a wedged holder's lease reported already-released")
				continue
			}
			reaped.Add(1)
			l.Release() // the zombie waking up late
			lateReleases.Add(1)
		}
	}()

	errKill := errors.New("dstest: injected holder panic")
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)*6364136223846793005 + 11))
			for s := 0; s < sessions; s++ {
				l, err := reg.Acquire()
				if errors.Is(err, smr.ErrRegistryFull) {
					runtime.Gosched()
					s--
					continue
				}
				if err != nil {
					t.Error(err)
					return
				}
				tid := l.Tid()
				if owners[tid].Add(1) != 1 {
					t.Errorf("tid %d leased to two goroutines at once (recycled-slot aliasing)", tid)
					owners[tid].Add(-1)
					l.Release()
					return
				}
				mode := s % 3 // 0: clean, 1: panic mid-burst, 2: wedge
				func() {
					defer func() {
						if r := recover(); r != nil {
							if r != errKill {
								panic(r)
							}
							// The panic-unwind release: same shared recovery
							// path as a clean release, from a recover block.
							owners[tid].Add(-1)
							l.Release()
						}
					}()
					g := sch.Guard(tid)
					for i := 0; i < sessionOps; i++ {
						if mode == 1 && i == sessionOps/2 {
							panic(errKill)
						}
						key := uint64(rng.Intn(48)) + 1
						if rng.Intn(3) == 0 {
							inst.Set.Insert(g, key)
						} else {
							inst.Set.Delete(g, key)
						}
					}
					owners[tid].Add(-1)
					if mode == 2 {
						reap <- l // wedged: never releases; the reaper must
						return
					}
					l.Release()
				}()
			}
		}(w)
	}
	wg.Wait()

	// Deterministic mid-operation freeze: a holder enters a read phase and
	// stops; the reaper revokes it. On a signal-capable scheme the zombie
	// must be killed the moment it resumes — terminally (Revoked), not
	// restarted (Neutralized) onto a slot that may have a successor.
	if l, err := acquireRetry(reg); err == nil {
		fg := sch.Guard(l.Tid())
		fg.BeginOp()
		fg.BeginRead()
		if !reg.Revoke(l) {
			t.Error("Revoke of the frozen holder reported already-released")
		} else {
			reaped.Add(1)
			if scheme == "nbr" || scheme == "nbr+" {
				killed := func() (hit bool) {
					defer func() {
						if r := recover(); r != nil {
							if _, ok := r.(sigsim.Revoked); !ok {
								panic(r)
							}
							hit = true
						}
					}()
					fg.EndRead()
					return false
				}()
				if !killed {
					t.Error("frozen holder resumed its read phase without being killed by the revocation")
				}
			}
			l.Release() // zombie's late release
			lateReleases.Add(1)
		}
	} else {
		t.Errorf("could not acquire a slot for the freeze scenario: %v", err)
	}

	close(reap)
	<-reaperDone
	stop.Store(true)
	<-samplerDone
	if violation.Load() {
		t.Fatalf("garbage-bound contract violated under holder kills: sampled %d > declared bound %d",
			peak.Load(), peakBound.Load())
	}

	if got := reg.ReapedLeases(); got != reaped.Load() {
		t.Fatalf("ReapedLeases = %d, want %d", got, reaped.Load())
	}
	if got := reg.RevokedReleases(); got != lateReleases.Load() {
		t.Fatalf("RevokedReleases = %d (zombie late releases not all counted as no-ops), want %d",
			got, lateReleases.Load())
	}

	// Zero stranded slots: every slot — reaped ones included — must be
	// acquirable again. Acquire retries ride the bound RoundForcer, so aging
	// needs no manual NoteRound here.
	held := make([]*smr.Lease, 0, maxThreads)
	for len(held) < maxThreads {
		l, err := acquireRetry(reg)
		if err != nil {
			t.Fatal(err)
		}
		held = append(held, l)
	}
	if got := reg.Active().Count(); got != maxThreads {
		t.Fatalf("re-acquired all slots but active mask counts %d of %d", got, maxThreads)
	}
	// Drain under the first held lease, then release them all.
	st := sch.Stats()
	if st.Invalid() {
		t.Fatalf("stats invalid at quiescence (double-free accounting): freed %d > retired %d",
			st.Freed, st.Retired)
	}
	if d, ok := sch.(smr.Drainer); ok && scheme != "none" {
		for i := 0; i < 64; i++ {
			st = sch.Stats()
			if st.Retired == st.Freed {
				break
			}
			d.Drain(held[0].Tid())
		}
		st = sch.Stats()
		if st.Retired != st.Freed {
			t.Fatalf("drain left stranded records after holder kills: retired %d, freed %d (%d leaked)",
				st.Retired, st.Freed, st.Retired-st.Freed)
		}
		if reg.OrphanCount() != 0 {
			t.Fatalf("orphan list non-empty after drain: %d records", reg.OrphanCount())
		}
	}
	for _, l := range held {
		l.Release()
	}
	// Every scheme except the leaky baseline can force the missing rounds
	// (leaky never scans, so its fallback reuse is trivially safe).
	if got := reg.FallbackReuses(); scheme != "none" && got != 0 {
		t.Fatalf("FallbackReuses = %d, want 0 (reaped slots must age through forced rounds)", got)
	}
	if err := inst.Set.Validate(); err != nil {
		t.Fatal(err)
	}
}

// acquireRetry rides out transient registry-full refusals (an un-aged
// quarantine head racing the forcer); it gives up only if the registry
// stays full long past any transient window — a genuinely stranded slot.
func acquireRetry(reg *smr.Registry) (*smr.Lease, error) {
	var err error
	for i := 0; i < 1<<16; i++ {
		var l *smr.Lease
		if l, err = reg.Acquire(); err == nil {
			return l, nil
		}
		if !errors.Is(err, smr.ErrRegistryFull) {
			return nil, err
		}
		runtime.Gosched()
	}
	return nil, err
}
