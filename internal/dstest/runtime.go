package dstest

import (
	"context"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"nbr"
)

// dumpRuntime is the dump-on-violation hook for the public-runtime suite:
// the same tail dstest's scheme-level dumpRecorder prints, read through the
// runtime's Debug surface.
func dumpRuntime(t *testing.T, rt *nbr.Runtime) {
	t.Helper()
	var sb strings.Builder
	rt.DumpRecorder(&sb, 128)
	if sb.Len() == 0 {
		return
	}
	t.Logf("%s", sb.String())
	_ = os.WriteFile(dumpFile, []byte(sb.String()), 0o644)
}

// RuntimeChurn is the multi-structure lease-churn stress for the shared
// reclamation runtime (the public nbr.Runtime): one registry, one arena
// hub, one scheme instance, four structures (the resizable hash map among
// them, so segment retirement runs through the shared hub). More worker
// goroutines than
// slots acquire a single lease each through AcquireCtx (blocking admission,
// not spin-retry), churn all the sets under it — so each per-thread bag
// holds a mix of every structure's retired records — and release, recycling
// slots mid-traffic. Meanwhile a sampler holds the aggregated live
// GarbageBound contract (declared once per runtime, covering all attached
// structures), and lease admission must never fall back to the unaged
// oldest-slot reuse: the runtime forces the missing scan rounds instead.
// At the end the runtime drains to Retired == Freed across every structure
// and each structure validates.
func RuntimeChurn(t *testing.T, scheme string) {
	const (
		maxThreads = 8
		workers    = 12 // > maxThreads: admission queues and slots recycle
		sessionOps = 60
	)
	sessions := 30
	if testing.Short() {
		sessions = 8
	}
	structures := []string{"lazylist", "harris", "dgt", "hashmap"}

	rt, err := nbr.NewRuntime(nbr.RuntimeOptions{
		Scheme:     scheme,
		MaxThreads: maxThreads,
		// The aggressive sizing the single-structure suites use, so
		// reclamation and neutralization run constantly at test scale.
		BagSize:   128,
		ScanFreq:  4,
		Threshold: 48,
		EraFreq:   16,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The suite runs observed: the one-branch recorder cost is irrelevant at
	// test scale, and any bound or drain failure below dumps a timeline that
	// names the thread that was holding garbage instead of a bare counter.
	rt.Observe(true)
	sets := make([]*nbr.Set, 0, len(structures))
	for _, name := range structures {
		s, err := rt.NewSet(name)
		if err != nil {
			t.Fatal(err)
		}
		sets = append(sets, s)
	}

	// owners tracks concurrent lease holders per tid: two at once is the
	// recycled-tid aliasing the quarantine exists to prevent.
	var owners [maxThreads]atomic.Int32

	var stop atomic.Bool
	var violation atomic.Bool
	var peak, peakBound atomic.Uint64
	samplerDone := make(chan struct{})
	go func() {
		defer close(samplerDone)
		for !stop.Load() {
			g := rt.Stats().Garbage()
			// GarbageBound is monotone, so a bound read after the garbage
			// sample can only be ≥ the bound at sampling time: g > bound is
			// a true violation, never a race artifact.
			if bound := rt.GarbageBound(); bound != nbr.Unbounded && g > uint64(bound) {
				violation.Store(true)
				peak.Store(g)
				peakBound.Store(uint64(bound))
			}
			runtime.Gosched()
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			seed := uint64(w)*0x9e3779b97f4a7c15 + 1
			next := func(n int) int {
				seed = seed*6364136223846793005 + 1442695040888963407
				return int((seed >> 33) % uint64(n))
			}
			for s := 0; s < sessions; s++ {
				ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
				l, err := rt.AcquireCtx(ctx)
				cancel()
				if err != nil {
					t.Errorf("worker %d session %d: %v", w, s, err)
					return
				}
				tid := l.Tid()
				if owners[tid].Add(1) != 1 {
					t.Errorf("tid %d leased to two goroutines at once (recycled-slot aliasing)", tid)
					owners[tid].Add(-1)
					l.Release()
					return
				}
				for i := 0; i < sessionOps; i++ {
					set := sets[next(len(sets))]
					key := uint64(next(48)) + 1
					if next(3) == 0 {
						set.Insert(l, key)
					} else {
						set.Delete(l, key) // delete-heavy: retire traffic
					}
				}
				owners[tid].Add(-1)
				l.Release()
			}
		}(w)
	}
	wg.Wait()
	stop.Store(true)
	<-samplerDone
	if violation.Load() {
		dumpRuntime(t, rt)
		t.Fatalf("aggregated garbage-bound contract violated under multi-structure churn: sampled %d > declared bound %d",
			peak.Load(), peakBound.Load())
	}
	// The round guarantee must hold without the oldest-slot fallback: every
	// scheme in the harness except the leaky baseline can force the missing
	// rounds (leaky never scans, so its fallback reuse is trivially safe).
	if scheme != "none" && rt.FallbackReuses() != 0 {
		t.Fatalf("lease admission used the unaged-slot fallback %d times; forced rounds must cover churn",
			rt.FallbackReuses())
	}

	st := rt.Stats()
	if st.Invalid() {
		t.Fatalf("stats invalid at quiescence (double-free accounting): freed %d > retired %d",
			st.Freed, st.Retired)
	}
	if err := rt.Drain(); err != nil {
		dumpRuntime(t, rt)
		t.Fatal(err)
	}
	if st = rt.Stats(); scheme != "none" && st.Retired != st.Freed {
		dumpRuntime(t, rt)
		t.Fatalf("drain left orphaned records across the shared bags: retired %d, freed %d (%d leaked)",
			st.Retired, st.Freed, st.Retired-st.Freed)
	}
	// Retired == Freed counts a staged record as freed (it left the scheme),
	// so the drain contract also requires the staging buffers themselves to
	// be empty: every lease release — and the drain's temporary lease — must
	// have flushed its per-tag buffers before DrainCache ran.
	if staged := rt.StagedFrees(); staged != 0 {
		dumpRuntime(t, rt)
		t.Fatalf("drain left %d records stranded in the hub's free staging", staged)
	}
	for _, s := range sets {
		if err := s.Validate(); err != nil {
			t.Fatalf("%s after multi-structure churn: %v", s.Name(), err)
		}
	}
}
