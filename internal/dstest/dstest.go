// Package dstest is the shared correctness suite for the data structures in
// the harness. Each structure runs the same suites against every
// reclamation scheme the applicability matrix admits:
//
//   - sequential: results match a reference map model;
//   - concurrent: mixed workload under a key-conservation law — for every
//     key, successful inserts minus successful deletes must equal final
//     membership, which any non-linearizable interleaving or lost update
//     violates;
//   - churn: the same law on a tiny key range, maximizing contention,
//     recycling and ABA pressure (stale handles panic via the generation
//     check, so an unsafe scheme integration cannot pass silently);
//   - stall: one thread stalls mid-operation while others churn, asserting
//     the paper's P2 split — bounded garbage for NBR/NBR+/HP/IBR/HE,
//     unbounded growth for QSBR/RCU/DEBRA — and that a stalled NBR thread
//     is neutralized when it resumes;
//   - bound: the live GarbageBound contract — delete-heavy churn under a
//     deliberately tiny bag while a sampler races Stats().Garbage() against
//     the scheme's declared bound, so an oversized splice (a Harris marked
//     chain, an ABTree subtree) that outruns a watermark check is caught
//     in the act, not averaged away;
//   - lease: dynamic-membership churn — more workers than slots, each
//     session acquiring and releasing mid-traffic, with a recycled-tid
//     aliasing detector and a drain to zero orphans;
//   - kill: the holder-death suite — holders panic or wedge with the lease
//     held, a reaper revokes the wedged ones through the shared recovery
//     path from a foreign goroutine, and the registry must come back whole:
//     every slot reusable, zombie releases counted as no-ops, drain to
//     Retired == Freed, zero fallback reuses.
package dstest

import (
	"math/rand"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"nbr/internal/bench"
	"nbr/internal/ds"
	"nbr/internal/mem"
	"nbr/internal/obs"
	"nbr/internal/sigsim"
	"nbr/internal/smr"
)

// Instance is one data structure wired to its arena.
type Instance struct {
	Set   ds.Set
	Arena mem.Arena
}

// Factory creates instances of one data structure for the suite.
type Factory struct {
	// Name must match the applicability-matrix entry (bench.DSNames).
	Name string
	// New creates a set sized for the given number of threads.
	New func(threads int) Instance
	// Chain, when set, deterministically builds a marked-but-unspliced
	// chain of n nodes reachable from the structure's root (single-threaded
	// setup; the guard's tid owns the instance) and returns the number
	// built. The next search through the chain must splice and retire it
	// in one RetireBatch — the oversized-splice input the BoundChain suite
	// uses to reproduce the garbage-bound violation on every run instead
	// of relying on churn luck.
	Chain func(inst Instance, g smr.Guard, n int) int
}

// config returns aggressive-reclamation settings so the suites exercise
// freeing and neutralization constantly rather than only at scale. Slots
// stays 0 (auto) so the suites run the same narrow per-DS widths the
// benchmarks use.
func config() bench.SchemeConfig {
	return bench.SchemeConfig{
		BagSize:    128,
		LoFraction: 0.5,
		ScanFreq:   4,
		Threshold:  48,
		EraFreq:    16,
	}
}

func newScheme(t *testing.T, name string, inst Instance, threads int) smr.Scheme {
	t.Helper()
	// Schemes are sized to the structure's declared announcement widths,
	// exactly as bench.Run constructs the measured configurations.
	s, err := bench.NewSchemeFor(name, inst.Arena, threads, config(), inst.Set.Requirements())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// observe wires an enabled flight recorder into a freshly built scheme when
// the scheme supports one (the NBR family implements smr.Recordable); the
// rest return a recorder that stays empty but is still nil-safe to dump. The
// suites run with the recorder always on: the one-branch cost is irrelevant
// at test scale, and every bound violation then fails with a timeline.
func observe(sch smr.Scheme, threads int) *obs.Recorder {
	rec := obs.NewRecorder(threads)
	rec.Enable()
	if r, ok := sch.(smr.Recordable); ok {
		r.SetRecorder(rec)
	}
	return rec
}

// dumpFile is where a violating suite leaves the flight-recorder tail for
// CI's artifact upload; the same tail also goes through t.Logf so the
// failure is diagnosable straight from the test output.
const dumpFile = "nbr-flight-recorder.dump"

// dumpRecorder is the dump-on-violation hook: called just before a bound or
// drain t.Fatalf, it prints the merged event tail — which names the stalled
// thread and its open read phase — and writes it next to the test binary for
// the CI artifact step.
func dumpRecorder(t *testing.T, rec *obs.Recorder) {
	t.Helper()
	tail := rec.Tail(128)
	if tail == "" {
		return
	}
	t.Logf("%s", tail)
	_ = os.WriteFile(dumpFile, []byte(tail), 0o644) // best-effort: the artifact step tolerates absence
}

// RunAll executes every suite × scheme combination for the factory.
func RunAll(t *testing.T, f Factory) {
	for _, scheme := range bench.SchemeNames {
		if !bench.Runnable(f.Name, scheme) {
			continue
		}
		scheme := scheme
		t.Run("sequential/"+scheme, func(t *testing.T) { Sequential(t, f, scheme) })
		t.Run("concurrent/"+scheme, func(t *testing.T) { Concurrent(t, f, scheme, 6, 256) })
		t.Run("churn/"+scheme, func(t *testing.T) { Concurrent(t, f, scheme, 6, 8) })
		t.Run("stall/"+scheme, func(t *testing.T) { Stall(t, f, scheme) })
		t.Run("bound/"+scheme, func(t *testing.T) { Bound(t, f, scheme) })
		t.Run("lease/"+scheme, func(t *testing.T) { Lease(t, f, scheme) })
		t.Run("kill/"+scheme, func(t *testing.T) { Kill(t, f, scheme) })
		if f.Chain != nil {
			t.Run("boundchain/"+scheme, func(t *testing.T) { BoundChain(t, f, scheme) })
		}
	}
}

// Sequential compares the structure against a map model under one thread.
func Sequential(t *testing.T, f Factory, scheme string) {
	inst := f.New(1)
	g := newScheme(t, scheme, inst, 1).Guard(0)
	model := make(map[uint64]bool)
	rng := rand.New(rand.NewSource(42))
	const keys = 64
	ops := 4000
	if testing.Short() {
		ops = 800
	}
	for i := 0; i < ops; i++ {
		key := uint64(rng.Intn(keys)) + 1
		switch rng.Intn(3) {
		case 0:
			if got, want := inst.Set.Insert(g, key), !model[key]; got != want {
				t.Fatalf("op %d: Insert(%d) = %v, want %v", i, key, got, want)
			}
			model[key] = true
		case 1:
			if got, want := inst.Set.Delete(g, key), model[key]; got != want {
				t.Fatalf("op %d: Delete(%d) = %v, want %v", i, key, got, want)
			}
			delete(model, key)
		case 2:
			if got, want := inst.Set.Contains(g, key), model[key]; got != want {
				t.Fatalf("op %d: Contains(%d) = %v, want %v", i, key, got, want)
			}
		}
	}
	size := 0
	for _, present := range model {
		if present {
			size++
		}
	}
	if got := inst.Set.Len(); got != size {
		t.Fatalf("Len = %d, model = %d", got, size)
	}
	if err := inst.Set.Validate(); err != nil {
		t.Fatal(err)
	}
}

// Concurrent churns `threads` goroutines over `keys` keys and checks the
// conservation law plus structural invariants.
func Concurrent(t *testing.T, f Factory, scheme string, threads int, keys int) {
	inst := f.New(threads)
	sch := newScheme(t, scheme, inst, threads)
	ops := 2500
	if testing.Short() {
		ops = 500
	}
	type tally struct{ ins, del int }
	tallies := make([]map[uint64]*tally, threads)
	var wg sync.WaitGroup
	for tid := 0; tid < threads; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			g := sch.Guard(tid)
			local := make(map[uint64]*tally)
			tallies[tid] = local
			rng := rand.New(rand.NewSource(int64(tid)*7919 + 1))
			for i := 0; i < ops; i++ {
				key := uint64(rng.Intn(keys)) + 1
				tl := local[key]
				if tl == nil {
					tl = &tally{}
					local[key] = tl
				}
				switch rng.Intn(4) {
				case 0, 1:
					if inst.Set.Insert(g, key) {
						tl.ins++
					}
				case 2:
					if inst.Set.Delete(g, key) {
						tl.del++
					}
				case 3:
					inst.Set.Contains(g, key)
				}
			}
		}(tid)
	}
	wg.Wait()

	g := sch.Guard(0)
	total := 0
	for key := uint64(1); key <= uint64(keys); key++ {
		ins, del := 0, 0
		for _, local := range tallies {
			if tl := local[key]; tl != nil {
				ins += tl.ins
				del += tl.del
			}
		}
		net := ins - del
		if net != 0 && net != 1 {
			t.Fatalf("key %d: conservation violated, ins=%d del=%d", key, ins, del)
		}
		if got := inst.Set.Contains(g, key); got != (net == 1) {
			t.Fatalf("key %d: present=%v but ins-del=%d", key, got, net)
		}
		total += net
	}
	if got := inst.Set.Len(); got != total {
		t.Fatalf("Len = %d, conservation says %d", got, total)
	}
	if err := inst.Set.Validate(); err != nil {
		t.Fatal(err)
	}
	st := sch.Stats()
	if st.Invalid() {
		t.Fatalf("stats invalid at quiescence (double-free accounting): freed %d > retired %d",
			st.Freed, st.Retired)
	}
}

// boundedSchemes lists the schemes that must declare a finite GarbageBound
// (the paper's P2 claimants); every other scheme must report smr.Unbounded.
var boundedSchemes = map[string]bool{
	"nbr": true, "nbr+": true, "hp": true, "he": true, "ibr": true,
}

// Bound is the live garbage-bound contract check. The configuration is an
// oversized-batch stress: the bag/threshold is tiny relative to the chains
// and subtrees the structure unlinks (delete-heavy traffic on a small key
// range keeps marked chains and underfull merges coming), so any retire
// path that defers its watermark check past a whole splice overshoots the
// declared bound by the splice length — which the concurrent sampler, not
// just the final tally, must never observe.
func Bound(t *testing.T, f Factory, scheme string) {
	const threads = 6
	inst := f.New(threads)
	cfg := config()
	cfg.BagSize = 32 // N·R ≤ 18 stays below; one splice can span the bag
	sch, err := bench.NewSchemeFor(scheme, inst.Arena, threads, cfg, inst.Set.Requirements())
	if err != nil {
		t.Fatal(err)
	}
	rec := observe(sch, threads)
	bound := sch.GarbageBound()
	if boundedSchemes[scheme] {
		if bound == smr.Unbounded || bound <= 0 {
			t.Fatalf("%s must declare a finite positive GarbageBound, got %d", scheme, bound)
		}
	} else if bound != smr.Unbounded {
		t.Fatalf("%s must declare smr.Unbounded, got %d", scheme, bound)
	}

	var stop atomic.Bool
	var peak atomic.Uint64
	samplerDone := make(chan struct{})
	go func() {
		defer close(samplerDone)
		for !stop.Load() {
			if g := sch.Stats().Garbage(); g > peak.Load() {
				peak.Store(g)
			}
			runtime.Gosched()
		}
	}()

	ops := 4000
	if testing.Short() {
		ops = 800
	}
	var wg sync.WaitGroup
	for tid := 0; tid < threads; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			g := sch.Guard(tid)
			rng := rand.New(rand.NewSource(int64(tid)*104729 + 3))
			for i := 0; i < ops; i++ {
				key := uint64(rng.Intn(64)) + 1
				// Delete-heavy: 1 insert refills for 2 delete attempts, so
				// unlink (and splice) traffic dominates.
				if rng.Intn(3) == 0 {
					inst.Set.Insert(g, key)
				} else {
					inst.Set.Delete(g, key)
				}
			}
		}(tid)
	}
	wg.Wait()
	stop.Store(true)
	<-samplerDone

	st := sch.Stats()
	if st.Invalid() {
		t.Fatalf("stats invalid at quiescence (double-free accounting): freed %d > retired %d",
			st.Freed, st.Retired)
	}
	if g := st.Garbage(); g > peak.Load() {
		peak.Store(g) // final quiescent sample
	}
	// GarbageBound is monotone non-decreasing (era schemes raise it as
	// their measured pinned set grows), so the final reading dominates the
	// bound at every moment a garbage sample was taken.
	if bound = sch.GarbageBound(); bound != smr.Unbounded && peak.Load() > uint64(bound) {
		dumpRecorder(t, rec)
		t.Fatalf("garbage-bound contract violated: sampled peak %d > declared bound %d",
			peak.Load(), bound)
	}
	if err := inst.Set.Validate(); err != nil {
		t.Fatal(err)
	}
}

// BoundChain is the deterministic oversized-splice regression: a
// single-threaded setup builds a marked chain several times longer than the
// scheme's entire garbage bound, then one search splices it in one
// RetireBatch. A retire path that defers its watermark check past the whole
// splice ends the call with the chain still in its bag — garbage above the
// declared bound on every run, no churn luck required (ROADMAP item from
// PR 3; the scheme-seam variant lives in internal/core).
func BoundChain(t *testing.T, f Factory, scheme string) {
	const threads = 2
	inst := f.New(threads)
	cfg := config()
	cfg.BagSize = 32 // one splice spans many bags
	sch, err := bench.NewSchemeFor(scheme, inst.Arena, threads, cfg, inst.Set.Requirements())
	if err != nil {
		t.Fatal(err)
	}
	rec := observe(sch, threads)
	g := sch.Guard(0)

	n := 256
	if b := sch.GarbageBound(); b != smr.Unbounded && n < 3*b {
		n = 3 * b // the chain must dwarf the full declared bound
	}
	built := f.Chain(inst, g, n)
	if built < n {
		t.Fatalf("chain builder produced %d marked nodes, want %d", built, n)
	}

	// One search past the chain splices and retires it in one batch.
	if inst.Set.Contains(g, uint64(n)+1) {
		t.Fatalf("key %d must be absent", n+1)
	}

	st := sch.Stats()
	if st.Retired < uint64(built) {
		t.Fatalf("splice retired %d records, want at least the %d-node chain", st.Retired, built)
	}
	if bound := sch.GarbageBound(); bound != smr.Unbounded && st.Garbage() > uint64(bound) {
		dumpRecorder(t, rec)
		t.Fatalf("oversized splice outran the garbage bound: %d > %d", st.Garbage(), bound)
	}
	if err := inst.Set.Validate(); err != nil {
		t.Fatal(err)
	}
}

// Stall reproduces E2's stalled-thread scenario at test scale: the last
// thread begins an operation (announces/checkpoints) and goes to sleep while
// the others churn deletions.
//
//nbr:allow readphase — the stalled reader IS the fixture: the test goroutine deliberately parks inside an open read phase and orchestrates workers, assertions, and the wake-up around it; the harness itself is never neutralized, only the guard it holds is
func Stall(t *testing.T, f Factory, scheme string) {
	const workers = 4
	threads := workers + 1
	inst := f.New(threads)
	sch := newScheme(t, scheme, inst, threads)
	rec := observe(sch, threads)
	cfg := config()

	// The stalled thread enters an operation mid-read-phase and stops.
	stalled := sch.Guard(workers)
	stalled.BeginOp()
	stalled.BeginRead()

	ops := 3000
	if testing.Short() {
		ops = 600
	}
	var wg sync.WaitGroup
	for tid := 0; tid < workers; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			g := sch.Guard(tid)
			rng := rand.New(rand.NewSource(int64(tid) + 99))
			for i := 0; i < ops; i++ {
				key := uint64(rng.Intn(128)) + 1
				if i%2 == 0 {
					inst.Set.Insert(g, key)
				} else {
					inst.Set.Delete(g, key)
				}
			}
		}(tid)
	}
	wg.Wait()

	st := sch.Stats()
	garbage := st.Garbage()
	if st.Invalid() {
		t.Fatalf("stats invalid at quiescence (double-free accounting): freed %d > retired %d",
			st.Freed, st.Retired)
	}
	switch scheme {
	case "nbr", "nbr+":
		bound := sch.GarbageBound()
		if bound == smr.Unbounded {
			t.Fatalf("%s must declare a finite GarbageBound", scheme)
		}
		if garbage > uint64(bound) {
			// The timeline names the stalled thread: its ring shows a
			// read-begin with no read-end, listed in the open-phase footer.
			dumpRecorder(t, rec)
			t.Fatalf("bounded-garbage violation: %d > declared bound %d", garbage, bound)
		}
		// The stalled thread was signalled; it must be neutralized the
		// moment it resumes its read phase.
		woke := func() (hit bool) {
			defer func() {
				if r := recover(); r != nil {
					if _, ok := r.(sigsim.Neutralized); !ok {
						panic(r)
					}
					hit = true
				}
			}()
			stalled.EndRead()
			return false
		}()
		if st.Signals > 0 && !woke {
			dumpRecorder(t, rec)
			t.Fatal("stalled thread resumed its read phase without neutralization")
		}
	case "hp", "ibr", "he":
		bound := sch.GarbageBound()
		if bound == smr.Unbounded {
			t.Fatalf("%s must declare a finite GarbageBound", scheme)
		}
		if garbage > uint64(bound) {
			dumpRecorder(t, rec)
			t.Fatalf("bounded-garbage violation: %d > declared bound %d", garbage, bound)
		}
		stalled.EndRead()
	case "qsbr", "rcu", "debra":
		if sch.GarbageBound() != smr.Unbounded {
			t.Fatalf("%s must declare smr.Unbounded", scheme)
		}
		if st.Retired > uint64(4*cfg.Threshold) && garbage < uint64(cfg.Threshold) {
			t.Fatalf("expected unbounded growth under a stalled thread, garbage=%d retired=%d",
				garbage, st.Retired)
		}
		stalled.EndRead()
	case "none":
		if garbage != st.Retired {
			t.Fatalf("leaky must never free: garbage=%d retired=%d", garbage, st.Retired)
		}
		stalled.EndRead()
	}
	stalled.EndOp()

	// After the stall clears, the unbounded schemes must drain. Every thread
	// must participate: epoch schemes need all registered threads to pass
	// through quiescent states (an idle thread that never announces blocks
	// QSBR forever, which is correct behaviour, not what we test here).
	if scheme == "qsbr" || scheme == "rcu" || scheme == "debra" {
		for i := 0; i < 800; i++ {
			for tid := 0; tid < threads; tid++ {
				g := sch.Guard(tid)
				key := uint64(i%128) + 1
				inst.Set.Insert(g, key)
				inst.Set.Delete(g, key)
			}
		}
		if after := sch.Stats(); after.Freed == st.Freed {
			t.Fatal("no reclamation progress after the stalled thread recovered")
		}
	}
	if err := inst.Set.Validate(); err != nil {
		t.Fatal(err)
	}
}
