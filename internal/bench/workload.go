package bench

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"nbr/internal/hist"
	"nbr/internal/sigsim"
	"nbr/internal/smr"
)

// Workload is one benchmark cell: a data structure × scheme × mix ×
// thread-count configuration, mirroring one point in a paper figure.
type Workload struct {
	DS       string
	Scheme   string
	Threads  int
	KeyRange uint64
	InsPct   int // percentage of inserts
	DelPct   int // percentage of deletes; the rest are searches
	Duration time.Duration
	// Prefill is the initial set size; -1 selects KeyRange/2 (the paper's
	// protocol).
	Prefill int64
	// Stall runs one extra thread that begins an operation and sleeps for
	// the whole measurement (E2's delayed-thread scenario).
	Stall bool
	// YieldEvery makes each worker yield the processor every N operations.
	// When goroutines outnumber GOMAXPROCS the Go scheduler otherwise runs
	// each worker in ~10ms slices, which serializes the fine-grained
	// interleaving the paper's 192-hardware-thread machine provides (and
	// NBR+'s passive RGP detection depends on). 0 selects the default: 16
	// when oversubscribed, off otherwise. Negative disables.
	YieldEvery int
	Cfg        SchemeConfig
	Seed       uint64
}

// Result is one measured cell.
type Result struct {
	Workload
	Ops       uint64
	Elapsed   time.Duration
	Mops      float64 // million operations per second
	PeakBytes int64   // peak live allocator bytes (the E2 metric)
	PeakLive  int64   // peak live records
	Stats     smr.Stats
	AllocOps  uint64 // shared-free-list lock acquisitions (burst contention)
	// Bound is the scheme's declared garbage bound (smr.Unbounded for the
	// epoch schemes and leaky) and GarbagePeak the largest Stats().Garbage()
	// the sampler observed during the run — together they make the bound a
	// measured contract in every cell, not a doc comment.
	Bound       int
	GarbagePeak uint64
	// Sampled operation latency (every latencySample-th op): P1 is about
	// latency as well as throughput, and reclamation bursts surface here.
	LatP50, LatP99, LatMax time.Duration
	// Series is the live-bytes timeline (one sample per 5ms tick): the
	// sawtooth of bag growth and reclamation bursts, E2's figure over time.
	Series []int64
	// Retire handoff-size distribution, read from the scheme's own
	// accounting (smr.Stats.BatchHist): every Retire counts as a handoff of
	// 1, every RetireBatch as one handoff of its length. Shows how much of
	// the retire traffic the RetireBatch seam actually amortizes.
	Batches                      uint64
	BatchP50, BatchP99, BatchMax int64
	BatchHist                    []uint64
}

// latencySample is the per-thread operation sampling period.
const latencySample = 32

// splitmix64 is the per-worker key generator (cheap, race-free).
func splitmix64(s *uint64) uint64 {
	*s += 0x9e3779b97f4a7c15
	z := *s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Run executes one workload cell and returns its measurements.
func Run(w Workload) (Result, error) {
	if !Runnable(w.DS, w.Scheme) {
		return Result{}, fmt.Errorf("bench: %s is not runnable under %s (Table 1)", w.DS, w.Scheme)
	}
	if w.KeyRange < 2 {
		return Result{}, fmt.Errorf("bench: key range %d too small", w.KeyRange)
	}
	if w.Duration <= 0 {
		w.Duration = time.Second
	}
	if w.Prefill < 0 {
		w.Prefill = int64(w.KeyRange / 2)
	}
	if w.Seed == 0 {
		w.Seed = 0x9e3779b97f4a7c15
	}
	if w.YieldEvery == 0 && w.Threads > runtime.GOMAXPROCS(0) {
		w.YieldEvery = 16
	}
	total := w.Threads
	if w.Stall {
		total++
	}
	inst, err := NewDS(w.DS, total)
	if err != nil {
		return Result{}, err
	}
	sch, err := NewSchemeFor(w.Scheme, inst.Arena, total, w.Cfg, inst.Req)
	if err != nil {
		return Result{}, err
	}

	prefill(inst, sch, w)

	var (
		stop     atomic.Bool
		started  sync.WaitGroup
		done     sync.WaitGroup
		opCounts = make([]uint64, w.Threads)
		lats     = make([]hist.Histogram, w.Threads)
	)

	// Peak-memory sampler (the E2 metric), live-bytes timeline, and the
	// garbage-bound probe: Stats().Garbage() is raced against the scheme's
	// declared GarbageBound, so a bound violation that is only visible
	// mid-run (an oversized splice transiting a bag) still gets caught.
	var peakBytes, peakLive atomic.Int64
	var peakGarbage atomic.Uint64
	var series []int64
	samplerDone := make(chan struct{})
	go func() {
		defer close(samplerDone)
		tick := time.NewTicker(5 * time.Millisecond)
		defer tick.Stop()
		for !stop.Load() {
			st := inst.MemStats()
			if st.LiveBytes > peakBytes.Load() {
				peakBytes.Store(st.LiveBytes)
			}
			if st.Live > peakLive.Load() {
				peakLive.Store(st.Live)
			}
			if g := sch.Stats().Garbage(); g > peakGarbage.Load() {
				peakGarbage.Store(g)
			}
			series = append(series, st.LiveBytes)
			<-tick.C
		}
	}()

	// Optional stalled thread: begins an operation mid-read-phase and
	// sleeps until the measurement ends, exactly like E2's sleeping thread.
	var stallWG sync.WaitGroup
	if w.Stall {
		stallWG.Add(1)
		go func() {
			defer stallWG.Done()
			g := sch.Guard(w.Threads)
			g.BeginOp()
			g.BeginRead()
			for !stop.Load() {
				time.Sleep(time.Millisecond)
			}
			// On wake the thread may be neutralized (NBR) — absorb it.
			func() {
				defer func() {
					if r := recover(); r != nil {
						if _, ok := r.(sigsim.Neutralized); !ok {
							panic(r)
						}
					}
				}()
				g.EndRead()
			}()
			g.EndOp()
		}()
	}

	for tid := 0; tid < w.Threads; tid++ {
		started.Add(1)
		done.Add(1)
		go func(tid int) {
			defer done.Done()
			g := sch.Guard(tid)
			rng := w.Seed + uint64(tid)*0x100000001b3
			started.Done()
			var ops uint64
			lat := &lats[tid]
			for !stop.Load() {
				r := splitmix64(&rng)
				key := r%w.KeyRange + 1
				roll := int((r >> 32) % 100)
				sampled := ops%latencySample == 0
				var t0 time.Time
				if sampled {
					t0 = time.Now()
				}
				switch {
				case roll < w.InsPct:
					inst.Set.Insert(g, key)
				case roll < w.InsPct+w.DelPct:
					inst.Set.Delete(g, key)
				default:
					inst.Set.Contains(g, key)
				}
				if sampled {
					lat.Record(int64(time.Since(t0)))
				}
				ops++
				if w.YieldEvery > 0 && ops%uint64(w.YieldEvery) == 0 {
					runtime.Gosched()
				}
			}
			opCounts[tid] = ops
		}(tid)
	}

	started.Wait()
	begin := time.Now()
	time.Sleep(w.Duration)
	stop.Store(true)
	done.Wait()
	elapsed := time.Since(begin)
	stallWG.Wait()
	<-samplerDone

	// Final memory sample (bags may have peaked right at the end).
	st := inst.MemStats()
	if st.LiveBytes > peakBytes.Load() {
		peakBytes.Store(st.LiveBytes)
	}
	if st.Live > peakLive.Load() {
		peakLive.Store(st.Live)
	}

	res := Result{
		Workload:  w,
		Elapsed:   elapsed,
		PeakBytes: peakBytes.Load(),
		PeakLive:  peakLive.Load(),
		Stats:     sch.Stats(),
		AllocOps:  st.GlobalOps,
		Series:    series, // sampler goroutine has exited; safe to hand off
		Bound:     sch.GarbageBound(),
	}
	res.GarbagePeak = peakGarbage.Load()
	if g := res.Stats.Garbage(); g > res.GarbagePeak {
		res.GarbagePeak = g // bags may have peaked right at the end
	}
	for _, c := range opCounts {
		res.Ops += c
	}
	res.Mops = float64(res.Ops) / elapsed.Seconds() / 1e6

	var lat hist.Histogram
	for i := range lats {
		lat.Merge(&lats[i])
	}
	res.LatP50 = time.Duration(lat.Quantile(0.50))
	res.LatP99 = time.Duration(lat.Quantile(0.99))
	res.LatMax = time.Duration(lat.Max())

	res.Batches = res.Stats.RetireCalls()
	res.BatchP50 = res.Stats.BatchQuantile(0.50)
	res.BatchP99 = res.Stats.BatchQuantile(0.99)
	res.BatchMax = res.Stats.BatchMax()
	res.BatchHist = trimBuckets(res.Stats.BatchHist)
	return res, nil
}

// BoundExceeded reports whether the sampled garbage peak violated the
// scheme's declared bound. Always false for unbounded schemes.
func (r Result) BoundExceeded() bool {
	return r.Bound != smr.Unbounded && r.GarbagePeak > uint64(r.Bound)
}

// trimBuckets drops the empty tail of a bucket array for compact reports.
func trimBuckets(b [smr.BatchBuckets]uint64) []uint64 {
	n := len(b)
	for n > 0 && b[n-1] == 0 {
		n--
	}
	if n == 0 {
		return nil
	}
	out := make([]uint64, n)
	copy(out, b[:n])
	return out
}

// prefill populates the set to the target size using all worker threads,
// inserting uniformly random keys as the paper's harness does.
func prefill(inst Instance, sch smr.Scheme, w Workload) {
	if w.Prefill == 0 {
		return
	}
	var inserted atomic.Int64
	var wg sync.WaitGroup
	workers := w.Threads
	if workers > 8 {
		workers = 8 // prefill is setup, not measurement; cap the fan-out
	}
	for i := 0; i < workers; i++ {
		// Stride the prefill workers across the full thread-id range rather
		// than packing them into 0..workers-1: together with the hashed
		// tid→shard map in internal/mem this spreads the prefill burst's
		// allocation and flush traffic over the free-list shards instead of
		// convoying it on the ids (and shards) the first few workers own.
		tid := i * w.Threads / workers
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			g := sch.Guard(tid)
			rng := w.Seed ^ (uint64(tid+1) * 0x9e3779b97f4a7c15)
			for inserted.Load() < w.Prefill {
				key := splitmix64(&rng)%w.KeyRange + 1
				if inst.Set.Insert(g, key) {
					inserted.Add(1)
				}
			}
		}(tid)
	}
	wg.Wait()
}
