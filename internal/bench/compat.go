package bench

// This file encodes the paper's Table 1 (applicability of SMR algorithms)
// for the data structures in the harness, in two layers:
//
//   - the *theoretical* verdicts of Table 1 itself, printed by cmd/nbrtable1
//     and asserted by tests;
//   - the *runnable* matrix, which additionally admits the combinations the
//     paper's own benchmark runs despite a "No" in Table 1 (HP on the lazy
//     list and on DGT, using the benchmark-style link re-read validation at
//     the documented cost of the structures' progress guarantees).

// DSNames lists the data structures in the harness.
var DSNames = []string{"lazylist", "harris", "hashmap", "hmlist", "hmlist-norestart", "dgt", "abtree"}

// Verdict is one Table 1 cell.
type Verdict struct {
	OK   bool
	Note string
}

// table1 maps data structure → scheme family → verdict. Scheme families
// follow the paper's columns: NBR covers nbr and nbr+; EBR covers qsbr, rcu
// and debra; HP covers hp, ibr and he (the paper groups HP/IBR/HE/… in one
// column because their integration requirements coincide).
var table1 = map[string]map[string]Verdict{
	"lazylist": {
		"NBR": {true, "single Φread then Φwrite; reserve pred and curr (2 reservations)"},
		"EBR": {true, ""},
		"HP":  {false, "repeated protect failures on marked-but-linked nodes break wait-free searches (run in benchmark mode anyway, as the paper's E1 does)"},
	},
	"harris": {
		"NBR": {true, "multiple read/write phases, every Φread restarts from the root (§5.2, Alg. 3); ≤3 reservations"},
		"EBR": {true, ""},
		"HP":  {true, "validate via link re-read (HM04-style)"},
	},
	"hashmap": {
		"NBR": {true, "split-ordered list; every Φread restarts from the root (table pointer and dummies are roots); ≤3 reservations, one of them the cell array's segment handle"},
		"EBR": {true, ""},
		"HP":  {true, "validate via table re-read + link re-read (HM04-style); cells pinned through the array's segment handle"},
	},
	"hmlist": {
		"NBR": {true, "E4 modification: every Φread restarts from the root"},
		"EBR": {true, ""},
		"HP":  {true, ""},
	},
	"hmlist-norestart": {
		"NBR": {false, "Φread after an auxiliary Φwrite resumes from pred, violating Requirement 12"},
		"EBR": {true, ""},
		"HP":  {true, ""},
	},
	"dgt": {
		"NBR": {true, "sync-free search then ticket-locked update; ≤3 reservations"},
		"EBR": {true, ""},
		"HP":  {false, "no marks, so reachability of a protected node cannot be validated (run in benchmark mode anyway, as the paper's E1 does)"},
	},
	"abtree": {
		"NBR": {true, "auxiliary rebalancing steps restart from the root; ≤3 reservations"},
		"EBR": {true, ""},
		"HP":  {false, "searches traverse nodes whose reachability cannot be validated without version support"},
	},
}

// family maps a concrete scheme name onto its Table 1 column.
func family(scheme string) string {
	switch scheme {
	case "nbr", "nbr+":
		return "NBR"
	case "qsbr", "rcu", "debra", "none", "leaky":
		return "EBR" // leaky trivially applies everywhere; grouped for lookup
	case "hp", "ibr", "he":
		return "HP"
	}
	return ""
}

// Table1Verdict returns the paper's theoretical applicability verdict.
func Table1Verdict(dsName, scheme string) (Verdict, bool) {
	if scheme == "none" || scheme == "leaky" {
		return Verdict{true, "leaky baseline applies everywhere"}, true
	}
	row, ok := table1[dsName]
	if !ok {
		return Verdict{}, false
	}
	v, ok := row[family(scheme)]
	return v, ok
}

// runnableExceptions lists combinations that Table 1 rejects but the paper's
// benchmark nevertheless runs (with benchmark-style validation).
var runnableExceptions = map[[2]string]bool{
	{"lazylist", "HP"}: true,
	{"dgt", "HP"}:      true,
}

// Runnable reports whether the harness will execute the combination, which
// is the Table 1 verdict plus the paper's own benchmark exceptions.
func Runnable(dsName, scheme string) bool {
	v, ok := Table1Verdict(dsName, scheme)
	if !ok {
		return false
	}
	if v.OK {
		return true
	}
	return runnableExceptions[[2]string{dsName, family(scheme)}]
}
