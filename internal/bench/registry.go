package bench

import (
	"fmt"

	"nbr/internal/ds"
	"nbr/internal/ds/abtree"
	"nbr/internal/ds/dgtbst"
	"nbr/internal/ds/harrislist"
	"nbr/internal/ds/hmlist"
	"nbr/internal/ds/lazylist"
	"nbr/internal/mem"
)

// Instance is one constructed data structure plus its allocator hooks.
type Instance struct {
	Set      ds.Set
	Arena    mem.Arena
	MemStats func() mem.Stats
}

// NewDS constructs the named data structure sized for `threads`.
func NewDS(name string, threads int) (Instance, error) {
	switch name {
	case "lazylist":
		l := lazylist.New(threads)
		return Instance{Set: l, Arena: l.Arena(), MemStats: l.MemStats}, nil
	case "harris":
		l := harrislist.New(threads)
		return Instance{Set: l, Arena: l.Arena(), MemStats: l.MemStats}, nil
	case "hmlist":
		l := hmlist.New(threads, hmlist.Restart)
		return Instance{Set: l, Arena: l.Arena(), MemStats: l.MemStats}, nil
	case "hmlist-norestart":
		l := hmlist.New(threads, hmlist.NoRestart)
		return Instance{Set: l, Arena: l.Arena(), MemStats: l.MemStats}, nil
	case "dgt":
		t := dgtbst.New(threads)
		return Instance{Set: t, Arena: t.Arena(), MemStats: t.MemStats}, nil
	case "abtree":
		t := abtree.New(threads)
		return Instance{Set: t, Arena: t.Arena(), MemStats: t.MemStats}, nil
	}
	return Instance{}, fmt.Errorf("bench: unknown data structure %q (have %v)", name, DSNames)
}
