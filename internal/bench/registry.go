package bench

import (
	"fmt"

	"nbr/internal/ds"
	"nbr/internal/ds/abtree"
	"nbr/internal/ds/dgtbst"
	"nbr/internal/ds/harrislist"
	"nbr/internal/ds/hashmap"
	"nbr/internal/ds/hmlist"
	"nbr/internal/ds/lazylist"
	"nbr/internal/mem"
)

// Instance is one constructed data structure plus its allocator hooks and
// the announcement widths it declares (consumed at scheme construction).
type Instance struct {
	Set      ds.Set
	Arena    mem.Arena
	MemStats func() mem.Stats
	Req      ds.Requirements
}

// NewDS constructs the named data structure sized for `threads`.
func NewDS(name string, threads int) (Instance, error) {
	return NewDSArena(name, mem.Config{MaxThreads: threads})
}

// NewDSArena constructs the named data structure over a pool built from
// cfg. A shared-arena runtime passes its assigned arena tag in cfg.Tag so
// the structure's handles route through a mem.Hub; NewDS is the untagged
// standalone form.
func NewDSArena(name string, cfg mem.Config) (Instance, error) {
	var inst Instance
	switch name {
	case "lazylist":
		l := lazylist.NewWith(cfg)
		inst = Instance{Set: l, Arena: l.Arena(), MemStats: l.MemStats}
	case "harris":
		l := harrislist.NewWith(cfg)
		inst = Instance{Set: l, Arena: l.Arena(), MemStats: l.MemStats}
	case "hashmap":
		h := hashmap.NewWith(cfg)
		inst = Instance{Set: h, Arena: h.Arena(), MemStats: h.MemStats}
	case "hmlist":
		l := hmlist.NewWith(cfg, hmlist.Restart)
		inst = Instance{Set: l, Arena: l.Arena(), MemStats: l.MemStats}
	case "hmlist-norestart":
		l := hmlist.NewWith(cfg, hmlist.NoRestart)
		inst = Instance{Set: l, Arena: l.Arena(), MemStats: l.MemStats}
	case "dgt":
		t := dgtbst.NewWith(cfg)
		inst = Instance{Set: t, Arena: t.Arena(), MemStats: t.MemStats}
	case "abtree":
		t := abtree.NewWith(cfg)
		inst = Instance{Set: t, Arena: t.Arena(), MemStats: t.MemStats}
	default:
		return Instance{}, fmt.Errorf("bench: unknown data structure %q (have %v)", name, DSNames)
	}
	inst.Req = inst.Set.Requirements()
	return inst, nil
}

// dsRequirements is the width registry: the announcement widths each
// structure kind declares, available without constructing an instance. A
// shared runtime uses it to size its scheme for structure kinds that will
// attach later (RuntimeOptions.Structures). TestDSRequirementsMatchInstances
// pins each entry to the corresponding Set.Requirements(), so the table
// cannot drift from the structures' own declarations.
var dsRequirements = map[string]ds.Requirements{
	"lazylist":         {Slots: 2, Reservations: 2, Threshold: ds.DefaultThreshold},
	"harris":           {Slots: 3, Reservations: 2, Threshold: ds.DefaultThreshold},
	"hashmap":          {Slots: 4, Reservations: 3, Threshold: ds.DefaultThreshold},
	"hmlist":           {Slots: 2, Reservations: 2, Threshold: ds.DefaultThreshold},
	"hmlist-norestart": {Slots: 2, Reservations: 2, Threshold: ds.DefaultThreshold},
	"dgt":              {Slots: 3, Reservations: 3, Threshold: ds.DefaultThreshold},
	"abtree":           {Slots: 2, Reservations: 3, Threshold: ds.DefaultThreshold},
}

// DSRequirements returns the announcement widths the named structure kind
// declares, without constructing it.
func DSRequirements(name string) (ds.Requirements, error) {
	req, ok := dsRequirements[name]
	if !ok {
		return ds.Requirements{}, fmt.Errorf("bench: unknown data structure %q (have %v)", name, DSNames)
	}
	return req, nil
}

// MaxRequirements folds the width registry over names: the smallest widths
// every named structure kind fits under. An empty list yields the zero value
// (callers grow it from actual attachments).
func MaxRequirements(names []string) (ds.Requirements, error) {
	var max ds.Requirements
	for _, name := range names {
		req, err := DSRequirements(name)
		if err != nil {
			return ds.Requirements{}, err
		}
		if req.Slots > max.Slots {
			max.Slots = req.Slots
		}
		if req.Reservations > max.Reservations {
			max.Reservations = req.Reservations
		}
		if req.Threshold > max.Threshold {
			max.Threshold = req.Threshold
		}
	}
	return max, nil
}
