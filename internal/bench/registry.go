package bench

import (
	"fmt"

	"nbr/internal/ds"
	"nbr/internal/ds/abtree"
	"nbr/internal/ds/dgtbst"
	"nbr/internal/ds/harrislist"
	"nbr/internal/ds/hmlist"
	"nbr/internal/ds/lazylist"
	"nbr/internal/mem"
)

// Instance is one constructed data structure plus its allocator hooks and
// the announcement widths it declares (consumed at scheme construction).
type Instance struct {
	Set      ds.Set
	Arena    mem.Arena
	MemStats func() mem.Stats
	Req      ds.Requirements
}

// NewDS constructs the named data structure sized for `threads`.
func NewDS(name string, threads int) (Instance, error) {
	return NewDSArena(name, mem.Config{MaxThreads: threads})
}

// NewDSArena constructs the named data structure over a pool built from
// cfg. A shared-arena runtime passes its assigned arena tag in cfg.Tag so
// the structure's handles route through a mem.Hub; NewDS is the untagged
// standalone form.
func NewDSArena(name string, cfg mem.Config) (Instance, error) {
	var inst Instance
	switch name {
	case "lazylist":
		l := lazylist.NewWith(cfg)
		inst = Instance{Set: l, Arena: l.Arena(), MemStats: l.MemStats}
	case "harris":
		l := harrislist.NewWith(cfg)
		inst = Instance{Set: l, Arena: l.Arena(), MemStats: l.MemStats}
	case "hmlist":
		l := hmlist.NewWith(cfg, hmlist.Restart)
		inst = Instance{Set: l, Arena: l.Arena(), MemStats: l.MemStats}
	case "hmlist-norestart":
		l := hmlist.NewWith(cfg, hmlist.NoRestart)
		inst = Instance{Set: l, Arena: l.Arena(), MemStats: l.MemStats}
	case "dgt":
		t := dgtbst.NewWith(cfg)
		inst = Instance{Set: t, Arena: t.Arena(), MemStats: t.MemStats}
	case "abtree":
		t := abtree.NewWith(cfg)
		inst = Instance{Set: t, Arena: t.Arena(), MemStats: t.MemStats}
	default:
		return Instance{}, fmt.Errorf("bench: unknown data structure %q (have %v)", name, DSNames)
	}
	inst.Req = inst.Set.Requirements()
	return inst, nil
}
