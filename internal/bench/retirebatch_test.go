package bench

import (
	"fmt"
	"math/bits"
	"sync"
	"testing"

	"nbr/internal/mem"
	"nbr/internal/smr"
)

type retireRec struct{ _ [2]uint64 }

// retireCfg aligns every scheme's trigger cadence on small thresholds so the
// equivalence runs exercise reclamation repeatedly. The batch sizes used by
// the tests divide BagSize, Threshold, Threshold/4 and EraFreq, so batch
// boundaries land exactly on the per-record trigger points.
func retireCfg() SchemeConfig {
	return SchemeConfig{
		BagSize:    64,
		LoFraction: 0.5,
		ScanFreq:   4,
		Threshold:  64,
		EraFreq:    16,
	}
}

// TestRetireBatchEquivalence is the property test for the RetireBatch seam:
// for every scheme, feeding records through RetireBatch must be
// observationally equivalent to a per-record Retire loop — identical
// smr.Stats (retired, freed, scans, signals, advances) and identical
// allocator accounting. Every third handle carries the Harris mark bit to
// check batch retire strips marks exactly like Retire does.
func TestRetireBatchEquivalence(t *testing.T) {
	const total, threads = 192, 2
	run := func(t *testing.T, scheme string, batch int, batched bool) (smr.Stats, mem.Stats) {
		pool := mem.NewPool[retireRec](mem.Config{MaxThreads: threads})
		sch, err := NewScheme(scheme, pool, threads, retireCfg())
		if err != nil {
			t.Fatal(err)
		}
		g := sch.Guard(0)
		buf := make([]mem.Ptr, 0, batch)
		for i := 0; i < total; i++ {
			p, _ := pool.Alloc(0)
			g.OnAlloc(p)
			if i%3 == 0 {
				p = p.WithMark()
			}
			if !batched {
				g.Retire(p)
				continue
			}
			buf = append(buf, p)
			if len(buf) == batch {
				g.RetireBatch(buf)
				buf = buf[:0]
			}
		}
		return sch.Stats(), pool.Stats()
	}
	for _, scheme := range SchemeNames {
		for _, batch := range []int{2, 8, 16} {
			t.Run(fmt.Sprintf("%s/batch%d", scheme, batch), func(t *testing.T) {
				loopS, loopM := run(t, scheme, batch, false)
				batchS, batchM := run(t, scheme, batch, true)
				// The handoff histogram is the one stat that must differ:
				// the loop records `total` handoffs of size 1, the batched
				// run total/batch handoffs of size `batch`.
				wantLoop, wantBatch := loopS.BatchHist, batchS.BatchHist
				loopS.BatchHist, batchS.BatchHist = [smr.BatchBuckets]uint64{}, [smr.BatchBuckets]uint64{}
				if loopS != batchS {
					t.Fatalf("stats diverge:\n  loop  %+v\n  batch %+v", loopS, batchS)
				}
				if loopM.Allocs != batchM.Allocs || loopM.Frees != batchM.Frees {
					t.Fatalf("allocator accounting diverges:\n  loop  allocs=%d frees=%d\n  batch allocs=%d frees=%d",
						loopM.Allocs, loopM.Frees, batchM.Allocs, batchM.Frees)
				}
				var expLoop, expBatch [smr.BatchBuckets]uint64
				expLoop[1] = total // bitlen(1) == 1
				expBatch[bits.Len(uint(batch))] = total / uint64(batch)
				if wantLoop != expLoop {
					t.Fatalf("loop handoff histogram = %v", wantLoop)
				}
				if wantBatch != expBatch {
					t.Fatalf("batch handoff histogram = %v, want bucket %d = %d",
						wantBatch, bits.Len(uint(batch)), total/uint64(batch))
				}
			})
		}
	}
}

// TestRetireBatchEmptyIsNoop checks the degenerate batch for every scheme.
func TestRetireBatchEmptyIsNoop(t *testing.T) {
	for _, scheme := range SchemeNames {
		t.Run(scheme, func(t *testing.T) {
			pool := mem.NewPool[retireRec](mem.Config{MaxThreads: 1})
			sch, err := NewScheme(scheme, pool, 1, retireCfg())
			if err != nil {
				t.Fatal(err)
			}
			sch.Guard(0).RetireBatch(nil)
			sch.Guard(0).RetireBatch([]mem.Ptr{})
			if st := sch.Stats(); st.Retired != 0 {
				t.Fatalf("empty batch retired %d", st.Retired)
			}
		})
	}
}

// TestRetireBatchConcurrentRace hammers mixed Retire / RetireBatch traffic
// from every thread of every scheme. The pool's generation CAS turns any
// double free into a panic, so an unsafe batch path cannot pass silently,
// and the race detector covers the shared bookkeeping (era clocks, epoch
// rotation, signal broadcast, shard flushes).
func TestRetireBatchConcurrentRace(t *testing.T) {
	const threads, rounds, batch = 4, 50, 16
	for _, scheme := range SchemeNames {
		t.Run(scheme, func(t *testing.T) {
			pool := mem.NewPool[retireRec](mem.Config{MaxThreads: threads, CacheSize: 16, Shards: 4})
			sch, err := NewScheme(scheme, pool, threads, retireCfg())
			if err != nil {
				t.Fatal(err)
			}
			var wg sync.WaitGroup
			for tid := 0; tid < threads; tid++ {
				wg.Add(1)
				go func(tid int) {
					defer wg.Done()
					g := sch.Guard(tid)
					buf := make([]mem.Ptr, 0, batch)
					for r := 0; r < rounds; r++ {
						buf = buf[:0]
						for i := 0; i < batch; i++ {
							p, _ := pool.Alloc(tid)
							g.OnAlloc(p)
							buf = append(buf, p)
						}
						if r%2 == 0 {
							g.RetireBatch(buf)
						} else {
							for _, p := range buf {
								g.Retire(p)
							}
						}
					}
				}(tid)
			}
			wg.Wait()
			st := sch.Stats()
			if want := uint64(threads * rounds * batch); st.Retired != want {
				t.Fatalf("retired = %d, want %d", st.Retired, want)
			}
			if st.Freed > st.Retired {
				t.Fatalf("freed %d > retired %d", st.Freed, st.Retired)
			}
		})
	}
}
