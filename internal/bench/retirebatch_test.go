package bench

import (
	"fmt"
	"math/bits"
	"sync"
	"testing"

	"nbr/internal/mem"
	"nbr/internal/smr"
)

type retireRec struct{ _ [2]uint64 }

// retireCfg aligns every scheme's trigger cadence on small thresholds so the
// equivalence runs exercise reclamation repeatedly. The batch sizes used by
// the tests divide BagSize, Threshold, Threshold/4 and EraFreq, so batch
// boundaries land exactly on the per-record trigger points.
func retireCfg() SchemeConfig {
	return SchemeConfig{
		BagSize:    64,
		LoFraction: 0.5,
		ScanFreq:   4,
		Threshold:  64,
		EraFreq:    16,
	}
}

// TestRetireBatchEquivalence is the property test for the RetireBatch seam:
// for every scheme, feeding records through RetireBatch must be
// observationally equivalent to a per-record Retire loop — identical
// smr.Stats (retired, freed, scans, signals, advances) and identical
// allocator accounting. Every third handle carries the Harris mark bit to
// check batch retire strips marks exactly like Retire does.
func TestRetireBatchEquivalence(t *testing.T) {
	const total, threads = 192, 2
	run := func(t *testing.T, scheme string, batch int, batched bool) (smr.Stats, mem.Stats) {
		pool := mem.NewPool[retireRec](mem.Config{MaxThreads: threads})
		sch, err := NewScheme(scheme, pool, threads, retireCfg())
		if err != nil {
			t.Fatal(err)
		}
		g := sch.Guard(0)
		buf := make([]mem.Ptr, 0, batch)
		for i := 0; i < total; i++ {
			p, _ := pool.Alloc(0)
			g.OnAlloc(p)
			if i%3 == 0 {
				p = p.WithMark()
			}
			if !batched {
				g.Retire(p)
				continue
			}
			buf = append(buf, p)
			if len(buf) == batch {
				g.RetireBatch(buf)
				buf = buf[:0]
			}
		}
		return sch.Stats(), pool.Stats()
	}
	for _, scheme := range SchemeNames {
		for _, batch := range []int{2, 8, 16} {
			t.Run(fmt.Sprintf("%s/batch%d", scheme, batch), func(t *testing.T) {
				loopS, loopM := run(t, scheme, batch, false)
				batchS, batchM := run(t, scheme, batch, true)
				// The handoff histogram is the one stat that must differ:
				// the loop records `total` handoffs of size 1, the batched
				// run total/batch handoffs of size `batch`.
				wantLoop, wantBatch := loopS.BatchHist, batchS.BatchHist
				loopS.BatchHist, batchS.BatchHist = [smr.BatchBuckets]uint64{}, [smr.BatchBuckets]uint64{}
				if loopS != batchS {
					t.Fatalf("stats diverge:\n  loop  %+v\n  batch %+v", loopS, batchS)
				}
				if loopM.Allocs != batchM.Allocs || loopM.Frees != batchM.Frees {
					t.Fatalf("allocator accounting diverges:\n  loop  allocs=%d frees=%d\n  batch allocs=%d frees=%d",
						loopM.Allocs, loopM.Frees, batchM.Allocs, batchM.Frees)
				}
				var expLoop, expBatch [smr.BatchBuckets]uint64
				expLoop[1] = total // bitlen(1) == 1
				expBatch[bits.Len(uint(batch))] = total / uint64(batch)
				if wantLoop != expLoop {
					t.Fatalf("loop handoff histogram = %v", wantLoop)
				}
				if wantBatch != expBatch {
					t.Fatalf("batch handoff histogram = %v, want bucket %d = %d",
						wantBatch, bits.Len(uint(batch)), total/uint64(batch))
				}
			})
		}
	}
}

// TestRetireSplitEquivalence is the batch-split property test: retiring the
// same records through one oversized RetireBatch, through misaligned chunked
// RetireBatch calls, or through a per-record Retire loop must be stats-exact
// for every scheme whose trigger is a pure bag-length condition — the split
// paths fire their scans and signals at exactly the bag lengths the loop
// hits, whatever the handoff shape. qsbr/rcu amortize their sweep over a
// separate retire counter whose trigger can land mid-chunk, so for them the
// chunk sizes must divide the amortization period (as the structures'
// real handoffs do); misaligned shapes are exercised for the rest.
func TestRetireSplitEquivalence(t *testing.T) {
	const total, threads = 300, 2
	run := func(t *testing.T, scheme string, batch int) (smr.Stats, mem.Stats) {
		pool := mem.NewPool[retireRec](mem.Config{MaxThreads: threads})
		sch, err := NewScheme(scheme, pool, threads, retireCfg())
		if err != nil {
			t.Fatal(err)
		}
		g := sch.Guard(0)
		buf := make([]mem.Ptr, 0, batch)
		for i := 0; i < total; i++ {
			p, _ := pool.Alloc(0)
			g.OnAlloc(p)
			if i%3 == 0 {
				p = p.WithMark()
			}
			if batch == 1 {
				g.Retire(p)
				continue
			}
			buf = append(buf, p)
			if len(buf) == batch || i == total-1 {
				g.RetireBatch(buf)
				buf = buf[:0]
			}
		}
		return sch.Stats(), pool.Stats()
	}
	shapes := map[string][]int{
		// Misaligned chunks and one whole-splice handoff: exactness must
		// hold for arbitrary shapes on the split schemes.
		"default": {7, 31, 64, total},
		// Aligned with Threshold/4 = 16, the qsbr/rcu sweep amortization.
		"qsbr": {4, 16}, "rcu": {4, 16},
	}
	for _, scheme := range SchemeNames {
		sizes, ok := shapes[scheme]
		if !ok {
			sizes = shapes["default"]
		}
		t.Run(scheme, func(t *testing.T) {
			loopS, loopM := run(t, scheme, 1)
			for _, batch := range sizes {
				gotS, gotM := run(t, scheme, batch)
				// Handoff histograms legitimately differ; everything else
				// must be identical.
				loopCmp, gotCmp := loopS, gotS
				loopCmp.BatchHist, gotCmp.BatchHist = [smr.BatchBuckets]uint64{}, [smr.BatchBuckets]uint64{}
				if loopCmp != gotCmp {
					t.Fatalf("batch %d: stats diverge\n  loop  %+v\n  batch %+v", batch, loopCmp, gotCmp)
				}
				if loopM.Allocs != gotM.Allocs || loopM.Frees != gotM.Frees {
					t.Fatalf("batch %d: allocator accounting diverges: loop frees=%d batch frees=%d",
						batch, loopM.Frees, gotM.Frees)
				}
			}
		})
	}
}

// TestGarbageBoundDeclarations pins the GarbageBound contract's shape for
// every scheme: the P2 claimants declare a finite positive bound that grows
// with the thread count, everyone else the Unbounded sentinel.
func TestGarbageBoundDeclarations(t *testing.T) {
	bounded := map[string]bool{"nbr": true, "nbr+": true, "hp": true, "he": true, "ibr": true}
	for _, scheme := range SchemeNames {
		t.Run(scheme, func(t *testing.T) {
			bound := func(threads int) int {
				pool := mem.NewPool[retireRec](mem.Config{MaxThreads: threads})
				sch, err := NewScheme(scheme, pool, threads, retireCfg())
				if err != nil {
					t.Fatal(err)
				}
				return sch.GarbageBound()
			}
			b2, b4 := bound(2), bound(4)
			if !bounded[scheme] {
				if b2 != smr.Unbounded || b4 != smr.Unbounded {
					t.Fatalf("want Unbounded sentinel, got %d / %d", b2, b4)
				}
				return
			}
			if b2 <= 0 || b4 <= 0 {
				t.Fatalf("bounded scheme declared non-positive bound: %d / %d", b2, b4)
			}
			if b4 <= b2 {
				t.Fatalf("bound must grow with thread count: N=2 → %d, N=4 → %d", b2, b4)
			}
		})
	}
}

// TestRetireBatchEmptyIsNoop checks the degenerate batch for every scheme.
func TestRetireBatchEmptyIsNoop(t *testing.T) {
	for _, scheme := range SchemeNames {
		t.Run(scheme, func(t *testing.T) {
			pool := mem.NewPool[retireRec](mem.Config{MaxThreads: 1})
			sch, err := NewScheme(scheme, pool, 1, retireCfg())
			if err != nil {
				t.Fatal(err)
			}
			sch.Guard(0).RetireBatch(nil)
			sch.Guard(0).RetireBatch([]mem.Ptr{})
			if st := sch.Stats(); st.Retired != 0 {
				t.Fatalf("empty batch retired %d", st.Retired)
			}
		})
	}
}

// TestRetireBatchConcurrentRace hammers mixed Retire / RetireBatch traffic
// from every thread of every scheme. The pool's generation CAS turns any
// double free into a panic, so an unsafe batch path cannot pass silently,
// and the race detector covers the shared bookkeeping (era clocks, epoch
// rotation, signal broadcast, shard flushes).
func TestRetireBatchConcurrentRace(t *testing.T) {
	const threads, rounds, batch = 4, 50, 16
	for _, scheme := range SchemeNames {
		t.Run(scheme, func(t *testing.T) {
			pool := mem.NewPool[retireRec](mem.Config{MaxThreads: threads, CacheSize: 16, Shards: 4})
			sch, err := NewScheme(scheme, pool, threads, retireCfg())
			if err != nil {
				t.Fatal(err)
			}
			var wg sync.WaitGroup
			for tid := 0; tid < threads; tid++ {
				wg.Add(1)
				go func(tid int) {
					defer wg.Done()
					g := sch.Guard(tid)
					buf := make([]mem.Ptr, 0, batch)
					for r := 0; r < rounds; r++ {
						buf = buf[:0]
						for i := 0; i < batch; i++ {
							p, _ := pool.Alloc(tid)
							g.OnAlloc(p)
							buf = append(buf, p)
						}
						if r%2 == 0 {
							g.RetireBatch(buf)
						} else {
							for _, p := range buf {
								g.Retire(p)
							}
						}
					}
				}(tid)
			}
			wg.Wait()
			st := sch.Stats()
			if want := uint64(threads * rounds * batch); st.Retired != want {
				t.Fatalf("retired = %d, want %d", st.Retired, want)
			}
			if st.Freed > st.Retired {
				t.Fatalf("freed %d > retired %d", st.Freed, st.Retired)
			}
		})
	}
}
