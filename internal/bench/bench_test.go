package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestNewSchemeAllNames(t *testing.T) {
	inst, err := NewDS("lazylist", 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range SchemeNames {
		s, err := NewScheme(name, inst.Arena, 2, DefaultSchemeConfig())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if s.Name() != name {
			t.Fatalf("scheme %q reports name %q", name, s.Name())
		}
	}
	if _, err := NewScheme("bogus", inst.Arena, 2, DefaultSchemeConfig()); err == nil {
		t.Fatal("unknown scheme must error")
	}
}

func TestNewDSAllNames(t *testing.T) {
	for _, name := range DSNames {
		inst, err := NewDS(name, 2)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if inst.Set == nil || inst.Arena == nil || inst.MemStats == nil {
			t.Fatalf("%s: incomplete instance", name)
		}
		if err := inst.Set.Validate(); err != nil {
			t.Fatalf("%s: fresh instance invalid: %v", name, err)
		}
	}
	if _, err := NewDS("bogus", 2); err == nil {
		t.Fatal("unknown structure must error")
	}
}

func TestTable1Coverage(t *testing.T) {
	for _, d := range DSNames {
		for _, s := range SchemeNames {
			if _, ok := Table1Verdict(d, s); !ok {
				t.Fatalf("no Table 1 verdict for %s/%s", d, s)
			}
		}
	}
}

func TestTable1KnownVerdicts(t *testing.T) {
	cases := []struct {
		ds, scheme string
		ok         bool
	}{
		{"lazylist", "nbr+", true},
		{"lazylist", "hp", false},
		{"hmlist-norestart", "nbr", false},
		{"hmlist", "nbr", true},
		{"harris", "hp", true},
		{"dgt", "ibr", false},
		{"abtree", "he", false},
		{"abtree", "debra", true},
	}
	for _, c := range cases {
		v, ok := Table1Verdict(c.ds, c.scheme)
		if !ok || v.OK != c.ok {
			t.Fatalf("Table1Verdict(%s, %s) = %+v, want OK=%v", c.ds, c.scheme, v, c.ok)
		}
	}
}

func TestRunnableExceptions(t *testing.T) {
	// The paper's E1 runs HP on the lazy list and DGT despite Table 1.
	if !Runnable("lazylist", "hp") || !Runnable("dgt", "hp") {
		t.Fatal("benchmark-mode exceptions missing")
	}
	if Runnable("hmlist-norestart", "nbr+") {
		t.Fatal("hmlist-norestart must stay rejected for NBR")
	}
	if Runnable("abtree", "hp") {
		t.Fatal("abtree has no benchmark-mode HP exception")
	}
}

func TestRunRejectsIncompatible(t *testing.T) {
	_, err := Run(Workload{DS: "hmlist-norestart", Scheme: "nbr+", Threads: 1,
		KeyRange: 100, Duration: 10 * time.Millisecond})
	if err == nil {
		t.Fatal("Run must enforce the applicability matrix")
	}
}

func TestRunSmoke(t *testing.T) {
	r, err := Run(Workload{
		DS: "lazylist", Scheme: "nbr+", Threads: 2, KeyRange: 256,
		InsPct: 50, DelPct: 50, Duration: 50 * time.Millisecond,
		Prefill: -1, Cfg: DefaultSchemeConfig(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Ops == 0 || r.Mops <= 0 {
		t.Fatalf("no throughput measured: %+v", r)
	}
	if r.PeakBytes <= 0 {
		t.Fatal("peak memory not sampled")
	}
}

func TestRunWithStalledThread(t *testing.T) {
	for _, scheme := range []string{"debra", "nbr+"} {
		r, err := Run(Workload{
			DS: "lazylist", Scheme: scheme, Threads: 2, KeyRange: 256,
			InsPct: 50, DelPct: 50, Duration: 60 * time.Millisecond,
			Prefill: -1, Stall: true,
			Cfg: SchemeConfig{BagSize: 64, LoFraction: 0.5, ScanFreq: 4, Slots: 4, Threshold: 32},
		})
		if err != nil {
			t.Fatalf("%s: %v", scheme, err)
		}
		if scheme == "nbr+" {
			bound := uint64(3 * (64 + 3*4) * 4) // generous multiple of the lemma bound
			if g := r.Stats.Garbage(); g > bound {
				t.Fatalf("nbr+ garbage %d above bound %d under stall", g, bound)
			}
		}
	}
}

func TestRunPrefillsToHalfRange(t *testing.T) {
	inst, err := NewDS("lazylist", 1)
	if err != nil {
		t.Fatal(err)
	}
	_ = inst
	r, err := Run(Workload{
		DS: "lazylist", Scheme: "none", Threads: 1, KeyRange: 200,
		InsPct: 0, DelPct: 0, Duration: 20 * time.Millisecond,
		Prefill: -1, Cfg: DefaultSchemeConfig(),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Contains-only workload cannot change the size; peak live records must
	// be at least the prefill (sentinels + 100 keys).
	if r.PeakLive < 100 {
		t.Fatalf("prefill missing: peak live %d", r.PeakLive)
	}
}

func TestExperimentRegistry(t *testing.T) {
	if len(Experiments) < 15 {
		t.Fatalf("expected every figure to have a preset, got %d", len(Experiments))
	}
	seen := map[string]bool{}
	for _, e := range Experiments {
		if e.Name == "" || e.Desc == "" || e.Run == nil {
			t.Fatalf("incomplete preset %+v", e)
		}
		if seen[e.Name] {
			t.Fatalf("duplicate preset %q", e.Name)
		}
		seen[e.Name] = true
	}
	for _, want := range []string{"fig3a", "fig3b", "fig4a", "fig4b", "fig4c", "fig4d",
		"fig5a", "fig5b", "fig6a", "fig6b", "fig7a", "fig7b", "fig7c", "fig8a", "fig8b"} {
		if _, ok := Lookup(want); !ok {
			t.Fatalf("missing preset %s", want)
		}
	}
}

func TestThroughputFigureOutput(t *testing.T) {
	var buf bytes.Buffer
	o := Options{
		Threads:  []int{1, 2},
		Duration: 25 * time.Millisecond,
		Trials:   1,
		Cfg:      DefaultSchemeConfig(),
		Out:      &buf,
	}
	err := throughputFigure(o, "lazylist", 200, []mix{{50, 50}}, []string{"none", "nbr+"})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"lazylist", "50i-50d", "none", "nbr+", "threads"} {
		if !strings.Contains(out, want) {
			t.Fatalf("figure output missing %q:\n%s", want, out)
		}
	}
}

func TestScaleRange(t *testing.T) {
	o := Options{}
	if scaleRange(o, 2_000_000) != 200_000 || scaleRange(o, 20_000_000) != 400_000 {
		t.Fatal("host scaling wrong")
	}
	if scaleRange(o, 20_000) != 20_000 {
		t.Fatal("list ranges must not be scaled")
	}
	o.Full = true
	if scaleRange(o, 2_000_000) != 2_000_000 {
		t.Fatal("-full must restore paper ranges")
	}
}

func TestPrintTable1(t *testing.T) {
	var buf bytes.Buffer
	PrintTable1(&buf)
	out := buf.String()
	for _, want := range []string{"lazylist", "abtree", "hmlist-norestart", "no*"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table 1 output missing %q", want)
		}
	}
}
