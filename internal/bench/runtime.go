package bench

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"nbr/internal/ds"
	"nbr/internal/mem"
	"nbr/internal/obs"
	"nbr/internal/smr"
)

// This file measures the shared-runtime regime: several structures behind
// one mem.Hub, one scheme instance, one lease registry — the substrate the
// public nbr.Runtime wraps (bench cannot import the root package without a
// cycle, so the cell is built from the same internals). The workload is
// lease-per-session over more workers than slots: every session acquires a
// slot, churns every structure under it, and releases, so the measurement
// includes admission, slot recycling, forced-round quarantine aging and the
// multi-owner free routing — the costs a service pays per request.

// RuntimeWorkload is one multi-structure shared-runtime cell.
type RuntimeWorkload struct {
	Structures []string
	Scheme     string
	Slots      int // lease-registry capacity
	Workers    int // concurrent workers; > Slots oversubscribes admission
	KeyRange   uint64
	SessionOps int // operations per lease session, spread across structures
	Duration   time.Duration
	Cfg        SchemeConfig
	// Interleave selects the adversarial retire pattern: each session walks
	// the structures round-robin doing insert-then-delete pairs, so the
	// retire stream entering the shared bags alternates owners perfectly —
	// the worst case for the hub's free routing (every same-owner run has
	// length one). False keeps the mixed read/write service workload.
	Interleave bool
	// Stall selects the holder-death cell: every stallEvery-th session the
	// worker wedges with its lease held — it never releases — and hands the
	// lease to a harness reaper that revokes it through Registry.Revoke (the
	// shared recovery path, run on the reaper's goroutine mid-measurement)
	// and then issues the zombie's late Release. The cell tracks the cost of
	// recycling reaped slots under load and records the recovery counters.
	Stall bool
}

// stallEvery is the holder-death cadence under Stall: one wedged session per
// this many completed ones, per worker — frequent enough that every slot sees
// reaped-slot recycling within a short run, rare enough that the cell still
// measures throughput rather than pure recovery.
const stallEvery = 8

// RuntimeResult is one measured shared-runtime cell.
type RuntimeResult struct {
	RuntimeWorkload
	Ops      uint64
	Elapsed  time.Duration
	Mops     float64
	Sessions uint64 // completed acquire→ops→release cycles
	// The aggregated garbage-bound contract, as in Result.
	Bound       int
	GarbagePeak uint64
	Stats       smr.Stats
	// Quarantine-aging telemetry: forced rounds keep Fallbacks at zero.
	ForcedRounds uint64
	Fallbacks    uint64
	// Drained reports Retired == Freed with the hub's free staging empty
	// after the post-run drain: the shared bags leaked nothing across
	// structures and lease churn, and no record was stranded in staging.
	Drained bool
	// Free-path amortization telemetry: reclamation bursts the hub received
	// vs. pool FreeBatch calls it issued. DispatchPerBurst ≈ 1 is the
	// single-structure Domain's amortization; one-per-run degradation under
	// interleaved retires shows up as DispatchPerBurst ≈ records/burst.
	HubBursts        uint64
	HubDispatches    uint64
	DispatchPerBurst float64
	// ScanEntries is threads × reservations — the announcement rows one
	// reservation scan visits at the widths the scheme was built with.
	ScanEntries int
	// Holder-death telemetry (schema v6). In a Stall cell Reaped counts the
	// wedged holders the harness reaper revoked, RevokedReleases the zombie
	// late-Release no-ops, and OrphansAdopted the orphaned records survivors
	// re-homed. In a non-stall cell all three must read zero — nothing
	// injects holder deaths there, so a non-zero Reaped means a healthy
	// holder was revoked (nbrtrend flags that host-independently).
	Reaped          uint64
	RevokedReleases uint64
	OrphansAdopted  uint64
	// Time-domain telemetry (schema v8): the cell runs with the flight
	// recorder enabled, so alongside the counters it reports how long workers
	// waited for admission (first ErrRegistryFull → successful Acquire,
	// spanning the whole Gosched retry loop) and how long sampled retired
	// records sat as garbage before the allocator freed them. Quantiles are
	// power-of-two bucket edges in nanoseconds — host-dependent context, not
	// invariants; nbrtrend reports them unflagged. EventTail is the merged
	// flight-recorder timeline at the end of the run, embedded in violation
	// reports so a failed bound names the stalled thread.
	AdmitWaitP50  int64
	AdmitWaitP99  int64
	GarbageAgeP50 int64
	GarbageAgeP99 int64
	EventTail     string
}

// BoundExceeded reports whether the sampled garbage peak violated the
// scheme's declared aggregated bound.
func (r RuntimeResult) BoundExceeded() bool {
	return r.Bound != smr.Unbounded && r.GarbagePeak > uint64(r.Bound)
}

// StructuresKey joins the structure names for cell identification.
func (w RuntimeWorkload) StructuresKey() string { return strings.Join(w.Structures, "+") }

// RunRuntime executes one shared-runtime cell.
func RunRuntime(w RuntimeWorkload) (RuntimeResult, error) {
	if len(w.Structures) == 0 {
		return RuntimeResult{}, fmt.Errorf("bench: runtime cell needs at least one structure")
	}
	if w.Slots <= 0 || w.Workers <= 0 {
		return RuntimeResult{}, fmt.Errorf("bench: runtime cell needs Slots and Workers")
	}
	if w.SessionOps <= 0 {
		w.SessionOps = 64
	}
	if w.KeyRange < 2 {
		w.KeyRange = 4096
	}
	if w.Duration <= 0 {
		w.Duration = time.Second
	}

	// One hub, one pool per structure (tagged), one scheme over the hub at
	// the widest attached announcement needs, one registry.
	hub := mem.NewHub(w.Slots)
	insts := make([]Instance, 0, len(w.Structures))
	req := ds.Requirements{Threshold: ds.DefaultThreshold}
	for _, name := range w.Structures {
		if !Runnable(name, w.Scheme) {
			return RuntimeResult{}, fmt.Errorf("bench: %s is not runnable under %s (Table 1)", name, w.Scheme)
		}
		inst, err := NewDSArena(name, mem.Config{MaxThreads: w.Slots, Tag: hub.NextTag()})
		if err != nil {
			return RuntimeResult{}, err
		}
		hub.Attach(len(insts), inst.Arena)
		insts = append(insts, inst)
		if inst.Req.Slots > req.Slots {
			req.Slots = inst.Req.Slots
		}
		if inst.Req.Reservations > req.Reservations {
			req.Reservations = inst.Req.Reservations
		}
	}
	sch, err := NewSchemeFor(w.Scheme, hub, w.Slots, w.Cfg, req)
	if err != nil {
		return RuntimeResult{}, err
	}
	// The cell measures the reclamation pipeline in time as well as in
	// count: the recorder is wired before Bind (so the scheme adopts it via
	// AttachRegistry) and enabled for the whole run. The fixed-N workload
	// cells in workload.go deliberately stay recorder-free — their measured
	// trajectories predate the recorder and must not absorb even its
	// one-branch cost — but this cell's whole point is the pipeline's time
	// domain, so it pays the branch and reports the quantiles.
	rec := obs.NewRecorder(w.Slots)
	rec.Enable()
	reg := smr.NewRegistry(w.Slots)
	reg.SetRecorder(rec)
	hub.SetRecorder(rec)
	reg.Bind(sch)
	if burst := sch.ReclaimBurst(); burst > 0 {
		reg.OnAcquire(func(tid int) { hub.SizeCache(tid, burst) })
	}
	reg.OnRelease(func(tid int) { hub.DrainCache(tid) })

	// Prefill each structure to half its stripe of the key range.
	if l, err := reg.Acquire(); err == nil {
		g := sch.Guard(l.Tid())
		seed := uint64(0x9e3779b97f4a7c15)
		for i, inst := range insts {
			target := int(w.KeyRange / 2)
			for n := 0; n < target; {
				if inst.Set.Insert(g, splitmix64(&seed)%w.KeyRange+1) {
					n++
				}
			}
			_ = i
		}
		l.Release()
	}

	var (
		stop        atomic.Bool
		peakGarbage atomic.Uint64
		started     sync.WaitGroup
		done        sync.WaitGroup
		opCounts    = make([]uint64, w.Workers)
		sessions    atomic.Uint64
	)
	// The harness reaper for Stall cells: wedged holders' leases arrive here;
	// each is revoked — the shared recovery path runs on this goroutine, not
	// the holder's — and then given the zombie's late Release. The channel
	// holds at most Slots leases (a wedge keeps its slot until revoked), so
	// the send in the worker never blocks.
	var reapCh chan *smr.Lease
	reaperDone := make(chan struct{})
	if w.Stall {
		reapCh = make(chan *smr.Lease, w.Slots)
		go func() {
			defer close(reaperDone)
			for l := range reapCh {
				if reg.Revoke(l) {
					l.Release() // the zombie waking up late: a counted no-op
				}
			}
		}()
	} else {
		close(reaperDone)
	}

	samplerDone := make(chan struct{})
	go func() {
		defer close(samplerDone)
		// Same 1ms cadence as the workload cells' sampler: a Gosched spin
		// would burn a core inside the measured window and deflate Mops.
		tick := time.NewTicker(time.Millisecond)
		defer tick.Stop()
		for !stop.Load() {
			if g := sch.Stats().Garbage(); g > peakGarbage.Load() {
				peakGarbage.Store(g)
			}
			<-tick.C
		}
	}()

	for wk := 0; wk < w.Workers; wk++ {
		started.Add(1)
		done.Add(1)
		go func(wk int) {
			defer done.Done()
			rng := uint64(wk)*0x100000001b3 + 0x9e3779b97f4a7c15
			started.Done()
			var ops uint64
			var nsess int
			// Admission wait, measured where this cell actually waits: the
			// workers oversubscribe the registry and spin on ErrRegistryFull,
			// so the wait is first-refusal → successful Acquire, spanning
			// every Gosched of the retry loop.
			var waitFrom int64
			for !stop.Load() {
				l, err := reg.Acquire()
				if errors.Is(err, smr.ErrRegistryFull) {
					if waitFrom == 0 {
						waitFrom = rec.Clock()
					}
					runtime.Gosched()
					continue
				}
				if err != nil {
					return
				}
				if waitFrom != 0 {
					rec.ObserveSince(obs.HistAdmissionWait, waitFrom)
					waitFrom = 0
				}
				g := sch.Guard(l.Tid())
				for i := 0; i < w.SessionOps; i++ {
					r := splitmix64(&rng)
					if w.Interleave {
						// Adversarial retires: round-robin the structures so
						// consecutive retired records never share an owner,
						// and pair insert/delete so nearly every op retires.
						inst := insts[i%len(insts)]
						key := r%w.KeyRange + 1
						inst.Set.Insert(g, key)
						inst.Set.Delete(g, key)
						ops += 2
						continue
					}
					inst := insts[r%uint64(len(insts))]
					key := (r>>16)%w.KeyRange + 1
					switch (r >> 8) % 4 {
					case 0, 1:
						inst.Set.Insert(g, key)
					case 2:
						inst.Set.Delete(g, key)
					default:
						inst.Set.Contains(g, key)
					}
					ops++
				}
				nsess++
				if w.Stall && nsess%stallEvery == 0 {
					//nbr:allow leaseescape — deliberate wedge: the workload ships the lease to the reaper to exercise revocation under load
					reapCh <- l // wedged: never releases; the reaper revokes
				} else {
					l.Release()
				}
				sessions.Add(1)
				if ops%1024 == 0 {
					runtime.Gosched() // oversubscribed: keep interleaving fine
				}
			}
			opCounts[wk] = ops
		}(wk)
	}

	started.Wait()
	begin := time.Now()
	time.Sleep(w.Duration)
	stop.Store(true)
	done.Wait()
	elapsed := time.Since(begin)
	if w.Stall {
		close(reapCh)
	}
	<-reaperDone
	<-samplerDone

	res := RuntimeResult{
		RuntimeWorkload: w,
		Elapsed:         elapsed,
		Sessions:        sessions.Load(),
		Stats:           sch.Stats(),
		Bound:           sch.GarbageBound(),
		GarbagePeak:     peakGarbage.Load(),
		ForcedRounds:    reg.ForcedRounds(),
		Fallbacks:       reg.FallbackReuses(),
		Reaped:          reg.ReapedLeases(),
		RevokedReleases: reg.RevokedReleases(),
		OrphansAdopted:  reg.OrphansAdopted(),
	}
	if g := res.Stats.Garbage(); g > res.GarbagePeak {
		res.GarbagePeak = g
	}
	for _, c := range opCounts {
		res.Ops += c
	}
	res.Mops = float64(res.Ops) / elapsed.Seconds() / 1e6

	// Drain the shared bags: the cell must end Retired == Freed with the
	// hub's free staging empty, or the runtime seam leaked (or stranded)
	// records across structures.
	if dr, ok := sch.(smr.Drainer); ok {
		if l, err := reg.Acquire(); err == nil {
			for i := 0; i < 64; i++ {
				st := sch.Stats()
				if st.Retired == st.Freed {
					break
				}
				dr.Drain(l.Tid())
			}
			l.Release()
		}
		res.Stats = sch.Stats()
		res.Drained = res.Stats.Retired == res.Stats.Freed && hub.Staged() == 0
	} else {
		res.Drained = hub.Staged() == 0 // leaky never frees; nothing to drain
	}

	hs := hub.Stats()
	res.HubBursts = hs.Bursts
	res.HubDispatches = hs.Dispatches
	if hs.Bursts > 0 {
		res.DispatchPerBurst = float64(hs.Dispatches) / float64(hs.Bursts)
	}
	res.ScanEntries = w.Slots * req.Reservations

	// The time-domain quantiles (schema v8) and the timeline tail the
	// violation reports embed. Captured after the drain so the tail shows
	// the run's final state — in a healthy cell the last events are the
	// drain's scan rounds, in a stuck one the open read phase that pinned
	// the garbage.
	aw := rec.Hist(obs.HistAdmissionWait)
	res.AdmitWaitP50 = aw.Quantile(0.50)
	res.AdmitWaitP99 = aw.Quantile(0.99)
	ga := rec.Hist(obs.HistGarbageAge)
	res.GarbageAgeP50 = ga.Quantile(0.50)
	res.GarbageAgeP99 = ga.Quantile(0.99)
	res.EventTail = rec.Tail(64)
	return res, nil
}
