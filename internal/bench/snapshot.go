package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"nbr/internal/mem"
	"nbr/internal/sigsim"
	"nbr/internal/smr"
)

// Snapshot is the machine-readable perf record written by
// `nbrbench -snapshot BENCH_<n>.json`. Committing one per PR gives later
// sessions a trajectory to diff against: the end-to-end workload cells catch
// whole-system regressions, while the reservation-scan and free-burst
// microbenchmarks isolate the two reclaim-path costs this harness tracks
// (scan work per N·R and allocator contention per burst).
type Snapshot struct {
	Schema     string    `json:"schema"`
	CreatedAt  time.Time `json:"created_at"`
	GoVersion  string    `json:"go_version"`
	GOOS       string    `json:"goos"`
	GOARCH     string    `json:"goarch"`
	GOMAXPROCS int       `json:"gomaxprocs"`

	Workloads   []WorkloadPoint    `json:"workloads"`
	Runtime     []RuntimePoint     `json:"runtime,omitempty"`
	ResizeBurst []ResizeBurstPoint `json:"resize_burst,omitempty"`
	Widths      []WidthPoint       `json:"widths,omitempty"`
	ScanCost    []ScanCostPoint    `json:"reservation_scan"`
	FreeBurst   []FreeBurstPoint   `json:"free_burst"`
}

// SnapshotSchema names the current snapshot layout. v2 added the retire
// batch-size distribution per workload cell; v3 added the garbage-bound
// contract columns (declared bound + sampled garbage peak); v4 added the
// multi-structure shared-runtime cells; v5 added the adversarial
// interleaved-retire runtime cells with the hub's dispatch-per-burst
// amortization columns, and the Domain-vs-Runtime width-comparison cells;
// v6 adds the stall-injection runtime cell (wedged holders reaped by
// revocation mid-run) and the recovery columns — reaped, revoked_releases,
// orphans_adopted — on every runtime cell; v7 adds the resize-burst cells
// with the segment-retirement counter ratios (segments_retired,
// stamps_per_record, scans_per_record), recorded for both the segment fast
// path and the dissolve-per-node baseline on the same burst; v8 adds the
// flight-recorder time-domain columns on the runtime cells — admission-wait
// and garbage-residence-age quantiles (power-of-two bucket edges, µs) — which
// are host-dependent context: nbrtrend records their movement but never flags
// them. Older files lack the newer fields; consumers treat them as absent.
const SnapshotSchema = "nbr-perf-snapshot/v8"

// WorkloadPoint is one end-to-end cell.
type WorkloadPoint struct {
	DS       string  `json:"ds"`
	Scheme   string  `json:"scheme"`
	Threads  int     `json:"threads"`
	KeyRange uint64  `json:"key_range"`
	Mops     float64 `json:"mops"`
	PeakMB   float64 `json:"peak_mb"`
	Signals  uint64  `json:"signals"`
	Freed    uint64  `json:"freed"`
	Garbage  uint64  `json:"garbage"`
	P50us    float64 `json:"p50_us"`
	P99us    float64 `json:"p99_us"`
	// Retire batch-size distribution (schema v2): how much of the retire
	// traffic the RetireBatch seam amortizes. BatchHist bucket i counts
	// batches of size in [2^(i-1), 2^i).
	Batches   uint64   `json:"retire_batches,omitempty"`
	BatchP50  int64    `json:"batch_p50,omitempty"`
	BatchP99  int64    `json:"batch_p99,omitempty"`
	BatchMax  int64    `json:"batch_max,omitempty"`
	BatchHist []uint64 `json:"batch_hist,omitempty"`
	// Garbage-bound contract (schema v3): the scheme's declared bound
	// (smr.Unbounded = -1 for the epoch schemes and leaky) and the largest
	// garbage the run's sampler observed. GarbagePeak above a non-negative
	// Bound is a contract violation, not noise.
	Bound       int    `json:"bound"`
	GarbagePeak uint64 `json:"garbage_peak"`
}

// RuntimePoint is one multi-structure shared-runtime cell (schema v4):
// several structures behind one arena hub and one scheme, workers
// oversubscribing a lease registry, one lease session covering every
// structure. Mops includes acquire/release per session; Sessions counts the
// lease recycles the run performed; the bound columns carry the aggregated
// contract; Fallbacks must stay zero (forced rounds cover quarantine
// aging); Drained reports Retired == Freed after the post-run drain.
type RuntimePoint struct {
	Structures   string  `json:"structures"` // "+"-joined, attachment order
	Scheme       string  `json:"scheme"`
	Slots        int     `json:"slots"`
	Workers      int     `json:"workers"`
	KeyRange     uint64  `json:"key_range"`
	Mops         float64 `json:"mops"`
	Sessions     uint64  `json:"sessions"`
	Freed        uint64  `json:"freed"`
	Bound        int     `json:"bound"`
	GarbagePeak  uint64  `json:"garbage_peak"`
	ForcedRounds uint64  `json:"forced_rounds"`
	Fallbacks    uint64  `json:"fallbacks"`
	Drained      bool    `json:"drained"`
	// Free-path amortization (schema v5). Interleaved marks the adversarial
	// round-robin retire cell; DispatchPerBurst is pool FreeBatch calls per
	// reclamation burst the hub received — ~1 is Domain-parity amortization,
	// one-per-run degradation reads as ≈ records/burst. ScanEntries is
	// threads × reservations at the widths the cell's scheme was built with.
	Interleaved      bool    `json:"interleaved,omitempty"`
	HubBursts        uint64  `json:"hub_bursts,omitempty"`
	HubDispatches    uint64  `json:"hub_dispatches,omitempty"`
	DispatchPerBurst float64 `json:"dispatch_per_burst,omitempty"`
	ScanEntries      int     `json:"scan_entries,omitempty"`
	// Holder-death columns (schema v6). Stall marks the stall-injection cell:
	// wedged holders never release and a harness reaper revokes them mid-run,
	// so Reaped must be non-zero there (zero is asserted as a violation by
	// -assert-bound: the revocation path went dead). In every other cell all
	// three columns must read zero — a reap appearing in a non-stall cell
	// means a healthy holder was revoked, which nbrtrend always flags
	// (counter, not timing: host-independent).
	Stall           bool   `json:"stall,omitempty"`
	Reaped          uint64 `json:"reaped"`
	RevokedReleases uint64 `json:"revoked_releases"`
	OrphansAdopted  uint64 `json:"orphans_adopted"`
	// Time-domain columns (schema v8), from the cell's flight recorder:
	// admission wait (first refusal → admitted) and garbage residence age
	// (sampled retire → free) quantiles in microseconds. These are
	// power-of-two bucket edges, so two hosts disagree only by bucket; they
	// are still wall-clock and therefore host-dependent — nbrtrend shows
	// their movement as context and never flags it.
	AdmitWaitP50us  float64 `json:"admit_wait_p50_us,omitempty"`
	AdmitWaitP99us  float64 `json:"admit_wait_p99_us,omitempty"`
	GarbageAgeP50us float64 `json:"garbage_age_p50_us,omitempty"`
	GarbageAgeP99us float64 `json:"garbage_age_p99_us,omitempty"`
}

// ResizeBurstPoint is one resize-burst cell (schema v7): an insert-only
// storm on the resizable hash map whose retire stream is purely whole bucket
// arrays, run in `segment` mode (one RetireSegment handle per array) or in
// `per-node` mode (the array dissolved and every cell retired individually).
// The ratio columns are pure counters — stamps_per_record is scheme-side
// bookkeeping events per retired record (1.0 means no amortization, the
// per-node floor; Segments/SegRecords is the segment-mode floor) and
// scans_per_record is reclamation scans per retired record — so the A/B
// comparison holds on any host. `nbrbench -assert-bound` requires the
// segment cell's stamps+scans per record to undercut the per-node cell's by
// at least 8×, the bound to have held live through the storm, and the drain
// to reach Retired == Freed.
type ResizeBurstPoint struct {
	Scheme          string  `json:"scheme"`
	Mode            string  `json:"mode"` // "segment" or "per-node"
	Threads         int     `json:"threads"`
	Keys            uint64  `json:"keys"`
	Mops            float64 `json:"mops"`
	Resizes         uint64  `json:"resizes"`
	Retired         uint64  `json:"retired"`
	SegmentsRetired uint64  `json:"segments_retired"`
	SegRecords      uint64  `json:"seg_records"`
	Scans           uint64  `json:"scans"`
	StampsPerRecord float64 `json:"stamps_per_record"`
	ScansPerRecord  float64 `json:"scans_per_record"`
	Bound           int     `json:"bound"`
	GarbagePeak     uint64  `json:"garbage_peak"`
	Drained         bool    `json:"drained"`
}

// WidthPoint is one Domain-vs-Runtime width-comparison cell (schema v5): the
// announcement widths each construction path gives one structure, and the
// measured reservation-scan cost at those widths. With the width registry
// the runtime builds at the structure's declared widths, so the entries gap
// is zero and ns/scan is at parity; a reopened gap (RuntimeEntries >
// DomainEntries) means the runtime is back to conservative global widths and
// is always flagged by nbrtrend, host-independently.
type WidthPoint struct {
	DS              string  `json:"ds"`
	Threads         int     `json:"threads"`
	DomainEntries   int     `json:"domain_entries"`  // threads × declared reservations
	RuntimeEntries  int     `json:"runtime_entries"` // threads × runtime-built reservations
	DomainNsPerScan float64 `json:"domain_ns_per_scan"`
	RuntimeNsScan   float64 `json:"runtime_ns_per_scan"`
}

// ScanCostPoint measures one reservation scan (collect + sort + BagSize
// membership probes) at a given scan width N·R.
type ScanCostPoint struct {
	Threads     int     `json:"threads"`
	Slots       int     `json:"slots"`
	Entries     int     `json:"entries"` // N·R
	Probes      int     `json:"probes"`  // membership checks per scan
	NsPerScan   float64 `json:"ns_per_scan"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// FreeBurstPoint measures allocator throughput under concurrent
// FreeBatch/refill bursts at a given shard count.
type FreeBurstPoint struct {
	Shards     int     `json:"shards"`
	Goroutines int     `json:"goroutines"`
	Burst      int     `json:"burst"`
	NsPerOp    float64 `json:"ns_per_op"` // per alloc+free pair
	MopsPerSec float64 `json:"mops_per_sec"`
}

// snapshotCells is the fixed end-to-end suite: one tree and one list, the
// paper's main baseline (DEBRA), the fence-heavy baseline (HP, list only per
// Table 1 practice), and both NBR variants.
var snapshotCells = []struct {
	ds, scheme string
	keyRange   uint64
}{
	{"dgt", "debra", 200_000},
	{"dgt", "nbr", 200_000},
	{"dgt", "nbr+", 200_000},
	{"lazylist", "debra", 20_000},
	{"lazylist", "hp", 20_000},
	{"lazylist", "nbr+", 20_000},
	// The subtree-unlinking tree: its merge path retires two nodes per
	// RetireBatch, so this cell's batch histogram shows the seam working.
	{"abtree", "nbr+", 100_000},
}

// snapshotThreads is fixed rather than host-scaled so snapshots from
// different machines chart one trajectory; 8 keeps the paper's
// oversubscribed regime (and its signal traffic) even on small containers.
const snapshotThreads = 8

// WriteSnapshot runs the snapshot suite and writes the JSON to path. With
// assertBound it additionally fails on any cell whose sampled garbage peak
// exceeded the scheme's declared GarbageBound (the `nbrbench -assert-bound`
// mode) — the snapshot is still written so the violating numbers are
// inspectable.
func WriteSnapshot(path string, duration time.Duration, cfg SchemeConfig, assertBound bool) error {
	threads := snapshotThreads
	snap := Snapshot{
		Schema:     SnapshotSchema,
		CreatedAt:  time.Now().UTC(),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}

	var violations []string
	for _, c := range snapshotCells {
		r, err := Run(Workload{
			DS: c.ds, Scheme: c.scheme, Threads: threads, KeyRange: c.keyRange,
			InsPct: 50, DelPct: 50, Duration: duration, Prefill: -1, Cfg: cfg,
		})
		if err != nil {
			return fmt.Errorf("snapshot cell %s/%s: %w", c.ds, c.scheme, err)
		}
		snap.Workloads = append(snap.Workloads, WorkloadPoint{
			DS: c.ds, Scheme: c.scheme, Threads: threads, KeyRange: c.keyRange,
			Mops:    r.Mops,
			PeakMB:  float64(r.PeakBytes) / (1 << 20),
			Signals: r.Stats.Signals, Freed: r.Stats.Freed, Garbage: r.Stats.Garbage(),
			P50us: float64(r.LatP50) / 1e3, P99us: float64(r.LatP99) / 1e3,
			Batches: r.Batches, BatchP50: r.BatchP50, BatchP99: r.BatchP99,
			BatchMax: r.BatchMax, BatchHist: r.BatchHist,
			Bound: r.Bound, GarbagePeak: r.GarbagePeak,
		})
		if r.BoundExceeded() {
			violations = append(violations,
				fmt.Sprintf("%s/%s: garbage peak %d > declared bound %d",
					c.ds, c.scheme, r.GarbagePeak, r.Bound))
		}
	}

	// The shared-runtime cells (schema v4): one lease registry and one
	// scheme over three structures, workers oversubscribing the slots, so
	// the snapshot tracks the per-session admission + multi-owner routing
	// cost alongside the fixed-N workloads. Both the paper's main baseline
	// and NBR+ are recorded; schema v5 adds, for each scheme, the
	// adversarial interleaved-retire variant whose round-robin retire stream
	// alternates owners perfectly — the dispatch-per-burst column on that
	// cell is the hub's staging amortization under its worst case. Schema v6
	// adds the stall-injection cell: NBR+ with every stallEvery-th holder
	// wedging lease-held and a reaper revoking it mid-run, so the snapshot
	// tracks reaped-slot recycling under load; the bound and drain-to-zero
	// contracts must hold through holder deaths, and a stall cell that reaps
	// nothing is itself a violation (the revocation path went dead).
	for _, rc := range []struct {
		scheme            string
		interleave, stall bool
	}{
		{"debra", false, false},
		{"debra", true, false},
		{"nbr+", false, false},
		{"nbr+", true, false},
		{"nbr+", false, true},
	} {
		r, err := RunRuntime(RuntimeWorkload{
			Structures: []string{"lazylist", "harris", "dgt"},
			Scheme:     rc.scheme,
			Slots:      snapshotThreads,
			Workers:    snapshotThreads + snapshotThreads/2,
			KeyRange:   20_000,
			SessionOps: 64,
			Duration:   duration,
			Cfg:        cfg,
			Interleave: rc.interleave,
			Stall:      rc.stall,
		})
		if err != nil {
			return fmt.Errorf("snapshot runtime cell %s: %w", rc.scheme, err)
		}
		snap.Runtime = append(snap.Runtime, RuntimePoint{
			Structures: r.StructuresKey(), Scheme: rc.scheme,
			Slots: r.Slots, Workers: r.Workers, KeyRange: r.KeyRange,
			Mops: r.Mops, Sessions: r.Sessions, Freed: r.Stats.Freed,
			Bound: r.Bound, GarbagePeak: r.GarbagePeak,
			ForcedRounds: r.ForcedRounds, Fallbacks: r.Fallbacks,
			Drained:     r.Drained,
			Interleaved: rc.interleave, HubBursts: r.HubBursts,
			HubDispatches: r.HubDispatches, DispatchPerBurst: r.DispatchPerBurst,
			ScanEntries: r.ScanEntries,
			Stall:       rc.stall, Reaped: r.Reaped,
			RevokedReleases: r.RevokedReleases, OrphansAdopted: r.OrphansAdopted,
			AdmitWaitP50us:  float64(r.AdmitWaitP50) / 1e3,
			AdmitWaitP99us:  float64(r.AdmitWaitP99) / 1e3,
			GarbageAgeP50us: float64(r.GarbageAgeP50) / 1e3,
			GarbageAgeP99us: float64(r.GarbageAgeP99) / 1e3,
		})
		cell := r.StructuresKey()
		if rc.interleave {
			cell += "/interleaved"
		}
		if rc.stall {
			cell += "/stall"
		}
		nviol := len(violations)
		if r.BoundExceeded() {
			violations = append(violations,
				fmt.Sprintf("runtime %s/%s: garbage peak %d > declared bound %d",
					cell, rc.scheme, r.GarbagePeak, r.Bound))
		}
		if !r.Drained {
			violations = append(violations,
				fmt.Sprintf("runtime %s/%s: drain left retired %d != freed %d (or staging non-empty)",
					cell, rc.scheme, r.Stats.Retired, r.Stats.Freed))
		}
		if rc.stall && r.Reaped == 0 {
			violations = append(violations,
				fmt.Sprintf("runtime %s/%s: stall injection reaped nothing (revocation path dead)",
					cell, rc.scheme))
		}
		if !rc.stall && r.Reaped != 0 {
			violations = append(violations,
				fmt.Sprintf("runtime %s/%s: %d holders reaped in a cell with no stall injection",
					cell, rc.scheme, r.Reaped))
		}
		// Dump-on-violation: a runtime cell that broke its contract embeds
		// its flight-recorder tail in the report, so `nbrbench -assert-bound`
		// fails with a timeline that names the stalled thread and its open
		// read phase rather than a bare counter mismatch.
		if len(violations) > nviol && r.EventTail != "" {
			violations = append(violations,
				fmt.Sprintf("flight recorder tail for runtime %s/%s:\n%s",
					cell, rc.scheme, indentLines(r.EventTail, "    ")))
		}
	}

	// The resize-burst cells (schema v7): the segment-retirement A/B. The
	// same insert-only storm runs under the flagship NBR+ integration
	// (segment mode only — the per-node baseline skips per-record protection,
	// which NBR cannot tolerate) and under IBR in both modes; the IBR pair is
	// the asserted comparison, since only a grace-period scheme can run the
	// dissolve baseline safely.
	resizeCells := []struct {
		scheme  string
		perNode bool
	}{
		{"nbr+", false},
		{"ibr", false},
		{"ibr", true},
	}
	// The cells run at a fixed 512-record threshold regardless of the sweep
	// config: the bag needs headroom for whole arrays, or RetireChunk
	// degrades to single-record carves and the A/B measures nothing.
	rcfg := cfg
	rcfg.Threshold = 512
	perRecord := map[bool]float64{} // mode → stamps+scans per retired record (ibr pair)
	for _, rc := range resizeCells {
		r, err := RunResizeBurst(ResizeBurstWorkload{
			Scheme: rc.scheme, Threads: snapshotThreads, KeysPerThread: 1500,
			PerNode: rc.perNode, Cfg: rcfg,
		})
		if err != nil {
			return fmt.Errorf("snapshot resize-burst cell %s: %w", rc.scheme, err)
		}
		mode := "segment"
		if rc.perNode {
			mode = "per-node"
		}
		snap.ResizeBurst = append(snap.ResizeBurst, ResizeBurstPoint{
			Scheme: rc.scheme, Mode: mode, Threads: snapshotThreads,
			Keys: r.Keys, Mops: r.Mops, Resizes: r.Resizes,
			Retired: r.Stats.Retired, SegmentsRetired: r.Stats.Segments,
			SegRecords: r.Stats.SegRecords, Scans: r.Stats.Scans,
			StampsPerRecord: r.Stats.StampsPerRecord(),
			ScansPerRecord:  r.Stats.ScansPerRecord(),
			Bound:           r.Bound, GarbagePeak: r.GarbagePeak,
			Drained: r.Drained,
		})
		if rc.scheme == "ibr" {
			perRecord[rc.perNode] = r.Stats.StampsPerRecord() + r.Stats.ScansPerRecord()
		}
		if r.BoundExceeded() {
			violations = append(violations,
				fmt.Sprintf("resize-burst %s/%s: garbage peak %d > declared bound %d",
					rc.scheme, mode, r.GarbagePeak, r.Bound))
		}
		if !r.Drained {
			violations = append(violations,
				fmt.Sprintf("resize-burst %s/%s: drain left retired %d != freed %d",
					rc.scheme, mode, r.Stats.Retired, r.Stats.Freed))
		}
	}
	// The fast-path claim itself, as a counter ratio: segment retirement must
	// cut the scheme-side stamps+scans per retired record by at least 8× on
	// the same burst under the same scheme.
	if seg, pn := perRecord[false], perRecord[true]; seg > 0 && pn/seg < 8 {
		violations = append(violations,
			fmt.Sprintf("resize-burst ibr: segment mode reduced stamps+scans per record only %.1fx (per-node %.4f, segment %.4f); want >= 8x",
				pn/seg, pn, seg))
	}

	// The width-comparison cells (schema v5): for structures at both ends of
	// the declared-reservation range, the scan entries and ns/scan a Domain
	// gets (exact declared widths) vs what a Runtime hosting only that
	// structure builds through the width registry. The gap must stay closed.
	for _, name := range []string{"lazylist", "dgt"} {
		wp, err := measureWidths(name, snapshotThreads)
		if err != nil {
			return fmt.Errorf("snapshot width cell %s: %w", name, err)
		}
		snap.Widths = append(snap.Widths, wp)
	}

	for _, dim := range []struct{ threads, slots int }{
		{2, 4}, {8, 4}, {32, 4}, {64, 8}, {192, 4},
	} {
		snap.ScanCost = append(snap.ScanCost, measureScanCost(dim.threads, dim.slots))
	}

	for _, shards := range []int{1, 2, 4, 8} {
		snap.FreeBurst = append(snap.FreeBurst, measureFreeBurst(shards, 8, 256))
	}

	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	if assertBound && len(violations) > 0 {
		return fmt.Errorf("garbage-bound contract violated in %d cell(s):\n  %s",
			len(violations), strings.Join(violations, "\n  "))
	}
	return nil
}

// indentLines prefixes every non-empty line of s, for embedding a
// flight-recorder tail inside a violation report.
func indentLines(s, prefix string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i, l := range lines {
		if l != "" {
			lines[i] = prefix + l
		}
	}
	return strings.Join(lines, "\n")
}

// measureScanCost times the reclaim-path scan primitive: snapshot N·R
// announcement slots into the flat sorted scratch, then probe it once per
// bag record, exactly the work reclaimFreeable does per reclamation. Since
// the dynamic-membership refactor the collection walks the active mask, so
// the measurement runs with every slot active — the saturated fixed-N case
// whose cost the mask must not tax.
func measureScanCost(threads, slots int) ScanCostPoint {
	const probes = 1024
	announce := make([]smr.Pad64, threads*slots)
	for i := range announce {
		announce[i].Store(uint64(2*i + 2))
	}
	active := sigsim.FullActiveSet(threads)
	set := smr.NewScanSet(len(announce))
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			set.CollectRows(announce, slots, active)
			for k := 0; k < probes; k++ {
				set.Contains(uint64(2*k + 1))
			}
		}
	})
	return ScanCostPoint{
		Threads: threads, Slots: slots, Entries: len(announce), Probes: probes,
		NsPerScan:   float64(r.NsPerOp()),
		AllocsPerOp: r.AllocsPerOp(),
	}
}

// measureWidths builds one width-comparison cell: the Domain side uses the
// structure's own declared widths, the Runtime side the widths the shared
// runtime's width registry resolves for a runtime hosting exactly that
// structure (the same fold nbr.NewRuntime + NewSet performs). Scan cost is
// measured at each side's threads × reservations entries.
func measureWidths(name string, threads int) (WidthPoint, error) {
	domainReq, err := DSRequirements(name)
	if err != nil {
		return WidthPoint{}, err
	}
	runtimeReq, err := MaxRequirements([]string{name})
	if err != nil {
		return WidthPoint{}, err
	}
	domain := measureScanCost(threads, domainReq.Reservations)
	rt := measureScanCost(threads, runtimeReq.Reservations)
	return WidthPoint{
		DS: name, Threads: threads,
		DomainEntries: domain.Entries, RuntimeEntries: rt.Entries,
		DomainNsPerScan: domain.NsPerScan, RuntimeNsScan: rt.NsPerScan,
	}, nil
}

type burstRec struct{ _ [4]uint64 }

// measureFreeBurst times concurrent alloc-burst/FreeBatch cycles against a
// pool with the given shard count; ns/op is one alloc+free pair. The loop
// itself is mem.BurstChurn, shared with BenchmarkFreeBurst so snapshots and
// `go test -bench FreeBurst` measure the same thing.
func measureFreeBurst(shards, goroutines, burst int) FreeBurstPoint {
	r := testing.Benchmark(func(b *testing.B) {
		p := mem.NewPool[burstRec](mem.Config{MaxThreads: goroutines, CacheSize: 64, Shards: shards})
		b.ResetTimer()
		mem.BurstChurn(p, goroutines, burst, b.N)
	})
	ns := float64(r.NsPerOp())
	point := FreeBurstPoint{Shards: shards, Goroutines: goroutines, Burst: burst, NsPerOp: ns}
	if ns > 0 {
		point.MopsPerSec = 1e3 / ns
	}
	return point
}
