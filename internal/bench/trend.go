package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// This file is the snapshot-trajectory tooling behind cmd/nbrtrend: it
// loads the BENCH_<n>.json files that accumulate one per PR and diffs
// consecutive pairs, so a session (or CI) can see at a glance whether the
// reclaim path got faster or slower since the last snapshot.

// ReadSnapshot loads one perf snapshot. Older schema versions load too —
// fields they lack (e.g. v1 has no batch histograms) stay zero and the
// comparison simply skips them.
func ReadSnapshot(path string) (Snapshot, error) {
	var s Snapshot
	data, err := os.ReadFile(path)
	if err != nil {
		return s, err
	}
	if err := json.Unmarshal(data, &s); err != nil {
		return s, fmt.Errorf("%s: %w", path, err)
	}
	if !strings.HasPrefix(s.Schema, "nbr-perf-snapshot/") {
		return s, fmt.Errorf("%s: schema %q is not a perf snapshot", path, s.Schema)
	}
	return s, nil
}

// TrendDelta is one metric compared across two snapshots.
type TrendDelta struct {
	Cell       string // e.g. "workload dgt/nbr+ t=8 range=200000"
	Metric     string // e.g. "mops"
	Prev, Next float64
	// Pct is the relative change in the direction of the metric: positive
	// means worse (throughput down, cost up).
	Pct        float64
	Regression bool
	// Untrusted marks a delta between snapshots from different host shapes
	// (gomaxprocs/goarch): the numbers are shown but never flagged, because
	// the machines are not comparable.
	Untrusted bool
}

func (d TrendDelta) String() string {
	arrow := "→"
	tag := ""
	switch {
	case d.Regression:
		// Host-independent invariants (a scan that starts allocating) stay
		// flagged even across host shapes.
		tag = "  REGRESSION"
	case d.Untrusted:
		tag = "  UNTRUSTED(host shape differs)"
	}
	return fmt.Sprintf("%-44s %-10s %10.3f %s %10.3f  (%+.1f%%)%s",
		d.Cell, d.Metric, d.Prev, arrow, d.Next, d.Pct, tag)
}

// HostShapeMismatch describes why two snapshots' numbers are not comparable
// (different gomaxprocs or goarch), or returns "" when they are. Deltas
// computed across a mismatch are marked Untrusted and never flagged as
// regressions — a slower machine is not a slower reclaim path.
func HostShapeMismatch(prev, next Snapshot) string {
	var reasons []string
	if prev.GOMAXPROCS != next.GOMAXPROCS {
		reasons = append(reasons, fmt.Sprintf("gomaxprocs %d → %d", prev.GOMAXPROCS, next.GOMAXPROCS))
	}
	if prev.GOARCH != next.GOARCH {
		reasons = append(reasons, fmt.Sprintf("goarch %s → %s", prev.GOARCH, next.GOARCH))
	}
	return strings.Join(reasons, ", ")
}

// worsePct returns how much worse next is than prev, as a percentage, for a
// metric where `up` indicates whether larger values are worse.
func worsePct(prev, next float64, up bool) float64 {
	if prev == 0 {
		return 0
	}
	pct := (next - prev) / prev * 100
	if !up {
		pct = -pct
	}
	return pct
}

// CompareSnapshots diffs every cell the two snapshots share. threshold is
// the worsening percentage above which a delta is flagged as a regression
// (throughput drops, per-scan and per-burst cost growth); informational
// metrics (peak memory, tail latency, batch sizes) are reported but never
// flagged, since they swing with host load. A reservation scan that starts
// allocating is always flagged — the flat-scratch invariant is exact.
func CompareSnapshots(prev, next Snapshot, threshold float64) []TrendDelta {
	var out []TrendDelta
	untrusted := HostShapeMismatch(prev, next) != ""
	add := func(cell, metric string, p, n float64, up, flag bool) {
		pct := worsePct(p, n, up)
		out = append(out, TrendDelta{
			Cell: cell, Metric: metric, Prev: p, Next: n, Pct: pct,
			Regression: flag && pct > threshold && !untrusted,
			Untrusted:  untrusted,
		})
	}

	prevW := map[string]WorkloadPoint{}
	for _, w := range prev.Workloads {
		prevW[fmt.Sprintf("workload %s/%s t=%d range=%d", w.DS, w.Scheme, w.Threads, w.KeyRange)] = w
	}
	for _, w := range next.Workloads {
		key := fmt.Sprintf("workload %s/%s t=%d range=%d", w.DS, w.Scheme, w.Threads, w.KeyRange)
		p, ok := prevW[key]
		if !ok {
			continue
		}
		add(key, "mops", p.Mops, w.Mops, false, true)
		add(key, "peak_mb", p.PeakMB, w.PeakMB, true, false)
		add(key, "p99_us", p.P99us, w.P99us, true, false)
		if p.Batches > 0 && w.Batches > 0 {
			add(key, "batch_p99", float64(p.BatchP99), float64(w.BatchP99), false, false)
		}
		// Garbage-bound contract column (schema v3): informational in the
		// diff — the hard check is nbrbench -assert-bound and dstest — but
		// a growing peak against a fixed bound is worth seeing here.
		if p.GarbagePeak > 0 && w.GarbagePeak > 0 {
			add(key, "garbage_pk", float64(p.GarbagePeak), float64(w.GarbagePeak), true, false)
		}
	}

	// Shared-runtime cells (schema v4): throughput is flagged like the
	// workload cells; the contract columns (garbage peak against the
	// aggregated bound, fallback reuses) are informational here — the hard
	// check is nbrbench -assert-bound — but a fallback count that becomes
	// non-zero is a host-independent regression of the round guarantee, so
	// it is always flagged, like the scan-alloc invariant below.
	runtimeKey := func(r RuntimePoint) string {
		key := fmt.Sprintf("runtime %s/%s t=%d w=%d", r.Structures, r.Scheme, r.Slots, r.Workers)
		if r.Interleaved {
			key += " ilv" // schema v5: the adversarial round-robin retire cell
		}
		if r.Stall {
			key += " stall" // schema v6: the holder-death injection cell
		}
		return key
	}
	prevR := map[string]RuntimePoint{}
	for _, r := range prev.Runtime {
		prevR[runtimeKey(r)] = r
	}
	for _, r := range next.Runtime {
		key := runtimeKey(r)
		p, ok := prevR[key]
		if !ok {
			continue
		}
		add(key, "mops", p.Mops, r.Mops, false, true)
		add(key, "sessions", float64(p.Sessions), float64(r.Sessions), false, false)
		if p.GarbagePeak > 0 && r.GarbagePeak > 0 {
			add(key, "garbage_pk", float64(p.GarbagePeak), float64(r.GarbagePeak), true, false)
		}
		// Dispatch-per-burst (schema v5) is a counter ratio, not a timing:
		// host-independent, so its growth past the threshold is flagged even
		// across host shapes. Losing the staging amortization shows up here
		// as ~1 → ~records-per-burst.
		if p.DispatchPerBurst > 0 && r.DispatchPerBurst > 0 {
			pct := worsePct(p.DispatchPerBurst, r.DispatchPerBurst, true)
			out = append(out, TrendDelta{
				Cell: key, Metric: "disp_burst",
				Prev: p.DispatchPerBurst, Next: r.DispatchPerBurst, Pct: pct,
				Regression: pct > threshold,
				Untrusted:  untrusted,
			})
		}
		out = append(out, TrendDelta{
			Cell: key, Metric: "fallbacks",
			Prev: float64(p.Fallbacks), Next: float64(r.Fallbacks),
			Pct: worsePct(float64(p.Fallbacks), float64(r.Fallbacks), true),
			// The round guarantee is host-independent: an unaged-slot
			// fallback that appears is a regression on any machine.
			Regression: p.Fallbacks == 0 && r.Fallbacks > 0,
			Untrusted:  untrusted,
		})
		// Time-domain quantiles (schema v8) are wall-clock, so they are
		// host-dependent context: recorded with flag=false, never regressions,
		// exactly like tail latency on the workload cells. The counter-ratio
		// invariants this file already trusts (fallbacks, dispatch-per-burst,
		// reaps) remain the flagged surface.
		if p.AdmitWaitP99us > 0 && r.AdmitWaitP99us > 0 {
			add(key, "admit_p50", p.AdmitWaitP50us, r.AdmitWaitP50us, true, false)
			add(key, "admit_p99", p.AdmitWaitP99us, r.AdmitWaitP99us, true, false)
		}
		if p.GarbageAgeP99us > 0 && r.GarbageAgeP99us > 0 {
			add(key, "gage_p50", p.GarbageAgeP50us, r.GarbageAgeP50us, true, false)
			add(key, "gage_p99", p.GarbageAgeP99us, r.GarbageAgeP99us, true, false)
		}
		// Reap counts (schema v6) are counters, not timings. In a stall cell
		// they are the injection working (informational); in any other cell
		// nothing injects holder deaths, so reaps that go 0 → non-zero mean
		// the watchdog revoked a healthy holder — a regression on any
		// machine, flagged across host shapes.
		out = append(out, TrendDelta{
			Cell: key, Metric: "reaped",
			Prev: float64(p.Reaped), Next: float64(r.Reaped),
			Pct:        worsePct(float64(p.Reaped), float64(r.Reaped), true),
			Regression: !r.Stall && p.Reaped == 0 && r.Reaped > 0,
		})
	}

	// Resize-burst cells (schema v7): the ratio columns are pure counters, so
	// like dispatch-per-burst they are flagged even across host shapes. A
	// segment-mode stamps_per_record regressing toward 1.0 means retired
	// arrays stopped riding their segment handles — the fast path quietly
	// degrading to per-record retirement — and scans_per_record growing means
	// the scan cadence lost its amortization with it.
	prevRB := map[string]ResizeBurstPoint{}
	for _, rb := range prev.ResizeBurst {
		prevRB[fmt.Sprintf("resize %s/%s t=%d", rb.Scheme, rb.Mode, rb.Threads)] = rb
	}
	for _, rb := range next.ResizeBurst {
		key := fmt.Sprintf("resize %s/%s t=%d", rb.Scheme, rb.Mode, rb.Threads)
		p, ok := prevRB[key]
		if !ok {
			continue
		}
		add(key, "mops", p.Mops, rb.Mops, false, true)
		for _, ratio := range []struct {
			metric     string
			prev, next float64
		}{
			{"stamps_rec", p.StampsPerRecord, rb.StampsPerRecord},
			{"scans_rec", p.ScansPerRecord, rb.ScansPerRecord},
		} {
			pct := worsePct(ratio.prev, ratio.next, true)
			out = append(out, TrendDelta{
				Cell: key, Metric: ratio.metric,
				Prev: ratio.prev, Next: ratio.next, Pct: pct,
				// Only the segment mode's ratios are guarantees; the per-node
				// baseline sits at the 1.0 floor by construction and is
				// reported for the A/B context only.
				Regression: rb.Mode == "segment" && ratio.prev > 0 && pct > threshold,
				Untrusted:  untrusted,
			})
		}
	}

	// Width-comparison cells (schema v5): the entries gap is a pure width
	// count — host-independent and exact — so a Domain-vs-Runtime gap that
	// reopens (runtime scanning wider announcement rows than a Domain would
	// for the same structure) is always a regression, on any machine.
	prevWd := map[string]WidthPoint{}
	for _, wd := range prev.Widths {
		prevWd[fmt.Sprintf("width %s t=%d", wd.DS, wd.Threads)] = wd
	}
	for _, wd := range next.Widths {
		key := fmt.Sprintf("width %s t=%d", wd.DS, wd.Threads)
		p, ok := prevWd[key]
		if !ok {
			continue
		}
		prevGap := float64(p.RuntimeEntries - p.DomainEntries)
		nextGap := float64(wd.RuntimeEntries - wd.DomainEntries)
		out = append(out, TrendDelta{
			Cell: key, Metric: "width_gap",
			Prev: prevGap, Next: nextGap,
			Pct:        worsePct(prevGap, nextGap, true),
			Regression: nextGap > 0,
		})
		add(key, "rt_ns_scan", p.RuntimeNsScan, wd.RuntimeNsScan, true, true)
	}

	prevS := map[string]ScanCostPoint{}
	for _, s := range prev.ScanCost {
		prevS[fmt.Sprintf("scan N=%d R=%d", s.Threads, s.Slots)] = s
	}
	for _, s := range next.ScanCost {
		key := fmt.Sprintf("scan N=%d R=%d", s.Threads, s.Slots)
		p, ok := prevS[key]
		if !ok {
			continue
		}
		add(key, "ns_per_scan", p.NsPerScan, s.NsPerScan, true, true)
		if p.AllocsPerOp > 0 || s.AllocsPerOp > 0 {
			// A scan that *starts* allocating breaks the flat-scratch
			// invariant and is always a regression; a scan that already
			// allocated, or stopped allocating, is reported but not flagged.
			out = append(out, TrendDelta{
				Cell: key, Metric: "allocs_per_op",
				Prev: float64(p.AllocsPerOp), Next: float64(s.AllocsPerOp),
				Pct: worsePct(float64(p.AllocsPerOp), float64(s.AllocsPerOp), true),
				// The flat-scratch invariant is host-independent: a scan
				// that starts allocating is a regression on any machine.
				Regression: p.AllocsPerOp == 0 && s.AllocsPerOp > 0,
				Untrusted:  untrusted,
			})
		}
	}

	prevF := map[string]FreeBurstPoint{}
	for _, f := range prev.FreeBurst {
		prevF[fmt.Sprintf("burst shards=%d g=%d b=%d", f.Shards, f.Goroutines, f.Burst)] = f
	}
	for _, f := range next.FreeBurst {
		key := fmt.Sprintf("burst shards=%d g=%d b=%d", f.Shards, f.Goroutines, f.Burst)
		p, ok := prevF[key]
		if !ok {
			continue
		}
		add(key, "ns_per_op", p.NsPerOp, f.NsPerOp, true, true)
	}
	return out
}

// Regressions filters a comparison down to the flagged deltas.
func Regressions(deltas []TrendDelta) []TrendDelta {
	var out []TrendDelta
	for _, d := range deltas {
		if d.Regression {
			out = append(out, d)
		}
	}
	return out
}
