package bench

import (
	"testing"

	"nbr/internal/ds"
)

// TestDSRequirementsMatchInstances pins the width registry to the
// structures' own declarations: every DSNames entry must be in the table,
// and the table's widths must equal what a constructed instance declares —
// a registry that drifts narrow would overrun reservation rows, one that
// drifts wide would silently forfeit the narrow-scan fast path.
func TestDSRequirementsMatchInstances(t *testing.T) {
	for _, name := range DSNames {
		req, err := DSRequirements(name)
		if err != nil {
			t.Fatalf("%s missing from the width registry: %v", name, err)
		}
		inst, err := NewDS(name, 2)
		if err != nil {
			t.Fatal(err)
		}
		if req != inst.Req {
			t.Errorf("%s: registry declares %+v, instance declares %+v", name, req, inst.Req)
		}
	}
	if _, err := DSRequirements("bogus"); err == nil {
		t.Error("unknown structure must be rejected")
	}
}

// TestMaxRequirements pins the fold: the result is the smallest widths every
// named structure fits under, and an empty list is the zero value.
func TestMaxRequirements(t *testing.T) {
	got, err := MaxRequirements([]string{"lazylist", "harris", "abtree"})
	if err != nil {
		t.Fatal(err)
	}
	want := ds.Requirements{Slots: 3, Reservations: 3, Threshold: ds.DefaultThreshold}
	if got != want {
		t.Errorf("MaxRequirements = %+v, want %+v", got, want)
	}
	zero, err := MaxRequirements(nil)
	if err != nil {
		t.Fatal(err)
	}
	if zero != (ds.Requirements{}) {
		t.Errorf("MaxRequirements(nil) = %+v, want zero", zero)
	}
	if _, err := MaxRequirements([]string{"lazylist", "bogus"}); err == nil {
		t.Error("unknown structure must propagate an error")
	}
}
