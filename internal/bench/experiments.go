package bench

import (
	"fmt"
	"io"
	"sort"
	"text/tabwriter"
	"time"
)

// Options are the host-dependent knobs shared by all experiment presets.
type Options struct {
	// Threads is the thread-count sweep (the paper sweeps 24…252 on 192
	// hardware threads; the default scales to this host, keeping the
	// oversubscribed regime).
	Threads []int
	// Duration is the per-trial measurement time (paper: 5s).
	Duration time.Duration
	// Trials averages each cell over this many runs (paper: 3).
	Trials int
	// Full selects the paper's full key ranges (2M/20M) instead of the
	// host-scaled defaults.
	Full bool
	// Cfg carries the scheme knobs (bag sizes, signal costs, …).
	Cfg SchemeConfig
	Out io.Writer
}

// mix is an insert/delete percentage pair; the remainder are searches.
type mix struct{ ins, del int }

func (m mix) String() string { return fmt.Sprintf("%di-%dd", m.ins, m.del) }

var paperMixes = []mix{{50, 50}, {25, 25}, {5, 5}}

// stdSchemes is the paper's E1 comparison set (plus base NBR).
var stdSchemes = []string{"none", "qsbr", "rcu", "debra", "ibr", "hp", "nbr", "nbr+"}

// abtreeSchemes is the E3 set (Table 1 rules pointer-based schemes out).
var abtreeSchemes = []string{"none", "qsbr", "rcu", "debra", "nbr", "nbr+"}

// scaleRange maps the paper's key ranges onto this host unless Full is set:
// prefilling 10M records and measuring on one core adds minutes per cell
// without changing who wins (DESIGN.md §2).
func scaleRange(o Options, paper uint64) uint64 {
	if o.Full {
		return paper
	}
	switch {
	case paper >= 20_000_000:
		return 400_000
	case paper >= 2_000_000:
		return 200_000
	default:
		return paper
	}
}

// Experiment is one runnable preset reproducing a paper exhibit.
type Experiment struct {
	Name string
	Desc string
	Run  func(o Options) error
}

// Experiments lists every preset, in paper order.
var Experiments = []Experiment{
	{"fig3a", "E1 throughput: DGT tree, key range 2M, three mixes", func(o Options) error {
		return throughputFigure(o, "dgt", 2_000_000, paperMixes, stdSchemes)
	}},
	{"fig3b", "E1 throughput: lazy list, key range 20K, three mixes", func(o Options) error {
		return throughputFigure(o, "lazylist", 20_000, paperMixes, stdSchemes)
	}},
	{"fig4a", "E3 throughput: ABTree, 50i-50d, key ranges 2M and 200", func(o Options) error {
		if err := throughputFigure(o, "abtree", 2_000_000, []mix{{50, 50}}, abtreeSchemes); err != nil {
			return err
		}
		return throughputFigure(o, "abtree", 200, []mix{{50, 50}}, abtreeSchemes)
	}},
	{"fig4b", "E4 throughput: Harris-Michael list restart study, 50i-50d, ranges 20K and 200", fig4b},
	{"fig4c", "E2 peak memory with one stalled thread (DGT, 50i-50d, 2M)", func(o Options) error {
		return memoryFigure(o, true)
	}},
	{"fig4d", "E2 peak memory with no stalled thread (DGT, 50i-50d, 2M)", func(o Options) error {
		return memoryFigure(o, false)
	}},
	{"fig5a", "Appendix throughput: DGT, key range 20M, three mixes", func(o Options) error {
		return throughputFigure(o, "dgt", 20_000_000, paperMixes, stdSchemes)
	}},
	{"fig5b", "Appendix throughput: DGT, key range 20K, three mixes", func(o Options) error {
		return throughputFigure(o, "dgt", 20_000, paperMixes, stdSchemes)
	}},
	{"fig6a", "Appendix throughput: lazy list, key range 2K, three mixes", func(o Options) error {
		return throughputFigure(o, "lazylist", 2_000, paperMixes, stdSchemes)
	}},
	{"fig6b", "Appendix throughput: lazy list, key range 200, three mixes", func(o Options) error {
		return throughputFigure(o, "lazylist", 200, paperMixes, stdSchemes)
	}},
	{"fig7a", "Appendix throughput: Harris list, key range 200, three mixes", func(o Options) error {
		return throughputFigure(o, "harris", 200, paperMixes, stdSchemes)
	}},
	{"fig7b", "Appendix throughput: Harris list, key range 2K, three mixes", func(o Options) error {
		return throughputFigure(o, "harris", 2_000, paperMixes, stdSchemes)
	}},
	{"fig7c", "Appendix throughput: Harris list, key range 20K, three mixes", func(o Options) error {
		return throughputFigure(o, "harris", 20_000, paperMixes, stdSchemes)
	}},
	{"fig8a", "Appendix throughput: ABTree, key range 20M, three mixes", func(o Options) error {
		return throughputFigure(o, "abtree", 20_000_000, paperMixes, abtreeSchemes)
	}},
	{"fig8b", "Appendix throughput: ABTree, key range 2M, three mixes", func(o Options) error {
		return throughputFigure(o, "abtree", 2_000_000, paperMixes, abtreeSchemes)
	}},
	{"headline", "§7 headline ratios: NBR+ vs DEBRA and HP on the tree and list", headline},
	{"ablate-sigcost", "Ablation: sensitivity of NBR/NBR+ to the simulated signal cost", ablateSigCost},
	{"ablate-bag", "Ablation: NBR+ limbo-bag HiWatermark sweep", ablateBag},
	{"ablate-lowm", "Ablation: NBR+ LoWatermark fraction sweep", ablateLoWm},
	{"ablate-signals", "Ablation: signals per operation, NBR vs NBR+ (the O(n²)→O(n) claim)", ablateSignals},
	{"ablate-latency", "Ablation: sampled operation latency (reclamation bursts show up in the tail)", ablateLatency},
	{"ablate-timeline", "Ablation: live-memory timeline under a stalled thread (E2 over time)", ablateTimeline},
}

// Lookup finds a preset by name.
func Lookup(name string) (Experiment, bool) {
	for _, e := range Experiments {
		if e.Name == name {
			return e, true
		}
	}
	return Experiment{}, false
}

// runCell measures one workload cell, averaged over Trials.
func runCell(o Options, w Workload) (Result, error) {
	var acc Result
	for trial := 0; trial < o.Trials; trial++ {
		w.Seed = uint64(trial+1) * 0x9e3779b97f4a7c15
		r, err := Run(w)
		if err != nil {
			return Result{}, err
		}
		if trial == 0 {
			acc = r
		} else {
			acc.Mops += r.Mops
			acc.Ops += r.Ops
			if r.PeakBytes > acc.PeakBytes {
				acc.PeakBytes = r.PeakBytes
			}
			if r.PeakLive > acc.PeakLive {
				acc.PeakLive = r.PeakLive
			}
		}
	}
	acc.Mops /= float64(o.Trials)
	return acc, nil
}

// throughputFigure prints one figure: a table per mix, thread counts as
// rows, schemes as columns — the same series the paper plots.
func throughputFigure(o Options, dsName string, paperRange uint64, mixes []mix, schemes []string) error {
	keyRange := scaleRange(o, paperRange)
	for _, m := range mixes {
		fmt.Fprintf(o.Out, "\n%s  %s  key range %d (paper: %d)  prefill %d  [Mops/s]\n",
			dsName, m, keyRange, paperRange, keyRange/2)
		tw := tabwriter.NewWriter(o.Out, 8, 0, 2, ' ', 0)
		fmt.Fprint(tw, "threads")
		for _, s := range schemes {
			fmt.Fprintf(tw, "\t%s", s)
		}
		fmt.Fprintln(tw)
		for _, th := range o.Threads {
			fmt.Fprintf(tw, "%d", th)
			for _, s := range schemes {
				r, err := runCell(o, Workload{
					DS: dsName, Scheme: s, Threads: th, KeyRange: keyRange,
					InsPct: m.ins, DelPct: m.del, Duration: o.Duration,
					Prefill: -1, Cfg: o.Cfg,
				})
				if err != nil {
					return err
				}
				fmt.Fprintf(tw, "\t%.3f", r.Mops)
			}
			fmt.Fprintln(tw)
		}
		if err := tw.Flush(); err != nil {
			return err
		}
	}
	return nil
}

// fig4b is E4: the restart-from-root study on the Harris-Michael list.
func fig4b(o Options) error {
	series := []struct{ ds, scheme, label string }{
		{"hmlist", "nbr+", "nbr+"},
		{"hmlist", "debra", "debra-restarts"},
		{"hmlist-norestart", "debra", "debra-norestarts"},
		{"hmlist", "none", "none"},
	}
	for _, keyRange := range []uint64{20_000, 200} {
		fmt.Fprintf(o.Out, "\nhmlist restart study  50i-50d  key range %d  [Mops/s]\n", keyRange)
		tw := tabwriter.NewWriter(o.Out, 8, 0, 2, ' ', 0)
		fmt.Fprint(tw, "threads")
		for _, s := range series {
			fmt.Fprintf(tw, "\t%s", s.label)
		}
		fmt.Fprintln(tw)
		for _, th := range o.Threads {
			fmt.Fprintf(tw, "%d", th)
			for _, s := range series {
				r, err := runCell(o, Workload{
					DS: s.ds, Scheme: s.scheme, Threads: th, KeyRange: keyRange,
					InsPct: 50, DelPct: 50, Duration: o.Duration, Prefill: -1, Cfg: o.Cfg,
				})
				if err != nil {
					return err
				}
				fmt.Fprintf(tw, "\t%.3f", r.Mops)
			}
			fmt.Fprintln(tw)
		}
		if err := tw.Flush(); err != nil {
			return err
		}
	}
	return nil
}

// memoryFigure is E2: peak resident memory per scheme on the DGT tree, with
// or without a stalled thread, at the largest thread count in the sweep.
func memoryFigure(o Options, stall bool) error {
	keyRange := scaleRange(o, 2_000_000)
	threads := o.Threads[len(o.Threads)-1]
	label := "no stalled thread"
	if stall {
		label = "one stalled thread"
	}
	fmt.Fprintf(o.Out, "\nDGT  50i-50d  key range %d  %d threads  %s  peak resident memory\n",
		keyRange, threads, label)
	tw := tabwriter.NewWriter(o.Out, 10, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "scheme\tpeak MB\tpeak records\tretired\tfreed\tgarbage")
	for _, s := range stdSchemes {
		r, err := runCell(o, Workload{
			DS: "dgt", Scheme: s, Threads: threads, KeyRange: keyRange,
			InsPct: 50, DelPct: 50, Duration: o.Duration, Prefill: -1,
			Stall: stall, Cfg: o.Cfg,
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "%s\t%.2f\t%d\t%d\t%d\t%d\n",
			s, float64(r.PeakBytes)/(1<<20), r.PeakLive,
			r.Stats.Retired, r.Stats.Freed, r.Stats.Garbage())
	}
	return tw.Flush()
}

// headline reports the §7 comparison ratios at the largest thread count.
func headline(o Options) error {
	threads := o.Threads[len(o.Threads)-1]
	type target struct {
		ds       string
		keyRange uint64
		vsDebra  string // paper claim
		vsHP     string
	}
	targets := []target{
		{"dgt", scaleRange(o, 2_000_000), "paper: nbr+ up to +38%", "paper: nbr+ up to +17%"},
		{"lazylist", 20_000, "paper: nbr+ up to +15%", "paper: nbr+ up to +243%"},
	}
	tw := tabwriter.NewWriter(o.Out, 10, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "structure\tnbr+ Mops\tdebra Mops\thp Mops\tnbr+/debra\tnbr+/hp\tpaper")
	for _, t := range targets {
		mops := map[string]float64{}
		for _, s := range []string{"nbr+", "debra", "hp"} {
			r, err := runCell(o, Workload{
				DS: t.ds, Scheme: s, Threads: threads, KeyRange: t.keyRange,
				InsPct: 50, DelPct: 50, Duration: o.Duration, Prefill: -1, Cfg: o.Cfg,
			})
			if err != nil {
				return err
			}
			mops[s] = r.Mops
		}
		fmt.Fprintf(tw, "%s\t%.3f\t%.3f\t%.3f\t%+.1f%%\t%+.1f%%\t%s | %s\n",
			t.ds, mops["nbr+"], mops["debra"], mops["hp"],
			100*(mops["nbr+"]/mops["debra"]-1), 100*(mops["nbr+"]/mops["hp"]-1),
			t.vsDebra, t.vsHP)
	}
	return tw.Flush()
}

// ablateSigCost sweeps the simulated pthread_kill cost: NBR's throughput
// should degrade with signal cost much faster than NBR+'s.
func ablateSigCost(o Options) error {
	threads := o.Threads[len(o.Threads)-1]
	keyRange := scaleRange(o, 2_000_000)
	costs := []int{0, 200, 600, 2000, 10000}
	fmt.Fprintf(o.Out, "\ndgt  50i-50d  key range %d  %d threads  small bags (256) to force frequent signalling  [Mops/s]\n",
		keyRange, threads)
	tw := tabwriter.NewWriter(o.Out, 10, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "send spin\tnbr\tnbr+\tdebra (ref)")
	for _, c := range costs {
		cfg := o.Cfg
		cfg.SendSpin = c
		cfg.HandleSpin = c / 2
		cfg.BagSize = 256 // reclaim often so the signal path dominates
		row := make(map[string]float64)
		for _, s := range []string{"nbr", "nbr+", "debra"} {
			r, err := runCell(o, Workload{
				DS: "dgt", Scheme: s, Threads: threads, KeyRange: keyRange,
				InsPct: 50, DelPct: 50, Duration: o.Duration, Prefill: -1, Cfg: cfg,
			})
			if err != nil {
				return err
			}
			row[s] = r.Mops
		}
		fmt.Fprintf(tw, "%d\t%.3f\t%.3f\t%.3f\n", c, row["nbr"], row["nbr+"], row["debra"])
	}
	return tw.Flush()
}

// ablateBag sweeps the limbo-bag HiWatermark (paper default 32k at 192
// threads): small bags signal constantly, large bags hold more garbage.
func ablateBag(o Options) error {
	threads := o.Threads[len(o.Threads)-1]
	keyRange := scaleRange(o, 2_000_000)
	fmt.Fprintf(o.Out, "\ndgt  50i-50d  key range %d  %d threads  bag-size sweep\n", keyRange, threads)
	tw := tabwriter.NewWriter(o.Out, 10, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "bag size\tnbr+ Mops\tsignals\tpeak MB")
	for _, bag := range []int{128, 256, 512, 1024, 2048, 4096} {
		cfg := o.Cfg
		cfg.BagSize = bag
		r, err := runCell(o, Workload{
			DS: "dgt", Scheme: "nbr+", Threads: threads, KeyRange: keyRange,
			InsPct: 50, DelPct: 50, Duration: o.Duration, Prefill: -1, Cfg: cfg,
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "%d\t%.3f\t%d\t%.2f\n", bag, r.Mops, r.Stats.Signals,
			float64(r.PeakBytes)/(1<<20))
	}
	return tw.Flush()
}

// ablateLoWm sweeps the NBR+ LoWatermark fraction ("one half or one quarter
// full").
func ablateLoWm(o Options) error {
	threads := o.Threads[len(o.Threads)-1]
	keyRange := scaleRange(o, 2_000_000)
	fmt.Fprintf(o.Out, "\ndgt  50i-50d  key range %d  %d threads  LoWatermark sweep\n", keyRange, threads)
	tw := tabwriter.NewWriter(o.Out, 10, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "lo fraction\tnbr+ Mops\tsignals\tfreed")
	for _, f := range []float64{0.125, 0.25, 0.5, 0.75, 0.9} {
		cfg := o.Cfg
		cfg.LoFraction = f
		r, err := runCell(o, Workload{
			DS: "dgt", Scheme: "nbr+", Threads: threads, KeyRange: keyRange,
			InsPct: 50, DelPct: 50, Duration: o.Duration, Prefill: -1, Cfg: cfg,
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "%.3f\t%.3f\t%d\t%d\n", f, r.Mops, r.Stats.Signals, r.Stats.Freed)
	}
	return tw.Flush()
}

// ablateSignals compares signal traffic between NBR and NBR+ (the paper's
// O(n²) vs O(n) signals-per-grace-period claim, §5).
func ablateSignals(o Options) error {
	threads := o.Threads[len(o.Threads)-1]
	keyRange := scaleRange(o, 2_000_000)
	// A large bag and a low LoWatermark give NBR+ a wide window in which
	// to observe other threads' RGPs (the paper runs 32k-record bags).
	cfg := o.Cfg
	cfg.BagSize = 2048
	cfg.LoFraction = 0.25
	fmt.Fprintf(o.Out, "\ndgt  50i-50d  key range %d  %d threads  bag 2048  LoWm 0.25\n", keyRange, threads)
	tw := tabwriter.NewWriter(o.Out, 10, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "scheme\tMops\tsignals\tsignals/1k ops\tfreed\tgarbage")
	for _, s := range []string{"nbr", "nbr+"} {
		r, err := runCell(o, Workload{
			DS: "dgt", Scheme: s, Threads: threads, KeyRange: keyRange,
			InsPct: 50, DelPct: 50, Duration: o.Duration, Prefill: -1, Cfg: cfg,
		})
		if err != nil {
			return err
		}
		perK := float64(r.Stats.Signals) / float64(r.Ops) * 1000
		fmt.Fprintf(tw, "%s\t%.3f\t%d\t%.2f\t%d\t%d\n",
			s, r.Mops, r.Stats.Signals, perK, r.Stats.Freed, r.Stats.Garbage())
	}
	return tw.Flush()
}

// ablateLatency reports sampled latency quantiles per scheme: DEBRA's epoch
// rotations free whole bags at once, which shows up as a heavier tail than
// NBR+'s incremental reclamation (P1 covers latency, not just throughput).
func ablateLatency(o Options) error {
	threads := o.Threads[len(o.Threads)-1]
	keyRange := scaleRange(o, 2_000_000)
	fmt.Fprintf(o.Out, "\ndgt  50i-50d  key range %d  %d threads  sampled op latency\n", keyRange, threads)
	tw := tabwriter.NewWriter(o.Out, 10, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "scheme\tMops\tp50\tp99\tmax")
	for _, s := range []string{"none", "debra", "hp", "nbr", "nbr+"} {
		r, err := runCell(o, Workload{
			DS: "dgt", Scheme: s, Threads: threads, KeyRange: keyRange,
			InsPct: 50, DelPct: 50, Duration: o.Duration, Prefill: -1, Cfg: o.Cfg,
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "%s\t%.3f\t%v\t%v\t%v\n", s, r.Mops, r.LatP50, r.LatP99, r.LatMax)
	}
	return tw.Flush()
}

// ablateTimeline renders the live-bytes timeline as text sparklines: under
// a stalled thread the epoch schemes climb monotonically while NBR+ shows a
// bounded sawtooth (bag fills, RGP, burst free).
func ablateTimeline(o Options) error {
	threads := o.Threads[len(o.Threads)-1]
	keyRange := scaleRange(o, 2_000_000)
	fmt.Fprintf(o.Out, "\ndgt  50i-50d  key range %d  %d threads + 1 stalled  live bytes over time\n",
		keyRange, threads)
	for _, s := range []string{"none", "debra", "nbr+"} {
		r, err := runCell(o, Workload{
			DS: "dgt", Scheme: s, Threads: threads, KeyRange: keyRange,
			InsPct: 50, DelPct: 50, Duration: o.Duration, Prefill: -1,
			Stall: true, Cfg: o.Cfg,
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(o.Out, "%-6s |%s| %.1f → %.1f MB (peak %.1f)\n",
			s, sparkline(r.Series, 60),
			firstMB(r.Series), lastMB(r.Series), float64(r.PeakBytes)/(1<<20))
	}
	return nil
}

func firstMB(s []int64) float64 {
	if len(s) == 0 {
		return 0
	}
	return float64(s[0]) / (1 << 20)
}

func lastMB(s []int64) float64 {
	if len(s) == 0 {
		return 0
	}
	return float64(s[len(s)-1]) / (1 << 20)
}

// sparkline downsamples a series into width buckets of block characters.
func sparkline(series []int64, width int) string {
	if len(series) == 0 {
		return ""
	}
	blocks := []rune("▁▂▃▄▅▆▇█")
	if width > len(series) {
		width = len(series)
	}
	var lo, hi int64 = series[0], series[0]
	for _, v := range series {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	span := hi - lo
	if span == 0 {
		span = 1
	}
	out := make([]rune, width)
	for i := 0; i < width; i++ {
		v := series[i*len(series)/width]
		idx := int((v - lo) * int64(len(blocks)-1) / span)
		out[i] = blocks[idx]
	}
	return string(out)
}

// PrintTable1 renders the applicability matrix with its notes.
func PrintTable1(out io.Writer) {
	tw := tabwriter.NewWriter(out, 10, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "structure\tNBR/NBR+\tEBR (qsbr,rcu,debra)\tHP-family (hp,ibr,he)")
	names := append([]string{}, DSNames...)
	sort.Strings(names)
	for _, d := range names {
		fmt.Fprintf(tw, "%s", d)
		for _, fam := range []string{"nbr", "debra", "hp"} {
			v, _ := Table1Verdict(d, fam)
			cell := "no"
			if v.OK {
				cell = "yes"
			} else if Runnable(d, fam) {
				cell = "no*"
			}
			fmt.Fprintf(tw, "\t%s", cell)
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
	fmt.Fprintln(out, "\n(no* = Table 1 says no, but the harness runs it in benchmark mode as the paper's E1 does)")
	fmt.Fprintln(out, "\nnotes:")
	for _, d := range names {
		for _, fam := range []string{"nbr", "debra", "hp"} {
			if v, ok := Table1Verdict(d, fam); ok && v.Note != "" {
				fmt.Fprintf(out, "  %s / %s: %s\n", d, fam, v.Note)
			}
		}
	}
}
