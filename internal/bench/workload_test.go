package bench

import (
	"testing"
	"time"
)

func TestResultLatencyFieldsPopulated(t *testing.T) {
	r, err := Run(Workload{
		DS: "lazylist", Scheme: "debra", Threads: 2, KeyRange: 128,
		InsPct: 50, DelPct: 50, Duration: 80 * time.Millisecond,
		Prefill: -1, Cfg: DefaultSchemeConfig(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.LatP50 <= 0 || r.LatP99 < r.LatP50 || r.LatMax < r.LatP99 {
		t.Fatalf("latency quantiles inconsistent: p50=%v p99=%v max=%v",
			r.LatP50, r.LatP99, r.LatMax)
	}
}

func TestResultSeriesSampled(t *testing.T) {
	r, err := Run(Workload{
		DS: "lazylist", Scheme: "nbr+", Threads: 2, KeyRange: 128,
		InsPct: 50, DelPct: 50, Duration: 60 * time.Millisecond,
		Prefill: -1, Cfg: DefaultSchemeConfig(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Series) < 3 {
		t.Fatalf("timeline too short: %d samples", len(r.Series))
	}
	for _, v := range r.Series {
		if v < 0 {
			t.Fatal("negative live bytes sampled")
		}
	}
}

func TestSparkline(t *testing.T) {
	if s := sparkline(nil, 10); s != "" {
		t.Fatalf("empty series must render empty, got %q", s)
	}
	s := sparkline([]int64{0, 1, 2, 3, 4, 5, 6, 7}, 8)
	if len([]rune(s)) != 8 {
		t.Fatalf("width wrong: %q", s)
	}
	if []rune(s)[0] == []rune(s)[7] {
		t.Fatalf("monotone series must span block levels: %q", s)
	}
	flat := sparkline([]int64{5, 5, 5}, 3)
	if len([]rune(flat)) != 3 {
		t.Fatalf("flat series width wrong: %q", flat)
	}
}

func TestSplitmix64Distribution(t *testing.T) {
	// Regression for the parity artifact that broke an example: op choice
	// and key must not correlate through low bits.
	s := uint64(42)
	var evenKeyDeletes, evenKeys int
	for i := 0; i < 10000; i++ {
		r := splitmix64(&s)
		key := r % 100
		roll := (r >> 32) % 2
		if key%2 == 0 {
			evenKeys++
			if roll == 0 {
				evenKeyDeletes++
			}
		}
	}
	if evenKeys == 0 {
		t.Fatal("no even keys at all")
	}
	frac := float64(evenKeyDeletes) / float64(evenKeys)
	if frac < 0.4 || frac > 0.6 {
		t.Fatalf("op/key correlation detected: %.2f", frac)
	}
}

func TestPrefillCapsWorkers(t *testing.T) {
	// Prefill with many threads must not panic and must reach the target.
	r, err := Run(Workload{
		DS: "dgt", Scheme: "none", Threads: 12, KeyRange: 4_000,
		InsPct: 0, DelPct: 0, Duration: 20 * time.Millisecond,
		Prefill: -1, Cfg: DefaultSchemeConfig(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.PeakLive < 2_000 {
		t.Fatalf("prefill incomplete: %d live", r.PeakLive)
	}
}
