package bench

import "testing"

// TestResizeBurstSegmentAmortization pins the fast-path claim the snapshot
// asserts: on the same insert-only burst, under the same grace-period scheme,
// retiring old bucket arrays as segments must cut the scheme-side stamps and
// scans per retired record by at least 8× versus dissolving each array and
// retiring its cells individually. Counter ratios only — no timing.
func TestResizeBurstSegmentAmortization(t *testing.T) {
	cfg := DefaultSchemeConfig()
	// The threshold must leave the bag headroom for whole arrays: a bag
	// pinned at its threshold forces RetireChunk down to single-record
	// carves, which is per-node retirement with extra steps (and is exactly
	// what the stamps_per_record column would expose).
	cfg.Threshold = 512
	base := ResizeBurstWorkload{
		Scheme: "ibr", Threads: 4, KeysPerThread: 800, Cfg: cfg,
	}

	seg := base
	run := func(w ResizeBurstWorkload) ResizeBurstResult {
		t.Helper()
		r, err := RunResizeBurst(w)
		if err != nil {
			t.Fatal(err)
		}
		if r.Resizes < 4 {
			t.Fatalf("burst drove only %d resizes", r.Resizes)
		}
		if r.BoundExceeded() {
			t.Fatalf("garbage peak %d > declared bound %d", r.GarbagePeak, r.Bound)
		}
		if !r.Drained {
			t.Fatalf("drain stalled: retired %d, freed %d", r.Stats.Retired, r.Stats.Freed)
		}
		return r
	}
	sr := run(seg)
	if sr.Stats.Segments == 0 || sr.Stats.SegRecords == 0 {
		t.Fatalf("segment mode retired no segments: %+v", sr.Stats)
	}

	pn := base
	pn.PerNode = true
	pr := run(pn)
	if pr.Stats.Segments != 0 {
		t.Fatalf("per-node mode retired %d segments", pr.Stats.Segments)
	}
	if spr := pr.Stats.StampsPerRecord(); spr != 1.0 {
		t.Fatalf("per-node stamps/record = %v, want exactly 1.0 (every cell stamped)", spr)
	}

	segCost := sr.Stats.StampsPerRecord() + sr.Stats.ScansPerRecord()
	pnCost := pr.Stats.StampsPerRecord() + pr.Stats.ScansPerRecord()
	if segCost <= 0 {
		t.Fatalf("segment mode recorded no per-record cost (retired %d)", sr.Stats.Retired)
	}
	if ratio := pnCost / segCost; ratio < 8 {
		t.Fatalf("segment retirement amortized stamps+scans only %.1fx (per-node %.4f, segment %.4f); want >= 8x",
			ratio, pnCost, segCost)
	}
}

// TestResizeBurstRejectsUnsafeBaseline pins the safety gate: the dissolve
// baseline skips per-cell protection, so schemes that rely on it must be
// refused, not run.
func TestResizeBurstRejectsUnsafeBaseline(t *testing.T) {
	for _, scheme := range []string{"nbr", "nbr+", "hp"} {
		_, err := RunResizeBurst(ResizeBurstWorkload{
			Scheme: scheme, Threads: 2, KeysPerThread: 100, PerNode: true,
			Cfg: DefaultSchemeConfig(),
		})
		if err == nil {
			t.Fatalf("per-node baseline under %s must be rejected", scheme)
		}
	}
}
