// Package bench is the experiment harness: it constructs data structures and
// reclamation schemes by name, encodes the paper's applicability matrix
// (Table 1), drives timed workloads, and reproduces every figure of the
// evaluation (see DESIGN.md §5 for the index).
package bench

import (
	"fmt"

	"nbr/internal/core"
	"nbr/internal/ds"
	"nbr/internal/mem"
	"nbr/internal/sigsim"
	"nbr/internal/smr"
	"nbr/internal/smr/debra"
	"nbr/internal/smr/he"
	"nbr/internal/smr/hp"
	"nbr/internal/smr/ibr"
	"nbr/internal/smr/leaky"
	"nbr/internal/smr/qsbr"
	"nbr/internal/smr/rcu"
)

// SchemeNames lists every reclamation scheme in the harness, in the order
// the paper's figures present them.
var SchemeNames = []string{"none", "qsbr", "rcu", "debra", "ibr", "hp", "he", "nbr", "nbr+"}

// SchemeConfig carries every scheme knob the experiments sweep.
type SchemeConfig struct {
	// BagSize is the NBR limbo-bag HiWatermark.
	BagSize int
	// LoFraction positions the NBR+ LoWatermark.
	LoFraction float64
	// ScanFreq amortizes the NBR+ announceTS scan.
	ScanFreq int
	// Slots is the NBR reservation capacity per thread; 0 (the default)
	// adopts the data structure's declared width (ds.Requirements), so the
	// N·R scan shrinks to what the structure actually reserves.
	Slots int
	// SendSpin and HandleSpin are the simulated signal costs.
	SendSpin, HandleSpin int
	// Threshold is the bag limit of the epoch/pointer schemes
	// (qsbr/rcu/hp/ibr/he); 0 (the default) adopts the data structure's
	// declared per-peer depth (ds.Requirements.Threshold) when known, else
	// each scheme's own default.
	Threshold int
	// EraFreq is the IBR/HE era-advance period.
	EraFreq int
}

// DefaultSchemeConfig returns the defaults documented in DESIGN.md §6.
// Slots is left at 0 (auto) so the per-data-structure reservation width
// applies unless an experiment pins it.
func DefaultSchemeConfig() SchemeConfig {
	return SchemeConfig{
		BagSize:    1024,
		LoFraction: 0.5,
		ScanFreq:   32,
		SendSpin:   600,
		HandleSpin: 300,
	}
}

// NewScheme constructs the named scheme over an arena for a thread count,
// with the conservative default announcement widths. Callers that know the
// data structure should prefer NewSchemeFor, which sizes the scheme's scan
// width to what the structure declares.
func NewScheme(name string, arena mem.Arena, threads int, cfg SchemeConfig) (smr.Scheme, error) {
	return NewSchemeFor(name, arena, threads, cfg, ds.DefaultRequirements)
}

// NewSchemeFor constructs the named scheme sized to a data structure's
// declared widths: req.Reservations becomes NBR's R when cfg.Slots is 0
// (auto), and req.Slots sizes the hazard-pointer/era announcement arrays —
// every reservation or hazard scan then walks N·width entries for the width
// the structure actually uses instead of a global worst case. req.Threshold
// (per peer thread) sizes the threshold-triggered schemes' retire buffers
// when cfg.Threshold is 0 (auto), decoupling their scan frequency from the
// narrow per-DS Slots that would otherwise drag hp's 2·N·Slots default down
// with it; the 64-record floor matches the schemes' own minimum.
func NewSchemeFor(name string, arena mem.Arena, threads int, cfg SchemeConfig, req ds.Requirements) (smr.Scheme, error) {
	if req.Slots <= 0 {
		req.Slots = ds.DefaultRequirements.Slots
	}
	if req.Reservations <= 0 {
		req.Reservations = ds.DefaultRequirements.Reservations
	}
	if cfg.Slots == 0 {
		cfg.Slots = req.Reservations
	}
	if cfg.Threshold == 0 && req.Threshold > 0 {
		cfg.Threshold = threads * req.Threshold
		if cfg.Threshold < 64 {
			cfg.Threshold = 64
		}
	}
	sig := sigsim.Config{SendSpin: cfg.SendSpin, HandleSpin: cfg.HandleSpin}
	sch, err := newScheme(name, arena, threads, cfg, req, sig)
	if err != nil {
		return nil, err
	}
	// Size each thread's allocator cache to the scheme's declared
	// reclamation burst (the limbo bag for NBR, the scan threshold for the
	// pointer/era schemes), so one reclamation amortizes to at most one
	// shared-shard interaction and the recycled slots stay local for the
	// allocations that refill the structure (ROADMAP item from PR 1).
	// Lease-managed callers re-apply the same sizing per slot at acquire
	// time via the registry hooks.
	if burst := sch.ReclaimBurst(); burst > 0 {
		for tid := 0; tid < threads; tid++ {
			arena.SizeCache(tid, burst)
		}
	}
	return sch, nil
}

func newScheme(name string, arena mem.Arena, threads int, cfg SchemeConfig, req ds.Requirements, sig sigsim.Config) (smr.Scheme, error) {
	switch name {
	case "none", "leaky":
		return leaky.New(arena, threads), nil
	case "qsbr":
		return qsbr.New(arena, threads, qsbr.Config{Threshold: cfg.Threshold}), nil
	case "rcu":
		return rcu.New(arena, threads, rcu.Config{Threshold: cfg.Threshold}), nil
	case "debra":
		return debra.New(arena, threads), nil
	case "hp":
		return hp.New(arena, threads, hp.Config{Slots: req.Slots, Threshold: cfg.Threshold}), nil
	case "ibr":
		return ibr.New(arena, threads, ibr.Config{Threshold: cfg.Threshold, EraFreq: cfg.EraFreq}), nil
	case "he":
		return he.New(arena, threads, he.Config{Slots: req.Slots, Threshold: cfg.Threshold, EraFreq: cfg.EraFreq}), nil
	case "nbr":
		return core.New(arena, threads, core.Config{
			BagSize: cfg.BagSize, LoFraction: cfg.LoFraction,
			ScanFreq: cfg.ScanFreq, Slots: cfg.Slots, Signals: sig,
		}), nil
	case "nbr+":
		return core.New(arena, threads, core.Config{
			Plus:    true,
			BagSize: cfg.BagSize, LoFraction: cfg.LoFraction,
			ScanFreq: cfg.ScanFreq, Slots: cfg.Slots, Signals: sig,
		}), nil
	}
	return nil, fmt.Errorf("bench: unknown scheme %q (have %v)", name, SchemeNames)
}
