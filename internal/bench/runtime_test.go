package bench

import (
	"testing"
	"time"
)

// TestRunRuntimeCell pins the shared-runtime measurement cell: it must
// complete sessions, hold the aggregated bound, never hit the unaged-slot
// fallback, and drain the shared bags to Retired == Freed.
func TestRunRuntimeCell(t *testing.T) {
	cfg := DefaultSchemeConfig()
	cfg.BagSize = 256
	r, err := RunRuntime(RuntimeWorkload{
		Structures: []string{"lazylist", "harris", "dgt"},
		Scheme:     "nbr+",
		Slots:      4,
		Workers:    6,
		KeyRange:   512,
		SessionOps: 32,
		Duration:   150 * time.Millisecond,
		Cfg:        cfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Ops == 0 || r.Sessions == 0 {
		t.Fatalf("no progress: ops=%d sessions=%d", r.Ops, r.Sessions)
	}
	if r.BoundExceeded() {
		t.Fatalf("aggregated bound violated: peak %d > bound %d", r.GarbagePeak, r.Bound)
	}
	if r.Fallbacks != 0 {
		t.Fatalf("unaged-slot fallback used %d times; forced rounds must cover the churn", r.Fallbacks)
	}
	if !r.Drained {
		t.Fatalf("shared bags leaked: retired %d != freed %d", r.Stats.Retired, r.Stats.Freed)
	}
}

// TestRunRuntimeRejectsTable1 pins the cell's gatekeeping.
func TestRunRuntimeRejectsTable1(t *testing.T) {
	_, err := RunRuntime(RuntimeWorkload{
		Structures: []string{"abtree"},
		Scheme:     "hp",
		Slots:      2, Workers: 2,
		Duration: 10 * time.Millisecond,
	})
	if err == nil {
		t.Fatal("abtree under hp must be rejected")
	}
}
