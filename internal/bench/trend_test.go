package bench

import (
	"os"
	"path/filepath"
	"testing"
)

func trendSnap(mops, scanNs, burstNs float64, scanAllocs int64) Snapshot {
	return Snapshot{
		Schema: SnapshotSchema,
		Workloads: []WorkloadPoint{{
			DS: "dgt", Scheme: "nbr+", Threads: 8, KeyRange: 1000,
			Mops: mops, PeakMB: 1, P99us: 10,
		}},
		ScanCost: []ScanCostPoint{{
			Threads: 8, Slots: 4, Entries: 32, Probes: 1024,
			NsPerScan: scanNs, AllocsPerOp: scanAllocs,
		}},
		FreeBurst: []FreeBurstPoint{{
			Shards: 4, Goroutines: 8, Burst: 256, NsPerOp: burstNs,
		}},
	}
}

func TestCompareSnapshotsFlagsRegressions(t *testing.T) {
	prev := trendSnap(2.0, 1000, 100, 0)
	next := trendSnap(1.5, 1200, 95, 0) // mops -25%, scan +20%, burst improves
	deltas := CompareSnapshots(prev, next, 10)
	regs := Regressions(deltas)
	if len(regs) != 2 {
		t.Fatalf("flagged %d regressions, want 2 (mops drop, scan cost): %v", len(regs), regs)
	}
	byMetric := map[string]bool{}
	for _, r := range regs {
		byMetric[r.Metric] = true
	}
	if !byMetric["mops"] || !byMetric["ns_per_scan"] {
		t.Fatalf("wrong regressions flagged: %v", regs)
	}
}

func TestCompareSnapshotsWithinThreshold(t *testing.T) {
	prev := trendSnap(2.0, 1000, 100, 0)
	next := trendSnap(1.9, 1050, 104, 0) // all within 10%
	if regs := Regressions(CompareSnapshots(prev, next, 10)); len(regs) != 0 {
		t.Fatalf("noise flagged as regression: %v", regs)
	}
}

func TestCompareSnapshotsScanAllocsAlwaysFlag(t *testing.T) {
	prev := trendSnap(2.0, 1000, 100, 0)
	next := trendSnap(2.0, 1000, 100, 3) // scan started allocating
	regs := Regressions(CompareSnapshots(prev, next, 10))
	if len(regs) != 1 || regs[0].Metric != "allocs_per_op" {
		t.Fatalf("allocating scan not flagged: %v", regs)
	}
	// Fewer allocations than before is an improvement, not a regression.
	if regs := Regressions(CompareSnapshots(next, prev, 10)); len(regs) != 0 {
		t.Fatalf("alloc improvement flagged: %v", regs)
	}
	// Persistent allocations are reported (so the trend is visible) but do
	// not re-flag a regression on every subsequent diff.
	if regs := Regressions(CompareSnapshots(next, next, 10)); len(regs) != 0 {
		t.Fatalf("steady-state allocations re-flagged: %v", regs)
	}
}

func TestCompareSnapshotsImprovementNotFlagged(t *testing.T) {
	prev := trendSnap(1.0, 2000, 200, 0)
	next := trendSnap(2.0, 1000, 100, 0)
	if regs := Regressions(CompareSnapshots(prev, next, 10)); len(regs) != 0 {
		t.Fatalf("improvement flagged as regression: %v", regs)
	}
}

func TestCompareSnapshotsHostShapeMismatchUntrusted(t *testing.T) {
	prev := trendSnap(2.0, 1000, 100, 0)
	prev.GOMAXPROCS, prev.GOARCH = 8, "amd64"
	next := trendSnap(1.0, 2000, 200, 0) // huge worsening, wrong machine
	next.GOMAXPROCS, next.GOARCH = 1, "amd64"

	if msg := HostShapeMismatch(prev, next); msg == "" {
		t.Fatal("gomaxprocs 8 → 1 not reported as a host-shape mismatch")
	}
	if msg := HostShapeMismatch(prev, prev); msg != "" {
		t.Fatalf("same shape reported as mismatch: %q", msg)
	}

	deltas := CompareSnapshots(prev, next, 10)
	if len(deltas) == 0 {
		t.Fatal("mismatched snapshots produced no deltas at all")
	}
	for _, d := range deltas {
		if !d.Untrusted {
			t.Fatalf("delta across host shapes not marked untrusted: %v", d)
		}
	}
	if regs := Regressions(deltas); len(regs) != 0 {
		t.Fatalf("untrusted deltas flagged as regressions: %v", regs)
	}

	// goarch alone also breaks comparability.
	arm := prev
	arm.GOARCH = "arm64"
	if msg := HostShapeMismatch(prev, arm); msg == "" {
		t.Fatal("goarch change not reported as a host-shape mismatch")
	}

	// The flat-scratch invariant is host-independent: a scan that starts
	// allocating stays flagged even across host shapes.
	alloc := trendSnap(2.0, 1000, 100, 5)
	alloc.GOMAXPROCS = 1
	regs := Regressions(CompareSnapshots(prev, alloc, 10))
	if len(regs) != 1 || regs[0].Metric != "allocs_per_op" {
		t.Fatalf("allocating scan suppressed by host-shape mismatch: %v", regs)
	}
}

func TestReadSnapshotRoundTripAndV1(t *testing.T) {
	// The committed BENCH_1.json is schema v1; ReadSnapshot must load it and
	// comparisons against a v2 snapshot must work on the shared fields.
	root := filepath.Join("..", "..")
	v1, err := ReadSnapshot(filepath.Join(root, "BENCH_1.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(v1.Workloads) == 0 || len(v1.ScanCost) == 0 {
		t.Fatalf("BENCH_1.json loaded empty: %+v", v1)
	}
	deltas := CompareSnapshots(v1, v1, 10)
	if len(deltas) == 0 {
		t.Fatal("self-comparison produced no comparable cells")
	}
	if regs := Regressions(deltas); len(regs) != 0 {
		t.Fatalf("self-comparison flagged regressions: %v", regs)
	}
}

func TestReadSnapshotRejectsForeignJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.json")
	if err := os.WriteFile(path, []byte(`{"schema":"something-else"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadSnapshot(path); err == nil {
		t.Fatal("foreign schema accepted")
	}
}
