package bench

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func trendSnap(mops, scanNs, burstNs float64, scanAllocs int64) Snapshot {
	return Snapshot{
		Schema: SnapshotSchema,
		Workloads: []WorkloadPoint{{
			DS: "dgt", Scheme: "nbr+", Threads: 8, KeyRange: 1000,
			Mops: mops, PeakMB: 1, P99us: 10,
		}},
		ScanCost: []ScanCostPoint{{
			Threads: 8, Slots: 4, Entries: 32, Probes: 1024,
			NsPerScan: scanNs, AllocsPerOp: scanAllocs,
		}},
		FreeBurst: []FreeBurstPoint{{
			Shards: 4, Goroutines: 8, Burst: 256, NsPerOp: burstNs,
		}},
	}
}

func TestCompareSnapshotsFlagsRegressions(t *testing.T) {
	prev := trendSnap(2.0, 1000, 100, 0)
	next := trendSnap(1.5, 1200, 95, 0) // mops -25%, scan +20%, burst improves
	deltas := CompareSnapshots(prev, next, 10)
	regs := Regressions(deltas)
	if len(regs) != 2 {
		t.Fatalf("flagged %d regressions, want 2 (mops drop, scan cost): %v", len(regs), regs)
	}
	byMetric := map[string]bool{}
	for _, r := range regs {
		byMetric[r.Metric] = true
	}
	if !byMetric["mops"] || !byMetric["ns_per_scan"] {
		t.Fatalf("wrong regressions flagged: %v", regs)
	}
}

func TestCompareSnapshotsWithinThreshold(t *testing.T) {
	prev := trendSnap(2.0, 1000, 100, 0)
	next := trendSnap(1.9, 1050, 104, 0) // all within 10%
	if regs := Regressions(CompareSnapshots(prev, next, 10)); len(regs) != 0 {
		t.Fatalf("noise flagged as regression: %v", regs)
	}
}

func TestCompareSnapshotsScanAllocsAlwaysFlag(t *testing.T) {
	prev := trendSnap(2.0, 1000, 100, 0)
	next := trendSnap(2.0, 1000, 100, 3) // scan started allocating
	regs := Regressions(CompareSnapshots(prev, next, 10))
	if len(regs) != 1 || regs[0].Metric != "allocs_per_op" {
		t.Fatalf("allocating scan not flagged: %v", regs)
	}
	// Fewer allocations than before is an improvement, not a regression.
	if regs := Regressions(CompareSnapshots(next, prev, 10)); len(regs) != 0 {
		t.Fatalf("alloc improvement flagged: %v", regs)
	}
	// Persistent allocations are reported (so the trend is visible) but do
	// not re-flag a regression on every subsequent diff.
	if regs := Regressions(CompareSnapshots(next, next, 10)); len(regs) != 0 {
		t.Fatalf("steady-state allocations re-flagged: %v", regs)
	}
}

func TestCompareSnapshotsImprovementNotFlagged(t *testing.T) {
	prev := trendSnap(1.0, 2000, 200, 0)
	next := trendSnap(2.0, 1000, 100, 0)
	if regs := Regressions(CompareSnapshots(prev, next, 10)); len(regs) != 0 {
		t.Fatalf("improvement flagged as regression: %v", regs)
	}
}

func TestCompareSnapshotsHostShapeMismatchUntrusted(t *testing.T) {
	prev := trendSnap(2.0, 1000, 100, 0)
	prev.GOMAXPROCS, prev.GOARCH = 8, "amd64"
	next := trendSnap(1.0, 2000, 200, 0) // huge worsening, wrong machine
	next.GOMAXPROCS, next.GOARCH = 1, "amd64"

	if msg := HostShapeMismatch(prev, next); msg == "" {
		t.Fatal("gomaxprocs 8 → 1 not reported as a host-shape mismatch")
	}
	if msg := HostShapeMismatch(prev, prev); msg != "" {
		t.Fatalf("same shape reported as mismatch: %q", msg)
	}

	deltas := CompareSnapshots(prev, next, 10)
	if len(deltas) == 0 {
		t.Fatal("mismatched snapshots produced no deltas at all")
	}
	for _, d := range deltas {
		if !d.Untrusted {
			t.Fatalf("delta across host shapes not marked untrusted: %v", d)
		}
	}
	if regs := Regressions(deltas); len(regs) != 0 {
		t.Fatalf("untrusted deltas flagged as regressions: %v", regs)
	}

	// goarch alone also breaks comparability.
	arm := prev
	arm.GOARCH = "arm64"
	if msg := HostShapeMismatch(prev, arm); msg == "" {
		t.Fatal("goarch change not reported as a host-shape mismatch")
	}

	// The flat-scratch invariant is host-independent: a scan that starts
	// allocating stays flagged even across host shapes.
	alloc := trendSnap(2.0, 1000, 100, 5)
	alloc.GOMAXPROCS = 1
	regs := Regressions(CompareSnapshots(prev, alloc, 10))
	if len(regs) != 1 || regs[0].Metric != "allocs_per_op" {
		t.Fatalf("allocating scan suppressed by host-shape mismatch: %v", regs)
	}
}

// trendSnapV5 extends the synthetic snapshot with the schema v5 cells: an
// interleaved runtime cell carrying the dispatch-per-burst amortization and
// a width-comparison cell carrying the Domain-vs-Runtime entries gap.
func trendSnapV5(dispatchPerBurst float64, runtimeEntries int) Snapshot {
	s := trendSnap(2.0, 1000, 100, 0)
	s.Runtime = []RuntimePoint{{
		Structures: "lazylist+harris+dgt", Scheme: "nbr+", Slots: 8, Workers: 12,
		Mops: 1.0, Sessions: 100, Drained: true,
		Interleaved: true, HubBursts: 1000,
		HubDispatches: uint64(dispatchPerBurst * 1000), DispatchPerBurst: dispatchPerBurst,
		ScanEntries: 24,
	}}
	s.Widths = []WidthPoint{{
		DS: "lazylist", Threads: 8,
		DomainEntries: 16, RuntimeEntries: runtimeEntries,
		DomainNsPerScan: 500, RuntimeNsScan: 500 * float64(runtimeEntries) / 16,
	}}
	return s
}

func TestCompareSnapshotsV5DispatchPerBurst(t *testing.T) {
	prev := trendSnapV5(1.1, 16)
	// Amortization lost: one dispatch per record instead of ~one per burst.
	next := trendSnapV5(30.0, 16)
	regs := Regressions(CompareSnapshots(prev, next, 10))
	found := false
	for _, r := range regs {
		if r.Metric == "disp_burst" {
			found = true
		}
	}
	if !found {
		t.Fatalf("dispatch-per-burst blowup not flagged: %v", regs)
	}
	// Parity held: nothing flagged.
	if regs := Regressions(CompareSnapshots(prev, trendSnapV5(1.1, 16), 10)); len(regs) != 0 {
		t.Fatalf("steady amortization flagged: %v", regs)
	}
	// Host-independence: the counter ratio stays flagged across host shapes.
	other := trendSnapV5(30.0, 16)
	other.GOMAXPROCS = prev.GOMAXPROCS + 4
	regs = Regressions(CompareSnapshots(prev, other, 10))
	found = false
	for _, r := range regs {
		if r.Metric == "disp_burst" {
			found = true
		}
	}
	if !found {
		t.Fatalf("dispatch-per-burst regression suppressed by host-shape mismatch: %v", regs)
	}
}

func TestCompareSnapshotsV5WidthGapAlwaysFlagged(t *testing.T) {
	closed := trendSnapV5(1.1, 16)
	reopened := trendSnapV5(1.1, 32) // runtime scanning wider than the domain
	reopened.GOMAXPROCS = closed.GOMAXPROCS + 4

	regs := Regressions(CompareSnapshots(closed, reopened, 10))
	found := false
	for _, r := range regs {
		if r.Metric == "width_gap" {
			found = true
		}
	}
	if !found {
		t.Fatalf("reopened width gap not flagged despite host-shape mismatch: %v", regs)
	}

	// A closed gap is never flagged, and closing a gap is an improvement.
	if regs := Regressions(CompareSnapshots(closed, closed, 10)); len(regs) != 0 {
		t.Fatalf("closed width gap flagged: %v", regs)
	}
	sameHost := trendSnapV5(1.1, 16)
	if regs := Regressions(CompareSnapshots(trendSnapV5(1.1, 32), sameHost, 10)); len(regs) != 0 {
		t.Fatalf("gap closing flagged as regression: %v", regs)
	}
}

func TestReadSnapshotRoundTripAndV1(t *testing.T) {
	// The committed BENCH_1.json is schema v1; ReadSnapshot must load it and
	// comparisons against a v2 snapshot must work on the shared fields.
	root := filepath.Join("..", "..")
	v1, err := ReadSnapshot(filepath.Join(root, "BENCH_1.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(v1.Workloads) == 0 || len(v1.ScanCost) == 0 {
		t.Fatalf("BENCH_1.json loaded empty: %+v", v1)
	}
	deltas := CompareSnapshots(v1, v1, 10)
	if len(deltas) == 0 {
		t.Fatal("self-comparison produced no comparable cells")
	}
	if regs := Regressions(deltas); len(regs) != 0 {
		t.Fatalf("self-comparison flagged regressions: %v", regs)
	}
}

func TestReadSnapshotRejectsForeignJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.json")
	if err := os.WriteFile(path, []byte(`{"schema":"something-else"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadSnapshot(path); err == nil {
		t.Fatal("foreign schema accepted")
	}
}

// trendSnapV6 extends the synthetic snapshot with the schema v6 recovery
// columns: one ordinary runtime cell and one stall-injection cell, each
// carrying a reap count.
func trendSnapV6(quietReaps, stallReaps uint64) Snapshot {
	s := trendSnap(2.0, 1000, 100, 0)
	s.Runtime = []RuntimePoint{
		{
			Structures: "lazylist+harris+dgt", Scheme: "nbr+", Slots: 8, Workers: 12,
			Mops: 1.0, Sessions: 100, Drained: true,
			Reaped: quietReaps, RevokedReleases: quietReaps,
		},
		{
			Structures: "lazylist+harris+dgt", Scheme: "nbr+", Slots: 8, Workers: 12,
			Mops: 0.9, Sessions: 100, Drained: true, Stall: true,
			Reaped: stallReaps, RevokedReleases: stallReaps, OrphansAdopted: 40,
		},
	}
	return s
}

func TestCompareSnapshotsV6ReapsFlaggedOnlyOffStall(t *testing.T) {
	prev := trendSnapV6(0, 120)
	// A reap appearing in the non-stall cell is the watchdog revoking a
	// healthy holder: always a regression, even across host shapes.
	next := trendSnapV6(3, 120)
	next.GOMAXPROCS = prev.GOMAXPROCS + 4
	regs := Regressions(CompareSnapshots(prev, next, 10))
	if len(regs) != 1 || regs[0].Metric != "reaped" {
		t.Fatalf("spurious reap in a non-stall cell not flagged: %v", regs)
	}
	if !strings.Contains(regs[0].Cell, "runtime") || strings.Contains(regs[0].Cell, "stall") {
		t.Fatalf("reap regression flagged on the wrong cell: %v", regs[0])
	}

	// Reap-count swings inside the stall cell are the injection working, not
	// a regression; steady state flags nothing.
	if regs := Regressions(CompareSnapshots(prev, trendSnapV6(0, 400), 10)); len(regs) != 0 {
		t.Fatalf("stall-cell reap growth flagged: %v", regs)
	}
	if regs := Regressions(CompareSnapshots(prev, prev, 10)); len(regs) != 0 {
		t.Fatalf("steady state flagged: %v", regs)
	}
}
