package bench

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"nbr/internal/ds/hashmap"
	"nbr/internal/mem"
	"nbr/internal/smr"
)

// This file is the resize-burst cell: the A/B measurement behind the segment
// retirement fast path. An insert-only storm on the resizable hash map makes
// the retire stream consist purely of whole bucket arrays — the workload
// RetireSegment exists for — and the same storm runs twice, once with arrays
// retired as one segment handle and once with the old array dissolved and
// every cell retired individually. The comparison is counter ratios
// (stamps/record, scans/record), not timings, so it is host-independent: on
// any machine the per-node mode pays one scheme-side stamp per cell and a
// scan cadence proportional to cells, while the segment mode pays one stamp
// per array.

// ResizeBurstWorkload configures one resize-burst run.
type ResizeBurstWorkload struct {
	// Scheme names the reclamation scheme. Per-node mode is only safe under
	// the grace-period schemes (an interval scheme sees batch-carved cells as
	// born at era 0, which is conservative; an epoch scheme needs no per-cell
	// announcements); RunResizeBurst rejects per-node runs under hp and the
	// NBR family, whose per-record protection the mode deliberately skips.
	Scheme  string
	Threads int
	// KeysPerThread is each thread's disjoint insert range; total inserts
	// drive the doubling cascade.
	KeysPerThread int
	// PerNode selects the dissolve-and-retire-individually baseline.
	PerNode bool
	Cfg     SchemeConfig
}

// ResizeBurstResult is the outcome of one run, all counters read at the
// post-drain quiescent point.
type ResizeBurstResult struct {
	Keys        uint64 // total inserts performed
	Mops        float64
	Resizes     uint64
	Stats       smr.Stats
	Bound       int
	GarbagePeak uint64
	Drained     bool // Retired == Freed after the drain
}

// BoundExceeded reports a live garbage-bound contract violation.
func (r ResizeBurstResult) BoundExceeded() bool {
	return r.Bound != smr.Unbounded && r.GarbagePeak > uint64(r.Bound)
}

// perNodeSafe lists the schemes the dissolve baseline may run under.
var perNodeSafe = map[string]bool{
	"ibr": true, "he": true, "qsbr": true, "rcu": true, "debra": true, "none": true,
}

// RunResizeBurst executes one resize-burst cell.
func RunResizeBurst(w ResizeBurstWorkload) (ResizeBurstResult, error) {
	if w.PerNode && !perNodeSafe[w.Scheme] {
		return ResizeBurstResult{}, fmt.Errorf(
			"bench: per-node resize baseline is unsafe under %s (no per-cell protection)", w.Scheme)
	}
	mcfg := mem.Config{MaxThreads: w.Threads}
	var m *hashmap.Map
	if w.PerNode {
		m = hashmap.NewPerNodeWith(mcfg)
	} else {
		m = hashmap.NewWith(mcfg)
	}
	sch, err := NewSchemeFor(w.Scheme, m.Arena(), w.Threads, w.Cfg, m.Requirements())
	if err != nil {
		return ResizeBurstResult{}, err
	}

	var stop atomic.Bool
	var peak atomic.Uint64
	samplerDone := make(chan struct{})
	go func() {
		defer close(samplerDone)
		for !stop.Load() {
			if g := sch.Stats().Garbage(); g > peak.Load() {
				peak.Store(g)
			}
			runtime.Gosched()
		}
	}()

	start := time.Now()
	var wg sync.WaitGroup
	for tid := 0; tid < w.Threads; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			g := sch.Guard(tid)
			base := uint64(tid) * 1_000_000
			for i := 0; i < w.KeysPerThread; i++ {
				m.Insert(g, base+uint64(i)+1)
			}
		}(tid)
	}
	wg.Wait()
	elapsed := time.Since(start)
	stop.Store(true)
	<-samplerDone

	res := ResizeBurstResult{
		Keys:    uint64(w.Threads * w.KeysPerThread),
		Resizes: m.Resizes(),
	}
	if s := elapsed.Seconds(); s > 0 {
		res.Mops = float64(res.Keys) / s / 1e6
	}
	if g := sch.Stats().Garbage(); g > peak.Load() {
		peak.Store(g)
	}

	// Drain to quiescence. NBR reservation rows persist past EndOp, so each
	// thread first runs one search on the current table, re-pointing its rows
	// at live records (the installed array's handle and unmarked dummies) and
	// unpinning every array the storm retired.
	for tid := 0; tid < w.Threads; tid++ {
		m.Contains(sch.Guard(tid), 1<<40)
	}
	if d, ok := sch.(smr.Drainer); ok && w.Scheme != "none" {
		for round := 0; round < 500; round++ {
			if st := sch.Stats(); st.Retired == st.Freed {
				break
			}
			for tid := 0; tid < w.Threads; tid++ {
				d.Drain(tid)
			}
		}
	}

	res.Stats = sch.Stats()
	res.Bound = sch.GarbageBound()
	res.GarbagePeak = peak.Load()
	res.Drained = res.Stats.Retired == res.Stats.Freed
	if err := m.Validate(); err != nil {
		return res, fmt.Errorf("bench: hash map invalid after resize burst: %w", err)
	}
	return res, nil
}
