package lazylist_test

import (
	"testing"
	"testing/quick"

	"nbr/internal/bench"
	"nbr/internal/ds"
	"nbr/internal/ds/lazylist"
	"nbr/internal/dstest"
	"nbr/internal/smr"
)

func factory() dstest.Factory {
	return dstest.Factory{
		Name: "lazylist",
		New: func(threads int) dstest.Instance {
			l := lazylist.New(threads)
			return dstest.Instance{Set: l, Arena: l.Arena()}
		},
	}
}

func TestMatrix(t *testing.T) { dstest.RunAll(t, factory()) }

func newWithGuard(t *testing.T, scheme string) (*lazylist.List, smr.Guard) {
	t.Helper()
	l := lazylist.New(1)
	s, err := bench.NewScheme(scheme, l.Arena(), 1, bench.DefaultSchemeConfig())
	if err != nil {
		t.Fatal(err)
	}
	return l, s.Guard(0)
}

func TestEmptyList(t *testing.T) {
	l, g := newWithGuard(t, "nbr+")
	if l.Len() != 0 {
		t.Fatal("new list not empty")
	}
	if l.Contains(g, 5) {
		t.Fatal("empty list contains 5")
	}
	if l.Delete(g, 5) {
		t.Fatal("delete from empty list succeeded")
	}
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertDeleteBasics(t *testing.T) {
	l, g := newWithGuard(t, "nbr+")
	if !l.Insert(g, 10) || !l.Insert(g, 5) || !l.Insert(g, 20) {
		t.Fatal("fresh inserts must succeed")
	}
	if l.Insert(g, 10) {
		t.Fatal("duplicate insert must fail")
	}
	if got := l.Len(); got != 3 {
		t.Fatalf("Len = %d", got)
	}
	if !l.Contains(g, 5) || !l.Contains(g, 10) || !l.Contains(g, 20) || l.Contains(g, 15) {
		t.Fatal("membership wrong")
	}
	if !l.Delete(g, 10) || l.Delete(g, 10) {
		t.Fatal("delete semantics wrong")
	}
	if l.Contains(g, 10) {
		t.Fatal("deleted key still present")
	}
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSortedOrderMaintained(t *testing.T) {
	l, g := newWithGuard(t, "debra")
	for _, k := range []uint64{9, 3, 7, 1, 8, 2, 6, 4, 5} {
		l.Insert(g, k)
	}
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, k := range []uint64{2, 4, 6, 8} {
		l.Delete(g, k)
	}
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	if l.Len() != 5 {
		t.Fatalf("Len = %d", l.Len())
	}
}

func TestBoundaryKeys(t *testing.T) {
	l, g := newWithGuard(t, "nbr")
	if !l.Insert(g, 1) {
		t.Fatal("min usable key must insert")
	}
	if !l.Insert(g, ds.MaxKey-1) {
		t.Fatal("max usable key must insert")
	}
	if !l.Contains(g, 1) || !l.Contains(g, ds.MaxKey-1) {
		t.Fatal("boundary keys missing")
	}
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSetSemantics(t *testing.T) {
	l, g := newWithGuard(t, "nbr+")
	model := make(map[uint64]bool)
	f := func(key uint16, op uint8) bool {
		k := uint64(key%50) + 1
		switch op % 3 {
		case 0:
			return l.Insert(g, k) == !model[k] && func() bool { model[k] = true; return true }()
		case 1:
			ok := l.Delete(g, k) == model[k]
			delete(model, k)
			return ok
		default:
			return l.Contains(g, k) == model[k]
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
}
