// Package lazylist implements the lazy concurrent list-based set of Heller
// et al. (LL05), the paper's representative list workload (E1, Fig. 3b and
// Fig. 6) and its running example for SMR integration (Fig. 2).
//
// Searches are synchronization-free and may traverse marked (logically
// deleted) nodes — the property that makes LL05 incompatible with hazard
// pointers in theory (Table 1) yet ideal for NBR: the whole search is one
// Φread, and the write phase locks exactly the two records reserved at
// endΦread. The hazard-pointer integration used by the paper's benchmark
// (validating each protection by re-reading the predecessor's link and
// restarting from the head on failure) is implemented behind
// Guard.NeedsValidation, at the documented cost of wait-freedom.
package lazylist

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"

	"nbr/internal/ds"
	"nbr/internal/mem"
	"nbr/internal/smr"
)

// node is a list record. All fields are accessed atomically: records are
// recycled by the pool while stale readers may still copy them, and the
// copy-then-validate discipline requires data-race-free field access.
type node struct {
	key    uint64
	next   uint64 // mem.Ptr
	marked uint32
	lock   uint32
}

// view is a consistent-enough snapshot of a node taken during a read phase.
type view struct {
	key    uint64
	next   mem.Ptr
	marked bool
}

// List is a lazy linked-list set.
type List struct {
	pool *mem.Pool[node]
	head mem.Ptr
	tail mem.Ptr
}

// New creates a list sized for the given number of threads.
func New(threads int) *List {
	return NewWith(mem.Config{MaxThreads: threads})
}

// NewWith creates a list over a pool built from cfg — the constructor a
// shared-arena runtime uses, stamping its assigned arena tag (cfg.Tag) into
// every node handle so a mem.Hub can route frees back here.
func NewWith(cfg mem.Config) *List {
	l := &List{pool: mem.NewPool[node](cfg)}
	tp, tn := l.pool.Alloc(0)
	atomic.StoreUint64(&tn.key, ds.MaxKey)
	atomic.StoreUint64(&tn.next, uint64(mem.Null))
	hp, hn := l.pool.Alloc(0)
	atomic.StoreUint64(&hn.key, ds.MinKey)
	atomic.StoreUint64(&hn.next, uint64(tp))
	l.head, l.tail = hp, tp
	return l
}

// Arena exposes the list's allocator to reclamation schemes.
func (l *List) Arena() mem.Arena { return l.pool }

// Requirements implements the per-DS width hook: the search alternates
// two Protect slots (pred/curr) and reserves the same pair. The retire
// threshold is declared explicitly so the narrow slot width does not raise
// the hp/he scan frequency.
func (l *List) Requirements() ds.Requirements {
	return ds.Requirements{Slots: 2, Reservations: 2, Threshold: ds.DefaultThreshold}
}

// MemStats reports allocator statistics (live records ≈ resident memory).
func (l *List) MemStats() mem.Stats { return l.pool.Stats() }

// read is the barriered copy of a record: Protect (announce/poll) first,
// copy every field, then re-validate the handle generation. For validating
// schemes (HP/IBR/HE) a failed generation check is the benign
// freed-before-announce window that link re-validation exists to catch, so
// it reports !ok and the caller restarts; for every other scheme the record
// was promised live and the failure is routed to OnStale (neutralization
// under NBR, a proven use-after-free elsewhere).
func (l *List) read(g smr.Guard, slot int, p mem.Ptr) (view, bool) {
	g.Protect(slot, p)
	n := l.pool.Raw(p)
	var v view
	v.key = atomic.LoadUint64(&n.key)
	v.next = mem.Ptr(atomic.LoadUint64(&n.next))
	v.marked = atomic.LoadUint32(&n.marked) != 0
	if !l.pool.Valid(p) {
		if g.NeedsValidation() {
			return view{}, false
		}
		g.OnStale(p)
	}
	return v, true
}

// next re-reads the link field of a protected record (used under locks).
func (l *List) next(g smr.Guard, p mem.Ptr) mem.Ptr {
	n := l.pool.Raw(p)
	v := mem.Ptr(atomic.LoadUint64(&n.next))
	if !l.pool.Valid(p) {
		g.OnStale(p)
	}
	return v
}

// validateLink is the HP/IBR reachability validation: it proves curr was
// reachable (hence not yet retired) at the moment pred.next was re-read.
// The marked flag is loaded *after* the link: marking is monotone, so
// unmarked-after implies pred was linked when the link still said curr.
func (l *List) validateLink(g smr.Guard, pred, curr mem.Ptr) bool {
	n := l.pool.Raw(pred)
	link := mem.Ptr(atomic.LoadUint64(&n.next))
	marked := atomic.LoadUint32(&n.marked) != 0
	if !l.pool.Valid(pred) {
		g.OnStale(pred)
	}
	return link == curr && !marked
}

// search is the Φread: traverse from the head until curr.key ≥ key,
// returning the protected (pred, curr) pair and their snapshots. On return
// the read phase is still open; the caller decides what to reserve.
func (l *List) search(g smr.Guard, key uint64) (pred, curr mem.Ptr, predV, currV view) {
retry:
	g.BeginRead()
	pred = l.head
	predV, _ = l.read(g, 0, pred) // the head sentinel is never freed
	curr = predV.next
	predSlot, currSlot := 0, 1
	for {
		var ok bool
		currV, ok = l.read(g, currSlot, curr)
		if !ok {
			goto retry // freed before the announcement took effect
		}
		if g.NeedsValidation() && !l.validateLink(g, pred, curr) {
			goto retry // curr was not provably reachable when protected
		}
		if currV.key >= key {
			return
		}
		pred, predV = curr, currV
		predSlot, currSlot = currSlot, predSlot
		curr = currV.next
	}
}

// lock spins on a record's lock word. The record must be protected (reserved
// under NBR, hazard-validated, or inside an epoch section): MustGet asserts
// that protection actually held.
func (l *List) lock(p mem.Ptr) *node {
	n := l.pool.MustGet(p)
	for i := 0; !atomic.CompareAndSwapUint32(&n.lock, 0, 1); i++ {
		if i&15 == 15 {
			runtime.Gosched()
		}
	}
	return n
}

func (l *List) unlock(n *node) {
	atomic.StoreUint32(&n.lock, 0)
}

// validate is the lazy list's post-lock check: both nodes unmarked and still
// adjacent.
func validate(pred, curr *node, currPtr mem.Ptr) bool {
	return atomic.LoadUint32(&pred.marked) == 0 &&
		atomic.LoadUint32(&curr.marked) == 0 &&
		mem.Ptr(atomic.LoadUint64(&pred.next)) == currPtr
}

// Contains implements ds.Set. The traversal is one read phase; there is no
// write phase, so endΦread is invoked with no reservations before returning
// (§5.3).
func (l *List) Contains(g smr.Guard, key uint64) bool {
	return smr.Execute(g, func() bool {
		_, _, _, currV := l.search(g, key)
		g.EndRead()
		return currV.key == key && !currV.marked
	})
}

// Insert implements ds.Set, following Fig. 2b: search (Φread), reserve
// pred and curr, endΦread, then lock-validate-link (Φwrite). The new record
// is allocated inside the write phase, where neutralization can no longer
// strike, so restarts never leak memory.
func (l *List) Insert(g smr.Guard, key uint64) bool {
	return smr.Execute(g, func() bool {
		for {
			pred, curr, _, currV := l.search(g, key)
			g.Reserve(0, pred)
			g.Reserve(1, curr)
			g.EndRead()
			pn := l.lock(pred)
			cn := l.lock(curr)
			if validate(pn, cn, curr) {
				if currV.key == key {
					l.unlock(cn)
					l.unlock(pn)
					return false
				}
				np, nn := l.pool.Alloc(g.Tid())
				atomic.StoreUint64(&nn.key, key)
				atomic.StoreUint64(&nn.next, uint64(curr))
				atomic.StoreUint32(&nn.marked, 0)
				atomic.StoreUint32(&nn.lock, 0)
				g.OnAlloc(np)
				atomic.StoreUint64(&pn.next, uint64(np))
				l.unlock(cn)
				l.unlock(pn)
				return true
			}
			l.unlock(cn)
			l.unlock(pn)
			// Validation failed: start a fresh read phase from the root.
		}
	})
}

// Delete implements ds.Set: logical mark under locks, then physical unlink,
// then retire. Retirement happens after both locks are released, so a
// reclaimer can never free a record whose lock word a peer still spins on
// without that peer holding its own protection.
func (l *List) Delete(g smr.Guard, key uint64) bool {
	return smr.Execute(g, func() bool {
		for {
			pred, curr, _, currV := l.search(g, key)
			if currV.key != key {
				g.EndRead()
				return false
			}
			g.Reserve(0, pred)
			g.Reserve(1, curr)
			g.EndRead()
			pn := l.lock(pred)
			cn := l.lock(curr)
			if validate(pn, cn, curr) {
				atomic.StoreUint32(&cn.marked, 1) // logical delete
				succ := atomic.LoadUint64(&cn.next)
				atomic.StoreUint64(&pn.next, succ) // physical unlink
				l.unlock(cn)
				l.unlock(pn)
				g.Retire(curr)
				return true
			}
			l.unlock(cn)
			l.unlock(pn)
		}
	})
}

// Len implements ds.Set (quiescent).
func (l *List) Len() int {
	n := 0
	for p := l.rawNext(l.head); p != l.tail; p = l.rawNext(p) {
		n++
	}
	return n
}

func (l *List) rawNext(p mem.Ptr) mem.Ptr {
	return mem.Ptr(atomic.LoadUint64(&l.pool.Raw(p).next))
}

// Validate implements ds.Set (quiescent): strictly sorted keys, no marked
// nodes reachable, proper sentinels.
func (l *List) Validate() error {
	prev := ds.MinKey
	p := l.rawNext(l.head)
	for p != l.tail {
		if p.IsNull() {
			return errors.New("lazylist: reachable nil before tail sentinel")
		}
		n, ok := l.pool.Get(p)
		if !ok {
			return fmt.Errorf("lazylist: freed node %v reachable", p)
		}
		k := atomic.LoadUint64(&n.key)
		if k <= prev {
			return fmt.Errorf("lazylist: keys not strictly increasing (%d after %d)", k, prev)
		}
		if atomic.LoadUint32(&n.marked) != 0 {
			return fmt.Errorf("lazylist: marked node %d still linked", k)
		}
		prev = k
		p = l.rawNext(p)
	}
	return nil
}
