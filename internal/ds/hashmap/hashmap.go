// Package hashmap implements a lock-free resizable hash map as a
// split-ordered list (Shalev & Shavit, "Split-Ordered Lists: Lock-Free
// Extensible Hash Tables"): every key lives in one Harris-style linked list
// sorted by bit-reversed key, and a bucket array of shortcut cells points at
// dummy nodes inside that list. Doubling the table never moves a key — it
// only adds dummies — so resizing reduces to installing a new cell array and
// discarding the old one.
//
// The old array is the structure's bulk-retirement case: K cells become
// garbage at one linearization point (the table-pointer CAS). Retiring them
// through the per-record path would cost K scheme-side stamps and K bag
// entries per resize; instead the array is carved as one mem.Run, wrapped in
// a segment record, and handed to the scheme as a single RetireSegment
// handle. Readers pin the whole array with one announcement on that handle
// (Protect slot 3 during the read phase, Reserve slot 2 across the write
// phase), so the cells themselves are never individually protected — which
// is exactly why they must die as one segment: the scheme can only defer to
// per-cell hazards that exist.
//
// NBR integration follows the package's Requirement 12 discipline: every
// read phase (bucket-start resolution, list traversal) restarts from
// structure roots — the table pointer is a GC-managed global and dummy nodes
// are never retired — and each endΦread reserves at most left, right and the
// current array's segment handle (3 reservations).
package hashmap

import (
	"errors"
	"fmt"
	"math/bits"
	"sync/atomic"

	"nbr/internal/ds"
	"nbr/internal/mem"
	"nbr/internal/smr"
)

const (
	// initialBuckets is the cell count of the table a fresh map starts
	// with; every grow doubles it.
	initialBuckets = 8
	// loadFactor triggers a grow when count exceeds buckets·loadFactor,
	// keeping expected chain length (dummy to dummy) constant.
	loadFactor = 3
)

// node is a list record. Data nodes carry skey = reverse(key)|1 (odd);
// bucket dummies carry skey = reverse(bucket) (even) and key 0. The list is
// sorted lexicographically by (skey, key); the key tiebreak separates the
// two keys that differ only in their top bit and so share a reversed skey.
// Bucket cells are node slots too: a cell's next field holds the mem.Ptr of
// its dummy (Null while uninitialized), which lets a whole cell array be
// carved from the node pool as one contiguous Run.
type node struct {
	skey uint64
	key  uint64
	next uint64 // mem.Ptr | mark (data/dummy) or dummy mem.Ptr (cell)
}

type view struct {
	skey uint64
	key  uint64
	next mem.Ptr // raw: may carry the mark bit
}

// table is one installed bucket array. The descriptor itself is a GC-managed
// Go value behind an atomic pointer — only the cells (pool slots) are
// manually reclaimed, as the segment seg, which stands for the whole run.
type table struct {
	seg  mem.Ptr
	run  mem.Run
	mask uint64
}

// Map is a lock-free resizable hash set of uint64 keys.
type Map struct {
	pool    *mem.Pool[node]
	tab     atomic.Pointer[table]
	count   atomic.Int64
	resizes atomic.Uint64
	head    mem.Ptr // bucket-0 dummy; also every table's cell 0
	tail    mem.Ptr
	scratch [][]mem.Ptr // per-thread marked-chain collection buffers
	// perNode switches retireTable to the dissolve-and-retire-each-cell
	// baseline the resize-burst benchmark compares against. It is only
	// safe under interval/grace schemes (he, ibr, qsbr, rcu, debra,
	// leaky): hp and nbr readers pin the array through its segment handle,
	// which individually retired cells do not honour.
	perNode bool
}

// New creates a map sized for the given number of threads.
func New(threads int) *Map {
	return NewWith(mem.Config{MaxThreads: threads})
}

// NewWith creates a map over a pool built from cfg — the constructor a
// shared-arena runtime uses, stamping its assigned arena tag into every
// handle so a mem.Hub can route frees back here.
func NewWith(cfg mem.Config) *Map {
	return newMap(cfg, false)
}

// NewPerNodeWith is the benchmark baseline constructor: resizes dissolve the
// old array's segment and retire every cell individually. See Map.perNode
// for the scheme-safety caveat; the correctness suites never use it.
func NewPerNodeWith(cfg mem.Config) *Map {
	return newMap(cfg, true)
}

func newMap(cfg mem.Config, perNode bool) *Map {
	m := &Map{
		pool:    mem.NewPool[node](cfg),
		scratch: ds.NewRetireScratch(cfg.MaxThreads),
		perNode: perNode,
	}
	tp, tn := m.pool.Alloc(0)
	atomic.StoreUint64(&tn.skey, ds.MaxKey)
	atomic.StoreUint64(&tn.key, ds.MaxKey)
	atomic.StoreUint64(&tn.next, uint64(mem.Null))
	hp, hn := m.pool.Alloc(0)
	atomic.StoreUint64(&hn.skey, 0) // bucket-0 dummy
	atomic.StoreUint64(&hn.key, 0)
	atomic.StoreUint64(&hn.next, uint64(tp))
	m.head, m.tail = hp, tp

	run := m.pool.AllocBatch(0, initialBuckets)
	atomic.StoreUint64(&m.pool.Raw(run.At(0)).next, uint64(hp))
	seg := m.pool.NewSegment(0, run)
	m.tab.Store(&table{seg: seg, run: run, mask: initialBuckets - 1})
	return m
}

// Arena exposes the map's allocator to reclamation schemes.
func (m *Map) Arena() mem.Arena { return m.pool }

// Requirements implements the per-DS width hook: the traversal uses the
// Harris slots (left in 0, cursor alternating 1 and 2) plus slot 3 for the
// current table's segment handle; endΦread reserves left, right and the
// handle.
func (m *Map) Requirements() ds.Requirements {
	return ds.Requirements{Slots: 4, Reservations: 3, Threshold: ds.DefaultThreshold}
}

// MemStats reports allocator statistics.
func (m *Map) MemStats() mem.Stats { return m.pool.Stats() }

// Resizes reports how many tables have been installed over the initial one.
func (m *Map) Resizes() uint64 { return m.resizes.Load() }

// Buckets reports the current table's cell count (racy snapshot).
func (m *Map) Buckets() int { return int(m.tab.Load().mask) + 1 }

// dataSkey is the split-order key of a data node: bit-reversed, odd.
func dataSkey(key uint64) uint64 { return bits.Reverse64(key) | 1 }

// dummySkey is the split-order key of bucket b's dummy: bit-reversed, even.
func dummySkey(b uint64) uint64 { return bits.Reverse64(b) }

// parent returns b with its highest set bit cleared — the bucket whose chain
// b's dummy is inserted into. Bucket 0 is its own root (its dummy is the
// list head, installed at construction).
func parent(b uint64) uint64 { return b &^ (1 << (bits.Len64(b) - 1)) }

// before reports (ask, akey) < (bsk, bkey) in split order.
func before(ask, akey, bsk, bkey uint64) bool {
	return ask < bsk || (ask == bsk && akey < bkey)
}

// read is the barriered copy (see lazylist.read for the protocol).
func (m *Map) read(g smr.Guard, slot int, p mem.Ptr) (view, bool) {
	g.Protect(slot, p)
	n := m.pool.Raw(p)
	var v view
	v.skey = atomic.LoadUint64(&n.skey)
	v.key = atomic.LoadUint64(&n.key)
	v.next = mem.Ptr(atomic.LoadUint64(&n.next))
	if !m.pool.Valid(p) {
		if g.NeedsValidation() {
			return view{}, false
		}
		g.OnStale(p)
	}
	return v, true
}

// rawNext re-reads a protected node's link (validation and write phases).
func (m *Map) rawNext(g smr.Guard, p mem.Ptr) mem.Ptr {
	n := m.pool.Raw(p)
	v := mem.Ptr(atomic.LoadUint64(&n.next))
	if !m.pool.Valid(p) {
		g.OnStale(p)
	}
	return v
}

// casNext CASes a reserved/protected node's link.
func (m *Map) casNext(p mem.Ptr, old, new mem.Ptr) bool {
	n := m.pool.MustGet(p)
	return atomic.CompareAndSwapUint64(&n.next, uint64(old), uint64(new))
}

// loadCell reads cell b of tab's array inside a read phase. The cell slot is
// pinned by the array's segment handle (slot 3), not individually: Protect
// on the member is hp-redundant but is NBR's access barrier (poll before
// touch), and the Valid check catches the array being freed under a reader
// whose announcements a neutralization wiped.
func (m *Map) loadCell(g smr.Guard, slot int, tab *table, b uint64) (mem.Ptr, bool) {
	c := tab.run.At(int(b))
	g.Protect(slot, c)
	v := mem.Ptr(atomic.LoadUint64(&m.pool.Raw(c).next))
	if !m.pool.Valid(c) {
		if g.NeedsValidation() {
			return mem.Null, false
		}
		g.OnStale(c)
	}
	return v, true
}

// casCell publishes bucket b's dummy in tab's array (write phase; the array
// is held by the segment-handle reservation taken at the last endΦread).
// Losing the race is fine — cells only ever go Null → dummy, and both racers
// insert-or-find the same dummy before attempting the CAS.
func (m *Map) casCell(tab *table, b uint64, dp mem.Ptr) {
	n := m.pool.MustGet(tab.run.At(int(b)))
	atomic.CompareAndSwapUint64(&n.next, uint64(mem.Null), uint64(dp))
}

// scratchReset empties the per-thread marked-chain buffer.
//
//nbr:restartable — the buffer is private to this Tid and a neutralization restart's first action is another reset, so a torn write is unobservable
func scratchReset(s *[]mem.Ptr) { *s = (*s)[:0] }

// scratchPush records one marked node for the post-phase RetireBatch.
//
//nbr:restartable — appends to Tid-private storage that the restart path resets; growth allocates, which is safe under the panic-based neutralization this repo simulates (no signal handler to longjmp over the allocator)
func scratchPush(s *[]mem.Ptr, p mem.Ptr) { *s = append(*s, p) }

// bucketStart resolves where bucket b's chain begins in tab: one read phase
// walking b's ancestor cells toward bucket 0 (whose cell is always the list
// head). It returns the dummy of the deepest initialized ancestor and, in
// initb, the shallowest uninitialized bucket on the path (-1 when b itself
// is initialized) — the one the caller must initialize next, top-down, so
// every dummy insertion starts from an already-installed parent. ok=false
// means tab is no longer the installed table and the operation must reload.
//
// No reservation outlives the phase: the returned start is a dummy, and
// dummies are never retired, so it stays a valid traversal root for the next
// phase no matter what the reclaimer does in between.
func (m *Map) bucketStart(g smr.Guard, tab *table, b uint64) (start mem.Ptr, initb int, ok bool) {
searchAgain:
	for {
		g.BeginRead()
		g.Protect(3, tab.seg)
		if m.tab.Load() != tab {
			g.EndRead()
			return mem.Null, 0, false
		}
		initb = -1
		for bb := b; ; bb = parent(bb) {
			c, ok := m.loadCell(g, 0, tab, bb)
			if !ok {
				continue searchAgain
			}
			if c != mem.Null {
				g.EndRead()
				return c, initb, true
			}
			if bb == 0 {
				// Cell 0 is copied from the previous table's cell 0 on
				// every resize and seeded with the head at construction;
				// Null means the invariant is broken, not a race.
				panic("hashmap: bucket 0 cell uninitialized")
			}
			initb = int(bb)
		}
	}
}

// initBucket installs bucket b's dummy: find its split-order position from
// start (an initialized ancestor's dummy), insert one dummy node if no racer
// already has, then publish it in tab's cell. Returns false when tab went
// stale, sending the operation back to reload the table.
func (m *Map) initBucket(g smr.Guard, tab *table, start mem.Ptr, b uint64) bool {
	dsk := dummySkey(b)
	for {
		left, right, rightV, ok := m.listSearch(g, tab, start, dsk, 0)
		if !ok {
			return false
		}
		dp := right
		if right == m.tail || rightV.skey != dsk || rightV.key != 0 {
			// Write phase: allocate and link the dummy (legal here — the
			// thread is non-restartable after listSearch's endΦread).
			np, nn := m.pool.Alloc(g.Tid())
			atomic.StoreUint64(&nn.skey, dsk)
			atomic.StoreUint64(&nn.key, 0)
			atomic.StoreUint64(&nn.next, uint64(right))
			g.OnAlloc(np)
			if !m.casNext(left, right, np) {
				// Lost the race: the private node is unpublished.
				m.pool.Free(g.Tid(), np)
				continue
			}
			dp = np
		}
		m.casCell(tab, b, dp)
		return true
	}
}

// listSearch finds the unmarked pair (left, right) bracketing (sk, key) in
// split order, starting from a dummy, splicing out any marked chain in
// between (see harrislist.search; the slot discipline is identical with the
// segment handle added: left in slot 0, cursor alternating 1 and 2, and the
// handle re-announced in slot 3 at every phase start — BeginRead wipes the
// reservation row, so the endΦread here must re-reserve the handle (slot 2)
// for the caller's cell writes and array reads to stay covered). ok=false
// means tab is no longer installed.
func (m *Map) listSearch(g smr.Guard, tab *table, start mem.Ptr, sk, key uint64) (left, right mem.Ptr, rightV view, ok bool) {
	scratch := &m.scratch[g.Tid()]
searchAgain:
	for {
		g.BeginRead()
		scratchReset(scratch)
		g.Protect(3, tab.seg)
		if m.tab.Load() != tab {
			g.EndRead()
			return mem.Null, mem.Null, view{}, false
		}

		t := start
		tV, _ := m.read(g, 0, t) // start is a dummy, never freed
		left, right = t, mem.Null
		leftNext := tV.next
		slot := 1

		// Traverse until an unmarked node at or past the target.
		for {
			if !tV.next.Marked() {
				left = t
				leftNext = tV.next
				g.Protect(0, left) // left already covered; renew slot 0
				scratchReset(scratch)
			} else {
				scratchPush(scratch, t)
			}
			next := tV.next.Unmarked()
			if next == m.tail {
				right = m.tail
				rightV = view{skey: ds.MaxKey, key: ds.MaxKey, next: mem.Null}
				break
			}
			nv, ok := m.read(g, slot, next)
			if !ok {
				continue searchAgain
			}
			if g.NeedsValidation() && m.rawNext(g, t).Unmarked() != next {
				continue searchAgain
			}
			t, tV = next, nv
			slot ^= 3 // alternate 1 <-> 2
			if !tV.next.Marked() && !before(tV.skey, tV.key, sk, key) {
				right = t
				rightV = tV
				break
			}
		}

		// endΦread(left, right, segment handle).
		g.Reserve(0, left)
		g.Reserve(1, right)
		g.Reserve(2, tab.seg)
		g.EndRead()

		if leftNext == right {
			// Adjacent already; restart if right got marked meanwhile.
			if right != m.tail && m.rawNext(g, right).Marked() {
				continue searchAgain
			}
			return left, right, rightV, true
		}

		// Splice out the marked chain [leftNext, right) — the auxiliary
		// write phase. The winner retires the whole chain in one batch.
		if m.casNext(left, leftNext, right) {
			g.RetireBatch(*scratch)
			if right != m.tail && m.rawNext(g, right).Marked() {
				continue searchAgain
			}
			return left, right, rightV, true
		}
	}
}

// locate brings bucket (key & mask) fully initialized and returns the
// bracketing pair for (sk, key) under a table that was the installed one
// when the final listSearch announced it; left, right and the table's
// segment handle are reserved on return.
func (m *Map) locate(g smr.Guard, sk, key uint64) (tab *table, left, right mem.Ptr, rightV view) {
	for {
		tab = m.tab.Load()
		start, initb, ok := m.bucketStart(g, tab, key&tab.mask)
		if !ok {
			continue
		}
		if initb >= 0 {
			m.initBucket(g, tab, start, uint64(initb))
			continue // re-resolve: deeper ancestors may still be missing
		}
		l, r, rv, ok := m.listSearch(g, tab, start, sk, key)
		if !ok {
			continue
		}
		return tab, l, r, rv
	}
}

// Contains implements ds.Set via a full search (which may help unlink).
func (m *Map) Contains(g smr.Guard, key uint64) bool {
	sk := dataSkey(key)
	return smr.Execute(g, func() bool {
		_, _, right, rightV := m.locate(g, sk, key)
		return right != m.tail && rightV.skey == sk && rightV.key == key
	})
}

// Insert implements ds.Set. A successful link is the only resize trigger
// point: the inserter still holds the table's segment handle reserved from
// its final endΦread, which is what makes reading the old cells and CASing
// the table pointer safe in its write phase.
func (m *Map) Insert(g smr.Guard, key uint64) bool {
	sk := dataSkey(key)
	return smr.Execute(g, func() bool {
		for {
			tab, left, right, rightV := m.locate(g, sk, key)
			if right != m.tail && rightV.skey == sk && rightV.key == key {
				return false
			}
			np, nn := m.pool.Alloc(g.Tid())
			atomic.StoreUint64(&nn.skey, sk)
			atomic.StoreUint64(&nn.key, key)
			atomic.StoreUint64(&nn.next, uint64(right))
			g.OnAlloc(np)
			if m.casNext(left, right, np) {
				m.count.Add(1)
				m.maybeResize(g, tab)
				return true
			}
			// Lost the race: the private node is unpublished, free it
			// directly and start a fresh read phase.
			m.pool.Free(g.Tid(), np)
		}
	})
}

// Delete implements ds.Set: logical mark CAS, then attempt the physical
// unlink; on failure the next search performs the unlink and retires.
// Dummies are unreachable here — their skeys are even, data skeys odd.
func (m *Map) Delete(g smr.Guard, key uint64) bool {
	sk := dataSkey(key)
	return smr.Execute(g, func() bool {
		for {
			_, left, right, rightV := m.locate(g, sk, key)
			if right == m.tail || rightV.skey != sk || rightV.key != key {
				return false
			}
			succ := m.rawNext(g, right)
			if succ.Marked() {
				continue // another deleter got here first; help via search
			}
			if !m.casNext(right, succ, succ.WithMark()) {
				continue // link changed under us; retry from a fresh search
			}
			m.count.Add(-1)
			// The mark CAS is the linearization point. Try the physical
			// unlink once; on failure leave the node for a later search to
			// splice and retire.
			if m.casNext(left, right, succ) {
				g.Retire(right)
			}
			return true
		}
	})
}

// maybeResize grows the table when the load factor is exceeded. Called in
// the write phase of a successful insert, with tab's segment handle still
// reserved/announced.
func (m *Map) maybeResize(g smr.Guard, tab *table) {
	if m.count.Load() <= int64(tab.mask+1)*loadFactor {
		return
	}
	if m.tab.Load() != tab {
		return // someone else already grew past us
	}
	m.resize(g, tab)
}

// resize installs a doubled cell array. The new cells are a fresh AllocBatch
// run (guaranteed zero, so uncopied upper cells read as Null/uninitialized);
// the lower half is a racy copy of the old cells — a concurrently published
// dummy that the copy misses is re-found in the list by lazy initialization,
// so no initialization is ever lost, only redone. The CAS winner retires the
// old array as one segment; the loser's private run is freed through its
// handle, which fans out to the members.
func (m *Map) resize(g smr.Guard, tab *table) {
	tid := g.Tid()
	n := int(tab.mask) + 1
	run := m.pool.AllocBatch(tid, 2*n)
	for i := 0; i < n; i++ {
		c := atomic.LoadUint64(&m.pool.Raw(tab.run.At(i)).next)
		atomic.StoreUint64(&m.pool.Raw(run.At(i)).next, c)
	}
	seg := m.pool.NewSegment(tid, run)
	g.OnAlloc(seg)
	nt := &table{seg: seg, run: run, mask: uint64(2*n) - 1}
	if m.tab.CompareAndSwap(tab, nt) {
		m.resizes.Add(1)
		m.retireTable(g, tab)
	} else {
		m.pool.Free(tid, seg)
	}
}

// retireTable hands the replaced array to the reclamation scheme: one
// RetireSegment of the handle on the fast path, or — in the benchmark's
// per-node baseline — a dissolve into K individual retires, which is the
// scheme-side cost the segment path exists to collapse.
func (m *Map) retireTable(g smr.Guard, tab *table) {
	sa := mem.AsSegmentArena(m.pool)
	if !m.perNode || sa == nil {
		g.RetireSegment(tab.seg)
		return
	}
	run, ok := m.pool.DissolveSegment(tab.seg)
	if !ok {
		g.RetireSegment(tab.seg)
		return
	}
	buf := make([]mem.Ptr, 0, run.Len())
	for i := 0; i < run.Len(); i++ {
		buf = append(buf, run.At(i))
	}
	g.RetireBatch(buf)
	g.Retire(tab.seg)
}

// BuildMarkedChain deterministically prepares an oversized-splice input for
// the garbage-bound suites (quiescent; single-threaded): keys i<<32 for
// i in 1..n all hash to bucket 0 under any table below 2^32 cells, and their
// split-order keys (reverse(i<<32) < 2^32) sort below every dummy except the
// head — so they form one contiguous chain right after the head, and the
// next search whose target lies past them (any dummy installation included)
// splices all n in a single RetireBatch. The nodes are marked without the
// physical unlink, exactly the state n logically deleted nodes are in before
// any search helps. Returns the number of nodes marked.
func (m *Map) BuildMarkedChain(g smr.Guard, n int) int {
	for i := 1; i <= n; i++ {
		m.Insert(g, uint64(i)<<32)
	}
	marked := 0
	for p := m.next(m.head); p != m.tail; p = m.next(p) {
		nd := m.pool.Raw(p)
		k := atomic.LoadUint64(&nd.key)
		sk := atomic.LoadUint64(&nd.skey)
		next := atomic.LoadUint64(&nd.next)
		if sk&1 == 1 && k&(1<<32-1) == 0 && k>>32 >= 1 && k>>32 <= uint64(n) &&
			!mem.Ptr(next).Marked() {
			if atomic.CompareAndSwapUint64(&nd.next, next, uint64(mem.Ptr(next).WithMark())) {
				marked++
			}
		}
	}
	return marked
}

// Len implements ds.Set (quiescent): counts unmarked data nodes.
func (m *Map) Len() int {
	n := 0
	for p := m.next(m.head); p != m.tail; p = m.next(p) {
		nd := m.pool.Raw(p)
		if atomic.LoadUint64(&nd.skey)&1 == 1 &&
			!mem.Ptr(atomic.LoadUint64(&nd.next)).Marked() {
			n++
		}
	}
	return n
}

func (m *Map) next(p mem.Ptr) mem.Ptr {
	return mem.Ptr(atomic.LoadUint64(&m.pool.Raw(p).next)).Unmarked()
}

// Validate implements ds.Set (quiescent): the list strictly sorted in split
// order with valid handles and the tail reachable, every initialized cell of
// the installed table pointing at the reachable dummy of its own bucket,
// and cell 0 at the head. Len is deliberately not checked against the
// internal counter: a killed thread can die between its link CAS and the
// counter update, a permanent but benign drift.
func (m *Map) Validate() error {
	dummies := map[mem.Ptr]uint64{m.head: 0}
	prevSK, prevK := uint64(0), uint64(0)
	p := m.next(m.head)
	for p != m.tail {
		if p.IsNull() {
			return errors.New("hashmap: reachable nil before tail")
		}
		n, ok := m.pool.Get(p)
		if !ok {
			return fmt.Errorf("hashmap: freed node %v reachable", p)
		}
		sk := atomic.LoadUint64(&n.skey)
		k := atomic.LoadUint64(&n.key)
		if !mem.Ptr(atomic.LoadUint64(&n.next)).Marked() {
			if !before(prevSK, prevK, sk, k) {
				return fmt.Errorf("hashmap: split order violated ((%d,%d) after (%d,%d))",
					sk, k, prevSK, prevK)
			}
			prevSK, prevK = sk, k
			if sk&1 == 0 {
				dummies[p] = sk
			}
		}
		p = m.next(p)
	}
	tab := m.tab.Load()
	if tab.run.Len() != int(tab.mask)+1 {
		return fmt.Errorf("hashmap: table run %d cells, mask %d", tab.run.Len(), tab.mask)
	}
	for b := uint64(0); b <= tab.mask; b++ {
		cell := tab.run.At(int(b))
		if !m.pool.Valid(cell) {
			return fmt.Errorf("hashmap: cell %d of installed table freed", b)
		}
		dp := mem.Ptr(atomic.LoadUint64(&m.pool.Raw(cell).next))
		if dp == mem.Null {
			continue // lazily uninitialized
		}
		if b == 0 && dp != m.head {
			return fmt.Errorf("hashmap: cell 0 is %v, not the head", dp)
		}
		sk, ok := dummies[dp]
		if !ok {
			return fmt.Errorf("hashmap: cell %d points at %v, not a reachable dummy", b, dp)
		}
		if sk != dummySkey(b) {
			return fmt.Errorf("hashmap: cell %d points at dummy of bucket %d",
				b, bits.Reverse64(sk))
		}
	}
	return nil
}
