package hashmap

import (
	"testing"

	"nbr/internal/mem"
	"nbr/internal/smr/hp"
)

// TestMidResizeReader is the deterministic segment-safety regression: a
// reader pins a bucket array with ONE announcement on its segment handle,
// the array is retired out from under it by a resize, a delete storm then
// forces scan after scan — and every member cell must stay valid until the
// reader leaves, at which point the drain must reclaim the array in full.
// Hazard pointers make the schedule deterministic: hazards pin exactly what
// is announced, so the one handle hazard is the only thing keeping the K
// cells alive.
//
//nbr:allow readphase — the stalled reader IS the fixture: the test parks inside an open read phase on purpose, drives the writer and the assertions around it from the same goroutine, and only then closes the phase; nothing here is a library traversal the protocol could restart
func TestMidResizeReader(t *testing.T) {
	m := NewWith(mem.Config{MaxThreads: 2})
	sch := hp.New(m.pool, 2, hp.Config{Slots: 4, Threshold: 16})
	w, r := sch.Guard(0), sch.Guard(1)

	old := m.tab.Load()

	// The reader opens a read phase and pins the current array through its
	// segment handle — the map's own traversal protocol (slot 3), with the
	// protect-then-validate step that makes the hazard sound: the table
	// pointer still naming tab proves the handle was not yet retired when
	// the hazard was published.
	r.BeginOp()
	r.BeginRead()
	r.Protect(3, old.seg)
	if m.tab.Load() != old {
		t.Fatal("table swapped before any insert; fixture broken")
	}

	// The writer inserts until a resize retires old.seg under the reader.
	k := uint64(0)
	for m.Resizes() == 0 {
		k++
		if k > 1000 {
			t.Fatal("1000 inserts without a resize")
		}
		if !m.Insert(w, k) {
			t.Fatalf("Insert(%d) failed", k)
		}
	}
	if m.tab.Load() == old {
		t.Fatal("resize recorded but the old table is still installed")
	}
	st := sch.Stats()
	if st.Segments == 0 || st.SegRecords < uint64(old.run.Len()) {
		t.Fatalf("resize did not retire the old array as a segment: Segments=%d SegRecords=%d",
			st.Segments, st.SegRecords)
	}

	// Count-neutral churn: every pair retires nodes and, at threshold 16,
	// forces scan upon scan that all see the reader's handle hazard.
	for i := 0; i < 200; i++ {
		key := 10_000 + uint64(i)
		if !m.Insert(w, key) || !m.Delete(w, key) {
			t.Fatalf("churn pair %d failed", i)
		}
	}

	// One hazard, K survivors: the retired array's handle and every member
	// cell must still be valid — freeing any of them while the reader can
	// still dereference the old table would be the use-after-free the
	// segment protocol exists to prevent.
	if !m.pool.Valid(old.seg) {
		t.Fatal("segment handle freed while a reader hazard names it")
	}
	for i := 0; i < old.run.Len(); i++ {
		if !m.pool.Valid(old.run.At(i)) {
			t.Fatalf("cell %d freed under the reader (handle hazard must pin all members)", i)
		}
	}

	// The reader now traverses the stale array exactly as a mid-resize
	// traversal would: every cell must read cleanly, and every initialized
	// cell must still point at a live dummy (dummies are never retired).
	for b := uint64(0); b <= old.mask; b++ {
		dp, ok := m.loadCell(r, 0, old, b)
		if !ok {
			t.Fatalf("cell %d of the pinned array failed validation", b)
		}
		if dp == mem.Null {
			continue
		}
		n, live := m.pool.Get(dp)
		if !live {
			t.Fatalf("cell %d points at a freed dummy", b)
		}
		if sk := n.skey; sk&1 != 0 {
			t.Fatalf("cell %d points at a data node (skey %#x)", b, sk)
		}
	}
	if dp, _ := m.loadCell(r, 0, old, 0); dp != m.head {
		t.Fatal("old cell 0 must still be the list head")
	}

	// The reader leaves; its hazards clear, and the drain must now fan the
	// whole array out: Retired == Freed exactly, no stranded members, no
	// early frees to compensate for.
	r.EndRead()
	r.EndOp()
	for round := 0; round < 200; round++ {
		if st := sch.Stats(); st.Retired == st.Freed {
			break
		}
		sch.Drain(0)
		sch.Drain(1)
	}
	st = sch.Stats()
	if st.Retired != st.Freed {
		t.Fatalf("drain after reader exit stalled: retired %d, freed %d", st.Retired, st.Freed)
	}
	for i := 0; i < old.run.Len(); i++ {
		if m.pool.Valid(old.run.At(i)) {
			t.Fatalf("cell %d of the retired array survived the drain", i)
		}
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}
