package hashmap

import (
	"testing"

	"nbr/internal/core"
	"nbr/internal/mem"
	"nbr/internal/smr/hp"
)

// TestMidResizeReader is the deterministic segment-safety regression: a
// reader pins a bucket array with ONE announcement on its segment handle,
// the array is retired out from under it by a resize, a delete storm then
// forces scan after scan — and every member cell must stay valid until the
// reader leaves, at which point the drain must reclaim the array in full.
// Hazard pointers make the schedule deterministic: hazards pin exactly what
// is announced, so the one handle hazard is the only thing keeping the K
// cells alive.
//
//nbr:allow readphase — the stalled reader IS the fixture: the test parks inside an open read phase on purpose, drives the writer and the assertions around it from the same goroutine, and only then closes the phase; nothing here is a library traversal the protocol could restart
func TestMidResizeReader(t *testing.T) {
	m := NewWith(mem.Config{MaxThreads: 2})
	sch := hp.New(m.pool, 2, hp.Config{Slots: 4, Threshold: 16})
	w, r := sch.Guard(0), sch.Guard(1)

	old := m.tab.Load()

	// The reader opens a read phase and pins the current array through its
	// segment handle — the map's own traversal protocol (slot 3), with the
	// protect-then-validate step that makes the hazard sound: the table
	// pointer still naming tab proves the handle was not yet retired when
	// the hazard was published.
	r.BeginOp()
	r.BeginRead()
	r.Protect(3, old.seg)
	if m.tab.Load() != old {
		t.Fatal("table swapped before any insert; fixture broken")
	}

	// The writer inserts until a resize retires old.seg under the reader.
	k := uint64(0)
	for m.Resizes() == 0 {
		k++
		if k > 1000 {
			t.Fatal("1000 inserts without a resize")
		}
		if !m.Insert(w, k) {
			t.Fatalf("Insert(%d) failed", k)
		}
	}
	if m.tab.Load() == old {
		t.Fatal("resize recorded but the old table is still installed")
	}
	st := sch.Stats()
	if st.Segments == 0 || st.SegRecords < uint64(old.run.Len()) {
		t.Fatalf("resize did not retire the old array as a segment: Segments=%d SegRecords=%d",
			st.Segments, st.SegRecords)
	}

	// Count-neutral churn: every pair retires nodes and, at threshold 16,
	// forces scan upon scan that all see the reader's handle hazard.
	for i := 0; i < 200; i++ {
		key := 10_000 + uint64(i)
		if !m.Insert(w, key) || !m.Delete(w, key) {
			t.Fatalf("churn pair %d failed", i)
		}
	}

	// One hazard, K survivors: the retired array's handle and every member
	// cell must still be valid — freeing any of them while the reader can
	// still dereference the old table would be the use-after-free the
	// segment protocol exists to prevent.
	if !m.pool.Valid(old.seg) {
		t.Fatal("segment handle freed while a reader hazard names it")
	}
	for i := 0; i < old.run.Len(); i++ {
		if !m.pool.Valid(old.run.At(i)) {
			t.Fatalf("cell %d freed under the reader (handle hazard must pin all members)", i)
		}
	}

	// The reader now traverses the stale array exactly as a mid-resize
	// traversal would: every cell must read cleanly, and every initialized
	// cell must still point at a live dummy (dummies are never retired).
	for b := uint64(0); b <= old.mask; b++ {
		dp, ok := m.loadCell(r, 0, old, b)
		if !ok {
			t.Fatalf("cell %d of the pinned array failed validation", b)
		}
		if dp == mem.Null {
			continue
		}
		n, live := m.pool.Get(dp)
		if !live {
			t.Fatalf("cell %d points at a freed dummy", b)
		}
		if sk := n.skey; sk&1 != 0 {
			t.Fatalf("cell %d points at a data node (skey %#x)", b, sk)
		}
	}
	if dp, _ := m.loadCell(r, 0, old, 0); dp != m.head {
		t.Fatal("old cell 0 must still be the list head")
	}

	// The reader leaves; its hazards clear, and the drain must now fan the
	// whole array out: Retired == Freed exactly, no stranded members, no
	// early frees to compensate for.
	r.EndRead()
	r.EndOp()
	for round := 0; round < 200; round++ {
		if st := sch.Stats(); st.Retired == st.Freed {
			break
		}
		sch.Drain(0)
		sch.Drain(1)
	}
	st = sch.Stats()
	if st.Retired != st.Freed {
		t.Fatalf("drain after reader exit stalled: retired %d, freed %d", st.Retired, st.Freed)
	}
	for i := 0; i < old.run.Len(); i++ {
		if m.pool.Valid(old.run.At(i)) {
			t.Fatalf("cell %d of the retired array survived the drain", i)
		}
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestOversizedSegmentReaderHP is the carve-safety regression for
// identity-based hazards: the retired array's weight EXCEEDS the scan
// threshold, the configuration where hp used to split the handle with
// CarveSegment. A carved prefix rides a fresh head handle that no reader
// ever announced, so its member cells were freed under the reader's single
// handle hazard — use-after-free. The fix bags the handle whole, so every
// cell must survive the scan storm until the reader leaves, and the
// handle must land as exactly one bag entry (Segments +1, no pieces).
//
//nbr:allow readphase — the stalled reader IS the fixture: the test parks inside an open read phase on purpose and drives the writer around it from the same goroutine
func TestOversizedSegmentReaderHP(t *testing.T) {
	m := NewWith(mem.Config{MaxThreads: 2})
	sch := hp.New(m.pool, 2, hp.Config{Slots: 4, Threshold: 16})
	w, r := sch.Guard(0), sch.Guard(1)

	// Grow the table past the threshold: after two resizes the installed
	// array has 32 cells > Threshold 16, so retiring it is the oversized
	// case the old code carved.
	k := uint64(0)
	for m.Resizes() < 2 {
		k++
		if k > 10_000 {
			t.Fatal("10k inserts without two resizes")
		}
		m.Insert(w, k)
	}
	old := m.tab.Load()
	if old.run.Len() <= 16 {
		t.Fatalf("fixture: pinned array weighs %d, need > Threshold 16", old.run.Len())
	}

	r.BeginOp()
	r.BeginRead()
	r.Protect(3, old.seg)
	if m.tab.Load() != old {
		t.Fatal("table swapped between load and hazard; fixture broken")
	}

	seg0 := sch.Stats()
	for m.Resizes() < 3 {
		k++
		if k > 100_000 {
			t.Fatal("100k inserts without the third resize")
		}
		m.Insert(w, k)
	}
	st := sch.Stats()
	if got := st.Segments - seg0.Segments; got != 1 {
		t.Fatalf("oversized array must land as ONE uncarved handle, got %d pieces", got)
	}
	if got := st.SegRecords - seg0.SegRecords; got != uint64(old.run.Len()) {
		t.Fatalf("segment records: got %d, want %d", got, old.run.Len())
	}

	// Scan storm: the bag is pinned over threshold by the 32-weight
	// survivor, so every churn pair forces scans that all see the reader's
	// handle hazard and must skip the whole run.
	for i := 0; i < 200; i++ {
		key := uint64(1)<<40 + uint64(i) // well away from the fixture keys
		if !m.Insert(w, key) || !m.Delete(w, key) {
			t.Fatalf("churn pair %d failed", i)
		}
	}
	if !m.pool.Valid(old.seg) {
		t.Fatal("segment handle freed while a reader hazard names it")
	}
	for i := 0; i < old.run.Len(); i++ {
		if !m.pool.Valid(old.run.At(i)) {
			t.Fatalf("cell %d freed under the reader (carving an announced handle?)", i)
		}
	}

	r.EndRead()
	r.EndOp()
	for round := 0; round < 200; round++ {
		if st := sch.Stats(); st.Retired == st.Freed {
			break
		}
		sch.Drain(0)
		sch.Drain(1)
	}
	st = sch.Stats()
	if st.Retired != st.Freed {
		t.Fatalf("drain after reader exit stalled: retired %d, freed %d", st.Retired, st.Freed)
	}
	for i := 0; i < old.run.Len(); i++ {
		if m.pool.Valid(old.run.At(i)) {
			t.Fatalf("cell %d of the retired array survived the drain", i)
		}
	}
}

// TestOversizedSegmentReaderNBR is the same carve-safety regression for
// reservation identity: a write-phase peer holds the array's segment handle
// reserved from its last endΦread (the map's real protocol), the array —
// heavier than the whole limbo bag — is retired under it, and reclamation
// after reclamation must skip every member cell because the reservation
// names the original handle. The old carve path freed the carved prefix's
// cells out from under exactly this reservation.
func TestOversizedSegmentReaderNBR(t *testing.T) {
	m := NewWith(mem.Config{MaxThreads: 2})
	sch := core.New(m.pool, 2, core.Config{BagSize: 16, Slots: 4})
	w, r := sch.Guard(0), sch.Guard(1)

	k := uint64(0)
	for m.Resizes() < 2 {
		k++
		if k > 10_000 {
			t.Fatal("10k inserts without two resizes")
		}
		m.Insert(w, k)
	}
	old := m.tab.Load()
	if old.run.Len() <= 16 {
		t.Fatalf("fixture: pinned array weighs %d, need > BagSize 16", old.run.Len())
	}

	// The reader pins the array the way the map's write phases do: reserve
	// the handle at endΦread and keep the reservation open (no BeginRead
	// clears the row until the reader moves on). Having closed its read
	// phase, the reader is not restartable, so the writer's neutralization
	// signals are ignored and the schedule is deterministic.
	r.BeginOp()
	r.BeginRead()
	r.Protect(3, old.seg)
	if m.tab.Load() != old {
		t.Fatal("table swapped between load and reserve; fixture broken")
	}
	r.Reserve(2, old.seg)
	r.EndRead()

	seg0 := sch.Stats()
	for m.Resizes() < 3 {
		k++
		if k > 100_000 {
			t.Fatal("100k inserts without the third resize")
		}
		m.Insert(w, k)
	}
	st := sch.Stats()
	if got := st.Segments - seg0.Segments; got != 1 {
		t.Fatalf("oversized array must land as ONE uncarved handle, got %d pieces", got)
	}
	if got := st.SegRecords - seg0.SegRecords; got != uint64(old.run.Len()) {
		t.Fatalf("segment records: got %d, want %d", got, old.run.Len())
	}

	// Reclamation storm: the 32-weight survivor pins the bag over the
	// HiWatermark, so every retire runs a full signal-and-scan pass that
	// must skip the reserved handle and all its members.
	for i := 0; i < 200; i++ {
		key := uint64(1)<<40 + uint64(i)
		if !m.Insert(w, key) || !m.Delete(w, key) {
			t.Fatalf("churn pair %d failed", i)
		}
	}
	if !m.pool.Valid(old.seg) {
		t.Fatal("segment handle freed while a peer reservation names it")
	}
	for i := 0; i < old.run.Len(); i++ {
		if !m.pool.Valid(old.run.At(i)) {
			t.Fatalf("cell %d freed under the reservation (carving a reserved handle?)", i)
		}
	}

	// Both threads move on: the next read phase wipes each reservation row
	// (unlike hp hazards, NBR reservations persist past EndOp — the writer's
	// last endΦread still pins its final churn pair), and the drain must
	// then reclaim the array in full.
	r.BeginRead()
	r.EndRead()
	r.EndOp()
	w.BeginRead()
	w.EndRead()
	for round := 0; round < 200; round++ {
		if st := sch.Stats(); st.Retired == st.Freed {
			break
		}
		sch.Drain(0)
		sch.Drain(1)
	}
	st = sch.Stats()
	if st.Retired != st.Freed {
		t.Fatalf("drain after reader exit stalled: retired %d, freed %d", st.Retired, st.Freed)
	}
	for i := 0; i < old.run.Len(); i++ {
		if m.pool.Valid(old.run.At(i)) {
			t.Fatalf("cell %d of the retired array survived the drain", i)
		}
	}
}
