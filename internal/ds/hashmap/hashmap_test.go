package hashmap_test

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"nbr/internal/bench"
	"nbr/internal/ds/hashmap"
	"nbr/internal/dstest"
	"nbr/internal/mem"
	"nbr/internal/smr"
)

func factory() dstest.Factory {
	return dstest.Factory{
		Name: "hashmap",
		New: func(threads int) dstest.Instance {
			m := hashmap.New(threads)
			return dstest.Instance{Set: m, Arena: m.Arena()}
		},
		// The oversized-splice input: every chain key hashes to bucket 0 and
		// its split-order key sorts below every dummy, so the next traversal
		// must splice the whole chain in one RetireBatch.
		Chain: func(inst dstest.Instance, g smr.Guard, n int) int {
			return inst.Set.(*hashmap.Map).BuildMarkedChain(g, n)
		},
	}
}

func TestMatrix(t *testing.T) { dstest.RunAll(t, factory()) }

func newWithGuard(t *testing.T, scheme string) (*hashmap.Map, smr.Guard) {
	t.Helper()
	m := hashmap.New(1)
	s, err := bench.NewSchemeFor(scheme, m.Arena(), 1, bench.DefaultSchemeConfig(), m.Requirements())
	if err != nil {
		t.Fatal(err)
	}
	return m, s.Guard(0)
}

func TestBasics(t *testing.T) {
	m, g := newWithGuard(t, "nbr+")
	if m.Len() != 0 || m.Contains(g, 1) {
		t.Fatal("fresh map must be empty")
	}
	for _, k := range []uint64{5, 1, 9, 3, 7} {
		if !m.Insert(g, k) {
			t.Fatalf("Insert(%d) failed", k)
		}
	}
	if m.Insert(g, 5) {
		t.Fatal("duplicate insert succeeded")
	}
	if m.Len() != 5 {
		t.Fatalf("Len = %d", m.Len())
	}
	if !m.Delete(g, 3) || m.Delete(g, 3) {
		t.Fatal("delete semantics wrong")
	}
	if m.Contains(g, 3) || !m.Contains(g, 7) {
		t.Fatal("membership wrong after delete")
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestResizeGrowth drives enough single-threaded inserts through the map to
// force several doublings and checks that membership, Len and the structural
// invariants survive the table swaps.
func TestResizeGrowth(t *testing.T) {
	m, g := newWithGuard(t, "nbr+")
	const keys = 400
	for k := uint64(1); k <= keys; k++ {
		if !m.Insert(g, k) {
			t.Fatalf("Insert(%d) failed", k)
		}
	}
	if m.Resizes() == 0 {
		t.Fatal("400 inserts over 8 initial buckets must resize")
	}
	if b := m.Buckets(); b <= 8 {
		t.Fatalf("Buckets = %d after resizing", b)
	}
	for k := uint64(1); k <= keys; k++ {
		if !m.Contains(g, k) {
			t.Fatalf("key %d lost across resizes", k)
		}
	}
	if m.Contains(g, keys+1) {
		t.Fatal("absent key reported present")
	}
	if m.Len() != keys {
		t.Fatalf("Len = %d, want %d", m.Len(), keys)
	}
	for k := uint64(1); k <= keys; k += 2 {
		if !m.Delete(g, k) {
			t.Fatalf("Delete(%d) failed", k)
		}
	}
	if m.Len() != keys/2 {
		t.Fatalf("Len = %d after deleting half, want %d", m.Len(), keys/2)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestPerNodeBaseline exercises the benchmark's A/B seam: the per-node map
// dissolves each old array and retires every cell individually, so the
// scheme must see zero segments while the map still resizes correctly. Run
// under a grace-period scheme (the only family the baseline is safe under).
func TestPerNodeBaseline(t *testing.T) {
	m := hashmap.NewPerNodeWith(mem.Config{MaxThreads: 1})
	sch, err := bench.NewSchemeFor("ibr", m.Arena(), 1, bench.DefaultSchemeConfig(), m.Requirements())
	if err != nil {
		t.Fatal(err)
	}
	g := sch.Guard(0)
	const keys = 200
	for k := uint64(1); k <= keys; k++ {
		if !m.Insert(g, k) {
			t.Fatalf("Insert(%d) failed", k)
		}
	}
	if m.Resizes() == 0 {
		t.Fatal("baseline map must still resize")
	}
	st := sch.Stats()
	if st.Segments != 0 || st.SegRecords != 0 {
		t.Fatalf("per-node baseline retired segments: %d handles, %d members", st.Segments, st.SegRecords)
	}
	if st.Retired < 8 {
		t.Fatalf("retired %d records; the first old array alone has 8 cells", st.Retired)
	}
	for k := uint64(1); k <= keys; k++ {
		if !m.Contains(g, k) {
			t.Fatalf("key %d lost across baseline resizes", k)
		}
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestResizeStormBound is the resize-storm variant of the dstest Bound suite:
// insert-heavy traffic over a wide key range drives many doublings mid-churn,
// so whole bucket arrays keep retiring as segments while a sampler races
// Stats().Garbage() against the declared bound — a segment whose weight
// escaped the watermark accounting overshoots here by the array length. The
// storm then drains to Retired == Freed, proving no segment is stranded.
func TestResizeStormBound(t *testing.T) {
	for _, scheme := range bench.SchemeNames {
		if !bench.Runnable("hashmap", scheme) {
			continue
		}
		scheme := scheme
		t.Run(scheme, func(t *testing.T) { resizeStorm(t, scheme) })
	}
}

func resizeStorm(t *testing.T, scheme string) {
	const threads = 6
	m := hashmap.New(threads)
	cfg := bench.SchemeConfig{
		BagSize:    32, // one retired array can span the bag
		LoFraction: 0.5,
		ScanFreq:   4,
		Threshold:  48,
		EraFreq:    16,
	}
	sch, err := bench.NewSchemeFor(scheme, m.Arena(), threads, cfg, m.Requirements())
	if err != nil {
		t.Fatal(err)
	}

	var stop atomic.Bool
	var peak atomic.Uint64
	samplerDone := make(chan struct{})
	go func() {
		defer close(samplerDone)
		for !stop.Load() {
			if g := sch.Stats().Garbage(); g > peak.Load() {
				peak.Store(g)
			}
			runtime.Gosched()
		}
	}()

	span := 1200
	if testing.Short() {
		span = 300
	}
	var wg sync.WaitGroup
	for tid := 0; tid < threads; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			g := sch.Guard(tid)
			base := uint64(tid) * 100_000
			for i := 0; i < span; i++ {
				m.Insert(g, base+uint64(i)+1)
				if i%3 == 0 && i > 0 {
					// Delete an earlier key of this thread's range: steady
					// per-node retire traffic alongside the segment bursts.
					m.Delete(g, base+uint64(i/2)+1)
				}
			}
		}(tid)
	}
	wg.Wait()
	stop.Store(true)
	<-samplerDone

	if r := m.Resizes(); r < 4 {
		t.Fatalf("storm drove only %d resizes; not a storm", r)
	}
	st := sch.Stats()
	if st.Invalid() {
		t.Fatalf("stats invalid at quiescence: freed %d > retired %d", st.Freed, st.Retired)
	}
	if st.Segments == 0 || st.SegRecords == 0 {
		t.Fatalf("resizes never retired a segment (Segments=%d SegRecords=%d)", st.Segments, st.SegRecords)
	}
	if g := st.Garbage(); g > peak.Load() {
		peak.Store(g)
	}
	// GarbageBound is monotone non-decreasing (it grows with the largest
	// segment weight seen), so the final reading dominates every moment a
	// garbage sample was taken.
	if bound := sch.GarbageBound(); bound != smr.Unbounded && peak.Load() > uint64(bound) {
		t.Fatalf("garbage-bound contract violated mid-storm: sampled peak %d > declared bound %d",
			peak.Load(), bound)
	}

	drainStorm(t, sch, m, threads, scheme)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

// drainStorm drives the scheme to full reclamation: Retired == Freed with
// every retired bucket array fanned out. NBR reservation rows persist past
// EndOp, so each thread first runs one search on the current table — that
// re-points its reservations at live records (the current array's handle and
// unmarked nodes), unpinning everything retired during the storm.
func drainStorm(t *testing.T, sch smr.Scheme, m *hashmap.Map, threads int, scheme string) {
	t.Helper()
	if scheme == "none" {
		return // leaky never frees; Retired == Freed is unreachable
	}
	for tid := 0; tid < threads; tid++ {
		if m.Contains(sch.Guard(tid), 1<<40) {
			t.Fatal("drain probe key must be absent")
		}
	}
	d, ok := sch.(smr.Drainer)
	if !ok {
		t.Fatalf("%s does not implement smr.Drainer", scheme)
	}
	for round := 0; round < 500; round++ {
		if st := sch.Stats(); st.Retired == st.Freed {
			return
		}
		for tid := 0; tid < threads; tid++ {
			d.Drain(tid)
		}
	}
	st := sch.Stats()
	t.Fatalf("drain stalled: retired %d, freed %d (%d stranded)",
		st.Retired, st.Freed, st.Retired-st.Freed)
}
