package hmlist_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"nbr/internal/bench"
	"nbr/internal/ds/hmlist"
)

// TestVariantsEquivalent runs the identical operation sequence against both
// restart policies: E4's modification must change performance only, never
// results — the property that makes DEBRA-restarts vs DEBRA-norestarts a
// fair comparison.
func TestVariantsEquivalent(t *testing.T) {
	lr := hmlist.New(1, hmlist.Restart)
	ln := hmlist.New(1, hmlist.NoRestart)
	sr, err := bench.NewScheme("debra", lr.Arena(), 1, bench.DefaultSchemeConfig())
	if err != nil {
		t.Fatal(err)
	}
	sn, err := bench.NewScheme("debra", ln.Arena(), 1, bench.DefaultSchemeConfig())
	if err != nil {
		t.Fatal(err)
	}
	gr, gn := sr.Guard(0), sn.Guard(0)

	rng := rand.New(rand.NewSource(77))
	for i := 0; i < 8000; i++ {
		key := uint64(rng.Intn(64)) + 1
		switch rng.Intn(3) {
		case 0:
			if lr.Insert(gr, key) != ln.Insert(gn, key) {
				t.Fatalf("op %d: Insert(%d) diverged", i, key)
			}
		case 1:
			if lr.Delete(gr, key) != ln.Delete(gn, key) {
				t.Fatalf("op %d: Delete(%d) diverged", i, key)
			}
		default:
			if lr.Contains(gr, key) != ln.Contains(gn, key) {
				t.Fatalf("op %d: Contains(%d) diverged", i, key)
			}
		}
	}
	if lr.Len() != ln.Len() {
		t.Fatalf("final sizes diverged: %d vs %d", lr.Len(), ln.Len())
	}
	if err := lr.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := ln.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSetSemantics(t *testing.T) {
	l := hmlist.New(1, hmlist.Restart)
	s, err := bench.NewScheme("nbr+", l.Arena(), 1, bench.DefaultSchemeConfig())
	if err != nil {
		t.Fatal(err)
	}
	g := s.Guard(0)
	model := map[uint64]bool{}
	f := func(key uint16, op uint8) bool {
		k := uint64(key%40) + 1
		switch op % 3 {
		case 0:
			ok := l.Insert(g, k) == !model[k]
			model[k] = true
			return ok
		case 1:
			ok := l.Delete(g, k) == model[k]
			delete(model, k)
			return ok
		default:
			return l.Contains(g, k) == model[k]
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
}
