// Package hmlist implements the Harris-Michael lock-free list (HM04) in two
// variants for the paper's E4 experiment:
//
//   - the original (NoRestart): after snipping a marked node during a
//     traversal, the search resumes from the predecessor. This violates
//     NBR's Requirement 12 (each Φread must restart from the root), so the
//     applicability matrix rejects it for NBR — it runs under the epoch and
//     pointer-based schemes only (Table 1's HM04 row);
//   - the E4 modification (Restart): every successful snip returns to the
//     head before searching again, which makes the list NBR-compatible and,
//     as E4 observes, can even act as a contention-managing backoff.
//
// As in Harris's list the mark bit lives on a node's next field; unlike
// Harris, unlinking proceeds one node at a time.
package hmlist

import (
	"errors"
	"fmt"
	"sync/atomic"

	"nbr/internal/ds"
	"nbr/internal/mem"
	"nbr/internal/smr"
)

// Variant selects the E4 restart policy.
type Variant int

const (
	// Restart is the E4 modification: searches restart from the head after
	// every auxiliary unlink (NBR-compatible).
	Restart Variant = iota
	// NoRestart is Michael's original: searches continue from the
	// predecessor after a snip (NBR-incompatible).
	NoRestart
)

type node struct {
	key  uint64
	next uint64 // mem.Ptr | mark
}

// List is a Harris-Michael list set.
type List struct {
	pool    *mem.Pool[node]
	head    mem.Ptr
	tail    mem.Ptr
	variant Variant
}

// New creates a list with the given restart policy, sized for `threads`.
func New(threads int, v Variant) *List {
	return NewWith(mem.Config{MaxThreads: threads}, v)
}

// NewWith creates a list over a pool built from cfg — the constructor a
// shared-arena runtime uses, stamping its assigned arena tag (cfg.Tag) into
// every node handle so a mem.Hub can route frees back here.
func NewWith(cfg mem.Config, v Variant) *List {
	l := &List{pool: mem.NewPool[node](cfg), variant: v}
	tp, tn := l.pool.Alloc(0)
	atomic.StoreUint64(&tn.key, ds.MaxKey)
	atomic.StoreUint64(&tn.next, uint64(mem.Null))
	hp, hn := l.pool.Alloc(0)
	atomic.StoreUint64(&hn.key, ds.MinKey)
	atomic.StoreUint64(&hn.next, uint64(tp))
	l.head, l.tail = hp, tp
	return l
}

// Arena exposes the list's allocator to reclamation schemes.
func (l *List) Arena() mem.Arena { return l.pool }

// Requirements implements the per-DS width hook: find alternates two
// Protect slots (prev/curr) and reserves the same pair. The retire
// threshold is declared explicitly so the narrow slot width does not raise
// the hp/he scan frequency.
func (l *List) Requirements() ds.Requirements {
	return ds.Requirements{Slots: 2, Reservations: 2, Threshold: ds.DefaultThreshold}
}

// MemStats reports allocator statistics.
func (l *List) MemStats() mem.Stats { return l.pool.Stats() }

type view struct {
	key  uint64
	next mem.Ptr // raw, may carry the mark bit
}

func (l *List) read(g smr.Guard, slot int, p mem.Ptr) (view, bool) {
	g.Protect(slot, p)
	n := l.pool.Raw(p)
	var v view
	v.key = atomic.LoadUint64(&n.key)
	v.next = mem.Ptr(atomic.LoadUint64(&n.next))
	if !l.pool.Valid(p) {
		if g.NeedsValidation() {
			return view{}, false
		}
		g.OnStale(p)
	}
	return v, true
}

func (l *List) rawNext(g smr.Guard, p mem.Ptr) mem.Ptr {
	n := l.pool.Raw(p)
	v := mem.Ptr(atomic.LoadUint64(&n.next))
	if !l.pool.Valid(p) {
		g.OnStale(p)
	}
	return v
}

func (l *List) casNext(p mem.Ptr, old, new mem.Ptr) bool {
	n := l.pool.MustGet(p)
	return atomic.CompareAndSwapUint64(&n.next, uint64(old), uint64(new))
}

// find locates the unmarked (prev, curr) pair bracketing key, snipping
// marked nodes it encounters. On return the read phase is closed with prev
// and curr reserved, and found reports curr.key == key. curr may be the
// tail sentinel.
func (l *List) find(g smr.Guard, key uint64) (prev, curr mem.Ptr, currV view, found bool) {
tryAgain:
	for {
		g.BeginRead()
		prev = l.head
		prevV, _ := l.read(g, 0, prev)
		curr = prevV.next.Unmarked()
		prevSlot, currSlot := 0, 1
		for {
			if curr == l.tail {
				g.Reserve(0, prev)
				g.Reserve(1, curr)
				g.EndRead()
				return prev, curr, view{key: ds.MaxKey}, false
			}
			var ok bool
			currV, ok = l.read(g, currSlot, curr)
			if !ok {
				continue tryAgain
			}
			// Michael's validation: prev must still point at curr,
			// unmarked. Doubles as the HP/IBR reachability check, and is
			// needed by all schemes for correctness of the snip CAS.
			if l.rawNext(g, prev) != curr {
				continue tryAgain
			}
			if currV.next.Marked() {
				// curr is logically deleted: snip it (auxiliary Φwrite).
				g.Reserve(0, prev)
				g.Reserve(1, curr)
				g.EndRead()
				if !l.casNext(prev, curr, currV.next.Unmarked()) {
					continue tryAgain
				}
				g.Retire(curr)
				if l.variant == Restart {
					continue tryAgain // E4: back to the head (new Φread)
				}
				// Original HM04: resume from prev. Only reachable under
				// schemes without read phases (the matrix rejects NBR).
				g.BeginRead()
				g.Protect(prevSlot, prev)
				curr = l.rawNext(g, prev).Unmarked()
				continue
			}
			if currV.key >= key {
				g.Reserve(0, prev)
				g.Reserve(1, curr)
				g.EndRead()
				return prev, curr, currV, currV.key == key
			}
			prev, prevV = curr, currV
			prevSlot, currSlot = currSlot, prevSlot
			curr = currV.next.Unmarked()
		}
	}
}

// Contains implements ds.Set.
func (l *List) Contains(g smr.Guard, key uint64) bool {
	return smr.Execute(g, func() bool {
		_, _, _, found := l.find(g, key)
		return found
	})
}

// Insert implements ds.Set.
func (l *List) Insert(g smr.Guard, key uint64) bool {
	return smr.Execute(g, func() bool {
		for {
			prev, curr, _, found := l.find(g, key)
			if found {
				return false
			}
			np, nn := l.pool.Alloc(g.Tid()) // write phase: allocation legal
			atomic.StoreUint64(&nn.key, key)
			atomic.StoreUint64(&nn.next, uint64(curr))
			g.OnAlloc(np)
			if l.casNext(prev, curr, np) {
				return true
			}
			l.pool.Free(g.Tid(), np) // unpublished; free directly
		}
	})
}

// Delete implements ds.Set: mark curr (linearization), then try one snip.
func (l *List) Delete(g smr.Guard, key uint64) bool {
	return smr.Execute(g, func() bool {
		for {
			prev, curr, currV, found := l.find(g, key)
			if !found {
				return false
			}
			succ := currV.next // unmarked, else find would have snipped
			if !l.casNext(curr, succ, succ.WithMark()) {
				continue // raced another deleter or inserter; re-find
			}
			// Committed. One snip attempt; a later find retires otherwise.
			if l.casNext(prev, curr, succ) {
				g.Retire(curr)
			}
			return true
		}
	})
}

// Len implements ds.Set (quiescent).
func (l *List) Len() int {
	n := 0
	for p := l.next(l.head); p != l.tail; p = l.next(p) {
		if !mem.Ptr(atomic.LoadUint64(&l.pool.Raw(p).next)).Marked() {
			n++
		}
	}
	return n
}

func (l *List) next(p mem.Ptr) mem.Ptr {
	return mem.Ptr(atomic.LoadUint64(&l.pool.Raw(p).next)).Unmarked()
}

// Validate implements ds.Set (quiescent).
func (l *List) Validate() error {
	prev := ds.MinKey
	p := l.next(l.head)
	for p != l.tail {
		if p.IsNull() {
			return errors.New("hmlist: reachable nil before tail")
		}
		n, ok := l.pool.Get(p)
		if !ok {
			return fmt.Errorf("hmlist: freed node %v reachable", p)
		}
		k := atomic.LoadUint64(&n.key)
		if !mem.Ptr(atomic.LoadUint64(&n.next)).Marked() {
			if k <= prev {
				return fmt.Errorf("hmlist: keys not strictly increasing (%d after %d)", k, prev)
			}
			prev = k
		}
		p = l.next(p)
	}
	return nil
}
