package hmlist_test

import (
	"testing"

	"nbr/internal/bench"
	"nbr/internal/ds/hmlist"
	"nbr/internal/dstest"
	"nbr/internal/smr"
)

func TestMatrixRestart(t *testing.T) {
	dstest.RunAll(t, dstest.Factory{
		Name: "hmlist",
		New: func(threads int) dstest.Instance {
			l := hmlist.New(threads, hmlist.Restart)
			return dstest.Instance{Set: l, Arena: l.Arena()}
		},
	})
}

func TestMatrixNoRestart(t *testing.T) {
	dstest.RunAll(t, dstest.Factory{
		Name: "hmlist-norestart",
		New: func(threads int) dstest.Instance {
			l := hmlist.New(threads, hmlist.NoRestart)
			return dstest.Instance{Set: l, Arena: l.Arena()}
		},
	})
}

func TestNoRestartRejectsNBR(t *testing.T) {
	// Table 1: HM04 without the E4 modification cannot use NBR.
	for _, scheme := range []string{"nbr", "nbr+"} {
		if bench.Runnable("hmlist-norestart", scheme) {
			t.Fatalf("matrix must reject hmlist-norestart under %s", scheme)
		}
	}
	for _, scheme := range []string{"nbr", "nbr+", "debra", "hp"} {
		if !bench.Runnable("hmlist", scheme) {
			t.Fatalf("matrix must admit the restart variant under %s", scheme)
		}
	}
}

func newWithGuard(t *testing.T, scheme string, v hmlist.Variant) (*hmlist.List, smr.Guard) {
	t.Helper()
	l := hmlist.New(1, v)
	s, err := bench.NewScheme(scheme, l.Arena(), 1, bench.DefaultSchemeConfig())
	if err != nil {
		t.Fatal(err)
	}
	return l, s.Guard(0)
}

func TestBasicsBothVariants(t *testing.T) {
	for _, v := range []hmlist.Variant{hmlist.Restart, hmlist.NoRestart} {
		l, g := newWithGuard(t, "debra", v)
		for _, k := range []uint64{4, 2, 8, 6} {
			if !l.Insert(g, k) {
				t.Fatalf("variant %d: Insert(%d) failed", v, k)
			}
		}
		if l.Insert(g, 4) || !l.Contains(g, 6) || l.Contains(g, 5) {
			t.Fatalf("variant %d: membership wrong", v)
		}
		if !l.Delete(g, 2) || l.Delete(g, 2) || l.Len() != 3 {
			t.Fatalf("variant %d: delete wrong", v)
		}
		if err := l.Validate(); err != nil {
			t.Fatalf("variant %d: %v", v, err)
		}
	}
}

func TestHeavyRecycling(t *testing.T) {
	l, g := newWithGuard(t, "nbr+", hmlist.Restart)
	for i := 0; i < 2000; i++ {
		k := uint64(i%3 + 1)
		l.Insert(g, k)
		l.Delete(g, k)
	}
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
}
