// Package ds defines the common interface of the concurrent set data
// structures used in the paper's evaluation, plus shared helpers. Every
// structure stores uint64 keys in (MinKey, MaxKey) — the bounds are sentinel
// values — and is parameterized per call by an smr.Guard, so the same
// implementation runs under every reclamation scheme exactly as in setbench.
package ds

import (
	"nbr/internal/smr"
)

// MinKey and MaxKey bound the usable key space; both are sentinels.
const (
	MinKey uint64 = 0
	MaxKey uint64 = ^uint64(0)
)

// Set is an ordered concurrent set. Len and Validate are quiescent
// operations: callers must ensure no concurrent mutators.
type Set interface {
	// Contains reports key membership.
	Contains(g smr.Guard, key uint64) bool
	// Insert adds key, reporting false if it was already present.
	Insert(g smr.Guard, key uint64) bool
	// Delete removes key, reporting false if it was absent.
	Delete(g smr.Guard, key uint64) bool
	// Len counts the keys currently in the set (quiescent).
	Len() int
	// Validate checks structural invariants (quiescent), returning a
	// descriptive error on corruption.
	Validate() error
}
