// Package ds defines the common interface of the concurrent set data
// structures used in the paper's evaluation, plus shared helpers. Every
// structure stores uint64 keys in (MinKey, MaxKey) — the bounds are sentinel
// values — and is parameterized per call by an smr.Guard, so the same
// implementation runs under every reclamation scheme exactly as in setbench.
package ds

import (
	"nbr/internal/mem"
	"nbr/internal/smr"
)

// MinKey and MaxKey bound the usable key space; both are sentinels.
const (
	MinKey uint64 = 0
	MaxKey uint64 = ^uint64(0)
)

// Requirements declares the per-thread announcement widths a data structure
// needs from its reclamation scheme: Slots is the number of Protect slots
// (hazard-pointer/era announcements), Reservations the number of Reserve
// slots (NBR's R). Every scan a scheme performs walks N·width entries, so a
// structure declaring its true width — the paper's structures need at most
// 3 reservations — shrinks every reclamation scan in the system.
//
// Threshold declares the structure's preferred retire-buffer depth for the
// threshold-triggered schemes (hp/he/ibr/qsbr/rcu), expressed per peer
// thread: the constructed scheme scans at N·Threshold records. It exists to
// decouple scan frequency from Slots — hp's own default is 2·N·Slots, so a
// structure declaring its true (narrow) protection width would otherwise
// drag the scan cadence up with it. 0 keeps each scheme's default.
type Requirements struct {
	Slots        int
	Reservations int
	Threshold    int
}

// DefaultThreshold is the per-peer retire-buffer depth the harness's
// structures declare: 2 records per default hazard slot, matching the scan
// cadence hp's 2·N·Slots default produced before Slots narrowed per-DS.
const DefaultThreshold = 16

// DefaultRequirements is the conservative width used when no structure is
// known at scheme construction: 8 hazard slots (the HP default) and 4
// reservations (one more than any structure in the harness needs).
// Threshold stays 0 (each scheme's own default), which at 8 slots coincides
// with DefaultThreshold·N.
var DefaultRequirements = Requirements{Slots: 8, Reservations: 4}

// NewRetireScratch builds the per-thread RetireBatch scratch buffers the
// subtree-unlinking structures hand to Guard.RetireBatch. Each buffer is
// pre-sized to a full cache line of handles: a smaller backing array would
// land in a sub-line size class and pack several threads' scratches into one
// line, false-sharing every unlink's writes. A handoff that never outgrows
// the capacity is alloc-free and never writes the shared slice header back.
func NewRetireScratch(threads int) [][]mem.Ptr {
	bufs := make([][]mem.Ptr, threads)
	for i := range bufs {
		bufs[i] = make([]mem.Ptr, 0, 8)
	}
	return bufs
}

// Set is an ordered concurrent set. Len and Validate are quiescent
// operations: callers must ensure no concurrent mutators.
type Set interface {
	// Contains reports key membership.
	Contains(g smr.Guard, key uint64) bool
	// Insert adds key, reporting false if it was already present.
	Insert(g smr.Guard, key uint64) bool
	// Delete removes key, reporting false if it was absent.
	Delete(g smr.Guard, key uint64) bool
	// Len counts the keys currently in the set (quiescent).
	Len() int
	// Validate checks structural invariants (quiescent), returning a
	// descriptive error on corruption.
	Validate() error
	// Requirements declares the announcement widths this structure needs
	// from its reclamation scheme; schemes are constructed at exactly
	// these widths, so the harness and correctness suites always run the
	// configuration the structure declares.
	Requirements() Requirements
}
