// Package abtree implements the (a,b)-tree used in the paper's E3
// experiment (Brown's ABTree, B17a). The paper's artifact builds it on
// LLX/SCX; this reproduction substitutes optimistic seqlock-validated
// locking while preserving everything the SMR layer observes (see DESIGN.md
// §2):
//
//   - searches are synchronization-free (seqlock copy-validate reads);
//   - leaves are copy-on-write: every insert and delete replaces a whole
//     leaf and retires the old one, producing the heavy retire traffic that
//     makes the ABTree an SMR stress test;
//   - rebalancing (split, merge, borrow, root collapse) happens as
//     *auxiliary write phases during the descent, each followed by a restart
//     from the root* — the multi read/write-phase pattern of §5.2 that makes
//     the tree NBR-compatible with at most 3 reservations.
//
// Structure: an external (a,b)-tree with A=4, B=16. Internal nodes hold
// `size` children and size−1 routers; child i covers keys k with
// keys[i−1] ≤ k < keys[i]. A fixed `entry` sentinel (size 1) points at the
// root; the root is exempt from the minimum-degree rule. Descents fix any
// full child (inserts) or minimum child (deletes) they meet and restart, so
// rebalancing never cascades.
package abtree

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"

	"nbr/internal/ds"
	"nbr/internal/mem"
	"nbr/internal/smr"
)

const (
	// B is the maximum degree (keys per leaf, children per internal node).
	B = 16
	// A is the minimum degree for non-root nodes.
	A = 4
)

// node is a tree record. lock is a seqlock word (bit 0 = locked, upper bits
// = version); all mutation happens with the lock held, so optimistic
// readers retry on any version change.
type node struct {
	lock     uint64
	leaf     uint32
	dead     uint32
	size     uint32
	_        uint32
	keys     [B]uint64
	children [B]uint64 // mem.Ptr
}

// view is a seqlock-consistent snapshot of a node.
type view struct {
	leaf     bool
	size     int
	keys     [B]uint64
	children [B]mem.Ptr
}

// route returns the child index covering key in an internal view.
func (v *view) route(key uint64) int {
	i := 0
	for i < v.size-1 && key >= v.keys[i] {
		i++
	}
	return i
}

// find returns whether key is present in a leaf view.
func (v *view) find(key uint64) bool {
	for i := 0; i < v.size; i++ {
		if v.keys[i] == key {
			return true
		}
	}
	return false
}

// Tree is an (a,b)-tree set.
type Tree struct {
	pool      *mem.Pool[node]
	entry     mem.Ptr     // fixed sentinel: internal, size 1, children[0] = root
	retireBuf [][]mem.Ptr // per-thread RetireBatch scratch, reused across unlinks
}

// New creates a tree sized for the given number of threads.
func New(threads int) *Tree {
	return NewWith(mem.Config{MaxThreads: threads})
}

// NewWith creates a tree over a pool built from cfg — the constructor a
// shared-arena runtime uses, stamping its assigned arena tag (cfg.Tag) into
// every node handle so a mem.Hub can route frees back here.
func NewWith(cfg mem.Config) *Tree {
	t := &Tree{
		pool:      mem.NewPool[node](cfg),
		retireBuf: ds.NewRetireScratch(cfg.MaxThreads),
	}
	rootP, rootN := t.pool.Alloc(0)
	initNode(rootN, true)
	entryP, entryN := t.pool.Alloc(0)
	initNode(entryN, false)
	atomic.StoreUint32(&entryN.size, 1)
	atomic.StoreUint64(&entryN.children[0], uint64(rootP))
	t.entry = entryP
	return t
}

func initNode(n *node, leaf bool) {
	atomic.StoreUint64(&n.lock, 0)
	var lf uint32
	if leaf {
		lf = 1
	}
	atomic.StoreUint32(&n.leaf, lf)
	atomic.StoreUint32(&n.dead, 0)
	atomic.StoreUint32(&n.size, 0)
	for i := 0; i < B; i++ {
		atomic.StoreUint64(&n.keys[i], 0)
		atomic.StoreUint64(&n.children[i], 0)
	}
}

// Arena exposes the tree's allocator to reclamation schemes.
func (t *Tree) Arena() mem.Arena { return t.pool }

// Requirements implements the per-DS width hook: descents alternate two
// Protect slots (parent/child), and the widest write phase (fixUnderfull)
// reserves parent, child and sibling. The retire threshold is declared
// explicitly so the narrow slot width does not raise the hp/he scan
// frequency.
func (t *Tree) Requirements() ds.Requirements {
	return ds.Requirements{Slots: 2, Reservations: 3, Threshold: ds.DefaultThreshold}
}

// MemStats reports allocator statistics.
func (t *Tree) MemStats() mem.Stats { return t.pool.Stats() }

// read takes a seqlock-consistent snapshot of p. While the node is locked
// the reader spins, re-running the scheme barrier so neutralization signals
// are still delivered promptly.
func (t *Tree) read(g smr.Guard, slot int, p mem.Ptr) (view, bool) {
	g.Protect(slot, p)
	n := t.pool.Raw(p)
	for i := 0; ; i++ {
		v1 := atomic.LoadUint64(&n.lock)
		if v1&1 == 0 {
			var v view
			v.leaf = atomic.LoadUint32(&n.leaf) != 0
			v.size = int(atomic.LoadUint32(&n.size))
			for j := 0; j < B; j++ {
				v.keys[j] = atomic.LoadUint64(&n.keys[j])
				v.children[j] = mem.Ptr(atomic.LoadUint64(&n.children[j]))
			}
			if !t.pool.Valid(p) {
				break
			}
			if atomic.LoadUint64(&n.lock) == v1 {
				if v.size < 0 || v.size > B {
					break // torn beyond repair: treat as stale
				}
				return v, true
			}
			continue // writer raced: retry the snapshot
		}
		if !t.pool.Valid(p) {
			break
		}
		if i&15 == 15 {
			runtime.Gosched()
		}
		g.Protect(slot, p) // keep polling while spinning in Φread
	}
	// The handle went stale while reading.
	if g.NeedsValidation() {
		return view{}, false
	}
	g.OnStale(p)
	return view{}, false
}

// lock acquires a node's seqlock write side.
func (t *Tree) lock(p mem.Ptr) *node {
	n := t.pool.MustGet(p)
	for i := 0; ; i++ {
		v := atomic.LoadUint64(&n.lock)
		if v&1 == 0 && atomic.CompareAndSwapUint64(&n.lock, v, v+1) {
			return n
		}
		if i&15 == 15 {
			runtime.Gosched()
		}
	}
}

func unlock(n *node) { atomic.AddUint64(&n.lock, 1) }

func dead(n *node) bool { return atomic.LoadUint32(&n.dead) != 0 }
func kill(n *node)      { atomic.StoreUint32(&n.dead, 1) }

func childAt(n *node, i int) mem.Ptr {
	return mem.Ptr(atomic.LoadUint64(&n.children[i]))
}

// Contains implements ds.Set: one pure read phase.
func (t *Tree) Contains(g smr.Guard, key uint64) bool {
	return smr.Execute(g, func() bool {
	retry:
		g.BeginRead()
		cur := t.entry
		curV, _ := t.read(g, 0, cur) // the entry sentinel is never freed
		slot := 0
		for !curV.leaf {
			next := curV.children[curV.route(key)]
			slot = (slot + 1) & 1
			nv, ok := t.read(g, slot, next)
			if !ok {
				goto retry
			}
			cur, curV = next, nv
		}
		_ = cur
		g.EndRead()
		return curV.find(key)
	})
}

// Insert implements ds.Set. The descent splits any full child it meets
// (auxiliary write phase + restart from root), so when the leaf is reached
// its parent always has room for a split — though the leaf itself is
// replaced copy-on-write, never split in place.
func (t *Tree) Insert(g smr.Guard, key uint64) bool {
	return smr.Execute(g, func() bool {
		for {
			g.BeginRead()
			parent := t.entry
			parentV, _ := t.read(g, 0, parent)
			pSlot, cSlot := 0, 1
			for {
				i := parentV.route(key)
				child := parentV.children[i]
				childV, ok := t.read(g, cSlot, child)
				if !ok {
					break // stale under a validating scheme: restart
				}
				if childV.size == B {
					// Preemptive split, then restart from the root.
					g.Reserve(0, parent)
					g.Reserve(1, child)
					g.EndRead()
					t.splitChild(g, parent, child, i)
					break
				}
				if childV.leaf {
					if childV.find(key) {
						g.EndRead()
						return false
					}
					g.Reserve(0, parent)
					g.Reserve(1, child)
					g.EndRead()
					if t.insertLeaf(g, parent, child, i, key, &childV) {
						return true
					}
					break // validation failed: restart from the root
				}
				parent, parentV = child, childV
				pSlot, cSlot = cSlot, pSlot
			}
		}
	})
}

// Delete implements ds.Set. The descent fixes any minimum-degree child
// (merge/borrow with a sibling) and collapses a unary root, restarting from
// the root after each auxiliary write phase.
func (t *Tree) Delete(g smr.Guard, key uint64) bool {
	return smr.Execute(g, func() bool {
		for {
			g.BeginRead()
			parent := t.entry
			parentV, _ := t.read(g, 0, parent)
			pSlot, cSlot := 0, 1
			for {
				i := parentV.route(key)
				child := parentV.children[i]
				childV, ok := t.read(g, cSlot, child)
				if !ok {
					break
				}
				atEntry := parent == t.entry
				if atEntry && !childV.leaf && childV.size == 1 {
					// Unary root: collapse it.
					g.Reserve(0, parent)
					g.Reserve(1, child)
					g.EndRead()
					t.collapseRoot(g, child)
					break
				}
				if !atEntry && childV.size <= A {
					// Preemptive merge/borrow with a sibling.
					j := i - 1
					if i == 0 {
						j = 1
					}
					if j >= parentV.size {
						break // parent snapshot inconsistent: restart
					}
					sib := parentV.children[j]
					g.Reserve(0, parent)
					g.Reserve(1, child)
					g.Reserve(2, sib)
					g.EndRead()
					t.fixUnderfull(g, parent, child, i, sib, j)
					break
				}
				if childV.leaf {
					if !childV.find(key) {
						g.EndRead()
						return false
					}
					g.Reserve(0, parent)
					g.Reserve(1, child)
					g.EndRead()
					if t.deleteLeaf(g, parent, child, i, key, &childV) {
						return true
					}
					break
				}
				parent, parentV = child, childV
				pSlot, cSlot = cSlot, pSlot
			}
		}
	})
}

// validateLink re-checks, under the parent's lock, that the parent is live
// and still points at child through slot i.
func validateLink(pn *node, i int, child mem.Ptr) bool {
	return !dead(pn) && i < int(atomic.LoadUint32(&pn.size)) && childAt(pn, i) == child
}

// insertLeaf replaces leaf with a copy containing key. Only the parent is
// locked: leaves are immutable after publication, so the link check proves
// the snapshot is current.
func (t *Tree) insertLeaf(g smr.Guard, parent, leaf mem.Ptr, i int, key uint64, lv *view) bool {
	pn := t.lock(parent)
	if !validateLink(pn, i, leaf) {
		unlock(pn)
		return false
	}
	np, nn := t.pool.Alloc(g.Tid())
	initNode(nn, true)
	pos := 0
	for pos < lv.size && lv.keys[pos] < key {
		pos++
	}
	for j := 0; j < pos; j++ {
		atomic.StoreUint64(&nn.keys[j], lv.keys[j])
	}
	atomic.StoreUint64(&nn.keys[pos], key)
	for j := pos; j < lv.size; j++ {
		atomic.StoreUint64(&nn.keys[j+1], lv.keys[j])
	}
	atomic.StoreUint32(&nn.size, uint32(lv.size+1))
	g.OnAlloc(np)

	ln := t.pool.MustGet(leaf)
	kill(ln)
	atomic.StoreUint64(&pn.children[i], uint64(np))
	unlock(pn)
	g.Retire(leaf)
	return true
}

// deleteLeaf replaces leaf with a copy lacking key.
func (t *Tree) deleteLeaf(g smr.Guard, parent, leaf mem.Ptr, i int, key uint64, lv *view) bool {
	pn := t.lock(parent)
	if !validateLink(pn, i, leaf) {
		unlock(pn)
		return false
	}
	np, nn := t.pool.Alloc(g.Tid())
	initNode(nn, true)
	w := 0
	for j := 0; j < lv.size; j++ {
		if lv.keys[j] != key {
			atomic.StoreUint64(&nn.keys[w], lv.keys[j])
			w++
		}
	}
	atomic.StoreUint32(&nn.size, uint32(w))
	g.OnAlloc(np)

	ln := t.pool.MustGet(leaf)
	kill(ln)
	atomic.StoreUint64(&pn.children[i], uint64(np))
	unlock(pn)
	g.Retire(leaf)
	return true
}

// snapshotLocked copies a locked node's content (internal nodes mutate in
// place, so descent-time views may be stale by lock time).
func snapshotLocked(n *node) view {
	var v view
	v.leaf = atomic.LoadUint32(&n.leaf) != 0
	v.size = int(atomic.LoadUint32(&n.size))
	for j := 0; j < B; j++ {
		v.keys[j] = atomic.LoadUint64(&n.keys[j])
		v.children[j] = mem.Ptr(atomic.LoadUint64(&n.children[j]))
	}
	return v
}

// writeNode fills a fresh node from a view.
func (t *Tree) writeNode(g smr.Guard, v *view) mem.Ptr {
	p, n := t.pool.Alloc(g.Tid())
	initNode(n, v.leaf)
	for j := 0; j < v.size; j++ {
		atomic.StoreUint64(&n.keys[j], v.keys[j])
		atomic.StoreUint64(&n.children[j], uint64(v.children[j]))
	}
	atomic.StoreUint32(&n.size, uint32(v.size))
	g.OnAlloc(p)
	return p
}

// splitChild splits a full child into two halves (copy-on-write), inserting
// the separator router into the parent — or, when the parent is the entry
// sentinel, growing a new root. Restart-from-root follows in the caller.
func (t *Tree) splitChild(g smr.Guard, parent, child mem.Ptr, i int) {
	pn := t.lock(parent)
	if !validateLink(pn, i, child) {
		unlock(pn)
		return
	}
	atEntry := parent == t.entry
	if !atEntry && int(atomic.LoadUint32(&pn.size)) >= B {
		// No room for another child; a later descent splits the parent
		// first (it is full, so the preemptive rule catches it).
		unlock(pn)
		return
	}
	cn := t.lock(child)
	cv := snapshotLocked(cn)
	if dead(cn) || cv.size != B {
		unlock(cn)
		unlock(pn)
		return
	}

	var left, right view
	var sep uint64
	h := B / 2
	if cv.leaf {
		left = view{leaf: true, size: h}
		copy(left.keys[:], cv.keys[:h])
		right = view{leaf: true, size: B - h}
		copy(right.keys[:], cv.keys[h:])
		sep = right.keys[0]
	} else {
		left = view{size: h}
		copy(left.keys[:], cv.keys[:h-1])
		copy(left.children[:], cv.children[:h])
		right = view{size: B - h}
		copy(right.keys[:], cv.keys[h:])
		copy(right.children[:], cv.children[h:])
		sep = cv.keys[h-1]
	}
	lp := t.writeNode(g, &left)
	rp := t.writeNode(g, &right)

	if atEntry {
		// Grow a new root above the split halves.
		var root view
		root.size = 2
		root.keys[0] = sep
		root.children[0] = lp
		root.children[1] = rp
		newRoot := t.writeNode(g, &root)
		atomic.StoreUint64(&pn.children[0], uint64(newRoot))
	} else {
		// Shift parent arrays right of i and splice in the halves.
		psize := int(atomic.LoadUint32(&pn.size))
		for j := psize - 1; j > i; j-- {
			atomic.StoreUint64(&pn.children[j+1], atomic.LoadUint64(&pn.children[j]))
		}
		for j := psize - 2; j >= i; j-- {
			atomic.StoreUint64(&pn.keys[j+1], atomic.LoadUint64(&pn.keys[j]))
		}
		atomic.StoreUint64(&pn.children[i], uint64(lp))
		atomic.StoreUint64(&pn.children[i+1], uint64(rp))
		atomic.StoreUint64(&pn.keys[i], sep)
		atomic.StoreUint32(&pn.size, uint32(psize+1))
	}
	kill(cn)
	unlock(cn)
	unlock(pn)
	g.Retire(child)
}

// fixUnderfull merges or rebalances a minimum-degree child with a sibling
// (both replaced copy-on-write), shrinking or rewriting the parent in place.
func (t *Tree) fixUnderfull(g smr.Guard, parent, child mem.Ptr, i int, sib mem.Ptr, j int) {
	pn := t.lock(parent)
	if !validateLink(pn, i, child) || !validateLink(pn, j, sib) {
		unlock(pn)
		return
	}
	// Lock the two children in index order.
	lo, hi := i, j
	loPtr, hiPtr := child, sib
	if j < i {
		lo, hi = j, i
		loPtr, hiPtr = sib, child
	}
	ln := t.lock(loPtr)
	hn := t.lock(hiPtr)
	lv := snapshotLocked(ln)
	hv := snapshotLocked(hn)
	release := func() {
		unlock(hn)
		unlock(ln)
		unlock(pn)
	}
	if dead(ln) || dead(hn) || lv.leaf != hv.leaf {
		release()
		return
	}
	// Re-check the trigger: the child may have grown since the descent.
	cs := lv.size
	if loPtr != child {
		cs = hv.size
	}
	if cs > A {
		release()
		return
	}
	sep := atomic.LoadUint64(&pn.keys[lo]) // router between lo and hi

	if lv.size+hv.size <= B {
		// Merge into one node.
		var m view
		m.leaf = lv.leaf
		m.size = lv.size + hv.size
		if lv.leaf {
			copy(m.keys[:], lv.keys[:lv.size])
			copy(m.keys[lv.size:], hv.keys[:hv.size])
		} else {
			copy(m.keys[:], lv.keys[:lv.size-1])
			m.keys[lv.size-1] = sep
			copy(m.keys[lv.size:], hv.keys[:hv.size-1])
			copy(m.children[:], lv.children[:lv.size])
			copy(m.children[lv.size:], hv.children[:hv.size])
		}
		mp := t.writeNode(g, &m)
		// Parent: children[lo] = merged; remove children[hi] and keys[lo].
		psize := int(atomic.LoadUint32(&pn.size))
		atomic.StoreUint64(&pn.children[lo], uint64(mp))
		for k := hi; k < psize-1; k++ {
			atomic.StoreUint64(&pn.children[k], atomic.LoadUint64(&pn.children[k+1]))
		}
		for k := lo; k < psize-2; k++ {
			atomic.StoreUint64(&pn.keys[k], atomic.LoadUint64(&pn.keys[k+1]))
		}
		atomic.StoreUint32(&pn.size, uint32(psize-1))
	} else {
		// Borrow: redistribute into two fresh halves. The combined content
		// can exceed one node (that is why we borrow), so use 2B scratch.
		total := lv.size + hv.size
		var keys [2 * B]uint64
		var children [2 * B]mem.Ptr
		if lv.leaf {
			copy(keys[:], lv.keys[:lv.size])
			copy(keys[lv.size:], hv.keys[:hv.size])
		} else {
			copy(keys[:], lv.keys[:lv.size-1])
			keys[lv.size-1] = sep
			copy(keys[lv.size:], hv.keys[:hv.size-1])
			copy(children[:], lv.children[:lv.size])
			copy(children[lv.size:], hv.children[:hv.size])
		}
		h := total / 2
		var nl, nr view
		var newSep uint64
		nl.leaf, nr.leaf = lv.leaf, lv.leaf
		nl.size, nr.size = h, total-h
		if lv.leaf {
			copy(nl.keys[:], keys[:h])
			copy(nr.keys[:], keys[h:total])
			newSep = nr.keys[0]
		} else {
			copy(nl.keys[:], keys[:h-1])
			copy(nl.children[:], children[:h])
			copy(nr.keys[:], keys[h:total-1])
			copy(nr.children[:], children[h:total])
			newSep = keys[h-1]
		}
		nlp := t.writeNode(g, &nl)
		nrp := t.writeNode(g, &nr)
		atomic.StoreUint64(&pn.children[lo], uint64(nlp))
		atomic.StoreUint64(&pn.children[hi], uint64(nrp))
		atomic.StoreUint64(&pn.keys[lo], newSep)
	}
	kill(ln)
	kill(hn)
	release()
	// Both halves of the subtree go to the scheme in one batch: one
	// watermark check and at most one scan for the whole unlink (the
	// scratch handoff is alloc-free — see ds.NewRetireScratch).
	g.RetireBatch(append(t.retireBuf[g.Tid()][:0], loPtr, hiPtr))
}

// collapseRoot replaces a unary internal root with its only child.
func (t *Tree) collapseRoot(g smr.Guard, root mem.Ptr) {
	en := t.lock(t.entry)
	if childAt(en, 0) != root {
		unlock(en)
		return
	}
	rn := t.lock(root)
	if dead(rn) || atomic.LoadUint32(&rn.leaf) != 0 || atomic.LoadUint32(&rn.size) != 1 {
		unlock(rn)
		unlock(en)
		return
	}
	atomic.StoreUint64(&en.children[0], atomic.LoadUint64(&rn.children[0]))
	kill(rn)
	unlock(rn)
	unlock(en)
	g.Retire(root)
}

// Len implements ds.Set (quiescent).
func (t *Tree) Len() int {
	root := childAt(t.pool.Raw(t.entry), 0)
	return t.count(root)
}

func (t *Tree) count(p mem.Ptr) int {
	n := t.pool.Raw(p)
	if atomic.LoadUint32(&n.leaf) != 0 {
		return int(atomic.LoadUint32(&n.size))
	}
	total := 0
	for i := 0; i < int(atomic.LoadUint32(&n.size)); i++ {
		total += t.count(childAt(n, i))
	}
	return total
}

// Validate implements ds.Set (quiescent): size bounds, routing windows,
// sorted leaves, uniform leaf depth, live handles, no dead nodes reachable.
func (t *Tree) Validate() error {
	root := childAt(t.pool.Raw(t.entry), 0)
	_, err := t.validate(root, ds.MinKey, ds.MaxKey, true)
	return err
}

func (t *Tree) validate(p mem.Ptr, lo, hi uint64, isRoot bool) (depth int, err error) {
	if p.IsNull() {
		return 0, errors.New("abtree: nil child reachable")
	}
	n, ok := t.pool.Get(p)
	if !ok {
		return 0, fmt.Errorf("abtree: freed node %v reachable", p)
	}
	if dead(n) {
		return 0, fmt.Errorf("abtree: dead node %v reachable", p)
	}
	size := int(atomic.LoadUint32(&n.size))
	leaf := atomic.LoadUint32(&n.leaf) != 0
	if size > B {
		return 0, fmt.Errorf("abtree: node size %d exceeds B=%d", size, B)
	}
	if leaf {
		if !isRoot && size < A {
			return 0, fmt.Errorf("abtree: leaf size %d below A=%d", size, A)
		}
		prev := lo
		first := true
		for i := 0; i < size; i++ {
			k := atomic.LoadUint64(&n.keys[i])
			if k < lo || k >= hi {
				return 0, fmt.Errorf("abtree: leaf key %d outside window [%d, %d)", k, lo, hi)
			}
			if !first && k <= prev {
				return 0, fmt.Errorf("abtree: leaf keys not sorted (%d after %d)", k, prev)
			}
			prev, first = k, false
		}
		return 1, nil
	}
	min := A
	if isRoot {
		min = 2
	}
	if size < min {
		return 0, fmt.Errorf("abtree: internal size %d below minimum %d", size, min)
	}
	childLo := lo
	var childDepth int
	for i := 0; i < size; i++ {
		childHi := hi
		if i < size-1 {
			childHi = atomic.LoadUint64(&n.keys[i])
			if childHi < childLo || childHi > hi {
				return 0, fmt.Errorf("abtree: router %d outside window [%d, %d)", childHi, lo, hi)
			}
		}
		d, err := t.validate(childAt(n, i), childLo, childHi, false)
		if err != nil {
			return 0, err
		}
		if i == 0 {
			childDepth = d
		} else if d != childDepth {
			return 0, fmt.Errorf("abtree: unbalanced — leaf depth %d vs %d", d, childDepth)
		}
		if i < size-1 {
			childLo = childHi
		}
	}
	return childDepth + 1, nil
}
