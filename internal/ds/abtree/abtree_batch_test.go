package abtree_test

import (
	"sync"
	"testing"

	"nbr/internal/bench"
	"nbr/internal/ds/abtree"
)

// TestSubtreeUnlinkStress hammers the merge/borrow path — the tree's
// RetireBatch call site, which unlinks two nodes per fixUnderfull — under
// every scheme the applicability matrix admits. Each thread repeatedly
// deletes its own key stride (draining leaves below the minimum degree, so
// descents trigger merges) and re-inserts it, with aggressive reclamation
// settings so batches hit the watermark/threshold logic constantly. The
// strides are disjoint, so the final membership is exact; Validate plus the
// allocator's generation checks catch any batch-retire unsoundness.
func TestSubtreeUnlinkStress(t *testing.T) {
	const (
		threads = 4
		keys    = 1 << 11
		waves   = 3
	)
	cfg := bench.SchemeConfig{
		BagSize:    128,
		LoFraction: 0.5,
		ScanFreq:   4,
		Threshold:  48,
		EraFreq:    16,
	}
	for _, scheme := range bench.SchemeNames {
		if !bench.Runnable("abtree", scheme) {
			continue
		}
		t.Run(scheme, func(t *testing.T) {
			tr := abtree.New(threads)
			sch, err := bench.NewSchemeFor(scheme, tr.Arena(), threads, cfg, tr.Requirements())
			if err != nil {
				t.Fatal(err)
			}
			g0 := sch.Guard(0)
			for k := uint64(1); k <= keys; k++ {
				if !tr.Insert(g0, k) {
					t.Fatalf("prefill Insert(%d) failed", k)
				}
			}
			var wg sync.WaitGroup
			for tid := 0; tid < threads; tid++ {
				wg.Add(1)
				go func(tid int) {
					defer wg.Done()
					g := sch.Guard(tid)
					for wave := 0; wave < waves; wave++ {
						for k := uint64(tid + 1); k <= keys; k += threads {
							if !tr.Delete(g, k) {
								t.Errorf("Delete(%d) lost a key it owns", k)
								return
							}
						}
						for k := uint64(tid + 1); k <= keys; k += threads {
							if !tr.Insert(g, k) {
								t.Errorf("Insert(%d) found a key it just deleted", k)
								return
							}
						}
					}
				}(tid)
			}
			wg.Wait()
			if t.Failed() {
				return
			}
			if got := tr.Len(); got != keys {
				t.Fatalf("Len = %d, want %d after balanced delete/insert waves", got, keys)
			}
			if err := tr.Validate(); err != nil {
				t.Fatal(err)
			}
			st := sch.Stats()
			if st.Freed > st.Retired {
				t.Fatalf("freed %d > retired %d", st.Freed, st.Retired)
			}
			if scheme != "none" && st.Retired == 0 {
				t.Fatal("stress produced no retire traffic")
			}
		})
	}
}
