package abtree_test

import (
	"math/rand"
	"testing"

	"nbr/internal/bench"
	"nbr/internal/ds/abtree"
	"nbr/internal/dstest"
	"nbr/internal/smr"
)

func factory() dstest.Factory {
	return dstest.Factory{
		Name: "abtree",
		New: func(threads int) dstest.Instance {
			tr := abtree.New(threads)
			return dstest.Instance{Set: tr, Arena: tr.Arena()}
		},
	}
}

func TestMatrix(t *testing.T) { dstest.RunAll(t, factory()) }

func newWithGuard(t *testing.T, scheme string) (*abtree.Tree, smr.Guard) {
	t.Helper()
	tr := abtree.New(1)
	s, err := bench.NewScheme(scheme, tr.Arena(), 1, bench.DefaultSchemeConfig())
	if err != nil {
		t.Fatal(err)
	}
	return tr, s.Guard(0)
}

func TestEmptyTree(t *testing.T) {
	tr, g := newWithGuard(t, "nbr+")
	if tr.Len() != 0 || tr.Contains(g, 1) || tr.Delete(g, 1) {
		t.Fatal("fresh tree must be empty")
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAscendingInsertSplits(t *testing.T) {
	tr, g := newWithGuard(t, "nbr+")
	const n = 500
	for k := uint64(1); k <= n; k++ {
		if !tr.Insert(g, k) {
			t.Fatalf("Insert(%d) failed", k)
		}
	}
	if tr.Len() != n {
		t.Fatalf("Len = %d, want %d", tr.Len(), n)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	for k := uint64(1); k <= n; k++ {
		if !tr.Contains(g, k) {
			t.Fatalf("missing key %d", k)
		}
	}
	if tr.Contains(g, n+1) {
		t.Fatal("phantom key")
	}
}

func TestDescendingInsertSplits(t *testing.T) {
	tr, g := newWithGuard(t, "debra")
	const n = 500
	for k := uint64(n); k >= 1; k-- {
		if !tr.Insert(g, k) {
			t.Fatalf("Insert(%d) failed", k)
		}
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != n {
		t.Fatalf("Len = %d", tr.Len())
	}
}

func TestDeleteTriggersMergesAndCollapse(t *testing.T) {
	tr, g := newWithGuard(t, "nbr+")
	const n = 800
	for k := uint64(1); k <= n; k++ {
		tr.Insert(g, k)
	}
	// Delete everything in an interleaved order to hit merges, borrows and
	// root collapses at every level.
	for stride := uint64(7); stride >= 1; stride-- {
		for k := stride; k <= n; k += 7 {
			if tr.Delete(g, k) {
				if err := tr.Validate(); err != nil {
					t.Fatalf("after Delete(%d): %v", k, err)
				}
			}
		}
	}
	for k := uint64(1); k <= n; k++ {
		tr.Delete(g, k)
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d after deleting everything", tr.Len())
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDuplicateSemantics(t *testing.T) {
	tr, g := newWithGuard(t, "rcu")
	if !tr.Insert(g, 5) || tr.Insert(g, 5) {
		t.Fatal("duplicate insert semantics")
	}
	if !tr.Delete(g, 5) || tr.Delete(g, 5) {
		t.Fatal("duplicate delete semantics")
	}
}

func TestRandomizedAgainstModel(t *testing.T) {
	tr, g := newWithGuard(t, "nbr")
	model := map[uint64]bool{}
	rng := rand.New(rand.NewSource(13))
	ops := 12000
	if testing.Short() {
		ops = 2000
	}
	for i := 0; i < ops; i++ {
		k := uint64(rng.Intn(400)) + 1
		switch rng.Intn(3) {
		case 0:
			if tr.Insert(g, k) == model[k] {
				t.Fatalf("op %d: Insert(%d) disagrees with model", i, k)
			}
			model[k] = true
		case 1:
			if tr.Delete(g, k) != model[k] {
				t.Fatalf("op %d: Delete(%d) disagrees with model", i, k)
			}
			delete(model, k)
		default:
			if tr.Contains(g, k) != model[k] {
				t.Fatalf("op %d: Contains(%d) disagrees with model", i, k)
			}
		}
		if i%1000 == 999 {
			if err := tr.Validate(); err != nil {
				t.Fatalf("op %d: %v", i, err)
			}
		}
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRetireTrafficIsCopyOnWrite(t *testing.T) {
	// Every successful update must retire at least one node (the replaced
	// leaf) — the property that makes the ABTree an SMR stress test.
	tr, g := newWithGuard(t, "debra")
	sch, err := bench.NewScheme("debra", tr.Arena(), 1, bench.DefaultSchemeConfig())
	if err != nil {
		t.Fatal(err)
	}
	g = sch.Guard(0)
	for k := uint64(1); k <= 200; k++ {
		tr.Insert(g, k)
	}
	before := sch.Stats().Retired
	for k := uint64(1); k <= 200; k++ {
		tr.Delete(g, k)
	}
	after := sch.Stats().Retired
	if after-before < 200 {
		t.Fatalf("only %d retires for 200 deletes; leaves are not copy-on-write", after-before)
	}
}
