package abtree_test

import (
	"testing"
	"testing/quick"

	"nbr/internal/bench"
	"nbr/internal/ds/abtree"
)

// TestQuickSetSemantics randomizes operations against a map model with the
// structural validator run periodically, under a tiny limbo bag so COW
// leaves recycle constantly.
func TestQuickSetSemantics(t *testing.T) {
	tr := abtree.New(1)
	cfg := bench.DefaultSchemeConfig()
	cfg.BagSize = 64
	s, err := bench.NewScheme("nbr+", tr.Arena(), 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	g := s.Guard(0)
	model := map[uint64]bool{}
	n := 0
	f := func(key uint16, op uint8) bool {
		k := uint64(key%300) + 1
		n++
		if n%500 == 0 {
			if err := tr.Validate(); err != nil {
				t.Fatalf("structural invariant broken mid-run: %v", err)
			}
		}
		switch op % 3 {
		case 0:
			ok := tr.Insert(g, k) == !model[k]
			model[k] = true
			return ok
		case 1:
			ok := tr.Delete(g, k) == model[k]
			delete(model, k)
			return ok
		default:
			return tr.Contains(g, k) == model[k]
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 6000}); err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, p := range model {
		if p {
			want++
		}
	}
	if tr.Len() != want {
		t.Fatalf("Len = %d, model = %d", tr.Len(), want)
	}
}

// TestGrowShrinkCycles drives the tree through repeated full grow/shrink
// cycles, exercising root growth and collapse in both directions.
func TestGrowShrinkCycles(t *testing.T) {
	tr := abtree.New(1)
	s, err := bench.NewScheme("debra", tr.Arena(), 1, bench.DefaultSchemeConfig())
	if err != nil {
		t.Fatal(err)
	}
	g := s.Guard(0)
	const n = 300
	for cycle := 0; cycle < 4; cycle++ {
		for k := uint64(1); k <= n; k++ {
			if !tr.Insert(g, k) {
				t.Fatalf("cycle %d: Insert(%d) failed", cycle, k)
			}
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("cycle %d grown: %v", cycle, err)
		}
		for k := uint64(1); k <= n; k++ {
			if !tr.Delete(g, k) {
				t.Fatalf("cycle %d: Delete(%d) failed", cycle, k)
			}
		}
		if tr.Len() != 0 {
			t.Fatalf("cycle %d: Len = %d after full delete", cycle, tr.Len())
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("cycle %d shrunk: %v", cycle, err)
		}
	}
}
