package dgtbst_test

import (
	"math/rand"
	"testing"

	"nbr/internal/bench"
	"nbr/internal/ds/dgtbst"
	"nbr/internal/dstest"
	"nbr/internal/smr"
)

func factory() dstest.Factory {
	return dstest.Factory{
		Name: "dgt",
		New: func(threads int) dstest.Instance {
			tr := dgtbst.New(threads)
			return dstest.Instance{Set: tr, Arena: tr.Arena()}
		},
	}
}

func TestMatrix(t *testing.T) { dstest.RunAll(t, factory()) }

func newWithGuard(t *testing.T, scheme string) (*dgtbst.Tree, smr.Guard) {
	t.Helper()
	tr := dgtbst.New(1)
	s, err := bench.NewScheme(scheme, tr.Arena(), 1, bench.DefaultSchemeConfig())
	if err != nil {
		t.Fatal(err)
	}
	return tr, s.Guard(0)
}

func TestEmptyTree(t *testing.T) {
	tr, g := newWithGuard(t, "nbr+")
	if tr.Len() != 0 || tr.Contains(g, 7) || tr.Delete(g, 7) {
		t.Fatal("fresh tree must be empty")
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertDeleteShapes(t *testing.T) {
	tr, g := newWithGuard(t, "nbr+")
	keys := []uint64{50, 25, 75, 10, 30, 60, 90, 5, 15}
	for _, k := range keys {
		if !tr.Insert(g, k) {
			t.Fatalf("Insert(%d) failed", k)
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("after Insert(%d): %v", k, err)
		}
	}
	if tr.Len() != len(keys) {
		t.Fatalf("Len = %d", tr.Len())
	}
	// Delete in an order that exercises leaf/router splices at every depth.
	for i, k := range []uint64{5, 90, 25, 50, 15, 10, 30, 60, 75} {
		if !tr.Delete(g, k) {
			t.Fatalf("Delete(%d) failed", k)
		}
		if tr.Contains(g, k) {
			t.Fatalf("deleted key %d still present", k)
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("after Delete(%d): %v", k, err)
		}
		if tr.Len() != len(keys)-i-1 {
			t.Fatalf("Len = %d after %d deletes", tr.Len(), i+1)
		}
	}
}

func TestSingleKeyLifecycle(t *testing.T) {
	tr, g := newWithGuard(t, "debra")
	for i := 0; i < 1500; i++ {
		if !tr.Insert(g, 99) || tr.Insert(g, 99) {
			t.Fatalf("cycle %d: insert semantics", i)
		}
		if !tr.Delete(g, 99) || tr.Delete(g, 99) {
			t.Fatalf("cycle %d: delete semantics", i)
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d", tr.Len())
	}
}

func TestRandomizedAgainstModel(t *testing.T) {
	tr, g := newWithGuard(t, "nbr")
	model := map[uint64]bool{}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 6000; i++ {
		k := uint64(rng.Intn(200)) + 1
		switch rng.Intn(3) {
		case 0:
			if tr.Insert(g, k) == model[k] {
				t.Fatalf("op %d: Insert(%d) disagrees with model", i, k)
			}
			model[k] = true
		case 1:
			if tr.Delete(g, k) != model[k] {
				t.Fatalf("op %d: Delete(%d) disagrees with model", i, k)
			}
			delete(model, k)
		default:
			if tr.Contains(g, k) != model[k] {
				t.Fatalf("op %d: Contains(%d) disagrees with model", i, k)
			}
		}
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}
