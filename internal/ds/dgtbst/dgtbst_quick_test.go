package dgtbst_test

import (
	"testing"
	"testing/quick"

	"nbr/internal/bench"
	"nbr/internal/ds/dgtbst"
)

// TestQuickSetSemantics randomizes operations against a map model under a
// tiny limbo bag (internal routers and leaves recycle constantly).
func TestQuickSetSemantics(t *testing.T) {
	tr := dgtbst.New(1)
	cfg := bench.DefaultSchemeConfig()
	cfg.BagSize = 64
	s, err := bench.NewScheme("nbr+", tr.Arena(), 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	g := s.Guard(0)
	model := map[uint64]bool{}
	f := func(key uint16, op uint8) bool {
		k := uint64(key%128) + 1
		switch op % 3 {
		case 0:
			ok := tr.Insert(g, k) == !model[k]
			model[k] = true
			return ok
		case 1:
			ok := tr.Delete(g, k) == model[k]
			delete(model, k)
			return ok
		default:
			return tr.Contains(g, k) == model[k]
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, p := range model {
		if p {
			want++
		}
	}
	if tr.Len() != want {
		t.Fatalf("Len = %d, model = %d", tr.Len(), want)
	}
}

// TestDeleteRetiresRouterAndLeaf pins DGT's retire signature: every
// successful delete retires exactly two records (router + leaf), every
// insert retires none.
func TestDeleteRetiresRouterAndLeaf(t *testing.T) {
	tr := dgtbst.New(1)
	s, err := bench.NewScheme("debra", tr.Arena(), 1, bench.DefaultSchemeConfig())
	if err != nil {
		t.Fatal(err)
	}
	g := s.Guard(0)
	for k := uint64(1); k <= 64; k++ {
		tr.Insert(g, k)
	}
	if got := s.Stats().Retired; got != 0 {
		t.Fatalf("inserts retired %d records", got)
	}
	for k := uint64(1); k <= 64; k++ {
		tr.Delete(g, k)
	}
	if got := s.Stats().Retired; got != 128 {
		t.Fatalf("64 deletes retired %d records, want 128", got)
	}
}
