// Package dgtbst implements the external binary search tree with ticket
// locks of David, Guerraoui and Trigonakis (DGT15, "asynchronized
// concurrency"), the paper's representative tree workload (E1, Fig. 3a and
// Fig. 5).
//
// The tree is leaf-oriented: internal nodes only route (key k sends
// searches with key < k left), leaves hold the set. Searches are
// synchronization-free; an insert locks one node (the parent) and a delete
// locks two (grandparent and parent), validating the locked window before
// mutating — the exact "search Φread, then lock reserved records in Φwrite"
// shape NBR wants, with at most 3 reservations. DGT has no marked pointers,
// which is why Table 1 rules hazard pointers out (no reachability
// validation); like the paper's benchmark we run HP anyway using child-link
// re-reads plus the allocator's generation check.
package dgtbst

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"

	"nbr/internal/ds"
	"nbr/internal/mem"
	"nbr/internal/smr"
)

// node is both internal and leaf record; a node is a leaf iff left == Null.
type node struct {
	key     uint64
	left    uint64 // mem.Ptr
	right   uint64 // mem.Ptr
	ticket  uint64 // ticket lock: [next:32 | owner:32]
	removed uint32
}

type view struct {
	key   uint64
	left  mem.Ptr
	right mem.Ptr
}

func (v view) leaf() bool { return v.left.IsNull() }

// Tree is a DGT external BST set. Keys must stay below ds.MaxKey-1 (the two
// largest values are the sentinel leaves).
type Tree struct {
	pool      *mem.Pool[node]
	root      mem.Ptr     // sentinel internal node; never removed
	retireBuf [][]mem.Ptr // per-thread RetireBatch scratch, reused across deletes
}

// New creates a tree sized for the given number of threads.
func New(threads int) *Tree {
	return NewWith(mem.Config{MaxThreads: threads})
}

// NewWith creates a tree over a pool built from cfg — the constructor a
// shared-arena runtime uses, stamping its assigned arena tag (cfg.Tag) into
// every node handle so a mem.Hub can route frees back here.
func NewWith(cfg mem.Config) *Tree {
	t := &Tree{
		pool:      mem.NewPool[node](cfg),
		retireBuf: ds.NewRetireScratch(cfg.MaxThreads),
	}
	l1, n1 := t.pool.Alloc(0) // left sentinel leaf: MaxKey-1
	atomic.StoreUint64(&n1.key, ds.MaxKey-1)
	l2, n2 := t.pool.Alloc(0) // right sentinel leaf: MaxKey
	atomic.StoreUint64(&n2.key, ds.MaxKey)
	rp, rn := t.pool.Alloc(0)
	atomic.StoreUint64(&rn.key, ds.MaxKey-1)
	atomic.StoreUint64(&rn.left, uint64(l1))
	atomic.StoreUint64(&rn.right, uint64(l2))
	t.root = rp
	return t
}

// Arena exposes the tree's allocator to reclamation schemes.
func (t *Tree) Arena() mem.Arena { return t.pool }

// Requirements implements the per-DS width hook: the search keeps
// grandparent, parent and leaf protected in three rotating slots, and a
// delete reserves the same three records. The retire threshold is declared
// explicitly so the narrow slot width does not raise the hp/he scan
// frequency.
func (t *Tree) Requirements() ds.Requirements {
	return ds.Requirements{Slots: 3, Reservations: 3, Threshold: ds.DefaultThreshold}
}

// MemStats reports allocator statistics.
func (t *Tree) MemStats() mem.Stats { return t.pool.Stats() }

func (t *Tree) read(g smr.Guard, slot int, p mem.Ptr) (view, bool) {
	g.Protect(slot, p)
	n := t.pool.Raw(p)
	var v view
	v.key = atomic.LoadUint64(&n.key)
	v.left = mem.Ptr(atomic.LoadUint64(&n.left))
	v.right = mem.Ptr(atomic.LoadUint64(&n.right))
	if !t.pool.Valid(p) {
		if g.NeedsValidation() {
			return view{}, false
		}
		g.OnStale(p)
	}
	return v, true
}

// validateChild is the HP/IBR reachability validation: it proves `next` was
// reachable through par (hence not yet retired) when the child link was
// re-read. The removed flag is set before a node is unlinked and never
// cleared, so loading it *after* the link makes the check sound: if par was
// not removed after the re-read, par was linked during it, and a linked
// parent's child is reachable. This flag is what stands in for the marks
// DGT15 lacks (Table 1's objection) — see the package comment.
func (t *Tree) validateChild(g smr.Guard, par mem.Ptr, goLeft bool, next mem.Ptr) bool {
	n := t.pool.Raw(par)
	var c mem.Ptr
	if goLeft {
		c = mem.Ptr(atomic.LoadUint64(&n.left))
	} else {
		c = mem.Ptr(atomic.LoadUint64(&n.right))
	}
	rm := atomic.LoadUint32(&n.removed) != 0
	if !t.pool.Valid(par) {
		g.OnStale(par)
	}
	return c == next && !rm
}

// search descends to a leaf, keeping the grandparent, parent and leaf
// protected in slots 0, 1, 2 (rotating). On return the read phase is still
// open. gpar is Null only when the leaf hangs directly off the root.
func (t *Tree) search(g smr.Guard, key uint64) (gpar, par, leaf mem.Ptr, gparV, parV, leafV view) {
retry:
	g.BeginRead()
	gpar, par = mem.Null, mem.Null
	cur := t.root
	curV, _ := t.read(g, 0, cur) // the root sentinel is never freed
	slot := 0
	for !curV.leaf() {
		gpar, gparV = par, parV
		par, parV = cur, curV
		goLeft := key < curV.key
		next := curV.left
		if !goLeft {
			next = curV.right
		}
		slot = (slot + 1) % 3
		nv, ok := t.read(g, slot, next)
		if !ok {
			goto retry
		}
		if g.NeedsValidation() && !t.validateChild(g, par, goLeft, next) {
			goto retry
		}
		cur, curV = next, nv
	}
	leaf, leafV = cur, curV
	return
}

// lock acquires a node's ticket lock (FAA for the ticket, spin on owner).
// The node must be protected; MustGet asserts it.
func (t *Tree) lock(p mem.Ptr) *node {
	n := t.pool.MustGet(p)
	ticket := (atomic.AddUint64(&n.ticket, 1<<32) >> 32) - 1
	for i := 0; atomic.LoadUint64(&n.ticket)&0xffffffff != ticket; i++ {
		if i&15 == 15 {
			runtime.Gosched()
		}
	}
	return n
}

func (t *Tree) unlock(n *node) {
	atomic.AddUint64(&n.ticket, 1)
}

func removed(n *node) bool { return atomic.LoadUint32(&n.removed) != 0 }

func childOf(n *node, goLeft bool) mem.Ptr {
	if goLeft {
		return mem.Ptr(atomic.LoadUint64(&n.left))
	}
	return mem.Ptr(atomic.LoadUint64(&n.right))
}

func setChild(n *node, goLeft bool, c mem.Ptr) {
	if goLeft {
		atomic.StoreUint64(&n.left, uint64(c))
	} else {
		atomic.StoreUint64(&n.right, uint64(c))
	}
}

// Contains implements ds.Set: a pure read phase.
func (t *Tree) Contains(g smr.Guard, key uint64) bool {
	return smr.Execute(g, func() bool {
		_, _, _, _, _, leafV := t.search(g, key)
		g.EndRead()
		return leafV.key == key
	})
}

// Insert implements ds.Set: one lock (parent), replacing the leaf with a
// routing node over {leaf, new leaf}.
func (t *Tree) Insert(g smr.Guard, key uint64) bool {
	return smr.Execute(g, func() bool {
		for {
			_, par, leaf, _, parV, leafV := t.search(g, key)
			if leafV.key == key {
				g.EndRead()
				return false
			}
			g.Reserve(0, par)
			g.Reserve(1, leaf)
			g.EndRead()
			goLeft := key < parV.key
			pn := t.lock(par)
			if removed(pn) || childOf(pn, goLeft) != leaf {
				t.unlock(pn)
				continue // fresh read phase from the root
			}
			// Build leaf' and the router in the write phase.
			lp, ln := t.pool.Alloc(g.Tid())
			atomic.StoreUint64(&ln.key, key)
			atomic.StoreUint64(&ln.left, uint64(mem.Null))
			atomic.StoreUint64(&ln.right, uint64(mem.Null))
			atomic.StoreUint64(&ln.ticket, 0)
			atomic.StoreUint32(&ln.removed, 0)
			g.OnAlloc(lp)

			ip, in := t.pool.Alloc(g.Tid())
			if key < leafV.key {
				atomic.StoreUint64(&in.key, leafV.key)
				atomic.StoreUint64(&in.left, uint64(lp))
				atomic.StoreUint64(&in.right, uint64(leaf))
			} else {
				atomic.StoreUint64(&in.key, key)
				atomic.StoreUint64(&in.left, uint64(leaf))
				atomic.StoreUint64(&in.right, uint64(lp))
			}
			atomic.StoreUint64(&in.ticket, 0)
			atomic.StoreUint32(&in.removed, 0)
			g.OnAlloc(ip)

			setChild(pn, goLeft, ip)
			t.unlock(pn)
			return true
		}
	})
}

// Delete implements ds.Set: two locks (grandparent, parent), splicing the
// sibling into the grandparent and retiring parent and leaf.
func (t *Tree) Delete(g smr.Guard, key uint64) bool {
	return smr.Execute(g, func() bool {
		for {
			gpar, par, leaf, gparV, parV, leafV := t.search(g, key)
			if leafV.key != key {
				g.EndRead()
				return false
			}
			if gpar.IsNull() {
				// The leaf hangs off the root sentinel; only the sentinel
				// leaves do, and their keys are outside the user range.
				g.EndRead()
				return false
			}
			g.Reserve(0, gpar)
			g.Reserve(1, par)
			g.Reserve(2, leaf)
			g.EndRead()
			gLeft := key < gparV.key
			pLeft := key < parV.key
			gn := t.lock(gpar)
			pn := t.lock(par)
			if removed(gn) || removed(pn) ||
				childOf(gn, gLeft) != par || childOf(pn, pLeft) != leaf {
				t.unlock(pn)
				t.unlock(gn)
				continue
			}
			sibling := childOf(pn, !pLeft)
			atomic.StoreUint32(&pn.removed, 1)
			ln := t.pool.MustGet(leaf)
			atomic.StoreUint32(&ln.removed, 1)
			setChild(gn, gLeft, sibling)
			t.unlock(pn)
			t.unlock(gn)
			// The spliced-out subtree (router + leaf) goes to the scheme in
			// one batch: one watermark check for the whole unlink (the
			// scratch handoff is alloc-free — see ds.NewRetireScratch).
			g.RetireBatch(append(t.retireBuf[g.Tid()][:0], par, leaf))
			return true
		}
	})
}

// Len implements ds.Set (quiescent): counts non-sentinel leaves.
func (t *Tree) Len() int {
	return t.count(t.root)
}

func (t *Tree) count(p mem.Ptr) int {
	n := t.pool.Raw(p)
	l := mem.Ptr(atomic.LoadUint64(&n.left))
	if l.IsNull() {
		if k := atomic.LoadUint64(&n.key); k < ds.MaxKey-1 {
			return 1
		}
		return 0
	}
	r := mem.Ptr(atomic.LoadUint64(&n.right))
	return t.count(l) + t.count(r)
}

// Validate implements ds.Set (quiescent): external-tree shape, routing
// invariants and handle liveness.
func (t *Tree) Validate() error {
	return t.validate(t.root, ds.MinKey, ds.MaxKey)
}

func (t *Tree) validate(p mem.Ptr, lo, hi uint64) error {
	if p.IsNull() {
		return errors.New("dgtbst: nil child reachable")
	}
	n, ok := t.pool.Get(p)
	if !ok {
		return fmt.Errorf("dgtbst: freed node %v reachable", p)
	}
	k := atomic.LoadUint64(&n.key)
	if k < lo || k > hi {
		return fmt.Errorf("dgtbst: key %d outside routing window [%d, %d]", k, lo, hi)
	}
	if removed(n) {
		return fmt.Errorf("dgtbst: removed node %d still reachable", k)
	}
	l := mem.Ptr(atomic.LoadUint64(&n.left))
	r := mem.Ptr(atomic.LoadUint64(&n.right))
	if l.IsNull() != r.IsNull() {
		return fmt.Errorf("dgtbst: node %d has exactly one child (external tree)", k)
	}
	if l.IsNull() {
		return nil
	}
	// Routing: key < node.key goes left. Leaf keys left of k are strictly
	// smaller, but router keys may equal k at the sentinel edge (the
	// infinity router duplicates its key, as in NM14-style external BSTs),
	// so the windows are inclusive on both boundaries.
	if err := t.validate(l, lo, k); err != nil {
		return err
	}
	return t.validate(r, k, hi)
}
