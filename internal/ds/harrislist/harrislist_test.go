package harrislist_test

import (
	"testing"

	"nbr/internal/bench"
	"nbr/internal/ds/harrislist"
	"nbr/internal/dstest"
	"nbr/internal/smr"
)

func factory() dstest.Factory {
	return dstest.Factory{
		Name: "harris",
		New: func(threads int) dstest.Instance {
			l := harrislist.New(threads)
			return dstest.Instance{Set: l, Arena: l.Arena()}
		},
		// The deterministic oversized-splice input: the Harris list is the
		// one structure whose unlink length is unbounded (a whole marked
		// chain in one CAS), so it carries the BoundChain regression.
		Chain: func(inst dstest.Instance, g smr.Guard, n int) int {
			return inst.Set.(*harrislist.List).BuildMarkedChain(g, n)
		},
	}
}

func TestMatrix(t *testing.T) { dstest.RunAll(t, factory()) }

func newWithGuard(t *testing.T, scheme string) (*harrislist.List, smr.Guard) {
	t.Helper()
	l := harrislist.New(1)
	s, err := bench.NewScheme(scheme, l.Arena(), 1, bench.DefaultSchemeConfig())
	if err != nil {
		t.Fatal(err)
	}
	return l, s.Guard(0)
}

func TestBasics(t *testing.T) {
	l, g := newWithGuard(t, "nbr+")
	if l.Len() != 0 || l.Contains(g, 1) {
		t.Fatal("fresh list must be empty")
	}
	for _, k := range []uint64{5, 1, 9, 3, 7} {
		if !l.Insert(g, k) {
			t.Fatalf("Insert(%d) failed", k)
		}
	}
	if l.Insert(g, 5) {
		t.Fatal("duplicate insert succeeded")
	}
	if l.Len() != 5 {
		t.Fatalf("Len = %d", l.Len())
	}
	if !l.Delete(g, 3) || l.Delete(g, 3) {
		t.Fatal("delete semantics wrong")
	}
	if l.Contains(g, 3) || !l.Contains(g, 7) {
		t.Fatal("membership wrong after delete")
	}
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMarkedNodeSplicedByLaterSearch(t *testing.T) {
	// A delete whose physical unlink fails leaves a marked node; the next
	// traversal must splice and retire it.
	l, g := newWithGuard(t, "debra")
	for k := uint64(1); k <= 10; k++ {
		l.Insert(g, k)
	}
	for k := uint64(1); k <= 10; k += 2 {
		if !l.Delete(g, k) {
			t.Fatalf("Delete(%d) failed", k)
		}
	}
	// Traversals over the whole range clean any leftovers.
	for k := uint64(1); k <= 10; k++ {
		want := k%2 == 0
		if got := l.Contains(g, k); got != want {
			t.Fatalf("Contains(%d) = %v, want %v", k, got, want)
		}
	}
	if l.Len() != 5 {
		t.Fatalf("Len = %d", l.Len())
	}
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestReinsertAfterDelete(t *testing.T) {
	// Exercises handle recycling: the same key cycles through insert /
	// delete so freed slots are reused with new generations.
	l, g := newWithGuard(t, "nbr")
	for i := 0; i < 2000; i++ {
		if !l.Insert(g, 42) {
			t.Fatalf("cycle %d: insert failed", i)
		}
		if !l.Delete(g, 42) {
			t.Fatalf("cycle %d: delete failed", i)
		}
	}
	if l.Len() != 0 {
		t.Fatalf("Len = %d", l.Len())
	}
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
}
