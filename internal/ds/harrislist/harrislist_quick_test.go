package harrislist_test

import (
	"testing"
	"testing/quick"

	"nbr/internal/bench"
	"nbr/internal/ds/harrislist"
)

// TestQuickSetSemantics drives random operation sequences against a map
// model under aggressive reclamation (tiny bag), so logical results,
// marking, chain splicing and reclamation all interleave.
func TestQuickSetSemantics(t *testing.T) {
	l := harrislist.New(1)
	cfg := bench.DefaultSchemeConfig()
	cfg.BagSize = 64
	s, err := bench.NewScheme("nbr+", l.Arena(), 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	g := s.Guard(0)
	model := map[uint64]bool{}
	f := func(key uint16, op uint8) bool {
		k := uint64(key%48) + 1
		switch op % 3 {
		case 0:
			ok := l.Insert(g, k) == !model[k]
			model[k] = true
			return ok
		case 1:
			ok := l.Delete(g, k) == model[k]
			delete(model, k)
			return ok
		default:
			return l.Contains(g, k) == model[k]
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 4000}); err != nil {
		t.Fatal(err)
	}
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	// Everything deleted must eventually be retired once traversals clean
	// the chains.
	for k := uint64(1); k <= 48; k++ {
		l.Contains(g, k)
	}
	st := s.Stats()
	if st.Freed > st.Retired {
		t.Fatalf("freed %d > retired %d", st.Freed, st.Retired)
	}
}

// TestChainRetireExactlyOnce checks the splice-retire ownership under
// concurrency indirectly: the pool's double-free CAS would panic if two
// threads retired (and later freed) the same chain node twice.
func TestChainRetireExactlyOnce(t *testing.T) {
	const threads = 4
	l := harrislist.New(threads)
	cfg := bench.DefaultSchemeConfig()
	cfg.BagSize = 32
	s, err := bench.NewScheme("nbr+", l.Arena(), threads, cfg)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, threads)
	for tid := 0; tid < threads; tid++ {
		go func(tid int) {
			defer func() {
				if r := recover(); r != nil {
					done <- errFromPanic(r)
					return
				}
				done <- nil
			}()
			g := s.Guard(tid)
			rng := uint64(tid)*2654435761 + 7
			for i := 0; i < 5000; i++ {
				rng = rng*6364136223846793005 + 1442695040888963407
				k := (rng>>33)%16 + 1
				switch (rng >> 10) % 3 {
				case 0:
					l.Insert(g, k)
				case 1:
					l.Delete(g, k)
				default:
					l.Contains(g, k)
				}
			}
		}(tid)
	}
	for i := 0; i < threads; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
}

func errFromPanic(r any) error {
	if e, ok := r.(error); ok {
		return e
	}
	return &panicErr{r}
}

type panicErr struct{ v any }

func (p *panicErr) Error() string { return "panic in worker" }
