// Package harrislist implements Harris's lock-free linked list (HL01), the
// paper's example of a data structure with multiple read/write phases
// (§5.2, Algorithm 3): the search may unlink a chain of marked nodes (an
// auxiliary write phase) and then restarts from the root, beginning a fresh
// read phase — exactly the pattern NBR requires (Requirement 12), with left
// and right reserved before each unlink CAS (Requirement 13).
//
// A node is logically deleted when the mark bit of its *next pointer* is
// set. Unlinking splices a whole marked chain with one CAS on an unmarked
// predecessor; the splicing thread retires the chain (collected during the
// read phase into a per-thread scratch buffer that neutralization simply
// discards).
package harrislist

import (
	"errors"
	"fmt"
	"sync/atomic"

	"nbr/internal/ds"
	"nbr/internal/mem"
	"nbr/internal/smr"
)

// node is a list record; the mark bit lives on next.
type node struct {
	key  uint64
	next uint64 // mem.Ptr | mark
}

type view struct {
	key  uint64
	next mem.Ptr // raw: may carry the mark bit
}

// List is a Harris lock-free list set.
type List struct {
	pool    *mem.Pool[node]
	head    mem.Ptr
	tail    mem.Ptr
	scratch [][]mem.Ptr // per-thread marked-chain collection buffers
}

// New creates a list sized for the given number of threads.
func New(threads int) *List {
	return NewWith(mem.Config{MaxThreads: threads})
}

// NewWith creates a list over a pool built from cfg — the constructor a
// shared-arena runtime uses, stamping its assigned arena tag (cfg.Tag) into
// every node handle so a mem.Hub can route frees back here.
func NewWith(cfg mem.Config) *List {
	l := &List{
		pool:    mem.NewPool[node](cfg),
		scratch: make([][]mem.Ptr, cfg.MaxThreads),
	}
	tp, tn := l.pool.Alloc(0)
	atomic.StoreUint64(&tn.key, ds.MaxKey)
	atomic.StoreUint64(&tn.next, uint64(mem.Null))
	hp, hn := l.pool.Alloc(0)
	atomic.StoreUint64(&hn.key, ds.MinKey)
	atomic.StoreUint64(&hn.next, uint64(tp))
	l.head, l.tail = hp, tp
	return l
}

// Arena exposes the list's allocator to reclamation schemes.
func (l *List) Arena() mem.Arena { return l.pool }

// Requirements implements the per-DS width hook: left holds slot 0 while
// the cursor alternates slots 1 and 2; only left and right are reserved
// (Algorithm 3 line 31). The retire threshold is declared explicitly so the
// narrow slot width does not raise the hp/he scan frequency.
func (l *List) Requirements() ds.Requirements {
	return ds.Requirements{Slots: 3, Reservations: 2, Threshold: ds.DefaultThreshold}
}

// MemStats reports allocator statistics.
func (l *List) MemStats() mem.Stats { return l.pool.Stats() }

// read is the barriered copy (see lazylist.read for the protocol).
func (l *List) read(g smr.Guard, slot int, p mem.Ptr) (view, bool) {
	g.Protect(slot, p)
	n := l.pool.Raw(p)
	var v view
	v.key = atomic.LoadUint64(&n.key)
	v.next = mem.Ptr(atomic.LoadUint64(&n.next))
	if !l.pool.Valid(p) {
		if g.NeedsValidation() {
			return view{}, false
		}
		g.OnStale(p)
	}
	return v, true
}

// rawNext re-reads a protected node's link (validation and write phases).
func (l *List) rawNext(g smr.Guard, p mem.Ptr) mem.Ptr {
	n := l.pool.Raw(p)
	v := mem.Ptr(atomic.LoadUint64(&n.next))
	if !l.pool.Valid(p) {
		g.OnStale(p)
	}
	return v
}

// casNext CASes a reserved/protected node's link.
func (l *List) casNext(p mem.Ptr, old, new mem.Ptr) bool {
	n := l.pool.MustGet(p)
	return atomic.CompareAndSwapUint64(&n.next, uint64(old), uint64(new))
}

// scratchReset empties the per-thread marked-chain buffer.
//
//nbr:restartable — the buffer is private to this Tid and a neutralization restart's first action is another reset, so a torn write is unobservable
func scratchReset(s *[]mem.Ptr) { *s = (*s)[:0] }

// scratchPush records one marked node for the post-phase RetireBatch.
//
//nbr:restartable — appends to Tid-private storage that the restart path resets; growth allocates, which is safe under the panic-based neutralization this repo simulates (no signal handler to longjmp over the allocator)
func scratchPush(s *[]mem.Ptr, p mem.Ptr) { *s = append(*s, p) }

// search implements Algorithm 3's search: find the unmarked node pair
// (left, right) bracketing key, splicing out any marked chain in between.
// On return the read phase is closed with left and right reserved (slots 0
// and 1) and rightV is right's snapshot taken during the traversal.
//
// Slot discipline: left stays announced in slot 0; the traversal cursor
// alternates slots 1 and 2; right ends in slot 1 (re-announced if needed).
func (l *List) search(g smr.Guard, key uint64) (left, right mem.Ptr, rightV view) {
	scratch := &l.scratch[g.Tid()]
searchAgain:
	for {
		g.BeginRead()
		scratchReset(scratch)

		t := l.head
		tV, _ := l.read(g, 0, t) // head sentinel, never freed
		left, right = t, mem.Null
		leftNext := tV.next
		slot := 1

		// Traverse until an unmarked node with key ≥ target.
		for {
			if !tV.next.Marked() {
				left = t
				leftNext = tV.next
				g.Protect(0, left) // left already covered; renew slot 0
				scratchReset(scratch)
			} else {
				scratchPush(scratch, t)
			}
			next := tV.next.Unmarked()
			if next == l.tail {
				right = l.tail
				rightV = view{key: ds.MaxKey, next: mem.Null}
				break
			}
			nv, ok := l.read(g, slot, next)
			if !ok {
				continue searchAgain
			}
			if g.NeedsValidation() && l.rawNext(g, t).Unmarked() != next {
				continue searchAgain
			}
			t, tV = next, nv
			slot ^= 3 // alternate 1 <-> 2
			if !tV.next.Marked() && tV.key >= key {
				right = t
				rightV = tV
				break
			}
		}

		// endΦread(left, right) — Algorithm 3 line 31.
		g.Reserve(0, left)
		g.Reserve(1, right)
		g.EndRead()

		if leftNext == right {
			// Adjacent already; restart if right got marked meanwhile.
			if right != l.tail && l.rawNext(g, right).Marked() {
				continue searchAgain
			}
			return left, right, rightV
		}

		// Splice out the marked chain [leftNext, right) — the auxiliary
		// write phase. The winner retires the whole chain in one batch.
		if l.casNext(left, leftNext, right) {
			g.RetireBatch(*scratch)
			if right != l.tail && l.rawNext(g, right).Marked() {
				continue searchAgain
			}
			return left, right, rightV
		}
	}
}

// Contains implements ds.Set via a full search (which may help unlink).
func (l *List) Contains(g smr.Guard, key uint64) bool {
	return smr.Execute(g, func() bool {
		_, right, rightV := l.search(g, key)
		return right != l.tail && rightV.key == key
	})
}

// Insert implements ds.Set (Algorithm 3's insert).
func (l *List) Insert(g smr.Guard, key uint64) bool {
	return smr.Execute(g, func() bool {
		for {
			left, right, rightV := l.search(g, key)
			if right != l.tail && rightV.key == key {
				return false
			}
			// Write phase: allocate and link (allocation is legal here —
			// the thread is non-restartable after search's endΦread).
			np, nn := l.pool.Alloc(g.Tid())
			atomic.StoreUint64(&nn.key, key)
			atomic.StoreUint64(&nn.next, uint64(right))
			g.OnAlloc(np)
			if l.casNext(left, right, np) {
				return true
			}
			// Lost the race: the private node is unpublished, free it
			// directly and start a fresh read phase.
			l.pool.Free(g.Tid(), np)
		}
	})
}

// Delete implements ds.Set: logical mark CAS, then attempt the physical
// unlink; on failure the next search performs the unlink and retires.
func (l *List) Delete(g smr.Guard, key uint64) bool {
	return smr.Execute(g, func() bool {
		for {
			left, right, rightV := l.search(g, key)
			if right == l.tail || rightV.key != key {
				return false
			}
			succ := l.rawNext(g, right)
			if succ.Marked() {
				continue // another deleter got here first; help via search
			}
			if !l.casNext(right, succ, succ.WithMark()) {
				continue // link changed under us; retry from a fresh search
			}
			// The mark CAS is the linearization point. Try the physical
			// unlink once; on failure leave the node for a later search to
			// splice and retire. (Opening a fresh read phase here would let
			// a neutralization re-run the body after the commit point.)
			if l.casNext(left, right, succ) {
				g.Retire(right)
			}
			return true
		}
	})
}

// BuildMarkedChain deterministically prepares an oversized-splice input for
// the garbage-bound suites (quiescent; single-threaded): it inserts keys
// 1..n through the normal write path, then sets the mark bit on each node's
// next pointer *without* performing the physical unlink — exactly the state
// n logically deleted nodes are in before any search helps. The next search
// that traverses past the chain splices all n nodes with one CAS and hands
// them to the scheme in a single RetireBatch, so the batch-split watermark
// logic is exercised with a chain of chosen length on every run instead of
// relying on churn to produce one. Returns the number of nodes marked.
func (l *List) BuildMarkedChain(g smr.Guard, n int) int {
	for k := 1; k <= n; k++ {
		l.Insert(g, uint64(k))
	}
	marked := 0
	for p := l.next(l.head); p != l.tail; {
		nd := l.pool.Raw(p)
		k := atomic.LoadUint64(&nd.key)
		next := atomic.LoadUint64(&nd.next)
		if k >= 1 && k <= uint64(n) && !mem.Ptr(next).Marked() {
			if atomic.CompareAndSwapUint64(&nd.next, next, uint64(mem.Ptr(next).WithMark())) {
				marked++
			}
		}
		p = l.next(p)
	}
	return marked
}

// Len implements ds.Set (quiescent): counts unmarked nodes.
func (l *List) Len() int {
	n := 0
	for p := l.next(l.head); p != l.tail; {
		nd := l.pool.Raw(p)
		if !mem.Ptr(atomic.LoadUint64(&nd.next)).Marked() {
			n++
		}
		p = l.next(p)
	}
	return n
}

func (l *List) next(p mem.Ptr) mem.Ptr {
	return mem.Ptr(atomic.LoadUint64(&l.pool.Raw(p).next)).Unmarked()
}

// Validate implements ds.Set (quiescent): strictly sorted unmarked keys,
// valid handles, tail reachable.
func (l *List) Validate() error {
	prev := ds.MinKey
	p := l.next(l.head)
	for p != l.tail {
		if p.IsNull() {
			return errors.New("harrislist: reachable nil before tail")
		}
		n, ok := l.pool.Get(p)
		if !ok {
			return fmt.Errorf("harrislist: freed node %v reachable", p)
		}
		k := atomic.LoadUint64(&n.key)
		marked := mem.Ptr(atomic.LoadUint64(&n.next)).Marked()
		if !marked {
			if k <= prev {
				return fmt.Errorf("harrislist: keys not strictly increasing (%d after %d)", k, prev)
			}
			prev = k
		}
		p = l.next(p)
	}
	return nil
}
