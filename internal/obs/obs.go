// Package obs is the reclamation pipeline's flight recorder: a per-thread,
// allocation-free ring of packed 16-byte typed events plus power-of-two
// latency histograms for the durations that define NBR's behavior (admission
// wait, lease hold, read-phase length, signal→restart, garbage residence
// age, reap latency).
//
// The recorder is wired into the hot paths permanently and gated behind a
// single atomic enabled-check: every instrumented site does one predictable
// load+branch when the recorder is disabled (or nil — all methods are
// nil-safe), and nothing else. When enabled, an event write is one atomic
// fetch-add on the ring cursor plus two atomic stores; no path allocates.
//
// Rings are indexed by registry slot (tid), plus two extra rings for
// goroutines that have no slot: the admission ring (AcquireCtx waiters) and
// the system ring (registry scans, the watchdog, revocations). Any goroutine
// may write any ring — the cursor is a fetch-add — but in practice per-tid
// rings are owner-written, so per-thread event order is program order.
//
// Timestamps are nanoseconds on the monotonic clock since the recorder's
// creation, so merged timelines are globally ordered across rings. The
// histograms use the same power-of-two bucket idiom as internal/hist and
// smr.Stats.BatchHist, made atomic so cross-thread writers and concurrent
// snapshot readers stay race-clean; bucket shape (which powers of two hold
// the mass) is comparable across hosts even when absolute latencies are not.
package obs

import (
	"fmt"
	"io"
	"math/bits"
	"sort"
	"strings"
	"sync/atomic"
	"time"
)

// Code is an event type tag. It occupies the top 8 bits of the packed event
// word; the low 56 bits carry a per-code argument (a count, a tid, an age).
type Code uint8

// Event codes, grouped by the pipeline stage that emits them.
const (
	EvNone Code = iota

	// smr.Registry — lease lifecycle and the scan seam.
	EvAcquire     // slot leased                      arg: tid
	EvRelease     // voluntary release                arg: tid
	EvRevoke      // involuntary revocation           arg: tid
	EvReap        // watchdog reaped past deadline    arg: tid
	EvQuarRecycle // quarantined slot recycled        arg: age in scan rounds
	EvFallback    // no-scanner fallback reuse        arg: tid
	EvForcedRound // admission forced a scan round    arg: completed rounds
	EvOrphanAdopt // orphaned garbage adopted         arg: record count
	EvScanBegin   // reclamation scan begin           arg: scans in flight
	EvScanEnd     // reclamation scan end             arg: completed rounds

	// sigsim — the POSIX-signal simulation.
	EvSigPost    // SignalAll posted to peers        arg: peers signalled
	EvSigDeliver // delivery neutralized receiver    arg: pending posts
	EvSigIgnore  // delivery outside a read phase    arg: pending posts
	EvSigKill    // delivery killed a revoked zombie arg: pending posts
	EvSigRestart // read phase restarted after a neutralization

	// core — the read-phase bracket and the retire seam.
	EvReadBegin  // BeginRead: row cleared, restartable set
	EvReadEnd    // EndRead: restartable cleared
	EvSegRetire  // segment handle bagged            arg: segment weight
	EvSegCarve   // retired segment carved           arg: records carved

	// mem.Hub — the multi-structure free seam.
	EvHubDispatch // uniform batch dispatched        arg: record count
	EvStageFlush  // staged mixed batch flushed      arg: record count

	// Root runtime — FIFO admission.
	EvAdmitEnqueue // AcquireCtx enqueued            arg: queue depth
	EvAdmitBaton   // baton received, slot acquired
	EvAdmitCancel  // waiter cancelled by its context

	numCodes
)

var codeNames = [numCodes]string{
	EvNone:         "none",
	EvAcquire:      "acquire",
	EvRelease:      "release",
	EvRevoke:       "revoke",
	EvReap:         "reap",
	EvQuarRecycle:  "quarantine-recycle",
	EvFallback:     "fallback-reuse",
	EvForcedRound:  "forced-round",
	EvOrphanAdopt:  "orphan-adopt",
	EvScanBegin:    "scan-begin",
	EvScanEnd:      "scan-end",
	EvSigPost:      "signal-post",
	EvSigDeliver:   "signal-deliver",
	EvSigIgnore:    "signal-ignore",
	EvSigKill:      "signal-kill",
	EvSigRestart:   "read-restart",
	EvReadBegin:    "read-begin",
	EvReadEnd:      "read-end",
	EvSegRetire:    "segment-retire",
	EvSegCarve:     "segment-carve",
	EvHubDispatch:  "hub-dispatch",
	EvStageFlush:   "stage-flush",
	EvAdmitEnqueue: "admit-enqueue",
	EvAdmitBaton:   "admit-baton",
	EvAdmitCancel:  "admit-cancel",
}

func (c Code) String() string {
	if int(c) < len(codeNames) && codeNames[c] != "" {
		return codeNames[c]
	}
	return fmt.Sprintf("code(%d)", uint8(c))
}

// Histogram identifiers. Each is a duration distribution in nanoseconds.
const (
	HistAdmissionWait = iota // AcquireCtx first enqueue → admitted
	HistLeaseHold            // registry Acquire → Release/Revoke
	HistReadPhase            // BeginRead → EndRead
	HistSignalLatency        // SignalAll post → victim's restarted read phase
	HistGarbageAge           // retire → free residence time (sampled)
	HistReapLatency          // lease deadline → revocation delivered
	NumHists
)

var histNames = [NumHists]string{
	"admission_wait",
	"lease_hold",
	"read_phase",
	"signal_latency",
	"garbage_age",
	"reap_latency",
}

// HistName returns the snapshot key for histogram h.
func HistName(h int) string { return histNames[h] }

// RingSize is the per-ring event capacity. Power of two; overwrite wraps.
const RingSize = 256

const (
	ringMask = RingSize - 1
	argMask  = (uint64(1) << 56) - 1
)

type eslot struct {
	ts   atomic.Int64
	word atomic.Uint64 // Code in the top 8 bits, arg in the low 56
}

type ring struct {
	pos atomic.Uint64
	_   [56]byte // keep hot cursors off each other's cache line
	ev  [RingSize]eslot
}

// gaSamples is the garbage-age sample table size: retire stamps at most this
// many in-flight handles at a time; the free seam matches them back.
const gaSamples = 16

type gaSample struct {
	ptr atomic.Uint64 // raw handle; 0 = free, claimSentinel = mid-claim
	ts  atomic.Int64  // retire timestamp, written before ptr publishes
}

const claimSentinel = ^uint64(0)

// Recorder is the flight recorder. The zero of *Recorder (nil) is a valid,
// permanently disabled recorder: every method is nil-safe, so instrumented
// code holds a plain *Recorder field and never checks for wiring.
type Recorder struct {
	on      atomic.Bool
	base    time.Time // monotonic origin for all timestamps
	rings   []ring    // one per registry slot, then admission, then system
	hists   [NumHists]Hist
	sampled atomic.Int32 // outstanding garbage-age samples (fast NoteFree gate)
	samples [gaSamples]gaSample
}

// NewRecorder builds a disabled recorder with one ring per registry slot
// plus the admission and system rings. Call Enable to start recording.
func NewRecorder(slots int) *Recorder {
	if slots < 1 {
		slots = 1
	}
	return &Recorder{base: time.Now(), rings: make([]ring, slots+2)}
}

// Enable turns recording on. Safe to call concurrently with writers.
func (r *Recorder) Enable() {
	if r != nil {
		r.on.Store(true)
	}
}

// Disable turns recording off. In-flight writes may still land.
func (r *Recorder) Disable() {
	if r != nil {
		r.on.Store(false)
	}
}

// Enabled reports whether the recorder is wired and on. This is the single
// check every instrumented hot path pays when the recorder is off.
func (r *Recorder) Enabled() bool { return r != nil && r.on.Load() }

// AdmissionRing is the ring index for slotless admission waiters.
func (r *Recorder) AdmissionRing() int {
	if r == nil {
		return 0
	}
	return len(r.rings) - 2
}

// SystemRing is the ring index for slotless system work (scans, watchdog).
func (r *Recorder) SystemRing() int {
	if r == nil {
		return 0
	}
	return len(r.rings) - 1
}

// RingName names ring i for dumps: "t3" for slot rings, "adm", "sys".
func (r *Recorder) RingName(i int) string {
	switch {
	case r == nil || i < 0 || i >= len(r.rings):
		return fmt.Sprintf("r%d", i)
	case i == len(r.rings)-2:
		return "adm"
	case i == len(r.rings)-1:
		return "sys"
	default:
		return fmt.Sprintf("t%d", i)
	}
}

// Clock returns nanoseconds since the recorder's creation on the monotonic
// clock, or 0 when disabled. 0 is the "not measured" sentinel accepted by
// ObserveSince, so `t0 := rec.Clock()` needs no enabled-check of its own.
func (r *Recorder) Clock() int64 {
	if r == nil || !r.on.Load() {
		return 0
	}
	return r.clock()
}

func (r *Recorder) clock() int64 {
	d := time.Since(r.base).Nanoseconds()
	if d <= 0 {
		d = 1
	}
	return d
}

// Rec records event c with argument arg on ring i. Out-of-range rings land
// on the system ring rather than dropping the event.
func (r *Recorder) Rec(i int, c Code, arg uint64) {
	if r == nil || !r.on.Load() {
		return
	}
	if i < 0 || i >= len(r.rings) {
		i = len(r.rings) - 1
	}
	rg := &r.rings[i]
	s := &rg.ev[(rg.pos.Add(1)-1)&ringMask]
	s.ts.Store(r.clock())
	s.word.Store(uint64(c)<<56 | arg&argMask)
}

// Sys records on the system ring; Adm on the admission ring.
func (r *Recorder) Sys(c Code, arg uint64) { r.Rec(r.SystemRing(), c, arg) }
func (r *Recorder) Adm(c Code, arg uint64) { r.Rec(r.AdmissionRing(), c, arg) }

// Observe records duration v (nanoseconds) into histogram h.
func (r *Recorder) Observe(h int, v int64) {
	if r == nil || !r.on.Load() {
		return
	}
	r.hists[h].Record(v)
}

// ObserveSince records now−t0 into histogram h. t0 <= 0 means the start was
// never measured (the recorder was off then) and is ignored.
func (r *Recorder) ObserveSince(h int, t0 int64) {
	if t0 <= 0 || r == nil || !r.on.Load() {
		return
	}
	r.hists[h].Record(r.clock() - t0)
}

// Hist exposes histogram h for snapshots and tests.
func (r *Recorder) Hist(h int) *Hist {
	if r == nil {
		return nil
	}
	return &r.hists[h]
}

// SampleRetire stamps raw (a retired handle) with the current time so the
// free seam can measure its residence age. At most gaSamples handles are in
// flight; when the table is full the retire is simply not sampled. The claim
// publishes ptr last, so a matching NoteFree always sees the timestamp.
func (r *Recorder) SampleRetire(raw uint64) {
	if r == nil || !r.on.Load() || raw == 0 || raw == claimSentinel {
		return
	}
	if r.sampled.Load() >= gaSamples {
		return
	}
	for i := range r.samples {
		s := &r.samples[i]
		if s.ptr.Load() == 0 && s.ptr.CompareAndSwap(0, claimSentinel) {
			r.sampled.Add(1)
			s.ts.Store(r.clock())
			s.ptr.Store(raw)
			return
		}
	}
}

// Sampling reports whether any garbage-age samples are outstanding; the free
// seam checks this once per batch before paying the per-record NoteFree scan.
func (r *Recorder) Sampling() bool {
	return r != nil && r.on.Load() && r.sampled.Load() > 0
}

// NoteFree matches a freed handle against the sample table and records its
// retire→free residence age.
func (r *Recorder) NoteFree(raw uint64) {
	if r == nil || raw == 0 || r.sampled.Load() == 0 {
		return
	}
	for i := range r.samples {
		s := &r.samples[i]
		if s.ptr.Load() == raw && s.ptr.CompareAndSwap(raw, 0) {
			r.sampled.Add(-1)
			if r.on.Load() {
				r.hists[HistGarbageAge].Record(r.clock() - s.ts.Load())
			}
			return
		}
	}
}

// Event is one decoded flight-recorder entry.
type Event struct {
	TS   int64 // nanoseconds since recorder creation
	Ring int
	Code Code
	Arg  uint64
}

// Events returns up to max merged events, oldest first, globally ordered by
// timestamp. Per ring the surviving (not yet overwritten) entries are
// extracted in cursor order and sorted — shared rings may commit slightly out
// of cursor order under contention — then a K-way min merge across rings
// yields a monotone timeline. Readers race writers benignly: an entry mid
// overwrite may pair a fresh timestamp with a stale word; the sort keeps the
// timeline monotone regardless. max <= 0 means all surviving events.
func (r *Recorder) Events(max int) []Event {
	if r == nil {
		return nil
	}
	perRing := make([][]Event, len(r.rings))
	total := 0
	for ri := range r.rings {
		rg := &r.rings[ri]
		pos := rg.pos.Load()
		n := pos
		if n > RingSize {
			n = RingSize
		}
		evs := make([]Event, 0, n)
		for k := pos - n; k < pos; k++ {
			s := &rg.ev[k&ringMask]
			ts := s.ts.Load()
			if ts == 0 {
				continue
			}
			w := s.word.Load()
			evs = append(evs, Event{TS: ts, Ring: ri, Code: Code(w >> 56), Arg: w & argMask})
		}
		sort.SliceStable(evs, func(a, b int) bool { return evs[a].TS < evs[b].TS })
		perRing[ri] = evs
		total += len(evs)
	}
	// K-way min merge over the per-ring sorted runs.
	merged := make([]Event, 0, total)
	heads := make([]int, len(perRing))
	for {
		best := -1
		for ri, h := range heads {
			if h >= len(perRing[ri]) {
				continue
			}
			if best < 0 || perRing[ri][h].TS < perRing[best][heads[best]].TS {
				best = ri
			}
		}
		if best < 0 {
			break
		}
		merged = append(merged, perRing[best][heads[best]])
		heads[best]++
	}
	if max > 0 && len(merged) > max {
		merged = merged[len(merged)-max:]
	}
	return merged
}

// OpenReadPhases returns the rings (tids) whose most recent read-phase event
// is a begin with no matching end — the threads currently (or terminally)
// inside a read phase, which is exactly what a garbage-bound violation dump
// needs to name.
func (r *Recorder) OpenReadPhases() []int {
	last := map[int]Code{}
	for _, e := range r.Events(0) {
		if e.Code == EvReadBegin || e.Code == EvReadEnd || e.Code == EvSigRestart {
			last[e.Ring] = e.Code
		}
	}
	var open []int
	for ring, c := range last {
		if c == EvReadBegin || c == EvSigRestart {
			open = append(open, ring)
		}
	}
	sort.Ints(open)
	return open
}

// WriteTail writes the last max merged events as a human-readable timeline,
// followed by the open-read-phase summary. It is the dump-on-violation hook:
// dstest failures and nbrbench -assert-bound print this instead of a bare
// counter mismatch.
func (r *Recorder) WriteTail(w io.Writer, max int) {
	if r == nil {
		return
	}
	evs := r.Events(max)
	if len(evs) == 0 {
		fmt.Fprintln(w, "flight recorder: no events (recorder disabled or nothing recorded)")
		return
	}
	fmt.Fprintf(w, "flight recorder: last %d events (of surviving window), oldest first:\n", len(evs))
	for _, e := range evs {
		fmt.Fprintf(w, "  %12s  %-4s %-18s arg=%d\n",
			time.Duration(e.TS).String(), r.RingName(e.Ring), e.Code.String(), e.Arg)
	}
	if open := r.OpenReadPhases(); len(open) > 0 {
		names := make([]string, len(open))
		for i, ring := range open {
			names[i] = r.RingName(ring)
		}
		fmt.Fprintf(w, "  open read phases (begin with no end): %s\n", strings.Join(names, " "))
	}
}

// Tail returns WriteTail's output as a string.
func (r *Recorder) Tail(max int) string {
	if r == nil {
		return ""
	}
	var sb strings.Builder
	r.WriteTail(&sb, max)
	return sb.String()
}

// HistSnapshot is one histogram's quantile summary, JSON-ready.
type HistSnapshot struct {
	Name  string `json:"name"`
	Count uint64 `json:"count"`
	P50ns int64  `json:"p50_ns"`
	P90ns int64  `json:"p90_ns"`
	P99ns int64  `json:"p99_ns"`
	Maxns int64  `json:"max_ns"`
}

// EventSnapshot is one event, JSON-ready.
type EventSnapshot struct {
	TSns int64  `json:"ts_ns"`
	Ring string `json:"ring"`
	Code string `json:"code"`
	Arg  uint64 `json:"arg"`
}

// Snapshot is the recorder's JSON document, embedded in /debug/nbr.
type Snapshot struct {
	Enabled bool            `json:"enabled"`
	Hists   []HistSnapshot  `json:"hists"`
	Events  []EventSnapshot `json:"events"`
}

// Snapshot captures histogram quantiles and the last maxEvents merged
// events. Nil-safe; safe to call concurrently with writers.
func (r *Recorder) Snapshot(maxEvents int) Snapshot {
	if r == nil {
		return Snapshot{}
	}
	snap := Snapshot{Enabled: r.on.Load(), Hists: make([]HistSnapshot, 0, NumHists)}
	for h := 0; h < NumHists; h++ {
		hist := &r.hists[h]
		snap.Hists = append(snap.Hists, HistSnapshot{
			Name:  histNames[h],
			Count: hist.Count(),
			P50ns: hist.Quantile(0.50),
			P90ns: hist.Quantile(0.90),
			P99ns: hist.Quantile(0.99),
			Maxns: hist.Max(),
		})
	}
	for _, e := range r.Events(maxEvents) {
		snap.Events = append(snap.Events, EventSnapshot{
			TSns: e.TS, Ring: r.RingName(e.Ring), Code: e.Code.String(), Arg: e.Arg,
		})
	}
	return snap
}

// Hist is an atomic power-of-two histogram: bucket i counts values whose
// bit length is i, i.e. [2^(i-1), 2^i). Same shape as internal/hist and
// smr.Stats.BatchHist, but writable from many threads and snapshotable
// concurrently. The zero value is ready to use.
type Hist struct {
	counts [64]atomic.Uint64
	total  atomic.Uint64
	max    atomic.Int64
}

// Record adds value v (negative values clamp to zero).
func (h *Hist) Record(v int64) {
	if v < 0 {
		v = 0
	}
	h.counts[bits.Len64(uint64(v))%64].Add(1)
	h.total.Add(1)
	for {
		m := h.max.Load()
		if v <= m || h.max.CompareAndSwap(m, v) {
			return
		}
	}
}

// Count returns the number of recorded values.
func (h *Hist) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.total.Load()
}

// Max returns the largest recorded value.
func (h *Hist) Max() int64 {
	if h == nil {
		return 0
	}
	return h.max.Load()
}

// Quantile returns the upper edge of the bucket holding the q-quantile
// (nearest-rank over a concurrent snapshot of the buckets), tightened by the
// recorded max in the final bucket — the same contract as
// internal/hist.Histogram.Quantile and Stats.BatchQuantile.
func (h *Hist) Quantile(q float64) int64 {
	if h == nil {
		return 0
	}
	var counts [64]uint64
	var total uint64
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var seen uint64
	for i, c := range counts {
		seen += c
		if seen > rank {
			upper := int64(1) << uint(i)
			if i == 0 {
				upper = 1
			}
			if m := h.max.Load(); m < upper && m >= upper/2 {
				upper = m
			}
			return upper
		}
	}
	return h.max.Load()
}
