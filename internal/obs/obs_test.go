package obs

import (
	"encoding/json"
	"math/rand"
	"strings"
	"sync"
	"testing"
)

// TestNilRecorderIsInert: every method on a nil *Recorder is a no-op, since
// instrumented code holds plain *Recorder fields with no wiring checks.
func TestNilRecorderIsInert(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Fatal("nil recorder reports enabled")
	}
	r.Enable()
	r.Rec(0, EvAcquire, 1)
	r.Sys(EvScanBegin, 0)
	r.Adm(EvAdmitEnqueue, 0)
	r.Observe(HistReadPhase, 10)
	r.ObserveSince(HistReadPhase, 1)
	r.SampleRetire(42)
	r.NoteFree(42)
	if r.Clock() != 0 {
		t.Fatal("nil recorder clock must be 0")
	}
	if evs := r.Events(10); evs != nil {
		t.Fatalf("nil recorder has events: %v", evs)
	}
	if s := r.Snapshot(10); s.Enabled || len(s.Events) != 0 {
		t.Fatalf("nil recorder snapshot not empty: %+v", s)
	}
	if tail := r.Tail(10); tail != "" {
		t.Fatalf("nil recorder tail: %q", tail)
	}
}

// TestDisabledRecordsNothing: a wired-but-disabled recorder drops writes.
func TestDisabledRecordsNothing(t *testing.T) {
	r := NewRecorder(4)
	r.Rec(0, EvAcquire, 1)
	r.Observe(HistLeaseHold, 100)
	if r.Clock() != 0 {
		t.Fatal("disabled clock must be 0")
	}
	if evs := r.Events(0); len(evs) != 0 {
		t.Fatalf("disabled recorder captured %d events", len(evs))
	}
	if c := r.Hist(HistLeaseHold).Count(); c != 0 {
		t.Fatalf("disabled recorder counted %d observations", c)
	}
	// The 0 sentinel from a disabled Clock must never be observed later.
	t0 := r.Clock()
	r.Enable()
	r.ObserveSince(HistLeaseHold, t0)
	if c := r.Hist(HistLeaseHold).Count(); c != 0 {
		t.Fatalf("ObserveSince accepted the unmeasured sentinel: count=%d", c)
	}
}

// TestRingOverwriteKeepsOrder is the property test: write far more events
// than a ring holds, with a deterministic interleave across rings; overwrite
// must keep each ring's surviving events in write order, and the K-way merge
// must emit globally monotone timestamps.
func TestRingOverwriteKeepsOrder(t *testing.T) {
	const rings, writes = 4, 8 * RingSize
	r := NewRecorder(rings)
	r.Enable()
	rng := rand.New(rand.NewSource(1))
	next := make([]uint64, rings+2)
	for i := 0; i < writes; i++ {
		ring := rng.Intn(rings + 2)
		next[ring]++
		r.Rec(ring, EvReadBegin, next[ring]) // arg = per-ring sequence number
	}
	evs := r.Events(0)
	if len(evs) == 0 {
		t.Fatal("no events survived")
	}
	lastTS := int64(0)
	lastSeq := make(map[int]uint64)
	for _, e := range evs {
		if e.TS < lastTS {
			t.Fatalf("merge not monotone: %d after %d", e.TS, lastTS)
		}
		lastTS = e.TS
		if s, ok := lastSeq[e.Ring]; ok && e.Arg != s+1 {
			t.Fatalf("ring %d order broken by overwrite: seq %d after %d", e.Ring, e.Arg, s)
		}
		lastSeq[e.Ring] = e.Arg
	}
	// Overwrite keeps the most recent RingSize entries: each ring's survivors
	// must end at its final sequence number.
	for ring, seq := range lastSeq {
		if seq != next[ring] {
			t.Fatalf("ring %d lost its newest events: last survivor %d, wrote %d", ring, seq, next[ring])
		}
	}
	// Tail truncation returns the newest K, still monotone.
	tail := r.Events(10)
	if len(tail) != 10 || tail[len(tail)-1] != evs[len(evs)-1] {
		t.Fatalf("Events(10) is not the newest 10: got %d", len(tail))
	}
}

// TestRecorderConcurrent is the -race test: 8 writers hammering rings,
// histograms, and the garbage-age table while a reader snapshots.
func TestRecorderConcurrent(t *testing.T) {
	const writers, perWriter = 8, 4096
	r := NewRecorder(writers)
	r.Enable()
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				r.Rec(w, EvReadBegin, uint64(i))
				r.Observe(HistReadPhase, int64(i))
				r.SampleRetire(uint64(w*perWriter + i + 1))
				r.NoteFree(uint64(w*perWriter + i + 1))
				r.Rec(w, EvReadEnd, uint64(i))
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			snap := r.Snapshot(64)
			if _, err := json.Marshal(snap); err != nil {
				t.Errorf("snapshot not marshalable: %v", err)
				return
			}
			last := int64(0)
			for _, e := range r.Events(0) {
				if e.TS < last {
					t.Errorf("concurrent merge not monotone: %d after %d", e.TS, last)
					return
				}
				last = e.TS
			}
		}
	}()
	wg.Wait()
	<-done
	if got := r.Hist(HistReadPhase).Count(); got != writers*perWriter {
		t.Fatalf("histogram lost observations: %d of %d", got, writers*perWriter)
	}
}

// TestGarbageAgeSampling: a retire-stamped handle freed later lands in the
// garbage-age histogram, and the table slot is recycled.
func TestGarbageAgeSampling(t *testing.T) {
	r := NewRecorder(1)
	r.Enable()
	for i := uint64(1); i <= gaSamples+4; i++ {
		r.SampleRetire(i) // the tail past gaSamples is dropped, not queued
	}
	if !r.Sampling() {
		t.Fatal("no samples outstanding after SampleRetire")
	}
	for i := uint64(1); i <= gaSamples+4; i++ {
		r.NoteFree(i)
	}
	if r.Sampling() {
		t.Fatal("samples leaked after NoteFree")
	}
	h := r.Hist(HistGarbageAge)
	if h.Count() != gaSamples {
		t.Fatalf("sampled %d ages, want %d", h.Count(), gaSamples)
	}
	if h.Quantile(0.5) <= 0 {
		t.Fatalf("garbage-age p50 not positive: %d", h.Quantile(0.5))
	}
	// Slots recycled: a fresh sample still fits.
	r.SampleRetire(99)
	if !r.Sampling() {
		t.Fatal("table did not recycle freed slots")
	}
}

// TestHistQuantile: power-of-two bucket edges, max-tightening, and the
// count/max accessors — the same contract as internal/hist.
func TestHistQuantile(t *testing.T) {
	var h Hist
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile must be 0")
	}
	for i := 0; i < 90; i++ {
		h.Record(100) // bucket [64,128)
	}
	for i := 0; i < 10; i++ {
		h.Record(5000) // bucket [4096,8192)
	}
	if got := h.Quantile(0.5); got != 128 {
		t.Fatalf("p50 = %d, want bucket edge 128", got)
	}
	if got := h.Quantile(0.99); got != 5000 {
		t.Fatalf("p99 = %d, want max-tightened 5000", got)
	}
	if h.Count() != 100 || h.Max() != 5000 {
		t.Fatalf("count=%d max=%d", h.Count(), h.Max())
	}
	h.Record(-5) // clamps, does not panic or wrap
	if h.Count() != 101 {
		t.Fatal("negative value not recorded as zero")
	}
}

// TestWriteTailNamesOpenReadPhase: the dump names a thread whose read phase
// never ended — the diagnostic a stalled-reader bound violation needs.
func TestWriteTailNamesOpenReadPhase(t *testing.T) {
	r := NewRecorder(6)
	r.Enable()
	r.Rec(1, EvReadBegin, 0)
	r.Rec(1, EvReadEnd, 0)
	r.Rec(4, EvReadBegin, 0) // t4 stalls inside its read phase
	r.Sys(EvScanBegin, 1)
	tail := r.Tail(16)
	if !strings.Contains(tail, "open read phases") || !strings.Contains(tail, "t4") {
		t.Fatalf("tail does not name the open read phase:\n%s", tail)
	}
	if strings.Contains(tail, "t1\n") && !strings.Contains(tail, "read-end") {
		t.Fatalf("tail lost the closed phase:\n%s", tail)
	}
	if open := r.OpenReadPhases(); len(open) != 1 || open[0] != 4 {
		t.Fatalf("OpenReadPhases = %v, want [4]", open)
	}
}
