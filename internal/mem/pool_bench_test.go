package mem

import (
	"fmt"
	"sync"
	"testing"
)

// BenchmarkAllocFree measures the per-record hot path: pop from the thread
// cache, bump the generation, push back. This is the jemalloc-tcache
// analogue every scheme's free path pays.
func BenchmarkAllocFree(b *testing.B) {
	p := NewPool[rec](Config{MaxThreads: 1})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h, _ := p.Alloc(0)
		p.Free(0, h)
	}
}

// BenchmarkAllocFreeBatch measures churn with a working set deeper than the
// LIFO top, touching the cache array.
func BenchmarkAllocFreeBatch(b *testing.B) {
	p := NewPool[rec](Config{MaxThreads: 1, CacheSize: 256})
	var hs [64]Ptr
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for j := range hs {
			hs[j], _ = p.Alloc(0)
		}
		for j := range hs {
			p.Free(0, hs[j])
		}
	}
}

// BenchmarkGet measures the validated dereference (generation compare).
func BenchmarkGet(b *testing.B) {
	p := NewPool[rec](Config{MaxThreads: 1})
	h, _ := p.Alloc(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok := p.Get(h); !ok {
			b.Fatal("live handle failed")
		}
	}
}

// BenchmarkCrossThreadChurn measures contention on the shared free list —
// the "reclamation burst" bottleneck the paper attributes to DEBRA. Shards: 1
// pins the deliberately contended configuration now that the default shards.
func BenchmarkCrossThreadChurn(b *testing.B) {
	const threads = 4
	p := NewPool[rec](Config{MaxThreads: threads, CacheSize: 8, Shards: 1})
	var wg sync.WaitGroup
	per := b.N/threads + 1
	b.ReportAllocs()
	b.ResetTimer()
	for tid := 0; tid < threads; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h, _ := p.Alloc(tid)
				p.Free(tid, h)
			}
		}(tid)
	}
	wg.Wait()
}

// BenchmarkFreeBurst measures reclamation-burst throughput — every goroutine
// repeatedly allocates a bag-sized batch and returns it with one FreeBatch —
// across shard counts. Shards: 1 is the paper's DEBRA-bottleneck
// configuration; the sweep shows how sharding removes it.
func BenchmarkFreeBurst(b *testing.B) {
	const (
		goroutines = 8
		burst      = 256
	)
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			p := NewPool[rec](Config{MaxThreads: goroutines, CacheSize: 64, Shards: shards})
			b.ReportAllocs()
			b.ResetTimer()
			BurstChurn(p, goroutines, burst, b.N)
		})
	}
}
