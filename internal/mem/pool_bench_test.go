package mem

import (
	"sync"
	"testing"
)

// BenchmarkAllocFree measures the per-record hot path: pop from the thread
// cache, bump the generation, push back. This is the jemalloc-tcache
// analogue every scheme's free path pays.
func BenchmarkAllocFree(b *testing.B) {
	p := NewPool[rec](Config{MaxThreads: 1})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h, _ := p.Alloc(0)
		p.Free(0, h)
	}
}

// BenchmarkAllocFreeBatch measures churn with a working set deeper than the
// LIFO top, touching the cache array.
func BenchmarkAllocFreeBatch(b *testing.B) {
	p := NewPool[rec](Config{MaxThreads: 1, CacheSize: 256})
	var hs [64]Ptr
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for j := range hs {
			hs[j], _ = p.Alloc(0)
		}
		for j := range hs {
			p.Free(0, hs[j])
		}
	}
}

// BenchmarkGet measures the validated dereference (generation compare).
func BenchmarkGet(b *testing.B) {
	p := NewPool[rec](Config{MaxThreads: 1})
	h, _ := p.Alloc(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok := p.Get(h); !ok {
			b.Fatal("live handle failed")
		}
	}
}

// BenchmarkCrossThreadChurn measures contention on the shared free list —
// the "reclamation burst" bottleneck the paper attributes to DEBRA.
func BenchmarkCrossThreadChurn(b *testing.B) {
	const threads = 4
	p := NewPool[rec](Config{MaxThreads: threads, CacheSize: 8})
	var wg sync.WaitGroup
	per := b.N/threads + 1
	b.ReportAllocs()
	b.ResetTimer()
	for tid := 0; tid < threads; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h, _ := p.Alloc(tid)
				p.Free(tid, h)
			}
		}(tid)
	}
	wg.Wait()
}
