package mem

import (
	"runtime"
	"sync"
	"testing"
)

func TestShardsRoundUpToPowerOfTwo(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{1, 1}, {2, 2}, {3, 4}, {5, 8}, {8, 8}, {9, 16},
	} {
		p := NewPool[rec](Config{MaxThreads: 1, Shards: tc.in})
		if got := len(p.global.shards); got != tc.want {
			t.Fatalf("Shards %d rounded to %d, want %d", tc.in, got, tc.want)
		}
	}
	p := NewPool[rec](Config{MaxThreads: 1})
	if got := len(p.global.shards); got < runtime.GOMAXPROCS(0) {
		t.Fatalf("default shards %d below GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
}

func TestFreeBatchRecycles(t *testing.T) {
	p := NewPool[rec](Config{MaxThreads: 1, CacheSize: 8, Shards: 2})
	var hs []Ptr
	for i := 0; i < 100; i++ {
		h, _ := p.Alloc(0)
		hs = append(hs, h)
	}
	p.FreeBatch(0, hs)
	for _, h := range hs {
		if p.Valid(h) {
			t.Fatalf("handle %v still valid after FreeBatch", h)
		}
	}
	st := p.Stats()
	if st.Allocs != 100 || st.Frees != 100 || st.Live != 0 {
		t.Fatalf("stats = %+v", st)
	}
	// The batch overflowed the cache once: exactly one shard push, not the
	// dozen a Free loop would have paid.
	if st.GlobalOps != 1 {
		t.Fatalf("GlobalOps = %d, want 1 push for the whole batch", st.GlobalOps)
	}
	carved := p.cursor.Load()
	for i := 0; i < 100; i++ {
		p.Alloc(0)
	}
	if got := p.cursor.Load(); got != carved {
		t.Fatalf("reallocation carved fresh slots (cursor %d → %d) instead of recycling the batch", carved, got)
	}
}

func TestFreeBatchEmptyIsNoop(t *testing.T) {
	p := newTestPool(1)
	p.FreeBatch(0, nil)
	if st := p.Stats(); st.Frees != 0 || st.GlobalOps != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestFreeBatchEmptyNeverTouchesShards pins the fruitless-reclaim cost: an
// empty batch must be a true no-op — zero shard lock acquisitions and zero
// free accounting — even when the thread cache sits exactly at its flush
// watermark from earlier traffic, i.e. FreeBatch must return before its
// flush check, not flush an unrelated overflow on a scan that freed
// nothing.
func TestFreeBatchEmptyNeverTouchesShards(t *testing.T) {
	p := NewPool[rec](Config{MaxThreads: 1, CacheSize: 4, Shards: 2})
	// Park the thread cache at the 2·CacheSize watermark: alloc a burst and
	// free it back one by one (Free flushes only *above* the watermark).
	var hs []Ptr
	for i := 0; i < 2*4; i++ {
		h, _ := p.Alloc(0)
		hs = append(hs, h)
	}
	for _, h := range hs {
		p.Free(0, h)
	}
	st := p.Stats()
	for i := 0; i < 100; i++ {
		p.FreeBatch(0, nil)
		p.FreeBatch(0, []Ptr{})
	}
	after := p.Stats()
	if after.GlobalOps != st.GlobalOps {
		t.Fatalf("empty batches paid %d shard interaction(s)", after.GlobalOps-st.GlobalOps)
	}
	if after.Frees != st.Frees {
		t.Fatalf("empty batches counted %d frees", after.Frees-st.Frees)
	}
}

func TestFreeBatchDoubleFreePanics(t *testing.T) {
	p := newTestPool(1)
	h, _ := p.Alloc(0)
	p.Free(0, h)
	defer func() {
		if recover() == nil {
			t.Fatal("FreeBatch of an already-freed handle must panic")
		}
	}()
	p.FreeBatch(0, []Ptr{h})
}

func TestFreeBatchDuplicateInBatchPanics(t *testing.T) {
	p := newTestPool(1)
	h, _ := p.Alloc(0)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate handle within one batch must panic")
		}
	}()
	p.FreeBatch(0, []Ptr{h, h})
}

func TestFreeBatchMarkedHandles(t *testing.T) {
	p := newTestPool(1)
	h, _ := p.Alloc(0)
	p.FreeBatch(0, []Ptr{h.WithMark()})
	if p.Valid(h) {
		t.Fatal("FreeBatch through a marked handle did not free the slot")
	}
}

// TestShardCoverageDenseTids asserts the shard-cold-tid fix: callers number
// worker threads densely from zero, so the tid→shard map must spread dense
// ids across the whole shard space instead of convoying every flush on the
// low shards whenever threads < Shards.
func TestShardCoverageDenseTids(t *testing.T) {
	p := NewPool[rec](Config{MaxThreads: 8, Shards: 8})
	seen := map[int]bool{}
	for tid := 0; tid < 8; tid++ {
		sh := p.shardOf(tid)
		if sh < 0 || sh > p.global.mask {
			t.Fatalf("shardOf(%d) = %d out of range", tid, sh)
		}
		seen[sh] = true
	}
	if len(seen) < 6 {
		t.Fatalf("8 dense tids cover only %d of 8 shards", len(seen))
	}
	// The regime the fix targets: two threads on an 8-shard pool must not
	// share a home shard.
	if p.shardOf(0) == p.shardOf(1) {
		t.Fatalf("tids 0 and 1 share home shard %d", p.shardOf(0))
	}
	// A single-shard pool must still map every tid to the only shard.
	p1 := NewPool[rec](Config{MaxThreads: 8, Shards: 1})
	for tid := 0; tid < 8; tid++ {
		if got := p1.shardOf(tid); got != 0 {
			t.Fatalf("single-shard shardOf(%d) = %d", tid, got)
		}
	}
}

// TestShardStealing pins a producer and a consumer to different home shards
// and checks the consumer recycles the producer's slots instead of carving
// fresh memory — the invariant that keeps sharding from unbounding the pool.
func TestShardStealing(t *testing.T) {
	p := NewPool[rec](Config{MaxThreads: 8, CacheSize: 4, Shards: 8})
	var hs []Ptr
	for i := 0; i < 256; i++ {
		h, _ := p.Alloc(0)
		hs = append(hs, h)
	}
	p.FreeBatch(0, hs) // lands in thread 0's home shard
	carved := p.cursor.Load()
	consumer := 1 // hashes to a different home shard than tid 0
	if p.shardOf(consumer) == p.shardOf(0) {
		t.Fatalf("test needs distinct home shards, got %d for both", p.shardOf(0))
	}
	for i := 0; i < 128; i++ {
		p.Alloc(consumer) // its home shard is empty; must steal from tid 0's
	}
	if got := p.cursor.Load(); got != carved {
		t.Fatalf("consumer carved fresh slots (cursor %d → %d) instead of stealing", carved, got)
	}
}

// TestShardedConcurrentReclaimers drives concurrent FreeBatch bursts and
// refills across every shard configuration under the race detector.
func TestShardedConcurrentReclaimers(t *testing.T) {
	for _, shards := range []int{1, 4} {
		t.Run(map[int]string{1: "contended", 4: "sharded"}[shards], func(t *testing.T) {
			const threads, rounds, burst = 8, 200, 64
			p := NewPool[rec](Config{MaxThreads: threads, CacheSize: 8, Shards: shards})
			var wg sync.WaitGroup
			for tid := 0; tid < threads; tid++ {
				wg.Add(1)
				go func(tid int) {
					defer wg.Done()
					batch := make([]Ptr, burst)
					for r := 0; r < rounds; r++ {
						for i := range batch {
							batch[i], _ = p.Alloc(tid)
						}
						p.FreeBatch(tid, batch)
					}
				}(tid)
			}
			wg.Wait()
			st := p.Stats()
			if st.Live != 0 {
				t.Fatalf("leak: live = %d after churn", st.Live)
			}
			if st.Allocs != st.Frees || st.Allocs != threads*rounds*burst {
				t.Fatalf("stats = %+v", st)
			}
		})
	}
}
