package mem

import (
	"sync"
	"testing"
)

// This file is the staging equivalence property test: a Hub that stages
// mixed bursts must be observably identical — allocator-stats-exact — to the
// pre-staging behavior of splitting every burst into per-owner FreeBatch
// calls, across adversarial tag interleavings and flush boundaries. Only the
// *shared-shard traffic* (GlobalOps) may differ; Frees, Live, slab growth
// and every handle's Valid flip must agree once the thread's staging is
// drained.

// stagingPattern deterministically picks the owner of the i-th retired
// record: the interleavings that historically defeated run-splitting.
type stagingPattern struct {
	name string
	tag  func(i, k int) int
}

var stagingPatterns = []stagingPattern{
	{"round-robin", func(i, k int) int { return i % k }},
	{"runs-of-2", func(i, k int) int { return (i / 2) % k }},
	{"one-owner", func(i, k int) int { return 0 }},
	{"lcg", func(i, k int) int {
		x := uint64(i)*6364136223846793005 + 1442695040888963407
		return int((x >> 33) % uint64(k))
	}},
}

// TestHubStagingEquivalence drives a staged Hub and a reference set of
// standalone pools through identical logical free sequences and asserts the
// pool-visible outcomes are exactly equal.
func TestHubStagingEquivalence(t *testing.T) {
	const (
		k       = 3
		records = 240
		burst   = 16 // declared reclamation burst (staging flush threshold)
	)
	for _, pat := range stagingPatterns {
		for _, batch := range []int{1, 3, 7, burst, 5 * burst} {
			h := NewHub(1)
			var hubPools, refPools [k]*Pool[recA]
			for tag := 0; tag < k; tag++ {
				hubPools[tag] = NewPool[recA](Config{MaxThreads: 1, Tag: h.NextTag()})
				h.Attach(tag, hubPools[tag])
				refPools[tag] = NewPool[recA](Config{MaxThreads: 1, Tag: tag})
			}
			h.SizeCache(0, burst)
			for _, p := range refPools {
				p.SizeCache(0, burst)
			}

			// Identical allocation order per owner on both sides.
			hubPtrs := make([]Ptr, 0, records)
			refPtrs := make([]Ptr, 0, records)
			for i := 0; i < records; i++ {
				tag := pat.tag(i, k)
				hp, _ := hubPools[tag].Alloc(0)
				rp, _ := refPools[tag].Alloc(0)
				hubPtrs = append(hubPtrs, hp)
				refPtrs = append(refPtrs, rp)
			}

			// Free in bursts of `batch`: the hub takes the mixed burst
			// whole; the reference splits it per owner — the old behavior,
			// which is the semantics staging must preserve.
			for lo := 0; lo < records; lo += batch {
				hi := lo + batch
				if hi > records {
					hi = records
				}
				h.FreeBatch(0, hubPtrs[lo:hi])
				var split [k][]Ptr
				for _, p := range refPtrs[lo:hi] {
					split[p.ArenaTag()] = append(split[p.ArenaTag()], p)
				}
				for tag, ps := range split {
					refPools[tag].FreeBatch(0, ps)
				}
			}
			h.DrainCache(0)
			for _, p := range refPools {
				p.DrainCache(0)
			}

			if h.Staged() != 0 {
				t.Fatalf("%s/batch=%d: %d records stranded in staging", pat.name, batch, h.Staged())
			}
			for tag := 0; tag < k; tag++ {
				hs, rs := hubPools[tag].Stats(), refPools[tag].Stats()
				if hs.Allocs != rs.Allocs || hs.Frees != rs.Frees || hs.Live != rs.Live || hs.SlabBytes != rs.SlabBytes {
					t.Fatalf("%s/batch=%d tag %d: staged %+v != direct %+v", pat.name, batch, tag, hs, rs)
				}
				if hs.Live != 0 {
					t.Fatalf("%s/batch=%d tag %d: %d live records after full free", pat.name, batch, tag, hs.Live)
				}
			}
			for i := range hubPtrs {
				if h.Valid(hubPtrs[i]) {
					t.Fatalf("%s/batch=%d: hub handle %v valid after drain", pat.name, batch, hubPtrs[i])
				}
				if refPools[refPtrs[i].ArenaTag()].Valid(refPtrs[i]) {
					t.Fatalf("%s/batch=%d: reference handle %v valid after drain", pat.name, batch, refPtrs[i])
				}
			}
		}
	}
}

// TestHubStagingConcurrent exercises the staging seam under -race: several
// owners stage and flush against the same pools concurrently, a pool
// attaches mid-run (its SizeCache replay racing the owners' traffic), and
// the books must balance exactly after every owner drains.
func TestHubStagingConcurrent(t *testing.T) {
	const (
		tids   = 4
		rounds = 50
		burst  = 32
	)
	h := NewHub(tids)
	pa := NewPool[recA](Config{MaxThreads: tids, Tag: h.NextTag()})
	h.Attach(0, pa)
	pb := NewPool[recB](Config{MaxThreads: tids, Tag: h.NextTag()})
	h.Attach(1, pb)
	for tid := 0; tid < tids; tid++ {
		h.SizeCache(tid, burst)
	}

	var late *Pool[recA]
	var attach sync.Once
	var wg sync.WaitGroup
	for tid := 0; tid < tids; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				if tid == 0 && r == rounds/2 {
					// A structure attaches while every owner is mid-burst:
					// the replayed SizeCache races their Alloc/Free traffic.
					attach.Do(func() {
						late = NewPool[recA](Config{MaxThreads: tids, Tag: h.NextTag()})
						h.Attach(2, late)
					})
				}
				var ps []Ptr
				for i := 0; i < burst/2; i++ {
					a, _ := pa.Alloc(tid)
					b, _ := pb.Alloc(tid)
					ps = append(ps, a, b)
					if tid == 0 && late != nil {
						c, _ := late.Alloc(tid)
						ps = append(ps, c)
					}
				}
				h.FreeBatch(tid, ps)
			}
			h.DrainCache(tid)
		}(tid)
	}
	wg.Wait()

	if h.Staged() != 0 {
		t.Fatalf("%d records stranded in staging after all owners drained", h.Staged())
	}
	for _, st := range []Stats{pa.Stats(), pb.Stats()} {
		if st.Allocs != st.Frees || st.Live != 0 {
			t.Fatalf("books unbalanced: %+v", st)
		}
	}
	if late == nil {
		t.Fatal("late pool never attached")
	}
	if st := late.Stats(); st.Allocs != st.Frees || st.Live != 0 {
		t.Fatalf("late pool unbalanced: %+v", st)
	}
}
