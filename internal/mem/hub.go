package mem

import (
	"fmt"
	"sync/atomic"
)

// Hub is one Arena standing in front of several typed pools, so one
// reclamation scheme (one set of limbo bags, one garbage bound) can serve
// several data structures at once. Each pool is attached under a distinct
// arena tag and stamps that tag into every handle it allocates (Config.Tag);
// the Hub routes every Arena call to the pool the handle's tag names. The
// scheme side needs no changes: its bags simply hold records whose owner
// travels inside the Ptr, and FreeBatch splits a mixed bag into per-owner
// runs so batched frees keep their one-shard-interaction amortization.
//
// Attach is construction-time wiring (the runtime attaches a structure's
// pool before any handle from it can circulate); the routing path is
// lock-free loads.
type Hub struct {
	subs [MaxTags]atomic.Pointer[hubSub]
	n    atomic.Int32
}

// hubSub boxes an attached Arena so the routing slot is one atomic pointer.
type hubSub struct {
	a Arena
}

// NewHub returns an empty Hub. It is a valid Arena immediately — a scheme
// may be constructed over it before any pool is attached, since no handle
// can reach the scheme before its pool exists.
func NewHub() *Hub {
	return &Hub{}
}

// NextTag returns the tag the next Attach will occupy. The caller constructs
// the pool with exactly this Config.Tag and then attaches it.
func (h *Hub) NextTag() int { return int(h.n.Load()) }

// Attach registers a pool under tag. Tags must be attached densely in order
// (tag == NextTag()), which is what guarantees every circulating handle
// routes to an attached pool; Attach panics otherwise, and when the Hub is
// full.
func (h *Hub) Attach(tag int, a Arena) {
	if tag != int(h.n.Load()) {
		panic(fmt.Sprintf("mem: Hub.Attach tag %d out of order (next is %d)", tag, h.n.Load()))
	}
	if tag >= MaxTags {
		panic(fmt.Sprintf("mem: Hub full (%d arenas)", MaxTags))
	}
	h.subs[tag].Store(&hubSub{a: a})
	h.n.Store(int32(tag + 1))
}

// Arenas returns the number of attached pools.
func (h *Hub) Arenas() int { return int(h.n.Load()) }

// Sub returns the pool attached under tag (nil if none).
func (h *Hub) Sub(tag int) Arena {
	if tag < 0 || tag >= MaxTags {
		return nil
	}
	if s := h.subs[tag].Load(); s != nil {
		return s.a
	}
	return nil
}

// route resolves p's owning pool, panicking on a tag no pool was attached
// under — a handle that cannot be routed is corrupt, never a benign state.
func (h *Hub) route(p Ptr) Arena {
	if s := h.subs[p.ArenaTag()].Load(); s != nil {
		return s.a
	}
	panic(fmt.Sprintf("mem: Hub cannot route %v (no arena attached under tag %d)", p, p.ArenaTag()))
}

// Free implements Arena by routing to the owning pool.
func (h *Hub) Free(tid int, p Ptr) { h.route(p).Free(tid, p) }

// FreeBatch implements Arena: the batch is split into maximal same-owner
// runs and each run handed to its pool's FreeBatch, so a burst that retires
// mostly within one structure keeps its single-interaction amortization. The
// slice is not retained. Worst-case (owners perfectly interleaved) this
// degrades to per-record dispatch, which is exactly what a Free loop would
// have cost.
func (h *Hub) FreeBatch(tid int, ps []Ptr) {
	for i := 0; i < len(ps); {
		tag := ps[i].ArenaTag()
		j := i + 1
		for j < len(ps) && ps[j].ArenaTag() == tag {
			j++
		}
		h.route(ps[i]).FreeBatch(tid, ps[i:j])
		i = j
	}
}

// Hdr implements Arena by routing to the owning pool.
func (h *Hub) Hdr(p Ptr) *Hdr { return h.route(p).Hdr(p) }

// Valid implements Arena by routing to the owning pool.
func (h *Hub) Valid(p Ptr) bool { return h.route(p).Valid(p) }

// SizeCache implements Arena by fanning out to every attached pool: the
// scheme's reclamation burst can land wholly in any one structure's pool, so
// each must absorb it locally.
func (h *Hub) SizeCache(tid, burst int) {
	for t := 0; t < int(h.n.Load()); t++ {
		h.subs[t].Load().a.SizeCache(tid, burst)
	}
}

// DrainCache implements Arena by fanning out to every attached pool, so a
// released thread slot strands no recyclable records in any structure.
func (h *Hub) DrainCache(tid int) {
	for t := 0; t < int(h.n.Load()); t++ {
		h.subs[t].Load().a.DrainCache(tid)
	}
}
