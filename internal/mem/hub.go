package mem

import (
	"fmt"
	"sync/atomic"

	"nbr/internal/obs"
)

// Hub is one Arena standing in front of several typed pools, so one
// reclamation scheme (one set of limbo bags, one garbage bound) can serve
// several data structures at once. Each pool is attached under a distinct
// arena tag and stamps that tag into every handle it allocates (Config.Tag);
// the Hub routes every Arena call to the pool the handle's tag names. The
// scheme side needs no changes: its bags simply hold records whose owner
// travels inside the Ptr.
//
// The free path keeps the single-pool FreeBatch amortization (one pool
// interaction per reclamation burst) even when retire streams from different
// structures interleave inside one bag. A uniform burst — every record owned
// by one pool — is dispatched directly. A mixed burst is staged per owner in
// small per-thread buffers and each owner's buffer is handed to its pool in
// one FreeBatch once it reaches the thread's declared reclamation burst
// (SizeCache), on DrainCache, or — when no burst was declared — at the end
// of the call. Perfectly interleaved retire streams thus cost one pool
// interaction per burst amortized, instead of one per same-owner run.
//
// Records sitting in a staging buffer have been counted as freed by the
// scheme but have not yet had their slot generation flipped by their pool;
// they are unreachable (retired) and cannot be recycled until flushed, so
// delaying the flip delays only use-after-free *detection*, never creates
// reuse. Staging is bounded by MaxTags·burst handles per thread and is
// always emptied by DrainCache, which every lease release and quiesce path
// calls (see DESIGN.md §11).
//
// Attach is construction-time wiring for the common case, but pools may also
// attach while leases are live: Attach replays the largest recorded
// reclamation burst onto the new pool for every thread slot, so a
// late-attaching structure's pool is sized exactly like one attached before
// the first lease (Pool.SizeCache is safe from any goroutine). The routing
// path is lock-free loads.
type Hub struct {
	subs [MaxTags]atomic.Pointer[hubSub]
	n    atomic.Int32

	// burst is the largest reclamation burst any SizeCache declared,
	// replayed onto late-attaching pools for every slot.
	burst atomic.Int32

	threads []hubThread

	bursts     atomic.Uint64 // FreeBatch calls received
	dispatches atomic.Uint64 // FreeBatch calls issued to pools
	staged     atomic.Int64  // records currently sitting in staging buffers

	// rec is the flight recorder; nil or disabled costs one branch per
	// dispatch/flush (obs methods are nil-safe).
	rec *obs.Recorder
}

// hubSub boxes an attached Arena so the routing slot is one atomic pointer.
type hubSub struct {
	a Arena
}

// hubThread is one thread's free-staging state. It is owned by whichever
// goroutine currently speaks for the slot — normally the leaseholder, but
// during recovery the goroutine running the slot's release (the holder on a
// voluntary or panic-unwind Release, the watchdog on a reap): FreeBatch,
// Free and DrainCache for a tid are only ever called by that one goroutine
// at a time, so the buffers need no locks. The handover is safe because the
// registry serializes it — a reaped slot's zombie is killed at its next
// delivery point (or its next public-API operation) before it can touch the
// buffers again, and the slot is not re-leased until recovery, including the
// DrainCache flush, has finished.
type hubThread struct {
	// tags[t] stages records owned by the pool attached under tag t.
	tags [MaxTags][]Ptr
	// thresh is the flush threshold (the thread's declared reclamation
	// burst); 0 disables cross-call staging — mixed bursts are still
	// grouped per owner but flushed before FreeBatch returns.
	thresh int
	_      [64]byte // keep neighbouring threads' staging state off one line
}

// HubStats is a snapshot of the Hub's free-path accounting. Dispatches per
// burst is the amortization the staging seam guards: ~1 means a reclamation
// burst costs one pool interaction however its owners interleave, exactly
// like a single-structure arena.
type HubStats struct {
	Bursts     uint64 // FreeBatch calls received from the scheme
	Dispatches uint64 // FreeBatch calls issued to owning pools
	Staged     int64  // records currently staged (not yet in any pool)
}

// NewHub returns an empty Hub with free-staging state for maxThreads dense
// thread slots. It is a valid Arena immediately — a scheme may be
// constructed over it before any pool is attached, since no handle can reach
// the scheme before its pool exists.
func NewHub(maxThreads int) *Hub {
	if maxThreads < 1 {
		maxThreads = 1
	}
	return &Hub{threads: make([]hubThread, maxThreads)}
}

// SetRecorder attaches a flight recorder to the free seam. Wire it before
// the Hub is used concurrently; a nil recorder (the default) keeps the free
// paths on their one-branch fast path.
func (h *Hub) SetRecorder(r *obs.Recorder) { h.rec = r }

// NextTag returns the tag the next Attach will occupy. The caller constructs
// the pool with exactly this Config.Tag and then attaches it.
func (h *Hub) NextTag() int { return int(h.n.Load()) }

// Attach registers a pool under tag. Tags must be attached densely in order
// (tag == NextTag()), which is what guarantees every circulating handle
// routes to an attached pool; Attach panics otherwise, and when the Hub is
// full. A pool attached after SizeCache calls (i.e. after leases were
// handed out) is sized for every thread slot at the recorded burst, so a
// late-attaching structure gets the same one-flush-per-burst cache sizing as
// one attached before the first lease.
func (h *Hub) Attach(tag int, a Arena) {
	if tag != int(h.n.Load()) {
		panic(fmt.Sprintf("mem: Hub.Attach tag %d out of order (next is %d)", tag, h.n.Load()))
	}
	if tag >= MaxTags {
		panic(fmt.Sprintf("mem: Hub full (%d arenas)", MaxTags))
	}
	if burst := int(h.burst.Load()); burst > 0 {
		for tid := range h.threads {
			a.SizeCache(tid, burst)
		}
	}
	h.subs[tag].Store(&hubSub{a: a})
	h.n.Store(int32(tag + 1))
}

// Arenas returns the number of attached pools.
func (h *Hub) Arenas() int { return int(h.n.Load()) }

// Sub returns the pool attached under tag (nil if none).
func (h *Hub) Sub(tag int) Arena {
	if tag < 0 || tag >= MaxTags {
		return nil
	}
	if s := h.subs[tag].Load(); s != nil {
		return s.a
	}
	return nil
}

// MaxThreads returns the number of thread slots the Hub stages frees for.
func (h *Hub) MaxThreads() int { return len(h.threads) }

// Stats returns the Hub's free-path counters.
func (h *Hub) Stats() HubStats {
	return HubStats{
		Bursts:     h.bursts.Load(),
		Dispatches: h.dispatches.Load(),
		Staged:     h.staged.Load(),
	}
}

// Staged returns the number of records currently held in staging buffers
// across all threads: counted as freed by the scheme, not yet released to
// their pools. It must read zero once every lease is released (DrainCache
// empties staging), which the dstest drain assertions enforce.
func (h *Hub) Staged() int64 { return h.staged.Load() }

// route resolves p's owning pool, panicking on a tag no pool was attached
// under — a handle that cannot be routed is corrupt, never a benign state.
func (h *Hub) route(p Ptr) Arena {
	if s := h.subs[p.ArenaTag()].Load(); s != nil {
		return s.a
	}
	panic(fmt.Sprintf("mem: Hub cannot route %v (no arena attached under tag %d)", p, p.ArenaTag()))
}

// Free implements Arena by routing to the owning pool. Single frees bypass
// staging: the per-record path has no burst to amortize.
func (h *Hub) Free(tid int, p Ptr) {
	if h.rec.Sampling() {
		h.rec.NoteFree(uint64(p))
	}
	h.route(p).Free(tid, p)
}

// FreeBatch implements Arena. A uniform batch (one owner, nothing staged
// for it) is dispatched directly — the single-structure fast path pays only
// a tag scan. A mixed batch is staged per owner and each owner's buffer is
// flushed in one pool FreeBatch when it reaches the thread's declared
// reclamation burst, so interleaved retire streams cost one pool interaction
// per burst amortized instead of one per same-owner run. Without a declared
// burst (SizeCache never called for this tid) every touched owner is flushed
// before returning — still one dispatch per owner per call, and no record
// outlives the call in staging. The slice is not retained.
func (h *Hub) FreeBatch(tid int, ps []Ptr) {
	if len(ps) == 0 {
		return
	}
	h.bursts.Add(1)
	ht := &h.threads[tid]

	tag := ps[0].ArenaTag()
	uniform := true
	for _, p := range ps[1:] {
		if p.ArenaTag() != tag {
			uniform = false
			break
		}
	}
	if uniform && len(ht.tags[tag]) == 0 {
		h.dispatches.Add(1)
		h.noteFrees(tid, ps, obs.EvHubDispatch)
		h.route(ps[0]).FreeBatch(tid, ps)
		return
	}

	for _, p := range ps {
		t := p.ArenaTag()
		if h.subs[t].Load() == nil {
			panic(fmt.Sprintf("mem: Hub cannot route %v (no arena attached under tag %d)", p, t))
		}
		ht.tags[t] = append(ht.tags[t], p)
	}
	h.staged.Add(int64(len(ps)))
	for t := 0; t < int(h.n.Load()); t++ {
		if buf := ht.tags[t]; len(buf) > 0 && len(buf) >= ht.thresh {
			h.flushTag(tid, ht, t)
		}
	}
}

// flushTag hands one owner's staged records to its pool in a single
// FreeBatch and resets the buffer (capacity kept: it is bounded by the
// declared burst plus one batch).
func (h *Hub) flushTag(tid int, ht *hubThread, t int) {
	buf := ht.tags[t]
	h.dispatches.Add(1)
	h.staged.Add(-int64(len(buf)))
	h.noteFrees(tid, buf, obs.EvStageFlush)
	h.subs[t].Load().a.FreeBatch(tid, buf)
	ht.tags[t] = buf[:0]
}

// noteFrees records the dispatch/flush event and, while garbage-age samples
// are outstanding, matches the freed handles against the recorder's sample
// table to close retire→free residence measurements. One branch when the
// recorder is off.
func (h *Hub) noteFrees(tid int, ps []Ptr, c obs.Code) {
	if !h.rec.Enabled() {
		return
	}
	h.rec.Rec(tid, c, uint64(len(ps)))
	if h.rec.Sampling() {
		for _, p := range ps {
			h.rec.NoteFree(uint64(p))
		}
	}
}

// Hdr implements Arena by routing to the owning pool.
func (h *Hub) Hdr(p Ptr) *Hdr { return h.route(p).Hdr(p) }

// SegmentWeight implements SegmentArena by routing to the owning pool. A
// pool without segment support weighs every handle 0 (not a segment), which
// is exact: only a SegmentArena can have created one.
func (h *Hub) SegmentWeight(p Ptr) int {
	if sa, ok := h.route(p).(SegmentArena); ok {
		return sa.SegmentWeight(p)
	}
	return 0
}

// CarveSegment implements SegmentArena by routing to the owning pool.
func (h *Hub) CarveSegment(tid int, p Ptr, take int) (Ptr, Ptr) {
	sa, ok := h.route(p).(SegmentArena)
	if !ok {
		panic(fmt.Sprintf("mem: CarveSegment of %v routed to arena without segment support", p))
	}
	h.rec.Rec(tid, obs.EvSegCarve, uint64(take))
	return sa.CarveSegment(tid, p, take)
}

// Valid implements Arena by routing to the owning pool. A staged record
// reads as valid until its flush flips the slot generation: it is retired
// and unreachable either way, so the delayed flip postpones use-after-free
// detection, not safety (the slot cannot be recycled while staged).
func (h *Hub) Valid(p Ptr) bool { return h.route(p).Valid(p) }

// SizeCache implements Arena by fanning out to every attached pool (the
// scheme's reclamation burst can land wholly in any one structure's pool, so
// each must absorb it locally) and adopting burst as tid's staging flush
// threshold. The largest declared burst is recorded so pools attached later
// are sized identically (see Attach).
func (h *Hub) SizeCache(tid, burst int) {
	for {
		cur := h.burst.Load()
		if int32(burst) <= cur || h.burst.CompareAndSwap(cur, int32(burst)) {
			break
		}
	}
	if ht := &h.threads[tid]; burst > ht.thresh {
		ht.thresh = burst
	}
	for t := 0; t < int(h.n.Load()); t++ {
		h.subs[t].Load().a.SizeCache(tid, burst)
	}
}

// DrainCache implements Arena: tid's staged frees are flushed to their
// owning pools first — a record must never be stranded in staging across a
// lease release or slot quarantine — and then every pool's thread cache is
// drained to the shared shards, so a released thread slot strands no
// recyclable records in any structure. The order matters: a quiesce path
// frees the departing thread's bags through FreeBatch (which may stage)
// right before the registry's drain hook runs, and the staged records must
// reach their pools' caches before those caches are flushed.
func (h *Hub) DrainCache(tid int) {
	ht := &h.threads[tid]
	for t := 0; t < int(h.n.Load()); t++ {
		if len(ht.tags[t]) > 0 {
			h.flushTag(tid, ht, t)
		}
	}
	for t := 0; t < int(h.n.Load()); t++ {
		h.subs[t].Load().a.DrainCache(tid)
	}
}
