package mem

import (
	"testing"
)

type recA struct{ v uint64 }
type recB struct{ v [3]uint64 }

// TestHubRouting pins the tag plumbing end to end: pools attached under
// distinct tags stamp their handles, the Hub routes Free/Hdr/Valid to the
// owner, and a mixed FreeBatch reaches both pools.
func TestHubRouting(t *testing.T) {
	h := NewHub()
	pa := NewPool[recA](Config{MaxThreads: 2, Tag: h.NextTag()})
	h.Attach(0, pa)
	pb := NewPool[recB](Config{MaxThreads: 2, Tag: h.NextTag()})
	h.Attach(1, pb)
	if h.Arenas() != 2 {
		t.Fatalf("Arenas = %d", h.Arenas())
	}

	a1, _ := pa.Alloc(0)
	b1, _ := pb.Alloc(0)
	if a1.ArenaTag() != 0 || b1.ArenaTag() != 1 {
		t.Fatalf("tags: a=%d b=%d", a1.ArenaTag(), b1.ArenaTag())
	}
	if a1.Idx() == 0 || a1.Idx() != b1.Idx() {
		// Both pools reserve slot 0, so their first allocations get the
		// same in-pool index — the tag is the only thing telling them apart.
		t.Fatalf("expected same in-pool idx, got %d vs %d", a1.Idx(), b1.Idx())
	}
	if uint64(a1) == uint64(b1) {
		t.Fatal("handles from different pools must differ")
	}

	if !h.Valid(a1) || !h.Valid(b1) {
		t.Fatal("fresh handles must be valid through the Hub")
	}
	h.Hdr(a1).SetBirth(7)
	if pa.Hdr(a1).Birth() != 7 {
		t.Fatal("Hub.Hdr did not reach pool A's header")
	}
	if pb.Hdr(b1).Birth() == 7 {
		t.Fatal("Hub.Hdr leaked into pool B")
	}

	// Mixed-owner batch: both records must come back to their own pools.
	a2, _ := pa.Alloc(0)
	b2, _ := pb.Alloc(0)
	h.FreeBatch(0, []Ptr{a1, b1, b2, a2})
	for _, p := range []Ptr{a1, a2, b1, b2} {
		if h.Valid(p) {
			t.Fatalf("%v still valid after FreeBatch", p)
		}
	}
	sa, sb := pa.Stats(), pb.Stats()
	if sa.Frees != 2 || sb.Frees != 2 {
		t.Fatalf("frees routed wrong: poolA=%d poolB=%d (want 2/2)", sa.Frees, sb.Frees)
	}

	// Marked handles route like their unmarked selves.
	a3, _ := pa.Alloc(1)
	h.Free(1, a3.WithMark())
	if pa.Valid(a3) {
		t.Fatal("marked free did not reach pool A")
	}
}

// TestHubMisroutePanics pins the release-side tag check: a handle freed
// into the wrong pool directly (bypassing the Hub) must panic rather than
// corrupt a foreign slot.
func TestHubMisroutePanics(t *testing.T) {
	h := NewHub()
	pa := NewPool[recA](Config{MaxThreads: 1, Tag: h.NextTag()})
	h.Attach(0, pa)
	pb := NewPool[recB](Config{MaxThreads: 1, Tag: h.NextTag()})
	h.Attach(1, pb)
	b, _ := pb.Alloc(0)
	defer func() {
		if recover() == nil {
			t.Fatal("freeing a tag-1 handle into the tag-0 pool must panic")
		}
	}()
	pa.Free(0, b)
}

// TestHubUnattachedTagPanics pins route's corruption check.
func TestHubUnattachedTagPanics(t *testing.T) {
	h := NewHub()
	pa := NewPool[recA](Config{MaxThreads: 1, Tag: 0})
	h.Attach(0, pa)
	p, _ := pa.Alloc(0)
	forged := Ptr(uint64(p) | uint64(3)<<tagShift) // tag 3 never attached
	defer func() {
		if recover() == nil {
			t.Fatal("routing a never-attached tag must panic")
		}
	}()
	h.Free(0, forged)
}
