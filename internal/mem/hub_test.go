package mem

import (
	"testing"
)

type recA struct{ v uint64 }
type recB struct{ v [3]uint64 }

// TestHubRouting pins the tag plumbing end to end: pools attached under
// distinct tags stamp their handles, the Hub routes Free/Hdr/Valid to the
// owner, and a mixed FreeBatch reaches both pools.
func TestHubRouting(t *testing.T) {
	h := NewHub(2)
	pa := NewPool[recA](Config{MaxThreads: 2, Tag: h.NextTag()})
	h.Attach(0, pa)
	pb := NewPool[recB](Config{MaxThreads: 2, Tag: h.NextTag()})
	h.Attach(1, pb)
	if h.Arenas() != 2 {
		t.Fatalf("Arenas = %d", h.Arenas())
	}

	a1, _ := pa.Alloc(0)
	b1, _ := pb.Alloc(0)
	if a1.ArenaTag() != 0 || b1.ArenaTag() != 1 {
		t.Fatalf("tags: a=%d b=%d", a1.ArenaTag(), b1.ArenaTag())
	}
	if a1.Idx() == 0 || a1.Idx() != b1.Idx() {
		// Both pools reserve slot 0, so their first allocations get the
		// same in-pool index — the tag is the only thing telling them apart.
		t.Fatalf("expected same in-pool idx, got %d vs %d", a1.Idx(), b1.Idx())
	}
	if uint64(a1) == uint64(b1) {
		t.Fatal("handles from different pools must differ")
	}

	if !h.Valid(a1) || !h.Valid(b1) {
		t.Fatal("fresh handles must be valid through the Hub")
	}
	h.Hdr(a1).SetBirth(7)
	if pa.Hdr(a1).Birth() != 7 {
		t.Fatal("Hub.Hdr did not reach pool A's header")
	}
	if pb.Hdr(b1).Birth() == 7 {
		t.Fatal("Hub.Hdr leaked into pool B")
	}

	// Mixed-owner batch: both records must come back to their own pools.
	a2, _ := pa.Alloc(0)
	b2, _ := pb.Alloc(0)
	h.FreeBatch(0, []Ptr{a1, b1, b2, a2})
	for _, p := range []Ptr{a1, a2, b1, b2} {
		if h.Valid(p) {
			t.Fatalf("%v still valid after FreeBatch", p)
		}
	}
	sa, sb := pa.Stats(), pb.Stats()
	if sa.Frees != 2 || sb.Frees != 2 {
		t.Fatalf("frees routed wrong: poolA=%d poolB=%d (want 2/2)", sa.Frees, sb.Frees)
	}

	// Marked handles route like their unmarked selves.
	a3, _ := pa.Alloc(1)
	h.Free(1, a3.WithMark())
	if pa.Valid(a3) {
		t.Fatal("marked free did not reach pool A")
	}
}

// TestHubLateAttachSizesCache is the regression test for pools attached
// after leases are held: Hub.SizeCache historically fanned out only to
// already-attached pools, so a late attachment kept its default cache target
// and paid a shared-shard flush per burst. Attach must replay the recorded
// burst for every thread slot.
func TestHubLateAttachSizesCache(t *testing.T) {
	const burst = 1024
	h := NewHub(4)
	// Leases exist first: the scheme declares its reclamation burst for a
	// live slot while no pool is attached yet.
	h.SizeCache(2, burst)

	p := NewPool[recA](Config{MaxThreads: 4, Tag: h.NextTag()})
	h.Attach(0, p)

	ps := make([]Ptr, burst)
	for i := range ps {
		ps[i], _ = p.Alloc(2)
	}
	h.FreeBatch(2, ps)
	if ops := p.Stats().GlobalOps; ops != 0 {
		t.Fatalf("late-attached pool hit the shared shards %d times for one declared burst; its cache was not sized", ops)
	}
	if st := p.Stats(); st.Frees != burst {
		t.Fatalf("Frees = %d, want %d", st.Frees, burst)
	}
}

// TestHubStagingLifecycle pins the per-thread per-tag staging buffers: a
// mixed burst below the declared reclamation burst stays staged (counted
// freed by no pool, still Valid), crossing the threshold flushes one pool
// FreeBatch per owner, and DrainCache empties every buffer.
func TestHubStagingLifecycle(t *testing.T) {
	const thresh = 4
	h := NewHub(1)
	pa := NewPool[recA](Config{MaxThreads: 1, Tag: h.NextTag()})
	h.Attach(0, pa)
	pb := NewPool[recB](Config{MaxThreads: 1, Tag: h.NextTag()})
	h.Attach(1, pb)
	h.SizeCache(0, thresh)

	alloc := func(p *Pool[recA], q *Pool[recB], n int) (as, bs []Ptr) {
		for i := 0; i < n; i++ {
			a, _ := p.Alloc(0)
			b, _ := q.Alloc(0)
			as, bs = append(as, a), append(bs, b)
		}
		return
	}
	as, bs := alloc(pa, pb, thresh)

	// Two mixed sub-threshold bursts: everything stages, nothing reaches a
	// pool, handles still read valid (the generation flip is deferred).
	h.FreeBatch(0, []Ptr{as[0], bs[0], as[1], bs[1]})
	h.FreeBatch(0, []Ptr{as[2], bs[2]})
	if st := h.Stats(); st.Staged != 6 || st.Dispatches != 0 || st.Bursts != 2 {
		t.Fatalf("after sub-threshold bursts: %+v", st)
	}
	if pa.Stats().Frees != 0 || pb.Stats().Frees != 0 {
		t.Fatal("staged records must not reach the pools")
	}
	if !h.Valid(as[0]) || !h.Valid(bs[2]) {
		t.Fatal("staged records must still read valid")
	}

	// The burst that fills both buffers to the threshold flushes each owner
	// in exactly one pool FreeBatch.
	h.FreeBatch(0, []Ptr{as[3], bs[3]})
	if st := h.Stats(); st.Staged != 0 || st.Dispatches != 2 {
		t.Fatalf("after threshold crossing: %+v", st)
	}
	if pa.Stats().Frees != thresh || pb.Stats().Frees != thresh {
		t.Fatalf("frees: a=%d b=%d, want %d/%d", pa.Stats().Frees, pb.Stats().Frees, thresh, thresh)
	}
	for _, p := range append(as, bs...) {
		if h.Valid(p) {
			t.Fatalf("%v still valid after flush", p)
		}
	}

	// DrainCache flushes a part-filled buffer: no record survives a lease
	// release in staging.
	as, bs = alloc(pa, pb, 1)
	h.FreeBatch(0, []Ptr{as[0], bs[0]})
	if h.Staged() != 2 {
		t.Fatalf("Staged = %d, want 2", h.Staged())
	}
	h.DrainCache(0)
	if h.Staged() != 0 || h.Valid(as[0]) || h.Valid(bs[0]) {
		t.Fatal("DrainCache must flush staged records to their pools")
	}
}

// TestHubUniformFastPath pins the single-structure path: a uniform burst
// with nothing staged for its owner bypasses staging entirely — one direct
// pool dispatch, nothing ever staged — so a Domain pays only a tag scan.
func TestHubUniformFastPath(t *testing.T) {
	h := NewHub(1)
	pa := NewPool[recA](Config{MaxThreads: 1, Tag: h.NextTag()})
	h.Attach(0, pa)
	h.SizeCache(0, 64)

	ps := make([]Ptr, 8)
	for i := range ps {
		ps[i], _ = pa.Alloc(0)
	}
	h.FreeBatch(0, ps)
	st := h.Stats()
	if st.Bursts != 1 || st.Dispatches != 1 || st.Staged != 0 {
		t.Fatalf("uniform burst must dispatch directly: %+v", st)
	}
	if pa.Stats().Frees != 8 {
		t.Fatalf("Frees = %d, want 8", pa.Stats().Frees)
	}
}

// TestHubMisroutePanics pins the release-side tag check: a handle freed
// into the wrong pool directly (bypassing the Hub) must panic rather than
// corrupt a foreign slot.
func TestHubMisroutePanics(t *testing.T) {
	h := NewHub(1)
	pa := NewPool[recA](Config{MaxThreads: 1, Tag: h.NextTag()})
	h.Attach(0, pa)
	pb := NewPool[recB](Config{MaxThreads: 1, Tag: h.NextTag()})
	h.Attach(1, pb)
	b, _ := pb.Alloc(0)
	defer func() {
		if recover() == nil {
			t.Fatal("freeing a tag-1 handle into the tag-0 pool must panic")
		}
	}()
	pa.Free(0, b)
}

// TestHubUnattachedTagPanics pins route's corruption check.
func TestHubUnattachedTagPanics(t *testing.T) {
	h := NewHub(1)
	pa := NewPool[recA](Config{MaxThreads: 1, Tag: 0})
	h.Attach(0, pa)
	p, _ := pa.Alloc(0)
	forged := Ptr(uint64(p) | uint64(3)<<tagShift) // tag 3 never attached
	defer func() {
		if recover() == nil {
			t.Fatal("routing a never-attached tag must panic")
		}
	}()
	h.Free(0, forged)
}
