package mem

import (
	"sync"
	"testing"
	"testing/quick"
)

type rec struct {
	key  uint64
	next uint64
}

func newTestPool(threads int) *Pool[rec] {
	return NewPool[rec](Config{MaxThreads: threads, CacheSize: 16})
}

func TestPtrPackRoundTrip(t *testing.T) {
	p := pack(12345, 678, 0)
	if p.Idx() != 12345 || p.Gen() != 678 {
		t.Fatalf("roundtrip got idx=%d gen=%d", p.Idx(), p.Gen())
	}
	if p.Marked() {
		t.Fatal("fresh handle should be unmarked")
	}
}

func TestPtrMarkBit(t *testing.T) {
	p := pack(7, 3, 0)
	m := p.WithMark()
	if !m.Marked() {
		t.Fatal("WithMark did not set mark")
	}
	if m.Unmarked() != p {
		t.Fatal("Unmarked did not restore original")
	}
	if m.Idx() != p.Idx() || m.Gen() != p.Gen() {
		t.Fatal("mark bit disturbed idx/gen")
	}
	if m.IsNull() {
		t.Fatal("marked non-null handle reported null")
	}
}

func TestNullHandle(t *testing.T) {
	if !Null.IsNull() {
		t.Fatal("Null must be null")
	}
	if !Null.WithMark().IsNull() {
		t.Fatal("marked Null must still be null")
	}
	if Null.String() != "mem.Null" {
		t.Fatalf("Null string: %q", Null.String())
	}
}

func TestPtrQuickPacking(t *testing.T) {
	f := func(idx uint32, gen uint32, tag uint8) bool {
		gen &= uint32(genMask)
		idx &= slotIdxMask
		tg := int(tag) % MaxTags
		p := pack(idx, gen, tg)
		return p.Idx() == idx && p.Gen() == gen && p.ArenaTag() == tg &&
			p.WithMark().Unmarked() == p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAllocNeverNull(t *testing.T) {
	p := newTestPool(1)
	for i := 0; i < 1000; i++ {
		h, _ := p.Alloc(0)
		if h.IsNull() {
			t.Fatalf("alloc %d returned null handle", i)
		}
	}
}

func TestAllocGenIsOdd(t *testing.T) {
	p := newTestPool(1)
	h, _ := p.Alloc(0)
	if h.Gen()%2 != 1 {
		t.Fatalf("live generation must be odd, got %d", h.Gen())
	}
}

func TestAllocFreeRealloc(t *testing.T) {
	p := newTestPool(1)
	h1, v := p.Alloc(0)
	v.key = 42
	p.Free(0, h1)
	if p.Valid(h1) {
		t.Fatal("freed handle still valid")
	}
	h2, _ := p.Alloc(0)
	if h2.Idx() != h1.Idx() {
		t.Fatalf("expected LIFO reuse of slot %d, got %d", h1.Idx(), h2.Idx())
	}
	if h2.Gen() == h1.Gen() {
		t.Fatal("reallocation did not bump generation")
	}
	if !p.Valid(h2) || p.Valid(h1) {
		t.Fatal("validity must follow generation")
	}
}

func TestGetStaleAfterFree(t *testing.T) {
	p := newTestPool(1)
	h, _ := p.Alloc(0)
	if _, ok := p.Get(h); !ok {
		t.Fatal("live handle must Get")
	}
	p.Free(0, h)
	if _, ok := p.Get(h); ok {
		t.Fatal("stale handle must not Get")
	}
	if _, ok := p.Get(Null); ok {
		t.Fatal("null handle must not Get")
	}
}

func TestMustGetPanicsOnStale(t *testing.T) {
	p := newTestPool(1)
	h, _ := p.Alloc(0)
	p.Free(0, h)
	defer func() {
		if recover() == nil {
			t.Fatal("MustGet on stale handle must panic")
		}
	}()
	p.MustGet(h)
}

func TestDoubleFreePanics(t *testing.T) {
	p := newTestPool(1)
	h, _ := p.Alloc(0)
	p.Free(0, h)
	defer func() {
		if recover() == nil {
			t.Fatal("double free must panic")
		}
	}()
	p.Free(0, h)
}

func TestFreeNullPanics(t *testing.T) {
	p := newTestPool(1)
	defer func() {
		if recover() == nil {
			t.Fatal("free of Null must panic")
		}
	}()
	p.Free(0, Null)
}

func TestFreeMarkedHandle(t *testing.T) {
	p := newTestPool(1)
	h, _ := p.Alloc(0)
	p.Free(0, h.WithMark()) // mark bit must be ignored by the allocator
	if p.Valid(h) {
		t.Fatal("free through marked handle did not free the slot")
	}
}

func TestHdrEras(t *testing.T) {
	p := newTestPool(1)
	h, _ := p.Alloc(0)
	hd := p.Hdr(h)
	hd.SetBirth(7)
	hd.SetRetire(11)
	if hd.Birth() != 7 || hd.Retire() != 11 {
		t.Fatalf("era roundtrip got birth=%d retire=%d", hd.Birth(), hd.Retire())
	}
}

func TestStatsAccounting(t *testing.T) {
	p := newTestPool(2)
	var hs []Ptr
	for i := 0; i < 100; i++ {
		h, _ := p.Alloc(i % 2)
		hs = append(hs, h)
	}
	for _, h := range hs[:40] {
		p.Free(1, h)
	}
	st := p.Stats()
	if st.Allocs != 100 || st.Frees != 40 || st.Live != 60 {
		t.Fatalf("stats = %+v", st)
	}
	if st.LiveBytes != 60*int64(st.SlotSize) {
		t.Fatalf("LiveBytes = %d, slot %d", st.LiveBytes, st.SlotSize)
	}
	if st.SlabBytes == 0 {
		t.Fatal("SlabBytes must reflect carved slabs")
	}
}

func TestCrossThreadRecycling(t *testing.T) {
	p := NewPool[rec](Config{MaxThreads: 2, CacheSize: 4})
	var hs []Ptr
	for i := 0; i < 64; i++ {
		h, _ := p.Alloc(0)
		hs = append(hs, h)
	}
	for _, h := range hs {
		p.Free(0, h) // overflows thread 0's cache into the global list
	}
	st := p.Stats()
	if st.GlobalOps == 0 {
		t.Fatal("expected flushes to the global free list")
	}
	seen := make(map[uint32]bool)
	for i := 0; i < 64; i++ {
		h, _ := p.Alloc(1) // thread 1 must be able to reuse them
		seen[h.Idx()] = true
	}
	reused := 0
	for _, h := range hs {
		if seen[h.Idx()] {
			reused++
		}
	}
	if reused == 0 {
		t.Fatal("thread 1 never reused thread 0's recycled slots")
	}
}

func TestSlabGrowth(t *testing.T) {
	p := newTestPool(1)
	n := SlabSize + SlabSize/2
	for i := 0; i < n; i++ {
		h, v := p.Alloc(0)
		v.key = uint64(i)
		if !p.Valid(h) {
			t.Fatalf("handle %d invalid right after alloc", i)
		}
	}
	if got := p.Stats().Live; got != int64(n) {
		t.Fatalf("live = %d, want %d", got, n)
	}
}

func TestRawAndValidDiscipline(t *testing.T) {
	p := newTestPool(1)
	h, v := p.Alloc(0)
	v.key = 9
	raw := p.Raw(h)
	if raw.key != 9 {
		t.Fatal("Raw must address the record")
	}
	if !p.Valid(h) {
		t.Fatal("Valid must hold before free")
	}
	p.Free(0, h)
	if p.Valid(h) {
		t.Fatal("Valid must fail after free")
	}
}

func TestConcurrentChurn(t *testing.T) {
	const threads = 8
	const iters = 20000
	p := NewPool[rec](Config{MaxThreads: threads, CacheSize: 8})
	var wg sync.WaitGroup
	for tid := 0; tid < threads; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			var held []Ptr
			rng := uint64(tid)*2654435761 + 1
			for i := 0; i < iters; i++ {
				rng = rng*6364136223846793005 + 1442695040888963407
				if rng%3 != 0 || len(held) == 0 {
					h, v := p.Alloc(tid)
					v.key = uint64(tid)
					held = append(held, h)
				} else {
					h := held[len(held)-1]
					held = held[:len(held)-1]
					if !p.Valid(h) {
						panic("held handle went stale")
					}
					p.Free(tid, h)
				}
			}
			for _, h := range held {
				p.Free(tid, h)
			}
		}(tid)
	}
	wg.Wait()
	st := p.Stats()
	if st.Live != 0 {
		t.Fatalf("leak: live = %d after churn", st.Live)
	}
	if st.Allocs != st.Frees {
		t.Fatalf("allocs %d != frees %d", st.Allocs, st.Frees)
	}
}

func TestQuickAllocFreeInvariant(t *testing.T) {
	p := newTestPool(1)
	live := make(map[Ptr]bool)
	f := func(doFree bool) bool {
		if doFree && len(live) > 0 {
			for h := range live {
				delete(live, h)
				p.Free(0, h)
				if p.Valid(h) {
					return false
				}
				break
			}
		} else {
			h, _ := p.Alloc(0)
			if live[h] {
				return false // duplicate live handle would be catastrophic
			}
			live[h] = true
			if !p.Valid(h) {
				return false
			}
		}
		for h := range live {
			if !p.Valid(h) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
