package mem

import (
	"testing"
	"testing/quick"
)

// TestAllocBatchStatsExact is the AllocBatch property test: for any batch
// size, carving once must leave the pool in a state statistically identical
// to n individual Allocs — same alloc/free counters, same liveness — and the
// run's members must be live, contiguous, valid handles.
func TestAllocBatchStatsExact(t *testing.T) {
	prop := func(sz uint8) bool {
		n := int(sz)%128 + 1
		batch := newTestPool(1)
		loop := newTestPool(1)

		run := batch.AllocBatch(0, n)
		for i := 0; i < n; i++ {
			loop.Alloc(0)
		}

		if run.Len() != n {
			return false
		}
		for i := 0; i < n; i++ {
			p := run.At(i)
			if !batch.Valid(p) {
				return false
			}
			// Contiguity: member handles are index arithmetic off First.
			if p != run.First()+Ptr(i) {
				return false
			}
			if r := batch.Raw(p); r.key != 0 || r.next != 0 {
				return false // batch slots are guaranteed zero
			}
		}
		bs, ls := batch.Stats(), loop.Stats()
		return bs.Allocs == ls.Allocs && bs.Frees == ls.Frees && bs.Live == ls.Live
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 64}); err != nil {
		t.Fatal(err)
	}
}

func TestAllocBatchInvalidSizePanics(t *testing.T) {
	p := newTestPool(1)
	defer func() {
		if recover() == nil {
			t.Fatal("AllocBatch(0) must panic")
		}
	}()
	p.AllocBatch(0, 0)
}

// TestSegmentFreeFansOut checks the whole lifecycle: wrap a run, weigh it,
// free the handle, and observe every member slot released with exact
// statistics (n members + 1 handle).
func TestSegmentFreeFansOut(t *testing.T) {
	p := newTestPool(1)
	const n = 10
	run := p.AllocBatch(0, n)
	seg := p.NewSegment(0, run)

	if w := p.SegmentWeight(seg); w != n {
		t.Fatalf("SegmentWeight = %d, want %d", w, n)
	}
	if w := p.SegmentWeight(run.At(0)); w != 0 {
		t.Fatalf("member slot reported as segment (weight %d)", w)
	}
	if w := SegWeight(p, seg.WithMark()); w != n {
		t.Fatalf("SegWeight must ignore the mark bit, got %d", w)
	}

	p.Free(0, seg)
	for i := 0; i < n; i++ {
		if p.Valid(run.At(i)) {
			t.Fatalf("member %d still live after the handle was freed", i)
		}
	}
	if p.Valid(seg) {
		t.Fatal("handle slot still live after Free")
	}
	st := p.Stats()
	if st.Frees != n+1 || st.Live != int64(st.Allocs)-int64(st.Frees) {
		t.Fatalf("stats after fan-out: %+v", st)
	}
	if w := p.SegmentWeight(seg); w != 0 {
		t.Fatalf("freed segment still in directory (weight %d)", w)
	}
}

// TestFreeBatchFansOutSegments mixes a segment handle with ordinary slots in
// one FreeBatch, the shape a scheme's sweep produces.
func TestFreeBatchFansOutSegments(t *testing.T) {
	p := newTestPool(1)
	const n = 6
	run := p.AllocBatch(0, n)
	seg := p.NewSegment(0, run)
	a, _ := p.Alloc(0)
	b, _ := p.Alloc(0)

	p.FreeBatch(0, []Ptr{a, seg, b})
	for i := 0; i < n; i++ {
		if p.Valid(run.At(i)) {
			t.Fatalf("member %d survived FreeBatch fan-out", i)
		}
	}
	for _, q := range []Ptr{a, seg, b} {
		if p.Valid(q) {
			t.Fatalf("%v survived FreeBatch", q)
		}
	}
	if st := p.Stats(); st.Frees != n+3 {
		t.Fatalf("Frees = %d, want %d", st.Frees, n+3)
	}
}

// TestCarveSegment splits watermark-sized prefixes off a segment and checks
// both pieces stay live, correctly sized, and independently freeable.
func TestCarveSegment(t *testing.T) {
	p := newTestPool(1)
	const n = 16
	run := p.AllocBatch(0, n)
	seg := p.NewSegment(0, run)

	head, rest := p.CarveSegment(0, seg, 5)
	if rest != seg {
		t.Fatalf("rest must keep the original handle identity, got %v want %v", rest, seg)
	}
	if w := p.SegmentWeight(head); w != 5 {
		t.Fatalf("head weight = %d, want 5", w)
	}
	if w := p.SegmentWeight(rest); w != n-5 {
		t.Fatalf("rest weight = %d, want %d", w, n-5)
	}

	// take >= weight returns the segment unsplit and allocates nothing.
	allocs := p.Stats().Allocs
	same, none := p.CarveSegment(0, rest, n-5)
	if same != rest || none != Null {
		t.Fatalf("full-width carve = (%v, %v), want (%v, Null)", same, none, rest)
	}
	if p.Stats().Allocs != allocs {
		t.Fatal("full-width carve must not allocate")
	}

	p.Free(0, head)
	for i := 0; i < 5; i++ {
		if p.Valid(run.At(i)) {
			t.Fatalf("carved member %d survived its piece's free", i)
		}
	}
	for i := 5; i < n; i++ {
		if !p.Valid(run.At(i)) {
			t.Fatalf("member %d of the remainder freed early", i)
		}
	}
	p.Free(0, rest)
	for i := 5; i < n; i++ {
		if p.Valid(run.At(i)) {
			t.Fatalf("remainder member %d survived the final free", i)
		}
	}
}

// TestDissolveSegment checks the per-record baseline seam: after dissolving,
// the handle is an ordinary slot, the members are individually owned, and
// the directory entry is gone.
func TestDissolveSegment(t *testing.T) {
	p := newTestPool(1)
	const n = 8
	run := p.AllocBatch(0, n)
	seg := p.NewSegment(0, run)

	got, ok := p.DissolveSegment(seg)
	if !ok || got.Len() != n || got.First() != run.First() {
		t.Fatalf("DissolveSegment = (%v, %v)", got, ok)
	}
	if w := p.SegmentWeight(seg); w != 0 {
		t.Fatalf("dissolved handle still weighs %d", w)
	}
	if _, ok := p.DissolveSegment(seg); ok {
		t.Fatal("second dissolve must fail")
	}

	// Freeing the handle now releases only the handle slot.
	p.Free(0, seg)
	for i := 0; i < n; i++ {
		if !p.Valid(run.At(i)) {
			t.Fatalf("member %d freed by a dissolved handle", i)
		}
		p.Free(0, run.At(i))
	}
	if st := p.Stats(); st.Live != 0 {
		t.Fatalf("Live = %d after freeing everything", st.Live)
	}
}

// TestNewSegmentWrongTagPanics pins the tag ownership check.
func TestNewSegmentWrongTagPanics(t *testing.T) {
	p := NewPool[rec](Config{MaxThreads: 1, Tag: 1})
	q := NewPool[rec](Config{MaxThreads: 1, Tag: 2})
	run := p.AllocBatch(0, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("NewSegment of a foreign run must panic")
		}
	}()
	q.NewSegment(0, run)
}
