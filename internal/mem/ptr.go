// Package mem is the manual-memory substrate for the NBR reproduction.
//
// The paper's SMR algorithms assume records are malloc'd and free'd; Go's
// garbage collector offers neither. This package restores explicit
// allocate/free semantics with a slab pool: records live in slabs, are
// addressed by generation-tagged 64-bit handles (Ptr), and are recycled
// through per-thread caches backed by a shared free list. Freeing a record
// bumps its slot generation, so any later dereference through a stale handle
// is detected deterministically — the reproduction's equivalent of a
// use-after-free crash under an address sanitizer.
package mem

import "fmt"

// Ptr is a generation-tagged handle to a pool slot. The zero value is the
// nil handle. Layout (most significant bit first):
//
//	bit  63     user mark bit (Harris-style marked pointers)
//	bits 62..32 slot generation (odd = live)
//	bits 31..28 arena tag (which pool behind a Hub owns the slot)
//	bits 27..0  slot index
//
// The mark bit belongs to the data structure, not the allocator: two handles
// that differ only in the mark bit address the same record. All Pool methods
// ignore the mark bit, so callers may pass marked handles directly.
//
// The arena tag is what lets several typed pools stand behind one shared
// mem.Arena (a Hub): a pool constructed with Config.Tag k stamps k into
// every handle it returns, so a reclamation scheme holding a mixed bag of
// retired records from many structures can route each free back to the pool
// that owns it without per-record bookkeeping. maxSlots is 2^28, so the tag
// bits are free; a pool with Tag 0 (the default) produces exactly the
// handles it always did.
type Ptr uint64

// Null is the nil handle. Slot 0 is never allocated, so no live handle
// compares equal to Null even with its mark bit cleared.
const Null Ptr = 0

// MaxTags is the number of distinct arena tags a Ptr can carry — the most
// pools one Hub can stand in front of.
const MaxTags = 1 << tagBits

const (
	markBit = Ptr(1) << 63
	genMask = (uint64(1) << 31) - 1

	tagBits     = 4
	tagShift    = 32 - tagBits
	slotIdxMask = uint32(1)<<tagShift - 1
)

// pack builds a handle from a slot index, generation and arena tag.
func pack(idx uint32, gen uint32, tag int) Ptr {
	return Ptr(uint64(idx) | uint64(tag)<<tagShift | (uint64(gen)&genMask)<<32)
}

// Idx returns the slot index of p within its owning pool (the arena tag
// stripped).
func (p Ptr) Idx() uint32 { return uint32(p) & slotIdxMask }

// ArenaTag returns which pool behind a Hub owns p's slot (0 for a pool
// constructed without a tag).
func (p Ptr) ArenaTag() int { return int(uint32(p) >> tagShift) }

// Gen returns the slot generation p was created with.
func (p Ptr) Gen() uint32 { return uint32((uint64(p) >> 32) & genMask) }

// IsNull reports whether p is the nil handle (ignoring the mark bit).
func (p Ptr) IsNull() bool { return p&^markBit == Null }

// Marked reports whether the user mark bit is set.
func (p Ptr) Marked() bool { return p&markBit != 0 }

// WithMark returns p with the user mark bit set.
func (p Ptr) WithMark() Ptr { return p | markBit }

// Unmarked returns p with the user mark bit cleared.
func (p Ptr) Unmarked() Ptr { return p &^ markBit }

// String formats p for diagnostics.
func (p Ptr) String() string {
	if p.IsNull() {
		return "mem.Null"
	}
	m := ""
	if p.Marked() {
		m = "*"
	}
	if t := p.ArenaTag(); t != 0 {
		return fmt.Sprintf("mem.Ptr{arena:%d idx:%d gen:%d%s}", t, p.Idx(), p.Gen(), m)
	}
	return fmt.Sprintf("mem.Ptr{idx:%d gen:%d%s}", p.Idx(), p.Gen(), m)
}
