package mem

import (
	"fmt"
	"sync"
	"sync/atomic"
	"unsafe"
)

const (
	slabBits = 14
	// SlabSize is the number of slots carved per slab.
	SlabSize = 1 << slabBits
	maxSlabs = 1 << 14
	maxSlots = maxSlabs * SlabSize

	// carveBatch is how many never-used slots a thread claims from the bump
	// cursor at once, and refillBatch how many recycled slots it pulls from
	// the shared free list at once.
	carveBatch  = 64
	refillBatch = 64
)

// Hdr is the per-slot allocator header. The generation counter implements
// use-after-free detection (even = free, odd = live); the birth and retire
// eras are reserved for era-based SMR schemes (IBR, hazard eras) which the
// paper notes require per-record metadata. All fields are accessed atomically.
type Hdr struct {
	gen    uint32
	_      uint32
	birth  uint64
	retire uint64
}

// Birth returns the record's allocation era (set by era-based schemes).
func (h *Hdr) Birth() uint64 { return atomic.LoadUint64(&h.birth) }

// SetBirth records the record's allocation era.
func (h *Hdr) SetBirth(e uint64) { atomic.StoreUint64(&h.birth, e) }

// Retire returns the record's retirement tag (era or epoch, scheme-defined).
func (h *Hdr) Retire() uint64 { return atomic.LoadUint64(&h.retire) }

// SetRetire records the record's retirement tag.
func (h *Hdr) SetRetire(e uint64) { atomic.StoreUint64(&h.retire, e) }

// Arena is the type-erased view of a Pool that SMR schemes hold: enough to
// free retired records and to tag them with eras, without knowing the record
// type.
type Arena interface {
	// Free returns a retired record to the allocator. It panics if the
	// handle is stale (double free) — reclaiming the same record twice is
	// always an SMR bug.
	Free(tid int, p Ptr)
	// Hdr exposes the allocator header of a live or retired record.
	Hdr(p Ptr) *Hdr
	// Valid reports whether p still addresses the allocation it was created
	// by (i.e. the record has not been freed).
	Valid(p Ptr) bool
}

// Config sizes a Pool.
type Config struct {
	// MaxThreads is the number of thread ids (0..MaxThreads-1) that will
	// call Alloc/Free. Required.
	MaxThreads int
	// CacheSize is the per-thread free-cache target; when a thread's cache
	// exceeds twice this value, half is flushed to the shared free list
	// (the jemalloc tcache/arena analogue). Default 128.
	CacheSize int
}

func (c Config) withDefaults() Config {
	if c.MaxThreads <= 0 {
		c.MaxThreads = 1
	}
	if c.CacheSize <= 0 {
		c.CacheSize = 128
	}
	return c
}

// Pool is a slab allocator for records of type T. Each slot carries a Hdr
// whose generation tags handles; see the package comment. Alloc and Free are
// safe for concurrent use provided each goroutine uses its own thread id.
type Pool[T any] struct {
	cfg Config

	// slab directory: published once under growMu, read lock-free.
	slabs  [maxSlabs]atomic.Pointer[[SlabSize]slot[T]]
	cursor atomic.Uint64 // next never-carved slot index
	growMu sync.Mutex

	global  globalFree
	threads []tcache
}

type slot[T any] struct {
	hdr Hdr
	val T
}

// globalFree is the shared recycled-slot list. It is deliberately a single
// mutex-protected structure: reclamation bursts from many threads contend
// here, reproducing the allocator-bottleneck effect the paper attributes to
// DEBRA's burst reclamation.
type globalFree struct {
	mu   sync.Mutex
	free []uint32
	ops  atomic.Uint64 // lock acquisitions, reported in Stats
}

type tcache struct {
	free   []uint32
	allocs atomic.Uint64
	frees  atomic.Uint64
	_      [64]byte
}

// NewPool creates a pool. Slot 0 is reserved so that no live handle is Null.
func NewPool[T any](cfg Config) *Pool[T] {
	p := &Pool[T]{cfg: cfg.withDefaults()}
	p.threads = make([]tcache, p.cfg.MaxThreads)
	p.cursor.Store(1) // reserve slot 0
	return p
}

// MaxThreads returns the number of thread ids the pool was sized for.
func (p *Pool[T]) MaxThreads() int { return p.cfg.MaxThreads }

func (p *Pool[T]) slotAt(idx uint32) *slot[T] {
	s := p.slabs[idx>>slabBits].Load()
	if s == nil {
		panic(fmt.Sprintf("mem: handle into unallocated slab (idx %d)", idx))
	}
	return &s[idx&(SlabSize-1)]
}

// Raw returns the record for p without validating its generation. Callers
// must follow the copy-then-Valid discipline, or hold a protection (lock,
// reservation, hazard pointer) that keeps the record live.
func (p *Pool[T]) Raw(q Ptr) *T {
	return &p.slotAt(q.Idx()).val
}

// Hdr implements Arena.
func (p *Pool[T]) Hdr(q Ptr) *Hdr {
	return &p.slotAt(q.Idx()).hdr
}

// Valid implements Arena: it reports whether q's generation is current.
func (p *Pool[T]) Valid(q Ptr) bool {
	return atomic.LoadUint32(&p.slotAt(q.Idx()).hdr.gen) == q.Gen()
}

// Get returns the record for q if the handle is still live.
func (p *Pool[T]) Get(q Ptr) (*T, bool) {
	if q.IsNull() {
		return nil, false
	}
	s := p.slotAt(q.Idx())
	if atomic.LoadUint32(&s.hdr.gen) != q.Gen() {
		return nil, false
	}
	return &s.val, true
}

// MustGet returns the record for q, panicking if the handle is stale. Use it
// for records the caller has locked or reserved: staleness there is a bug in
// the SMR scheme under test, not a benign race.
func (p *Pool[T]) MustGet(q Ptr) *T {
	v, ok := p.Get(q)
	if !ok {
		panic(fmt.Sprintf("mem: use after free through protected handle %v", q))
	}
	return v
}

// Alloc returns a fresh handle and its record. The record's fields hold
// whatever the previous occupant left (slabs start zeroed); callers must
// initialize every field, with atomic stores, before publishing the handle.
func (p *Pool[T]) Alloc(tid int) (Ptr, *T) {
	tc := &p.threads[tid]
	if len(tc.free) == 0 {
		p.refill(tc)
	}
	idx := tc.free[len(tc.free)-1]
	tc.free = tc.free[:len(tc.free)-1]
	s := p.slotAt(idx)
	g := atomic.LoadUint32(&s.hdr.gen) // even: slot is free
	atomic.StoreUint32(&s.hdr.gen, g+1)
	tc.allocs.Add(1)
	return pack(idx, g+1), &s.val
}

// Free implements Arena. It detects double frees and frees of corrupt
// handles by CASing the slot generation.
func (p *Pool[T]) Free(tid int, q Ptr) {
	if q.IsNull() {
		panic("mem: free of nil handle")
	}
	s := p.slotAt(q.Idx())
	if !atomic.CompareAndSwapUint32(&s.hdr.gen, q.Gen(), q.Gen()+1) {
		panic(fmt.Sprintf("mem: double free of %v (slot gen now %d)", q, atomic.LoadUint32(&s.hdr.gen)))
	}
	tc := &p.threads[tid]
	tc.free = append(tc.free, q.Idx())
	tc.frees.Add(1)
	if len(tc.free) > 2*p.cfg.CacheSize {
		p.flush(tc)
	}
}

// refill restocks a thread cache, preferring recycled slots from the shared
// list and carving fresh ones from the bump cursor otherwise.
func (p *Pool[T]) refill(tc *tcache) {
	p.global.mu.Lock()
	p.global.ops.Add(1)
	if n := len(p.global.free); n > 0 {
		take := refillBatch
		if take > n {
			take = n
		}
		tc.free = append(tc.free, p.global.free[n-take:]...)
		p.global.free = p.global.free[:n-take]
		p.global.mu.Unlock()
		return
	}
	p.global.mu.Unlock()

	base := p.cursor.Add(carveBatch) - carveBatch
	if base+carveBatch > maxSlots {
		panic("mem: pool exhausted (maxSlots)")
	}
	p.ensureSlabs(base, base+carveBatch-1)
	for i := uint64(0); i < carveBatch; i++ {
		tc.free = append(tc.free, uint32(base+i))
	}
}

func (p *Pool[T]) ensureSlabs(lo, hi uint64) {
	first, last := uint32(lo)>>slabBits, uint32(hi)>>slabBits
	for sb := first; sb <= last; sb++ {
		if p.slabs[sb].Load() != nil {
			continue
		}
		p.growMu.Lock()
		if p.slabs[sb].Load() == nil {
			p.slabs[sb].Store(new([SlabSize]slot[T]))
		}
		p.growMu.Unlock()
	}
}

// flush returns the oldest half of an oversized thread cache to the shared
// list, keeping recently freed (cache-hot) slots local.
func (p *Pool[T]) flush(tc *tcache) {
	n := len(tc.free) / 2
	p.global.mu.Lock()
	p.global.ops.Add(1)
	p.global.free = append(p.global.free, tc.free[:n]...)
	p.global.mu.Unlock()
	rest := copy(tc.free, tc.free[n:])
	tc.free = tc.free[:rest]
}

// Stats is a snapshot of pool accounting. Live counts allocated-but-not-freed
// records, i.e. reachable records plus unreclaimed garbage — the quantity the
// paper's E2 experiment measures as resident memory.
type Stats struct {
	Allocs    uint64
	Frees     uint64
	Live      int64
	SlotSize  uintptr
	LiveBytes int64
	SlabBytes uint64
	GlobalOps uint64
}

// Stats sums per-thread counters. It is approximate under concurrency (the
// counters are read without stopping the world) but monotone enough for peak
// tracking.
func (p *Pool[T]) Stats() Stats {
	var st Stats
	for i := range p.threads {
		st.Allocs += p.threads[i].allocs.Load()
		st.Frees += p.threads[i].frees.Load()
	}
	st.Live = int64(st.Allocs) - int64(st.Frees)
	st.SlotSize = unsafe.Sizeof(slot[T]{})
	st.LiveBytes = st.Live * int64(st.SlotSize)
	carved := p.cursor.Load()
	st.SlabBytes = ((carved + SlabSize - 1) >> slabBits) * SlabSize * uint64(st.SlotSize)
	st.GlobalOps = p.global.ops.Load()
	return st
}
