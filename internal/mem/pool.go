package mem

import (
	"fmt"
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"
	"unsafe"
)

const (
	slabBits = 14
	// SlabSize is the number of slots carved per slab.
	SlabSize = 1 << slabBits
	maxSlabs = 1 << 14
	maxSlots = maxSlabs * SlabSize

	// carveBatch is how many never-used slots a thread claims from the bump
	// cursor at once, and refillBatch how many recycled slots it pulls from
	// the shared free list at once.
	carveBatch  = 64
	refillBatch = 64
)

// Hdr is the per-slot allocator header. The generation counter implements
// use-after-free detection (even = free, odd = live); the birth and retire
// eras are reserved for era-based SMR schemes (IBR, hazard eras) which the
// paper notes require per-record metadata. All fields are accessed atomically.
type Hdr struct {
	gen    uint32
	_      uint32
	birth  uint64
	retire uint64
}

// Birth returns the record's allocation era (set by era-based schemes).
func (h *Hdr) Birth() uint64 { return atomic.LoadUint64(&h.birth) }

// SetBirth records the record's allocation era.
func (h *Hdr) SetBirth(e uint64) { atomic.StoreUint64(&h.birth, e) }

// Retire returns the record's retirement tag (era or epoch, scheme-defined).
func (h *Hdr) Retire() uint64 { return atomic.LoadUint64(&h.retire) }

// SetRetire records the record's retirement tag.
func (h *Hdr) SetRetire(e uint64) { atomic.StoreUint64(&h.retire, e) }

// Arena is the type-erased view of a Pool that SMR schemes hold: enough to
// free retired records and to tag them with eras, without knowing the record
// type.
type Arena interface {
	// Free returns a retired record to the allocator. It panics if the
	// handle is stale (double free) — reclaiming the same record twice is
	// always an SMR bug.
	Free(tid int, p Ptr)
	// FreeBatch returns a whole reclamation burst at once: the same
	// double-free checks as Free per record, but one thread-cache
	// interaction and at most one shared-free-list interaction for the
	// entire batch. The slice is not retained.
	FreeBatch(tid int, ps []Ptr)
	// Hdr exposes the allocator header of a live or retired record.
	Hdr(p Ptr) *Hdr
	// Valid reports whether p still addresses the allocation it was created
	// by (i.e. the record has not been freed).
	Valid(p Ptr) bool
	// SizeCache raises thread tid's free-cache target to cover a
	// reclamation burst of the given size, so a scheme's characteristic
	// burst (limbo bag, scan threshold) amortizes to at most one
	// shared-shard interaction and the recycled slots stay local for the
	// allocations that follow. Safe to call from any goroutine: a pool
	// attached to a Hub after leases are already held is sized for the
	// live slots by the attaching goroutine, concurrent with the owners'
	// Alloc/Free traffic.
	SizeCache(tid, burst int)
	// DrainCache flushes thread tid's entire free cache to the shared
	// shards. A departing thread calls it on lease release so its cached
	// slots are not stranded while the slot sits unleased.
	DrainCache(tid int)
}

// Config sizes a Pool.
type Config struct {
	// MaxThreads is the number of thread ids (0..MaxThreads-1) that will
	// call Alloc/Free. Required.
	MaxThreads int
	// CacheSize is the per-thread free-cache target; when a thread's cache
	// exceeds twice this value, half is flushed to the shared free list
	// (the jemalloc tcache/arena analogue). Default 128.
	CacheSize int
	// Shards splits the shared free list into independently locked shards
	// keyed by thread id (rounded up to a power of two). Shards: 1 keeps
	// the single contended list that reproduces the paper's DEBRA
	// reclamation-burst bottleneck; 0 selects the scalable default, the
	// power of two covering GOMAXPROCS (see DESIGN.md §6).
	Shards int
	// Tag is the arena tag stamped into every handle this pool returns
	// (see Ptr), so a Hub standing in front of several pools can route a
	// retired record back to its owner. 0 — the default — produces the
	// untagged handles a standalone pool always produced. Must be below
	// MaxTags.
	Tag int
}

func (c Config) withDefaults() Config {
	if c.MaxThreads <= 0 {
		c.MaxThreads = 1
	}
	if c.CacheSize <= 0 {
		c.CacheSize = 128
	}
	if c.Shards <= 0 {
		c.Shards = runtime.GOMAXPROCS(0)
	}
	c.Shards = ceilPow2(c.Shards)
	if c.Tag < 0 || c.Tag >= MaxTags {
		panic(fmt.Sprintf("mem: arena tag %d out of range [0, %d)", c.Tag, MaxTags))
	}
	return c
}

// ceilPow2 rounds n up to the next power of two.
func ceilPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// Pool is a slab allocator for records of type T. Each slot carries a Hdr
// whose generation tags handles; see the package comment. Alloc and Free are
// safe for concurrent use provided each goroutine uses its own thread id.
type Pool[T any] struct {
	cfg Config

	// slab directory: published once under growMu, read lock-free.
	slabs  [maxSlabs]atomic.Pointer[[SlabSize]slot[T]]
	cursor atomic.Uint64 // next never-carved slot index
	growMu sync.Mutex

	global  globalFree
	threads []tcache

	// Segment directory (see segment.go): handle slot index → member run.
	// nsegs gates the free path so pools without segments pay one atomic
	// load and nothing else.
	segMu sync.RWMutex
	segs  map[uint32]Run
	nsegs atomic.Int32
}

type slot[T any] struct {
	hdr Hdr
	val T
}

// globalFree is the shared recycled-slot list, split into Config.Shards
// independently locked shards keyed by thread id. With Shards: 1 it
// degenerates to the single mutex-protected list whose contention reproduces
// the allocator-bottleneck effect the paper attributes to DEBRA's burst
// reclamation; with the scalable default, concurrent reclaimers flush and
// refill against disjoint shards and only meet when stealing from a
// neighbour.
type globalFree struct {
	shards []freeShard
	mask   int           // len(shards)-1; len is a power of two
	shift  uint          // 64 - log2(len(shards)); see Pool.shardOf
	ops    atomic.Uint64 // lock acquisitions, reported in Stats
}

// freeShard is one lock-protected segment of the shared free list. count
// mirrors len(free) so refill can skip empty shards without taking their
// locks; it is only written under mu.
type freeShard struct {
	mu    sync.Mutex
	free  []uint32
	count atomic.Int64
	_     [64]byte // keep neighbouring shard locks off one cache line
}

// push appends idxs to the shard under its lock.
func (sh *freeShard) push(ops *atomic.Uint64, idxs []uint32) {
	sh.mu.Lock()
	ops.Add(1)
	sh.free = append(sh.free, idxs...)
	sh.count.Store(int64(len(sh.free)))
	sh.mu.Unlock()
}

// pop moves up to max entries from the shard into dst, returning the grown
// dst. It skips the lock entirely when the shard looks empty.
func (sh *freeShard) pop(ops *atomic.Uint64, dst []uint32, max int) []uint32 {
	if sh.count.Load() == 0 {
		return dst
	}
	sh.mu.Lock()
	ops.Add(1)
	if n := len(sh.free); n > 0 {
		take := max
		if take > n {
			take = n
		}
		dst = append(dst, sh.free[n-take:]...)
		sh.free = sh.free[:n-take]
		sh.count.Store(int64(len(sh.free)))
	}
	sh.mu.Unlock()
	return dst
}

type tcache struct {
	free []uint32
	// limit is this thread's cache target: flushes trigger beyond 2·limit
	// and keep limit (Free) or limit entries (FreeBatch). It starts at the
	// global Config.CacheSize and is raised per thread by SizeCache to the
	// owning scheme's declared reclamation burst — the NUMA-style sizing
	// DESIGN.md §6 describes — so one thread reclaiming a full bag and
	// another reclaiming nothing no longer share one global knob. It is
	// atomic because SizeCache may run on a goroutine other than the slot's
	// owner: a Hub replays the recorded burst onto late-attaching pools for
	// every slot while the owners are mid-traffic.
	limit  atomic.Int32
	allocs atomic.Uint64
	frees  atomic.Uint64
	_      [64]byte
}

// NewPool creates a pool. Slot 0 is reserved so that no live handle is Null.
func NewPool[T any](cfg Config) *Pool[T] {
	p := &Pool[T]{cfg: cfg.withDefaults()}
	p.threads = make([]tcache, p.cfg.MaxThreads)
	for i := range p.threads {
		p.threads[i].limit.Store(int32(p.cfg.CacheSize))
	}
	p.global.shards = make([]freeShard, p.cfg.Shards)
	p.global.mask = p.cfg.Shards - 1
	p.global.shift = 64 - uint(bits.Len(uint(p.global.mask)))
	p.cursor.Store(1) // reserve slot 0
	return p
}

// shardOf maps a thread id onto a shard index. Callers number threads
// densely from zero, so a plain tid&mask would leave every shard above the
// thread count cold — all flush traffic would convoy on the low shards
// whenever threads < Shards. A Fibonacci multiplicative hash spreads
// consecutive tids across the shard space (the golden-ratio sequence is
// low-discrepancy), covering it near-evenly at any threads/Shards ratio.
func (p *Pool[T]) shardOf(tid int) int {
	// With one shard the shift is 64, which Go defines to yield 0.
	return int((uint64(tid) * 0x9e3779b97f4a7c15) >> p.global.shift)
}

// homeShard returns a thread's free-list shard.
func (p *Pool[T]) homeShard(tid int) *freeShard {
	return &p.global.shards[p.shardOf(tid)]
}

// MaxThreads returns the number of thread ids the pool was sized for.
func (p *Pool[T]) MaxThreads() int { return p.cfg.MaxThreads }

func (p *Pool[T]) slotAt(idx uint32) *slot[T] {
	s := p.slabs[idx>>slabBits].Load()
	if s == nil {
		panic(fmt.Sprintf("mem: handle into unallocated slab (idx %d)", idx))
	}
	return &s[idx&(SlabSize-1)]
}

// Raw returns the record for p without validating its generation. Callers
// must follow the copy-then-Valid discipline, or hold a protection (lock,
// reservation, hazard pointer) that keeps the record live.
func (p *Pool[T]) Raw(q Ptr) *T {
	return &p.slotAt(q.Idx()).val
}

// Hdr implements Arena.
func (p *Pool[T]) Hdr(q Ptr) *Hdr {
	return &p.slotAt(q.Idx()).hdr
}

// Valid implements Arena: it reports whether q's generation is current.
func (p *Pool[T]) Valid(q Ptr) bool {
	return atomic.LoadUint32(&p.slotAt(q.Idx()).hdr.gen) == q.Gen()
}

// Get returns the record for q if the handle is still live.
func (p *Pool[T]) Get(q Ptr) (*T, bool) {
	if q.IsNull() {
		return nil, false
	}
	s := p.slotAt(q.Idx())
	if atomic.LoadUint32(&s.hdr.gen) != q.Gen() {
		return nil, false
	}
	return &s.val, true
}

// MustGet returns the record for q, panicking if the handle is stale. Use it
// for records the caller has locked or reserved: staleness there is a bug in
// the SMR scheme under test, not a benign race.
func (p *Pool[T]) MustGet(q Ptr) *T {
	v, ok := p.Get(q)
	if !ok {
		panic(fmt.Sprintf("mem: use after free through protected handle %v", q))
	}
	return v
}

// Alloc returns a fresh handle and its record. The record's fields hold
// whatever the previous occupant left (slabs start zeroed); callers must
// initialize every field, with atomic stores, before publishing the handle.
func (p *Pool[T]) Alloc(tid int) (Ptr, *T) {
	tc := &p.threads[tid]
	if len(tc.free) == 0 {
		p.refill(tc, tid)
	}
	idx := tc.free[len(tc.free)-1]
	tc.free = tc.free[:len(tc.free)-1]
	s := p.slotAt(idx)
	g := atomic.LoadUint32(&s.hdr.gen) // even: slot is free
	atomic.StoreUint32(&s.hdr.gen, g+1)
	tc.allocs.Add(1)
	return pack(idx, g+1, p.cfg.Tag), &s.val
}

// release CASes q's slot generation from live to free, panicking on double
// frees and corrupt handles, and returns the slot index.
func (p *Pool[T]) release(q Ptr) uint32 {
	if q.IsNull() {
		panic("mem: free of nil handle")
	}
	if q.ArenaTag() != p.cfg.Tag {
		panic(fmt.Sprintf("mem: free of %v routed to pool with tag %d (Hub misroute or corrupt handle)", q, p.cfg.Tag))
	}
	s := p.slotAt(q.Idx())
	if !atomic.CompareAndSwapUint32(&s.hdr.gen, q.Gen(), q.Gen()+1) {
		panic(fmt.Sprintf("mem: double free of %v (slot gen now %d)", q, atomic.LoadUint32(&s.hdr.gen)))
	}
	return q.Idx()
}

// Free implements Arena. It detects double frees and frees of corrupt
// handles by CASing the slot generation. A segment handle's members are
// fanned out first (segment.go); the handle slot then frees as usual.
func (p *Pool[T]) Free(tid int, q Ptr) {
	if p.nsegs.Load() != 0 {
		if r, ok := p.takeSeg(q); ok {
			p.freeRun(tid, r)
		}
	}
	tc := &p.threads[tid]
	tc.free = append(tc.free, p.release(q))
	tc.frees.Add(1)
	if len(tc.free) > 2*int(tc.limit.Load()) {
		p.flush(tc, tid, len(tc.free)/2)
	}
}

// FreeBatch implements Arena: it releases a whole reclamation burst with one
// thread-cache append and at most one shared-shard interaction, instead of
// the per-record flush cadence a Free loop would pay. Every record still
// goes through the same double-free CAS as Free.
func (p *Pool[T]) FreeBatch(tid int, qs []Ptr) {
	if len(qs) == 0 {
		return
	}
	if p.nsegs.Load() != 0 {
		p.freeSegments(tid, qs)
	}
	tc := &p.threads[tid]
	for _, q := range qs {
		tc.free = append(tc.free, p.release(q))
	}
	tc.frees.Add(uint64(len(qs)))
	if limit := int(tc.limit.Load()); len(tc.free) > 2*limit {
		// One push returns the whole overflow, not half of it, so a burst
		// of any size costs a single lock acquisition.
		p.flush(tc, tid, limit)
	}
}

// SizeCache implements Arena: it raises (never shrinks) tid's cache target
// to burst, so a reclamation burst of that size fits locally — at most one
// flush per burst, and the recycled slots stay resident for the allocations
// that refill the structure. The raise is a CAS loop so concurrent callers
// (the slot's owner at acquire time, a Hub replaying the burst onto a
// late-attached pool) converge on the max.
func (p *Pool[T]) SizeCache(tid, burst int) {
	tc := &p.threads[tid]
	for {
		cur := tc.limit.Load()
		if int32(burst) <= cur || tc.limit.CompareAndSwap(cur, int32(burst)) {
			return
		}
	}
}

// DrainCache implements Arena: it flushes tid's entire free cache to the
// thread's home shard, so a released thread slot strands no recyclable
// records while unleased.
func (p *Pool[T]) DrainCache(tid int) {
	tc := &p.threads[tid]
	if len(tc.free) > 0 {
		p.flush(tc, tid, 0)
	}
}

// refill restocks a thread cache: recycled slots from the thread's home
// shard first, then any non-empty shard (work stealing keeps memory bounded
// when producers and consumers hash to different shards), and fresh slots
// carved from the bump cursor as the last resort.
func (p *Pool[T]) refill(tc *tcache, tid int) {
	home := p.shardOf(tid)
	for i := 0; i <= p.global.mask; i++ {
		sh := &p.global.shards[(home+i)&p.global.mask]
		tc.free = sh.pop(&p.global.ops, tc.free, refillBatch)
		if len(tc.free) > 0 {
			return
		}
	}

	base := p.cursor.Add(carveBatch) - carveBatch
	if base+carveBatch > maxSlots {
		panic("mem: pool exhausted (maxSlots)")
	}
	p.ensureSlabs(base, base+carveBatch-1)
	for i := uint64(0); i < carveBatch; i++ {
		tc.free = append(tc.free, uint32(base+i))
	}
}

func (p *Pool[T]) ensureSlabs(lo, hi uint64) {
	first, last := uint32(lo)>>slabBits, uint32(hi)>>slabBits
	for sb := first; sb <= last; sb++ {
		if p.slabs[sb].Load() != nil {
			continue
		}
		p.growMu.Lock()
		if p.slabs[sb].Load() == nil {
			p.slabs[sb].Store(new([SlabSize]slot[T]))
		}
		p.growMu.Unlock()
	}
}

// flush returns an oversized thread cache's oldest entries to the thread's
// home shard in one push, keeping the `keep` most recently freed
// (cache-hot) slots local.
func (p *Pool[T]) flush(tc *tcache, tid, keep int) {
	n := len(tc.free) - keep
	if n <= 0 {
		return
	}
	p.homeShard(tid).push(&p.global.ops, tc.free[:n])
	rest := copy(tc.free, tc.free[n:])
	tc.free = tc.free[:rest]
}

// Stats is a snapshot of pool accounting. Live counts allocated-but-not-freed
// records, i.e. reachable records plus unreclaimed garbage — the quantity the
// paper's E2 experiment measures as resident memory.
type Stats struct {
	Allocs    uint64
	Frees     uint64
	Live      int64
	SlotSize  uintptr
	LiveBytes int64
	SlabBytes uint64
	GlobalOps uint64
}

// Stats sums per-thread counters. It is approximate under concurrency (the
// counters are read without stopping the world) but monotone enough for peak
// tracking.
func (p *Pool[T]) Stats() Stats {
	var st Stats
	for i := range p.threads {
		st.Allocs += p.threads[i].allocs.Load()
		st.Frees += p.threads[i].frees.Load()
	}
	st.Live = int64(st.Allocs) - int64(st.Frees)
	st.SlotSize = unsafe.Sizeof(slot[T]{})
	st.LiveBytes = st.Live * int64(st.SlotSize)
	carved := p.cursor.Load()
	st.SlabBytes = ((carved + SlabSize - 1) >> slabBits) * SlabSize * uint64(st.SlotSize)
	st.GlobalOps = p.global.ops.Load()
	return st
}
