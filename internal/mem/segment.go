package mem

import (
	"fmt"
	"sync/atomic"
)

// This file is the segment layer: batch slot carving (AllocBatch) and
// Ptr-addressable segment records that stand for a whole contiguous run of
// member slots. A data structure that bulk-retires K records (a resized hash
// map's old bucket array) wraps the run in one segment handle and hands that
// single handle to its reclamation scheme; the scheme stamps, bags and scans
// the handle once, and the fan-out to the K member slots happens here, at
// free time, where it is one thread-cache append per member — allocator
// work that a per-record retire path would have paid anyway, without the
// K per-record shared-memory interactions on the scheme side.

// Run is a contiguous range of slots carved from one pool by AllocBatch.
// All members share one generation (fresh-carved slots are always on their
// first life), so member handles are derived by index arithmetic.
type Run struct {
	first Ptr
	n     int
}

// Len returns the number of slots in the run.
func (r Run) Len() int { return r.n }

// First returns the handle of the run's first slot.
func (r Run) First() Ptr { return r.first }

// At returns the handle of the i-th slot of the run. Valid because a run's
// members are consecutive slot indices sharing one generation and tag.
func (r Run) At(i int) Ptr {
	if i < 0 || i >= r.n {
		panic(fmt.Sprintf("mem: Run.At(%d) out of range [0,%d)", i, r.n))
	}
	return r.first + Ptr(i)
}

// sub returns the subrange [from, from+n) of the run.
func (r Run) sub(from, n int) Run {
	return Run{first: r.At(from), n: n}
}

// SegmentArena is implemented by arenas that support segment records: Pool
// directly, and Hub by routing on the handle's arena tag. Schemes resolve it
// once (AsSegmentArena) and treat a nil result as "no segments can exist
// here", which is exact — only a SegmentArena can create one.
type SegmentArena interface {
	Arena
	// SegmentWeight returns the member count of the run p stands for, or 0
	// when p is not a live segment handle.
	SegmentWeight(p Ptr) int
	// CarveSegment splits the first take members off segment p into a new
	// segment and returns (head, rest): head covers the carved prefix and
	// rest is p itself, shrunk to the remainder. When take covers the whole
	// run it returns (p, Null) and allocates nothing. Schemes use it to
	// split an oversized segment at their watermark, the same contract
	// RetireBatch honours per record.
	CarveSegment(tid int, p Ptr, take int) (head, rest Ptr)
}

// AsSegmentArena returns a's segment interface, or nil when the arena cannot
// host segments (in which case no segment handle can ever reach a scheme
// bound to it).
func AsSegmentArena(a Arena) SegmentArena {
	sa, _ := a.(SegmentArena)
	return sa
}

// SegWeight returns the garbage-accounting weight of a retired handle: the
// member count if p is a live segment handle, else 1. A nil sa (arena
// without segment support) always weighs 1.
func SegWeight(sa SegmentArena, p Ptr) int {
	if sa != nil {
		if w := sa.SegmentWeight(p.Unmarked()); w > 0 {
			return w
		}
	}
	return 1
}

// AllocBatch carves n fresh contiguous slots in one bump-cursor claim and
// returns them as a Run, live (generation 1) and zeroed: batch carving only
// ever uses never-recycled address space, so unlike Alloc the records are
// guaranteed zero — callers may initialize with plain stores before
// publishing. Statistics account exactly as n Alloc calls would.
func (p *Pool[T]) AllocBatch(tid, n int) Run {
	if n <= 0 {
		panic(fmt.Sprintf("mem: AllocBatch of %d slots", n))
	}
	base := p.cursor.Add(uint64(n)) - uint64(n)
	if base+uint64(n) > maxSlots {
		panic("mem: pool exhausted (maxSlots)")
	}
	p.ensureSlabs(base, base+uint64(n)-1)
	for i := uint64(0); i < uint64(n); i++ {
		s := p.slotAt(uint32(base + i))
		// Fresh-carved slots are on generation 0 (free); flip to 1 (live).
		atomic.StoreUint32(&s.hdr.gen, 1)
	}
	p.threads[tid].allocs.Add(uint64(n))
	return Run{first: pack(uint32(base), 1, p.cfg.Tag), n: n}
}

// NewSegment wraps run in a segment record: an ordinary slot (the value is
// unused) whose handle stands for the whole run. Retiring the handle through
// a scheme's RetireSegment costs the scheme one bag entry; freeing it (Free
// or FreeBatch, directly or via a Hub) fans out to the members first, then
// releases the handle slot itself.
func (p *Pool[T]) NewSegment(tid int, run Run) Ptr {
	if run.n <= 0 {
		panic("mem: NewSegment of empty run")
	}
	if run.first.ArenaTag() != p.cfg.Tag {
		panic(fmt.Sprintf("mem: NewSegment of run owned by tag %d in pool with tag %d",
			run.first.ArenaTag(), p.cfg.Tag))
	}
	q, _ := p.Alloc(tid)
	p.segMu.Lock()
	if p.segs == nil {
		p.segs = make(map[uint32]Run)
	}
	p.segs[q.Idx()] = run
	p.nsegs.Add(1)
	p.segMu.Unlock()
	return q
}

// SegmentWeight implements SegmentArena.
func (p *Pool[T]) SegmentWeight(q Ptr) int {
	if p.nsegs.Load() == 0 {
		return 0
	}
	p.segMu.RLock()
	r, ok := p.segs[q.Unmarked().Idx()]
	p.segMu.RUnlock()
	if !ok {
		return 0
	}
	return r.n
}

// CarveSegment implements SegmentArena. The new head handle is allocated
// outside the directory lock; q keeps its identity and shrinks to the
// remainder, so a scheme can keep carving watermark-sized prefixes off the
// same handle until it fits.
func (p *Pool[T]) CarveSegment(tid int, q Ptr, take int) (Ptr, Ptr) {
	if take <= 0 {
		panic(fmt.Sprintf("mem: CarveSegment take %d", take))
	}
	q = q.Unmarked()
	if w := p.SegmentWeight(q); w == 0 {
		panic(fmt.Sprintf("mem: CarveSegment of non-segment handle %v", q))
	} else if take >= w {
		return q, Null
	}
	head, _ := p.Alloc(tid)
	p.segMu.Lock()
	r := p.segs[q.Idx()]
	if take >= r.n { // lost a race with a concurrent carve; fold back
		p.segMu.Unlock()
		p.Free(tid, head)
		return q, Null
	}
	p.segs[head.Idx()] = r.sub(0, take)
	p.segs[q.Idx()] = r.sub(take, r.n-take)
	p.nsegs.Add(1)
	p.segMu.Unlock()
	return head, q
}

// DissolveSegment unwraps segment handle q back into its run, removing it
// from the directory: q becomes an ordinary slot the caller still owns and
// must free, and the members revert to individually-owned records. It is the
// per-record baseline seam — a caller that dissolves and then retires every
// member one by one pays exactly the scheme-side cost RetireSegment exists
// to avoid, which is what the resize-burst benchmark's A/B cell measures.
func (p *Pool[T]) DissolveSegment(q Ptr) (Run, bool) {
	return p.takeSeg(q)
}

// takeSeg removes q from the segment directory, returning its run. The
// read-locked existence probe keeps the common non-segment free at shared
// cost; only an actual segment free pays the exclusive lock.
func (p *Pool[T]) takeSeg(q Ptr) (Run, bool) {
	idx := q.Unmarked().Idx()
	p.segMu.RLock()
	_, ok := p.segs[idx]
	p.segMu.RUnlock()
	if !ok {
		return Run{}, false
	}
	p.segMu.Lock()
	r, ok := p.segs[idx]
	if ok {
		delete(p.segs, idx)
		p.nsegs.Add(-1)
	}
	p.segMu.Unlock()
	return r, ok
}

// freeRun releases every member of a segment's run into tid's thread cache:
// one cache append per member and at most one shared-shard flush for the
// whole fan-out, exactly the FreeBatch cost profile. Members are never
// themselves segment handles (a slot inside a live run cannot be recycled
// into one), so no recursive directory probe is needed.
func (p *Pool[T]) freeRun(tid int, r Run) {
	tc := &p.threads[tid]
	for i := 0; i < r.n; i++ {
		tc.free = append(tc.free, p.release(r.At(i)))
	}
	tc.frees.Add(uint64(r.n))
	if limit := int(tc.limit.Load()); len(tc.free) > 2*limit {
		p.flush(tc, tid, limit)
	}
}

// freeSegments fans out any segment handles in qs (called with nsegs > 0
// already established). The handles themselves remain in qs and are released
// as ordinary slots by the caller's normal path.
func (p *Pool[T]) freeSegments(tid int, qs []Ptr) {
	for _, q := range qs {
		if r, ok := p.takeSeg(q); ok {
			p.freeRun(tid, r)
		}
	}
}
