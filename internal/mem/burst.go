package mem

import "sync"

// BurstChurn drives goroutines through alloc-burst/FreeBatch cycles against
// p until ~totalOps alloc+free pairs have completed. It is the shared body
// of BenchmarkFreeBurst and the perf snapshot's free-burst measurement, kept
// in one place so `go test -bench FreeBurst` and BENCH_<n>.json trajectories
// always measure the same loop.
func BurstChurn[T any](p *Pool[T], goroutines, burst, totalOps int) {
	var wg sync.WaitGroup
	per := totalOps/goroutines + 1
	for tid := 0; tid < goroutines; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			batch := make([]Ptr, burst)
			for i := 0; i < per; i += burst {
				for j := range batch {
					batch[j], _ = p.Alloc(tid)
				}
				p.FreeBatch(tid, batch)
			}
		}(tid)
	}
	wg.Wait()
}
