package hist

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEmptyHistogram(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Max() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram must report zeros")
	}
}

func TestSingleValue(t *testing.T) {
	var h Histogram
	h.Record(1000)
	if h.Count() != 1 || h.Max() != 1000 {
		t.Fatalf("count=%d max=%d", h.Count(), h.Max())
	}
	if q := h.Quantile(0.99); q != 1000 {
		t.Fatalf("q99 = %d, want the observed max", q)
	}
}

func TestNegativeClamped(t *testing.T) {
	var h Histogram
	h.Record(-5)
	if h.Count() != 1 || h.Max() != 0 {
		t.Fatal("negative values must clamp to zero")
	}
}

func TestQuantileBounds(t *testing.T) {
	var h Histogram
	values := make([]int64, 0, 10000)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		v := int64(rng.Intn(1 << 20))
		values = append(values, v)
		h.Record(v)
	}
	sort.Slice(values, func(i, j int) bool { return values[i] < values[j] })
	for _, q := range []float64{0.5, 0.9, 0.99} {
		exact := values[int(q*float64(len(values)))]
		got := h.Quantile(q)
		if got < exact {
			t.Fatalf("q%.2f = %d below exact %d (quantile must be an upper bound)", q, got, exact)
		}
		if got > 4*exact+4 {
			t.Fatalf("q%.2f = %d too loose vs exact %d", q, got, exact)
		}
	}
}

func TestQuantileMonotone(t *testing.T) {
	var h Histogram
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 5000; i++ {
		h.Record(int64(rng.Intn(1 << 30)))
	}
	prev := int64(-1)
	for q := 0.0; q <= 1.0; q += 0.05 {
		v := h.Quantile(q)
		if v < prev {
			t.Fatalf("quantile not monotone at %.2f: %d < %d", q, v, prev)
		}
		prev = v
	}
}

func TestMerge(t *testing.T) {
	var a, b Histogram
	for i := 0; i < 100; i++ {
		a.Record(10)
		b.Record(1 << 20)
	}
	a.Merge(&b)
	if a.Count() != 200 {
		t.Fatalf("merged count = %d", a.Count())
	}
	if a.Max() != 1<<20 {
		t.Fatalf("merged max = %d", a.Max())
	}
	if q := a.Quantile(0.25); q > 16 {
		t.Fatalf("low quantile contaminated: %d", q)
	}
	if q := a.Quantile(0.9); q < 1<<20 {
		t.Fatalf("high quantile lost: %d", q)
	}
}

func TestQuantileClampsRange(t *testing.T) {
	var h Histogram
	h.Record(7)
	if h.Quantile(-1) != h.Quantile(0) || h.Quantile(2) != h.Quantile(1) {
		t.Fatal("out-of-range quantiles must clamp")
	}
}

func TestQuickCountMatches(t *testing.T) {
	f := func(vs []int16) bool {
		var h Histogram
		for _, v := range vs {
			h.Record(int64(v))
		}
		return h.Count() == uint64(len(vs))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMaxIsUpperBound(t *testing.T) {
	f := func(vs []uint32) bool {
		var h Histogram
		var max int64
		for _, v := range vs {
			h.Record(int64(v))
			if int64(v) > max {
				max = int64(v)
			}
		}
		return h.Max() == max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkRecord(b *testing.B) {
	var h Histogram
	for i := 0; i < b.N; i++ {
		h.Record(int64(i))
	}
}
