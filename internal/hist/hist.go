// Package hist provides a tiny power-of-two latency histogram for the
// benchmark harness. The paper's P1 property is about both throughput and
// latency; reclamation bursts (DEBRA's failure mode) show up as tail
// latency rather than in the mean, so the harness samples operation
// latencies into per-thread histograms and reports quantiles.
//
// A histogram is owner-written (no atomics) and merged after the run, so
// recording costs a handful of instructions.
package hist

import "math/bits"

// Buckets is the number of power-of-two buckets: bucket i counts values v
// with bitlen(v) == i, i.e. v in [2^(i-1), 2^i).
const Buckets = 64

// Histogram counts values in power-of-two buckets. The zero value is ready
// to use.
type Histogram struct {
	counts [Buckets]uint64
	total  uint64
	max    int64
}

// Record adds one value (typically nanoseconds). Negative values count into
// bucket 0.
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	h.counts[bits.Len64(uint64(v))%Buckets]++
	h.total++
	if v > h.max {
		h.max = v
	}
}

// Merge folds other into h.
func (h *Histogram) Merge(other *Histogram) {
	for i := range h.counts {
		h.counts[i] += other.counts[i]
	}
	h.total += other.total
	if other.max > h.max {
		h.max = other.max
	}
}

// Count returns the number of recorded values.
func (h *Histogram) Count() uint64 { return h.total }

// Max returns the largest recorded value.
func (h *Histogram) Max() int64 { return h.max }

// Quantile returns an upper bound for the q-quantile (0 ≤ q ≤ 1): the upper
// edge of the bucket containing it. Returns 0 for an empty histogram.
func (h *Histogram) Quantile(q float64) int64 {
	if h.total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(h.total))
	if rank >= h.total {
		rank = h.total - 1
	}
	var seen uint64
	for i, c := range h.counts {
		seen += c
		if rank < seen {
			if i == 0 {
				return 0
			}
			upper := int64(1) << uint(i)
			if h.max < upper {
				return h.max // tighten the final bucket with the observed max
			}
			return upper
		}
	}
	return h.max
}
