// Package protocol is the shared model behind the nbrvet analyzers: it knows
// what a guard bracket is, computes the interprocedural facts (bracket
// summaries and restartability) every analyzer consumes, and classifies the
// operations the NBR read-phase contract forbids.
//
// The contract being modeled (internal/smr/smr.go, DESIGN.md §13): between
// Guard.BeginRead and Guard.EndRead a neutralization signal may longjmp out
// at any instruction and restart the operation from the top, so the code in
// between must be restartable — reads, writes to operation-local state, and
// calls to functions that are themselves restartable, nothing else.
package protocol

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"nbr/internal/analysis/framework"
)

// Import paths of the packages whose types anchor the protocol.
const (
	SMRPath = "nbr/internal/smr"
	MemPath = "nbr/internal/mem"
	NBRPath = "nbr"
)

// State is the may-set of bracket states that reach a program point:
// a bit is set if some path arrives in that state. The zero State means
// "no path reaches here (yet)".
type State uint8

const (
	Closed State = 1 << iota // no read phase open
	Open                     // inside a BeginRead/EndRead bracket
)

// Summary is a function's bracket effect: the may-set of exit states for
// each entry state. The zero Summary is bottom — "never returns" — which is
// also the optimistic starting point of the package-level fixpoint.
type Summary struct {
	FromClosed State
	FromOpen   State
}

// Identity is the summary of a call the analysis knows nothing about: it
// returns in whatever state it was entered.
var Identity = Summary{FromClosed: Closed, FromOpen: Open}

// Apply maps an entry may-set through the summary.
func (s Summary) Apply(st State) State {
	var out State
	if st&Closed != 0 {
		out |= s.FromClosed
	}
	if st&Open != 0 {
		out |= s.FromOpen
	}
	return out
}

// FuncInfo is the per-function fact the protocol fact pass computes for
// every function in every loaded module package.
type FuncInfo struct {
	Summary Summary

	// Restartable reports the function may be called inside a read phase:
	// either its body is proven restartable, or it carries an explicit
	// //nbr:restartable annotation.
	Restartable bool
	// Proven reports the body passed the restartability check on its own.
	Proven bool
	// Annotated reports the declaration carries //nbr:restartable.
	Annotated bool
	// AnnotPos is the annotation's position when Annotated.
	AnnotPos token.Pos
	// HasBrackets reports the body calls BeginRead or EndRead directly —
	// the functions whose bracket discipline the analyzers check locally.
	HasBrackets bool
}

const funcInfoKey = "protocol.FuncInfo"

// GetFuncInfo returns the fact for fn (its generic origin), or nil for
// functions outside the loaded module packages.
func GetFuncInfo(facts *framework.FactStore, fn *types.Func) *FuncInfo {
	if v := facts.Get(fn.Origin(), funcInfoKey); v != nil {
		return v.(*FuncInfo)
	}
	return nil
}

func setFuncInfo(facts *framework.FactStore, fn *types.Func, fi *FuncInfo) {
	facts.Set(fn.Origin(), funcInfoKey, fi)
}

// GuardMethod returns the method name if call is a method call on the
// smr.Guard interface (however the interface value was reached — parameter,
// field, local), or "" otherwise. Calls on a concrete scheme's guard type
// are deliberately not matched: inside a scheme the protocol methods are
// implementation, not use.
func GuardMethod(info *types.Info, call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	selection := info.Selections[sel]
	if selection == nil || selection.Kind() != types.MethodVal {
		return ""
	}
	recv := selection.Recv()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != SMRPath || obj.Name() != "Guard" {
		return ""
	}
	return sel.Sel.Name
}

// StaticCallee resolves a call to the *types.Func it statically invokes —
// a package function, a method on a known receiver type, or an interface
// method (returned as the interface's method object). Calls through plain
// function values resolve to nil. Generic instantiations resolve to their
// origin so facts line up.
func StaticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	fun := ast.Unparen(call.Fun)
	// Strip explicit instantiation: f[T](...) / f[T1, T2](...).
	switch ix := fun.(type) {
	case *ast.IndexExpr:
		fun = ast.Unparen(ix.X)
	case *ast.IndexListExpr:
		fun = ast.Unparen(ix.X)
	}
	switch fun := fun.(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn.Origin()
		}
	case *ast.SelectorExpr:
		if sel := info.Selections[fun]; sel != nil {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn.Origin()
			}
			return nil
		}
		// Package-qualified: pkg.F(...).
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn.Origin()
		}
	}
	return nil
}

// A Unit is one analyzable function body: a declared function or a function
// literal. Analyzers run each unit independently.
type Unit struct {
	// Node is the *ast.FuncDecl or *ast.FuncLit; its Pos/End range defines
	// what "operation-local" means for the restartability checks.
	Node ast.Node
	Body *ast.BlockStmt
	// Fn is the declared function's object; nil for literals.
	Fn *types.Func
	// ExecClosure reports the literal is passed directly to smr.Execute —
	// an operation body that must leave every read phase closed on return.
	ExecClosure bool
}

// Pos returns the unit's reporting position.
func (u *Unit) Pos() token.Pos { return u.Node.Pos() }

// Units collects every function body in the files: all declared functions
// plus all function literals, with smr.Execute operation closures marked.
// Immediately-invoked literals are NOT units: the flow analyses inline them
// into the enclosing function, where they actually run.
func Units(info *types.Info, files []*ast.File) []*Unit {
	execLits := make(map[*ast.FuncLit]bool)
	iife := make(map[*ast.FuncLit]bool)
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
				iife[lit] = true
			}
			fn := StaticCallee(info, call)
			if fn == nil || fn.Name() != "Execute" || fn.Pkg() == nil || fn.Pkg().Path() != SMRPath {
				return true
			}
			for _, arg := range call.Args {
				if lit, ok := arg.(*ast.FuncLit); ok {
					execLits[lit] = true
				}
			}
			return true
		})
	}
	var units []*Unit
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body == nil {
					return false
				}
				fn, _ := info.Defs[n.Name].(*types.Func)
				units = append(units, &Unit{Node: n, Body: n.Body, Fn: fn})
			case *ast.FuncLit:
				if !iife[n] {
					units = append(units, &Unit{Node: n, Body: n.Body, ExecClosure: execLits[n]})
				}
			}
			return true
		})
	}
	return units
}

// iifeLits returns the immediately-invoked function literals under n.
func iifeLits(n ast.Node) map[*ast.FuncLit]bool {
	out := make(map[*ast.FuncLit]bool)
	ast.Inspect(n, func(x ast.Node) bool {
		if call, ok := x.(*ast.CallExpr); ok {
			if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
				out[lit] = true
			}
		}
		return true
	})
	return out
}

// IsPanicCall reports whether call invokes the predeclared panic. Code
// under a panic call runs only on the crash path — which a neutralization
// never restarts — so the restartability rules skip its arguments.
func IsPanicCall(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "panic"
}

// HasRestartableAnnotation scans a declaration's doc comment for the
// //nbr:restartable annotation (DESIGN.md §13).
func HasRestartableAnnotation(doc *ast.CommentGroup) (bool, token.Pos) {
	if doc == nil {
		return false, token.NoPos
	}
	for _, c := range doc.List {
		if strings.HasPrefix(c.Text, "//nbr:restartable") {
			return true, c.Pos()
		}
	}
	return false, token.NoPos
}
