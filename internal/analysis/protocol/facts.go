package protocol

import (
	"go/ast"
	"go/types"

	"nbr/internal/analysis/framework"
)

// ComputeFacts is the fact pass the nbrvet driver runs over every loaded
// module package in dependency order, before any analyzer. For each declared
// function it computes and stores a FuncInfo:
//
//   - the bracket Summary, by running the bracket dataflow from each entry
//     state, iterated to a package-level fixpoint so mutually-recursive
//     functions converge (summaries start at bottom and only grow, so the
//     iteration terminates);
//   - restartability: Proven if the whole body passes the Φread rules and
//     opens no bracket of its own, Restartable if Proven or annotated with
//     //nbr:restartable;
//   - HasBrackets, for the analyzers that scope themselves to
//     bracket-managing functions.
//
// Cross-package facts need no iteration: packages are processed in
// dependency order and the session shares one types universe, so a
// dependency's final facts are already in the store.
func ComputeFacts(pass *framework.Pass) error {
	type fnode struct {
		decl *ast.FuncDecl
		fn   *types.Func
		info *FuncInfo
	}
	var fns []*fnode
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			decl, ok := d.(*ast.FuncDecl)
			if !ok || decl.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[decl.Name].(*types.Func)
			if !ok {
				continue
			}
			ann, pos := HasRestartableAnnotation(decl.Doc)
			nd := &fnode{decl, fn, &FuncInfo{Annotated: ann, AnnotPos: pos, Restartable: ann}}
			fns = append(fns, nd)
			// Seed at bottom so the fixpoint below treats in-package callees
			// optimistically rather than as unknown-identity.
			setFuncInfo(pass.Facts, fn, nd.info)
		}
	}

	// Bracket-summary fixpoint over this package's call graph.
	for changed := true; changed; {
		changed = false
		for _, nd := range fns {
			s := Summary{
				FromClosed: RunFlow(pass.TypesInfo, pass.Facts, nd.decl.Body, Closed).ExitState(),
				FromOpen:   RunFlow(pass.TypesInfo, pass.Facts, nd.decl.Body, Open).ExitState(),
			}
			if s != nd.info.Summary {
				nd.info.Summary = s
				changed = true
			}
		}
	}

	// Restartability and bracket presence. A caller's proof depends on its
	// same-package callees' Restartable bits, so iterate: the bit only flips
	// false→true and each flip can only remove violations elsewhere, so the
	// loop is monotone and terminates.
	for _, nd := range fns {
		nd.info.HasBrackets = HasBracketCalls(pass.TypesInfo, nd.decl.Body)
	}
	for changed := true; changed; {
		changed = false
		for _, nd := range fns {
			violations := ProveViolations(pass.TypesInfo, pass.Facts, nd.decl, nd.decl.Body)
			proven := len(violations) == 0 && !nd.info.HasBrackets
			restartable := proven || nd.info.Annotated
			if proven != nd.info.Proven || restartable != nd.info.Restartable {
				nd.info.Proven, nd.info.Restartable = proven, restartable
				changed = true
			}
		}
	}
	return nil
}

// HasBracketCalls reports whether the body calls BeginRead or EndRead on a
// guard directly — including inside immediately-invoked literals, which run
// inline, but not inside other nested function literals.
func HasBracketCalls(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	iife := iifeLits(body)
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil || found {
			return false
		}
		if lit, ok := n.(*ast.FuncLit); ok {
			return iife[lit]
		}
		if call, ok := n.(*ast.CallExpr); ok {
			switch GuardMethod(info, call) {
			case "BeginRead", "EndRead":
				found = true
			}
		}
		return true
	})
	return found
}

// ProveViolations returns the Φread violations a whole function body would
// commit if executed inside a read phase — the same walk the fact pass uses
// to prove restartability, exposed for diagnostics on annotated functions.
func ProveViolations(info *types.Info, facts *framework.FactStore, unit ast.Node, body *ast.BlockStmt) []Violation {
	var out []Violation
	chk := &Checker{Info: info, Facts: facts, Unit: unit}
	iife := iifeLits(body)
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if lit, ok := n.(*ast.FuncLit); ok {
			if iife[lit] {
				return true // runs inline; its body must be restartable too
			}
			chk.Check(n, func(v Violation) { out = append(out, v) })
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && IsPanicCall(info, call) {
			return false // crash-path arguments are never restarted
		}
		chk.Check(n, func(v Violation) { out = append(out, v) })
		return true
	})
	return out
}
