package protocol

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"nbr/internal/analysis/framework"
)

// A Violation is one operation the restartability rules forbid inside an
// open read phase.
type Violation struct {
	Pos token.Pos
	Msg string
}

// Checker classifies single AST nodes against the Φread restartability
// rules for one unit. It is used two ways: by the readphase analyzer as a
// Flow.Walk visitor over nodes whose state includes Open, and by the fact
// pass over a whole body to prove a function restartable.
type Checker struct {
	Info  *types.Info
	Facts *framework.FactStore
	// Unit bounds what "operation-local" means: a variable declared inside
	// this range (params and named results included) is local storage the
	// restarted operation re-initializes; anything else is shared.
	Unit ast.Node
}

// Check appends the violations n itself commits (not its children — the
// caller visits every node) to the report callback.
func (c *Checker) Check(n ast.Node, report func(Violation)) {
	switch n := n.(type) {
	case *ast.AssignStmt:
		if n.Tok == token.DEFINE {
			return // fresh locals
		}
		for _, lhs := range n.Lhs {
			if !c.isLocal(lhs) {
				report(Violation{lhs.Pos(), "write to shared memory in read phase: a neutralization restart would leave it half-applied"})
			}
		}
	case *ast.IncDecStmt:
		if !c.isLocal(n.X) {
			report(Violation{n.Pos(), "write to shared memory in read phase: a neutralization restart would leave it half-applied"})
		}
	case *ast.SendStmt:
		report(Violation{n.Pos(), "channel send in read phase: channel ops are not restartable"})
	case *ast.UnaryExpr:
		if n.Op == token.ARROW {
			report(Violation{n.Pos(), "channel receive in read phase: channel ops are not restartable"})
		}
		if n.Op == token.AND {
			if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
				report(Violation{n.Pos(), "escaping composite literal allocates in read phase"})
			}
		}
	case *ast.CompositeLit:
		if t := c.Info.TypeOf(n); t != nil {
			switch t.Underlying().(type) {
			case *types.Slice, *types.Map:
				report(Violation{n.Pos(), "composite literal allocates in read phase"})
			}
		}
	case *ast.FuncLit:
		report(Violation{n.Pos(), "function literal allocates a closure in read phase"})
	case *ast.DeferStmt:
		report(Violation{n.Pos(), "defer in read phase: the deferred call outlives a neutralization restart"})
	case *ast.GoStmt:
		report(Violation{n.Pos(), "goroutine launch in read phase is not restartable"})
	case *ast.SelectStmt:
		report(Violation{n.Pos(), "select in read phase: channel ops are not restartable"})
	case *ast.RangeStmt:
		if t := c.Info.TypeOf(n.X); t != nil {
			if _, ok := t.Underlying().(*types.Chan); ok {
				report(Violation{n.Range, "range over channel in read phase: channel ops are not restartable"})
			}
		}
		if n.Tok == token.ASSIGN {
			for _, e := range []ast.Expr{n.Key, n.Value} {
				if e != nil && !c.isLocal(e) {
					report(Violation{e.Pos(), "write to shared memory in read phase: a neutralization restart would leave it half-applied"})
				}
			}
		}
	case *ast.CallExpr:
		c.checkCall(n, report)
	}
}

// checkCall classifies one call expression.
func (c *Checker) checkCall(call *ast.CallExpr, report func(Violation)) {
	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := c.Info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "new", "make":
				report(Violation{call.Pos(), fmt.Sprintf("%s allocates in read phase", b.Name())})
			case "append":
				report(Violation{call.Pos(), "append may grow (allocate) in read phase"})
			case "close":
				report(Violation{call.Pos(), "close in read phase: channel ops are not restartable"})
			case "delete", "clear", "copy":
				report(Violation{call.Pos(), fmt.Sprintf("%s writes shared memory in read phase", b.Name())})
			case "print", "println":
				report(Violation{call.Pos(), fmt.Sprintf("%s is a side effect; not restartable", b.Name())})
			}
			return // len, cap, min, max, panic, ... are fine
		}
	}
	// Type conversions are pure.
	if tv, ok := c.Info.Types[call.Fun]; ok && tv.IsType() {
		return
	}
	// Immediately-invoked literals run inline; their bodies are checked
	// where they execute.
	if _, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		return
	}
	// Guard protocol methods.
	if m := GuardMethod(c.Info, call); m != "" {
		switch m {
		case "BeginRead", "EndRead", "Reserve", "Protect", "NeedsValidation", "Tid", "OnStale":
			// The protocol's own vocabulary inside a read phase.
		case "Retire", "RetireBatch", "RetireSegment":
			// The bracket analyzer owns misplaced retires; stay silent here
			// so one mistake yields one diagnostic.
		case "OnAlloc":
			report(Violation{call.Pos(), "allocation (Guard.OnAlloc) in read phase"})
		default:
			report(Violation{call.Pos(), fmt.Sprintf("Guard.%s in read phase is not restartable", m)})
		}
		return
	}
	fn := StaticCallee(c.Info, call)
	if fn == nil {
		report(Violation{call.Pos(), "call through a function value in read phase: callee is not provably restartable"})
		return
	}
	switch whitelistClass(fn) {
	case wlPure:
		return
	case wlWrite:
		report(Violation{call.Pos(), fmt.Sprintf("%s is a shared-memory write; not restartable in a read phase", calleeName(fn))})
		return
	case wlLock:
		report(Violation{call.Pos(), fmt.Sprintf("%s in read phase: lock/synchronization ops are not restartable", calleeName(fn))})
		return
	}
	if fi := GetFuncInfo(c.Facts, fn); fi != nil {
		if fi.Restartable {
			return
		}
		report(Violation{call.Pos(), fmt.Sprintf("call to %s in read phase: not restartable (annotate //nbr:restartable only if every path is restart-safe)", calleeName(fn))})
		return
	}
	report(Violation{call.Pos(), fmt.Sprintf("call to %s in read phase: not proven restartable", calleeName(fn))})
}

type wlClass int

const (
	wlUnknown wlClass = iota
	wlPure            // always allowed in a read phase
	wlWrite           // a shared-memory write
	wlLock            // a lock/synchronization operation
)

// whitelistClass classifies callees the fact pass cannot see into: the
// standard library (no source loaded) and interface methods (no body).
func whitelistClass(fn *types.Func) wlClass {
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Path()
	}
	name := fn.Name()
	switch pkg {
	case "sync/atomic":
		if strings.HasPrefix(name, "Load") || name == "Load" {
			return wlPure
		}
		return wlWrite
	case "sync":
		return wlLock
	case "runtime":
		if name == "Gosched" || name == "KeepAlive" || name == "NumGoroutine" {
			return wlPure
		}
	case "math", "math/bits":
		return wlPure
	case MemPath:
		// Interface methods on mem.Arena resolve here with no body to
		// prove; both are reads. Concrete pool/hub methods carry facts and
		// never reach this table.
		if fn.Signature().Recv() != nil {
			if _, ok := fn.Signature().Recv().Type().Underlying().(*types.Interface); ok {
				if name == "Hdr" || name == "Valid" {
					return wlPure
				}
			}
		}
	}
	return wlUnknown
}

func calleeName(fn *types.Func) string {
	if recv := fn.Signature().Recv(); recv != nil {
		t := recv.Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return named.Obj().Name() + "." + fn.Name()
		}
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + fn.Name()
	}
	return fn.Name()
}

// isLocal reports whether storing through expr touches only memory a
// restarted operation would re-initialize: variables declared inside the
// unit, fields of such variables held by value, elements of local arrays.
// Anything reached through a pointer, slice, map, global, or captured
// variable is shared.
func (c *Checker) isLocal(expr ast.Expr) bool {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		if e.Name == "_" {
			return true
		}
		obj := c.Info.ObjectOf(e)
		v, ok := obj.(*types.Var)
		if !ok || v.IsField() {
			return false
		}
		return v.Pos() >= c.Unit.Pos() && v.Pos() <= c.Unit.End()
	case *ast.SelectorExpr:
		if id, ok := e.X.(*ast.Ident); ok {
			if _, isPkg := c.Info.ObjectOf(id).(*types.PkgName); isPkg {
				return false // pkg.Global
			}
		}
		if t := c.Info.TypeOf(e.X); t != nil {
			if _, ok := t.Underlying().(*types.Pointer); ok {
				return false
			}
		}
		return c.isLocal(e.X)
	case *ast.IndexExpr:
		if t := c.Info.TypeOf(e.X); t != nil {
			if _, ok := t.Underlying().(*types.Array); ok {
				return c.isLocal(e.X)
			}
		}
		return false
	case *ast.StarExpr:
		return false
	}
	return false
}
