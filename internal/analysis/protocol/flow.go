package protocol

import (
	"go/ast"
	"go/types"

	"nbr/internal/analysis/framework"
	"nbr/internal/analysis/nbrcfg"
)

// Flow is the bracket-state dataflow over one function body: a forward
// may-analysis whose per-block input is the union of states over all paths
// reaching the block. BeginRead forces Open, EndRead forces Closed, and a
// call to a function with a known summary applies that summary; everything
// else is the identity.
type Flow struct {
	CFG *nbrcfg.CFG
	// In[i] is the may-set of states entering block i; 0 means unreachable.
	In []State

	info  *types.Info
	facts *framework.FactStore
}

// RunFlow builds the CFG for body and runs the bracket dataflow to fixpoint
// from the given entry state.
func RunFlow(info *types.Info, facts *framework.FactStore, body *ast.BlockStmt, entry State) *Flow {
	cfg := nbrcfg.New(body)
	f := &Flow{CFG: cfg, In: make([]State, len(cfg.Blocks)), info: info, facts: facts}
	f.In[0] = entry
	work := []*nbrcfg.Block{cfg.Blocks[0]}
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		out := f.In[b.Index]
		for _, n := range b.Nodes {
			out = StepNode(info, facts, n, out, nil)
		}
		for _, succ := range b.Succs {
			if f.In[succ.Index]|out != f.In[succ.Index] {
				f.In[succ.Index] |= out
				work = append(work, succ)
			}
		}
	}
	return f
}

// ExitState returns the may-set of states at the normal function exit.
// Paths ending in panic do not contribute: under NBR a neutralization
// unwinds as a panic, and an open phase at that point is the expected
// signal-delivery path, not a leak.
func (f *Flow) ExitState() State { return f.In[f.CFG.Exit.Index] }

// Walk replays the dataflow over every reachable block, invoking visit on
// each AST node (pre-order, not descending into nested function literals)
// with the bracket state in force when that node executes.
func (f *Flow) Walk(visit func(n ast.Node, st State)) {
	for _, b := range f.CFG.Blocks {
		st := f.In[b.Index]
		if st == 0 {
			continue // unreachable
		}
		for _, n := range b.Nodes {
			st = StepNode(f.info, f.facts, n, st, visit)
		}
	}
}

// StepNode applies one CFG node's bracket transitions to st, optionally
// invoking visit on each subnode with the state in force at that subnode.
//
// Node boundaries follow the CFG builder's granularity: range and select
// statements appear as header nodes whose bodies live in other blocks, so
// only their header expressions are stepped here; defer and go statements
// contribute no transitions (their calls run outside the current path).
// Function literal bodies are never descended into — a literal is a value
// here, and is analyzed as its own unit.
func StepNode(info *types.Info, facts *framework.FactStore, n ast.Node, st State, visit func(ast.Node, State)) State {
	switch n := n.(type) {
	case *ast.DeferStmt, *ast.GoStmt:
		if visit != nil {
			visit(n, st)
		}
		return st
	case *ast.RangeStmt:
		if visit != nil {
			visit(n, st)
		}
		return stepExpr(info, facts, n.X, st, visit)
	case *ast.SelectStmt:
		if visit != nil {
			visit(n, st)
		}
		return st
	}
	return stepExpr(info, facts, n, st, visit)
}

// stepExpr walks a node's subtree in pre-order, applying call transitions.
func stepExpr(info *types.Info, facts *framework.FactStore, n ast.Node, st State, visit func(ast.Node, State)) State {
	ast.Inspect(n, func(x ast.Node) bool {
		if x == nil {
			return false
		}
		if lit, ok := x.(*ast.FuncLit); ok {
			if visit != nil {
				visit(lit, st)
			}
			return false
		}
		if call, ok := x.(*ast.CallExpr); ok && IsPanicCall(info, call) {
			// A panic's arguments only run on the crash path, which is never
			// restarted — allocating the message there is fine.
			if visit != nil {
				visit(call, st)
			}
			return false
		}
		if call, ok := x.(*ast.CallExpr); ok {
			if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
				// Immediately-invoked literal: its body runs right here — the
				// absorb-neutralization envelope idiom — so flow through it
				// inline instead of treating it as an opaque value.
				for _, arg := range call.Args {
					st = stepExpr(info, facts, arg, st, visit)
				}
				inner := RunFlow(info, facts, lit.Body, st)
				if visit != nil {
					inner.Walk(visit)
				}
				st = inner.ExitState()
				return false
			}
		}
		if visit != nil {
			visit(x, st)
		}
		if call, ok := x.(*ast.CallExpr); ok {
			st = applyCall(info, facts, call, st)
		}
		return true
	})
	return st
}

// applyCall returns the bracket state after the call.
func applyCall(info *types.Info, facts *framework.FactStore, call *ast.CallExpr, st State) State {
	if m := GuardMethod(info, call); m != "" {
		switch m {
		case "BeginRead":
			return Open
		case "EndRead":
			return Closed
		}
		return st
	}
	if fn := StaticCallee(info, call); fn != nil {
		if fi := GetFuncInfo(facts, fn); fi != nil {
			return fi.Summary.Apply(st)
		}
	}
	return st // unknown callee: identity
}
