package nbrcfg

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// build parses src as a function body and returns its CFG.
func build(t *testing.T, body string) *CFG {
	t.Helper()
	src := "package p\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "t.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return New(f.Decls[0].(*ast.FuncDecl).Body)
}

// reaches reports whether the exit block is reachable from the entry.
func reachesExit(c *CFG) bool {
	seen := make(map[*Block]bool)
	var walk func(*Block) bool
	walk = func(b *Block) bool {
		if b == c.Exit {
			return true
		}
		if seen[b] {
			return false
		}
		seen[b] = true
		for _, s := range b.Succs {
			if walk(s) {
				return true
			}
		}
		return false
	}
	return walk(c.Blocks[0])
}

func TestStraightLine(t *testing.T) {
	c := build(t, "x := 1\n_ = x\nreturn")
	if !reachesExit(c) {
		t.Fatal("exit unreachable")
	}
	if len(c.Blocks[0].Nodes) != 3 {
		t.Fatalf("entry nodes = %d, want 3", len(c.Blocks[0].Nodes))
	}
}

func TestLabeledContinueLoop(t *testing.T) {
	// The harrislist restart idiom: labeled infinite loop, continue to label.
	c := build(t, `
again:
	for {
		if true {
			continue again
		}
		return
	}`)
	if !reachesExit(c) {
		t.Fatal("exit unreachable through return")
	}
	// The continue must form a cycle: some block reachable from entry has a
	// back edge to an already-seen block.
	if !hasCycle(c) {
		t.Fatal("labeled continue formed no cycle")
	}
}

func TestGotoRetry(t *testing.T) {
	// The lazylist restart idiom: goto back to a label above.
	c := build(t, `
	x := 0
retry:
	x++
	if x < 3 {
		goto retry
	}
	return`)
	if !reachesExit(c) {
		t.Fatal("exit unreachable")
	}
	if !hasCycle(c) {
		t.Fatal("goto retry formed no cycle")
	}
}

func TestPanicTerminatesPath(t *testing.T) {
	c := build(t, `panic("boom")`)
	if reachesExit(c) {
		t.Fatal("panic-only body must not reach the normal exit")
	}
}

func TestIfElseMerges(t *testing.T) {
	c := build(t, `
	x := 0
	if x > 0 {
		x = 1
	} else {
		x = 2
	}
	_ = x`)
	if !reachesExit(c) {
		t.Fatal("exit unreachable")
	}
}

func TestSwitchFallthroughAndDefault(t *testing.T) {
	c := build(t, `
	x := 0
	switch x {
	case 0:
		x = 1
		fallthrough
	case 1:
		x = 2
	default:
		x = 3
	}
	_ = x`)
	if !reachesExit(c) {
		t.Fatal("exit unreachable")
	}
}

func TestSelectPaths(t *testing.T) {
	c := build(t, `
	ch := make(chan int)
	select {
	case v := <-ch:
		_ = v
	default:
	}`)
	if !reachesExit(c) {
		t.Fatal("exit unreachable")
	}
	c = build(t, `select {}`)
	if reachesExit(c) {
		t.Fatal("empty select blocks forever; exit must be unreachable")
	}
}

func TestRangeMayBeEmpty(t *testing.T) {
	c := build(t, `
	var xs []int
	for range xs {
	}
	return`)
	if !reachesExit(c) {
		t.Fatal("exit unreachable")
	}
}

func hasCycle(c *CFG) bool {
	state := make(map[*Block]int) // 0 unvisited, 1 on stack, 2 done
	var walk func(*Block) bool
	walk = func(b *Block) bool {
		state[b] = 1
		for _, s := range b.Succs {
			if state[s] == 1 {
				return true
			}
			if state[s] == 0 && walk(s) {
				return true
			}
		}
		state[b] = 2
		return false
	}
	return walk(c.Blocks[0])
}
