// Package nbrcfg builds a control-flow graph over one function body, the
// substrate for nbrvet's read-phase bracket dataflow. It is a compact
// stand-in for golang.org/x/tools/go/cfg (unavailable offline — see
// internal/analysis/framework), covering the statement forms the protocol
// analyzers must track precisely: loops, conditionals, switches, selects,
// labeled break/continue and goto (the restart idiom every structure's
// search uses), return, and panic.
//
// Granularity: a Block holds the nodes that execute unconditionally once the
// block is entered, in order. Control statements contribute only their
// header parts (init statement, condition, tag) to a block; their bodies get
// blocks of their own. A panic call terminates its path without reaching the
// function exit — deliberately: under NBR a neutralization is delivered as a
// panic, so "read phase still open at a panic" is the normal signal-unwind
// path, not a protocol leak.
package nbrcfg

import "go/ast"

// CFG is one function body's control-flow graph.
type CFG struct {
	// Blocks[0] is the entry. Exit is the synthetic normal-exit block:
	// return statements and falling off the end lead there; panics do not.
	Blocks []*Block
	Exit   *Block
}

// Block is a maximal straight-line node sequence.
type Block struct {
	Index int
	Nodes []ast.Node
	Succs []*Block
}

type builder struct {
	cfg    *CFG
	cur    *Block
	labels map[string]*labelInfo
	// innermost enclosing targets for unlabeled break/continue
	breakTo    []*Block
	continueTo []*Block
}

type labelInfo struct {
	target     *Block // goto/continue re-entry point (loop head for loops)
	breakTo    *Block // filled when the labeled statement is a loop/switch
	continueTo *Block
}

// New builds the CFG for a function body.
func New(body *ast.BlockStmt) *CFG {
	b := &builder{cfg: &CFG{}, labels: make(map[string]*labelInfo)}
	entry := b.newBlock()
	exit := b.newBlock()
	b.cfg.Exit = exit
	b.cur = entry
	b.stmts(body.List)
	// Falling off the end reaches the normal exit.
	b.jump(exit)
	return b.cfg
}

func (b *builder) newBlock() *Block {
	blk := &Block{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

// jump links the current block to target and leaves the current path dead
// (a fresh unreachable block) unless a new block is started by the caller.
func (b *builder) jump(target *Block) {
	if b.cur != nil && target != nil {
		b.cur.Succs = append(b.cur.Succs, target)
	}
	b.cur = nil
}

// start makes blk the current block, linking from the previous current one.
func (b *builder) start(blk *Block) {
	if b.cur != nil {
		b.cur.Succs = append(b.cur.Succs, blk)
	}
	b.cur = blk
}

func (b *builder) add(n ast.Node) {
	if b.cur == nil {
		b.cur = b.newBlock() // unreachable code still gets a (pred-less) block
	}
	b.cur.Nodes = append(b.cur.Nodes, n)
}

func (b *builder) stmts(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// isPanic reports whether s is a direct call to the predeclared panic.
// Syntax-only: shadowing `panic` would fool it, which no reasonable code
// does; the cost of a miss is one conservative extra path to consider.
func isPanic(s ast.Stmt) bool {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}

func (b *builder) label(name string) *labelInfo {
	li, ok := b.labels[name]
	if !ok {
		li = &labelInfo{}
		b.labels[name] = li
	}
	return li
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmts(s.List)

	case *ast.LabeledStmt:
		li := b.label(s.Label.Name)
		if li.target == nil {
			li.target = b.newBlock()
		}
		b.start(li.target)
		// Loops and switches consume the label for break/continue targets.
		b.labeledStmt(s.Stmt, li)

	case *ast.IfStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Cond)
		condBlk := b.cur
		after := b.newBlock()
		thenBlk := b.newBlock()
		b.cur = condBlk
		b.start(thenBlk)
		b.stmts(s.Body.List)
		b.jump(after)
		if s.Else != nil {
			elseBlk := b.newBlock()
			condBlk.Succs = append(condBlk.Succs, elseBlk)
			b.cur = elseBlk
			b.stmt(s.Else)
			b.jump(after)
		} else {
			condBlk.Succs = append(condBlk.Succs, after)
		}
		b.cur = after

	case *ast.ForStmt:
		b.forStmt(s, nil)

	case *ast.RangeStmt:
		b.rangeStmt(s, nil)

	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		b.switchStmt(s, nil)

	case *ast.SelectStmt:
		b.selectStmt(s)

	case *ast.ReturnStmt:
		b.add(s)
		b.jump(b.cfg.Exit)

	case *ast.BranchStmt:
		b.branchStmt(s)

	default:
		b.add(s)
		if isPanic(s) {
			b.cur = nil // path terminates without reaching the normal exit
		}
	}
}

// labeledStmt handles the statement under a label, wiring the label's
// break/continue targets when it is a loop or switch.
func (b *builder) labeledStmt(s ast.Stmt, li *labelInfo) {
	switch s := s.(type) {
	case *ast.ForStmt:
		b.forStmt(s, li)
	case *ast.RangeStmt:
		b.rangeStmt(s, li)
	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		b.switchStmt(s, li)
	default:
		b.stmt(s)
	}
}

func (b *builder) forStmt(s *ast.ForStmt, li *labelInfo) {
	if s.Init != nil {
		b.add(s.Init)
	}
	head := b.newBlock()
	// A labeled loop's label block falls through to the head; continue and
	// goto on the label both re-test the loop, matching Go semantics closely
	// enough for a bracket dataflow (goto to a loop label is illegal Go
	// anyway unless the loop is the labeled statement).
	b.start(head)
	if s.Cond != nil {
		b.add(s.Cond)
	}
	after := b.newBlock()
	post := head
	if s.Post != nil {
		post = b.newBlock()
	}
	if li != nil {
		li.breakTo, li.continueTo = after, post
	}
	if s.Cond != nil {
		b.cur.Succs = append(b.cur.Succs, after)
	}
	body := b.newBlock()
	b.start(body)
	b.breakTo = append(b.breakTo, after)
	b.continueTo = append(b.continueTo, post)
	b.stmts(s.Body.List)
	b.breakTo = b.breakTo[:len(b.breakTo)-1]
	b.continueTo = b.continueTo[:len(b.continueTo)-1]
	b.jump(post)
	if s.Post != nil {
		b.cur = post
		b.add(s.Post)
		b.jump(head)
	}
	b.cur = after
}

func (b *builder) rangeStmt(s *ast.RangeStmt, li *labelInfo) {
	head := b.newBlock()
	b.start(head)
	// The range header: X is evaluated, Key/Value are assigned each
	// iteration. The whole RangeStmt is exposed as a node so checkers can
	// flag channel ranges and key/value stores without seeing the body here.
	b.add(s)
	after := b.newBlock()
	if li != nil {
		li.breakTo, li.continueTo = after, head
	}
	b.cur.Succs = append(b.cur.Succs, after) // range may be empty
	body := b.newBlock()
	b.start(body)
	b.breakTo = append(b.breakTo, after)
	b.continueTo = append(b.continueTo, head)
	b.stmts(s.Body.List)
	b.breakTo = b.breakTo[:len(b.breakTo)-1]
	b.continueTo = b.continueTo[:len(b.continueTo)-1]
	b.jump(head)
	b.cur = after
}

func (b *builder) switchStmt(s ast.Stmt, li *labelInfo) {
	var body *ast.BlockStmt
	switch s := s.(type) {
	case *ast.SwitchStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		body = s.Body
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Assign)
		body = s.Body
	}
	head := b.cur
	if head == nil {
		head = b.newBlock()
		b.cur = head
	}
	after := b.newBlock()
	if li != nil {
		li.breakTo = after
	}
	b.breakTo = append(b.breakTo, after)
	var caseBlocks []*Block
	hasDefault := false
	for _, cc := range body.List {
		clause := cc.(*ast.CaseClause)
		if clause.List == nil {
			hasDefault = true
		}
		blk := b.newBlock()
		head.Succs = append(head.Succs, blk)
		b.cur = blk
		for _, e := range clause.List {
			b.add(e)
		}
		caseBlocks = append(caseBlocks, blk)
		b.stmts(clause.Body)
		// Fallthrough is handled below by linking to the next case block.
		if b.cur != nil && endsInFallthrough(clause.Body) {
			// linked after all case blocks exist
		} else {
			b.jump(after)
		}
	}
	// Wire fallthroughs.
	for i, cc := range body.List {
		clause := cc.(*ast.CaseClause)
		if endsInFallthrough(clause.Body) && i+1 < len(caseBlocks) {
			last := lastReachable(caseBlocks[i])
			if last != nil {
				last.Succs = append(last.Succs, caseBlocks[i+1])
			}
		}
	}
	if !hasDefault {
		head.Succs = append(head.Succs, after)
	}
	b.breakTo = b.breakTo[:len(b.breakTo)-1]
	b.cur = after
}

// lastReachable follows the builder's linear chain to find the block a
// fallthrough leaves from. Case bodies ending in fallthrough are straight
// line by the spec (fallthrough must be the final statement), so the case's
// entry block is where the fallthrough edge originates unless the body
// introduced inner control flow; walking the single-successor chain covers
// that.
func lastReachable(blk *Block) *Block {
	seen := map[*Block]bool{}
	for blk != nil && !seen[blk] {
		seen[blk] = true
		if len(blk.Succs) == 0 {
			return blk
		}
		if len(blk.Succs) == 1 {
			blk = blk.Succs[0]
			continue
		}
		return blk
	}
	return blk
}

func endsInFallthrough(body []ast.Stmt) bool {
	if len(body) == 0 {
		return false
	}
	br, ok := body[len(body)-1].(*ast.BranchStmt)
	return ok && br.Tok.String() == "fallthrough"
}

func (b *builder) selectStmt(s *ast.SelectStmt) {
	// The SelectStmt itself is exposed so checkers can flag the blocking
	// channel operation; each comm clause then gets its own path.
	b.add(s)
	head := b.cur
	after := b.newBlock()
	b.breakTo = append(b.breakTo, after)
	for _, cc := range s.Body.List {
		clause := cc.(*ast.CommClause)
		blk := b.newBlock()
		head.Succs = append(head.Succs, blk)
		b.cur = blk
		if clause.Comm != nil {
			b.add(clause.Comm)
		}
		b.stmts(clause.Body)
		b.jump(after)
	}
	if len(s.Body.List) == 0 {
		// select{} blocks forever: no successor.
		b.cur = nil
		b.breakTo = b.breakTo[:len(b.breakTo)-1]
		return
	}
	b.breakTo = b.breakTo[:len(b.breakTo)-1]
	b.cur = after
}

func (b *builder) branchStmt(s *ast.BranchStmt) {
	b.add(s)
	switch s.Tok.String() {
	case "break":
		if s.Label != nil {
			b.jump(b.label(s.Label.Name).breakTo)
		} else if len(b.breakTo) > 0 {
			b.jump(b.breakTo[len(b.breakTo)-1])
		} else {
			b.cur = nil
		}
	case "continue":
		if s.Label != nil {
			b.jump(b.label(s.Label.Name).continueTo)
		} else if len(b.continueTo) > 0 {
			b.jump(b.continueTo[len(b.continueTo)-1])
		} else {
			b.cur = nil
		}
	case "goto":
		li := b.label(s.Label.Name)
		if li.target == nil {
			li.target = b.newBlock()
		}
		b.jump(li.target)
	case "fallthrough":
		// handled by switchStmt
		b.cur = nil
	}
}
