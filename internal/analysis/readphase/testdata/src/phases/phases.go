// Package phases is the readphase analyzer's corpus: a Harris-list-shaped
// structure whose read phases commit each class of non-restartable sin, plus
// the clean traversal and annotation patterns they should reduce to.
// Expectations live in the want comments (checked by atest); the package is
// never executed.
package phases

import (
	"sync"
	"sync/atomic"

	"nbr/internal/mem"
	"nbr/internal/smr"
)

type node struct {
	key  uint64
	next uint64
}

type list struct {
	pool    *mem.Pool[node]
	head    mem.Ptr
	mu      sync.Mutex
	size    atomic.Int64
	scratch [][]mem.Ptr
}

// searchAlloc allocates mid-traversal: a neutralization restart abandons
// the slice and re-runs the allocation, unbounded under contention.
func (l *list) searchAlloc(g smr.Guard, key uint64) mem.Ptr {
	g.BeginRead()
	t := l.head
	path := make([]mem.Ptr, 0, 8) // want "make allocates in read phase"
	for t != mem.Null {
		n := l.pool.Raw(t)
		path = append(path, t) // want "append may grow \\(allocate\\) in read phase"
		if n.key >= key {
			break
		}
		t = mem.Ptr(atomic.LoadUint64(&n.next))
	}
	g.Reserve(0, t)
	g.EndRead()
	_ = path
	return t
}

// searchLocked takes the structure lock inside the read phase: the restart
// would re-acquire a lock the abandoned run never released.
func (l *list) searchLocked(g smr.Guard, key uint64) bool {
	g.BeginRead()
	l.mu.Lock() // want "Mutex.Lock in read phase: lock/synchronization ops are not restartable"
	n := l.pool.Raw(l.head)
	found := n.key == key
	l.mu.Unlock() // want "Mutex.Unlock in read phase"
	g.EndRead()
	return found
}

// searchCount bumps a shared counter mid-phase: the restart double-counts.
func (l *list) searchCount(g smr.Guard) {
	g.BeginRead()
	l.size.Add(1) // want "Int64.Add is a shared-memory write"
	g.EndRead()
}

// searchPatch stores through a record pointer mid-phase.
func (l *list) searchPatch(g smr.Guard, p mem.Ptr) {
	g.BeginRead()
	n := l.pool.Raw(p)
	n.key = 0 // want "write to shared memory in read phase"
	g.EndRead()
}

// searchNotify performs channel and defer operations inside the phase.
func (l *list) searchNotify(g smr.Guard, done chan struct{}) {
	g.BeginRead()
	done <- struct{}{} // want "channel send in read phase"
	defer g.EndOp()    // want "defer in read phase"
	g.EndRead()
}

// audit is not restartable (it locks) and carries no annotation.
func (l *list) audit() int {
	l.mu.Lock()
	n := 1
	l.mu.Unlock()
	return n
}

// searchAudit calls a function the fact pass cannot prove restartable.
func (l *list) searchAudit(g smr.Guard) {
	g.BeginRead()
	_ = l.audit() // want "call to list.audit in read phase: not restartable"
	g.EndRead()
}

// search is the clean Harris-style traversal: copy-validate reads, slot
// protection, reservation before EndRead — every operation restartable.
func (l *list) search(g smr.Guard, key uint64) (mem.Ptr, bool) {
	g.BeginRead()
	t := l.head
	g.Protect(0, t)
	var k uint64
	for t != mem.Null {
		n := l.pool.Raw(t)
		k = n.key
		next := mem.Ptr(atomic.LoadUint64(&n.next))
		if !l.pool.Valid(t) {
			g.OnStale(t)
		}
		if k >= key {
			break
		}
		t = next
		g.Protect(1, t)
	}
	g.Reserve(0, t)
	g.EndRead()
	return t, k == key
}

// pushScratch appends to this thread's private marked-chain buffer.
//
//nbr:restartable — the buffer is Tid-private and the restart path resets it, so a torn append is unobservable
func (l *list) pushScratch(tid int, p mem.Ptr) {
	l.scratch[tid] = append(l.scratch[tid], p)
}

// searchScratch uses the annotated helper inside the phase: clean.
func (l *list) searchScratch(g smr.Guard, p mem.Ptr) {
	g.BeginRead()
	l.pushScratch(g.Tid(), p)
	g.EndRead()
}

// keyOf reads one field; the proof sees straight through it, so the
// annotation is stale weight the analyzer tells you to delete.
//
//nbr:restartable — stale on purpose: the corpus wants the redundancy diagnosed.
func (l *list) keyOf(p mem.Ptr) uint64 { // want "redundant //nbr:restartable: keyOf is provably restartable"
	return l.pool.Raw(p).key
}
