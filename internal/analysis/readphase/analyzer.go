// Package readphase enforces the Φread restartability rules: between
// BeginRead and EndRead a neutralization signal can longjmp out at any
// instruction, so the bracketed code must be safe to abandon and re-run —
// no allocation, no writes to shared memory, no locks or channel ops, no
// defers or goroutine launches, and no calls to functions the fact pass
// cannot prove restartable (//nbr:restartable is the audited escape hatch).
package readphase

import (
	"go/ast"
	"go/types"

	"nbr/internal/analysis/framework"
	"nbr/internal/analysis/protocol"
)

// Analyzer is the read-phase restartability analyzer.
var Analyzer = &framework.Analyzer{
	Name: "readphase",
	Doc: `check that read phases contain only restartable operations

Tracks BeginRead/EndRead brackets over the CFG (interprocedurally, via
per-function bracket summaries) and flags, inside any open read phase:
allocation (new, make, append growth, escaping composite literals, closure
creation), stores through non-local pointers, sync package lock operations,
atomic writes, channel operations, defer, goroutine launches, and calls to
functions not proven restartable. A function whose whole body passes these
rules is proven restartable automatically; //nbr:restartable on a
declaration asserts it for functions the proof cannot see through, and is
itself diagnosed when redundant.`,
	Run: run,
}

func run(pass *framework.Pass) (interface{}, error) {
	for _, unit := range protocol.Units(pass.TypesInfo, pass.Files) {
		chk := &protocol.Checker{Info: pass.TypesInfo, Facts: pass.Facts, Unit: unit.Node}
		flow := protocol.RunFlow(pass.TypesInfo, pass.Facts, unit.Body, protocol.Closed)
		flow.Walk(func(n ast.Node, st protocol.State) {
			if st&protocol.Open == 0 {
				return
			}
			chk.Check(n, func(v protocol.Violation) {
				pass.Reportf(v.Pos, "%s", v.Msg)
			})
		})
	}

	// Annotation hygiene: an //nbr:restartable on a function the checker can
	// prove restartable anyway is stale weight — the assertion would silently
	// keep excusing the body if it later grew a real violation.
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			decl, ok := d.(*ast.FuncDecl)
			if !ok || decl.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[decl.Name].(*types.Func)
			if !ok {
				continue
			}
			if fi := protocol.GetFuncInfo(pass.Facts, fn); fi != nil && fi.Annotated && fi.Proven {
				pass.Reportf(decl.Name.Pos(), "redundant //nbr:restartable: %s is provably restartable; delete the annotation", decl.Name.Name)
			}
		}
	}
	return nil, nil
}
