package readphase_test

import (
	"testing"

	"nbr/internal/analysis/atest"
	"nbr/internal/analysis/readphase"
)

func TestPhasesCorpus(t *testing.T) {
	atest.Run(t, "testdata/src/phases", readphase.Analyzer)
}
