// Package atest is the golden-test harness for the nbrvet analyzers — the
// offline counterpart of golang.org/x/tools/go/analysis/analysistest.
//
// A corpus is a directory of .go files (conventionally testdata/src/<name>,
// which the go tool ignores) that imports the real module packages, so the
// analyzers run against the genuine smr/mem/nbr types. Expected diagnostics
// are declared in the source with want comments:
//
//	g.EndRead() // want "EndRead with no open read phase"
//
// Each `// want "re" ["re" ...]` comment expects one diagnostic per quoted
// regexp on its own line; diagnostics with no matching want, and wants with
// no matching diagnostic, fail the test.
package atest

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"nbr/internal/analysis/framework"
	"nbr/internal/analysis/protocol"
)

// moduleRoot walks up from the working directory to the directory holding
// go.mod (tests run with the package directory as cwd).
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above working directory")
		}
		dir = parent
	}
}

type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// parseWants extracts want expectations from one file's comments.
func parseWants(t *testing.T, fset *token.FileSet, filename string) []*want {
	t.Helper()
	src, err := os.ReadFile(filename)
	if err != nil {
		t.Fatal(err)
	}
	f, err := parser.ParseFile(fset, filename, src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	var out []*want
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, "// want ")
			if !ok {
				text, ok = strings.CutPrefix(c.Text, "//want ")
			}
			if !ok {
				continue
			}
			pos := fset.Position(c.Pos())
			for _, raw := range splitQuoted(t, pos.String(), text) {
				re, err := regexp.Compile(raw)
				if err != nil {
					t.Fatalf("%s: bad want regexp %q: %v", pos, raw, err)
				}
				out = append(out, &want{file: pos.Filename, line: pos.Line, re: re, raw: raw})
			}
		}
	}
	return out
}

// splitQuoted parses a sequence of Go-quoted strings ("..." or `...`).
func splitQuoted(t *testing.T, at, text string) []string {
	t.Helper()
	var out []string
	rest := strings.TrimSpace(text)
	for rest != "" {
		var q byte = rest[0]
		if q != '"' && q != '`' {
			t.Fatalf("%s: want comment: expected quoted regexp, got %q", at, rest)
		}
		end := 1
		for end < len(rest) {
			if rest[end] == q && (q == '`' || rest[end-1] != '\\') {
				break
			}
			end++
		}
		if end == len(rest) {
			t.Fatalf("%s: want comment: unterminated string in %q", at, rest)
		}
		s, err := strconv.Unquote(rest[:end+1])
		if err != nil {
			t.Fatalf("%s: want comment: %v", at, err)
		}
		out = append(out, s)
		rest = strings.TrimSpace(rest[end+1:])
	}
	return out
}

// Run loads dir as one package and checks the analyzers' findings against
// the corpus's want comments.
func Run(t *testing.T, dir string, analyzers ...*framework.Analyzer) {
	t.Helper()
	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatal(err)
	}
	session := framework.NewSession(moduleRoot(t))
	session.SetFactPass(protocol.ComputeFacts)
	pkg, err := session.LoadDir(abs)
	if err != nil {
		t.Fatalf("loading corpus %s: %v", dir, err)
	}
	findings, err := session.Analyze(analyzers, []*framework.Package{pkg})
	if err != nil {
		t.Fatalf("analyzing %s: %v", dir, err)
	}

	wantFset := token.NewFileSet()
	var wants []*want
	entries, err := os.ReadDir(abs)
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range entries {
		if de.IsDir() || !strings.HasSuffix(de.Name(), ".go") {
			continue
		}
		wants = append(wants, parseWants(t, wantFset, filepath.Join(abs, de.Name()))...)
	}

	for _, f := range findings {
		matched := false
		for _, w := range wants {
			if w.matched || w.file != f.Position.Filename || w.line != f.Position.Line {
				continue
			}
			if w.re.MatchString(f.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s (%s)", f.Position, f.Message, f.Analyzer)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.raw)
		}
	}
}
