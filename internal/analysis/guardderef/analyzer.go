// Package guardderef checks that record pointers handed out by the arena
// accessors are only obtained under protection: inside a guard bracket, or
// for handles the bracket reserved before closing. It also flags uses of a
// lease after its Release — the guard behind a released lease may already
// serve another goroutine.
package guardderef

import (
	"go/ast"
	"go/token"
	"go/types"

	"nbr/internal/analysis/framework"
	"nbr/internal/analysis/nbrcfg"
	"nbr/internal/analysis/protocol"
)

// Analyzer is the unprotected-dereference analyzer.
var Analyzer = &framework.Analyzer{
	Name: "guardderef",
	Doc: `check that arena record pointers are obtained under protection

Within functions that manage guard brackets, flags calls to the mem arena
accessors (Raw, Get, MustGet, Hdr) on paths where no read phase can be open,
unless the handle was reserved (passed to Guard.Reserve) in the same
function — reservations are exactly the mechanism that keeps a record live
past EndRead. Functions without brackets are out of scope: write-phase
helpers hold locks or reservations their callers took. Separately, flags any
use of a lease variable after a path may have Released it.`,
	Run: run,
}

func run(pass *framework.Pass) (interface{}, error) {
	// The lease-implementing packages define what Release leaves behind
	// (Revoked stays readable, the watchdog revokes then releases); their
	// internal post-Release touches are the semantics, not a misuse.
	implPkg := pass.Pkg.Path() == protocol.NBRPath || pass.Pkg.Path() == protocol.SMRPath
	for _, unit := range protocol.Units(pass.TypesInfo, pass.Files) {
		if protocol.HasBracketCalls(pass.TypesInfo, unit.Body) {
			checkAccessors(pass, unit)
		}
		if !implPkg {
			checkReleasedLeases(pass, unit)
		}
	}
	return nil, nil
}

// checkAccessors flags arena accessor calls on definitely-unbracketed paths.
func checkAccessors(pass *framework.Pass, unit *protocol.Unit) {
	// Handles passed to Reserve anywhere in the unit are exempt: reserving
	// is what makes a post-EndRead access legal. Flow-insensitive on
	// purpose — a reserved handle stays reserved until EndOp.
	reserved := make(map[types.Object]bool)
	ast.Inspect(unit.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if protocol.GuardMethod(pass.TypesInfo, call) == "Reserve" && len(call.Args) == 2 {
			if id, ok := ast.Unparen(call.Args[1]).(*ast.Ident); ok {
				if obj := pass.TypesInfo.Uses[id]; obj != nil {
					reserved[obj] = true
				}
			}
		}
		return true
	})

	flow := protocol.RunFlow(pass.TypesInfo, pass.Facts, unit.Body, protocol.Closed)
	flow.Walk(func(n ast.Node, st protocol.State) {
		call, ok := n.(*ast.CallExpr)
		if !ok || st&protocol.Open != 0 {
			return
		}
		name := accessorName(pass.TypesInfo, call)
		if name == "" {
			return
		}
		if len(call.Args) >= 1 {
			if id, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok {
				if obj := pass.TypesInfo.Uses[id]; obj != nil && reserved[obj] {
					return
				}
			}
		}
		pass.Reportf(call.Pos(), "%s outside any read phase: the record may be reclaimed underfoot; call it inside BeginRead/EndRead or Reserve the handle first", name)
	})
}

// accessorName returns the reported name if call is an arena record
// accessor from the mem package, or "".
func accessorName(info *types.Info, call *ast.CallExpr) string {
	fn := protocol.StaticCallee(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != protocol.MemPath {
		return ""
	}
	if fn.Signature().Recv() == nil {
		return ""
	}
	switch fn.Name() {
	case "Raw", "Get", "MustGet", "Hdr":
		return fn.Name()
	}
	return ""
}

// checkReleasedLeases runs a small forward may-analysis per unit: the state
// is the set of lease variables some path has Released; any subsequent use
// of such a variable is flagged, and reassignment clears it.
func checkReleasedLeases(pass *framework.Pass, unit *protocol.Unit) {
	// Cheap pre-filter: any Release call on a lease at all?
	any := false
	ast.Inspect(unit.Body, func(n ast.Node) bool {
		if any {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if v := releasedVar(pass.TypesInfo, call); v != nil {
				any = true
			}
		}
		return true
	})
	if !any {
		return
	}

	cfg := nbrcfg.New(unit.Body)
	in := make([]map[*types.Var]bool, len(cfg.Blocks))
	in[0] = map[*types.Var]bool{}
	work := []*nbrcfg.Block{cfg.Blocks[0]}
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		out := copySet(in[b.Index])
		for _, n := range b.Nodes {
			stepReleases(pass.TypesInfo, n, out)
		}
		for _, succ := range b.Succs {
			if union(&in[succ.Index], out) {
				work = append(work, succ)
			}
		}
	}

	// Reporting pass: replay each reachable block, flagging uses of
	// may-released variables. Dedupe by position (a block is replayed once,
	// but an ident can be both a use and the receiver of a second Release).
	seen := make(map[token.Pos]bool)
	for _, b := range cfg.Blocks {
		if in[b.Index] == nil {
			continue
		}
		released := copySet(in[b.Index])
		for _, n := range b.Nodes {
			reportUses(pass, n, released, seen)
			stepReleases(pass.TypesInfo, n, released)
		}
	}
}

// releasedVar returns the lease variable call releases, or nil.
func releasedVar(info *types.Info, call *ast.CallExpr) *types.Var {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Release" {
		return nil
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return nil
	}
	v, ok := info.Uses[id].(*types.Var)
	if !ok || !isLeaseType(v.Type()) {
		return nil
	}
	return v
}

// stepReleases applies one CFG node's effect on the released set: Release
// adds its receiver, assignment to a lease variable clears it. Deferred and
// go'd calls are skipped — a `defer l.Release()` runs at function exit, not
// here — as are range/select bodies, which occupy their own CFG blocks.
func stepReleases(info *types.Info, n ast.Node, released map[*types.Var]bool) {
	if r, ok := n.(*ast.RangeStmt); ok {
		// Only the header executes here; the iteration variables are
		// (re)assigned each round, clearing any released bit.
		for _, e := range []ast.Expr{r.Key, r.Value} {
			if e == nil {
				continue
			}
			if id, ok := ast.Unparen(e).(*ast.Ident); ok {
				if v, ok := info.ObjectOf(id).(*types.Var); ok {
					delete(released, v)
				}
			}
		}
		return
	}
	switch n.(type) {
	case *ast.DeferStmt, *ast.GoStmt, *ast.SelectStmt:
		return
	}
	ast.Inspect(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if v := releasedVar(info, x); v != nil {
				released[v] = true
			}
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
					if v, ok := info.ObjectOf(id).(*types.Var); ok {
						delete(released, v)
					}
				}
			}
		}
		return true
	})
}

// reportUses flags identifiers in n that read a may-released lease
// variable. The receiver of the releasing call itself is not in the set yet
// when visited (stepReleases runs after), so only genuinely later uses —
// including a second Release — are flagged.
func reportUses(pass *framework.Pass, n ast.Node, released map[*types.Var]bool, seen map[token.Pos]bool) {
	if r, ok := n.(*ast.RangeStmt); ok {
		reportUses(pass, r.X, released, seen) // body blocks are walked separately
		return
	}
	switch n.(type) {
	case *ast.DeferStmt, *ast.GoStmt, *ast.SelectStmt:
		return // calls run elsewhere; select clauses occupy their own blocks
	}
	ast.Inspect(n, func(x ast.Node) bool {
		if _, ok := x.(*ast.FuncLit); ok {
			return false
		}
		if as, ok := x.(*ast.AssignStmt); ok {
			// LHS idents overwrite, they don't read; walk only the RHS.
			for _, rhs := range as.Rhs {
				reportUses(pass, rhs, released, seen)
			}
			for _, lhs := range as.Lhs {
				// ...except through non-ident destinations (l.field = x reads l).
				if _, ok := ast.Unparen(lhs).(*ast.Ident); !ok {
					reportUses(pass, lhs, released, seen)
				}
			}
			return false
		}
		id, ok := x.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pass.TypesInfo.Uses[id].(*types.Var)
		if !ok || !released[v] || seen[id.Pos()] {
			return true
		}
		seen[id.Pos()] = true
		pass.Reportf(id.Pos(), "use of lease %s after Release: its guard slot may already belong to another goroutine", id.Name)
		return true
	})
}

// isLeaseType reports whether t is nbr.Lease or smr.Lease (or pointer to
// one).
func isLeaseType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Name() != "Lease" {
		return false
	}
	switch obj.Pkg().Path() {
	case protocol.NBRPath, protocol.SMRPath:
		return true
	}
	return false
}

func copySet(m map[*types.Var]bool) map[*types.Var]bool {
	out := make(map[*types.Var]bool, len(m))
	for k := range m {
		out[k] = true
	}
	return out
}

// union merges src into *dst, reporting whether *dst grew (nil *dst means
// unreached; it becomes a copy of src).
func union(dst *map[*types.Var]bool, src map[*types.Var]bool) bool {
	if *dst == nil {
		*dst = copySet(src)
		return true
	}
	grew := false
	for k := range src {
		if !(*dst)[k] {
			(*dst)[k] = true
			grew = true
		}
	}
	return grew
}
