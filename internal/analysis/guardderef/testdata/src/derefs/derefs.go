// Package derefs is the guardderef analyzer's corpus: arena accessor calls
// on paths where no read phase is open and no reservation covers the handle,
// lease use after Release, and the clean shapes — in-phase access, reserved
// post-phase access, and a released variable rebound before reuse.
package derefs

import (
	"nbr/internal/mem"
	"nbr/internal/smr"
)

type node struct {
	key uint64
}

type store struct {
	pool *mem.Pool[node]
	head mem.Ptr
}

// peekAfterClose reads the record after the phase that protected it closed:
// Protect only covers the handle until EndRead.
func (s *store) peekAfterClose(g smr.Guard) uint64 {
	g.BeginRead()
	p := s.head
	g.Protect(0, p)
	g.EndRead()
	return s.pool.Raw(p).key // want "Raw outside any read phase"
}

// peekBetweenPhases pokes the arena on the gap between two brackets.
func (s *store) peekBetweenPhases(g smr.Guard) uint64 {
	g.BeginRead()
	g.EndRead()
	v, ok := s.pool.Get(s.head) // want "Get outside any read phase"
	g.BeginRead()
	g.EndRead()
	if !ok {
		return 0
	}
	return v.key
}

// useAfterRelease touches the lease after giving its guard slot back.
func useAfterRelease(r *smr.Registry) int {
	l, _ := r.Acquire()
	l.Release()
	return l.Tid() // want "use of lease l after Release"
}

// doubleRelease releases twice; the second call races the slot's next owner.
func doubleRelease(r *smr.Registry) {
	l, _ := r.Acquire()
	l.Release()
	l.Release() // want "use of lease l after Release"
}

// inPhasePeek is the ordinary clean shape: the accessor runs bracketed.
func (s *store) inPhasePeek(g smr.Guard) uint64 {
	g.BeginRead()
	v := s.pool.Raw(s.head).key
	g.EndRead()
	return v
}

// reservedPeek is legal: the handle was Reserved inside the phase, so the
// post-EndRead access is covered until EndOp.
func (s *store) reservedPeek(g smr.Guard) uint64 {
	g.BeginRead()
	p := s.head
	g.Reserve(0, p)
	g.EndRead()
	return s.pool.Raw(p).key
}

// rebound is clean: the released variable is reassigned before reuse.
func rebound(r *smr.Registry) int {
	l, _ := r.Acquire()
	l.Release()
	l, _ = r.Acquire()
	return l.Tid()
}
