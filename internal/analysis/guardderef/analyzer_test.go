package guardderef_test

import (
	"testing"

	"nbr/internal/analysis/atest"
	"nbr/internal/analysis/guardderef"
)

func TestDerefsCorpus(t *testing.T) {
	atest.Run(t, "testdata/src/derefs", guardderef.Analyzer)
}
