// Package leases is the leaseescape analyzer's corpus: every way a lease
// can leave its acquiring goroutine — struct field, package variable, map,
// channel, goroutine argument, closure capture, composite literal — plus
// the clean acquire/use/release pattern that stays in locals.
package leases

import "nbr/internal/smr"

type session struct {
	l *smr.Lease
}

type table struct {
	m map[int]*smr.Lease
}

var global *smr.Lease

func use(l *smr.Lease) { _ = l.Tid() }

// stash parks the lease in a struct field: whoever loads it later is on a
// different goroutine with no claim to the guard slot.
func stash(s *session, r *smr.Registry) error {
	l, err := r.Acquire()
	if err != nil {
		return err
	}
	s.l = l // want "lease stored to a struct field escapes its acquiring goroutine"
	return nil
}

// publish stores the lease in a package-level variable.
func publish(r *smr.Registry) {
	l, _ := r.Acquire()
	global = l // want "lease stored to a package-level variable"
}

// index stores the lease in a map.
func index(t *table, r *smr.Registry) {
	l, _ := r.Acquire()
	t.m[0] = l // want "lease stored to a map element"
}

// ship sends the lease to another goroutine over a channel.
func ship(r *smr.Registry, ch chan *smr.Lease) {
	l, _ := r.Acquire()
	ch <- l // want "lease sent on a channel"
}

// handoff passes the lease to a new goroutine as an argument.
func handoff(r *smr.Registry) {
	l, _ := r.Acquire()
	go use(l) // want "lease passed to a new goroutine"
}

// capture lets a go'd closure capture the lease from the enclosing scope.
func capture(r *smr.Registry) {
	l, _ := r.Acquire()
	go func() {
		use(l) // want "lease captured by a new goroutine"
	}()
}

// boxed smuggles the lease out inside a composite literal.
func boxed(r *smr.Registry) *session {
	l, _ := r.Acquire()
	return &session{l: l} // want "lease stored in a composite literal"
}

// scoped is the clean pattern: acquire, pass down the stack, release — the
// lease never leaves this goroutine, so nothing here is flagged.
func scoped(r *smr.Registry) error {
	l, err := r.Acquire()
	if err != nil {
		return err
	}
	use(l)
	l.Release()
	return nil
}
