package leaseescape_test

import (
	"testing"

	"nbr/internal/analysis/atest"
	"nbr/internal/analysis/leaseescape"
)

func TestLeasesCorpus(t *testing.T) {
	atest.Run(t, "testdata/src/leases", leaseescape.Analyzer)
}
