// Package leaseescape enforces lease goroutine-affinity: an nbr.Lease (or
// the underlying smr.Lease) binds a guard slot to the acquiring goroutine,
// so letting the value escape — into a struct field, a global, a map, a
// channel, or another goroutine — invites cross-thread guard use that the
// runtime can only detect, at best, as corruption. The blessed sharing
// pattern is the Runtime.With envelope, which scopes the lease to one
// callback on one goroutine.
package leaseescape

import (
	"go/ast"
	"go/token"
	"go/types"

	"nbr/internal/analysis/framework"
	"nbr/internal/analysis/protocol"
)

// Analyzer is the lease-affinity analyzer.
var Analyzer = &framework.Analyzer{
	Name: "leaseescape",
	Doc: `check that leases do not escape their acquiring goroutine

Flags a Lease value stored to a struct field, package-level variable, map or
slice element, composite literal, or pointer target; sent on a channel; or
handed to another goroutine (as an argument or by closure capture). Passing
a lease down the call stack and returning it up are fine — the goroutine is
the boundary, not the function. The lease-implementing packages themselves
(nbr, nbr/internal/smr) are exempt: storing leases in registries is their
job.`,
	Run: run,
}

func run(pass *framework.Pass) (interface{}, error) {
	switch pass.Pkg.Path() {
	case protocol.NBRPath, protocol.SMRPath:
		return nil, nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if n.Tok != token.ASSIGN {
					return true // := declares fresh locals
				}
				for _, lhs := range n.Lhs {
					if !isLease(pass.TypesInfo.TypeOf(lhs)) {
						continue
					}
					if kind := escapeDest(pass, lhs); kind != "" {
						pass.Reportf(lhs.Pos(), "lease stored to a %s escapes its acquiring goroutine; use the Runtime.With envelope or keep the lease in locals", kind)
					}
				}
			case *ast.CompositeLit:
				for _, el := range n.Elts {
					v := el
					if kv, ok := el.(*ast.KeyValueExpr); ok {
						v = kv.Value
					}
					if isLease(pass.TypesInfo.TypeOf(v)) {
						pass.Reportf(v.Pos(), "lease stored in a composite literal escapes its acquiring goroutine")
					}
				}
			case *ast.SendStmt:
				if isLease(pass.TypesInfo.TypeOf(n.Value)) {
					pass.Reportf(n.Pos(), "lease sent on a channel escapes its acquiring goroutine")
				}
			case *ast.GoStmt:
				for _, arg := range n.Call.Args {
					if isLease(pass.TypesInfo.TypeOf(arg)) {
						pass.Reportf(arg.Pos(), "lease passed to a new goroutine: a lease is goroutine-affine; acquire inside the goroutine instead")
					}
				}
				if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
					reportCaptures(pass, lit)
				}
			}
			return true
		})
	}
	return nil, nil
}

// reportCaptures flags lease-typed variables a go'd closure captures from
// its enclosing function.
func reportCaptures(pass *framework.Pass, lit *ast.FuncLit) {
	seen := make(map[types.Object]bool)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.Uses[id]
		v, ok := obj.(*types.Var)
		if !ok || v.IsField() || seen[v] || !isLease(v.Type()) {
			return true
		}
		if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
			seen[v] = true
			pass.Reportf(id.Pos(), "lease captured by a new goroutine: a lease is goroutine-affine; acquire inside the goroutine instead")
		}
		return true
	})
}

// escapeDest classifies an assignment destination that makes a lease
// outlive or leave its acquiring goroutine; "" means the store is benign.
func escapeDest(pass *framework.Pass, lhs ast.Expr) string {
	switch e := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if v, ok := pass.TypesInfo.ObjectOf(e).(*types.Var); ok && v.Parent() == pass.Pkg.Scope() {
			return "package-level variable"
		}
	case *ast.SelectorExpr:
		if sel := pass.TypesInfo.Selections[e]; sel != nil && sel.Kind() == types.FieldVal {
			return "struct field"
		}
		if v, ok := pass.TypesInfo.ObjectOf(e.Sel).(*types.Var); ok && !v.IsField() && v.Parent() != nil && v.Parent().Parent() == types.Universe {
			return "package-level variable" // pkg.Global
		}
	case *ast.IndexExpr:
		if t := pass.TypesInfo.TypeOf(e.X); t != nil {
			switch t.Underlying().(type) {
			case *types.Map:
				return "map element"
			case *types.Slice:
				return "slice element"
			}
		}
		return "container element"
	case *ast.StarExpr:
		return "pointer target"
	}
	return ""
}

// isLease reports whether t is nbr.Lease or smr.Lease (or a pointer to
// one).
func isLease(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Name() != "Lease" {
		return false
	}
	switch obj.Pkg().Path() {
	case protocol.NBRPath, protocol.SMRPath:
		return true
	}
	return false
}
