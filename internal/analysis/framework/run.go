package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"io"
)

// Finding is one post-suppression diagnostic with its resolved position.
type Finding struct {
	Analyzer string
	Position token.Position
	Message  string
}

// Analyze runs the analyzers over the packages (which must have been loaded
// by this session, in the dependency order Load returned) and returns the
// surviving findings plus suppression-hygiene findings:
//
//   - a diagnostic on a line covered by a matching //nbr:allow annotation is
//     suppressed;
//   - an //nbr:allow annotation with no justification text is a finding;
//   - an //nbr:allow annotation that suppressed nothing in this run is a
//     finding (stale suppressions are noise that hides real rot). Stale
//     checking is skipped for analyzers not in this run, so a single-analyzer
//     test does not flag another analyzer's legitimate suppressions.
func (s *Session) Analyze(analyzers []*Analyzer, pkgs []*Package) ([]Finding, error) {
	names := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		names[a.Name] = true
	}

	// Run the fact pass over every module package the session has loaded —
	// dependencies included, in dependency order — so interprocedural facts
	// (restartability, bracket summaries) exist before any dependent package
	// is analyzed, whether or not the dependency itself is a target.
	if s.factPass != nil {
		for _, path := range s.order {
			pkg := s.pkgs[path]
			if s.factsDone[path] {
				continue
			}
			pass := &Pass{
				Fset:      s.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				Facts:     s.Facts,
				Report:    func(Diagnostic) {},
			}
			if err := s.factPass(pass); err != nil {
				return nil, fmt.Errorf("fact pass: %s: %v", pkg.Path, err)
			}
			s.factsDone[path] = true
		}
	}

	var findings []Finding
	var allSupp []*suppression
	for _, pkg := range pkgs {
		// Index this package's suppressions by file:line.
		supp := make(map[string][]*suppression)
		for _, f := range pkg.Files {
			for _, sp := range parseSuppressions(s.Fset, f) {
				supp[sp.file] = append(supp[sp.file], sp)
				allSupp = append(allSupp, sp)
			}
		}
		// A suppression sitting in a function's doc comment (or on its first
		// line) widens to the whole declaration.
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				decl, ok := d.(*ast.FuncDecl)
				if !ok {
					continue
				}
				declPos := s.Fset.Position(decl.Pos())
				start := declPos.Line
				if decl.Doc != nil {
					start = s.Fset.Position(decl.Doc.Pos()).Line
				}
				for _, sp := range supp[declPos.Filename] {
					if sp.line >= start && sp.line <= declPos.Line {
						sp.endLine = s.Fset.Position(decl.End()).Line
					}
				}
			}
		}
		match := func(an string, pos token.Position) *suppression {
			for _, sp := range supp[pos.Filename] {
				if sp.analyzer != an {
					continue
				}
				if sp.line == pos.Line || sp.line == pos.Line-1 ||
					(sp.endLine > 0 && pos.Line >= sp.line && pos.Line <= sp.endLine) {
					return sp
				}
			}
			return nil
		}

		for _, a := range analyzers {
			var diags []Diagnostic
			pass := &Pass{
				Analyzer:  a,
				Fset:      s.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				Facts:     s.Facts,
				Report:    func(d Diagnostic) { diags = append(diags, d) },
			}
			if _, err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %v", a.Name, pkg.Path, err)
			}
			sortDiags(s.Fset, diags)
			for _, d := range diags {
				pos := s.Fset.Position(d.Pos)
				if sp := match(a.Name, pos); sp != nil {
					sp.used = true
					continue
				}
				findings = append(findings, Finding{Analyzer: a.Name, Position: pos, Message: d.Message})
			}
		}
	}

	// Suppression hygiene.
	for _, sp := range allSupp {
		pos := s.Fset.Position(sp.pos)
		if sp.analyzer == "" || !names[sp.analyzer] {
			if sp.analyzer == "" {
				findings = append(findings, Finding{Analyzer: "nbrvet", Position: pos,
					Message: "//nbr:allow needs an analyzer name: //nbr:allow <analyzer> — <justification>"})
			}
			continue // other-analyzer suppressions are out of this run's scope
		}
		if sp.justif == "" {
			findings = append(findings, Finding{Analyzer: "nbrvet", Position: pos,
				Message: fmt.Sprintf("//nbr:allow %s has no justification; say why the rule does not apply here", sp.analyzer)})
		}
		if !sp.used {
			findings = append(findings, Finding{Analyzer: "nbrvet", Position: pos,
				Message: fmt.Sprintf("unused //nbr:allow %s: no diagnostic here to suppress; delete it", sp.analyzer)})
		}
	}
	return findings, nil
}

// Print writes findings in the conventional file:line:col format.
func Print(w io.Writer, findings []Finding) {
	for _, f := range findings {
		fmt.Fprintf(w, "%s: %s (%s)\n", f.Position, f.Message, f.Analyzer)
	}
}
