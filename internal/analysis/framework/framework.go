// Package framework is a self-contained miniature of
// golang.org/x/tools/go/analysis, built on nothing but the standard library.
//
// The repo's module is intentionally dependency-free (the build environment
// has no module proxy), so nbrvet cannot vendor x/tools. Instead this package
// mirrors the parts of the go/analysis surface the nbrvet analyzers need —
// Analyzer, Pass, Diagnostic, object facts — with the same field names and
// the same reporting discipline, so that a future PR with network access can
// swap the import path to golang.org/x/tools/go/analysis and delete this
// package with mechanical edits only. See DESIGN.md §13.
//
// Differences from x/tools, all deliberate simplifications:
//
//   - packages are loaded by the framework itself (load.go) via
//     `go list -export -deps -json`: module packages are type-checked from
//     source in dependency order, standard-library dependencies are imported
//     from compiler export data — no network, no GOPATH assumptions;
//   - facts are a process-wide store keyed by types.Object rather than
//     gob-encoded per-package files: every analyzed package shares one
//     type-checker universe, so object identity is stable across packages;
//   - diagnostics can be suppressed by an explicit, justified source
//     annotation (`//nbr:allow <analyzer> — <justification>`); the driver
//     diagnoses suppressions that matched nothing, so stale annotations rot
//     loudly instead of silently.
package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one static check, mirroring analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in //nbr:allow
	// suppressions. By convention a short lowercase word.
	Name string
	// Doc is the one-paragraph description printed by `nbrvet -help`.
	Doc string
	// Run applies the analyzer to one package. Diagnostics go through
	// pass.Report/Reportf; the return value is unused (kept for x/tools
	// signature parity).
	Run func(pass *Pass) (interface{}, error)
}

// Pass carries one analyzer's view of one package, mirroring analysis.Pass.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Facts is the process-wide fact store shared by every pass (see
	// FactStore). Analyzers read facts deposited by earlier passes over the
	// package's dependencies; the protocol fact pass writes them.
	Facts *FactStore

	// Report delivers a diagnostic. The driver wires this to the suppression
	// filter and output sink.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding, mirroring analysis.Diagnostic.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string // filled in by the driver
}

// FactStore holds analysis facts keyed by type-checker object. All packages
// in a Session share one types universe (source-loaded module packages import
// each other's *types.Package directly), so a fact attached to a function in
// nbr/internal/smr is visible verbatim when a dependent package is analyzed.
type FactStore struct {
	m map[factKey]interface{}
}

type factKey struct {
	obj types.Object
	key string
}

// NewFactStore creates an empty fact store.
func NewFactStore() *FactStore {
	return &FactStore{m: make(map[factKey]interface{})}
}

// Set records a fact about obj under the given key (typically the fact
// type's name), replacing any previous value.
func (s *FactStore) Set(obj types.Object, key string, fact interface{}) {
	s.m[factKey{obj, key}] = fact
}

// Get returns the fact recorded for obj under key, or nil.
func (s *FactStore) Get(obj types.Object, key string) interface{} {
	return s.m[factKey{obj, key}]
}

// suppression is one parsed //nbr:allow comment.
type suppression struct {
	file     string
	line     int    // the line the comment sits on
	endLine  int    // >0 when widened to a whole function declaration
	analyzer string // analyzer name the suppression targets
	justif   string // free-form justification (required non-empty)
	pos      token.Pos
	used     bool
}

// parseSuppressions scans a file's comments for //nbr:allow annotations.
// Grammar (DESIGN.md §13):
//
//	//nbr:allow <analyzer> — <justification>
//
// The annotation suppresses <analyzer>'s diagnostics on its own source line
// and on the immediately following line (so it can trail the flagged
// statement or sit on its own line above it). Placed in a function's doc
// comment, it covers the whole declaration — for harness code that violates
// a rule deliberately and pervasively (stall injection, kill testing). The
// justification is mandatory: an allow with no stated reason is itself
// diagnosed.
func parseSuppressions(fset *token.FileSet, f *ast.File) []*suppression {
	var out []*suppression
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, "//nbr:allow")
			if !ok {
				continue
			}
			fields := strings.Fields(text)
			s := &suppression{
				file: fset.Position(c.Pos()).Filename,
				line: fset.Position(c.Pos()).Line,
				pos:  c.Pos(),
			}
			if len(fields) > 0 {
				s.analyzer = fields[0]
				s.justif = strings.TrimLeft(strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(text), fields[0])), "—-– \t")
			}
			out = append(out, s)
		}
	}
	return out
}

// diagSorter orders diagnostics by position for stable output.
func sortDiags(fset *token.FileSet, ds []Diagnostic) {
	sort.SliceStable(ds, func(i, j int) bool {
		pi, pj := fset.Position(ds[i].Pos), fset.Position(ds[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return pi.Column < pj.Column
	})
}
