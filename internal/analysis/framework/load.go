package framework

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	Path  string
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	// Module reports whether the package belongs to the module under
	// analysis (loaded from source) as opposed to a standard-library
	// dependency (imported from export data, Files == nil).
	Module bool
}

// Session owns one type-checker universe: a shared FileSet, the set of
// loaded packages, the export-data importer for standard-library
// dependencies, and the fact store every pass shares. All analysis in one
// nbrvet invocation (or one test) runs inside a single Session so that
// types.Object identities — and therefore facts — line up across packages.
type Session struct {
	Fset  *token.FileSet
	Facts *FactStore

	moduleDir string
	pkgs      map[string]*Package // loaded module packages, by import path
	order     []string            // module packages in dependency order
	exports   map[string]string   // import path -> export data file (stdlib)
	gc        types.Importer      // export-data importer (caches internally)
	sizes     types.Sizes

	factPass  func(*Pass) error
	factsDone map[string]bool
}

// SetFactPass registers the pass Analyze runs over every loaded module
// package (dependencies first) before any analyzer, exactly once per
// package. nbrvet uses it to compute the protocol facts — restartability and
// bracket summaries — that make the analyzers interprocedural.
func (s *Session) SetFactPass(fn func(*Pass) error) { s.factPass = fn }

// NewSession creates a Session rooted at the module directory (where
// `go list` runs; for nbrvet this is the repo root).
func NewSession(moduleDir string) *Session {
	s := &Session{
		Fset:      token.NewFileSet(),
		Facts:     NewFactStore(),
		moduleDir: moduleDir,
		pkgs:      make(map[string]*Package),
		exports:   make(map[string]string),
		factsDone: make(map[string]bool),
		sizes:     types.SizesFor("gc", runtime.GOARCH),
	}
	s.gc = importer.ForCompiler(s.Fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := s.exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data recorded for %q", path)
		}
		return os.Open(file)
	})
	return s
}

// listEntry is the subset of `go list -json` output the loader consumes.
type listEntry struct {
	ImportPath string
	Dir        string
	Export     string
	Standard   bool
	DepOnly    bool
	GoFiles    []string
	Imports    []string
	Error      *struct{ Err string }
}

// goList runs `go list -export -deps -json` for the given patterns in the
// module directory. CGO is disabled so every standard-library dependency has
// a pure-Go build with complete export data, offline.
func (s *Session) goList(patterns []string) ([]*listEntry, error) {
	args := append([]string{"list", "-export", "-deps",
		"-json=ImportPath,Dir,Export,Standard,DepOnly,GoFiles,Imports,Error"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = s.moduleDir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, errb.String())
	}
	dec := json.NewDecoder(&out)
	var entries []*listEntry
	for {
		var e listEntry
		if err := dec.Decode(&e); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		if e.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", e.ImportPath, e.Error.Err)
		}
		entries = append(entries, &e)
	}
	return entries, nil
}

// Load loads the packages matching the go-list patterns (plus their
// dependencies), type-checking module packages from source in dependency
// order and recording export data for standard-library ones. It returns the
// pattern-matched module packages in dependency order — the order analyzers
// must run in for facts to flow from dependencies to dependents.
func (s *Session) Load(patterns ...string) ([]*Package, error) {
	entries, err := s.goList(patterns)
	if err != nil {
		return nil, err
	}
	targets := make(map[string]bool)
	// `go list -deps` emits dependencies before dependents; keep that order.
	for _, e := range entries {
		if e.Standard {
			if e.Export != "" {
				s.exports[e.ImportPath] = e.Export
			}
			continue
		}
		if !e.DepOnly {
			targets[e.ImportPath] = true
		}
		if _, done := s.pkgs[e.ImportPath]; done {
			continue
		}
		if _, err := s.loadSource(e); err != nil {
			return nil, err
		}
	}
	var out []*Package
	for _, path := range s.order {
		if targets[path] {
			out = append(out, s.pkgs[path])
		}
	}
	return out, nil
}

// loadSource parses and type-checks one module package from source.
func (s *Session) loadSource(e *listEntry) (*Package, error) {
	var files []*ast.File
	for _, name := range e.GoFiles {
		f, err := parser.ParseFile(s.Fset, filepath.Join(e.Dir, name), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return s.check(e.ImportPath, e.Dir, files)
}

// LoadDir parses and type-checks every .go file directly inside dir as one
// package, resolving its imports through the session (loading them first if
// needed). This is the analysistest path: testdata corpora live in
// directories the go tool ignores, but import the real module packages, so
// the analyzers run against the genuine smr/mem/nbr types.
func (s *Session) LoadDir(dir string) (*Package, error) {
	names, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	importSet := make(map[string]bool)
	for _, de := range names {
		if de.IsDir() || !strings.HasSuffix(de.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(s.Fset, filepath.Join(dir, de.Name()), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		for _, imp := range f.Imports {
			if p, err := strconv.Unquote(imp.Path.Value); err == nil {
				importSet[p] = true
			}
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	var need []string
	for p := range importSet {
		if p == "unsafe" {
			continue
		}
		if _, ok := s.pkgs[p]; ok {
			continue
		}
		if _, ok := s.exports[p]; ok {
			continue
		}
		need = append(need, p)
	}
	sort.Strings(need)
	if len(need) > 0 {
		if _, err := s.Load(need...); err != nil {
			return nil, err
		}
	}
	return s.check("testdata/"+filepath.Base(dir), dir, files)
}

// check runs the type checker over one package's parsed files and registers
// the result in the session.
func (s *Session) check(path, dir string, files []*ast.File) (*Package, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: (*sessionImporter)(s), Sizes: s.sizes}
	tpkg, err := conf.Check(path, s.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", path, err)
	}
	p := &Package{Path: path, Dir: dir, Files: files, Types: tpkg, Info: info, Module: true}
	s.pkgs[path] = p
	s.order = append(s.order, path)
	return p, nil
}

// sessionImporter resolves imports during type checking: module packages by
// the source-loaded *types.Package (so objects are shared across the
// session), everything else through compiler export data.
type sessionImporter Session

func (si *sessionImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := si.pkgs[path]; ok {
		return p.Types, nil
	}
	return (*Session)(si).gc.Import(path)
}
