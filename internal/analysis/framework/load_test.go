package framework

import "testing"

func TestSmokeLoad(t *testing.T) {
	s := NewSession("/root/repo")
	pkgs, err := s.Load("./internal/mem", "./internal/smr")
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pkgs {
		t.Logf("loaded %s: %d files, scope ok=%v", p.Path, len(p.Files), p.Types.Complete())
	}
	if len(pkgs) != 2 {
		t.Fatalf("want 2 target packages, got %d", len(pkgs))
	}
}
