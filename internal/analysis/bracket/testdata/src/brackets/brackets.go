// Package brackets is the bracket analyzer's corpus: each ordering mistake
// the analyzer guards against, plus the clean search/validate split where a
// helper opens the phase and the caller closes it (understood through the
// interprocedural bracket summary, not flagged).
package brackets

import (
	"nbr/internal/mem"
	"nbr/internal/smr"
)

// doubleEnd closes the phase twice; the second EndRead has nothing to close.
func doubleEnd(g smr.Guard) {
	g.BeginRead()
	g.EndRead()
	g.EndRead() // want "EndRead with no open read phase"
}

// lateReserve reserves after the phase closed: the record it names may
// already be gone, so the reservation protects nothing.
func lateReserve(g smr.Guard, p mem.Ptr) {
	g.BeginRead()
	g.EndRead()
	g.Reserve(0, p) // want "Reserve outside a read phase"
}

// earlyRetire retires while the phase is still open: the retire belongs in
// the write phase, after the reservations are published.
func earlyRetire(g smr.Guard, p mem.Ptr) {
	g.BeginRead()
	g.Retire(p) // want "Retire reachable inside a read phase"
	g.EndRead()
}

// leakyOp is an smr.Execute operation body with a path that returns while
// its read phase is still open.
func leakyOp(g smr.Guard, p mem.Ptr) int {
	return smr.Execute(g, func() int {
		g.BeginRead()
		if p == mem.Null {
			return 0 // want "operation body can return with a read phase still open"
		}
		g.EndRead()
		return 1
	})
}

// suppressed exercises the //nbr:allow escape hatch: the stray EndRead
// below carries a justified suppression, so the analyzer stays quiet and
// the annotation counts as used (no hygiene finding either).
func suppressed(g smr.Guard) {
	g.BeginRead()
	g.EndRead()
	//nbr:allow bracket — corpus fixture: demonstrating the justified-suppression path
	g.EndRead()
}

// locate opens a read phase and hands it to the caller — the search half of
// the search/validate split every structure uses.
func locate(g smr.Guard) {
	g.BeginRead()
}

// clean is the correct shape: the helper opens, the caller reserves, closes,
// and retires in the write phase. Nothing here is flagged.
func clean(g smr.Guard, p mem.Ptr) {
	locate(g)
	g.Reserve(0, p)
	g.EndRead()
	g.Retire(p)
}
