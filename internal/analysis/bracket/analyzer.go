// Package bracket checks guard-bracket ordering discipline: EndRead needs a
// dominating BeginRead, Reserve must happen inside the read phase it
// protects, retires belong in the write phase, and an smr.Execute operation
// body must close every read phase before returning.
package bracket

import (
	"go/ast"
	"go/token"

	"nbr/internal/analysis/framework"
	"nbr/internal/analysis/protocol"
)

// Analyzer is the bracket-discipline analyzer.
var Analyzer = &framework.Analyzer{
	Name: "bracket",
	Doc: `check BeginRead/EndRead bracket ordering

Reports EndRead calls no open read phase can reach, Reserve calls outside a
read phase (a reservation must be taken between BeginRead and EndRead to
survive it), Retire/RetireBatch/RetireSegment reachable inside a read phase, and
smr.Execute operation bodies that can return with a read phase still open.
The analysis is a may-dataflow over the CFG with interprocedural bracket
summaries, so a helper that opens a phase for its caller (the search/validate
split every structure uses) is understood, not flagged.`,
	Run: run,
}

func run(pass *framework.Pass) (interface{}, error) {
	for _, unit := range protocol.Units(pass.TypesInfo, pass.Files) {
		unit := unit
		// Immediately-invoked literals are flowed inline, so their returns
		// show up in the walk; they exit the literal, not the operation.
		var nestedLits []*ast.FuncLit
		ast.Inspect(unit.Body, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok && lit != unit.Node {
				nestedLits = append(nestedLits, lit)
			}
			return true
		})
		inNestedLit := func(pos token.Pos) bool {
			for _, lit := range nestedLits {
				if pos >= lit.Pos() && pos <= lit.End() {
					return true
				}
			}
			return false
		}
		flow := protocol.RunFlow(pass.TypesInfo, pass.Facts, unit.Body, protocol.Closed)
		flow.Walk(func(n ast.Node, st protocol.State) {
			switch n := n.(type) {
			case *ast.CallExpr:
				switch m := protocol.GuardMethod(pass.TypesInfo, n); m {
				case "EndRead":
					if st&protocol.Open == 0 {
						pass.Reportf(n.Pos(), "EndRead with no open read phase on any path here (missing or non-dominating BeginRead)")
					}
				case "Reserve":
					if st&protocol.Open == 0 {
						pass.Reportf(n.Pos(), "Reserve outside a read phase: reservations must be taken between BeginRead and EndRead to survive it")
					}
				case "Retire", "RetireBatch", "RetireSegment":
					if st&protocol.Open != 0 {
						pass.Reportf(n.Pos(), "%s reachable inside a read phase: retires belong in the write phase, after EndRead", m)
					}
				}
			case *ast.ReturnStmt:
				if !unit.ExecClosure || inNestedLit(n.Pos()) {
					return
				}
				// The state at the return is the state after evaluating its
				// results (a result expression may close the phase).
				after := protocol.StepNode(pass.TypesInfo, pass.Facts, n, st, nil)
				if after&protocol.Open != 0 {
					pass.Reportf(n.Pos(), "operation body can return with a read phase still open: every normal exit must EndRead first")
				}
			}
		})
	}
	return nil, nil
}
