package bracket_test

import (
	"testing"

	"nbr/internal/analysis/atest"
	"nbr/internal/analysis/bracket"
)

func TestBracketsCorpus(t *testing.T) {
	atest.Run(t, "testdata/src/brackets", bracket.Analyzer)
}
