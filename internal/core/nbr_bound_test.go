package core

import (
	"testing"

	"nbr/internal/mem"
)

// TestPlusScanCadenceCountsRecords pins the record-counted ScanFreq cadence
// under RetireBatch (a ROADMAP item from PR 2): a structure retiring mostly
// via batches must reach the NBR+ announceTS scan after ScanFreq *records*,
// not ScanFreq retire handoffs. The pre-fix code counted handoffs, so the
// two 4-record batches below (8 records ≥ ScanFreq) would advance the
// cadence by only 2 and never scan.
func TestPlusScanCadenceCountsRecords(t *testing.T) {
	const bag, scanFreq, batch = 64, 8, 4
	s, pool := newScheme(t, 2, Config{Plus: true, BagSize: bag, ScanFreq: scanFreq})
	g := s.Guard(0)

	// Cross the LoWatermark (bag/2) so the bookmark is taken and cadence
	// counting begins.
	fill(g, pool, 0, bag/2+1)
	if got := s.TSScans(0); got != 0 {
		t.Fatalf("scan before any post-bookmark retire: tsScans = %d", got)
	}

	// ScanFreq records arrive in ScanFreq/batch handoffs; the cadence must
	// fire at least once. Stay well below the HiWatermark so the hi-trigger
	// path cannot mask a missing scan.
	buf := make([]mem.Ptr, batch)
	for handoff := 0; handoff < (scanFreq/batch)+1; handoff++ {
		for i := range buf {
			buf[i], _ = pool.Alloc(0)
		}
		g.RetireBatch(buf)
	}
	if s.LimboLen(0) >= bag {
		t.Fatalf("test outgrew the HiWatermark (limbo %d); cadence unobservable", s.LimboLen(0))
	}
	if got := s.TSScans(0); got == 0 {
		t.Fatalf("no announceTS scan after %d records in %d handoffs (ScanFreq %d records)",
			(scanFreq/batch+1)*batch, scanFreq/batch+1, scanFreq)
	}
}

// TestPlusScanCadenceMatchesRetireLoop pins handoff-shape independence of
// the cadence: the same records produce exactly the same number of
// announceTS scans whether they arrive one by one or in batches — chunks
// are capped at the remaining ScanFreq budget, so every crossing lands on
// a chunk boundary. Under the pre-fix handoff counting, batch-4 traffic
// produced a quarter of the loop's scans.
func TestPlusScanCadenceMatchesRetireLoop(t *testing.T) {
	const bag, scanFreq, total = 256, 8, 64
	run := func(batch int) uint64 {
		s, pool := newScheme(t, 2, Config{Plus: true, BagSize: bag, ScanFreq: scanFreq})
		g := s.Guard(0)
		fill(g, pool, 0, bag/2+1) // bookmark
		buf := make([]mem.Ptr, batch)
		for n := 0; n < total; n += batch {
			for i := range buf {
				buf[i], _ = pool.Alloc(0)
			}
			if batch == 1 {
				g.Retire(buf[0])
			} else {
				g.RetireBatch(buf)
			}
		}
		return s.TSScans(0)
	}
	loop := run(1)
	if loop == 0 {
		t.Fatalf("retire loop of %d records never scanned (ScanFreq %d)", total, scanFreq)
	}
	for _, batch := range []int{2, 4, 8, 11, total} {
		if got := run(batch); got != loop {
			t.Fatalf("batch %d: %d scans, retire loop: %d — cadence depends on handoff shape",
				batch, got, loop)
		}
	}
}

// TestPlusBatchCrossesLoWatermarkBookmarks pins the bookmark trigger under
// batch traffic: a RetireBatch that spans the LoWatermark must stop a chunk
// exactly at lo and take the bookmark there, like the per-record loop —
// not jump past it — so batch-heavy structures still get NBR+'s passive
// (signal-free) reclamation. The pre-fix chunking filled straight to the
// HiWatermark; the bookmark was then taken at the *next* handoff with a
// timestamp snapshot that post-dated the peer's RGP, and the prefix below
// could only ever be reclaimed by paying a full signal broadcast.
func TestPlusBatchCrossesLoWatermarkBookmarks(t *testing.T) {
	const bag, scanFreq = 64, 4
	s, pool := newScheme(t, 2, Config{Plus: true, BagSize: bag, ScanFreq: scanFreq})
	g := s.Guard(0)

	// One batch from an empty bag to well past lo (32) but below hi: the
	// lo crossing happens mid-batch and must bookmark at exactly lo.
	big := make([]mem.Ptr, bag/2+10)
	for i := range big {
		big[i], _ = pool.Alloc(0)
	}
	g.RetireBatch(big)

	// A peer completes an RGP after the bookmark; within ScanFreq further
	// records (staying between the watermarks) the passive scan must
	// reclaim the bookmarked prefix without this thread sending signals.
	s.announceTS[1].Add(2)
	small := make([]mem.Ptr, 1)
	for i := 0; i < scanFreq+1; i++ {
		small[0], _ = pool.Alloc(0)
		g.RetireBatch(small)
	}
	st := s.Stats()
	if st.Signals != 0 {
		t.Fatalf("passive reclamation sent %d signals", st.Signals)
	}
	if st.Freed == 0 {
		t.Fatal("batch that crossed the LoWatermark never bookmarked: no passive reclamation")
	}
	if st.Freed < bag/2 {
		t.Fatalf("freed %d < the bookmarked prefix %d", st.Freed, bag/2)
	}
}

// TestOversizedBatchSplitRespectsBound is the deterministic oversized-batch
// regression: a single RetireBatch many times the bag size (the Harris
// marked-chain splice has no length cap) must be split at the HiWatermark,
// reclaiming between chunks, so the bag — and with it the observable
// garbage — never stretches past the declared bound. The pre-fix code
// appended the whole splice after one watermark check and held all of it as
// garbage until the next retire.
func TestOversizedBatchSplitRespectsBound(t *testing.T) {
	for _, plus := range []bool{false, true} {
		name := map[bool]string{false: "nbr", true: "nbr+"}[plus]
		t.Run(name, func(t *testing.T) {
			const threads, bag, splice = 2, 32, 400
			s, pool := newScheme(t, threads, Config{Plus: plus, BagSize: bag, Slots: 2})
			g := s.Guard(0)
			big := make([]mem.Ptr, splice)
			for i := range big {
				big[i], _ = pool.Alloc(0)
			}
			g.RetireBatch(big)

			if got, bound := s.LimboLen(0), s.ThreadBound(); got > bound {
				t.Fatalf("one splice left limbo at %d, above the per-thread bound %d", got, bound)
			}
			st := s.Stats()
			if st.Retired != splice {
				t.Fatalf("retired = %d, want %d", st.Retired, splice)
			}
			if g := st.Garbage(); g > uint64(s.GarbageBound()) {
				t.Fatalf("garbage %d > declared bound %d after an oversized splice",
					g, s.GarbageBound())
			}
			if st.Freed == 0 {
				t.Fatal("split retire never reclaimed between chunks")
			}
		})
	}
}

// TestRetireBatchSplitEquivalentToLoop pins chunk alignment: splitting at
// the HiWatermark must fire signals and scans at exactly the bag lengths a
// per-record Retire loop hits, for batch shapes that do NOT divide the bag.
func TestRetireBatchSplitEquivalentToLoop(t *testing.T) {
	const total = 300
	for _, plus := range []bool{false, true} {
		loopS := retireVia(t, plus, 1, total)
		for _, batch := range []int{7, 31, total} {
			gotS := retireVia(t, plus, batch, total)
			if loopS != gotS {
				t.Fatalf("plus=%v batch=%d: stats diverge\n  loop  %+v\n  batch %+v",
					plus, batch, loopS, gotS)
			}
		}
	}
}

type splitStats struct {
	retired, freed, scans, signals uint64
}

func retireVia(t *testing.T, plus bool, batch, total int) splitStats {
	t.Helper()
	s, pool := newScheme(t, 2, Config{Plus: plus, BagSize: 32, Slots: 2})
	g := s.Guard(0)
	buf := make([]mem.Ptr, 0, batch)
	for i := 0; i < total; i++ {
		p, _ := pool.Alloc(0)
		if batch == 1 {
			g.Retire(p)
			continue
		}
		buf = append(buf, p)
		if len(buf) == batch || i == total-1 {
			g.RetireBatch(buf)
			buf = buf[:0]
		}
	}
	st := s.Stats()
	return splitStats{st.Retired, st.Freed, st.Scans, st.Signals}
}
