package core

import (
	"math/rand"
	"testing"

	"nbr/internal/mem"
)

// TestReclaimMatchesMapReference is the property test guarding the sorted
// flat scan: for random reservation patterns (including marked handles and
// records reserved by several peers) the set reclaimFreeable frees must be
// exactly the set the original map-based scan would have freed — limbo[:upto]
// minus the reserved records.
func TestReclaimMatchesMapReference(t *testing.T) {
	rng := rand.New(rand.NewSource(0x5eed))
	for round := 0; round < 100; round++ {
		threads := 2 + rng.Intn(6)
		slots := 1 + rng.Intn(4)
		const bag = 512
		pool := mem.NewPool[rec](mem.Config{MaxThreads: threads})
		s := New(pool, threads, Config{BagSize: bag, Slots: slots})
		g := s.gs[0]

		n := 1 + rng.Intn(bag-1)
		retired := make([]mem.Ptr, n)
		for i := range retired {
			retired[i], _ = pool.Alloc(0)
			g.Retire(retired[i])
		}

		// Peers reserve a random mix of retired records (sometimes via the
		// marked alias), fresh records, and nothing.
		reserved := make(map[mem.Ptr]struct{}) // the reference membership map
		for tid := 1; tid < threads; tid++ {
			gg := s.Guard(tid)
			gg.BeginRead()
			for i := 0; i < slots; i++ {
				var p mem.Ptr
				switch rng.Intn(3) {
				case 0:
					continue
				case 1:
					p = retired[rng.Intn(n)]
					if rng.Intn(2) == 0 {
						p = p.WithMark()
					}
				default:
					p, _ = pool.Alloc(tid)
				}
				gg.Reserve(i, p)
				reserved[p.Unmarked()] = struct{}{}
			}
			gg.EndRead()
		}

		upto := rng.Intn(n + 1)
		g.reclaimFreeable(upto)

		for i, p := range retired {
			_, isReserved := reserved[p]
			wantFreed := i < upto && !isReserved
			if gotFreed := !pool.Valid(p); gotFreed != wantFreed {
				t.Fatalf("round %d (N=%d R=%d upto=%d): retired[%d] freed=%v, reference says %v",
					round, threads, slots, upto, i, gotFreed, wantFreed)
			}
		}
		if want := n - freedCount(pool, retired); s.LimboLen(0) != want {
			t.Fatalf("round %d: limbo holds %d records, want %d survivors", round, s.LimboLen(0), want)
		}
	}
}

func freedCount(pool *mem.Pool[rec], ps []mem.Ptr) int {
	n := 0
	for _, p := range ps {
		if !pool.Valid(p) {
			n++
		}
	}
	return n
}
