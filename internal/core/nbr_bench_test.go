package core

import (
	"fmt"
	"testing"

	"nbr/internal/mem"
)

// BenchmarkReclaim measures one full reclamation pass — reservation scan,
// bag compaction, batched free — over a 1024-record bag as a function of the
// scan width N·R. The reservation rows of every peer are fully occupied so
// the scan sorts and searches the worst-case set. The point of the flat
// scratch is visible in -benchmem: 0 allocs/op regardless of N·R.
func BenchmarkReclaim(b *testing.B) {
	const bag = 1024
	for _, tc := range []struct{ threads, slots int }{
		{2, 4}, {8, 4}, {32, 4}, {64, 8},
	} {
		b.Run(fmt.Sprintf("N%d_R%d", tc.threads, tc.slots), func(b *testing.B) {
			pool := mem.NewPool[rec](mem.Config{MaxThreads: tc.threads})
			s := New(pool, tc.threads, Config{BagSize: 2 * bag, Slots: tc.slots})
			for tid := 1; tid < tc.threads; tid++ {
				g := s.Guard(tid)
				g.BeginRead()
				for i := 0; i < tc.slots; i++ {
					p, _ := pool.Alloc(tid)
					g.Reserve(i, p)
				}
				g.EndRead()
			}
			g := s.gs[0]
			hs := make([]mem.Ptr, bag)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := range hs {
					hs[j], _ = pool.Alloc(0)
				}
				for _, h := range hs {
					g.Retire(h)
				}
				g.reclaimFreeable(len(g.limbo))
			}
		})
	}
}

// BenchmarkRetireBatch measures the batched retire path end to end: a
// subtree-sized batch lands in the bag with one watermark check, and the
// reclamation it periodically triggers reuses the flat scratch — so the
// whole alloc/retire/reclaim cycle runs at 0 allocs/op for any batch size.
func BenchmarkRetireBatch(b *testing.B) {
	for _, size := range []int{2, 16, 128} {
		b.Run(fmt.Sprintf("batch%d", size), func(b *testing.B) {
			pool := mem.NewPool[rec](mem.Config{MaxThreads: 2})
			s := New(pool, 2, Config{BagSize: 1024})
			g := s.gs[0]
			batch := make([]mem.Ptr, size)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := range batch {
					batch[j], _ = pool.Alloc(0)
				}
				g.RetireBatch(batch)
			}
		})
	}
}

// BenchmarkRetire measures the per-record Retire fast path (no reclamation
// triggered): the bound the read-path-is-free claim leans on.
func BenchmarkRetire(b *testing.B) {
	for _, plus := range []bool{false, true} {
		name := "nbr"
		if plus {
			name = "nbr+"
		}
		b.Run(name, func(b *testing.B) {
			pool := mem.NewPool[rec](mem.Config{MaxThreads: 2})
			s := New(pool, 2, Config{Plus: plus, BagSize: 1 << 20})
			g := s.gs[0]
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				h, _ := pool.Alloc(0)
				g.Retire(h)
				if len(g.limbo) >= 1<<18 { // keep the bag below the watermarks
					b.StopTimer()
					g.reclaimFreeable(len(g.limbo))
					g.cleanUp()
					b.StartTimer()
				}
			}
		})
	}
}
