// Package core implements the paper's contribution: NBR (neutralization
// based reclamation, Algorithm 1) and its optimized variant NBR+
// (Algorithm 2).
//
// Each thread accumulates unlinked records in a private limbo bag. When the
// bag reaches the HiWatermark the thread signals all peers (sigsim stands in
// for pthread_kill); peers in a read phase are neutralized — they jump back
// to the start of Φread, discarding every private pointer — while peers in a
// write phase keep running but have already published *reservations* for the
// records they will touch. The reclaimer then scans all reservations and
// frees every unreserved record in its bag, which bounds garbage at
// HiWatermark + R·(N−1) records per thread (the paper's Lemma 10) without
// per-record fences on the read path.
//
// NBR+ adds per-thread even/odd announcement timestamps around signalAll.
// A thread whose bag crosses the LoWatermark bookmarks its bag position,
// snapshots all timestamps, and thereafter watches for any peer's timestamp
// to grow by ≥2 — proof that a complete relaxed grace period (RGP: signals
// begun *and* finished) happened after the bookmark, so everything retired
// before the bookmark is reclaimable without sending any signals of its own.
// In the best case all n threads reclaim after a single n−1-signal RGP
// instead of n(n−1) signals.
package core

import (
	"fmt"
	"sync"

	"nbr/internal/mem"
	"nbr/internal/obs"
	"nbr/internal/sigsim"
	"nbr/internal/smr"
)

// Config tunes NBR/NBR+.
type Config struct {
	// Plus selects NBR+ (Algorithm 2) instead of NBR (Algorithm 1).
	Plus bool
	// BagSize is the limbo-bag HiWatermark S (paper: 32k on a 192-thread
	// machine; default 1024, scaled for this host — see DESIGN.md §6).
	BagSize int
	// LoFraction places the NBR+ LoWatermark at LoFraction·BagSize.
	// Default 0.5 ("one half full").
	LoFraction float64
	// ScanFreq amortizes the NBR+ announceTS scan over this many retire
	// calls while between the watermarks ("we amortize the overhead of
	// scanning announceTS over many retire operations"). Default 32.
	ScanFreq int
	// Slots is R, the per-thread reservation capacity. The paper's data
	// structures need at most 3; default 4. R·N must stay well below
	// BagSize so reclamation always makes progress.
	Slots int
	// Signals configures the simulated signal costs.
	Signals sigsim.Config
}

func (c Config) withDefaults() Config {
	if c.BagSize <= 0 {
		c.BagSize = 1024
	}
	if c.LoFraction <= 0 || c.LoFraction >= 1 {
		c.LoFraction = 0.5
	}
	if c.ScanFreq <= 0 {
		c.ScanFreq = 32
	}
	if c.Slots <= 0 {
		c.Slots = 4
	}
	return c
}

// Scheme is an NBR or NBR+ instance bound to one arena.
type Scheme struct {
	arena mem.Arena
	cfg   Config
	group *sigsim.Group

	// Membership carries the active mask every reservation scan and signal
	// broadcast iterates (full in fixed-N mode, the registry's after
	// AttachRegistry — scan and signal cost tracks live threads rather
	// than capacity) plus the registry itself for orphan adoption and
	// scan-round reporting.
	smr.Membership

	// loWm is the NBR+ LoWatermark in records, fixed at construction so the
	// Retire fast path never touches floating point.
	loWm int

	// reservations is the shared SWMR array (Algorithm 1 line 5):
	// N rows of R slots, row i written only by thread i.
	reservations []smr.Pad64

	// announceTS is NBR+'s per-thread RGP timestamp (Algorithm 2 line 4):
	// odd while the thread is broadcasting signals, even otherwise.
	announceTS []smr.Pad64

	// forceScan is the ForceRound collection scratch, serialized by forceMu
	// (any acquirer may force a round; guards never touch this scratch).
	forceMu   sync.Mutex
	forceScan smr.ScanSet

	// seg is the segment-retirement state: the arena's segment interface and
	// the largest retired segment weight, which scales the declared bounds.
	seg smr.SegState

	// rec is the flight recorder shared with the registry and signal group;
	// nil or disabled costs the read/retire hot paths one predictable branch.
	rec *obs.Recorder

	gs []*guard
}

// New creates an NBR/NBR+ scheme for the given arena and thread count.
func New(arena mem.Arena, threads int, cfg Config) *Scheme {
	cfg = cfg.withDefaults()
	if threads*cfg.Slots >= cfg.BagSize {
		panic(fmt.Sprintf("core: N·R (%d) must be below BagSize (%d) or reclamation cannot progress",
			threads*cfg.Slots, cfg.BagSize))
	}
	s := &Scheme{
		arena:        arena,
		cfg:          cfg,
		loWm:         int(float64(cfg.BagSize) * cfg.LoFraction),
		group:        sigsim.NewGroup(threads, cfg.Signals),
		reservations: make([]smr.Pad64, threads*cfg.Slots),
		announceTS:   make([]smr.Pad64, threads),
		forceScan:    smr.NewScanSet(threads * cfg.Slots),
	}
	s.seg.Init(arena)
	s.InitFixed(threads)
	s.group.SetActive(s.ActiveMask)
	s.gs = make([]*guard, threads)
	for i := range s.gs {
		s.gs[i] = &guard{
			s:         s,
			tid:       i,
			row:       s.reservations[i*cfg.Slots : (i+1)*cfg.Slots],
			scan:      smr.NewScanSet(threads * cfg.Slots),
			freeables: make([]mem.Ptr, 0, cfg.BagSize),
			scanTS:    make([]uint64, threads),
		}
	}
	return s
}

// Name implements smr.Scheme.
func (s *Scheme) Name() string {
	if s.cfg.Plus {
		return "nbr+"
	}
	return "nbr"
}

// Guard implements smr.Scheme.
func (s *Scheme) Guard(tid int) smr.Guard { return s.gs[tid] }

// Stats implements smr.Scheme.
func (s *Scheme) Stats() smr.Stats {
	var st smr.Stats
	for _, g := range s.gs {
		st.Retired += g.retired.Load()
		g.batches.AddTo(&st.BatchHist)
		st.Freed += g.freed.Load()
		st.Scans += g.scans.Load()
		st.Segments += g.segments.Load()
		st.SegRecords += g.segRecords.Load()
	}
	gs := s.group.Stats()
	st.Signals = gs.Sent
	st.Neutralized = gs.Neutralized
	st.Ignored = gs.Ignored
	return st
}

// segW is the per-survivor weight multiplier: every bag entry or orphan a
// peer can pin is at worst one segment handle standing for MaxWeight records.
// 1 until the first RetireSegment lands, so the pre-segment formulas are
// recovered exactly; monotone afterwards, preserving the bound's contract.
func (s *Scheme) segW() int {
	if w := s.seg.MaxWeight(); w > 1 {
		return w
	}
	return 1
}

// ThreadBound returns the worst-case number of unreclaimed records one
// thread can hold: Lemma 10's HiWatermark + R·(N−1), with the batch-split
// overshoot folded in. RetireBatch appends at most one bag-weight's worth of
// records between watermark checks (the chunk cap in beforeRetire), so a
// splice of any length stretches the bag by at most BagSize beyond the
// watermark — 2·BagSize total for the watermark terms. The segW terms cover
// segment handles, each pinning up to MaxWeight member records: the N·R
// survivors a scan can find reserved, plus the one in-flight RetireSegment
// append — identity-based reservations forbid carving a reserved handle
// (see RetireSegment), so a whole segment can land in one append after the
// watermark check.
func (s *Scheme) ThreadBound() int {
	return 2*s.cfg.BagSize + (len(s.gs)*s.cfg.Slots+1)*s.segW()
}

// GarbageBound implements smr.Scheme: the enforced system-wide bound is
// every thread at its Lemma 10 worst case simultaneously, plus the orphan
// allowance — under dynamic membership, up to N concurrently departing
// threads can each strand one survivor set (records peers still reserve,
// ≤ N·R each, each worth up to segW records) on the orphan list before the
// next reclaimer adopts it. The declaration is against MaxThreads and holds
// across membership churn.
func (s *Scheme) GarbageBound() int {
	n := len(s.gs)
	return n*s.ThreadBound() + n*n*s.cfg.Slots*s.segW()
}

// ReclaimBurst implements smr.Scheme: a reclamation frees at most one full
// limbo bag at once.
func (s *Scheme) ReclaimBurst() int { return s.cfg.BagSize }

// AttachRegistry implements smr.Member: the scheme adopts the registry's
// active mask for its scans and signal broadcasts and registers the lease
// hooks. Must be called before any guard is used.
func (s *Scheme) AttachRegistry(r *smr.Registry) {
	s.Join(r, len(s.gs), "core", s.attachThread)
	s.group.SetActive(s.ActiveMask)
	if rec := r.Recorder(); rec != nil {
		s.SetRecorder(rec)
	}
}

// SetRecorder implements smr.Recordable: the scheme and its signal group
// join the recorder's timeline. Bind wires it from the registry; fixed-N
// harnesses (dstest) call it directly. Construction-time wiring only.
func (s *Scheme) SetRecorder(rec *obs.Recorder) {
	s.rec = rec
	s.group.SetRecorder(rec)
}

// attachThread readies slot tid for a new leaseholder: stale signal posts
// aimed at the predecessor are absorbed, the reservation row is cleared, and
// the NBR+ lease-local watermark state is reset. announceTS is deliberately
// left monotone across occupants — a peer's bookmark snapshot of this slot
// then remains sound: any observed +2 still certifies a complete broadcast
// that happened after the snapshot, whoever occupied the slot.
func (s *Scheme) attachThread(tid int) {
	s.group.Attach(tid)
	g := s.gs[tid]
	for i := range g.row {
		g.row[i].Store(0)
	}
	g.atLoWm = false
	g.bookmark = 0
	g.sinceScan = 0
}

// ReclaimAll implements smr.Quiescer: adopt any previously orphaned records
// into tid's bag and run one full signal-and-scan reclamation over
// everything. Part of the shared recovery path; runs on whichever goroutine
// recovers the slot (owner or reaper), after the slot left the active mask.
func (s *Scheme) ReclaimAll(tid int) {
	g := s.gs[tid]
	g.adopt(0)
	if len(g.limbo) == 0 {
		return
	}
	if s.cfg.Plus {
		s.announceTS[tid].Add(1)
		s.group.SignalAll(tid)
		s.announceTS[tid].Add(1)
	} else {
		s.group.SignalAll(tid)
	}
	g.reclaimFreeable(len(g.limbo))
}

// OrphanSurvivors implements smr.Quiescer: hand the records peers still
// reserve (at most N·R) to the shared orphan list for the next reclaimer.
func (s *Scheme) OrphanSurvivors(tid int) {
	g := s.gs[tid]
	if len(g.limbo) > 0 {
		s.Reg.AddOrphans(g.limbo)
		g.limbo = g.limbo[:0]
		g.limboW = 0
	}
}

// ResetSlot implements smr.Quiescer: neutralize tid's announcement state.
// announceTS stays monotone across occupants (see attachThread).
func (s *Scheme) ResetSlot(tid int) {
	g := s.gs[tid]
	for i := range g.row {
		g.row[i].Store(0)
	}
	g.cleanUp()
}

// RevokeSlot implements smr.SlotRevoker: post a sticky revocation so a
// zombie occupant still running on tid is killed (sigsim.Revoked) at its
// next delivery point — the same channel neutralization uses, aimed at one
// slot.
func (s *Scheme) RevokeSlot(tid int) { s.group.Revoke(tid) }

// ForceRound implements smr.RoundForcer: one bracketed reservation
// collection over the active mask — the same snapshot reclaimFreeable takes
// before sweeping, minus the sweep — so the registry's quarantine clock
// advances without waiting for a bag to reach its watermark.
func (s *Scheme) ForceRound() bool {
	s.forceMu.Lock()
	defer s.forceMu.Unlock()
	return s.Membership.ForceRound(func() {
		s.forceScan.CollectRows(s.reservations, s.cfg.Slots, s.ActiveMask)
	})
}

// Drain implements smr.Drainer: adopt all orphans and reclaim everything the
// bag holds on behalf of tid, which the caller must own. Records reserved by
// concurrently active peers survive in the bag.
func (s *Scheme) Drain(tid int) {
	g := s.gs[tid]
	g.adopt(0)
	if len(g.limbo) == 0 {
		return
	}
	if s.cfg.Plus {
		s.announceTS[tid].Add(1)
		s.group.SignalAll(tid)
		s.announceTS[tid].Add(1)
	} else {
		s.group.SignalAll(tid)
	}
	g.reclaimFreeable(len(g.limbo))
	g.cleanUp()
}

// LimboLen reports thread tid's current limbo-bag population (test hook;
// call only from tid or while tid is quiescent).
func (s *Scheme) LimboLen(tid int) int { return len(s.gs[tid].limbo) }

// TSScans reports how many announceTS scans thread tid has performed (test
// hook for the record-counted ScanFreq cadence; NBR+ only).
func (s *Scheme) TSScans(tid int) uint64 { return s.gs[tid].tsScans.Load() }

type guard struct {
	s   *Scheme
	tid int

	// row is this thread's reservation row, sliced out of the shared array
	// once at construction so Reserve/BeginRead never multiply tid·R.
	row []smr.Pad64

	limbo []mem.Ptr
	// limboW is the bag's record weight: len(limbo) until a segment handle
	// lands, after which each handle counts its member run. All watermark
	// comparisons run against limboW so the enforced bound keeps counting
	// every member record behind a single bag entry.
	limboW    int
	scan      smr.ScanSet // reclaim scratch, reused across scans
	freeables []mem.Ptr   // reclaim scratch: the batch handed to FreeBatch

	// NBR+ LoWatermark state (Algorithm 2 lines 1–3). atLoWm is the
	// inverse of the paper's firstLoWmEntryFlag.
	atLoWm    bool
	bookmark  int // bag index corresponding to bookmarkTail
	scanTS    []uint64
	sinceScan int

	// readFrom is the recorder clock at BeginRead (0 when not measured);
	// owner-only, closed into the read-phase histogram at EndRead.
	readFrom int64

	retired    smr.Counter
	batches    smr.BatchHist
	freed      smr.Counter
	scans      smr.Counter
	tsScans    smr.Counter // NBR+ announceTS scans (cadence observability)
	segments   smr.Counter // segment handles bagged (RetireSegment pieces)
	segRecords smr.Counter // member records those handles stood for
}

func (g *guard) Tid() int { return g.tid }

// BeginOp and EndOp delimit the preamble/quiescent phases; NBR needs no
// per-operation work outside the read/write phase calls.
func (g *guard) BeginOp() {}
func (g *guard) EndOp()   {}

// BeginRead is beginΦread (Algorithm 1 lines 6–9): clear the reservation
// row, then become restartable. The order matters — a reclaimer scanning
// after a signal must not see reservations from a previous operation once
// this thread can be neutralized. SetRestartable is also the sigsetjmp
// point: neutralization unwinds to smr.Execute, which re-runs the operation
// body, landing here again.
func (g *guard) BeginRead() {
	for i := range g.row {
		g.row[i].Store(0)
	}
	if g.s.rec.Enabled() {
		g.readFrom = g.s.rec.Clock()
		g.s.rec.Rec(g.tid, obs.EvReadBegin, 0)
	}
	g.s.group.SetRestartable(g.tid)
}

// Reserve announces a record the upcoming write phase will access
// (Algorithm 1 line 11). It must be followed by EndRead before the record
// is written.
func (g *guard) Reserve(i int, p mem.Ptr) {
	if i >= len(g.row) {
		panic("core: reservation slot out of range; raise Config.Slots")
	}
	g.row[i].Store(uint64(p.Unmarked()))
}

// EndRead is endΦread's CAS on restartable (Algorithm 1 line 12). Under
// sequentially consistent atomics the successful transition orders every
// Reserve store before any reclaimer's reservation scan that follows a
// signal to this thread; if a signal already arrived, the transition
// neutralizes instead (see sigsim.ClearRestartable).
func (g *guard) EndRead() {
	g.s.group.ClearRestartable(g.tid)
	if from := g.readFrom; from != 0 {
		// Only a successful transition lands here: a neutralized EndRead
		// panics above, leaving the phase open on the timeline (exactly what
		// a stall dump should show) until the restart's BeginRead reopens it.
		g.readFrom = 0
		g.s.rec.ObserveSince(obs.HistReadPhase, from)
		g.s.rec.Rec(g.tid, obs.EvReadEnd, 0)
	}
}

// Protect is NBR's record-access barrier: deliver any pending neutralization
// signal before the record is touched (the paper's Assumption 4).
func (g *guard) Protect(_ int, _ mem.Ptr) {
	g.s.group.Poll(g.tid)
}

func (g *guard) NeedsValidation() bool { return false }
func (g *guard) OnAlloc(mem.Ptr)       {}

// OnStale handles a read that found a freed slot. Frees are ordered after
// signal posts, so a pending signal must now be visible and the re-poll
// neutralizes this thread; if it does not, the scheme itself is broken.
func (g *guard) OnStale(p mem.Ptr) {
	g.s.group.Poll(g.tid)
	panic("core: use-after-free not explained by a pending signal: " + p.String())
}

// Retire implements Algorithm 1 lines 14–20 (NBR) or Algorithm 2 lines 5–26
// (NBR+).
func (g *guard) Retire(p mem.Ptr) {
	g.beforeRetire(1)
	p = p.Unmarked()
	g.limbo = append(g.limbo, p)
	g.limboW++
	g.retired.Inc()
	g.batches.Record(1)
	// Garbage-age sampling: stamp the handle so the hub's free seam can
	// measure its retire→free residence. One branch when the recorder is off.
	g.s.rec.SampleRetire(uint64(p))
}

// RetireBatch implements smr.Guard: the batch lands in the bag in chunks of
// at most one bag's worth of records, with the watermark bookkeeping running
// once per chunk instead of once per record — still O(1) amortized shared
// interactions per unlink, but the HiWatermark check can never be outrun by
// a single oversized splice. The trigger points are exactly the ones a
// per-record Retire loop would hit (the chunk boundary lands on the record
// that fills the bag), so splitting is observationally equivalent to the
// loop while restoring Lemma 10's bound: the bag holds at most BagSize
// records plus the one in-flight chunk (see Scheme.ThreadBound).
func (g *guard) RetireBatch(ps []mem.Ptr) {
	if len(ps) == 0 {
		return
	}
	g.batches.Record(len(ps))
	g.s.rec.SampleRetire(uint64(ps[0].Unmarked())) // age-sample one record per splice
	for len(ps) > 0 {
		take := g.beforeRetire(len(ps))
		for _, p := range ps[:take] {
			g.limbo = append(g.limbo, p.Unmarked())
		}
		g.limboW += take
		// Counted per chunk, not per handoff: a concurrent Stats sampler
		// must never see a whole splice as garbage before the split has had
		// a chance to reclaim between its chunks.
		g.retired.Add(uint64(take))
		ps = ps[take:]
	}
}

// RetireSegment implements smr.Guard: the handle lands in the bag as a
// single entry standing for its whole member run — one bag append and one
// scan participation for K unlinked records — while the watermark
// bookkeeping runs against the bag's record *weight*, so the enforced bound
// keeps counting every member. The handle is never carved: NBR reservations
// name the retired handle itself (a write-phase peer holds the segment
// handle from its last endΦread Reserve), and reclaimFreeable matches bag
// entries against reservations by handle identity — a carved prefix's fresh
// head handle would appear in no reservation row and its member cells would
// be freed under a peer the original handle's reservation still covers. An
// oversized segment therefore lands whole, a one-append overshoot the
// bound's segment-weight term absorbs (see ThreadBound); a handle that is
// not a live segment degrades to Retire.
func (g *guard) RetireSegment(p mem.Ptr) {
	w := mem.SegWeight(g.s.seg.Arena(), p)
	if w <= 1 {
		g.Retire(p)
		return
	}
	g.beforeRetire(w)
	// Note before bagging: a concurrent GarbageBound reader must never
	// see segment garbage under a pre-segment (or lighter) bound.
	g.s.seg.Note(w)
	p = p.Unmarked()
	g.limbo = append(g.limbo, p)
	g.limboW += w
	g.retired.Add(uint64(w))
	g.batches.Record(w)
	g.segments.Inc()
	g.segRecords.Add(uint64(w))
	if g.s.rec.Enabled() {
		g.s.rec.Rec(g.tid, obs.EvSegRetire, uint64(w))
		g.s.rec.SampleRetire(uint64(p))
	}
}

// beforeRetire runs the watermark bookkeeping for the next chunk of records
// about to land in the bag (avail record-weight is ready) and returns how
// much weight may be appended before the next check. All comparisons run on
// limboW, the bag's record weight, so a segment handle counts its whole
// member run. Chunks are capped so that every trigger the per-record loop
// would hit lands exactly on a chunk boundary:
// the HiWatermark (reclamation), and under NBR+ also the LoWatermark (the
// bookmark must be taken at lo, not skipped by a chunk that jumps straight
// to hi — otherwise batch-heavy traffic never enters the passive RGP path
// and pays the full signalAll cost) and the remaining ScanFreq budget (so
// announceTS scans fire at the same record counts as the loop, with no
// overshoot discarded).
func (g *guard) beforeRetire(avail int) int {
	if g.s.cfg.Plus {
		g.checkPlus()
	} else if g.limboW >= g.s.cfg.BagSize {
		// A reclamation is due anyway: adopt up to one bag's worth of
		// orphaned records so departed threads' garbage rides this scan.
		g.adopt(g.s.cfg.BagSize)
		g.s.group.SignalAll(g.tid)
		g.reclaimFreeable(len(g.limbo))
	}
	take := g.s.cfg.BagSize - g.limboW
	if g.s.cfg.Plus {
		if !g.atLoWm {
			if room := g.s.loWm - g.limboW; room > 0 && room < take {
				take = room
			}
		} else if room := g.s.cfg.ScanFreq - g.sinceScan; room > 0 && room < take {
			take = room
		}
	}
	if take < 1 {
		// Reached when weighted survivors pin the bag at or past the
		// watermark: a reclamation leaves at most N·R bag entries, but each
		// may be a segment handle worth up to MaxWeight records, so limboW
		// can exceed BagSize even though N·R < BagSize. Degrade to
		// per-record checks rather than stalling; the overshoot stays within
		// ThreadBound's survivor terms.
		take = 1
	}
	if take > avail {
		take = avail
	}
	if g.s.cfg.Plus && g.atLoWm {
		// The announceTS scan cadence counts records, not retire handoffs:
		// a structure retiring mostly via RetireBatch must reach the
		// passive-reclamation scan exactly as often as one retiring the
		// same records one by one (ROADMAP item from PR 2).
		g.sinceScan += take
	}
	return take
}

// checkPlus is the NBR+ watermark logic.
func (g *guard) checkPlus() {
	hi, lo := g.s.cfg.BagSize, g.s.loWm
	switch {
	case g.limboW >= hi:
		// RGP begin (odd) … signalAll … RGP end (even). Orphans adopted
		// first so departed threads' garbage rides the same scan.
		g.adopt(hi)
		g.s.announceTS[g.tid].Add(1)
		g.s.group.SignalAll(g.tid)
		g.s.announceTS[g.tid].Add(1)
		g.reclaimFreeable(len(g.limbo))
		g.cleanUp()
	case g.limboW >= lo:
		if !g.atLoWm {
			g.atLoWm = true
			g.bookmark = len(g.limbo)
			for i := range g.s.announceTS {
				g.scanTS[i] = g.s.announceTS[i].Load()
			}
			g.sinceScan = 0
			return
		}
		if g.sinceScan < g.s.cfg.ScanFreq {
			return
		}
		g.sinceScan = 0
		g.tsScans.Inc()
		// Only active peers can complete an RGP, so the check walks the
		// membership mask; the bookmark snapshot covers every slot (all
		// announceTS values are monotone across occupants), so a peer that
		// activated after the snapshot compares against its predecessor's
		// value — which can only make the +2 test harder, never easier.
		certified := false
		g.s.ActiveMask.Range(func(otid int) {
			if certified {
				return
			}
			// An odd snapshot caught otid mid-broadcast: that RGP began
			// before our bookmark, so its completion alone proves nothing
			// about records bookmarked after its signals went out. Round the
			// snapshot up to the next even value (the in-flight RGP's end):
			// base+1 is then the first post-bookmark RGP begin and base+2
			// its end, so any observed ts ≥ base+2 — the counter is monotone
			// and steps by one, so an odd ts ≥ base+3 also proves base+2 was
			// passed — certifies a complete post-bookmark broadcast.
			base := g.scanTS[otid]
			base += base & 1
			if g.s.announceTS[otid].Load() >= base+2 {
				certified = true
			}
		})
		if certified {
			// A peer began and finished a full signal broadcast after our
			// bookmark: everything retired before the bookmark has been
			// discarded or reserved by every thread.
			g.reclaimFreeable(g.bookmark)
			g.cleanUp()
		}
	}
}

// cleanUp resets the LoWatermark bookkeeping (Algorithm 2 lines 27–29).
func (g *guard) cleanUp() {
	g.atLoWm = false
	g.sinceScan = 0
}

// reclaimFreeable frees every record in limbo[:upto] that no thread has
// reserved (Algorithm 1 lines 21–25). Reserved records stay in the bag —
// there are at most N·R of them, which is what bounds the bag.
//
// The reservation snapshot is a flat sorted scratch (one pass, one sort,
// binary-search membership) and the freeable records go back to the arena in
// a single FreeBatch call, so a reclaim burst costs zero heap allocations
// and one free-list interaction regardless of bag size.
func (g *guard) reclaimFreeable(upto int) {
	g.scans.Inc()
	if r := g.s.Reg; r != nil {
		r.BeginScan()
		defer r.EndScan()
	}
	g.scan.CollectRows(g.s.reservations, g.s.cfg.Slots, g.s.ActiveMask)
	var freedW int
	g.limbo, g.freeables, freedW, g.limboW = g.scan.SweepBagSeg(
		g.s.arena, g.s.seg.Active(), g.tid, g.limbo, upto, g.freeables)
	g.freed.Add(uint64(freedW))
}

// adopt pulls up to max (all when max <= 0) orphaned records from the
// registry into the limbo bag, so a scan this thread is about to run frees
// departed threads' garbage too. Adopted records were counted as retired by
// their original thread; only freeing is accounted here.
func (g *guard) adopt(max int) {
	n := len(g.limbo)
	g.limbo = g.s.Adopt(g.limbo, max)
	g.limboW += g.s.seg.WeighAll(g.limbo[n:])
}
