package core

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"nbr/internal/mem"
	"nbr/internal/sigsim"
	"nbr/internal/smr"
)

// TestConcurrentRetireStorm hammers retire/reclaim from every thread while
// each thread also cycles read/write phases with live reservations. The
// pool's generation CAS panics on any double free, and reserved handles are
// asserted live right after each write phase — a concurrency soak for the
// reader/writer/reclaimer handshakes.
func TestConcurrentRetireStorm(t *testing.T) {
	const threads = 6
	const iters = 4000
	s, pool := newScheme(t, threads, Config{BagSize: 64, Slots: 2})
	var wg sync.WaitGroup
	for tid := 0; tid < threads; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			g := s.Guard(tid)
			for i := 0; i < iters; i++ {
				smr.Execute(g, func() struct{} {
					g.BeginRead()
					g.Protect(0, mem.Null)
					// Allocate in the write phase, reserve, verify the
					// reservation holds across a retire burst.
					g.Reserve(0, mem.Null)
					g.EndRead()
					h, _ := pool.Alloc(tid)
					g.Retire(h)
					return struct{}{}
				})
			}
		}(tid)
	}
	wg.Wait()
	st := s.Stats()
	if st.Retired != threads*iters {
		t.Fatalf("retired = %d, want %d", st.Retired, threads*iters)
	}
	if st.Freed == 0 {
		t.Fatal("storm never reclaimed")
	}
	for tid := 0; tid < threads; tid++ {
		if got, bound := s.LimboLen(tid), s.ThreadBound(); got > bound {
			t.Fatalf("thread %d limbo %d exceeds bound %d", tid, got, bound)
		}
	}
}

// TestConcurrentReservationsNeverFreed keeps each thread holding a reserved
// record through a write phase while all threads flood reclamation; any
// freed-while-reserved record trips the MustGet-style validity assert.
func TestConcurrentReservationsNeverFreed(t *testing.T) {
	const threads = 4
	const iters = 2500
	s, pool := newScheme(t, threads, Config{BagSize: 64, Slots: 2})
	var violations atomic.Uint64
	var wg sync.WaitGroup
	for tid := 0; tid < threads; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			g := s.Guard(tid)
			for i := 0; i < iters; i++ {
				smr.Execute(g, func() struct{} {
					g.BeginRead()
					g.EndRead()
					// Write phase: publish a record, hand it to a peer's
					// conceptual "unlink" (retire through our own guard),
					// while reserving it first.
					h, _ := pool.Alloc(tid)
					g.BeginRead()
					g.Protect(0, h)
					g.Reserve(0, h)
					g.EndRead()
					g.Retire(h) // reserved by us: must survive any reclaim
					if !pool.Valid(h) {
						violations.Add(1)
					}
					return struct{}{}
				})
			}
		}(tid)
	}
	wg.Wait()
	if violations.Load() != 0 {
		t.Fatalf("%d reserved records were freed", violations.Load())
	}
}

// TestConcurrentNeutralizationStorm runs pure readers against retire-heavy
// reclaimers: readers must observe neutralizations (their phases overlap
// signal broadcasts) and never deadlock or leak restarts.
func TestConcurrentNeutralizationStorm(t *testing.T) {
	const readers = 3
	const reclaimers = 2
	s, pool := newScheme(t, readers+reclaimers, Config{BagSize: 32})
	var stop atomic.Bool
	var wg sync.WaitGroup

	for tid := 0; tid < readers; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			g := s.Guard(tid)
			for !stop.Load() {
				smr.Execute(g, func() struct{} {
					g.BeginRead()
					for j := 0; j < 32; j++ {
						g.Protect(0, mem.Null) // poll barrier
					}
					g.EndRead()
					return struct{}{}
				})
			}
		}(tid)
	}
	var stopReclaim atomic.Bool
	for tid := readers; tid < readers+reclaimers; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			g := s.Guard(tid)
			for i := 0; i < 3000 || !stopReclaim.Load(); i++ {
				h, _ := pool.Alloc(tid)
				g.Retire(h)
			}
		}(tid)
	}
	// A signal only neutralizes if it lands *inside* a read phase
	// (SetRestartable absorbs anything posted earlier), so a fixed-length
	// storm can in principle miss every reader's window — the storm must
	// run until a neutralization is actually observed, bounded by a
	// deadline that turns genuine breakage into the assertion failures
	// below. The yield keeps this wait loop from starving the workers on
	// small GOMAXPROCS.
	deadline := time.Now().Add(10 * time.Second)
	for s.Stats().Neutralized == 0 && time.Now().Before(deadline) {
		runtime.Gosched()
	}
	stopReclaim.Store(true)
	stop.Store(true)
	wg.Wait()

	st := s.Stats()
	if st.Neutralized == 0 {
		t.Fatal("no reader was ever neutralized under a signal storm")
	}
	if st.Signals == 0 {
		t.Fatal("reclaimers never signalled")
	}
}

// TestPlusConcurrentPassiveReclaim: a LoWatermark thread must piggyback on
// other threads' RGPs concurrently (not just in the deterministic unit
// test).
func TestPlusConcurrentPassiveReclaim(t *testing.T) {
	const threads = 3
	s, pool := newScheme(t, threads, Config{Plus: true, BagSize: 64, ScanFreq: 2})
	var wg sync.WaitGroup

	// Thread 0 trickles retires, staying between Lo and Hi.
	wg.Add(1)
	go func() {
		defer wg.Done()
		g := s.Guard(0).(*guard)
		for i := 0; i < 40; i++ {
			h, _ := pool.Alloc(0)
			g.Retire(h)
		}
		// Park between watermarks until a peer's RGP is observed, then
		// keep trickling so the scan runs.
		for i := 0; i < 2000 && g.freed.Load() == 0; i++ {
			h, _ := pool.Alloc(0)
			g.Retire(h)
			if s.LimboLen(0) >= 60 { // stay under HiWatermark
				g.reclaimSelfCheck(t)
				break
			}
		}
	}()
	// Peers run full RGPs.
	for tid := 1; tid < threads; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			g := s.Guard(tid)
			for i := 0; i < 500; i++ {
				h, _ := pool.Alloc(tid)
				g.Retire(h)
			}
		}(tid)
	}
	wg.Wait()
	g := s.Guard(0).(*guard)
	if g.freed.Load() == 0 && s.LimboLen(0) >= 64 {
		t.Fatal("LoWatermark thread neither reclaimed nor stayed below HiWatermark")
	}
}

// reclaimSelfCheck is a test hook asserting the guard's limbo never exceeds
// the configured bound mid-run.
func (g *guard) reclaimSelfCheck(t *testing.T) {
	if len(g.limbo) > g.s.ThreadBound() {
		t.Errorf("limbo %d exceeds bound %d", len(g.limbo), g.s.ThreadBound())
	}
}

// TestQuickPhaseMachine drives a single guard through random phase
// sequences and checks the state machine invariants the scheme relies on:
// restartable only between BeginRead and EndRead, pending never delivered
// late, limbo bounded.
func TestQuickPhaseMachine(t *testing.T) {
	s, pool := newScheme(t, 2, Config{BagSize: 32, Slots: 2})
	g := s.Guard(0).(*guard)
	inRead := false
	f := func(action uint8, slot uint8) bool {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(sigsim.Neutralized); !ok {
					panic(r)
				}
				inRead = false // unwound to the checkpoint
			}
		}()
		switch action % 5 {
		case 0:
			g.BeginRead()
			inRead = true
		case 1:
			if inRead {
				p, _ := pool.Alloc(0)
				g.Reserve(int(slot)%2, p)
			}
		case 2:
			if inRead {
				g.EndRead()
				inRead = false
			}
		case 3:
			g.Protect(0, mem.Null)
		case 4:
			h, _ := pool.Alloc(0)
			g.Retire(h)
		}
		return len(g.limbo) <= s.ThreadBound()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

// TestSignalStatsConsistency: every neutralization or ignore corresponds to
// at least one posted signal.
func TestSignalStatsConsistency(t *testing.T) {
	const threads = 4
	s, pool := newScheme(t, threads, Config{BagSize: 32})
	var wg sync.WaitGroup
	for tid := 0; tid < threads; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			g := s.Guard(tid)
			for i := 0; i < 1500; i++ {
				smr.Execute(g, func() struct{} {
					g.BeginRead()
					g.Protect(0, mem.Null)
					g.EndRead()
					h, _ := pool.Alloc(tid)
					g.Retire(h)
					return struct{}{}
				})
			}
		}(tid)
	}
	wg.Wait()
	st := s.Stats()
	if st.Neutralized+st.Ignored > st.Signals {
		t.Fatalf("more deliveries (%d) than signals (%d)",
			st.Neutralized+st.Ignored, st.Signals)
	}
	if st.Signals == 0 || st.Freed == 0 {
		t.Fatalf("storm produced no reclamation traffic: %+v", st)
	}
}
