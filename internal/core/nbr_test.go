package core

import (
	"testing"

	"nbr/internal/mem"
	"nbr/internal/sigsim"
	"nbr/internal/smr"
)

type rec struct{ key uint64 }

func newScheme(t *testing.T, threads int, cfg Config) (*Scheme, *mem.Pool[rec]) {
	t.Helper()
	pool := mem.NewPool[rec](mem.Config{MaxThreads: threads})
	return New(pool, threads, cfg), pool
}

// neutralized runs f and reports whether it panicked with sigsim.Neutralized.
func neutralized(f func()) (hit bool) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(sigsim.Neutralized); !ok {
				panic(r)
			}
			hit = true
		}
	}()
	f()
	return false
}

func TestNames(t *testing.T) {
	s, _ := newScheme(t, 2, Config{})
	if s.Name() != "nbr" {
		t.Fatalf("name = %q", s.Name())
	}
	sp, _ := newScheme(t, 2, Config{Plus: true})
	if sp.Name() != "nbr+" {
		t.Fatalf("name = %q", sp.Name())
	}
}

func TestConfigRejectsTinyBag(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("N·R ≥ BagSize must be rejected")
		}
	}()
	pool := mem.NewPool[rec](mem.Config{MaxThreads: 8})
	New(pool, 8, Config{BagSize: 16, Slots: 4})
}

func TestReserveSlotRangePanics(t *testing.T) {
	s, pool := newScheme(t, 2, Config{Slots: 2})
	g := s.Guard(0)
	p, _ := pool.Alloc(0)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range slot must panic")
		}
	}()
	g.Reserve(2, p)
}

// fill retires fresh records through g until just below the bag threshold.
func fill(g smr.Guard, pool *mem.Pool[rec], tid, n int) []mem.Ptr {
	var hs []mem.Ptr
	for i := 0; i < n; i++ {
		h, _ := pool.Alloc(tid)
		g.Retire(h)
		hs = append(hs, h)
	}
	return hs
}

func TestRetireBelowThresholdKeepsEverything(t *testing.T) {
	s, pool := newScheme(t, 2, Config{BagSize: 64})
	fill(s.Guard(0), pool, 0, 63)
	if st := s.Stats(); st.Freed != 0 || st.Retired != 63 || st.Signals != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if s.LimboLen(0) != 63 {
		t.Fatalf("limbo = %d", s.LimboLen(0))
	}
}

func TestHiWatermarkSignalsAndReclaims(t *testing.T) {
	const threads, bag = 4, 64
	s, pool := newScheme(t, threads, Config{BagSize: bag})
	fill(s.Guard(0), pool, 0, bag+1)
	st := s.Stats()
	if st.Signals != threads-1 {
		t.Fatalf("signals = %d, want %d", st.Signals, threads-1)
	}
	if st.Freed != bag {
		t.Fatalf("freed = %d, want %d (all unreserved)", st.Freed, bag)
	}
	if s.LimboLen(0) != 1 {
		t.Fatalf("limbo = %d, want just the newest record", s.LimboLen(0))
	}
}

func TestReservationSurvivesReclaim(t *testing.T) {
	const bag = 64
	s, pool := newScheme(t, 2, Config{BagSize: bag})
	g0, g1 := s.Guard(0), s.Guard(1)

	// Thread 1 reserves a record and enters its write phase.
	target, _ := pool.Alloc(1)
	g1.BeginRead()
	g1.Reserve(0, target)
	g1.EndRead()

	// Thread 0 unlinks that record (conceptually) and floods its bag.
	g0.Retire(target)
	fill(g0, pool, 0, bag+1)

	if !pool.Valid(target) {
		t.Fatal("reserved record was freed during reclamation")
	}
	st := s.Stats()
	// The bag held target + (bag-1) fillers when the threshold tripped;
	// everything except the reservation is freed.
	if st.Freed != bag-1 {
		t.Fatalf("freed = %d, want %d (everything except the reservation)", st.Freed, bag-1)
	}

	// Once thread 1 starts a new read phase the reservation is cleared and
	// the record becomes reclaimable.
	g1.BeginRead()
	g1.EndRead()
	fill(g0, pool, 0, bag+1)
	if pool.Valid(target) {
		t.Fatal("record still live after its reservation was cleared")
	}
}

func TestMarkedReservationProtectsRecord(t *testing.T) {
	// Harris-style code may reserve and retire marked handles; reclamation
	// must match them by record, not by bit pattern.
	const bag = 64
	s, pool := newScheme(t, 2, Config{BagSize: bag})
	g0, g1 := s.Guard(0), s.Guard(1)

	target, _ := pool.Alloc(1)
	g1.BeginRead()
	g1.Reserve(0, target.WithMark())
	g1.EndRead()

	g0.Retire(target.WithMark())
	fill(g0, pool, 0, bag+1)
	if !pool.Valid(target) {
		t.Fatal("marked reservation did not protect the record")
	}
}

func TestNeutralizationInReadPhase(t *testing.T) {
	s, _ := newScheme(t, 2, Config{})
	g0 := s.Guard(0).(*guard)
	g0.BeginRead()
	s.group.SignalAll(1)
	if !neutralized(func() { g0.Protect(0, mem.Null) }) {
		t.Fatal("restartable thread must be neutralized at the barrier")
	}
	if s.Stats().Neutralized != 1 {
		t.Fatalf("stats = %+v", s.Stats())
	}
}

func TestWritePhaseIgnoresSignal(t *testing.T) {
	s, _ := newScheme(t, 2, Config{})
	g0 := s.Guard(0).(*guard)
	g0.BeginRead()
	g0.EndRead()
	s.group.SignalAll(1)
	if neutralized(func() { g0.Protect(0, mem.Null) }) {
		t.Fatal("non-restartable thread must not restart")
	}
	if s.Stats().Ignored != 1 {
		t.Fatalf("stats = %+v", s.Stats())
	}
}

func TestEndReadRaceNeutralizes(t *testing.T) {
	// The §4.3 store-buffer race: the signal lands after BeginRead but
	// before EndRead's transition; the thread must restart, not write.
	s, _ := newScheme(t, 2, Config{})
	g0 := s.Guard(0).(*guard)
	g0.BeginRead()
	s.group.SignalAll(1)
	if !neutralized(func() { g0.EndRead() }) {
		t.Fatal("endΦread must neutralize when a signal raced the read phase")
	}
}

func TestBeginReadClearsReservations(t *testing.T) {
	const bag = 64
	s, pool := newScheme(t, 2, Config{BagSize: bag})
	g0, g1 := s.Guard(0), s.Guard(1)

	stale, _ := pool.Alloc(1)
	g1.BeginRead()
	g1.Reserve(0, stale)
	g1.EndRead()
	g1.BeginRead() // must wipe the reservation row (Algorithm 1 line 7)

	g0.Retire(stale)
	fill(g0, pool, 0, bag+1)
	if pool.Valid(stale) {
		t.Fatal("reservation from a previous operation blocked reclamation")
	}
}

func TestOnStaleNeutralizesWhenSignalPending(t *testing.T) {
	s, pool := newScheme(t, 2, Config{})
	g0 := s.Guard(0).(*guard)
	p, _ := pool.Alloc(0)
	g0.BeginRead()
	// A peer signals and frees p (posts always precede frees in retire).
	s.group.SignalAll(1)
	pool.Free(1, p)
	if !neutralized(func() { g0.OnStale(p) }) {
		t.Fatal("stale read with pending signal must neutralize")
	}
}

func TestOnStaleWithoutSignalPanics(t *testing.T) {
	s, pool := newScheme(t, 2, Config{})
	g0 := s.Guard(0).(*guard)
	p, _ := pool.Alloc(0)
	pool.Free(1, p)
	g0.BeginRead()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("unexplained stale read must panic")
		}
		if _, ok := r.(sigsim.Neutralized); ok {
			t.Fatal("must be a hard panic, not a neutralization")
		}
	}()
	g0.OnStale(p)
}

func TestExecuteRestartsBody(t *testing.T) {
	s, _ := newScheme(t, 2, Config{})
	g0 := s.Guard(0)
	attempts := 0
	v := smr.Execute(g0, func() int {
		attempts++
		g0.BeginRead()
		if attempts == 1 {
			s.group.SignalAll(1) // arrives mid-Φread on the first attempt
		}
		g0.Protect(0, mem.Null)
		g0.EndRead()
		return 7
	})
	if v != 7 || attempts != 2 {
		t.Fatalf("v=%d attempts=%d, want 7 and 2", v, attempts)
	}
}

func TestGarbageBoundHolds(t *testing.T) {
	// A stalled peer can pin at most R records via reservations; the bag
	// never exceeds BagSize + N·R live retired records (Lemma 10).
	const threads, bag = 4, 128
	s, pool := newScheme(t, threads, Config{BagSize: bag, Slots: 4})
	g0 := s.Guard(0)

	// Every peer stalls in a write phase holding reservations.
	var pinned []mem.Ptr
	for tid := 1; tid < threads; tid++ {
		g := s.Guard(tid)
		g.BeginRead()
		for i := 0; i < 4; i++ {
			p, _ := pool.Alloc(tid)
			g.Reserve(i, p)
			pinned = append(pinned, p)
		}
		g.EndRead()
	}
	for _, p := range pinned {
		g0.Retire(p)
	}
	for i := 0; i < 20*bag; i++ {
		p, _ := pool.Alloc(0)
		g0.Retire(p)
		if got, bound := s.LimboLen(0), s.ThreadBound(); got > bound {
			t.Fatalf("limbo %d exceeded bound %d", got, bound)
		}
	}
	for _, p := range pinned {
		if !pool.Valid(p) {
			t.Fatal("reservation violated during sustained reclamation")
		}
	}
}

func TestPlusHiWatermarkStampsEvenTimestamps(t *testing.T) {
	const bag = 64
	s, pool := newScheme(t, 2, Config{Plus: true, BagSize: bag})
	fill(s.Guard(0), pool, 0, bag+1)
	ts := s.announceTS[0].Load()
	if ts != 2 {
		t.Fatalf("announceTS = %d, want 2 (one complete RGP)", ts)
	}
	if st := s.Stats(); st.Freed != bag {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPlusPassiveReclamationWithoutSignals(t *testing.T) {
	const bag, scanFreq = 64, 4
	s, pool := newScheme(t, 2, Config{Plus: true, BagSize: bag, ScanFreq: scanFreq})
	g0, g1 := s.Guard(0), s.Guard(1)

	// Thread 0 crosses its LoWatermark and bookmarks.
	lo := bag / 2
	fill(g0, pool, 0, lo+1)

	// Thread 1 performs a complete RGP (HiWatermark reclamation).
	fill(g1, pool, 1, bag+1)

	// Thread 0 keeps retiring; within ScanFreq retires it must detect the
	// RGP and reclaim its bookmarked prefix without signalling anyone.
	before := s.group.Stats().Sent
	fill(g0, pool, 0, scanFreq+1)
	after := s.group.Stats().Sent
	if after != before {
		t.Fatal("passive reclamation must not send signals")
	}
	g := g0.(*guard)
	if g.freed.Load() == 0 {
		t.Fatal("LoWatermark thread never reclaimed after observing the RGP")
	}
	if s.LimboLen(0) >= lo+1 {
		t.Fatalf("bookmarked prefix not reclaimed, limbo = %d", s.LimboLen(0))
	}
}

func TestPlusIncompleteRGPDoesNotReclaim(t *testing.T) {
	// A timestamp advance of +1 means a broadcast is in flight; reclaiming
	// on it would race threads not yet signalled (the paper's T1/T2/T3
	// example). Only +2 proves a complete RGP.
	const bag, scanFreq = 64, 4
	s, pool := newScheme(t, 2, Config{Plus: true, BagSize: bag, ScanFreq: scanFreq})
	g0 := s.Guard(0)
	fill(g0, pool, 0, bag/2+1) // bookmark + snapshot

	s.announceTS[1].Add(1) // peer is mid-broadcast: odd, advanced by 1
	fill(g0, pool, 0, scanFreq+1)
	if g := g0.(*guard); g.freed.Load() != 0 {
		t.Fatal("reclaimed on an incomplete RGP")
	}

	s.announceTS[1].Add(1) // broadcast complete: +2 since snapshot
	fill(g0, pool, 0, scanFreq+1)
	if g := g0.(*guard); g.freed.Load() == 0 {
		t.Fatal("failed to reclaim after a complete RGP")
	}
}

func TestPlusMidRGPSnapshotRequiresFullPostBookmarkRGP(t *testing.T) {
	// The bookmark may snapshot a peer *mid*-RGP (odd timestamp). A naive
	// snapshot+2 comparison is then odd as well — an RGP that has merely
	// begun — so the bookmarked prefix could be freed before any complete
	// post-bookmark broadcast. The snapshot must round up to the next even
	// value (the in-flight RGP's end) before the +2 comparison.
	const bag, scanFreq = 64, 4
	s, pool := newScheme(t, 2, Config{Plus: true, BagSize: bag, ScanFreq: scanFreq})
	g0 := s.Guard(0)

	s.announceTS[1].Add(1)     // pin the peer mid-RGP (odd)…
	fill(g0, pool, 0, bag/2+1) // …so the bookmark snapshots the odd value

	s.announceTS[1].Add(1) // the pre-bookmark RGP ends
	fill(g0, pool, 0, scanFreq+1)
	if g := g0.(*guard); g.freed.Load() != 0 {
		t.Fatal("reclaimed on an RGP that began before the bookmark")
	}

	s.announceTS[1].Add(1) // a post-bookmark RGP begins: odd, == snapshot+2
	fill(g0, pool, 0, scanFreq+1)
	if g := g0.(*guard); g.freed.Load() != 0 {
		t.Fatal("reclaimed on a begun-but-unfinished post-bookmark RGP")
	}

	s.announceTS[1].Add(1) // the post-bookmark RGP ends: even, rounded+2
	fill(g0, pool, 0, scanFreq+1)
	if g := g0.(*guard); g.freed.Load() == 0 {
		t.Fatal("failed to reclaim after a complete post-bookmark RGP")
	}
}

func TestPlusRebookmarksAfterReclaim(t *testing.T) {
	const bag, scanFreq = 64, 2
	s, pool := newScheme(t, 2, Config{Plus: true, BagSize: bag, ScanFreq: scanFreq})
	g0 := s.Guard(0)
	for round := 0; round < 3; round++ {
		fill(g0, pool, 0, bag/2+1)
		s.announceTS[1].Add(2)
		fill(g0, pool, 0, scanFreq+1)
	}
	if g := g0.(*guard); g.freed.Load() == 0 {
		t.Fatal("no reclamation across rounds")
	}
	if s.LimboLen(0) >= bag {
		t.Fatal("repeated LoWatermark cycles never drained the bag")
	}
}

func TestStatsAggregation(t *testing.T) {
	const bag = 32
	s, pool := newScheme(t, 3, Config{BagSize: bag})
	fill(s.Guard(0), pool, 0, bag+1)
	fill(s.Guard(1), pool, 1, bag+1)
	st := s.Stats()
	if st.Retired != 2*(bag+1) {
		t.Fatalf("retired = %d", st.Retired)
	}
	if st.Signals != 2*2 {
		t.Fatalf("signals = %d, want 4", st.Signals)
	}
	if st.Scans != 2 {
		t.Fatalf("scans = %d", st.Scans)
	}
	if st.Garbage() != 2 {
		t.Fatalf("garbage = %d, want 2", st.Garbage())
	}
}
